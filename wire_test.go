package repro

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/dag"
)

func TestRunRequestResolvePresets(t *testing.T) {
	for _, tc := range []struct {
		workflow string
		tasks    string
	}{{"1deg", "montage-1deg"}, {"2deg", "montage-2deg"}, {"4deg", "montage-4deg"}, {"montage-1deg", "montage-1deg"}} {
		spec, plan, err := RunRequest{Workflow: tc.workflow}.Resolve()
		if err != nil {
			t.Fatalf("%s: %v", tc.workflow, err)
		}
		if spec.Name != tc.tasks {
			t.Errorf("%s resolved to %s", tc.workflow, spec.Name)
		}
		if plan.Billing != OnDemand || plan.Mode != Regular {
			t.Errorf("%s: defaults not applied: %+v", tc.workflow, plan)
		}
		if plan.Bandwidth != Mbps(10) {
			t.Errorf("%s: bandwidth default %v, want 10 Mbps", tc.workflow, plan.Bandwidth)
		}
	}
}

func TestRunRequestResolveCustomDegrees(t *testing.T) {
	spec, _, err := RunRequest{Degrees: 3}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(spec.Name, "3deg") {
		t.Errorf("custom spec named %q", spec.Name)
	}
}

func TestRunRequestResolveKnobs(t *testing.T) {
	_, plan, err := RunRequest{
		Workflow: "1deg", Mode: "cleanup", Processors: 16,
		Billing: "provisioned", BandwidthMbps: 100,
	}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if plan.Mode != Cleanup || plan.Processors != 16 || plan.Billing != Provisioned || plan.Bandwidth != Mbps(100) {
		t.Errorf("knobs not applied: %+v", plan)
	}
}

func TestRunRequestResolveErrors(t *testing.T) {
	for name, req := range map[string]RunRequest{
		"empty":              {},
		"unknown workflow":   {Workflow: "9deg"},
		"both selectors":     {Workflow: "1deg", Degrees: 2},
		"bad mode":           {Workflow: "1deg", Mode: "sideways"},
		"bad billing":        {Workflow: "1deg", Billing: "prepaid"},
		"negative procs":     {Workflow: "1deg", Processors: -1},
		"negative bandwidth": {Workflow: "1deg", BandwidthMbps: -10},
		"oversized degrees":  {Degrees: 500},
	} {
		if _, _, err := req.Resolve(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestRunRequestResolveDegreesBounds pins the degrees validation: a
// negative size must be called out as such, not fall through to the
// misleading "selects no workflow" error.
func TestRunRequestResolveDegreesBounds(t *testing.T) {
	for _, tc := range []struct {
		name    string
		degrees float64
		wantErr string
	}{
		{"negative", -2, "negative degrees"},
		{"zero", 0, "selects no workflow"},
		{"over cap", 21, "exceeds the 20-degree request limit"},
		{"at cap", 20, ""},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := RunRequest{Degrees: tc.degrees}.Resolve()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("degrees %v rejected: %v", tc.degrees, err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("degrees %v error = %v, want %q", tc.degrees, err, tc.wantErr)
			}
		})
	}
}

func TestRunRequestResolveSpot(t *testing.T) {
	_, plan, err := RunRequest{
		Workflow: "1deg", Processors: 16,
		Spot: &SpotRequest{
			RatePerHour: 1.5, Seed: 7, Discount: 0.65, OnDemandProcessors: 4,
			CheckpointSeconds: 300, CheckpointOverheadSeconds: 10,
		},
	}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	want := SpotPlan{RatePerHour: 1.5, Warning: 120, Downtime: 600, Seed: 7, Discount: 0.65, OnDemand: 4}
	if plan.Spot != want {
		t.Errorf("spot plan = %+v, want %+v (defaults filled)", plan.Spot, want)
	}
	if !plan.Recovery.Checkpoint || plan.Recovery.Interval != 300 || plan.Recovery.Overhead != 10 {
		t.Errorf("recovery = %+v, want checkpoint 300/10", plan.Recovery)
	}

	for name, req := range map[string]RunRequest{
		"negative rate":             {Workflow: "1deg", Spot: &SpotRequest{RatePerHour: -1}},
		"negative warning":          {Workflow: "1deg", Spot: &SpotRequest{RatePerHour: 1, WarningSeconds: -1}},
		"negative downtime":         {Workflow: "1deg", Spot: &SpotRequest{RatePerHour: 1, DowntimeSeconds: -1}},
		"bad discount":              {Workflow: "1deg", Spot: &SpotRequest{RatePerHour: 1, Discount: 1}},
		"negative on-demand":        {Workflow: "1deg", Spot: &SpotRequest{RatePerHour: 1, OnDemandProcessors: -1}},
		"negative checkpoint":       {Workflow: "1deg", Spot: &SpotRequest{RatePerHour: 1, CheckpointSeconds: -1}},
		"overhead without interval": {Workflow: "1deg", Spot: &SpotRequest{RatePerHour: 1, CheckpointOverheadSeconds: 5}},
		"empty spot":                {Workflow: "1deg", Spot: &SpotRequest{}},
		"on-demand over fleet":      {Workflow: "1deg", Processors: 4, Spot: &SpotRequest{RatePerHour: 1, OnDemandProcessors: 5}},
		"no spot capacity":          {Workflow: "1deg", Processors: 4, Spot: &SpotRequest{RatePerHour: 1, OnDemandProcessors: 4}},
	} {
		if _, _, err := req.Resolve(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestCanonicalRunKeyStability(t *testing.T) {
	specA, planA, err := RunRequest{Workflow: "1deg"}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	specB, planB, err := RunRequest{Workflow: "1deg", Mode: "regular", BandwidthMbps: 10}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	// An explicit default and an elided one are the same run, so they
	// must share a cache key.
	if CanonicalRunKey(specA, planA) != CanonicalRunKey(specB, planB) {
		t.Error("equivalent requests got distinct keys")
	}
	_, planC, err := RunRequest{Workflow: "1deg", Processors: 4}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if CanonicalRunKey(specA, planA) == CanonicalRunKey(specA, planC) {
		t.Error("distinct plans share a key")
	}
	specD, planD, err := RunRequest{Workflow: "2deg"}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if CanonicalRunKey(specA, planA) == CanonicalRunKey(specD, planD) {
		t.Error("distinct specs share a key")
	}
}

// TestCanonicalRunKeySpotDistinct is the cache-collision guard of the
// spot wire knobs: two plans differing only in a spot field must never
// share a key, or the server would serve one scenario's cached document
// for the other.
func TestCanonicalRunKeySpotDistinct(t *testing.T) {
	base := RunRequest{Workflow: "1deg", Processors: 16}
	spec, onDemandPlan, err := base.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	spot := base
	spot.Spot = &SpotRequest{RatePerHour: 1.5, Seed: 7, Discount: 0.65, OnDemandProcessors: 4}
	_, spotPlan, err := spot.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if CanonicalRunKey(spec, onDemandPlan) == CanonicalRunKey(spec, spotPlan) {
		t.Fatal("spot plan shares a cache key with its on-demand twin")
	}
	// Every individual knob must perturb the key.
	variants := map[string]func(*SpotRequest){
		"rate":     func(s *SpotRequest) { s.RatePerHour = 3 },
		"warning":  func(s *SpotRequest) { s.WarningSeconds = 60 },
		"downtime": func(s *SpotRequest) { s.DowntimeSeconds = 300 },
		"seed":     func(s *SpotRequest) { s.Seed = 8 },
		"discount": func(s *SpotRequest) { s.Discount = 0.5 },
		"ondemand": func(s *SpotRequest) { s.OnDemandProcessors = 8 },
	}
	for name, mutate := range variants {
		req := spot
		mutated := *spot.Spot
		mutate(&mutated)
		req.Spot = &mutated
		_, plan, err := req.Resolve()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if CanonicalRunKey(spec, plan) == CanonicalRunKey(spec, spotPlan) {
			t.Errorf("plans differing only in spot %s share a key", name)
		}
	}
	// Recovery knobs travel outside SpotPlan but inside the key too.
	req := spot
	withCkpt := *spot.Spot
	withCkpt.CheckpointSeconds = 300
	req.Spot = &withCkpt
	_, plan, err := req.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if CanonicalRunKey(spec, plan) == CanonicalRunKey(spec, spotPlan) {
		t.Error("plans differing only in checkpoint interval share a key")
	}
}

// TestCanonicalRunKeyCoversPlan forces CanonicalRunKey maintenance: the
// explicit encoding must be extended whenever Plan or Spec grows a
// field, or new knobs would silently collide in the cache.
func TestCanonicalRunKeyCoversPlan(t *testing.T) {
	// 16th field: Recorder, the flight-recorder hook, deliberately NOT
	// in the key -- tracing never changes a run's result, and traced
	// requests bypass the cache anyway.
	if n := reflect.TypeOf(Plan{}).NumField(); n != 16 {
		t.Errorf("core.Plan has %d fields; update CanonicalRunKey and this count (want 16)", n)
	}
	if n := reflect.TypeOf(Spec{}).NumField(); n != 9 {
		t.Errorf("montage.Spec has %d fields; update CanonicalRunKey and this count (want 9)", n)
	}
}

// TestRunDocumentSpotRoundTrip checks the plan echo: every spot knob a
// caller sets comes back in the result document.
func TestRunDocumentSpotRoundTrip(t *testing.T) {
	spec, plan, err := RunRequest{
		Workflow: "1deg", Processors: 16,
		Spot: &SpotRequest{
			RatePerHour: 1.5, Seed: 7, Discount: 0.65, OnDemandProcessors: 4,
			CheckpointSeconds: 300, CheckpointOverheadSeconds: 10,
		},
	}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	wf, err := GenerateCached(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(wf, plan)
	if err != nil {
		t.Fatal(err)
	}
	doc := NewRunDocument(res)
	if doc.Plan.Spot == nil {
		t.Fatal("spot plan missing from the result document")
	}
	want := SpotPlanDocument{
		RatePerHour: 1.5, WarningSeconds: 120, DowntimeSeconds: 600, Seed: 7,
		Discount: 0.65, OnDemandProcessors: 4,
		CheckpointSeconds: 300, CheckpointOverheadSeconds: 10,
	}
	if *doc.Plan.Spot != want {
		t.Errorf("spot document = %+v, want %+v", *doc.Plan.Spot, want)
	}
	if doc.Metrics.OnDemandProcessors != 4 {
		t.Errorf("metrics OnDemandProcessors = %d, want 4", doc.Metrics.OnDemandProcessors)
	}
	if doc.Metrics.CapacityProcSeconds <= 0 {
		t.Errorf("CapacityProcSeconds = %v, want > 0", doc.Metrics.CapacityProcSeconds)
	}
}

// TestRunDocumentEncodeZeroWidthRun guards the Utilization division: a
// degenerate workflow whose runtimes and file sizes are all zero yields
// a zero-width run, and the resulting document must still encode --
// encoding/json rejects NaN/Inf, so a bad division here would turn
// every /v1/run response for such a workflow into a 500.
func TestRunDocumentEncodeZeroWidthRun(t *testing.T) {
	w := dag.New("degenerate")
	if _, err := w.AddFile("in", 0, false); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AddFile("out", 0, true); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AddTask("noop", "t", 0, []string{"in"}, []string{"out"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Finalize(); err != nil {
		t.Fatal(err)
	}
	res, err := Run(w, DefaultPlan())
	if err != nil {
		t.Fatal(err)
	}
	if u := res.Metrics.Utilization; u != 0 || math.IsNaN(u) || math.IsInf(u, 0) {
		t.Errorf("zero-width run utilization = %v, want 0", u)
	}
	body, err := NewRunDocument(res).Encode()
	if err != nil {
		t.Fatalf("zero-width run document does not encode: %v", err)
	}
	if !json.Valid(body) {
		t.Errorf("document not valid JSON: %s", body)
	}
}

func TestRunDocumentEncodeDeterministic(t *testing.T) {
	spec, plan, err := RunRequest{Workflow: "1deg", Processors: 8, Billing: "provisioned"}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	wf, err := GenerateCached(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(wf, plan)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewRunDocument(res).Encode()
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Run(wf, plan)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRunDocument(res2).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("re-running the same plan produced different documents")
	}
	if !bytes.HasSuffix(a, []byte("\n")) {
		t.Error("document not newline-terminated")
	}
	doc := NewRunDocument(res)
	if doc.Workflow != "montage-1deg" || doc.Tasks != 203 {
		t.Errorf("document header wrong: %s, %d tasks", doc.Workflow, doc.Tasks)
	}
	if doc.Plan.Billing != "provisioned" || doc.Plan.Processors != 8 || doc.Plan.BandwidthMbps != 10 {
		t.Errorf("plan document wrong: %+v", doc.Plan)
	}
	if doc.Total != doc.Cost.Total() {
		t.Errorf("total %v != cost total %v", doc.Total, doc.Cost.Total())
	}
}
