package repro

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/dag"
)

func TestRunRequestResolvePresets(t *testing.T) {
	for _, tc := range []struct {
		workflow string
		tasks    string
	}{{"1deg", "montage-1deg"}, {"2deg", "montage-2deg"}, {"4deg", "montage-4deg"}, {"montage-1deg", "montage-1deg"}} {
		spec, plan, err := RunRequest{Workflow: tc.workflow}.Resolve()
		if err != nil {
			t.Fatalf("%s: %v", tc.workflow, err)
		}
		if spec.Name != tc.tasks {
			t.Errorf("%s resolved to %s", tc.workflow, spec.Name)
		}
		if plan.Billing != OnDemand || plan.Mode != Regular {
			t.Errorf("%s: defaults not applied: %+v", tc.workflow, plan)
		}
		if plan.Bandwidth != Mbps(10) {
			t.Errorf("%s: bandwidth default %v, want 10 Mbps", tc.workflow, plan.Bandwidth)
		}
	}
}

func TestRunRequestResolveCustomDegrees(t *testing.T) {
	spec, _, err := RunRequest{Degrees: 3}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(spec.Name, "3deg") {
		t.Errorf("custom spec named %q", spec.Name)
	}
}

func TestRunRequestResolveKnobs(t *testing.T) {
	_, plan, err := RunRequest{
		Workflow: "1deg", Mode: "cleanup", Processors: 16,
		Billing: "provisioned", BandwidthMbps: 100,
	}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if plan.Mode != Cleanup || plan.Processors != 16 || plan.Billing != Provisioned || plan.Bandwidth != Mbps(100) {
		t.Errorf("knobs not applied: %+v", plan)
	}
}

func TestRunRequestResolveErrors(t *testing.T) {
	for name, req := range map[string]RunRequest{
		"empty":              {},
		"unknown workflow":   {Workflow: "9deg"},
		"both selectors":     {Workflow: "1deg", Degrees: 2},
		"bad mode":           {Workflow: "1deg", Mode: "sideways"},
		"bad billing":        {Workflow: "1deg", Billing: "prepaid"},
		"negative procs":     {Workflow: "1deg", Processors: -1},
		"negative bandwidth": {Workflow: "1deg", BandwidthMbps: -10},
		"oversized degrees":  {Degrees: 500},
	} {
		if _, _, err := req.Resolve(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestCanonicalRunKeyStability(t *testing.T) {
	specA, planA, err := RunRequest{Workflow: "1deg"}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	specB, planB, err := RunRequest{Workflow: "1deg", Mode: "regular", BandwidthMbps: 10}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	// An explicit default and an elided one are the same run, so they
	// must share a cache key.
	if CanonicalRunKey(specA, planA) != CanonicalRunKey(specB, planB) {
		t.Error("equivalent requests got distinct keys")
	}
	_, planC, err := RunRequest{Workflow: "1deg", Processors: 4}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if CanonicalRunKey(specA, planA) == CanonicalRunKey(specA, planC) {
		t.Error("distinct plans share a key")
	}
	specD, planD, err := RunRequest{Workflow: "2deg"}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if CanonicalRunKey(specA, planA) == CanonicalRunKey(specD, planD) {
		t.Error("distinct specs share a key")
	}
}

// TestRunDocumentEncodeZeroWidthRun guards the Utilization division: a
// degenerate workflow whose runtimes and file sizes are all zero yields
// a zero-width run, and the resulting document must still encode --
// encoding/json rejects NaN/Inf, so a bad division here would turn
// every /v1/run response for such a workflow into a 500.
func TestRunDocumentEncodeZeroWidthRun(t *testing.T) {
	w := dag.New("degenerate")
	if _, err := w.AddFile("in", 0, false); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AddFile("out", 0, true); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AddTask("noop", "t", 0, []string{"in"}, []string{"out"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Finalize(); err != nil {
		t.Fatal(err)
	}
	res, err := Run(w, DefaultPlan())
	if err != nil {
		t.Fatal(err)
	}
	if u := res.Metrics.Utilization; u != 0 || math.IsNaN(u) || math.IsInf(u, 0) {
		t.Errorf("zero-width run utilization = %v, want 0", u)
	}
	body, err := NewRunDocument(res).Encode()
	if err != nil {
		t.Fatalf("zero-width run document does not encode: %v", err)
	}
	if !json.Valid(body) {
		t.Errorf("document not valid JSON: %s", body)
	}
}

func TestRunDocumentEncodeDeterministic(t *testing.T) {
	spec, plan, err := RunRequest{Workflow: "1deg", Processors: 8, Billing: "provisioned"}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	wf, err := GenerateCached(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(wf, plan)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewRunDocument(res).Encode()
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Run(wf, plan)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRunDocument(res2).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("re-running the same plan produced different documents")
	}
	if !bytes.HasSuffix(a, []byte("\n")) {
		t.Error("document not newline-terminated")
	}
	doc := NewRunDocument(res)
	if doc.Workflow != "montage-1deg" || doc.Tasks != 203 {
		t.Errorf("document header wrong: %s, %d tasks", doc.Workflow, doc.Tasks)
	}
	if doc.Plan.Billing != "provisioned" || doc.Plan.Processors != 8 || doc.Plan.BandwidthMbps != 10 {
		t.Errorf("plan document wrong: %+v", doc.Plan)
	}
	if doc.Total != doc.Cost.Total() {
		t.Errorf("total %v != cost total %v", doc.Total, doc.Cost.Total())
	}
}
