package planner

import (
	"testing"
	"testing/quick"

	"repro/internal/dag"
	"repro/internal/dagtest"
	"repro/internal/datamgmt"
	"repro/internal/exec"
	"repro/internal/montage"
)

func oneDeg(t *testing.T) *dag.Workflow {
	t.Helper()
	w, err := montage.Generate(montage.OneDegree())
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestRegularPlanShape(t *testing.T) {
	w := oneDeg(t)
	p, err := Build(w, Options{Mode: datamgmt.Regular})
	if err != nil {
		t.Fatal(err)
	}
	counts := p.CountByKind()
	// One stage-in per external input (46: 45 images + template), one
	// compute per task, one stage-out per output (mosaic + jpeg).
	if got := counts[StageIn]; got != 46 {
		t.Errorf("stage-in jobs = %d, want 46", got)
	}
	if got := counts[Compute]; got != 203 {
		t.Errorf("compute jobs = %d, want 203", got)
	}
	if got := counts[StageOut]; got != 2 {
		t.Errorf("stage-out jobs = %d, want 2", got)
	}
	if got := counts[CleanupJob]; got != 0 {
		t.Errorf("cleanup jobs = %d in regular mode, want 0", got)
	}
	// Transfer totals match the workflow's external volumes, i.e. what
	// the executor bills in regular mode.
	if got := p.TransferBytes(StageIn); got != w.InputBytes() {
		t.Errorf("stage-in bytes = %d, want %d", got, w.InputBytes())
	}
	if got := p.TransferBytes(StageOut); got != w.OutputBytes() {
		t.Errorf("stage-out bytes = %d, want %d", got, w.OutputBytes())
	}
}

func TestCleanupPlanAddsCleanupJobs(t *testing.T) {
	w := oneDeg(t)
	p, err := Build(w, Options{Mode: datamgmt.Cleanup})
	if err != nil {
		t.Fatal(err)
	}
	counts := p.CountByKind()
	// One cleanup job per deletable file: every file except the two
	// staged-out outputs: 249 - 2 = 247.
	if got := counts[CleanupJob]; got != 247 {
		t.Errorf("cleanup jobs = %d, want 247", got)
	}
	// A cleanup job depends on its file's last consumer.
	j := p.Job("cleanup/region.hdr")
	if j == nil {
		t.Fatal("no cleanup job for the template header")
	}
	if len(j.Depends) != 1 {
		t.Fatalf("cleanup depends = %v, want one compute job", j.Depends)
	}
}

func TestTransferBatching(t *testing.T) {
	w := oneDeg(t)
	p, err := Build(w, Options{Mode: datamgmt.Regular, TransferBatch: 10})
	if err != nil {
		t.Fatal(err)
	}
	// ceil(46/10) = 5 bulk stage-in jobs moving the same total bytes.
	if got := p.CountByKind()[StageIn]; got != 5 {
		t.Errorf("batched stage-in jobs = %d, want 5", got)
	}
	if got := p.TransferBytes(StageIn); got != w.InputBytes() {
		t.Errorf("batched stage-in bytes = %d, want %d", got, w.InputBytes())
	}
}

func TestRemoteIOPlanShape(t *testing.T) {
	w := oneDeg(t)
	p, err := Build(w, Options{Mode: datamgmt.RemoteIO})
	if err != nil {
		t.Fatal(err)
	}
	counts := p.CountByKind()
	// Per task: one stage-in, one compute, one stage-out.
	if counts[StageIn] != 203 || counts[Compute] != 203 || counts[StageOut] != 203 {
		t.Errorf("remote plan counts = %v, want 203 of each", counts)
	}
	// The plan's transfer totals equal what the executor measures for
	// the same mode -- the two implementations must agree.
	m, err := exec.Run(w, exec.Config{Mode: datamgmt.RemoteIO})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.TransferBytes(StageIn); got != m.BytesIn {
		t.Errorf("planned stage-in bytes %d != executed %d", got, m.BytesIn)
	}
	if got := p.TransferBytes(StageOut); got != m.BytesOut {
		t.Errorf("planned stage-out bytes %d != executed %d", got, m.BytesOut)
	}
}

func TestBuildValidation(t *testing.T) {
	w := oneDeg(t)
	if _, err := Build(dag.New("x"), Options{Mode: datamgmt.Regular}); err == nil {
		t.Error("unfinalized workflow accepted")
	}
	if _, err := Build(w, Options{Mode: datamgmt.Mode(9)}); err == nil {
		t.Error("unknown mode accepted")
	}
	if _, err := Build(w, Options{Mode: datamgmt.Regular, TransferBatch: -1}); err == nil {
		t.Error("negative batch accepted")
	}
}

func TestJobLookupAndKindNames(t *testing.T) {
	w := oneDeg(t)
	p, err := Build(w, Options{Mode: datamgmt.Regular})
	if err != nil {
		t.Fatal(err)
	}
	if p.Job("compute/mAdd") == nil {
		t.Error("mAdd compute job not found")
	}
	if p.Job("ghost") != nil {
		t.Error("lookup of absent job returned something")
	}
	for k, want := range map[JobKind]string{
		Compute: "compute", StageIn: "stage-in", StageOut: "stage-out", CleanupJob: "cleanup",
	} {
		if k.String() != want {
			t.Errorf("kind %d name = %q, want %q", k, k.String(), want)
		}
	}
}

// Property: plans over random workflows are topologically valid, closed,
// and agree with the workflow on transfer volumes (regular mode).
func TestPropPlanSound(t *testing.T) {
	f := func(seed int64, modeRaw, batchRaw uint8) bool {
		w := dagtest.RandomLayered(seed)
		mode := datamgmt.Modes()[int(modeRaw)%3]
		opts := Options{Mode: mode, TransferBatch: int(batchRaw % 5)}
		p, err := Build(w, opts)
		if err != nil {
			return false
		}
		// Validity is checked internally by Build; re-verify exposure.
		seen := map[string]bool{}
		for _, j := range p.Jobs {
			for _, d := range j.Depends {
				if !seen[d] {
					return false
				}
			}
			seen[j.Name] = true
		}
		// Compute jobs cover every task exactly once.
		if p.CountByKind()[Compute] != w.NumTasks() {
			return false
		}
		if mode != datamgmt.RemoteIO {
			if p.TransferBytes(StageIn) != w.InputBytes() {
				return false
			}
			if p.TransferBytes(StageOut) != w.OutputBytes() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: in a cleanup plan, no cleanup job for a file precedes any
// compute job that reads the file.
func TestPropCleanupNeverEarly(t *testing.T) {
	f := func(seed int64) bool {
		w := dagtest.RandomLayered(seed)
		p, err := Build(w, Options{Mode: datamgmt.Cleanup})
		if err != nil {
			return false
		}
		pos := map[string]int{}
		for i, j := range p.Jobs {
			pos[j.Name] = i
		}
		for _, j := range p.Jobs {
			if j.Kind != CleanupJob {
				continue
			}
			file := j.Files[0]
			for _, c := range w.File(file).Consumers() {
				consumer := "compute/" + w.Task(c).Name
				if pos[consumer] > pos[j.Name] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
