// Package planner performs the Pegasus-style concrete planning step of
// the paper's Figure 2: it turns an abstract workflow (compute tasks and
// data dependencies) into an executable plan with explicit data-movement
// jobs -- stage-in jobs for external inputs, stage-out jobs for results,
// and, in the dynamic-cleanup model, cleanup jobs that remove files once
// their last consumer has run (the transformation of the paper's
// reference [15]).
//
// The executor (package exec) implements these semantics directly for
// speed; the planner exposes the same decisions as an inspectable,
// serializable artifact, which is what a real workflow-management system
// hands to its scheduler.
package planner

import (
	"fmt"
	"sort"

	"repro/internal/dag"
	"repro/internal/datamgmt"
	"repro/internal/units"
)

// JobKind classifies a plan job.
type JobKind int

const (
	// Compute runs one workflow task.
	Compute JobKind = iota
	// StageIn transfers external inputs into cloud storage.
	StageIn
	// StageOut transfers results back to the user.
	StageOut
	// CleanupJob deletes files that are no longer needed.
	CleanupJob
)

// String names the kind.
func (k JobKind) String() string {
	switch k {
	case Compute:
		return "compute"
	case StageIn:
		return "stage-in"
	case StageOut:
		return "stage-out"
	case CleanupJob:
		return "cleanup"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Job is one node of the concrete plan.
type Job struct {
	Name    string
	Kind    JobKind
	Task    dag.TaskID  // the task a Compute job runs; NoTask otherwise
	Files   []string    // files a transfer/cleanup job touches
	Bytes   units.Bytes // total bytes a transfer job moves
	Depends []string    // names of jobs that must complete first
}

// Plan is a concretized workflow.
type Plan struct {
	Workflow *dag.Workflow
	Mode     datamgmt.Mode
	// Jobs in a valid topological order.
	Jobs []Job

	byName map[string]int
}

// Options configure planning.
type Options struct {
	// Mode picks the data-management model.  Regular produces stage-in,
	// compute and stage-out jobs; Cleanup additionally inserts cleanup
	// jobs; RemoteIO gives every compute job its own stage-in/stage-out
	// pair.
	Mode datamgmt.Mode
	// TransferBatch groups up to this many files into one bulk stage-in
	// job (Regular/Cleanup only); 0 means one job per file.
	TransferBatch int
}

// Build plans the workflow.
func Build(wf *dag.Workflow, opts Options) (*Plan, error) {
	if !wf.Finalized() {
		return nil, fmt.Errorf("planner: workflow %q not finalized", wf.Name)
	}
	if opts.TransferBatch < 0 {
		return nil, fmt.Errorf("planner: negative transfer batch %d", opts.TransferBatch)
	}
	switch opts.Mode {
	case datamgmt.Regular, datamgmt.Cleanup, datamgmt.RemoteIO:
	default:
		return nil, fmt.Errorf("planner: unknown mode %v", opts.Mode)
	}
	p := &Plan{Workflow: wf, Mode: opts.Mode, byName: make(map[string]int)}
	if opts.Mode == datamgmt.RemoteIO {
		p.buildRemoteIO()
	} else {
		if err := p.buildResident(opts); err != nil {
			return nil, err
		}
	}
	if err := p.validate(); err != nil {
		return nil, fmt.Errorf("planner: internal error: %w", err)
	}
	return p, nil
}

func (p *Plan) add(j Job) {
	p.byName[j.Name] = len(p.Jobs)
	p.Jobs = append(p.Jobs, j)
}

// computeName is the plan-job name of a workflow task.
func computeName(t *dag.Task) string { return "compute/" + t.Name }

func (p *Plan) buildResident(opts Options) error {
	wf := p.Workflow
	batch := opts.TransferBatch
	if batch == 0 {
		batch = 1
	}
	// Bulk stage-in jobs over the sorted external inputs.
	inputs := wf.ExternalInputs()
	stageInOf := make(map[string]string, len(inputs))
	for start := 0; start < len(inputs); start += batch {
		end := start + batch
		if end > len(inputs) {
			end = len(inputs)
		}
		var (
			files []string
			total units.Bytes
		)
		for _, f := range inputs[start:end] {
			files = append(files, f.Name)
			total += f.Size
		}
		name := fmt.Sprintf("stage-in/%04d", start/batch)
		for _, f := range files {
			stageInOf[f] = name
		}
		p.add(Job{Name: name, Kind: StageIn, Task: dag.NoTask, Files: files, Bytes: total})
	}
	// Compute jobs depend on stage-ins for external inputs and on
	// producer compute jobs for the rest.
	for _, id := range wf.TopoOrder() {
		t := wf.Task(id)
		depSet := map[string]bool{}
		for _, in := range t.Inputs {
			f := wf.File(in)
			if f.External() {
				depSet[stageInOf[in]] = true
			} else {
				depSet[computeName(wf.Task(f.Producer))] = true
			}
		}
		p.add(Job{
			Name: computeName(t), Kind: Compute, Task: id,
			Depends: sortedKeys(depSet),
		})
	}
	// Cleanup jobs: one per deletable file, after its last consumer.
	if opts.Mode == datamgmt.Cleanup {
		sched, err := datamgmt.DeletionSchedule(wf, wf.TopoOrder())
		if err != nil {
			return err
		}
		var names []string
		for name := range sched {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, fileName := range names {
			killer := wf.Task(sched[fileName])
			p.add(Job{
				Name: "cleanup/" + fileName, Kind: CleanupJob, Task: dag.NoTask,
				Files:   []string{fileName},
				Depends: []string{computeName(killer)},
			})
		}
	}
	// Stage-out jobs: one per declared output, after its producer.
	for _, f := range wf.OutputFiles() {
		deps := []string{}
		if f.Producer != dag.NoTask {
			deps = append(deps, computeName(wf.Task(f.Producer)))
		}
		p.add(Job{
			Name: "stage-out/" + f.Name, Kind: StageOut, Task: dag.NoTask,
			Files: []string{f.Name}, Bytes: f.Size, Depends: deps,
		})
	}
	return nil
}

func (p *Plan) buildRemoteIO() {
	wf := p.Workflow
	for _, id := range wf.TopoOrder() {
		t := wf.Task(id)
		// Per-task stage-in of every input, gated on the producers'
		// stage-outs (data must have reached the user first).
		var (
			inFiles []string
			inBytes units.Bytes
			inDeps  = map[string]bool{}
		)
		for _, in := range t.Inputs {
			f := wf.File(in)
			inFiles = append(inFiles, in)
			inBytes += f.Size
			if f.Producer != dag.NoTask {
				inDeps[fmt.Sprintf("stage-out/%s", wf.Task(f.Producer).Name)] = true
			}
		}
		sort.Strings(inFiles)
		stageIn := fmt.Sprintf("stage-in/%s", t.Name)
		p.add(Job{
			Name: stageIn, Kind: StageIn, Task: dag.NoTask,
			Files: inFiles, Bytes: inBytes, Depends: sortedKeys(inDeps),
		})
		p.add(Job{
			Name: computeName(t), Kind: Compute, Task: id,
			Depends: []string{stageIn},
		})
		var (
			outFiles []string
			outBytes units.Bytes
		)
		for _, out := range t.Outputs {
			outFiles = append(outFiles, out)
			outBytes += wf.File(out).Size
		}
		sort.Strings(outFiles)
		p.add(Job{
			Name: fmt.Sprintf("stage-out/%s", t.Name), Kind: StageOut, Task: dag.NoTask,
			Files: outFiles, Bytes: outBytes, Depends: []string{computeName(t)},
		})
	}
}

// validate checks the plan is closed and topologically ordered.
func (p *Plan) validate() error {
	seen := map[string]bool{}
	for _, j := range p.Jobs {
		for _, d := range j.Depends {
			if !seen[d] {
				return fmt.Errorf("job %q depends on %q which is absent or later", j.Name, d)
			}
		}
		if seen[j.Name] {
			return fmt.Errorf("duplicate job %q", j.Name)
		}
		seen[j.Name] = true
	}
	return nil
}

// Job returns the named job, or nil.
func (p *Plan) Job(name string) *Job {
	i, ok := p.byName[name]
	if !ok {
		return nil
	}
	return &p.Jobs[i]
}

// CountByKind returns how many jobs of each kind the plan holds.
func (p *Plan) CountByKind() map[JobKind]int {
	out := make(map[JobKind]int, 4)
	for _, j := range p.Jobs {
		out[j.Kind]++
	}
	return out
}

// TransferBytes sums the bytes moved by jobs of the given transfer kind.
func (p *Plan) TransferBytes(kind JobKind) units.Bytes {
	var sum units.Bytes
	for _, j := range p.Jobs {
		if j.Kind == kind {
			sum += j.Bytes
		}
	}
	return sum
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
