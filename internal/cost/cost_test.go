package cost

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/exec"
	"repro/internal/units"
)

func almost(a, b units.Money) bool {
	return math.Abs(float64(a-b)) <= 1e-9*math.Max(1, math.Abs(float64(b)))
}

func TestAmazon2008Rates(t *testing.T) {
	p := Amazon2008()
	if p.StoragePerGBMonth != 0.15 || p.TransferInPerGB != 0.10 ||
		p.TransferOutPerGB != 0.16 || p.CPUPerHour != 0.10 {
		t.Fatalf("rates do not match the paper: %+v", p)
	}
	if p.Granularity != PerSecond {
		t.Error("default granularity should be per-second")
	}
	if err := p.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestValidateRejectsNegative(t *testing.T) {
	p := Amazon2008()
	p.CPUPerHour = -1
	if err := p.Validate(); err == nil {
		t.Error("negative rate accepted")
	}
}

func TestMonthlyStorageArchiveAnchor(t *testing.T) {
	// §6 Q2b: the 12 TB 2MASS archive costs 12,000 x $0.15 = $1,800/month.
	p := Amazon2008()
	got := p.MonthlyStorage(units.Bytes(12 * units.TB))
	if !almost(got, 1800) {
		t.Errorf("12 TB monthly storage = %v, want $1800", got)
	}
}

func TestCPUCostAnchors(t *testing.T) {
	// Fig. 10: 5.6 / 20.3 / 84 CPU-hours cost $0.56 / $2.03 / $8.40.
	p := Amazon2008()
	for _, tc := range []struct {
		hours float64
		want  units.Money
	}{{5.6, 0.56}, {20.3, 2.03}, {84, 8.40}} {
		got := p.CPUCost(tc.hours * units.SecondsPerHour)
		if !almost(got, tc.want) {
			t.Errorf("CPUCost(%v h) = %v, want %v", tc.hours, got, tc.want)
		}
	}
}

func TestTransferCosts(t *testing.T) {
	p := Amazon2008()
	// §6 Q2b: uploading the 12 TB archive costs $1,200 at $0.1/GB.
	if got := p.TransferInCost(units.Bytes(12 * units.TB)); !almost(got, 1200) {
		t.Errorf("12 TB transfer in = %v, want $1200", got)
	}
	// 2.229 GB mosaic out at $0.16/GB = $0.35664.
	if got := p.TransferOutCost(units.Bytes(2.229 * units.GB)); !almost(got, 0.35664) {
		t.Errorf("mosaic transfer out = %v, want $0.35664", got)
	}
}

func TestStorageCost(t *testing.T) {
	p := Amazon2008()
	// 1 GB for one 30-day month = $0.15.
	bs := units.GB * units.SecondsPerMonth
	if got := p.StorageCost(bs); !almost(got, 0.15) {
		t.Errorf("1 GB-month = %v, want $0.15", got)
	}
}

func TestProvisionedCPUGranularity(t *testing.T) {
	p := Amazon2008()
	window := units.Duration(1.5 * units.SecondsPerHour)
	// Per-second: 8 procs x 1.5 h x $0.1 = $1.20.
	if got := p.ProvisionedCPUCost(8, window); !almost(got, 1.2) {
		t.Errorf("per-second provisioned = %v, want $1.20", got)
	}
	// Per-hour rounds 1.5 h up to 2 h: 8 x 2 x $0.1 = $1.60.
	p.Granularity = PerHour
	if got := p.ProvisionedCPUCost(8, window); !almost(got, 1.6) {
		t.Errorf("per-hour provisioned = %v, want $1.60", got)
	}
	if PerHour.String() != "per-hour" || PerSecond.String() != "per-second" {
		t.Error("granularity names wrong")
	}
}

func TestBreakdownAggregates(t *testing.T) {
	b := Breakdown{CPU: 1, Storage: 0.5, TransferIn: 0.25, TransferOut: 0.125}
	if !almost(b.Total(), 1.875) {
		t.Errorf("Total = %v, want 1.875", b.Total())
	}
	if !almost(b.Transfer(), 0.375) {
		t.Errorf("Transfer = %v, want 0.375", b.Transfer())
	}
	if !almost(b.DataManagement(), 0.875) {
		t.Errorf("DataManagement = %v, want 0.875", b.DataManagement())
	}
	if b.String() == "" {
		t.Error("empty String()")
	}
}

func metricsFixture() exec.Metrics {
	return exec.Metrics{
		Processors:         16,
		ExecTime:           units.Duration(2 * units.SecondsPerHour),
		BytesIn:            units.Bytes(1 * units.GB),
		BytesOut:           units.Bytes(2 * units.GB),
		StorageByteSeconds: units.GB * units.SecondsPerMonth, // 1 GB-month
		CPUSeconds:         10 * units.SecondsPerHour,
	}
}

func TestProvisionedVsOnDemand(t *testing.T) {
	p := Amazon2008()
	m := metricsFixture()
	prov := p.Provisioned(m)
	// CPU: 16 procs x 2 h x $0.1 = $3.20.
	if !almost(prov.CPU, 3.2) {
		t.Errorf("provisioned CPU = %v, want $3.20", prov.CPU)
	}
	od := p.OnDemand(m)
	// CPU: 10 CPU-h x $0.1 = $1.00.
	if !almost(od.CPU, 1.0) {
		t.Errorf("on-demand CPU = %v, want $1.00", od.CPU)
	}
	// Non-CPU components identical under both plans.
	if od.Storage != prov.Storage || od.TransferIn != prov.TransferIn || od.TransferOut != prov.TransferOut {
		t.Error("non-CPU components differ between plans")
	}
	if !almost(prov.Storage, 0.15) {
		t.Errorf("storage = %v, want $0.15", prov.Storage)
	}
	if !almost(prov.TransferIn, 0.10) {
		t.Errorf("transfer in = %v, want $0.10", prov.TransferIn)
	}
	if !almost(prov.TransferOut, 0.32) {
		t.Errorf("transfer out = %v, want $0.32", prov.TransferOut)
	}
}

// Property: on-demand CPU cost never exceeds the provisioned cost for
// the same run (utilization <= 1), at per-second granularity.
func TestPropOnDemandLEProvisioned(t *testing.T) {
	p := Amazon2008()
	f := func(procs uint8, execMin uint16, busyFrac uint8) bool {
		n := int(procs%128) + 1
		window := units.Duration(execMin) * 60
		frac := float64(busyFrac%101) / 100
		m := exec.Metrics{
			Processors: n,
			ExecTime:   window,
			CPUSeconds: frac * float64(n) * window.Seconds(),
		}
		return p.OnDemand(m).CPU <= p.Provisioned(m).CPU+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: per-hour granularity never bills less than per-second.
func TestPropHourlyAtLeastPerSecond(t *testing.T) {
	ps := Amazon2008()
	ph := Amazon2008()
	ph.Granularity = PerHour
	f := func(procs uint8, secs uint32) bool {
		n := int(procs%64) + 1
		w := units.Duration(secs % 1000000)
		return ph.ProvisionedCPUCost(n, w) >= ps.ProvisionedCPUCost(n, w)-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestCheckpointDataCharges: checkpoint writes bill as inbound transfer,
// restores as outbound, under both CPU-charging plans -- and the
// mixed-fleet spot wrappers inherit the same data charges.
func TestCheckpointDataCharges(t *testing.T) {
	p := Amazon2008()
	m := exec.Metrics{
		Processors: 2, ExecTime: 3600, CPUSeconds: 7200,
		BytesIn: units.Bytes(10 * units.GB), BytesOut: units.Bytes(5 * units.GB),
		CheckpointBytesWritten:  units.Bytes(2 * units.GB),
		CheckpointBytesRestored: units.Bytes(1 * units.GB),
	}
	free := m
	free.CheckpointBytesWritten, free.CheckpointBytesRestored = 0, 0
	for name, price := range map[string]func(exec.Metrics) Breakdown{
		"on-demand":   p.OnDemand,
		"provisioned": p.Provisioned,
	} {
		with, without := price(m), price(free)
		if diff := with.TransferIn - without.TransferIn; !almost(diff, 0.20) {
			t.Errorf("%s: checkpoint writes added %v, want $0.20", name, diff)
		}
		if diff := with.TransferOut - without.TransferOut; !almost(diff, 0.16) {
			t.Errorf("%s: checkpoint restores added %v, want $0.16", name, diff)
		}
		if with.CPU != without.CPU || with.Storage != without.Storage {
			t.Errorf("%s: checkpoint traffic leaked into CPU or storage", name)
		}
	}
	s := Spot{Discount: 0.6}
	if diff := s.OnDemandMixed(p, m).TransferIn - s.OnDemandMixed(p, free).TransferIn; !almost(diff, 0.20) {
		t.Errorf("mixed: checkpoint writes added %v, want $0.20", diff)
	}
}
