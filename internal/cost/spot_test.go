package cost

import (
	"math"
	"testing"

	"repro/internal/exec"
	"repro/internal/units"
)

func TestSpotApplyDiscountsOnlyCPU(t *testing.T) {
	s := Spot{Discount: 0.65, RevocationsPerHour: 0.5}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	p := s.Apply(Amazon2008())
	if math.Abs(float64(p.CPUPerHour)-0.035) > 1e-12 {
		t.Errorf("spot CPU rate = %v, want 0.035", p.CPUPerHour)
	}
	base := Amazon2008()
	if p.StoragePerGBMonth != base.StoragePerGBMonth ||
		p.TransferInPerGB != base.TransferInPerGB ||
		p.TransferOutPerGB != base.TransferOutPerGB {
		t.Errorf("spot touched non-CPU rates: %+v", p)
	}
	// Zero discount is the on-demand schedule.
	if got := (Spot{}).Apply(base); got != base {
		t.Errorf("zero spot changed the schedule: %+v", got)
	}
}

func TestSpotValidate(t *testing.T) {
	for name, s := range map[string]Spot{
		"negative discount": {Discount: -0.1},
		"full discount":     {Discount: 1},
		"negative rate":     {RevocationsPerHour: -1},
	} {
		if err := s.Validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestSpotExpectedRevocations(t *testing.T) {
	s := Spot{Discount: 0.5, RevocationsPerHour: 0.25}
	// A 8-hour run expects 2 reclaims.
	if got := s.ExpectedRevocations(8 * 3600); math.Abs(got-2) > 1e-12 {
		t.Errorf("ExpectedRevocations = %v, want 2", got)
	}
}

func TestSpotMixedPricing(t *testing.T) {
	p := Amazon2008()
	s := Spot{Discount: 0.5}
	m := exec.Metrics{
		Processors:          4,
		OnDemandProcessors:  2,
		ExecTime:            3600,
		CPUSeconds:          3600 * 3, // 2 reliable proc-hours + 1 spot
		SpotCPUSeconds:      3600,
		CapacityProcSeconds: 3600 * 3.5, // half a spot proc-hour revoked
	}
	od := s.OnDemandMixed(p, m)
	// 2 CPU-hours at $0.10 plus 1 spot CPU-hour at $0.05.
	if want := units.Money(0.25); math.Abs(float64(od.CPU-want)) > 1e-12 {
		t.Errorf("OnDemandMixed CPU = %v, want %v", od.CPU, want)
	}
	pv := s.ProvisionedMixed(p, m)
	// 2 reliable proc-hours at $0.10 plus 1.5 available spot proc-hours
	// at $0.05: revoked capacity stops billing.
	if want := units.Money(0.275); math.Abs(float64(pv.CPU-want)) > 1e-12 {
		t.Errorf("ProvisionedMixed CPU = %v, want %v", pv.CPU, want)
	}
	// Non-CPU components match the plain schedules.
	if plain := p.OnDemand(m); od.Storage != plain.Storage || od.TransferIn != plain.TransferIn || od.TransferOut != plain.TransferOut {
		t.Errorf("OnDemandMixed touched non-CPU components: %+v vs %+v", od, plain)
	}
}
