package cost

import (
	"math"
	"testing"
)

func TestSpotApplyDiscountsOnlyCPU(t *testing.T) {
	s := Spot{Discount: 0.65, RevocationsPerHour: 0.5}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	p := s.Apply(Amazon2008())
	if math.Abs(float64(p.CPUPerHour)-0.035) > 1e-12 {
		t.Errorf("spot CPU rate = %v, want 0.035", p.CPUPerHour)
	}
	base := Amazon2008()
	if p.StoragePerGBMonth != base.StoragePerGBMonth ||
		p.TransferInPerGB != base.TransferInPerGB ||
		p.TransferOutPerGB != base.TransferOutPerGB {
		t.Errorf("spot touched non-CPU rates: %+v", p)
	}
	// Zero discount is the on-demand schedule.
	if got := (Spot{}).Apply(base); got != base {
		t.Errorf("zero spot changed the schedule: %+v", got)
	}
}

func TestSpotValidate(t *testing.T) {
	for name, s := range map[string]Spot{
		"negative discount": {Discount: -0.1},
		"full discount":     {Discount: 1},
		"negative rate":     {RevocationsPerHour: -1},
	} {
		if err := s.Validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestSpotExpectedRevocations(t *testing.T) {
	s := Spot{Discount: 0.5, RevocationsPerHour: 0.25}
	// A 8-hour run expects 2 reclaims.
	if got := s.ExpectedRevocations(8 * 3600); math.Abs(got-2) > 1e-12 {
		t.Errorf("ExpectedRevocations = %v, want 2", got)
	}
}
