// Package cost turns measured run metrics into dollar costs under a
// cloud fee schedule.  The rates and normalization follow §3 of the
// paper exactly:
//
//	$0.15 per GB-month  storage
//	$0.10 per GB        transfer into the cloud
//	$0.16 per GB        transfer out of the cloud
//	$0.10 per CPU-hour  compute
//
// "Even though ... some of the quantities span over hours and months, in
// our experiments we normalized the costs on a per second basis."  That
// per-second/per-byte normalization is the default Granularity; the
// PerHour granularity (what Amazon actually billed: whole instance-hours)
// is provided for the ablation benchmarks.
package cost

import (
	"fmt"
	"math"

	"repro/internal/exec"
	"repro/internal/units"
)

// Granularity selects how CPU time is rounded for billing.
type Granularity int

const (
	// PerSecond bills CPU at per-second granularity (the paper's
	// normalization).
	PerSecond Granularity = iota
	// PerHour bills each processor in whole hours, rounded up, as the
	// real 2008 EC2 did.
	PerHour
)

// String names the granularity.
func (g Granularity) String() string {
	if g == PerHour {
		return "per-hour"
	}
	return "per-second"
}

// Pricing is a cloud fee schedule.
type Pricing struct {
	StoragePerGBMonth units.Money
	TransferInPerGB   units.Money
	TransferOutPerGB  units.Money
	CPUPerHour        units.Money
	Granularity       Granularity
}

// Amazon2008 returns the fee schedule the paper used.
func Amazon2008() Pricing {
	return Pricing{
		StoragePerGBMonth: 0.15,
		TransferInPerGB:   0.10,
		TransferOutPerGB:  0.16,
		CPUPerHour:        0.10,
	}
}

// Validate rejects negative rates.
func (p Pricing) Validate() error {
	if p.StoragePerGBMonth < 0 || p.TransferInPerGB < 0 || p.TransferOutPerGB < 0 || p.CPUPerHour < 0 {
		return fmt.Errorf("cost: negative rate in %+v", p)
	}
	return nil
}

// Breakdown is one run's cost split the way the paper's figures split it.
type Breakdown struct {
	CPU         units.Money
	Storage     units.Money
	TransferIn  units.Money
	TransferOut units.Money
}

// Total returns the sum of all components.
func (b Breakdown) Total() units.Money {
	return b.CPU + b.Storage + b.TransferIn + b.TransferOut
}

// Transfer returns the combined transfer cost.
func (b Breakdown) Transfer() units.Money { return b.TransferIn + b.TransferOut }

// DataManagement returns storage plus transfer: the "DM" aggregate of
// Fig. 10.
func (b Breakdown) DataManagement() units.Money { return b.Storage + b.Transfer() }

// String renders the breakdown compactly.
func (b Breakdown) String() string {
	return fmt.Sprintf("cpu=%v storage=%v in=%v out=%v total=%v",
		b.CPU, b.Storage, b.TransferIn, b.TransferOut, b.Total())
}

// StorageCost prices a byte-seconds integral.
func (p Pricing) StorageCost(byteSeconds float64) units.Money {
	return units.Money(units.GBMonths(byteSeconds)) * p.StoragePerGBMonth
}

// MonthlyStorage prices holding the given volume for one month, e.g. the
// paper's 12 TB 2MASS archive at $1,800/month.
func (p Pricing) MonthlyStorage(b units.Bytes) units.Money {
	return units.Money(b.GB()) * p.StoragePerGBMonth
}

// TransferInCost prices data moved into the cloud.
func (p Pricing) TransferInCost(b units.Bytes) units.Money {
	return units.Money(b.GB()) * p.TransferInPerGB
}

// TransferOutCost prices data moved out of the cloud.
func (p Pricing) TransferOutCost(b units.Bytes) units.Money {
	return units.Money(b.GB()) * p.TransferOutPerGB
}

// CPUCost prices cpuSeconds of compute at per-second granularity.
func (p Pricing) CPUCost(cpuSeconds float64) units.Money {
	return units.Money(cpuSeconds/units.SecondsPerHour) * p.CPUPerHour
}

// ProvisionedCPUCost prices holding procs processors for the given
// window, honoring the billing granularity.
func (p Pricing) ProvisionedCPUCost(procs int, window units.Duration) units.Money {
	hours := window.Hours()
	if p.Granularity == PerHour {
		hours = math.Ceil(hours)
	}
	return units.Money(float64(procs)*hours) * p.CPUPerHour
}

// dataCharges prices the run's data movement and occupancy, shared by
// both CPU-charging plans.  Checkpoint images are data like any other:
// their storage occupancy is already inside the byte-seconds integral,
// each write moves Recovery.Bytes into the cloud (charged at the
// inbound rate) and each restore reads the image back out (charged at
// the outbound rate) -- a checkpoint/restart policy is no longer free
// except for its wall-clock overhead.
func (p Pricing) dataCharges(m exec.Metrics) Breakdown {
	return Breakdown{
		Storage:     p.StorageCost(m.StorageByteSeconds),
		TransferIn:  p.TransferInCost(m.BytesIn + m.CheckpointBytesWritten),
		TransferOut: p.TransferOutCost(m.BytesOut + m.CheckpointBytesRestored),
	}
}

// Provisioned prices a run under the paper's Question-1 plan: the
// processor pool is charged for the whole provisioning window (input
// staging plus execution), whether busy or idle.
func (p Pricing) Provisioned(m exec.Metrics) Breakdown {
	b := p.dataCharges(m)
	b.CPU = p.ProvisionedCPUCost(m.Processors, m.ExecTime)
	return b
}

// OnDemand prices a run under the paper's Question-2 plan: CPU is charged
// only for the seconds tasks actually computed ("the processor time is
// used only as much as needed").
func (p Pricing) OnDemand(m exec.Metrics) Breakdown {
	b := p.dataCharges(m)
	b.CPU = p.CPUCost(m.CPUSeconds)
	return b
}
