package cost

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/units"
)

// Spot is a spot-market model layered on a base fee schedule: the same
// capacity at a discounted CPU rate, in exchange for the provider's
// right to reclaim it.  Amazon introduced spot instances in 2009, one
// year after the paper; this captures the trade its §8 reliability
// discussion anticipates.  Storage and transfer rates are unaffected --
// only compute is sold on the spot market.
type Spot struct {
	// Discount is the fraction taken off the on-demand CPU rate, in
	// [0, 1): 0.65 means spot CPU costs 35% of on-demand.
	Discount float64
	// RevocationsPerHour is the expected rate of capacity reclaims
	// while running (the Poisson intensity SpotSchedule samples from).
	RevocationsPerHour float64
}

// Validate rejects degenerate spot models.
func (s Spot) Validate() error {
	if s.Discount < 0 || s.Discount >= 1 {
		return fmt.Errorf("cost: spot discount %v outside [0,1)", s.Discount)
	}
	if s.RevocationsPerHour < 0 {
		return fmt.Errorf("cost: negative spot revocation rate %v/hour", s.RevocationsPerHour)
	}
	return nil
}

// Apply returns the fee schedule with the CPU rate discounted to the
// spot price; every other rate is unchanged.
func (s Spot) Apply(p Pricing) Pricing {
	p.CPUPerHour *= units.Money(1 - s.Discount)
	return p
}

// ExpectedRevocations returns how many capacity reclaims a run of the
// given length should expect under this model.
func (s Spot) ExpectedRevocations(d units.Duration) float64 {
	return s.RevocationsPerHour * d.Hours()
}

// OnDemandMixed prices a mixed-fleet run under on-demand CPU charging:
// the CPU-seconds consumed on the reliable sub-pool bill at the full
// rate, the spot sub-pool's at the discounted spot rate.  Storage and
// transfer are market-independent.
func (s Spot) OnDemandMixed(p Pricing, m exec.Metrics) Breakdown {
	b := p.OnDemand(m)
	reliableCPU := m.CPUSeconds - m.SpotCPUSeconds
	if reliableCPU < 0 {
		reliableCPU = 0
	}
	b.CPU = p.CPUCost(reliableCPU) + s.Apply(p).CPUCost(m.SpotCPUSeconds)
	return b
}

// ProvisionedMixed prices a mixed-fleet run under provisioned CPU
// charging: the reliable sub-pool is held (and billed at the full rate,
// honoring the billing granularity) for the whole execution window,
// while the spot sub-pool bills its integrated available capacity at
// the spot rate -- revoked capacity stops billing until it is restored,
// exactly as a replacement spot instance would.
func (s Spot) ProvisionedMixed(p Pricing, m exec.Metrics) Breakdown {
	b := p.Provisioned(m)
	spotCapacity := m.CapacityProcSeconds - float64(m.OnDemandProcessors)*m.ExecTime.Seconds()
	if spotCapacity < 0 {
		spotCapacity = 0
	}
	b.CPU = p.ProvisionedCPUCost(m.OnDemandProcessors, m.ExecTime) + s.Apply(p).CPUCost(spotCapacity)
	return b
}
