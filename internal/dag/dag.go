// Package dag models a scientific workflow as a directed acyclic graph of
// tasks connected by data dependencies, the representation the paper's
// simulator consumes (an adjacency list parsed from Montage's XML DAG
// description, with file sizes and task runtimes attached).
//
// A Workflow owns two kinds of vertices:
//
//   - Task: one invocation of a routine (e.g. mProject) with a runtime on
//     a reference CPU, a set of input files and a set of output files.
//   - File: a named, sized data item.  A file has at most one producer
//     task; files with no producer are the workflow's external inputs
//     (staged in from the user), and files marked as outputs are staged
//     back out to the user at the end.
//
// Task-to-task edges are implied by files: t1 -> t2 whenever an output of
// t1 is an input of t2.  Levels follow the paper's definition: tasks with
// no data-dependence are level 1, and every other task is one plus the
// maximum level of its parents.
package dag

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/units"
)

// TaskID identifies a task within a workflow.
type TaskID int

// File is a data item used or produced by the workflow.
type File struct {
	Name     string      // unique within the workflow
	Size     units.Bytes // size in bytes
	Producer TaskID      // task that writes it, or NoTask for external inputs
	Output   bool        // true if the file must be staged out to the user

	consumers []TaskID // tasks that read the file, sorted by ID
}

// NoTask marks a file with no producing task (an external input).
const NoTask TaskID = -1

// Consumers returns the IDs of the tasks that read the file, in ID order.
// The returned slice is owned by the workflow and must not be modified.
func (f *File) Consumers() []TaskID { return f.consumers }

// External reports whether the file comes from outside the workflow and
// must be transferred in from the user before any consumer can run.
func (f *File) External() bool { return f.Producer == NoTask }

// Task is one vertex of the workflow graph.
type Task struct {
	ID      TaskID
	Name    string         // unique within the workflow
	Type    string         // routine name, e.g. "mProject"
	Runtime units.Duration // runtime on the reference CPU

	Inputs  []string // names of files read
	Outputs []string // names of files written

	parents  []TaskID
	children []TaskID
	level    int
}

// Parents returns the IDs of tasks this task depends on, in ID order.
func (t *Task) Parents() []TaskID { return t.parents }

// Children returns the IDs of tasks that depend on this task, in ID order.
func (t *Task) Children() []TaskID { return t.children }

// Level returns the task's level per the paper's definition (roots are 1).
func (t *Task) Level() int { return t.level }

// Workflow is an immutable-after-Finalize DAG of tasks and files.
type Workflow struct {
	Name  string
	tasks []*Task
	files map[string]*File

	finalized bool
	order     []TaskID // topological order, computed by Finalize
	maxLevel  int
}

// New returns an empty workflow with the given name.
func New(name string) *Workflow {
	return &Workflow{Name: name, files: make(map[string]*File)}
}

// AddFile registers a file.  Size must be non-negative and the name
// unique.  Producer links are established by AddTask.
func (w *Workflow) AddFile(name string, size units.Bytes, output bool) (*File, error) {
	if w.finalized {
		return nil, errors.New("dag: workflow already finalized")
	}
	if name == "" {
		return nil, errors.New("dag: empty file name")
	}
	if size < 0 {
		return nil, fmt.Errorf("dag: file %q has negative size %d", name, size)
	}
	if _, dup := w.files[name]; dup {
		return nil, fmt.Errorf("dag: duplicate file %q", name)
	}
	f := &File{Name: name, Size: size, Producer: NoTask, Output: output}
	w.files[name] = f
	return f, nil
}

// AddTask registers a task reading the named input files and writing the
// named output files.  All files must already exist, and each output file
// must not already have a producer.
func (w *Workflow) AddTask(name, typ string, runtime units.Duration, inputs, outputs []string) (*Task, error) {
	if w.finalized {
		return nil, errors.New("dag: workflow already finalized")
	}
	if name == "" {
		return nil, errors.New("dag: empty task name")
	}
	if runtime < 0 {
		return nil, fmt.Errorf("dag: task %q has negative runtime %v", name, runtime)
	}
	for _, t := range w.tasks {
		if t.Name == name {
			return nil, fmt.Errorf("dag: duplicate task %q", name)
		}
	}
	id := TaskID(len(w.tasks))
	t := &Task{
		ID: id, Name: name, Type: typ, Runtime: runtime,
		Inputs: append([]string(nil), inputs...), Outputs: append([]string(nil), outputs...),
	}
	seen := make(map[string]bool, len(inputs)+len(outputs))
	for _, in := range t.Inputs {
		f, ok := w.files[in]
		if !ok {
			return nil, fmt.Errorf("dag: task %q reads unknown file %q", name, in)
		}
		if seen[in] {
			return nil, fmt.Errorf("dag: task %q lists file %q twice", name, in)
		}
		seen[in] = true
		f.consumers = append(f.consumers, id)
	}
	for _, out := range t.Outputs {
		f, ok := w.files[out]
		if !ok {
			return nil, fmt.Errorf("dag: task %q writes unknown file %q", name, out)
		}
		if seen[out] {
			return nil, fmt.Errorf("dag: task %q lists file %q twice", name, out)
		}
		seen[out] = true
		if f.Producer != NoTask {
			return nil, fmt.Errorf("dag: file %q produced by two tasks", out)
		}
		f.Producer = id
	}
	w.tasks = append(w.tasks, t)
	return t, nil
}

// Finalize validates the graph, derives task-to-task edges, computes a
// topological order and per-task levels, and freezes the workflow.
func (w *Workflow) Finalize() error {
	if w.finalized {
		return nil
	}
	if len(w.tasks) == 0 {
		return errors.New("dag: workflow has no tasks")
	}
	// Derive parent/child edges from file producer/consumer relations.
	for _, t := range w.tasks {
		parentSet := make(map[TaskID]bool)
		for _, in := range t.Inputs {
			if p := w.files[in].Producer; p != NoTask && p != t.ID {
				parentSet[p] = true
			}
		}
		t.parents = t.parents[:0]
		for p := range parentSet {
			t.parents = append(t.parents, p)
		}
		sort.Slice(t.parents, func(i, j int) bool { return t.parents[i] < t.parents[j] })
	}
	for _, t := range w.tasks {
		for _, p := range t.parents {
			w.tasks[p].children = append(w.tasks[p].children, t.ID)
		}
	}
	for _, t := range w.tasks {
		sort.Slice(t.children, func(i, j int) bool { return t.children[i] < t.children[j] })
	}

	// Kahn's algorithm for a deterministic topological order (smallest ID
	// first among ready tasks) and cycle detection.
	indeg := make([]int, len(w.tasks))
	for _, t := range w.tasks {
		indeg[t.ID] = len(t.parents)
	}
	ready := &idHeap{}
	for _, t := range w.tasks {
		if indeg[t.ID] == 0 {
			ready.push(t.ID)
		}
	}
	w.order = w.order[:0]
	for ready.len() > 0 {
		id := ready.pop()
		w.order = append(w.order, id)
		for _, c := range w.tasks[id].children {
			indeg[c]--
			if indeg[c] == 0 {
				ready.push(c)
			}
		}
	}
	if len(w.order) != len(w.tasks) {
		return errors.New("dag: workflow contains a cycle")
	}

	// Levels per the paper: roots are level 1; otherwise 1 + max parent.
	w.maxLevel = 0
	for _, id := range w.order {
		t := w.tasks[id]
		t.level = 1
		for _, p := range t.parents {
			if lv := w.tasks[p].level + 1; lv > t.level {
				t.level = lv
			}
		}
		if t.level > w.maxLevel {
			w.maxLevel = t.level
		}
	}

	// Every non-external file must be consumed or be a declared output;
	// dangling files are almost always a generator bug.  Collect and
	// sort before reporting so the error names the same file on every
	// run regardless of map iteration order.
	var dangling []string
	for _, f := range w.files {
		if !f.External() && len(f.consumers) == 0 && !f.Output {
			dangling = append(dangling, f.Name)
		}
	}
	sort.Strings(dangling)
	if len(dangling) > 0 {
		return fmt.Errorf("dag: file %q is produced but never consumed nor staged out", dangling[0])
	}
	w.finalized = true
	return nil
}

// Finalized reports whether Finalize has completed successfully.
func (w *Workflow) Finalized() bool { return w.finalized }

// NumTasks returns the number of tasks.
func (w *Workflow) NumTasks() int { return len(w.tasks) }

// NumFiles returns the number of files.
func (w *Workflow) NumFiles() int { return len(w.files) }

// Task returns the task with the given ID.
func (w *Workflow) Task(id TaskID) *Task { return w.tasks[id] }

// Tasks returns all tasks in ID order. The slice is owned by the workflow.
func (w *Workflow) Tasks() []*Task { return w.tasks }

// File returns the named file, or nil if it does not exist.
func (w *Workflow) File(name string) *File { return w.files[name] }

// Files returns all files sorted by name.
func (w *Workflow) Files() []*File {
	out := make([]*File, 0, len(w.files))
	for _, f := range w.files {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// TopoOrder returns a deterministic topological order of task IDs.
// Finalize must have been called.
func (w *Workflow) TopoOrder() []TaskID { return w.order }

// MaxLevel returns the number of levels in the workflow.
func (w *Workflow) MaxLevel() int { return w.maxLevel }

// TasksAtLevel returns the tasks at the given level, in ID order.
func (w *Workflow) TasksAtLevel(level int) []*Task {
	var out []*Task
	for _, t := range w.tasks {
		if t.level == level {
			out = append(out, t)
		}
	}
	return out
}

// ExternalInputs returns the files that must be staged in from the user,
// sorted by name.
func (w *Workflow) ExternalInputs() []*File {
	var out []*File
	for _, f := range w.Files() {
		if f.External() {
			out = append(out, f)
		}
	}
	return out
}

// OutputFiles returns the files staged back to the user, sorted by name.
func (w *Workflow) OutputFiles() []*File {
	var out []*File
	for _, f := range w.Files() {
		if f.Output {
			out = append(out, f)
		}
	}
	return out
}

// TotalRuntime returns the sum of all task runtimes: the total CPU time
// consumed on the reference CPU (the paper's CPU-hours follow from this).
func (w *Workflow) TotalRuntime() units.Duration {
	var sum units.Duration
	for _, t := range w.tasks {
		sum += t.Runtime
	}
	return sum
}

// TotalFileBytes returns the sum of the sizes of every file used or
// produced by the workflow: the numerator of the paper's CCR formula.
func (w *Workflow) TotalFileBytes() units.Bytes {
	var sum units.Bytes
	for _, f := range w.files {
		sum += f.Size
	}
	return sum
}

// InputBytes returns the total size of external input files.
func (w *Workflow) InputBytes() units.Bytes {
	var sum units.Bytes
	for _, f := range w.files {
		if f.External() {
			sum += f.Size
		}
	}
	return sum
}

// OutputBytes returns the total size of files staged out to the user.
func (w *Workflow) OutputBytes() units.Bytes {
	var sum units.Bytes
	for _, f := range w.files {
		if f.Output {
			sum += f.Size
		}
	}
	return sum
}

// MaxParallelism returns the width of the widest level: an upper bound on
// the number of processors the workflow can use at once when tasks within
// a level are independent (true for Montage).
func (w *Workflow) MaxParallelism() int {
	counts := make(map[int]int)
	for _, t := range w.tasks {
		counts[t.level]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	return max
}

// CriticalPath returns the length of the longest runtime-weighted path
// through the DAG: a lower bound on makespan with unlimited processors
// (data transfer excluded).
func (w *Workflow) CriticalPath() units.Duration {
	finish := make([]units.Duration, len(w.tasks))
	var best units.Duration
	for _, id := range w.order {
		t := w.tasks[id]
		var start units.Duration
		for _, p := range t.parents {
			if finish[p] > start {
				start = finish[p]
			}
		}
		finish[id] = start + t.Runtime
		if finish[id] > best {
			best = finish[id]
		}
	}
	return best
}

// UpwardRanks returns each task's runtime-weighted bottom level: its own
// runtime plus the longest runtime path through its descendants.  Tasks
// with the largest rank head the critical path; a mixed-fleet scheduler
// uses the ranks to place critical-path work on reliable capacity.
func (w *Workflow) UpwardRanks() []units.Duration {
	rank := make([]units.Duration, len(w.tasks))
	for i := len(w.order) - 1; i >= 0; i-- {
		t := w.tasks[w.order[i]]
		var below units.Duration
		for _, c := range t.children {
			if rank[c] > below {
				below = rank[c]
			}
		}
		rank[t.ID] = t.Runtime + below
	}
	return rank
}

// ScaleFileSizes multiplies every file size by factor, the operation the
// paper uses to sweep the communication-to-computation ratio ("we multiply
// each file size by CCRd/CCRr").  It may only be called before Finalize
// or on a finalized workflow via Clone-and-scale in package montage.
func (w *Workflow) ScaleFileSizes(factor float64) error {
	if factor <= 0 {
		return fmt.Errorf("dag: non-positive scale factor %v", factor)
	}
	for _, f := range w.files {
		f.Size = units.BytesOf(float64(f.Size) * factor)
	}
	return nil
}

// Clone returns a deep copy of the workflow.  The copy preserves
// finalization state, orders and levels.
func (w *Workflow) Clone() *Workflow {
	c := New(w.Name)
	for name, f := range w.files {
		nf := *f
		nf.consumers = append([]TaskID(nil), f.consumers...)
		c.files[name] = &nf
	}
	c.tasks = make([]*Task, len(w.tasks))
	for i, t := range w.tasks {
		nt := *t
		nt.Inputs = append([]string(nil), t.Inputs...)
		nt.Outputs = append([]string(nil), t.Outputs...)
		nt.parents = append([]TaskID(nil), t.parents...)
		nt.children = append([]TaskID(nil), t.children...)
		c.tasks[i] = &nt
	}
	c.finalized = w.finalized
	c.order = append([]TaskID(nil), w.order...)
	c.maxLevel = w.maxLevel
	return c
}

// idHeap is a tiny min-heap of TaskIDs used for deterministic Kahn order.
type idHeap struct{ ids []TaskID }

func (h *idHeap) len() int { return len(h.ids) }

func (h *idHeap) push(id TaskID) {
	h.ids = append(h.ids, id)
	i := len(h.ids) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.ids[p] <= h.ids[i] {
			break
		}
		h.ids[p], h.ids[i] = h.ids[i], h.ids[p]
		i = p
	}
}

func (h *idHeap) pop() TaskID {
	top := h.ids[0]
	last := len(h.ids) - 1
	h.ids[0] = h.ids[last]
	h.ids = h.ids[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.ids) && h.ids[l] < h.ids[small] {
			small = l
		}
		if r < len(h.ids) && h.ids[r] < h.ids[small] {
			small = r
		}
		if small == i {
			break
		}
		h.ids[i], h.ids[small] = h.ids[small], h.ids[i]
		i = small
	}
	return top
}
