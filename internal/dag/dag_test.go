package dag

import (
	"strings"
	"testing"

	"repro/internal/units"
)

// buildPaperExample reproduces Figure 3 of the paper: seven tasks 0..6,
// files a..h, task 6 consuming three inputs.
//
//	a -> 0 -> b -> {1, 2}
//	1: b -> c -> 3 -> f'... simplified exactly as in the figure:
//	0(a->b); 1(b->c); 2(b->d); 3(c->e); 4(c->f); 5(d->g... )
//
// We use the figure's structure: 0 produces b from a; 1 and 2 consume b;
// 1 produces c consumed by 3 and 4; 2 produces d consumed by 5; tasks
// 3,4,5 produce e,f,h; task 6 consumes e,f,h and produces g. Outputs of
// the workflow are g and h (per the paper's narration).
func buildPaperExample(t *testing.T) *Workflow {
	t.Helper()
	w := New("fig3")
	mustFile := func(name string, size float64, out bool) {
		if _, err := w.AddFile(name, units.Bytes(size), out); err != nil {
			t.Fatalf("AddFile(%q): %v", name, err)
		}
	}
	mustTask := func(name string, rt float64, in, out []string) {
		if _, err := w.AddTask(name, "routine", units.Duration(rt), in, out); err != nil {
			t.Fatalf("AddTask(%q): %v", name, err)
		}
	}
	mustFile("a", 100, false)
	mustFile("b", 200, false)
	mustFile("c", 300, false)
	mustFile("d", 400, false)
	mustFile("e", 500, false)
	mustFile("f", 600, false)
	mustFile("h", 700, true)
	mustFile("g", 800, true)
	mustTask("t0", 10, []string{"a"}, []string{"b"})
	mustTask("t1", 20, []string{"b"}, []string{"c"})
	mustTask("t2", 30, []string{"b"}, []string{"d"})
	mustTask("t3", 40, []string{"c"}, []string{"e"})
	mustTask("t4", 50, []string{"c"}, []string{"f"})
	mustTask("t5", 60, []string{"d"}, []string{"h"})
	mustTask("t6", 70, []string{"e", "f", "h"}, []string{"g"})
	if err := w.Finalize(); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	return w
}

func TestPaperExampleStructure(t *testing.T) {
	w := buildPaperExample(t)
	if got := w.NumTasks(); got != 7 {
		t.Fatalf("NumTasks = %d, want 7", got)
	}
	if got := w.NumFiles(); got != 8 {
		t.Fatalf("NumFiles = %d, want 8", got)
	}
	wantLevels := map[string]int{"t0": 1, "t1": 2, "t2": 2, "t3": 3, "t4": 3, "t5": 3, "t6": 4}
	for _, task := range w.Tasks() {
		if task.Level() != wantLevels[task.Name] {
			t.Errorf("level(%s) = %d, want %d", task.Name, task.Level(), wantLevels[task.Name])
		}
	}
	if got := w.MaxLevel(); got != 4 {
		t.Errorf("MaxLevel = %d, want 4", got)
	}
	if got := w.MaxParallelism(); got != 3 {
		t.Errorf("MaxParallelism = %d, want 3", got)
	}
}

func TestPaperExampleEdges(t *testing.T) {
	w := buildPaperExample(t)
	t6 := w.Task(6)
	if got := len(t6.Parents()); got != 3 {
		t.Fatalf("t6 parents = %d, want 3", got)
	}
	t0 := w.Task(0)
	if got := len(t0.Children()); got != 2 {
		t.Fatalf("t0 children = %d, want 2", got)
	}
	if got := len(t0.Parents()); got != 0 {
		t.Fatalf("t0 parents = %d, want 0", got)
	}
	b := w.File("b")
	if b.Producer != 0 {
		t.Errorf("producer(b) = %d, want 0", b.Producer)
	}
	if got := len(b.Consumers()); got != 2 {
		t.Errorf("consumers(b) = %d, want 2", got)
	}
}

func TestExternalAndOutputs(t *testing.T) {
	w := buildPaperExample(t)
	ins := w.ExternalInputs()
	if len(ins) != 1 || ins[0].Name != "a" {
		t.Fatalf("ExternalInputs = %v, want [a]", names(ins))
	}
	outs := w.OutputFiles()
	if len(outs) != 2 || outs[0].Name != "g" || outs[1].Name != "h" {
		t.Fatalf("OutputFiles = %v, want [g h]", names(outs))
	}
	if got := w.InputBytes(); got != 100 {
		t.Errorf("InputBytes = %d, want 100", got)
	}
	if got := w.OutputBytes(); got != 1500 {
		t.Errorf("OutputBytes = %d, want 1500", got)
	}
}

func names(fs []*File) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = f.Name
	}
	return out
}

func TestTopoOrderRespectsDependencies(t *testing.T) {
	w := buildPaperExample(t)
	pos := make(map[TaskID]int)
	for i, id := range w.TopoOrder() {
		pos[id] = i
	}
	if len(pos) != w.NumTasks() {
		t.Fatalf("topo order has %d entries, want %d", len(pos), w.NumTasks())
	}
	for _, task := range w.Tasks() {
		for _, p := range task.Parents() {
			if pos[p] >= pos[task.ID] {
				t.Errorf("parent %d not before task %d in topo order", p, task.ID)
			}
		}
	}
}

func TestAggregates(t *testing.T) {
	w := buildPaperExample(t)
	if got := w.TotalRuntime(); got != 280 {
		t.Errorf("TotalRuntime = %v, want 280", got)
	}
	if got := w.TotalFileBytes(); got != 3600 {
		t.Errorf("TotalFileBytes = %d, want 3600", got)
	}
	// Critical path: t0(10) -> t2(30) -> t5(60) -> t6(70) = 170.
	if got := w.CriticalPath(); got != 170 {
		t.Errorf("CriticalPath = %v, want 170", got)
	}
}

func TestCCR(t *testing.T) {
	w := buildPaperExample(t)
	b := units.Bandwidth(10) // 10 B/s
	// CCR = (3600/10)/280 = 360/280.
	want := 360.0 / 280.0
	if got := w.CCR(b); !closeTo(got, want) {
		t.Errorf("CCR = %v, want %v", got, want)
	}
	if got := w.CCR(0); got != 0 {
		t.Errorf("CCR at zero bandwidth = %v, want 0", got)
	}
}

func TestRescaleCCR(t *testing.T) {
	w := buildPaperExample(t)
	b := units.Bandwidth(10)
	scaled, err := w.RescaleCCR(2.0, b)
	if err != nil {
		t.Fatalf("RescaleCCR: %v", err)
	}
	if got := scaled.CCR(b); !closeTo(got, 2.0) {
		t.Errorf("scaled CCR = %v, want 2.0", got)
	}
	// The original must be untouched.
	if got := w.TotalFileBytes(); got != 3600 {
		t.Errorf("original TotalFileBytes changed to %d", got)
	}
	if !strings.Contains(scaled.Name, "ccr") {
		t.Errorf("scaled name %q should mention ccr", scaled.Name)
	}
	if _, err := w.RescaleCCR(0, b); err == nil {
		t.Error("RescaleCCR(0) should fail")
	}
}

func closeTo(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-9*(1+b)
}

func TestCycleDetection(t *testing.T) {
	w := New("cycle")
	w.AddFile("x", 1, false)
	w.AddFile("y", 1, true)
	if _, err := w.AddTask("t0", "r", 1, []string{"y"}, []string{"x"}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AddTask("t1", "r", 1, []string{"x"}, []string{"y"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Finalize(); err == nil {
		t.Fatal("Finalize should detect the cycle")
	}
}

func TestValidationErrors(t *testing.T) {
	w := New("v")
	if _, err := w.AddFile("", 1, false); err == nil {
		t.Error("empty file name accepted")
	}
	if _, err := w.AddFile("f", -1, false); err == nil {
		t.Error("negative size accepted")
	}
	if _, err := w.AddFile("f", 1, false); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AddFile("f", 2, false); err == nil {
		t.Error("duplicate file accepted")
	}
	if _, err := w.AddTask("", "r", 1, nil, nil); err == nil {
		t.Error("empty task name accepted")
	}
	if _, err := w.AddTask("t", "r", -1, nil, nil); err == nil {
		t.Error("negative runtime accepted")
	}
	if _, err := w.AddTask("t", "r", 1, []string{"missing"}, nil); err == nil {
		t.Error("unknown input accepted")
	}
	if _, err := w.AddTask("t", "r", 1, nil, []string{"missing"}); err == nil {
		t.Error("unknown output accepted")
	}
	if _, err := w.AddTask("t", "r", 1, []string{"f", "f"}, nil); err == nil {
		t.Error("duplicate input accepted")
	}
	if _, err := w.AddTask("t", "r", 1, nil, []string{"f"}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AddTask("t", "r", 1, nil, nil); err == nil {
		t.Error("duplicate task name accepted")
	}
	if _, err := w.AddTask("t2", "r", 1, nil, []string{"f"}); err == nil {
		t.Error("second producer accepted")
	}
}

func TestDanglingFileRejected(t *testing.T) {
	w := New("dangling")
	w.AddFile("in", 1, false)
	w.AddFile("orphan", 1, false) // produced, never consumed, not output
	if _, err := w.AddTask("t0", "r", 1, []string{"in"}, []string{"orphan"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Finalize(); err == nil {
		t.Fatal("Finalize should reject a produced-but-unused file")
	}
}

func TestEmptyWorkflowRejected(t *testing.T) {
	w := New("empty")
	if err := w.Finalize(); err == nil {
		t.Fatal("Finalize should reject an empty workflow")
	}
}

func TestMutationAfterFinalizeRejected(t *testing.T) {
	w := buildPaperExample(t)
	if _, err := w.AddFile("new", 1, false); err == nil {
		t.Error("AddFile after Finalize accepted")
	}
	if _, err := w.AddTask("new", "r", 1, nil, nil); err == nil {
		t.Error("AddTask after Finalize accepted")
	}
	if err := w.Finalize(); err != nil {
		t.Errorf("second Finalize should be a no-op, got %v", err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	w := buildPaperExample(t)
	c := w.Clone()
	if !c.Finalized() {
		t.Fatal("clone lost finalized state")
	}
	c.File("a").Size = 9999
	if w.File("a").Size != 100 {
		t.Error("mutating clone file changed original")
	}
	if c.NumTasks() != w.NumTasks() || c.MaxLevel() != w.MaxLevel() {
		t.Error("clone structure differs from original")
	}
	if got, want := len(c.TopoOrder()), len(w.TopoOrder()); got != want {
		t.Errorf("clone topo order length %d, want %d", got, want)
	}
}

func TestScaleFileSizes(t *testing.T) {
	w := buildPaperExample(t)
	c := w.Clone()
	if err := c.ScaleFileSizes(2); err != nil {
		t.Fatal(err)
	}
	if got := c.TotalFileBytes(); got != 7200 {
		t.Errorf("scaled TotalFileBytes = %d, want 7200", got)
	}
	if err := c.ScaleFileSizes(-1); err == nil {
		t.Error("negative factor accepted")
	}
}

func TestTasksAtLevel(t *testing.T) {
	w := buildPaperExample(t)
	lv3 := w.TasksAtLevel(3)
	if len(lv3) != 3 {
		t.Fatalf("level 3 has %d tasks, want 3", len(lv3))
	}
	if len(w.TasksAtLevel(99)) != 0 {
		t.Error("nonexistent level should be empty")
	}
}
