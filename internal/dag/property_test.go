package dag

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

// randomLayered builds a random layered DAG (the family Montage belongs
// to) from a seed: L levels of random width, each task consuming 1-3
// files produced by the previous level (or external inputs at level 1).
func randomLayered(seed int64) *Workflow {
	rng := rand.New(rand.NewSource(seed))
	w := New(fmt.Sprintf("rand-%d", seed))
	levels := 2 + rng.Intn(4)
	var prevOutputs []string

	// External inputs for level 1.
	nIn := 1 + rng.Intn(5)
	for i := 0; i < nIn; i++ {
		name := fmt.Sprintf("in-%d", i)
		w.AddFile(name, units.Bytes(1+rng.Intn(1000)), false)
		prevOutputs = append(prevOutputs, name)
	}

	taskN := 0
	for lv := 1; lv <= levels; lv++ {
		width := 1 + rng.Intn(5)
		last := lv == levels
		var outs []string
		for i := 0; i < width; i++ {
			nInputs := 1 + rng.Intn(3)
			if nInputs > len(prevOutputs) {
				nInputs = len(prevOutputs)
			}
			perm := rng.Perm(len(prevOutputs))[:nInputs]
			inputs := make([]string, nInputs)
			for j, p := range perm {
				inputs[j] = prevOutputs[p]
			}
			out := fmt.Sprintf("f-%d-%d", lv, i)
			w.AddFile(out, units.Bytes(1+rng.Intn(1000)), last)
			w.AddTask(fmt.Sprintf("t-%d", taskN), "r",
				units.Duration(1+rng.Intn(100)), inputs, []string{out})
			outs = append(outs, out)
			taskN++
		}
		prevOutputs = outs
	}
	// Any produced file that ended up unconsumed and is not an output
	// would fail Finalize; mark such files as outputs.
	for _, f := range w.files {
		if !f.External() && len(f.consumers) == 0 {
			f.Output = true
		}
	}
	if err := w.Finalize(); err != nil {
		panic(err)
	}
	return w
}

// Property: the topological order always respects parent-before-child.
func TestPropTopoOrderValid(t *testing.T) {
	f := func(seed int64) bool {
		w := randomLayered(seed)
		pos := make(map[TaskID]int)
		for i, id := range w.TopoOrder() {
			pos[id] = i
		}
		for _, task := range w.Tasks() {
			for _, p := range task.Parents() {
				if pos[p] >= pos[task.ID] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: levels obey the paper's recurrence level = 1 + max(parents).
func TestPropLevelRecurrence(t *testing.T) {
	f := func(seed int64) bool {
		w := randomLayered(seed)
		for _, task := range w.Tasks() {
			want := 1
			for _, p := range task.Parents() {
				if lv := w.Task(p).Level() + 1; lv > want {
					want = lv
				}
			}
			if task.Level() != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: parent/child edge sets are symmetric.
func TestPropEdgeSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		w := randomLayered(seed)
		for _, task := range w.Tasks() {
			for _, p := range task.Parents() {
				found := false
				for _, c := range w.Task(p).Children() {
					if c == task.ID {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: CriticalPath <= TotalRuntime, and CriticalPath >= the longest
// single task.
func TestPropCriticalPathBounds(t *testing.T) {
	f := func(seed int64) bool {
		w := randomLayered(seed)
		cp := w.CriticalPath()
		if cp > w.TotalRuntime() {
			return false
		}
		for _, task := range w.Tasks() {
			if task.Runtime > cp {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: Clone is observationally identical and independent.
func TestPropCloneEquivalent(t *testing.T) {
	f := func(seed int64) bool {
		w := randomLayered(seed)
		c := w.Clone()
		if c.NumTasks() != w.NumTasks() || c.NumFiles() != w.NumFiles() {
			return false
		}
		if c.TotalRuntime() != w.TotalRuntime() || c.TotalFileBytes() != w.TotalFileBytes() {
			return false
		}
		if c.MaxLevel() != w.MaxLevel() || c.MaxParallelism() != w.MaxParallelism() {
			return false
		}
		// Scaling the clone must not disturb the original.
		before := w.TotalFileBytes()
		c.ScaleFileSizes(3)
		return w.TotalFileBytes() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: RescaleCCR hits its target for any positive desired ratio.
func TestPropRescaleCCRHitsTarget(t *testing.T) {
	b := units.Mbps(10)
	f := func(seed int64, k uint8) bool {
		w := randomLayered(seed)
		desired := 0.01 * float64(1+int(k)%500)
		scaled, err := w.RescaleCCR(desired, b)
		if err != nil {
			return false
		}
		got := scaled.CCR(b)
		diff := got - desired
		if diff < 0 {
			diff = -diff
		}
		// File sizes round to whole bytes, so allow a small relative error.
		return diff <= 0.02*desired+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: MaxParallelism is at most the task count and at least 1.
func TestPropMaxParallelismBounds(t *testing.T) {
	f := func(seed int64) bool {
		w := randomLayered(seed)
		mp := w.MaxParallelism()
		return mp >= 1 && mp <= w.NumTasks()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
