package dag

import "repro/internal/units"

// HEFTRanks returns communication-inclusive upward ranks, the priority
// of the HEFT list scheduler (Topcuoglu et al.): each task's runtime
// plus the longest descendant chain where every dependency edge also
// pays the transfer time of the data it carries at the given bandwidth.
// Compute-heavy and data-heavy critical paths both surface, unlike the
// runtime-only UpwardRanks; a non-positive bandwidth falls back to the
// paper's 10 Mbps reference link.
//
// The edge weight t->c is the total size of the files t produces that c
// consumes, divided by the bandwidth -- the data that must exist before
// c can start, priced at the link that would move it.
func (w *Workflow) HEFTRanks(bw units.Bandwidth) []units.Duration {
	if bw <= 0 {
		bw = units.Mbps(10)
	}
	bps := bw.BytesPerSecond()
	rank := make([]units.Duration, len(w.tasks))
	for i := len(w.order) - 1; i >= 0; i-- {
		t := w.tasks[w.order[i]]
		edge := make(map[TaskID]units.Bytes, len(t.children))
		for _, name := range t.Outputs {
			f := w.files[name]
			for _, c := range f.consumers {
				edge[c] += f.Size
			}
		}
		var below units.Duration
		for _, c := range t.children {
			v := rank[c] + units.Duration(float64(edge[c])/bps)
			if v > below {
				below = v
			}
		}
		rank[t.ID] = t.Runtime + below
	}
	return rank
}
