package dag

import (
	"fmt"

	"repro/internal/units"
)

// CCR returns the workflow's communication-to-computation ratio as
// defined in the paper:
//
//	CCR = ( sum of file sizes / B ) / ( sum of task runtimes )
//
// where B is a reference bandwidth in bytes per second.  The paper uses
// B = 10 Mbps and reports 0.053 / 0.053 / 0.045 for the 1/2/4-degree
// Montage workflows.
func (w *Workflow) CCR(b units.Bandwidth) float64 {
	runtime := w.TotalRuntime().Seconds()
	if runtime <= 0 || b <= 0 {
		return 0
	}
	return float64(w.TotalFileBytes()) / b.BytesPerSecond() / runtime
}

// RescaleCCR returns a deep copy of the workflow whose file sizes have
// been multiplied by desired/current so that the copy's CCR equals the
// desired value at bandwidth b.  This is exactly the paper's procedure
// for the Fig. 11 sensitivity sweep.
func (w *Workflow) RescaleCCR(desired float64, b units.Bandwidth) (*Workflow, error) {
	if desired <= 0 {
		return nil, fmt.Errorf("dag: non-positive target CCR %v", desired)
	}
	cur := w.CCR(b)
	if cur <= 0 {
		return nil, fmt.Errorf("dag: workflow %q has non-positive CCR", w.Name)
	}
	c := w.Clone()
	if err := c.ScaleFileSizes(desired / cur); err != nil {
		return nil, err
	}
	c.Name = fmt.Sprintf("%s-ccr%.3g", w.Name, desired)
	return c, nil
}
