package skycat

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/montage"
	"repro/internal/units"
)

func TestArchiveSizeMatchesPaper(t *testing.T) {
	// §6 Q2b: "The size of entire data set is 12 Terabytes."
	c := New2MASS()
	got := c.TotalBytes().GB()
	if got < 10500 || got > 13500 {
		t.Errorf("archive = %.0f GB, want ~12,000 GB", got)
	}
}

func TestPlateCountOrder(t *testing.T) {
	// ~41,253 square degrees of sky at ~0.031 sq-deg per plate.
	c := New2MASS()
	n := c.PlateCount()
	if n < 1.2e6 || n > 1.5e6 {
		t.Errorf("plate count = %d, want ~1.33M per band", n)
	}
}

func TestQueryPlateCountsTrackPresets(t *testing.T) {
	// The paper's workflows: 45 / 162 / 662 images for 1/2/4-degree
	// mosaics.  Region queries at the equator should land in the same
	// range.
	c := New2MASS()
	cases := []struct {
		size     float64
		min, max int
	}{
		{1, 35, 60},
		{2, 130, 200},
		{4, 500, 800},
	}
	for _, tc := range cases {
		plates, err := c.Query(180, 0, tc.size, J)
		if err != nil {
			t.Fatal(err)
		}
		if len(plates) < tc.min || len(plates) > tc.max {
			t.Errorf("%v-degree query returned %d plates, want %d-%d",
				tc.size, len(plates), tc.min, tc.max)
		}
	}
}

func TestQueryRAWraparound(t *testing.T) {
	c := New2MASS()
	atZero, err := c.Query(0, 0, 1, K)
	if err != nil {
		t.Fatal(err)
	}
	atMid, err := c.Query(180, 0, 1, K)
	if err != nil {
		t.Fatal(err)
	}
	// The footprint at RA=0 straddles the wrap; counts must be similar.
	ratio := float64(len(atZero)) / float64(len(atMid))
	if ratio < 0.8 || ratio > 1.2 {
		t.Errorf("wraparound query returned %d plates vs %d at mid-sky", len(atZero), len(atMid))
	}
}

func TestQueryNearPole(t *testing.T) {
	c := New2MASS()
	plates, err := c.Query(10, 89, 1, H)
	if err != nil {
		t.Fatal(err)
	}
	if len(plates) == 0 {
		t.Fatal("no plates near the pole")
	}
	for _, p := range plates {
		if p.Dec < 87 {
			t.Errorf("plate %s at dec %v outside polar cap", p.ID, p.Dec)
		}
	}
}

func TestQueryValidation(t *testing.T) {
	c := New2MASS()
	cases := []struct {
		name          string
		ra, dec, size float64
		band          Band
	}{
		{"ra low", -1, 0, 1, J},
		{"ra high", 360, 0, 1, J},
		{"dec low", 0, -91, 1, J},
		{"dec high", 0, 91, 1, J},
		{"zero size", 0, 0, 0, J},
		{"huge size", 0, 0, 31, J},
		{"bad band", 0, 0, 1, Band(9)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := c.Query(tc.ra, tc.dec, tc.size, tc.band); err == nil {
				t.Error("invalid query accepted")
			}
		})
	}
}

func TestBandStrings(t *testing.T) {
	if J.String() != "J" || H.String() != "H" || K.String() != "Ks" {
		t.Error("band names wrong")
	}
	if len(Bands()) != 3 {
		t.Error("band list wrong")
	}
}

func TestSpecForRegionGenerates(t *testing.T) {
	c := New2MASS()
	// M17 (the paper's target region): RA ~275.2, Dec ~-16.2.
	spec, plates, err := c.SpecForRegion("m17-1deg", 275.2, -16.2, 1, K, 17)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Images != len(plates) {
		t.Errorf("spec images %d != plates %d", spec.Images, len(plates))
	}
	wf, err := montage.Generate(spec)
	if err != nil {
		t.Fatalf("generated spec invalid: %v", err)
	}
	if wf.NumTasks() != spec.TaskCount() {
		t.Errorf("tasks = %d, want %d", wf.NumTasks(), spec.TaskCount())
	}
	// CPU time scales with plate count relative to the 1-degree preset.
	base := montage.OneDegree()
	wantCPU := float64(base.TotalCPU) * float64(len(plates)) / float64(base.Images)
	if math.Abs(wf.TotalRuntime().Seconds()-wantCPU) > 1 {
		t.Errorf("CPU = %v s, want %v s", wf.TotalRuntime().Seconds(), wantCPU)
	}
	if spec.MosaicBytes <= 0 || spec.MosaicBytes > units.Bytes(600*units.MB) {
		t.Errorf("mosaic size %v implausible for 1 degree", spec.MosaicBytes)
	}
}

// Property: every returned plate's center lies inside the grown
// footprint, and queries are deterministic.
func TestPropQueryFootprint(t *testing.T) {
	c := New2MASS()
	f := func(raRaw, decRaw uint16, sizeRaw uint8) bool {
		ra := float64(raRaw) / 65535 * 359.9
		dec := float64(decRaw)/65535*160 - 80 // stay off the exact poles
		size := 0.5 + float64(sizeRaw%40)/10  // 0.5 .. 4.4 degrees
		plates, err := c.Query(ra, dec, size, J)
		if err != nil {
			return false
		}
		half := size/2 + 0.09 + 1e-9
		for _, p := range plates {
			if p.Dec < dec-half || p.Dec > dec+half {
				return false
			}
			d := math.Abs(p.RA - ra)
			if d > 180 {
				d = 360 - d
			}
			if d*math.Cos(p.Dec*math.Pi/180) > half {
				return false
			}
		}
		again, err := c.Query(ra, dec, size, J)
		return err == nil && len(again) == len(plates)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
