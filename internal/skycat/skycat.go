// Package skycat models the input image archive behind the Montage
// service: a synthetic all-sky survey shaped like 2MASS -- plates on a
// near-uniform sky grid in three infrared bands, ~12 TB in total --
// supporting the region query that starts every mosaic request ("the
// input to the service is the region of the sky whose mosaic is desired,
// the size of the mosaic in square degrees, and the image archive to be
// used").
//
// The catalog is computed, not materialized: plate positions follow from
// grid arithmetic, so queries over a million-plate survey are cheap and
// the package stays deterministic.
package skycat

import (
	"fmt"
	"math"

	"repro/internal/montage"
	"repro/internal/units"
)

// Band is a survey filter band.  2MASS observed in J, H and Ks.
type Band int

// The three 2MASS bands.
const (
	J Band = iota
	H
	K
)

// String names the band.
func (b Band) String() string {
	switch b {
	case J:
		return "J"
	case H:
		return "H"
	case K:
		return "Ks"
	default:
		return fmt.Sprintf("band(%d)", int(b))
	}
}

// Bands lists all survey bands.
func Bands() []Band { return []Band{J, H, K} }

// Plate is one survey image.
type Plate struct {
	ID   string
	RA   float64 // center right ascension, degrees [0, 360)
	Dec  float64 // center declination, degrees [-90, 90]
	Band Band
	Size units.Bytes
}

// Catalog is a gridded synthetic survey.
type Catalog struct {
	spacing    float64     // plate grid spacing in degrees of declination
	plateBytes units.Bytes // uniform plate size
	margin     float64     // extra border plates a mosaic needs, degrees
}

// New2MASS returns a catalog dimensioned like the 2MASS all-sky release:
// ~0.176-degree plate spacing and 3 MB plates, which lands the total
// holdings at the paper's 12 TB across three bands.
func New2MASS() *Catalog {
	return &Catalog{
		spacing:    0.176,
		plateBytes: units.Bytes(3 * units.MB),
		margin:     0.09,
	}
}

// rows returns the number of declination rows.
func (c *Catalog) rows() int { return int(math.Floor(180 / c.spacing)) }

// platesInRow returns how many plates tile the given declination row.
// Rows shrink toward the poles with cos(dec).
func (c *Catalog) platesInRow(dec float64) int {
	circ := 360 * math.Cos(dec*math.Pi/180)
	if circ < c.spacing {
		return 1
	}
	return int(math.Ceil(circ / c.spacing))
}

// PlateCount returns the number of plates in one band.
func (c *Catalog) PlateCount() int {
	total := 0
	for i := 0; i < c.rows(); i++ {
		dec := -90 + (float64(i)+0.5)*c.spacing
		total += c.platesInRow(dec)
	}
	return total
}

// TotalBytes returns the survey's full holdings across all bands.
func (c *Catalog) TotalBytes() units.Bytes {
	return units.Bytes(len(Bands())) * units.Bytes(c.PlateCount()) * c.plateBytes
}

// Query returns the plates of one band whose centers fall within the
// mosaic footprint: a square of sizeDeg degrees centered at (ra, dec),
// grown by the catalog's border margin (mosaics need overlapping
// neighbours).  RA wrap-around at 0/360 is handled.
func (c *Catalog) Query(ra, dec, sizeDeg float64, band Band) ([]Plate, error) {
	if ra < 0 || ra >= 360 {
		return nil, fmt.Errorf("skycat: RA %v outside [0,360)", ra)
	}
	if dec < -90 || dec > 90 {
		return nil, fmt.Errorf("skycat: Dec %v outside [-90,90]", dec)
	}
	if sizeDeg <= 0 || sizeDeg > 30 {
		return nil, fmt.Errorf("skycat: mosaic size %v outside (0,30] degrees", sizeDeg)
	}
	if band < J || band > K {
		return nil, fmt.Errorf("skycat: unknown band %d", band)
	}
	half := sizeDeg/2 + c.margin
	var plates []Plate
	for i := 0; i < c.rows(); i++ {
		rowDec := -90 + (float64(i)+0.5)*c.spacing
		if rowDec < dec-half || rowDec > dec+half {
			continue
		}
		n := c.platesInRow(rowDec)
		raStep := 360.0 / float64(n)
		for j := 0; j < n; j++ {
			rowRA := (float64(j) + 0.5) * raStep
			// Angular RA separation on the circle, scaled by cos(dec) to
			// compare against the footprint in great-circle degrees.
			d := math.Abs(rowRA - ra)
			if d > 180 {
				d = 360 - d
			}
			if d*math.Cos(rowDec*math.Pi/180) > half {
				continue
			}
			plates = append(plates, Plate{
				ID:   fmt.Sprintf("2mass-%s-%05d-%05d", band, i, j),
				RA:   rowRA,
				Dec:  rowDec,
				Band: band,
				Size: c.plateBytes,
			})
		}
	}
	if len(plates) == 0 {
		return nil, fmt.Errorf("skycat: no plates cover (%v, %v)", ra, dec)
	}
	return plates, nil
}

// SpecForRegion turns a region query into a Montage workflow spec: the
// plate count sets the image count, and CPU time, mosaic size, and
// overlap counts scale from the paper's calibrated presets.
func (c *Catalog) SpecForRegion(name string, ra, dec, sizeDeg float64, band Band, seed int64) (montage.Spec, []Plate, error) {
	plates, err := c.Query(ra, dec, sizeDeg, band)
	if err != nil {
		return montage.Spec{}, nil, err
	}
	base := montage.OneDegree()
	n := len(plates)
	scale := float64(n) / float64(base.Images)
	spec := montage.Spec{
		Name:    name,
		Degrees: sizeDeg,
		Images:  n,
		Diffs:   int(math.Round(2.4 * float64(n))),
		// CPU time and mosaic size scale with the covered area, i.e.
		// with the plate count.
		TotalCPU:    units.Duration(float64(base.TotalCPU) * scale),
		MosaicBytes: units.BytesOf(float64(base.MosaicBytes) * scale),
		TargetCCR:   base.TargetCCR,
		Bandwidth:   base.Bandwidth,
		Seed:        seed,
	}
	return spec, plates, nil
}
