package shard

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"time"
)

// RelayHeader marks a request as already routed by a ring member.  A
// replica receiving it answers from its own tiers and never forwards
// again, so a misconfigured ring degrades to local computation instead
// of a forwarding loop.
const RelayHeader = "X-Repro-Relay"

// maxPeerBody bounds a relayed response: run documents are kilobytes,
// so anything beyond this is a misbehaving peer, not a result.
const maxPeerBody = 64 << 20

// Client relays run requests to their owning replicas.  It is a thin,
// connection-pooling wrapper over net/http; safe for concurrent use.
type Client struct {
	hc      *http.Client
	timeout time.Duration
}

// NewClient builds a relay client.  timeout caps one peer round trip
// (on top of the caller's context); <= 0 means 30s, generous enough for
// a cold 4-degree simulation on the owner.
func NewClient(timeout time.Duration) *Client {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	return &Client{hc: &http.Client{}, timeout: timeout}
}

// Run posts a marshaled v2 scenario document to peer's /v2/run and
// returns the response body verbatim: the owner's canonical result
// bytes, byte-identical to what computing locally would produce.
func (c *Client) Run(ctx context.Context, peer string, scenario []byte) ([]byte, error) {
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		"http://"+peer+"/v2/run", bytes.NewReader(scenario))
	if err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(RelayHeader, "1")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("shard: peer %s: %w", peer, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerBody+1))
	if err != nil {
		return nil, fmt.Errorf("shard: peer %s: %w", peer, err)
	}
	if len(body) > maxPeerBody {
		return nil, fmt.Errorf("shard: peer %s: response exceeds %d bytes", peer, maxPeerBody)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("shard: peer %s: status %d: %s", peer, resp.StatusCode, snippet(body))
	}
	return body, nil
}

// snippet trims an error body for a log-friendly message.
func snippet(b []byte) string {
	const max = 200
	s := string(b)
	if len(s) > max {
		s = s[:max] + "..."
	}
	return s
}
