// Package shard spreads the result-key space across a pool of reprosrv
// replicas: a consistent-hash ring decides which member owns each
// canonical run key, and a small HTTP client relays requests to their
// owners.  Ownership is what makes a pool of replicas behave like one
// big cache -- every distinct scenario has exactly one home, so the
// pool's aggregate memory and disk tiers hold each result once instead
// of once per replica.
//
// The ring is classic consistent hashing with virtual nodes: each
// member contributes Replicas points on a 64-bit circle (the first
// eight bytes of SHA-256("member\x00vnode")), and a key belongs to the
// first point clockwise from the key's own hash.  Adding or removing a
// member therefore moves only ~1/N of the key space, and every replica
// configured with the same member list computes identical ownership --
// there is no coordinator.
package shard

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
)

// Replicas is how many virtual nodes each member contributes.  128
// keeps the expected imbalance between members in the low percents
// without making ring construction or lookup noticeable.
const Replicas = 128

// point is one virtual node on the circle.
type point struct {
	hash   uint64
	member int // index into members
}

// Ring is an immutable consistent-hash ring over a member set.  Build
// it once with New; lookups are safe for concurrent use.
type Ring struct {
	members []string
	points  []point
}

// New builds a ring over the member addresses.  Members are deduplicated
// and sorted, so every replica handed the same set -- in any order --
// builds an identical ring.
func New(members []string) (*Ring, error) {
	seen := make(map[string]bool, len(members))
	uniq := make([]string, 0, len(members))
	for _, m := range members {
		if m == "" {
			return nil, fmt.Errorf("shard: empty member address")
		}
		if !seen[m] {
			seen[m] = true
			uniq = append(uniq, m)
		}
	}
	if len(uniq) == 0 {
		return nil, fmt.Errorf("shard: ring needs at least one member")
	}
	sort.Strings(uniq)
	r := &Ring{members: uniq, points: make([]point, 0, len(uniq)*Replicas)}
	for mi, m := range uniq {
		for v := 0; v < Replicas; v++ {
			r.points = append(r.points, point{hash: vnodeHash(m, v), member: mi})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A full 64-bit collision between vnode hashes is vanishingly
		// rare; break the tie on member index so construction order
		// still cannot influence ownership.
		return r.points[i].member < r.points[j].member
	})
	return r, nil
}

// Members returns the deduplicated, sorted member list.
func (r *Ring) Members() []string { return append([]string(nil), r.members...) }

// Contains reports whether addr is a ring member.
func (r *Ring) Contains(addr string) bool {
	i := sort.SearchStrings(r.members, addr)
	return i < len(r.members) && r.members[i] == addr
}

// Owner maps a key hash (the hex SHA-256 of a canonical run key, as
// produced by wire.KeyHash) to the member that owns it: the first
// virtual node clockwise from the key's position on the circle.
func (r *Ring) Owner(keyHash string) string {
	h := keyPoint(keyHash)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap past the highest point to the circle's start
	}
	return r.members[r.points[i].member]
}

// keyPoint positions a hex key hash on the circle: its first 16 hex
// digits as a big-endian uint64.  A malformed hash (never produced by
// wire.KeyHash) degrades to position 0 rather than an error -- every
// replica degrades identically, so ownership stays consistent.
func keyPoint(keyHash string) uint64 {
	if len(keyHash) < 16 {
		return 0
	}
	h, err := strconv.ParseUint(keyHash[:16], 16, 64)
	if err != nil {
		return 0
	}
	return h
}

// vnodeHash positions one of a member's virtual nodes on the circle.
func vnodeHash(member string, vnode int) uint64 {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(vnode))
	h := sha256.New()
	h.Write([]byte(member))
	h.Write([]byte{0})
	h.Write(buf[:])
	var sum [sha256.Size]byte
	return binary.BigEndian.Uint64(h.Sum(sum[:0])[:8])
}
