package shard

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func keyHash(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}

func TestRingSingleMemberOwnsEverything(t *testing.T) {
	r, err := New([]string{"a:1"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if got := r.Owner(keyHash(fmt.Sprintf("key-%d", i))); got != "a:1" {
			t.Fatalf("owner = %q, want a:1", got)
		}
	}
}

func TestRingDeterministicAcrossMemberOrder(t *testing.T) {
	r1, err := New([]string{"a:1", "b:2", "c:3"})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := New([]string{"c:3", "a:1", "b:2", "a:1"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		h := keyHash(fmt.Sprintf("key-%d", i))
		if r1.Owner(h) != r2.Owner(h) {
			t.Fatalf("ownership differs for key %d: %q vs %q", i, r1.Owner(h), r2.Owner(h))
		}
	}
}

func TestRingSpreadsKeys(t *testing.T) {
	members := []string{"a:1", "b:2", "c:3", "d:4"}
	r, err := New(members)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	const n = 4000
	for i := 0; i < n; i++ {
		counts[r.Owner(keyHash(fmt.Sprintf("key-%d", i)))]++
	}
	for _, m := range members {
		share := float64(counts[m]) / n
		if share < 0.10 || share > 0.45 {
			t.Fatalf("member %s owns %.0f%% of keys; distribution badly skewed: %v", m, share*100, counts)
		}
	}
}

func TestRingMinimalReshuffleOnMembershipChange(t *testing.T) {
	r3, err := New([]string{"a:1", "b:2", "c:3"})
	if err != nil {
		t.Fatal(err)
	}
	r4, err := New([]string{"a:1", "b:2", "c:3", "d:4"})
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	moved := 0
	for i := 0; i < n; i++ {
		h := keyHash(fmt.Sprintf("key-%d", i))
		if r3.Owner(h) != r4.Owner(h) {
			if r4.Owner(h) != "d:4" {
				t.Fatalf("key %d moved between surviving members (%s -> %s)", i, r3.Owner(h), r4.Owner(h))
			}
			moved++
		}
	}
	// Adding one of four members should claim roughly a quarter of keys.
	if moved < n/10 || moved > n/2 {
		t.Fatalf("adding a member moved %d/%d keys; expected about a quarter", moved, n)
	}
}

func TestRingRejectsEmpty(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("empty ring accepted")
	}
	if _, err := New([]string{""}); err == nil {
		t.Fatal("empty member address accepted")
	}
}

func TestRingContains(t *testing.T) {
	r, err := New([]string{"b:2", "a:1"})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Contains("a:1") || !r.Contains("b:2") || r.Contains("c:3") {
		t.Fatal("Contains misreports membership")
	}
}

func TestClientRelaysAndMarksRequests(t *testing.T) {
	var gotRelay, gotBody string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotRelay = r.Header.Get(RelayHeader)
		b := make([]byte, r.ContentLength)
		r.Body.Read(b) //nolint:errcheck
		gotBody = string(b)
		fmt.Fprint(w, `{"version": 2}`)
	}))
	defer ts.Close()
	c := NewClient(0)
	peer := strings.TrimPrefix(ts.URL, "http://")
	body, err := c.Run(context.Background(), peer, []byte(`{"version":2}`))
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != `{"version": 2}` {
		t.Fatalf("body = %q", body)
	}
	if gotRelay != "1" {
		t.Fatal("relay header not set")
	}
	if gotBody != `{"version":2}` {
		t.Fatalf("scenario body = %q", gotBody)
	}
}

func TestClientSurfacesPeerErrors(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"boom"}`, http.StatusInternalServerError)
	}))
	defer ts.Close()
	c := NewClient(0)
	if _, err := c.Run(context.Background(), strings.TrimPrefix(ts.URL, "http://"), []byte(`{}`)); err == nil {
		t.Fatal("peer 500 reported as success")
	}
}

func TestClientFailsFastOnDeadPeer(t *testing.T) {
	c := NewClient(0)
	if _, err := c.Run(context.Background(), "127.0.0.1:1", []byte(`{}`)); err == nil {
		t.Fatal("dead peer reported as success")
	}
}
