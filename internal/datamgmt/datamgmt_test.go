package datamgmt

import (
	"testing"
	"testing/quick"

	"repro/internal/dag"
	"repro/internal/montage"
)

// fig3 builds the paper's Figure 3 example workflow.
func fig3(t *testing.T) *dag.Workflow {
	t.Helper()
	w := dag.New("fig3")
	files := []struct {
		name string
		out  bool
	}{
		{"a", false}, {"b", false}, {"c", false}, {"d", false},
		{"e", false}, {"f", false}, {"h", true}, {"g", true},
	}
	for _, f := range files {
		if _, err := w.AddFile(f.name, 10, f.out); err != nil {
			t.Fatal(err)
		}
	}
	add := func(name string, in, out []string) {
		t.Helper()
		if _, err := w.AddTask(name, "r", 1, in, out); err != nil {
			t.Fatal(err)
		}
	}
	add("t0", []string{"a"}, []string{"b"})
	add("t1", []string{"b"}, []string{"c"})
	add("t2", []string{"b"}, []string{"d"})
	add("t3", []string{"c"}, []string{"e"})
	add("t4", []string{"c"}, []string{"f"})
	add("t5", []string{"d"}, []string{"h"})
	add("t6", []string{"e", "f", "h"}, []string{"g"})
	if err := w.Finalize(); err != nil {
		t.Fatal(err)
	}
	return w
}

func TestModeStringsAndParse(t *testing.T) {
	for _, m := range Modes() {
		parsed, err := ParseMode(m.String())
		if err != nil {
			t.Errorf("ParseMode(%q): %v", m.String(), err)
		}
		if parsed != m {
			t.Errorf("round trip %v -> %q -> %v", m, m.String(), parsed)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Error("ParseMode accepted bogus mode")
	}
	if Mode(42).String() != "mode(42)" {
		t.Errorf("unknown mode string = %q", Mode(42).String())
	}
}

// TestAnalyzerPaperNarrative checks the exact sentence from §3: "file a
// would be deleted after task 0 has completed, however file b would be
// deleted only when task 6 has completed" -- in the figure's structure b
// is consumed by tasks 1 and 2, so it dies when both are done; the
// paper's text describes its own figure loosely, and the precise
// Pegasus semantics (delete after the last consumer) is what we check.
func TestAnalyzerPaperNarrative(t *testing.T) {
	w := fig3(t)
	a, err := NewAnalyzer(w)
	if err != nil {
		t.Fatal(err)
	}
	// Task 0 completes: file a (consumed only by t0) dies.
	dead := a.TaskDone(0)
	if len(dead) != 1 || dead[0] != "a" {
		t.Fatalf("after t0, dead = %v, want [a]", dead)
	}
	// Task 1 completes: b still has consumer t2.
	if dead := a.TaskDone(1); len(dead) != 0 {
		t.Fatalf("after t1, dead = %v, want []", dead)
	}
	if a.Remaining("b") != 1 {
		t.Errorf("remaining(b) = %d, want 1", a.Remaining("b"))
	}
	// Task 2 completes: b dies now.
	if dead := a.TaskDone(2); len(dead) != 1 || dead[0] != "b" {
		t.Fatalf("after t2, dead = %v, want [b]", dead)
	}
	// Tasks 3,4,5 complete: c dies after 4, d after 5.
	if dead := a.TaskDone(3); len(dead) != 0 {
		t.Fatalf("after t3, dead = %v, want []", dead)
	}
	if dead := a.TaskDone(4); len(dead) != 1 || dead[0] != "c" {
		t.Fatalf("after t4, dead = %v, want [c]", dead)
	}
	if dead := a.TaskDone(5); len(dead) != 1 || dead[0] != "d" {
		t.Fatalf("after t5, dead = %v, want [d]", dead)
	}
	// Task 6 completes: e and f die; h survives because it is an output.
	dead = a.TaskDone(6)
	if len(dead) != 2 || dead[0] != "e" || dead[1] != "f" {
		t.Fatalf("after t6, dead = %v, want [e f]", dead)
	}
}

func TestAnalyzerRequiresFinalized(t *testing.T) {
	w := dag.New("unfinished")
	if _, err := NewAnalyzer(w); err == nil {
		t.Error("NewAnalyzer accepted unfinalized workflow")
	}
}

func TestDeletionSchedule(t *testing.T) {
	w := fig3(t)
	sched, err := DeletionSchedule(w, w.TopoOrder())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]dag.TaskID{
		"a": 0, "b": 2, "c": 4, "d": 5, "e": 6, "f": 6,
	}
	if len(sched) != len(want) {
		t.Fatalf("schedule has %d entries, want %d: %v", len(sched), len(want), sched)
	}
	for name, id := range want {
		if sched[name] != id {
			t.Errorf("cleanup point of %q = task %d, want %d", name, sched[name], id)
		}
	}
	// Output files g,h must not be scheduled for cleanup.
	if _, ok := sched["g"]; ok {
		t.Error("output g scheduled for cleanup")
	}
	if _, ok := sched["h"]; ok {
		t.Error("output h scheduled for cleanup")
	}
}

func TestDeletionScheduleErrors(t *testing.T) {
	w := fig3(t)
	if _, err := DeletionSchedule(w, w.TopoOrder()[:3]); err == nil {
		t.Error("partial order accepted")
	}
	bad := append([]dag.TaskID{0}, w.TopoOrder()...)
	if _, err := DeletionSchedule(w, bad); err == nil {
		t.Error("duplicated order accepted")
	}
	unfinished := dag.New("x")
	if _, err := DeletionSchedule(unfinished, nil); err == nil {
		t.Error("unfinalized workflow accepted")
	}
}

// Property (on the real Montage workload): replaying any topological
// order through the Analyzer kills every non-output file exactly once,
// and never kills a file before all of its consumers completed.
func TestPropAnalyzerConservation(t *testing.T) {
	w, err := montage.Generate(montage.OneDegree())
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAnalyzer(w)
	if err != nil {
		t.Fatal(err)
	}
	done := make(map[dag.TaskID]bool)
	killed := make(map[string]bool)
	for _, id := range w.TopoOrder() {
		done[id] = true
		for _, name := range a.TaskDone(id) {
			if killed[name] {
				t.Fatalf("file %q killed twice", name)
			}
			killed[name] = true
			for _, c := range w.File(name).Consumers() {
				if !done[c] {
					t.Fatalf("file %q killed before consumer %d completed", name, c)
				}
			}
		}
	}
	// Every consumable non-output file must have been killed.
	for _, f := range w.Files() {
		deletable := !f.Output && len(f.Consumers()) > 0
		if deletable && !killed[f.Name] {
			t.Errorf("file %q never killed", f.Name)
		}
		if f.Output && killed[f.Name] {
			t.Errorf("output file %q killed", f.Name)
		}
	}
}

// Property: the static DeletionSchedule and the dynamic Analyzer agree
// for any completion order drawn from the topological order.
func TestPropScheduleMatchesAnalyzer(t *testing.T) {
	w, err := montage.Generate(montage.OneDegree())
	if err != nil {
		t.Fatal(err)
	}
	order := w.TopoOrder()
	f := func() bool {
		sched, err := DeletionSchedule(w, order)
		if err != nil {
			return false
		}
		a, err := NewAnalyzer(w)
		if err != nil {
			return false
		}
		for _, id := range order {
			for _, name := range a.TaskDone(id) {
				if sched[name] != id {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3}); err != nil {
		t.Error(err)
	}
}
