// Package datamgmt implements the paper's three data-management models
// (§3) and the workflow-level data-use analysis behind dynamic cleanup:
//
//   - Remote I/O: each task stages its inputs in from the user, runs,
//     stages every output back out, and deletes everything; nothing is
//     kept at the resource between tasks.
//   - Regular: inputs are brought in at the start, every file stays on
//     the shared storage until the whole workflow finishes, then the net
//     outputs are staged out and everything is deleted.
//   - Cleanup (dynamic cleanup): like Regular, but a file is deleted as
//     soon as no later task needs it, which Pegasus derives "by
//     performing an analysis of data use at the workflow level".  The
//     Analyzer here is that analysis: a reference count per file that
//     drops as consumers finish.
package datamgmt

import (
	"fmt"

	"repro/internal/dag"
)

// Mode selects one of the paper's three execution models.
type Mode int

const (
	// RemoteIO is the paper's "Remote I/O (on-demand)" model.
	RemoteIO Mode = iota
	// Regular keeps all files until the workflow completes.
	Regular
	// Cleanup deletes files as soon as their last consumer finishes.
	Cleanup
)

// Modes lists all execution models in presentation order (the order the
// paper's Figs. 7-9 use).
func Modes() []Mode { return []Mode{RemoteIO, Regular, Cleanup} }

// String returns the paper's name for the mode.
func (m Mode) String() string {
	switch m {
	case RemoteIO:
		return "remote-io"
	case Regular:
		return "regular"
	case Cleanup:
		return "cleanup"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// MarshalText encodes the mode as its command-line name, so metrics and
// plans serialize readably (JSON, logs).
func (m Mode) MarshalText() ([]byte, error) {
	switch m {
	case RemoteIO, Regular, Cleanup:
		return []byte(m.String()), nil
	default:
		return nil, fmt.Errorf("datamgmt: cannot marshal unknown mode %d", int(m))
	}
}

// UnmarshalText decodes a mode name.
func (m *Mode) UnmarshalText(text []byte) error {
	parsed, err := ParseMode(string(text))
	if err != nil {
		return err
	}
	*m = parsed
	return nil
}

// ParseMode parses the textual form accepted on command lines.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "remote-io", "remoteio", "remote":
		return RemoteIO, nil
	case "regular":
		return Regular, nil
	case "cleanup", "dynamic-cleanup":
		return Cleanup, nil
	default:
		return 0, fmt.Errorf("datamgmt: unknown mode %q (want remote-io, regular or cleanup)", s)
	}
}

// Analyzer tracks, per file, how many consumer tasks have not yet
// completed.  It answers the dynamic-cleanup question: "which files died
// when this task finished?"
type Analyzer struct {
	wf        *dag.Workflow
	remaining map[string]int
}

// NewAnalyzer builds the reference counts for a finalized workflow.
func NewAnalyzer(wf *dag.Workflow) (*Analyzer, error) {
	if !wf.Finalized() {
		return nil, fmt.Errorf("datamgmt: workflow %q not finalized", wf.Name)
	}
	a := &Analyzer{wf: wf, remaining: make(map[string]int, wf.NumFiles())}
	for _, f := range wf.Files() {
		a.remaining[f.Name] = len(f.Consumers())
	}
	return a, nil
}

// TaskDone records the completion of a task and returns the names of the
// files that are now dead: every input whose last consumer was this task
// and which is not a staged-out output.  Produced-but-output files are
// never reported dead; they are removed after stage-out.
//
// Calling TaskDone twice for the same task corrupts the counts; the
// executor calls it exactly once per task.
func (a *Analyzer) TaskDone(id dag.TaskID) []string {
	t := a.wf.Task(id)
	var dead []string
	for _, in := range t.Inputs {
		a.remaining[in]--
		if a.remaining[in] < 0 {
			panic(fmt.Sprintf("datamgmt: file %q reference count went negative", in))
		}
		if a.remaining[in] == 0 && !a.wf.File(in).Output {
			dead = append(dead, in)
		}
	}
	return dead
}

// Remaining returns the current reference count for a file.
func (a *Analyzer) Remaining(name string) int { return a.remaining[name] }

// DeletionSchedule computes, statically, the cleanup point of every
// deletable file: the task whose completion kills it, assuming tasks
// complete in the given order (for Montage's level-structured DAGs any
// topological order gives the same schedule up to ties).  Output files
// and files with no consumers map to no task and are excluded.
//
// This mirrors the workflow-level analysis of Pegasus' cleanup pass and
// is used by tests and the ablation benchmarks; the executor uses the
// dynamic Analyzer instead.
func DeletionSchedule(wf *dag.Workflow, completionOrder []dag.TaskID) (map[string]dag.TaskID, error) {
	if !wf.Finalized() {
		return nil, fmt.Errorf("datamgmt: workflow %q not finalized", wf.Name)
	}
	pos := make(map[dag.TaskID]int, len(completionOrder))
	for i, id := range completionOrder {
		if _, dup := pos[id]; dup {
			return nil, fmt.Errorf("datamgmt: task %d appears twice in completion order", id)
		}
		pos[id] = i
	}
	if len(pos) != wf.NumTasks() {
		return nil, fmt.Errorf("datamgmt: completion order covers %d of %d tasks", len(pos), wf.NumTasks())
	}
	sched := make(map[string]dag.TaskID)
	for _, f := range wf.Files() {
		if f.Output || len(f.Consumers()) == 0 {
			continue
		}
		last := f.Consumers()[0]
		for _, c := range f.Consumers()[1:] {
			if pos[c] > pos[last] {
				last = c
			}
		}
		sched[f.Name] = last
	}
	return sched, nil
}
