package exec

import (
	"testing"
	"testing/quick"

	"repro/internal/datamgmt"
	"repro/internal/montage"
)

func TestFailureValidation(t *testing.T) {
	w := tiny(t)
	if _, err := Run(w, Config{Mode: datamgmt.Regular, FailureProb: -0.1}); err == nil {
		t.Error("negative failure probability accepted")
	}
	if _, err := Run(w, Config{Mode: datamgmt.Regular, FailureProb: 1}); err == nil {
		t.Error("certain failure accepted (would never terminate)")
	}
}

func TestFailuresRetryAndBill(t *testing.T) {
	w, err := montage.Generate(montage.OneDegree())
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(w, Config{Mode: datamgmt.Regular, Processors: 8})
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := Run(w, Config{
		Mode: datamgmt.Regular, Processors: 8,
		FailureProb: 0.2, FailureSeed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if faulty.Retries == 0 {
		t.Fatal("20% failure rate produced no retries over 203 tasks")
	}
	// Every task still completes exactly once.
	if faulty.TasksRun != w.NumTasks() {
		t.Errorf("TasksRun = %d, want %d", faulty.TasksRun, w.NumTasks())
	}
	// Burned attempts inflate the CPU bill and the makespan.
	if faulty.CPUSeconds <= base.CPUSeconds {
		t.Errorf("CPU with failures %v not above baseline %v", faulty.CPUSeconds, base.CPUSeconds)
	}
	if faulty.ExecTime < base.ExecTime {
		t.Errorf("exec time with failures %v below baseline %v", faulty.ExecTime, base.ExecTime)
	}
	// Transfers are unaffected: retries recompute, they do not re-stage.
	if faulty.BytesIn != base.BytesIn || faulty.BytesOut != base.BytesOut {
		t.Error("failures changed transfer volumes")
	}
	// ~20% failure rate means CPU inflation around 1/(1-0.2) = 1.25x.
	ratio := faulty.CPUSeconds / base.CPUSeconds
	if ratio < 1.1 || ratio > 1.45 {
		t.Errorf("CPU inflation = %.3fx, want ~1.25x", ratio)
	}
}

func TestFailuresDeterministic(t *testing.T) {
	w, err := montage.Generate(montage.OneDegree())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Mode: datamgmt.Cleanup, Processors: 8, FailureProb: 0.1, FailureSeed: 3}
	a, err := Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Retries != b.Retries || a.ExecTime != b.ExecTime || a.CPUSeconds != b.CPUSeconds {
		t.Error("identical seeds produced different failure outcomes")
	}
	cfg.FailureSeed = 4
	c, err := Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Retries == a.Retries && c.ExecTime == a.ExecTime {
		t.Error("different seeds produced identical failure outcomes")
	}
}

// Property: for any failure probability in [0, 0.5], the run completes,
// the CPU bill is at least the failure-free bill, and utilization stays
// bounded.
func TestPropFailuresTerminate(t *testing.T) {
	w, err := montage.Generate(montage.OneDegree())
	if err != nil {
		t.Fatal(err)
	}
	want := w.TotalRuntime().Seconds()
	f := func(seed int64, pRaw uint8) bool {
		p := float64(pRaw%51) / 100 // 0.00 .. 0.50
		m, err := Run(w, Config{
			Mode: datamgmt.Regular, Processors: 16,
			FailureProb: p, FailureSeed: seed,
		})
		if err != nil {
			return false
		}
		return m.TasksRun == w.NumTasks() &&
			m.CPUSeconds >= want-1e-6 &&
			m.Utilization <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
