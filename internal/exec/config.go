package exec

// Run configuration: the knobs of one simulated run, the ready-queue
// ordering policy, and the storage-outage windows.

import (
	"fmt"

	"repro/internal/datamgmt"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/units"
)

// Config parameterizes one simulated run.
type Config struct {
	// Mode selects the data-management model.
	Mode datamgmt.Mode
	// Processors is the size of the provisioned pool; 0 means "enough
	// for the workflow's maximum parallelism", the paper's on-demand
	// setup.
	Processors int
	// Bandwidth of the user<->cloud link; 0 defaults to 10 Mbps.
	Bandwidth units.Bandwidth
	// RecordCurve retains the full storage usage curve in the metrics.
	RecordCurve bool
	// RecordSchedule retains the per-task Gantt trace in the metrics.
	RecordSchedule bool

	// VMStartup models the cost the paper's §8 excludes from the main
	// study: "launching and configuring a virtual machine".  The whole
	// run is delayed by this much, and the provisioned pool is charged
	// for it (VMs bill from launch).  Zero, the paper's assumption, by
	// default.
	VMStartup units.Duration

	// Outages are the storage-unavailability windows of §8's reliability
	// discussion ("when the system goes down, as it did twice in the
	// first 7 months of 2008").  While an outage is open no new task may
	// start and no transfer may begin; work already in flight finishes.
	// Windows must be disjoint and sorted by start time.
	Outages []Outage

	// Policy orders the ready queue when processors are scarce.  The
	// default (FIFO by task ID) matches the paper's GridSim setup; the
	// alternatives exist for the scheduler ablation.
	Policy Policy

	// FailureProb is the per-attempt probability that a task fails and
	// must be retried (a §8 reliability extension; the failed attempt's
	// CPU time is still billed).  Must be in [0, 1); zero, the paper's
	// assumption, disables failures.
	FailureProb float64
	// FailureSeed drives the deterministic failure sampling.
	FailureSeed int64

	// Preemptions are spot capacity-reclaim events (a post-paper
	// extension: Amazon introduced spot instances in 2009).  Each one
	// revokes processors at a scheduled instant, killing the most
	// recently started tasks when idle slots do not cover it.  Events
	// must be sorted by reclaim time; empty reproduces the paper's
	// reliable capacity.
	Preemptions []Preemption
	// OnDemandProcessors carves a reliable on-demand sub-pool out of the
	// processor pool: a mixed fleet.  These processors can never be
	// revoked, the scheduler places critical-path tasks on them first
	// (per the placement policy), and reclaim victims are confined to
	// the remaining spot sub-pool.  Zero means the whole pool is
	// revocable, reproducing the single-market scenarios.
	OnDemandProcessors int
	// Recovery decides how a preempted task resumes: the zero value
	// re-runs it from scratch, Checkpoint restarts it from its last
	// durable checkpoint.
	Recovery Recovery

	// Policies names the scheduling and recovery policies of the run:
	// which ready task claims a reliable slot (placement), which running
	// task a reclaim kills (victim), when a task snapshots (checkpoint
	// trigger) and how the reliable/spot split is sized (pool sizing --
	// applied by the caller before the pool reaches this package).  The
	// zero value resolves to the historical defaults, reproducing every
	// pre-policy run byte for byte.
	Policies policy.Bundle

	// SpotRatePerHour is the per-instance reclaim intensity the
	// Preemptions were sampled at, advisory context for risk-aware
	// checkpoint triggers (the schedule itself already carries the
	// events).  Zero means reliable capacity.
	SpotRatePerHour float64

	// Recorder, when non-nil, captures the run's flight-recorder
	// timeline: every dispatch, start, finish, retry, reclaim, victim
	// choice, checkpoint, restore and pool resize.  It is a pure
	// observer -- a traced run's Metrics are byte-identical to the
	// untraced run's -- and nil (the default) records nothing.
	Recorder *obs.Recorder
}

// Policy selects the ready-queue order of the list scheduler.
type Policy int

const (
	// FIFO runs ready tasks in task-ID order (submission order).
	FIFO Policy = iota
	// LongestFirst runs the longest ready task first (LPT list
	// scheduling, the classic makespan heuristic).
	LongestFirst
	// ShortestFirst runs the shortest ready task first.
	ShortestFirst
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case LongestFirst:
		return "longest-first"
	case ShortestFirst:
		return "shortest-first"
	default:
		return "fifo"
	}
}

// ParsePolicy parses a policy name.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "fifo":
		return FIFO, nil
	case "longest-first", "lpt":
		return LongestFirst, nil
	case "shortest-first", "spt":
		return ShortestFirst, nil
	default:
		return 0, fmt.Errorf("exec: unknown policy %q (want fifo, longest-first or shortest-first)", s)
	}
}

// MarshalText encodes the policy name.
func (p Policy) MarshalText() ([]byte, error) {
	if p < FIFO || p > ShortestFirst {
		return nil, fmt.Errorf("exec: cannot marshal unknown policy %d", int(p))
	}
	return []byte(p.String()), nil
}

// UnmarshalText decodes a policy name.
func (p *Policy) UnmarshalText(text []byte) error {
	parsed, err := ParsePolicy(string(text))
	if err != nil {
		return err
	}
	*p = parsed
	return nil
}

// Outage is a half-open window [Start, End) during which the storage
// service is unreachable.
type Outage struct {
	Start units.Duration
	End   units.Duration
}

// validateOutages checks ordering and disjointness.
func validateOutages(outages []Outage) error {
	for i, o := range outages {
		if o.End <= o.Start || o.Start < 0 {
			return fmt.Errorf("exec: invalid outage window [%v,%v)", o.Start, o.End)
		}
		if i > 0 && o.Start < outages[i-1].End {
			return fmt.Errorf("exec: outage windows overlap or are unsorted at index %d", i)
		}
	}
	return nil
}

// nextAvailable returns the earliest time >= now outside every outage.
// Windows may be back-to-back (Start == prev.End), so leaving one window
// can land exactly inside the next; the scan must continue until a time
// falls strictly before the next window's start.
func nextAvailable(outages []Outage, now units.Duration) units.Duration {
	for _, o := range outages {
		if now < o.Start {
			return now
		}
		if now < o.End {
			now = o.End
		}
	}
	return now
}

// DefaultBandwidth is the paper's user-to-storage link speed.
var DefaultBandwidth = units.Mbps(10)
