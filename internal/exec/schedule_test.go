package exec

import (
	"testing"

	"repro/internal/datamgmt"
	"repro/internal/montage"
)

func TestScheduleTraceRecorded(t *testing.T) {
	w, err := montage.Generate(montage.OneDegree())
	if err != nil {
		t.Fatal(err)
	}
	m, err := Run(w, Config{Mode: datamgmt.Regular, Processors: 8, RecordSchedule: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Schedule) != w.NumTasks() {
		t.Fatalf("trace has %d spans, want %d", len(m.Schedule), w.NumTasks())
	}
	seen := make(map[string]bool)
	for _, span := range m.Schedule {
		if span.Finish <= span.Start {
			t.Fatalf("span %q has non-positive duration", span.Name)
		}
		if seen[span.Name] {
			t.Fatalf("task %q scheduled twice", span.Name)
		}
		seen[span.Name] = true
		// Spans end within the execution window.
		if span.Finish > m.ExecTime {
			t.Fatalf("span %q finishes at %v after exec end %v", span.Name, span.Finish, m.ExecTime)
		}
		// A span's length equals the task's runtime (up to float
		// rounding of absolute times).
		task := w.Task(span.Task)
		if d := (span.Finish - span.Start) - task.Runtime; d > 1e-6 || d < -1e-6 {
			t.Fatalf("span %q length %v != runtime %v", span.Name, span.Finish-span.Start, task.Runtime)
		}
	}
	// Dependency order: every task starts after its parents finish.
	finish := make(map[string]float64)
	for _, span := range m.Schedule {
		finish[span.Name] = span.Finish.Seconds()
	}
	for _, span := range m.Schedule {
		for _, p := range w.Task(span.Task).Parents() {
			if span.Start.Seconds() < finish[w.Task(p).Name]-1e-9 {
				t.Fatalf("task %q started before parent %q finished", span.Name, w.Task(p).Name)
			}
		}
	}
}

func TestScheduleRespectsProcessorLimit(t *testing.T) {
	w, err := montage.Generate(montage.OneDegree())
	if err != nil {
		t.Fatal(err)
	}
	const procs = 4
	m, err := Run(w, Config{Mode: datamgmt.Regular, Processors: procs, RecordSchedule: true})
	if err != nil {
		t.Fatal(err)
	}
	// Sweep the span endpoints and check concurrency never exceeds the
	// pool.
	type event struct {
		at    float64
		delta int
	}
	var events []event
	for _, s := range m.Schedule {
		events = append(events, event{s.Start.Seconds(), 1}, event{s.Finish.Seconds(), -1})
	}
	// Process finishes before starts at the same instant.
	for i := 0; i < len(events); i++ {
		for j := i + 1; j < len(events); j++ {
			if events[j].at < events[i].at ||
				(events[j].at == events[i].at && events[j].delta < events[i].delta) {
				events[i], events[j] = events[j], events[i]
			}
		}
	}
	busy, peak := 0, 0
	for _, e := range events {
		busy += e.delta
		if busy > peak {
			peak = busy
		}
	}
	if peak > procs {
		t.Fatalf("schedule used %d concurrent processors, pool has %d", peak, procs)
	}
	if peak < procs {
		t.Errorf("schedule never saturated the %d-proc pool (peak %d)", procs, peak)
	}
}

func TestScheduleOffByDefault(t *testing.T) {
	w, err := montage.Generate(montage.OneDegree())
	if err != nil {
		t.Fatal(err)
	}
	m, err := Run(w, Config{Mode: datamgmt.Regular, Processors: 8})
	if err != nil {
		t.Fatal(err)
	}
	if m.Schedule != nil {
		t.Error("schedule recorded without RecordSchedule")
	}
}
