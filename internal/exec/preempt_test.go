package exec

import (
	"reflect"
	"testing"

	"repro/internal/datamgmt"
	"repro/internal/montage"
)

// Baseline for tiny (see TestRegularTinyExact): stage-in [0,10],
// A [10,20], B [20,40], stage-out [40,60].

func TestPreemptRestartFromScratch(t *testing.T) {
	// Reclaiming the single processor at 25 kills B 5 s in; the capacity
	// returns at 35 and B re-runs from scratch: B [35,55], out [55,75].
	w := tiny(t)
	m, err := Run(w, Config{
		Mode: datamgmt.Regular, Processors: 1, Bandwidth: tinyBW,
		Preemptions: []Preemption{{Reclaim: 25, Processors: 1, Restore: 35}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.ExecTime != 55 {
		t.Errorf("ExecTime = %v, want 55", m.ExecTime)
	}
	if m.Makespan != 75 {
		t.Errorf("Makespan = %v, want 75", m.Makespan)
	}
	// A (10) + B's burned 5 + B's full re-run (20).
	if !almost(m.CPUSeconds, 35) {
		t.Errorf("CPUSeconds = %v, want 35", m.CPUSeconds)
	}
	if m.Preempted != 1 || m.Checkpoints != 0 {
		t.Errorf("Preempted/Checkpoints = %d/%d, want 1/0", m.Preempted, m.Checkpoints)
	}
	if !almost(m.WastedCPUSeconds, 5) {
		t.Errorf("WastedCPUSeconds = %v, want 5", m.WastedCPUSeconds)
	}
}

func TestPreemptCheckpointRestart(t *testing.T) {
	// With 5 s checkpoint intervals costing 1 s each, A's wall is 11
	// (one checkpoint) and B's is 23 (three): A [10,21], B [21,44].
	// Reclaiming at 34 catches B 13 s in, past two complete 6 s
	// checkpoint cycles: 10 s of work survives, 3 s burn.  The second
	// attempt needs 10 s of work plus one checkpoint: B [40,51].
	w := tiny(t)
	rec := Recovery{Checkpoint: true, Interval: 5, Overhead: 1}
	base, err := Run(w, Config{Mode: datamgmt.Regular, Processors: 1, Bandwidth: tinyBW, Recovery: rec})
	if err != nil {
		t.Fatal(err)
	}
	if base.ExecTime != 44 || base.Makespan != 64 {
		t.Errorf("checkpointed baseline exec/makespan = %v/%v, want 44/64", base.ExecTime, base.Makespan)
	}
	if base.Checkpoints != 4 {
		t.Errorf("baseline Checkpoints = %d, want 4", base.Checkpoints)
	}
	if !almost(base.CPUSeconds, 34) {
		t.Errorf("baseline CPUSeconds = %v, want 34", base.CPUSeconds)
	}

	m, err := Run(w, Config{
		Mode: datamgmt.Regular, Processors: 1, Bandwidth: tinyBW, Recovery: rec,
		Preemptions: []Preemption{{Reclaim: 34, Processors: 1, Restore: 40}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.ExecTime != 51 {
		t.Errorf("ExecTime = %v, want 51", m.ExecTime)
	}
	if m.Makespan != 71 {
		t.Errorf("Makespan = %v, want 71", m.Makespan)
	}
	if !almost(m.CPUSeconds, 35) { // A 11 + B 13 burned + B 11 resumed
		t.Errorf("CPUSeconds = %v, want 35", m.CPUSeconds)
	}
	if !almost(m.WastedCPUSeconds, 3) {
		t.Errorf("WastedCPUSeconds = %v, want 3", m.WastedCPUSeconds)
	}
	if m.Preempted != 1 {
		t.Errorf("Preempted = %d, want 1", m.Preempted)
	}
	if m.Checkpoints != 4 { // A 1 + B's two surviving + 1 in the resumed attempt
		t.Errorf("Checkpoints = %d, want 4", m.Checkpoints)
	}
}

func TestPreemptWarningCheckpoint(t *testing.T) {
	// A 2 s warning (>= the 1 s overhead) lets B cut an emergency
	// checkpoint at notice time: reclaimed at 37 (16 s in), it banks the
	// 12 s of useful work finished by 35 instead of the 10 s from its
	// last periodic checkpoint.  Resume needs 8 s + one checkpoint.
	w := tiny(t)
	rec := Recovery{Checkpoint: true, Interval: 5, Overhead: 1}
	m, err := Run(w, Config{
		Mode: datamgmt.Regular, Processors: 1, Bandwidth: tinyBW, Recovery: rec,
		Preemptions: []Preemption{{Reclaim: 37, Processors: 1, Warning: 2, Restore: 40}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.ExecTime != 49 {
		t.Errorf("ExecTime = %v, want 49", m.ExecTime)
	}
	if m.Makespan != 69 {
		t.Errorf("Makespan = %v, want 69", m.Makespan)
	}
	if !almost(m.WastedCPUSeconds, 4) {
		t.Errorf("WastedCPUSeconds = %v, want 4", m.WastedCPUSeconds)
	}
	if m.Checkpoints != 5 { // A 1 + B 2 periodic + 1 emergency + 1 resumed
		t.Errorf("Checkpoints = %d, want 5", m.Checkpoints)
	}
}

func TestPreemptIdleSlotsSpareRunningTasks(t *testing.T) {
	// tiny is a serial chain, so on 2 processors one slot is always
	// idle: reclaiming one processor mid-run must kill nothing and
	// change nothing.
	w := tiny(t)
	base, err := Run(w, Config{Mode: datamgmt.Regular, Processors: 2, Bandwidth: tinyBW})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Run(w, Config{
		Mode: datamgmt.Regular, Processors: 2, Bandwidth: tinyBW,
		Preemptions: []Preemption{{Reclaim: 15, Processors: 1, Restore: 100}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Preempted != 0 {
		t.Errorf("Preempted = %d, want 0", m.Preempted)
	}
	if m.Makespan != base.Makespan || !almost(m.CPUSeconds, base.CPUSeconds) {
		t.Errorf("idle-slot reclaim changed the run: makespan %v vs %v", m.Makespan, base.Makespan)
	}
}

func TestPreemptValidation(t *testing.T) {
	w := tiny(t)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"zero processors", Config{Preemptions: []Preemption{{Reclaim: 5, Processors: 0}}}},
		{"negative reclaim", Config{Preemptions: []Preemption{{Reclaim: -1, Processors: 1}}}},
		{"warning past reclaim", Config{Preemptions: []Preemption{{Reclaim: 5, Processors: 1, Warning: 6}}}},
		{"restore before reclaim", Config{Preemptions: []Preemption{{Reclaim: 5, Processors: 1, Restore: 5}}}},
		{"unsorted", Config{Preemptions: []Preemption{
			{Reclaim: 50, Processors: 1, Restore: 60}, {Reclaim: 5, Processors: 1, Restore: 10}}}},
		{"permanent total revocation", Config{Processors: 2,
			Preemptions: []Preemption{{Reclaim: 5, Processors: 2}}}},
		{"interval without checkpoint", Config{Recovery: Recovery{Interval: 10}}},
		{"zero interval", Config{Recovery: Recovery{Checkpoint: true}}},
		{"negative overhead", Config{Recovery: Recovery{Checkpoint: true, Interval: 10, Overhead: -1}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg
			cfg.Mode = datamgmt.Regular
			if cfg.Processors == 0 {
				cfg.Processors = 1
			}
			cfg.Bandwidth = tinyBW
			if _, err := Run(w, cfg); err == nil {
				t.Error("invalid preemption config accepted")
			}
		})
	}
}

// TestPreemptDeterministic pins the subsystem's reproducibility on a
// real workflow: the same revocation schedule yields byte-identical
// metrics on every run.
func TestPreemptDeterministic(t *testing.T) {
	w, err := montage.Generate(montage.OneDegree())
	if err != nil {
		t.Fatal(err)
	}
	sched, err := SpotSchedule(2*3600, 16, 1.5, 120, 600, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched) == 0 {
		t.Fatal("spot schedule sampled no revocations")
	}
	cfg := Config{
		Mode: datamgmt.Regular, Processors: 16,
		Preemptions: sched,
		Recovery:    Recovery{Checkpoint: true, Interval: 300, Overhead: 5},
	}
	a, err := Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("two runs of the same preemption schedule differ:\n%+v\nvs\n%+v", a, b)
	}
	if a.Preempted == 0 {
		t.Error("schedule preempted no tasks; the scenario is vacuous")
	}
	if a.Makespan <= 0 || a.CPUSeconds <= 0 {
		t.Errorf("degenerate metrics: %+v", a)
	}
}

func TestSpotSchedule(t *testing.T) {
	a, err := SpotSchedule(24*3600, 8, 0.5, 120, 900, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SpotSchedule(24*3600, 8, 0.5, 120, 900, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed sampled different schedules")
	}
	if err := validatePreemptions(a, 9, 0); err != nil {
		t.Errorf("sampled schedule invalid: %v", err)
	}
	for i, p := range a {
		if p.Processors != 8 || p.Restore != p.Reclaim+900 {
			t.Errorf("event %d = %+v", i, p)
		}
		if i > 0 && p.Reclaim < a[i-1].Restore {
			t.Errorf("event %d reclaims at %v inside the previous downtime ending %v", i, p.Reclaim, a[i-1].Restore)
		}
	}
	c, err := SpotSchedule(24*3600, 8, 0.5, 120, 900, 43)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds sampled identical schedules")
	}
	if empty, err := SpotSchedule(3600, 8, 0, 120, 900, 1); err != nil || empty != nil {
		t.Errorf("zero rate = (%v, %v), want empty", empty, err)
	}
	for name, call := range map[string]func() ([]Preemption, error){
		"zero horizon":  func() ([]Preemption, error) { return SpotSchedule(0, 8, 1, 0, 60, 1) },
		"zero procs":    func() ([]Preemption, error) { return SpotSchedule(3600, 0, 1, 0, 60, 1) },
		"negative rate": func() ([]Preemption, error) { return SpotSchedule(3600, 8, -1, 0, 60, 1) },
		"zero down":     func() ([]Preemption, error) { return SpotSchedule(3600, 8, 1, 0, 0, 1) },
	} {
		if _, err := call(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// TestUtilizationNeverNaN guards the Utilization division: a zero-width
// run (all runtimes and sizes zero) accumulates no capacity-seconds and
// must report 0, not NaN/Inf, so the result document stays
// JSON-encodable.
func TestUtilizationNeverNaN(t *testing.T) {
	if u := utilization(0, 0); u != 0 {
		t.Errorf("utilization(0,0) = %v, want 0", u)
	}
	if u := utilization(5, 0); u != 0 {
		t.Errorf("utilization(5,0) = %v, want 0", u)
	}
}

// TestCheckpointDataVolumes pins the checkpoint data accounting layered
// on the TestPreemptCheckpointRestart scenario: with a 1000-byte image,
// every counted checkpoint moves 1000 bytes into storage, the one
// restart reads 1000 bytes back, and the resident image (first write
// until task completion) inflates the storage integral -- A's image
// lives [16,21], B's [27,51], 29 000 byte-seconds in total.  Timing and
// checkpoint counts must be unchanged from the zero-byte policy.
func TestCheckpointDataVolumes(t *testing.T) {
	w := tiny(t)
	cfg := Config{
		Mode: datamgmt.Regular, Processors: 1, Bandwidth: tinyBW,
		Recovery:    Recovery{Checkpoint: true, Interval: 5, Overhead: 1},
		Preemptions: []Preemption{{Reclaim: 34, Processors: 1, Restore: 40}},
	}
	free, err := Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Recovery.Bytes = 1000
	m, err := Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.ExecTime != free.ExecTime || m.Makespan != free.Makespan || m.Checkpoints != free.Checkpoints {
		t.Fatalf("checkpoint bytes changed the run shape: %v/%v/%d vs %v/%v/%d",
			m.ExecTime, m.Makespan, m.Checkpoints, free.ExecTime, free.Makespan, free.Checkpoints)
	}
	if m.CheckpointBytesWritten != 4000 {
		t.Errorf("CheckpointBytesWritten = %v, want 4000", m.CheckpointBytesWritten)
	}
	if m.CheckpointBytesRestored != 1000 {
		t.Errorf("CheckpointBytesRestored = %v, want 1000", m.CheckpointBytesRestored)
	}
	if free.CheckpointBytesWritten != 0 || free.CheckpointBytesRestored != 0 {
		t.Errorf("zero-byte policy reported data volumes: %+v", free)
	}
	if diff := m.StorageByteSeconds - free.StorageByteSeconds; !almost(diff, 29000) {
		t.Errorf("checkpoint storage integral = %v byte-seconds, want 29000", diff)
	}
	if m.BytesIn != free.BytesIn || m.BytesOut != free.BytesOut {
		t.Errorf("checkpoint traffic leaked into the link metrics: in %v/%v out %v/%v",
			m.BytesIn, free.BytesIn, m.BytesOut, free.BytesOut)
	}
}

// TestRecoveryBytesValidation: a checkpoint size needs a checkpoint
// policy, and can never be negative.
func TestRecoveryBytesValidation(t *testing.T) {
	w := tiny(t)
	for name, rec := range map[string]Recovery{
		"bytes without checkpoint": {Bytes: 100},
		"negative bytes":           {Checkpoint: true, Interval: 5, Bytes: -1},
	} {
		if _, err := Run(w, Config{Mode: datamgmt.Regular, Processors: 1, Bandwidth: tinyBW, Recovery: rec}); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestCapacitySplitSubPools pins the reliable/spot capacity split on
// the TestUtilizationCapacityDenominator scenario plus a reliable
// floor: a 2-proc fleet with 1 reliable slot losing its spot slot over
// [15,40] accumulates 40 reliable proc-s and 15 spot proc-s.
func TestCapacitySplitSubPools(t *testing.T) {
	m, err := Run(tiny(t), Config{
		Mode: datamgmt.Regular, Processors: 2, Bandwidth: tinyBW,
		OnDemandProcessors: 1,
		Preemptions:        []Preemption{{Reclaim: 15, Processors: 1, Restore: 100}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.ExecTime != 40 {
		t.Fatalf("ExecTime = %v, want 40", m.ExecTime)
	}
	if !almost(m.ReliableCapacityProcSeconds, 40) {
		t.Errorf("ReliableCapacityProcSeconds = %v, want 40", m.ReliableCapacityProcSeconds)
	}
	if !almost(m.SpotCapacityProcSeconds, 15) {
		t.Errorf("SpotCapacityProcSeconds = %v, want 15", m.SpotCapacityProcSeconds)
	}
	if !almost(m.ReliableCapacityProcSeconds+m.SpotCapacityProcSeconds, m.CapacityProcSeconds) {
		t.Errorf("sub-pool integrals %v+%v do not sum to CapacityProcSeconds %v",
			m.ReliableCapacityProcSeconds, m.SpotCapacityProcSeconds, m.CapacityProcSeconds)
	}

	// The exact-snap path (no revocations) must split the snapped product
	// the same way: 2*40 total, 1*40 reliable.
	clean, err := Run(tiny(t), Config{
		Mode: datamgmt.Regular, Processors: 2, Bandwidth: tinyBW, OnDemandProcessors: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(clean.ReliableCapacityProcSeconds, 40) || !almost(clean.SpotCapacityProcSeconds, 40) {
		t.Errorf("clean-run capacity split = %v/%v, want 40/40",
			clean.ReliableCapacityProcSeconds, clean.SpotCapacityProcSeconds)
	}
}

// TestCheckpointImageSurvivesAppFailure pins the interaction of
// application failures with banked checkpoint progress: a crash poisons
// only the failed attempt's own checkpoints, while progress banked by
// an earlier preemption survives -- so its backing image must stay
// resident for the retry to restore from.  Scenario (tiny baseline,
// ckpt interval 5 / overhead 1): A [10,21]; B banks 10 s when reclaimed
// at 34, resumes [40,51], app-fails at 51, retries [51,62].  B's image
// is resident [27,62] and A's [16,21], so a 1000-byte image adds
// exactly 40 000 byte-seconds, with two restores (post-preempt resume
// and post-failure retry) reading 2000 bytes back.
func TestCheckpointImageSurvivesAppFailure(t *testing.T) {
	w := tiny(t)
	cfg := Config{
		Mode: datamgmt.Regular, Processors: 1, Bandwidth: tinyBW,
		Recovery:    Recovery{Checkpoint: true, Interval: 5, Overhead: 1},
		Preemptions: []Preemption{{Reclaim: 34, Processors: 1, Restore: 40}},
		FailureProb: 0.5,
	}
	// Hunt a seed whose draw sequence fails exactly B's resumed attempt:
	// ExecTime 62 with one retry and one preemption pins that pattern.
	found := false
	for seed := int64(0); seed < 200; seed++ {
		cfg.FailureSeed = seed
		m, err := Run(w, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if m.Retries == 1 && m.Preempted == 1 && m.ExecTime == 62 && m.Checkpoints == 4 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no seed produced the preempt-then-fail pattern")
	}
	free, err := Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Recovery.Bytes = 1000
	m, err := Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.ExecTime != free.ExecTime || m.Retries != 1 || m.Preempted != 1 {
		t.Fatalf("checkpoint bytes changed the run shape: %+v", m)
	}
	if m.CheckpointBytesWritten != 4000 {
		t.Errorf("CheckpointBytesWritten = %v, want 4000", m.CheckpointBytesWritten)
	}
	if m.CheckpointBytesRestored != 2000 {
		t.Errorf("CheckpointBytesRestored = %v, want 2000 (resume + post-failure retry)", m.CheckpointBytesRestored)
	}
	// The image that backs B's banked progress must stay resident across
	// the app failure: dropping it at the crash would shrink the
	// occupancy to 34 000 byte-seconds.
	if diff := m.StorageByteSeconds - free.StorageByteSeconds; !almost(diff, 40000) {
		t.Errorf("checkpoint occupancy = %v byte-seconds, want 40000", diff)
	}
}
