// Package exec executes a workflow on the simulated cloud and measures
// everything the paper's figures are built from: execution time, bytes
// transferred in and out, and the storage usage integral.
//
// Execution follows the paper's setup (§3, §5):
//
//   - A single compute resource with a configurable number of processors
//     and an associated storage system of infinite capacity.
//   - A fixed-bandwidth link (10 Mbps in the paper) between the user and
//     the cloud storage; transfers are serialized on it.
//   - In the Regular and Cleanup models, all external inputs are staged
//     in first, then tasks execute (processors are provisioned for this
//     whole window), and the net outputs are staged out at the end, after
//     which all files are deleted from the resource.
//   - In the Remote I/O model there is no resident data: each task stages
//     its inputs in from the user, computes, stages all of its outputs
//     back out, and deletes everything it touched.  Files used by several
//     tasks are transferred multiple times, and intermediate products are
//     transferred out as well -- exactly the behaviours the paper calls
//     out when comparing the models.
//
// A processor is held only while a task computes; the provisioned-mode
// CPU bill (processors x provisioned window) is derived by package cost
// from the metrics reported here.
//
// Every scheduling and recovery decision point is delegated to a named
// policy from package policy (Config.Policies): reliable-slot placement,
// reclaim victim selection and checkpoint spacing.  The zero bundle
// reproduces the historical hard-coded behavior exactly.
//
// The package is split by concern: config.go (run configuration),
// metrics.go (measurements), events.go (data-staging event flows),
// dispatch.go (processor scheduling) and preempt.go (spot reclaims and
// recovery); this file holds the entry points and the runner core.
package exec

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/cloudsim"
	"repro/internal/dag"
	"repro/internal/datamgmt"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/units"
)

// Run simulates wf under cfg and returns the measured metrics.
func Run(wf *dag.Workflow, cfg Config) (Metrics, error) {
	return RunContext(context.Background(), wf, cfg)
}

// RunContext is Run with cooperative cancellation: the simulation aborts
// between events once ctx is canceled and returns ctx's error.  wf is
// only ever read, so concurrent runs may share one workflow.
func RunContext(ctx context.Context, wf *dag.Workflow, cfg Config) (Metrics, error) {
	if !wf.Finalized() {
		return Metrics{}, fmt.Errorf("exec: workflow %q not finalized", wf.Name)
	}
	switch cfg.Mode {
	case datamgmt.RemoteIO, datamgmt.Regular, datamgmt.Cleanup:
	default:
		return Metrics{}, fmt.Errorf("exec: unknown mode %v", cfg.Mode)
	}
	if cfg.Processors < 0 {
		return Metrics{}, fmt.Errorf("exec: negative processor count %d", cfg.Processors)
	}
	if cfg.VMStartup < 0 {
		return Metrics{}, fmt.Errorf("exec: negative VM startup %v", cfg.VMStartup)
	}
	if err := validateOutages(cfg.Outages); err != nil {
		return Metrics{}, err
	}
	if cfg.Policy < FIFO || cfg.Policy > ShortestFirst {
		return Metrics{}, fmt.Errorf("exec: unknown scheduling policy %d", cfg.Policy)
	}
	if cfg.FailureProb < 0 || cfg.FailureProb >= 1 {
		return Metrics{}, fmt.Errorf("exec: failure probability %v outside [0,1)", cfg.FailureProb)
	}
	if err := cfg.Recovery.validate(); err != nil {
		return Metrics{}, err
	}
	if cfg.SpotRatePerHour < 0 {
		return Metrics{}, fmt.Errorf("exec: negative spot rate %v/hour", cfg.SpotRatePerHour)
	}
	resolved, err := cfg.Policies.Resolve()
	if err != nil {
		return Metrics{}, fmt.Errorf("exec: %w", err)
	}
	procs := cfg.Processors
	if procs == 0 {
		procs = wf.MaxParallelism()
	}
	if cfg.OnDemandProcessors < 0 {
		return Metrics{}, fmt.Errorf("exec: negative on-demand sub-pool %d", cfg.OnDemandProcessors)
	}
	if cfg.OnDemandProcessors > procs {
		return Metrics{}, fmt.Errorf("exec: on-demand sub-pool %d exceeds the %d-processor fleet", cfg.OnDemandProcessors, procs)
	}
	if len(cfg.Preemptions) > 0 && cfg.OnDemandProcessors == procs {
		return Metrics{}, fmt.Errorf("exec: preemptions scheduled but the %d-processor fleet has no spot capacity", procs)
	}
	if err := validatePreemptions(cfg.Preemptions, procs, cfg.OnDemandProcessors); err != nil {
		return Metrics{}, err
	}
	bw := cfg.Bandwidth
	if bw == 0 {
		bw = DefaultBandwidth
	}
	link, err := cloudsim.NewLink(bw)
	if err != nil {
		return Metrics{}, err
	}
	cluster, err := cloudsim.NewFleet(procs, cfg.OnDemandProcessors)
	if err != nil {
		return Metrics{}, err
	}
	r := &runner{
		wf:       wf,
		cfg:      cfg,
		policies: resolved,
		eng:      &sim.Engine{},
		storage:  cloudsim.NewStorage(cfg.RecordCurve),
		link:     link,
		cluster:  cluster,
		trace:    cfg.Recorder,
	}
	if cfg.Mode == datamgmt.Cleanup {
		if r.analyzer, err = datamgmt.NewAnalyzer(wf); err != nil {
			return Metrics{}, err
		}
	}
	if cfg.FailureProb > 0 {
		r.failRNG = rand.New(rand.NewSource(cfg.FailureSeed))
	}
	return r.run(ctx)
}

type taskPhase int

const (
	phaseWaiting taskPhase = iota // dependencies outstanding
	phaseStaging                  // remote I/O: inputs in flight
	phaseReady                    // waiting for a processor
	phaseRunning                  // computing
	phaseDone                     // completed (remote I/O: outputs may still be in flight)
)

type runner struct {
	wf       *dag.Workflow
	cfg      Config
	policies policy.Resolved

	eng      *sim.Engine
	storage  *cloudsim.Storage
	link     *cloudsim.Link
	cluster  *cloudsim.Cluster
	analyzer *datamgmt.Analyzer

	phase            []taskPhase
	depsLeft         []int
	ready            []dag.TaskID // compute-ready, kept sorted by ID
	doneTasks        int
	stagedOut        int // remote I/O: tasks whose outputs reached the user
	execEnd          units.Duration
	makespan         units.Duration
	dispatchDeferred bool
	schedule         []TaskSpan
	spanOf           map[dag.TaskID]int // running task -> its schedule index
	failRNG          *rand.Rand
	retries          int

	// Preemption bookkeeping, all indexed by task ID: the attempt
	// counter disarms stale completion events, banked is the useful work
	// preserved across kills, runStart/runRem describe the attempt in
	// flight, onReliable records which sub-pool the attempt occupies,
	// runRec is the attempt's effective recovery policy (the checkpoint
	// trigger may space each attempt's snapshots differently).
	attempt      []uint32
	banked       []units.Duration
	runStart     []units.Duration
	runRem       []units.Duration
	onReliable   []bool
	runRec       []Recovery
	preempted    int
	wasted       float64
	checkpoints  int
	ckptWritten  units.Bytes
	ckptRestored units.Bytes

	// trace is the optional flight recorder.  Every record is guarded by
	// a nil check so untraced runs -- the cacheable common case -- pay
	// nothing, and recording never mutates simulation state.
	trace *obs.Recorder

	// prio holds the placement priorities of a mixed fleet: tasks with
	// larger priority claim reliable slots first.  Nil on uniform pools
	// (placement is irrelevant) and under placements that keep the
	// ready-queue order.
	prio []float64
	// capacityAtExecEnd snapshots the cluster's capacity integral when
	// the execution window closes: the utilization denominator.
	// reliableCapAtExecEnd is the reliable sub-pool's share of it.
	capacityAtExecEnd    float64
	reliableCapAtExecEnd float64

	err error
}

func (r *runner) fail(err error) {
	if r.err == nil {
		r.err = err
	}
	r.eng.Stop()
}

// avail returns the earliest time >= now at which the storage service is
// reachable.
func (r *runner) avail(now units.Duration) units.Duration {
	return nextAvailable(r.cfg.Outages, now)
}

// reserveAvail books a serialized link transfer whose start respects
// both the link FIFO and the outage windows.
func (r *runner) reserveAvail(now units.Duration, size units.Bytes, dir cloudsim.Direction) (units.Duration, units.Duration, error) {
	s := now
	if fa := r.link.FreeAt(); fa > s {
		s = fa
	}
	return r.link.Reserve(r.avail(s), size, dir)
}

func (r *runner) run(ctx context.Context) (Metrics, error) {
	n := r.wf.NumTasks()
	r.phase = make([]taskPhase, n)
	r.depsLeft = make([]int, n)
	r.attempt = make([]uint32, n)
	r.banked = make([]units.Duration, n)
	r.runStart = make([]units.Duration, n)
	r.runRem = make([]units.Duration, n)
	r.onReliable = make([]bool, n)
	r.runRec = make([]Recovery, n)
	if r.cluster.Reliable() > 0 && r.cluster.Reliable() < r.cluster.Provisioned() {
		bw := r.cfg.Bandwidth
		if bw == 0 {
			bw = DefaultBandwidth
		}
		r.prio = r.policies.Placement.Priorities(r.wf, policy.PlacementContext{Bandwidth: bw})
		if r.prio != nil && len(r.prio) != n {
			return Metrics{}, fmt.Errorf("exec: placement policy %q returned %d priorities for %d tasks",
				r.policies.Placement.Name(), len(r.prio), n)
		}
	}
	if r.cfg.RecordSchedule {
		r.spanOf = make(map[dag.TaskID]int)
	}
	for _, t := range r.wf.Tasks() {
		r.depsLeft[t.ID] = len(t.Parents())
	}

	// Everything waits for the virtual machines to boot; the provisioned
	// pool is billed from launch, so the delay lands inside ExecTime.
	r.eng.Schedule(r.cfg.VMStartup, func(units.Duration) {
		switch r.cfg.Mode {
		case datamgmt.Regular, datamgmt.Cleanup:
			r.startResident()
		case datamgmt.RemoteIO:
			r.startRemoteIO()
		}
	})

	// Capacity reclaims fire on the absolute simulation clock, like
	// outages.
	for _, p := range r.cfg.Preemptions {
		p := p
		r.eng.Schedule(p.Reclaim, func(now units.Duration) { r.reclaim(p, now) })
	}

	if _, err := r.eng.RunContext(ctx); err != nil {
		return Metrics{}, fmt.Errorf("exec: %w", err)
	}
	if r.err != nil {
		return Metrics{}, r.err
	}
	if r.doneTasks != n {
		return Metrics{}, fmt.Errorf("exec: deadlock: %d of %d tasks completed", r.doneTasks, n)
	}

	m := Metrics{
		Workflow:                    r.wf.Name,
		Mode:                        r.cfg.Mode,
		Processors:                  r.cluster.Provisioned(),
		OnDemandProcessors:          r.cluster.Reliable(),
		ExecTime:                    r.execEnd,
		Makespan:                    r.makespan,
		BytesIn:                     r.link.BytesIn(),
		BytesOut:                    r.link.BytesOut(),
		StorageByteSeconds:          r.storage.ByteSeconds(r.makespan),
		PeakStorage:                 r.storage.Peak(),
		CPUSeconds:                  r.cluster.BusyProcSeconds(r.makespan),
		SpotCPUSeconds:              r.cluster.SpotBusyProcSeconds(r.makespan),
		CapacityProcSeconds:         r.capacityAtExecEnd,
		ReliableCapacityProcSeconds: r.reliableCapAtExecEnd,
		SpotCapacityProcSeconds:     r.capacityAtExecEnd - r.reliableCapAtExecEnd,
		TasksRun:                    r.doneTasks,
		Retries:                     r.retries,
		Preempted:                   r.preempted,
		WastedCPUSeconds:            r.wasted,
		Checkpoints:                 r.checkpoints,
		CheckpointBytesWritten:      r.ckptWritten,
		CheckpointBytesRestored:     r.ckptRestored,
		Curve:                       r.storage.Curve(),
		Schedule:                    r.schedule,
	}
	m.Utilization = utilization(m.CPUSeconds, m.CapacityProcSeconds)
	// Without failures, preemptions or checkpoint overhead, the consumed
	// CPU must equal the workflow's total runtime exactly; a mismatch
	// means a double-booked processor.
	if r.failRNG == nil && len(r.cfg.Preemptions) == 0 && !r.cfg.Recovery.Checkpoint {
		want := r.wf.TotalRuntime().Seconds()
		if diff := m.CPUSeconds - want; diff > 1e-6*want+1e-6 || diff < -(1e-6*want+1e-6) {
			return Metrics{}, fmt.Errorf("exec: CPU accounting mismatch: cluster %v vs workflow %v", m.CPUSeconds, want)
		}
		// Report the exact value so costs reproduce the paper's figures
		// without float drift.  With no revocations the capacity integral
		// is exactly the static pool over the window, so report that
		// product too rather than its float accumulation -- and rescale
		// the spot share by the same snap, or mixed billing would see
		// exact-minus-accumulated epsilon noise as reliable CPU.
		if m.CPUSeconds > 0 {
			m.SpotCPUSeconds *= want / m.CPUSeconds
		}
		m.CPUSeconds = want
		m.CapacityProcSeconds = float64(m.Processors) * m.ExecTime.Seconds()
		m.ReliableCapacityProcSeconds = float64(m.OnDemandProcessors) * m.ExecTime.Seconds()
		m.SpotCapacityProcSeconds = m.CapacityProcSeconds - m.ReliableCapacityProcSeconds
		m.Utilization = utilization(want, m.CapacityProcSeconds)
	}
	return m, nil
}
