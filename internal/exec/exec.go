// Package exec executes a workflow on the simulated cloud and measures
// everything the paper's figures are built from: execution time, bytes
// transferred in and out, and the storage usage integral.
//
// Execution follows the paper's setup (§3, §5):
//
//   - A single compute resource with a configurable number of processors
//     and an associated storage system of infinite capacity.
//   - A fixed-bandwidth link (10 Mbps in the paper) between the user and
//     the cloud storage; transfers are serialized on it.
//   - In the Regular and Cleanup models, all external inputs are staged
//     in first, then tasks execute (processors are provisioned for this
//     whole window), and the net outputs are staged out at the end, after
//     which all files are deleted from the resource.
//   - In the Remote I/O model there is no resident data: each task stages
//     its inputs in from the user, computes, stages all of its outputs
//     back out, and deletes everything it touched.  Files used by several
//     tasks are transferred multiple times, and intermediate products are
//     transferred out as well -- exactly the behaviours the paper calls
//     out when comparing the models.
//
// A processor is held only while a task computes; the provisioned-mode
// CPU bill (processors x provisioned window) is derived by package cost
// from the metrics reported here.
package exec

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/cloudsim"
	"repro/internal/dag"
	"repro/internal/datamgmt"
	"repro/internal/sim"
	"repro/internal/units"
)

// Config parameterizes one simulated run.
type Config struct {
	// Mode selects the data-management model.
	Mode datamgmt.Mode
	// Processors is the size of the provisioned pool; 0 means "enough
	// for the workflow's maximum parallelism", the paper's on-demand
	// setup.
	Processors int
	// Bandwidth of the user<->cloud link; 0 defaults to 10 Mbps.
	Bandwidth units.Bandwidth
	// RecordCurve retains the full storage usage curve in the metrics.
	RecordCurve bool
	// RecordSchedule retains the per-task Gantt trace in the metrics.
	RecordSchedule bool

	// VMStartup models the cost the paper's §8 excludes from the main
	// study: "launching and configuring a virtual machine".  The whole
	// run is delayed by this much, and the provisioned pool is charged
	// for it (VMs bill from launch).  Zero, the paper's assumption, by
	// default.
	VMStartup units.Duration

	// Outages are the storage-unavailability windows of §8's reliability
	// discussion ("when the system goes down, as it did twice in the
	// first 7 months of 2008").  While an outage is open no new task may
	// start and no transfer may begin; work already in flight finishes.
	// Windows must be disjoint and sorted by start time.
	Outages []Outage

	// Policy orders the ready queue when processors are scarce.  The
	// default (FIFO by task ID) matches the paper's GridSim setup; the
	// alternatives exist for the scheduler ablation.
	Policy Policy

	// FailureProb is the per-attempt probability that a task fails and
	// must be retried (a §8 reliability extension; the failed attempt's
	// CPU time is still billed).  Must be in [0, 1); zero, the paper's
	// assumption, disables failures.
	FailureProb float64
	// FailureSeed drives the deterministic failure sampling.
	FailureSeed int64

	// Preemptions are spot capacity-reclaim events (a post-paper
	// extension: Amazon introduced spot instances in 2009).  Each one
	// revokes processors at a scheduled instant, killing the most
	// recently started tasks when idle slots do not cover it.  Events
	// must be sorted by reclaim time; empty reproduces the paper's
	// reliable capacity.
	Preemptions []Preemption
	// OnDemandProcessors carves a reliable on-demand sub-pool out of the
	// processor pool: a mixed fleet.  These processors can never be
	// revoked, the scheduler places critical-path tasks (largest upward
	// rank) on them first, and reclaim victims are confined to the
	// remaining spot sub-pool.  Zero means the whole pool is revocable,
	// reproducing the single-market scenarios.
	OnDemandProcessors int
	// Recovery decides how a preempted task resumes: the zero value
	// re-runs it from scratch, Checkpoint restarts it from its last
	// durable checkpoint.
	Recovery Recovery
}

// Policy selects the ready-queue order of the list scheduler.
type Policy int

const (
	// FIFO runs ready tasks in task-ID order (submission order).
	FIFO Policy = iota
	// LongestFirst runs the longest ready task first (LPT list
	// scheduling, the classic makespan heuristic).
	LongestFirst
	// ShortestFirst runs the shortest ready task first.
	ShortestFirst
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case LongestFirst:
		return "longest-first"
	case ShortestFirst:
		return "shortest-first"
	default:
		return "fifo"
	}
}

// ParsePolicy parses a policy name.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "fifo":
		return FIFO, nil
	case "longest-first", "lpt":
		return LongestFirst, nil
	case "shortest-first", "spt":
		return ShortestFirst, nil
	default:
		return 0, fmt.Errorf("exec: unknown policy %q (want fifo, longest-first or shortest-first)", s)
	}
}

// MarshalText encodes the policy name.
func (p Policy) MarshalText() ([]byte, error) {
	if p < FIFO || p > ShortestFirst {
		return nil, fmt.Errorf("exec: cannot marshal unknown policy %d", int(p))
	}
	return []byte(p.String()), nil
}

// UnmarshalText decodes a policy name.
func (p *Policy) UnmarshalText(text []byte) error {
	parsed, err := ParsePolicy(string(text))
	if err != nil {
		return err
	}
	*p = parsed
	return nil
}

// Outage is a half-open window [Start, End) during which the storage
// service is unreachable.
type Outage struct {
	Start units.Duration
	End   units.Duration
}

// validateOutages checks ordering and disjointness.
func validateOutages(outages []Outage) error {
	for i, o := range outages {
		if o.End <= o.Start || o.Start < 0 {
			return fmt.Errorf("exec: invalid outage window [%v,%v)", o.Start, o.End)
		}
		if i > 0 && o.Start < outages[i-1].End {
			return fmt.Errorf("exec: outage windows overlap or are unsorted at index %d", i)
		}
	}
	return nil
}

// nextAvailable returns the earliest time >= now outside every outage.
// Windows may be back-to-back (Start == prev.End), so leaving one window
// can land exactly inside the next; the scan must continue until a time
// falls strictly before the next window's start.
func nextAvailable(outages []Outage, now units.Duration) units.Duration {
	for _, o := range outages {
		if now < o.Start {
			return now
		}
		if now < o.End {
			now = o.End
		}
	}
	return now
}

// DefaultBandwidth is the paper's user-to-storage link speed.
var DefaultBandwidth = units.Mbps(10)

// Metrics is everything measured during one run.
type Metrics struct {
	Workflow   string
	Mode       datamgmt.Mode
	Processors int

	// ExecTime is the window during which the provisioned processors are
	// held: input staging plus task execution.  This is the "execution
	// time" plotted in Figs. 4-6.
	ExecTime units.Duration
	// Makespan additionally includes the final stage-out of the outputs
	// to the user.
	Makespan units.Duration

	// BytesIn and BytesOut are the data volumes moved over the link,
	// split by direction because Amazon charges them differently.
	BytesIn  units.Bytes
	BytesOut units.Bytes

	// StorageByteSeconds is the area under the storage usage curve.
	StorageByteSeconds float64
	// PeakStorage is the high-water mark of resident bytes.
	PeakStorage units.Bytes

	// CPUSeconds is the total compute time consumed, including failed
	// attempts: the on-demand CPU bill.
	CPUSeconds float64
	// SpotCPUSeconds is the share of CPUSeconds consumed on the
	// revocable spot sub-pool, billed at the spot rate in a mixed fleet.
	// With no reliable sub-pool the whole pool is revocable, so this
	// equals CPUSeconds.
	SpotCPUSeconds float64
	// OnDemandProcessors is the reliable sub-pool size of a mixed fleet;
	// 0 means the whole pool is revocable.
	OnDemandProcessors int
	// CapacityProcSeconds is the integral of available processors over
	// the ExecTime window: the capacity-seconds actually present, which
	// revocations shrink and restores grow back.
	CapacityProcSeconds float64
	// ReliableCapacityProcSeconds is the reliable on-demand sub-pool's
	// share of CapacityProcSeconds; revocations never touch it, so it is
	// exactly the sub-pool size times the ExecTime window.
	ReliableCapacityProcSeconds float64
	// SpotCapacityProcSeconds is the revocable spot sub-pool's share of
	// CapacityProcSeconds: what fleet-sizing dashboards divide the spot
	// consumption by.  On a uniform pool it equals CapacityProcSeconds.
	SpotCapacityProcSeconds float64
	// Utilization is CPUSeconds over CapacityProcSeconds: consumption
	// against the capacity that was actually available, not the static
	// provisioned pool.  Without revocations the two denominators agree.
	Utilization float64

	TasksRun int
	// Retries counts failed task attempts that were re-run.
	Retries int
	// Preempted counts task attempts killed by capacity reclaims.
	Preempted int
	// WastedCPUSeconds is the busy processor time burned by preempted
	// attempts that did not survive as banked progress: billed, lost.
	WastedCPUSeconds float64
	// Checkpoints counts durable checkpoints written (periodic plus
	// warning-window emergency ones).
	Checkpoints int
	// CheckpointBytesWritten is the data volume moved into cloud storage
	// by checkpoint writes (Checkpoints x Recovery.Bytes); zero when the
	// recovery policy declares no checkpoint size.
	CheckpointBytesWritten units.Bytes
	// CheckpointBytesRestored is the data volume read back out of cloud
	// storage by attempts resuming from a checkpoint.
	CheckpointBytesRestored units.Bytes
	// Curve is the storage usage curve (only when Config.RecordCurve).
	Curve []cloudsim.UsagePoint
	// Schedule is the per-task Gantt trace in completion order (only
	// when Config.RecordSchedule).
	Schedule []TaskSpan
}

// TaskSpan is one task's compute window.
type TaskSpan struct {
	Task   dag.TaskID
	Name   string
	Type   string
	Start  units.Duration
	Finish units.Duration
}

// GBHoursStorage returns the storage integral in GB-hours, the unit of
// Figs. 7-9.
func (m Metrics) GBHoursStorage() float64 { return units.GBHours(m.StorageByteSeconds) }

// Run simulates wf under cfg and returns the measured metrics.
func Run(wf *dag.Workflow, cfg Config) (Metrics, error) {
	return RunContext(context.Background(), wf, cfg)
}

// RunContext is Run with cooperative cancellation: the simulation aborts
// between events once ctx is canceled and returns ctx's error.  wf is
// only ever read, so concurrent runs may share one workflow.
func RunContext(ctx context.Context, wf *dag.Workflow, cfg Config) (Metrics, error) {
	if !wf.Finalized() {
		return Metrics{}, fmt.Errorf("exec: workflow %q not finalized", wf.Name)
	}
	switch cfg.Mode {
	case datamgmt.RemoteIO, datamgmt.Regular, datamgmt.Cleanup:
	default:
		return Metrics{}, fmt.Errorf("exec: unknown mode %v", cfg.Mode)
	}
	if cfg.Processors < 0 {
		return Metrics{}, fmt.Errorf("exec: negative processor count %d", cfg.Processors)
	}
	if cfg.VMStartup < 0 {
		return Metrics{}, fmt.Errorf("exec: negative VM startup %v", cfg.VMStartup)
	}
	if err := validateOutages(cfg.Outages); err != nil {
		return Metrics{}, err
	}
	if cfg.Policy < FIFO || cfg.Policy > ShortestFirst {
		return Metrics{}, fmt.Errorf("exec: unknown scheduling policy %d", cfg.Policy)
	}
	if cfg.FailureProb < 0 || cfg.FailureProb >= 1 {
		return Metrics{}, fmt.Errorf("exec: failure probability %v outside [0,1)", cfg.FailureProb)
	}
	if err := cfg.Recovery.validate(); err != nil {
		return Metrics{}, err
	}
	procs := cfg.Processors
	if procs == 0 {
		procs = wf.MaxParallelism()
	}
	if cfg.OnDemandProcessors < 0 {
		return Metrics{}, fmt.Errorf("exec: negative on-demand sub-pool %d", cfg.OnDemandProcessors)
	}
	if cfg.OnDemandProcessors > procs {
		return Metrics{}, fmt.Errorf("exec: on-demand sub-pool %d exceeds the %d-processor fleet", cfg.OnDemandProcessors, procs)
	}
	if len(cfg.Preemptions) > 0 && cfg.OnDemandProcessors == procs {
		return Metrics{}, fmt.Errorf("exec: preemptions scheduled but the %d-processor fleet has no spot capacity", procs)
	}
	if err := validatePreemptions(cfg.Preemptions, procs, cfg.OnDemandProcessors); err != nil {
		return Metrics{}, err
	}
	bw := cfg.Bandwidth
	if bw == 0 {
		bw = DefaultBandwidth
	}
	link, err := cloudsim.NewLink(bw)
	if err != nil {
		return Metrics{}, err
	}
	cluster, err := cloudsim.NewFleet(procs, cfg.OnDemandProcessors)
	if err != nil {
		return Metrics{}, err
	}
	r := &runner{
		wf:      wf,
		cfg:     cfg,
		eng:     &sim.Engine{},
		storage: cloudsim.NewStorage(cfg.RecordCurve),
		link:    link,
		cluster: cluster,
	}
	if cfg.Mode == datamgmt.Cleanup {
		if r.analyzer, err = datamgmt.NewAnalyzer(wf); err != nil {
			return Metrics{}, err
		}
	}
	if cfg.FailureProb > 0 {
		r.failRNG = rand.New(rand.NewSource(cfg.FailureSeed))
	}
	return r.run(ctx)
}

type taskPhase int

const (
	phaseWaiting taskPhase = iota // dependencies outstanding
	phaseStaging                  // remote I/O: inputs in flight
	phaseReady                    // waiting for a processor
	phaseRunning                  // computing
	phaseDone                     // completed (remote I/O: outputs may still be in flight)
)

type runner struct {
	wf  *dag.Workflow
	cfg Config

	eng      *sim.Engine
	storage  *cloudsim.Storage
	link     *cloudsim.Link
	cluster  *cloudsim.Cluster
	analyzer *datamgmt.Analyzer

	phase            []taskPhase
	depsLeft         []int
	ready            []dag.TaskID // compute-ready, kept sorted by ID
	doneTasks        int
	stagedOut        int // remote I/O: tasks whose outputs reached the user
	execEnd          units.Duration
	makespan         units.Duration
	dispatchDeferred bool
	schedule         []TaskSpan
	spanOf           map[dag.TaskID]int // running task -> its schedule index
	failRNG          *rand.Rand
	retries          int

	// Preemption bookkeeping, all indexed by task ID: the attempt
	// counter disarms stale completion events, banked is the useful work
	// preserved across kills, runStart/runRem describe the attempt in
	// flight, onReliable records which sub-pool the attempt occupies.
	attempt      []uint32
	banked       []units.Duration
	runStart     []units.Duration
	runRem       []units.Duration
	onReliable   []bool
	preempted    int
	wasted       float64
	checkpoints  int
	ckptWritten  units.Bytes
	ckptRestored units.Bytes

	// rank holds the upward (bottom-level) CCR ranks of a mixed fleet:
	// critical-path tasks claim reliable slots first.  Nil on uniform
	// pools, where placement is irrelevant.
	rank []units.Duration
	// capacityAtExecEnd snapshots the cluster's capacity integral when
	// the execution window closes: the utilization denominator.
	// reliableCapAtExecEnd is the reliable sub-pool's share of it.
	capacityAtExecEnd    float64
	reliableCapAtExecEnd float64

	err error
}

func (r *runner) fail(err error) {
	if r.err == nil {
		r.err = err
	}
	r.eng.Stop()
}

// avail returns the earliest time >= now at which the storage service is
// reachable.
func (r *runner) avail(now units.Duration) units.Duration {
	return nextAvailable(r.cfg.Outages, now)
}

// reserveAvail books a serialized link transfer whose start respects
// both the link FIFO and the outage windows.
func (r *runner) reserveAvail(now units.Duration, size units.Bytes, dir cloudsim.Direction) (units.Duration, units.Duration, error) {
	s := now
	if fa := r.link.FreeAt(); fa > s {
		s = fa
	}
	return r.link.Reserve(r.avail(s), size, dir)
}

func (r *runner) run(ctx context.Context) (Metrics, error) {
	n := r.wf.NumTasks()
	r.phase = make([]taskPhase, n)
	r.depsLeft = make([]int, n)
	r.attempt = make([]uint32, n)
	r.banked = make([]units.Duration, n)
	r.runStart = make([]units.Duration, n)
	r.runRem = make([]units.Duration, n)
	r.onReliable = make([]bool, n)
	if r.cluster.Reliable() > 0 && r.cluster.Reliable() < r.cluster.Provisioned() {
		r.rank = r.wf.UpwardRanks()
	}
	if r.cfg.RecordSchedule {
		r.spanOf = make(map[dag.TaskID]int)
	}
	for _, t := range r.wf.Tasks() {
		r.depsLeft[t.ID] = len(t.Parents())
	}

	// Everything waits for the virtual machines to boot; the provisioned
	// pool is billed from launch, so the delay lands inside ExecTime.
	r.eng.Schedule(r.cfg.VMStartup, func(units.Duration) {
		switch r.cfg.Mode {
		case datamgmt.Regular, datamgmt.Cleanup:
			r.startResident()
		case datamgmt.RemoteIO:
			r.startRemoteIO()
		}
	})

	// Capacity reclaims fire on the absolute simulation clock, like
	// outages.
	for _, p := range r.cfg.Preemptions {
		p := p
		r.eng.Schedule(p.Reclaim, func(now units.Duration) { r.reclaim(p, now) })
	}

	if _, err := r.eng.RunContext(ctx); err != nil {
		return Metrics{}, fmt.Errorf("exec: %w", err)
	}
	if r.err != nil {
		return Metrics{}, r.err
	}
	if r.doneTasks != n {
		return Metrics{}, fmt.Errorf("exec: deadlock: %d of %d tasks completed", r.doneTasks, n)
	}

	m := Metrics{
		Workflow:                    r.wf.Name,
		Mode:                        r.cfg.Mode,
		Processors:                  r.cluster.Provisioned(),
		OnDemandProcessors:          r.cluster.Reliable(),
		ExecTime:                    r.execEnd,
		Makespan:                    r.makespan,
		BytesIn:                     r.link.BytesIn(),
		BytesOut:                    r.link.BytesOut(),
		StorageByteSeconds:          r.storage.ByteSeconds(r.makespan),
		PeakStorage:                 r.storage.Peak(),
		CPUSeconds:                  r.cluster.BusyProcSeconds(r.makespan),
		SpotCPUSeconds:              r.cluster.SpotBusyProcSeconds(r.makespan),
		CapacityProcSeconds:         r.capacityAtExecEnd,
		ReliableCapacityProcSeconds: r.reliableCapAtExecEnd,
		SpotCapacityProcSeconds:     r.capacityAtExecEnd - r.reliableCapAtExecEnd,
		TasksRun:                    r.doneTasks,
		Retries:                     r.retries,
		Preempted:                   r.preempted,
		WastedCPUSeconds:            r.wasted,
		Checkpoints:                 r.checkpoints,
		CheckpointBytesWritten:      r.ckptWritten,
		CheckpointBytesRestored:     r.ckptRestored,
		Curve:                       r.storage.Curve(),
		Schedule:                    r.schedule,
	}
	m.Utilization = utilization(m.CPUSeconds, m.CapacityProcSeconds)
	// Without failures, preemptions or checkpoint overhead, the consumed
	// CPU must equal the workflow's total runtime exactly; a mismatch
	// means a double-booked processor.
	if r.failRNG == nil && len(r.cfg.Preemptions) == 0 && !r.cfg.Recovery.Checkpoint {
		want := r.wf.TotalRuntime().Seconds()
		if diff := m.CPUSeconds - want; diff > 1e-6*want+1e-6 || diff < -(1e-6*want+1e-6) {
			return Metrics{}, fmt.Errorf("exec: CPU accounting mismatch: cluster %v vs workflow %v", m.CPUSeconds, want)
		}
		// Report the exact value so costs reproduce the paper's figures
		// without float drift.  With no revocations the capacity integral
		// is exactly the static pool over the window, so report that
		// product too rather than its float accumulation -- and rescale
		// the spot share by the same snap, or mixed billing would see
		// exact-minus-accumulated epsilon noise as reliable CPU.
		if m.CPUSeconds > 0 {
			m.SpotCPUSeconds *= want / m.CPUSeconds
		}
		m.CPUSeconds = want
		m.CapacityProcSeconds = float64(m.Processors) * m.ExecTime.Seconds()
		m.ReliableCapacityProcSeconds = float64(m.OnDemandProcessors) * m.ExecTime.Seconds()
		m.SpotCapacityProcSeconds = m.CapacityProcSeconds - m.ReliableCapacityProcSeconds
		m.Utilization = utilization(want, m.CapacityProcSeconds)
	}
	return m, nil
}

// utilization guards the CPUSeconds / capacity-proc-seconds division: a
// run that accumulated no available capacity (zero width or an all-idle
// window) reports 0 utilization, never NaN or Inf -- either would poison
// the JSON encoding of every result document downstream (encoding/json
// rejects non-finite floats).
func utilization(cpuSeconds, capacityProcSeconds float64) float64 {
	if capacityProcSeconds <= 0 {
		return 0
	}
	return cpuSeconds / capacityProcSeconds
}

// ---- Regular / Cleanup ----

func (r *runner) startResident() {
	// Phase 1: stage in every external input, serialized on the link in
	// name order.  Each file becomes resident on arrival.
	start := r.avail(r.eng.Now())
	stageInEnd := start
	for _, f := range r.wf.ExternalInputs() {
		f := f
		_, end, err := r.reserveAvail(start, f.Size, cloudsim.In)
		if err != nil {
			r.fail(err)
			return
		}
		r.eng.Schedule(end, func(now units.Duration) {
			if err := r.storage.Put(now, f.Name, f.Size); err != nil {
				r.fail(err)
			}
		})
		if end > stageInEnd {
			stageInEnd = end
		}
	}
	// Phase 2 begins when all inputs are resident.
	r.eng.Schedule(stageInEnd, func(now units.Duration) {
		for _, t := range r.wf.Tasks() {
			if r.depsLeft[t.ID] == 0 {
				r.enqueueReady(t.ID)
			}
		}
		r.dispatch(now)
	})
}

func (r *runner) finishResident(now units.Duration) {
	r.execEnd = now
	r.capacityAtExecEnd = r.cluster.CapacityProcSeconds(now)
	r.reliableCapAtExecEnd = r.cluster.ReliableCapacityProcSeconds(now)
	// Phase 3: stage out the declared outputs in name order, then delete
	// everything still resident ("after that ... all the files are
	// deleted from the storage resource").
	var lastEnd units.Duration = now
	for _, f := range r.wf.OutputFiles() {
		_, end, err := r.reserveAvail(now, f.Size, cloudsim.Out)
		if err != nil {
			r.fail(err)
			return
		}
		if end > lastEnd {
			lastEnd = end
		}
	}
	r.eng.Schedule(lastEnd, func(t units.Duration) {
		for _, f := range r.wf.Files() {
			if r.storage.Has(f.Name) {
				if err := r.storage.Delete(t, f.Name); err != nil {
					r.fail(err)
					return
				}
			}
		}
		r.makespan = t
	})
}

// ---- Remote I/O ----

// remoteKey namespaces a file per task: in remote I/O two concurrent
// tasks each hold their own staged copy of a shared input.
func remoteKey(id dag.TaskID, file string) string {
	return fmt.Sprintf("t%d/%s", id, file)
}

func (r *runner) startRemoteIO() {
	for _, t := range r.wf.Tasks() {
		if r.depsLeft[t.ID] == 0 {
			r.beginStaging(t.ID)
		}
	}
}

// beginStaging starts the input transfers of a remote-I/O task.  The
// task fetches its files over its own connection, one after another, at
// full bandwidth; concurrent tasks do not contend (each remote-I/O task
// is an independent stream in the paper's model).
func (r *runner) beginStaging(id dag.TaskID) {
	t := r.wf.Task(id)
	r.phase[id] = phaseStaging
	cur := r.eng.Now()
	inputs := append([]string(nil), t.Inputs...)
	sort.Strings(inputs)
	for _, name := range inputs {
		f := r.wf.File(name)
		key := remoteKey(id, name)
		cur = r.avail(cur)
		_, end, err := r.link.Record(cur, f.Size, cloudsim.In)
		if err != nil {
			r.fail(err)
			return
		}
		size := f.Size
		r.eng.Schedule(end, func(at units.Duration) {
			if err := r.storage.Put(at, key, size); err != nil {
				r.fail(err)
			}
		})
		cur = end
	}
	r.eng.Schedule(cur, func(at units.Duration) {
		r.phase[id] = phaseReady
		r.enqueueReady(id)
		r.dispatch(at)
	})
}

// finishRemoteTask stages out every output of a completed remote-I/O
// task, then deletes the task's staged inputs and outputs.
func (r *runner) finishRemoteTask(id dag.TaskID, now units.Duration) {
	t := r.wf.Task(id)
	// Outputs become resident at completion...
	for _, name := range t.Outputs {
		f := r.wf.File(name)
		if err := r.storage.Put(now, remoteKey(id, name), f.Size); err != nil {
			r.fail(err)
			return
		}
	}
	// ...are transferred to the user over the task's own stream...
	outputs := append([]string(nil), t.Outputs...)
	sort.Strings(outputs)
	cur := now
	for _, name := range outputs {
		f := r.wf.File(name)
		cur = r.avail(cur)
		_, end, err := r.link.Record(cur, f.Size, cloudsim.Out)
		if err != nil {
			r.fail(err)
			return
		}
		cur = end
	}
	// ...and then inputs and outputs are deleted from the resource.
	r.eng.Schedule(cur, func(at units.Duration) {
		for _, name := range t.Inputs {
			if err := r.storage.Delete(at, remoteKey(id, name)); err != nil {
				r.fail(err)
				return
			}
		}
		for _, name := range t.Outputs {
			if err := r.storage.Delete(at, remoteKey(id, name)); err != nil {
				r.fail(err)
				return
			}
		}
		r.stagedOut++
		r.makespan = at
		// Children depend on the data reaching the user.
		for _, c := range t.Children() {
			r.depsLeft[c]--
			if r.depsLeft[c] == 0 {
				r.beginStaging(c)
			}
		}
		if r.stagedOut == r.wf.NumTasks() {
			r.execEnd = at
			r.capacityAtExecEnd = r.cluster.CapacityProcSeconds(at)
			r.reliableCapAtExecEnd = r.cluster.ReliableCapacityProcSeconds(at)
		}
	})
}

// ---- shared scheduling ----

// releaseSlot frees the processor a task's attempt occupies, in the
// sub-pool it was placed on.
func (r *runner) releaseSlot(id dag.TaskID, now units.Duration) error {
	if r.onReliable[id] {
		r.onReliable[id] = false
		return r.cluster.ReleaseReliable(now)
	}
	return r.cluster.ReleaseSpot(now)
}

// readyBefore orders the ready queue per the scheduling policy, with
// task ID as the deterministic tie-breaker.
func (r *runner) readyBefore(a, b dag.TaskID) bool {
	ra, rb := r.wf.Task(a).Runtime, r.wf.Task(b).Runtime
	switch r.cfg.Policy {
	case LongestFirst:
		if ra != rb {
			return ra > rb
		}
	case ShortestFirst:
		if ra != rb {
			return ra < rb
		}
	}
	return a < b
}

func (r *runner) enqueueReady(id dag.TaskID) {
	r.phase[id] = phaseReady
	i := sort.Search(len(r.ready), func(i int) bool { return !r.readyBefore(r.ready[i], id) })
	r.ready = append(r.ready, 0)
	copy(r.ready[i+1:], r.ready[i:])
	r.ready[i] = id
}

// dispatch greedily assigns ready tasks (policy order) to free
// processors.  During a storage outage no task may start (it could not
// read its inputs); dispatching resumes when the window closes.  On a
// mixed fleet the batch that starts now is placed by upward rank: the
// most critical tasks claim the reliable on-demand slots, the rest run
// on revocable spot capacity.
func (r *runner) dispatch(now units.Duration) {
	if a := r.avail(now); a > now {
		if !r.dispatchDeferred {
			r.dispatchDeferred = true
			r.eng.Schedule(a, func(at units.Duration) {
				r.dispatchDeferred = false
				r.dispatch(at)
			})
		}
		return
	}
	n := r.cluster.Free()
	if n > len(r.ready) {
		n = len(r.ready)
	}
	if n <= 0 {
		return
	}
	batch := append([]dag.TaskID(nil), r.ready[:n]...)
	r.ready = r.ready[n:]
	if r.rank != nil && r.cluster.FreeReliable() > 0 {
		// Placement order, not start order: everything in the batch
		// starts at the same instant, so reordering only decides which
		// tasks land on the reliable sub-pool.
		sort.SliceStable(batch, func(i, j int) bool {
			a, b := batch[i], batch[j]
			if r.rank[a] != r.rank[b] {
				return r.rank[a] > r.rank[b]
			}
			return a < b
		})
	}
	for _, id := range batch {
		r.startTask(id, now)
	}
}

// startTask begins one attempt on a free processor, reliable sub-pool
// first (on a uniform pool every slot is spot capacity).
func (r *runner) startTask(id dag.TaskID, now units.Duration) {
	r.onReliable[id] = r.cluster.AcquireReliable(now)
	if !r.onReliable[id] && !r.cluster.AcquireSpot(now) {
		r.fail(fmt.Errorf("exec: dispatch overran the free processors at %v", now))
		return
	}
	r.phase[id] = phaseRunning
	t := r.wf.Task(id)
	// The attempt resumes from the banked progress and pays the
	// recovery policy's checkpoint overhead along the way.
	rem := t.Runtime - r.banked[id]
	wall := r.cfg.Recovery.attemptWall(rem)
	r.runStart[id] = now
	r.runRem[id] = rem
	// Checkpoint data volumes: resuming from a checkpoint reads its image
	// back out of storage, and a task's first durable checkpoint makes
	// its image resident until the task completes (replacement writes
	// keep the size constant, so only the first write changes occupancy).
	if rec := r.cfg.Recovery; rec.Checkpoint && rec.Bytes > 0 {
		if r.banked[id] > 0 {
			r.ckptRestored += rec.Bytes
		}
		if rec.checkpointsFor(rem) > 0 && !r.storage.Has(ckptKey(id)) {
			firstAtt := r.attempt[id]
			r.eng.Schedule(now+rec.Interval+rec.Overhead, func(at units.Duration) {
				if r.attempt[id] != firstAtt || r.storage.Has(ckptKey(id)) {
					return
				}
				if err := r.storage.Put(at, ckptKey(id), rec.Bytes); err != nil {
					r.fail(err)
				}
			})
		}
	}
	if r.cfg.RecordSchedule {
		r.spanOf[id] = len(r.schedule)
		r.schedule = append(r.schedule, TaskSpan{
			Task: id, Name: t.Name, Type: t.Type,
			Start: now, Finish: now + wall,
		})
	}
	att := r.attempt[id]
	r.eng.Schedule(now+wall, func(at units.Duration) {
		// A preemption between dispatch and completion bumps the
		// attempt counter; this event then belongs to a dead attempt.
		if r.attempt[id] != att {
			return
		}
		r.completeTask(id, at)
	})
}

func (r *runner) completeTask(id dag.TaskID, now units.Duration) {
	if err := r.releaseSlot(id, now); err != nil {
		r.fail(err)
		return
	}
	if r.cfg.RecordSchedule {
		delete(r.spanOf, id)
	}
	// Reliability extension: the attempt may fail, in which case the
	// task goes back to the ready queue and the burned CPU time stays on
	// the bill.  An application failure discards the whole attempt,
	// checkpoints included: the crash is presumed to have poisoned them.
	if r.failRNG != nil && r.failRNG.Float64() < r.cfg.FailureProb {
		r.retries++
		// The crash poisons the failed attempt's own checkpoints, but
		// progress banked by earlier preemptions survives (banked[id] is
		// untouched), so its backing image must stay resident for the
		// retry to restore from.  Only an image with nothing banked
		// behind it is poisoned garbage.
		if r.banked[id] == 0 {
			if err := r.dropCheckpoint(id, now); err != nil {
				r.fail(err)
				return
			}
		}
		r.enqueueReady(id)
		r.dispatch(now)
		return
	}
	n := r.cfg.Recovery.checkpointsFor(r.runRem[id])
	r.checkpoints += n
	r.ckptWritten += units.Bytes(n) * r.cfg.Recovery.Bytes
	// A completed task's checkpoint image is garbage; free the storage.
	if err := r.dropCheckpoint(id, now); err != nil {
		r.fail(err)
		return
	}
	r.phase[id] = phaseDone
	r.doneTasks++
	t := r.wf.Task(id)

	switch r.cfg.Mode {
	case datamgmt.Regular, datamgmt.Cleanup:
		for _, name := range t.Outputs {
			f := r.wf.File(name)
			if err := r.storage.Put(now, name, f.Size); err != nil {
				r.fail(err)
				return
			}
		}
		if r.analyzer != nil {
			for _, dead := range r.analyzer.TaskDone(id) {
				if err := r.storage.Delete(now, dead); err != nil {
					r.fail(err)
					return
				}
			}
		}
		for _, c := range t.Children() {
			r.depsLeft[c]--
			if r.depsLeft[c] == 0 {
				r.enqueueReady(c)
			}
		}
		if r.doneTasks == r.wf.NumTasks() {
			r.finishResident(now)
			return
		}
	case datamgmt.RemoteIO:
		r.finishRemoteTask(id, now)
	}
	r.dispatch(now)
}
