package exec

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/datamgmt"
	"repro/internal/montage"
)

// TestMetricsJSONRoundTrip ensures measured results persist and reload
// faithfully -- the path a user takes to archive experiment outputs.
func TestMetricsJSONRoundTrip(t *testing.T) {
	w, err := montage.Generate(montage.OneDegree())
	if err != nil {
		t.Fatal(err)
	}
	m, err := Run(w, Config{Mode: datamgmt.Cleanup, Processors: 8, RecordSchedule: true})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	// The mode serializes as its readable name, not an integer.
	if !strings.Contains(string(data), `"Mode":"cleanup"`) {
		t.Errorf("JSON missing readable mode: %s", string(data)[:120])
	}
	var back Metrics
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Mode != m.Mode || back.Processors != m.Processors ||
		back.BytesIn != m.BytesIn || back.CPUSeconds != m.CPUSeconds {
		t.Error("round trip changed metrics")
	}
	if len(back.Schedule) != len(m.Schedule) {
		t.Errorf("round trip lost schedule: %d vs %d spans", len(back.Schedule), len(m.Schedule))
	}
}

func TestModeTextMarshal(t *testing.T) {
	for _, mode := range datamgmt.Modes() {
		data, err := mode.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back datamgmt.Mode
		if err := back.UnmarshalText(data); err != nil {
			t.Fatal(err)
		}
		if back != mode {
			t.Errorf("round trip %v -> %s -> %v", mode, data, back)
		}
	}
	if _, err := datamgmt.Mode(9).MarshalText(); err == nil {
		t.Error("unknown mode marshaled")
	}
	var m datamgmt.Mode
	if err := m.UnmarshalText([]byte("bogus")); err == nil {
		t.Error("bogus mode unmarshaled")
	}
}

func TestPolicyTextMarshal(t *testing.T) {
	for _, pol := range []Policy{FIFO, LongestFirst, ShortestFirst} {
		data, err := pol.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back Policy
		if err := back.UnmarshalText(data); err != nil {
			t.Fatal(err)
		}
		if back != pol {
			t.Errorf("round trip %v -> %s -> %v", pol, data, back)
		}
	}
	if _, err := ParsePolicy("lpt"); err != nil {
		t.Error("lpt alias rejected")
	}
	if _, err := ParsePolicy("spt"); err != nil {
		t.Error("spt alias rejected")
	}
	if _, err := ParsePolicy("nope"); err == nil {
		t.Error("bogus policy parsed")
	}
	if _, err := Policy(9).MarshalText(); err == nil {
		t.Error("unknown policy marshaled")
	}
	var p Policy
	if err := p.UnmarshalText([]byte("zzz")); err == nil {
		t.Error("bogus policy unmarshaled")
	}
}
