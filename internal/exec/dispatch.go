package exec

// Processor scheduling: the ready queue, the greedy dispatcher and the
// life cycle of a single attempt.  The placement policy decides which
// tasks of a dispatch batch claim the reliable sub-pool, and the
// checkpoint trigger decides each attempt's snapshot spacing.

import (
	"fmt"
	"sort"

	"repro/internal/dag"
	"repro/internal/datamgmt"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/units"
)

// releaseSlot frees the processor a task's attempt occupies, in the
// sub-pool it was placed on.
func (r *runner) releaseSlot(id dag.TaskID, now units.Duration) error {
	if r.onReliable[id] {
		r.onReliable[id] = false
		return r.cluster.ReleaseReliable(now)
	}
	return r.cluster.ReleaseSpot(now)
}

// readyBefore orders the ready queue per the scheduling policy, with
// task ID as the deterministic tie-breaker.
func (r *runner) readyBefore(a, b dag.TaskID) bool {
	ra, rb := r.wf.Task(a).Runtime, r.wf.Task(b).Runtime
	switch r.cfg.Policy {
	case LongestFirst:
		if ra != rb {
			return ra > rb
		}
	case ShortestFirst:
		if ra != rb {
			return ra < rb
		}
	}
	return a < b
}

// enqueueReady inserts the task into the ready queue at its policy
// position (binary search + shift, no re-sort).
//
//repro:hot
func (r *runner) enqueueReady(id dag.TaskID) {
	r.phase[id] = phaseReady
	if r.trace != nil {
		r.trace.Record(r.eng.Now(), obs.Event{Kind: obs.KindReady, Task: int(id), Name: r.wf.Task(id).Name})
	}
	i := sort.Search(len(r.ready), func(i int) bool { return !r.readyBefore(r.ready[i], id) })
	r.ready = append(r.ready, 0)
	copy(r.ready[i+1:], r.ready[i:])
	r.ready[i] = id
}

// dispatch greedily assigns ready tasks (policy order) to free
// processors.  During a storage outage no task may start (it could not
// read its inputs); dispatching resumes when the window closes.  On a
// mixed fleet the batch that starts now is placed by the placement
// policy's priorities: the highest-priority tasks claim the reliable
// on-demand slots, the rest run on revocable spot capacity.
//
//repro:hot
func (r *runner) dispatch(now units.Duration) {
	if a := r.avail(now); a > now {
		if !r.dispatchDeferred {
			r.dispatchDeferred = true
			r.eng.Schedule(a, func(at units.Duration) {
				r.dispatchDeferred = false
				r.dispatch(at)
			})
		}
		return
	}
	n := r.cluster.Free()
	if n > len(r.ready) {
		n = len(r.ready)
	}
	if n <= 0 {
		return
	}
	batch := append([]dag.TaskID(nil), r.ready[:n]...)
	r.ready = r.ready[n:]
	if r.trace != nil {
		r.trace.Record(now, obs.Event{Kind: obs.KindDispatch, Task: -1, Count: len(batch)})
	}
	if r.prio != nil && r.cluster.FreeReliable() > 0 {
		// Placement order, not start order: everything in the batch
		// starts at the same instant, so reordering only decides which
		// tasks land on the reliable sub-pool.
		sort.SliceStable(batch, func(i, j int) bool {
			a, b := batch[i], batch[j]
			if r.prio[a] != r.prio[b] {
				return r.prio[a] > r.prio[b]
			}
			return a < b
		})
	}
	for _, id := range batch {
		r.startTask(id, now)
	}
}

// effectiveRecovery derives the recovery policy governing one attempt:
// the configured recovery with its interval re-spaced by the checkpoint
// trigger for this attempt's placement and remaining work.  A
// non-positive trigger result keeps the configured base interval.
func (r *runner) effectiveRecovery(rem units.Duration, onReliable bool) Recovery {
	rec := r.cfg.Recovery
	if !rec.Checkpoint {
		return rec
	}
	iv := r.policies.Checkpoint.EffectiveInterval(policy.CheckpointContext{
		Interval:        rec.Interval,
		Overhead:        rec.Overhead,
		Remaining:       rem,
		OnReliable:      onReliable,
		SpotRatePerHour: r.cfg.SpotRatePerHour,
	})
	if iv > 0 {
		rec.Interval = iv
	}
	return rec
}

// startTask begins one attempt on a free processor, reliable sub-pool
// first (on a uniform pool every slot is spot capacity).
func (r *runner) startTask(id dag.TaskID, now units.Duration) {
	r.onReliable[id] = r.cluster.AcquireReliable(now)
	if !r.onReliable[id] && !r.cluster.AcquireSpot(now) {
		r.fail(fmt.Errorf("exec: dispatch overran the free processors at %v", now))
		return
	}
	r.phase[id] = phaseRunning
	t := r.wf.Task(id)
	// The attempt resumes from the banked progress and pays its
	// effective recovery policy's checkpoint overhead along the way.
	rem := t.Runtime - r.banked[id]
	rec := r.effectiveRecovery(rem, r.onReliable[id])
	r.runRec[id] = rec
	wall := rec.attemptWall(rem)
	r.runStart[id] = now
	r.runRem[id] = rem
	if r.trace != nil {
		pool := "spot"
		if r.onReliable[id] {
			pool = "reliable"
		}
		r.trace.Record(now, obs.Event{Kind: obs.KindStart, Task: int(id), Name: t.Name, Pool: pool})
		if r.banked[id] > 0 {
			ev := obs.Event{Kind: obs.KindRestore, Task: int(id), Name: t.Name}
			if rec.Checkpoint {
				ev.Bytes = int64(rec.Bytes)
			}
			r.trace.Record(now, ev)
		}
	}
	// Checkpoint data volumes: resuming from a checkpoint reads its image
	// back out of storage, and a task's first durable checkpoint makes
	// its image resident until the task completes (replacement writes
	// keep the size constant, so only the first write changes occupancy).
	if rec.Checkpoint && rec.Bytes > 0 {
		if r.banked[id] > 0 {
			r.ckptRestored += rec.Bytes
		}
		if rec.checkpointsFor(rem) > 0 && !r.storage.Has(ckptKey(id)) {
			firstAtt := r.attempt[id]
			r.eng.Schedule(now+rec.Interval+rec.Overhead, func(at units.Duration) {
				if r.attempt[id] != firstAtt || r.storage.Has(ckptKey(id)) {
					return
				}
				if err := r.storage.Put(at, ckptKey(id), rec.Bytes); err != nil {
					r.fail(err)
				}
			})
		}
	}
	if r.cfg.RecordSchedule {
		r.spanOf[id] = len(r.schedule)
		r.schedule = append(r.schedule, TaskSpan{
			Task: id, Name: t.Name, Type: t.Type,
			Start: now, Finish: now + wall,
		})
	}
	att := r.attempt[id]
	r.eng.Schedule(now+wall, func(at units.Duration) {
		// A preemption between dispatch and completion bumps the
		// attempt counter; this event then belongs to a dead attempt.
		if r.attempt[id] != att {
			return
		}
		r.completeTask(id, at)
	})
}

func (r *runner) completeTask(id dag.TaskID, now units.Duration) {
	if err := r.releaseSlot(id, now); err != nil {
		r.fail(err)
		return
	}
	if r.cfg.RecordSchedule {
		delete(r.spanOf, id)
	}
	// Reliability extension: the attempt may fail, in which case the
	// task goes back to the ready queue and the burned CPU time stays on
	// the bill.  An application failure discards the whole attempt,
	// checkpoints included: the crash is presumed to have poisoned them.
	if r.failRNG != nil && r.failRNG.Float64() < r.cfg.FailureProb {
		r.retries++
		if r.trace != nil {
			r.trace.Record(now, obs.Event{Kind: obs.KindRetry, Task: int(id), Name: r.wf.Task(id).Name})
		}
		// The crash poisons the failed attempt's own checkpoints, but
		// progress banked by earlier preemptions survives (banked[id] is
		// untouched), so its backing image must stay resident for the
		// retry to restore from.  Only an image with nothing banked
		// behind it is poisoned garbage.
		if r.banked[id] == 0 {
			if err := r.dropCheckpoint(id, now); err != nil {
				r.fail(err)
				return
			}
		}
		r.enqueueReady(id)
		r.dispatch(now)
		return
	}
	rec := r.runRec[id]
	n := rec.checkpointsFor(r.runRem[id])
	r.checkpoints += n
	r.ckptWritten += units.Bytes(n) * rec.Bytes
	if r.trace != nil {
		if n > 0 {
			r.trace.Record(now, obs.Event{
				Kind: obs.KindCheckpoint, Task: int(id), Name: r.wf.Task(id).Name,
				Count: n, Bytes: int64(units.Bytes(n) * rec.Bytes), Detail: "periodic",
			})
		}
		r.trace.Record(now, obs.Event{Kind: obs.KindFinish, Task: int(id), Name: r.wf.Task(id).Name})
	}
	// A completed task's checkpoint image is garbage; free the storage.
	if err := r.dropCheckpoint(id, now); err != nil {
		r.fail(err)
		return
	}
	r.phase[id] = phaseDone
	r.doneTasks++
	t := r.wf.Task(id)

	switch r.cfg.Mode {
	case datamgmt.Regular, datamgmt.Cleanup:
		for _, name := range t.Outputs {
			f := r.wf.File(name)
			if err := r.storage.Put(now, name, f.Size); err != nil {
				r.fail(err)
				return
			}
		}
		if r.analyzer != nil {
			for _, dead := range r.analyzer.TaskDone(id) {
				if err := r.storage.Delete(now, dead); err != nil {
					r.fail(err)
					return
				}
			}
		}
		for _, c := range t.Children() {
			r.depsLeft[c]--
			if r.depsLeft[c] == 0 {
				r.enqueueReady(c)
			}
		}
		if r.doneTasks == r.wf.NumTasks() {
			r.finishResident(now)
			return
		}
	case datamgmt.RemoteIO:
		r.finishRemoteTask(id, now)
	}
	r.dispatch(now)
}
