package exec

// Everything one run measures: the metrics document the paper's figures
// and the service's result documents are built from.

import (
	"repro/internal/cloudsim"
	"repro/internal/dag"
	"repro/internal/datamgmt"
	"repro/internal/units"
)

// Metrics is everything measured during one run.
type Metrics struct {
	Workflow   string
	Mode       datamgmt.Mode
	Processors int

	// ExecTime is the window during which the provisioned processors are
	// held: input staging plus task execution.  This is the "execution
	// time" plotted in Figs. 4-6.
	ExecTime units.Duration
	// Makespan additionally includes the final stage-out of the outputs
	// to the user.
	Makespan units.Duration

	// BytesIn and BytesOut are the data volumes moved over the link,
	// split by direction because Amazon charges them differently.
	BytesIn  units.Bytes
	BytesOut units.Bytes

	// StorageByteSeconds is the area under the storage usage curve.
	StorageByteSeconds float64
	// PeakStorage is the high-water mark of resident bytes.
	PeakStorage units.Bytes

	// CPUSeconds is the total compute time consumed, including failed
	// attempts: the on-demand CPU bill.
	CPUSeconds float64
	// SpotCPUSeconds is the share of CPUSeconds consumed on the
	// revocable spot sub-pool, billed at the spot rate in a mixed fleet.
	// With no reliable sub-pool the whole pool is revocable, so this
	// equals CPUSeconds.
	SpotCPUSeconds float64
	// OnDemandProcessors is the reliable sub-pool size of a mixed fleet;
	// 0 means the whole pool is revocable.
	OnDemandProcessors int
	// CapacityProcSeconds is the integral of available processors over
	// the ExecTime window: the capacity-seconds actually present, which
	// revocations shrink and restores grow back.
	CapacityProcSeconds float64
	// ReliableCapacityProcSeconds is the reliable on-demand sub-pool's
	// share of CapacityProcSeconds; revocations never touch it, so it is
	// exactly the sub-pool size times the ExecTime window.
	ReliableCapacityProcSeconds float64
	// SpotCapacityProcSeconds is the revocable spot sub-pool's share of
	// CapacityProcSeconds: what fleet-sizing dashboards divide the spot
	// consumption by.  On a uniform pool it equals CapacityProcSeconds.
	SpotCapacityProcSeconds float64
	// Utilization is CPUSeconds over CapacityProcSeconds: consumption
	// against the capacity that was actually available, not the static
	// provisioned pool.  Without revocations the two denominators agree.
	Utilization float64

	TasksRun int
	// Retries counts failed task attempts that were re-run.
	Retries int
	// Preempted counts task attempts killed by capacity reclaims.
	Preempted int
	// WastedCPUSeconds is the busy processor time burned by preempted
	// attempts that did not survive as banked progress: billed, lost.
	WastedCPUSeconds float64
	// Checkpoints counts durable checkpoints written (periodic plus
	// warning-window emergency ones).
	Checkpoints int
	// CheckpointBytesWritten is the data volume moved into cloud storage
	// by checkpoint writes (Checkpoints x Recovery.Bytes); zero when the
	// recovery policy declares no checkpoint size.
	CheckpointBytesWritten units.Bytes
	// CheckpointBytesRestored is the data volume read back out of cloud
	// storage by attempts resuming from a checkpoint.
	CheckpointBytesRestored units.Bytes
	// Curve is the storage usage curve (only when Config.RecordCurve).
	Curve []cloudsim.UsagePoint
	// Schedule is the per-task Gantt trace in completion order (only
	// when Config.RecordSchedule).
	Schedule []TaskSpan
}

// TaskSpan is one task's compute window.
type TaskSpan struct {
	Task   dag.TaskID
	Name   string
	Type   string
	Start  units.Duration
	Finish units.Duration
}

// GBHoursStorage returns the storage integral in GB-hours, the unit of
// Figs. 7-9.
func (m Metrics) GBHoursStorage() float64 { return units.GBHours(m.StorageByteSeconds) }

// utilization guards the CPUSeconds / capacity-proc-seconds division: a
// run that accumulated no available capacity (zero width or an all-idle
// window) reports 0 utilization, never NaN or Inf -- either would poison
// the JSON encoding of every result document downstream (encoding/json
// rejects non-finite floats).
func utilization(cpuSeconds, capacityProcSeconds float64) float64 {
	if capacityProcSeconds <= 0 {
		return 0
	}
	return cpuSeconds / capacityProcSeconds
}
