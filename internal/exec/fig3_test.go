package exec

import (
	"testing"

	"repro/internal/dag"
	"repro/internal/datamgmt"
	"repro/internal/units"
)

// fig3 reproduces the paper's Figure 3 workflow (seven tasks, files a-h,
// task 6 taking three inputs) with distinct power-of-two sizes so every
// transfer total identifies exactly which files moved.
func fig3(t *testing.T) *dag.Workflow {
	t.Helper()
	w := dag.New("fig3")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	sizes := map[string]units.Bytes{
		"a": 1, "b": 2, "c": 4, "d": 8, "e": 16, "f": 32, "h": 64, "g": 128,
	}
	for _, name := range []string{"a", "b", "c", "d", "e", "f", "h", "g"} {
		_, err := w.AddFile(name, sizes[name], name == "g" || name == "h")
		must(err)
	}
	add := func(name string, rt units.Duration, in, out []string) {
		t.Helper()
		_, err := w.AddTask(name, "r", rt, in, out)
		must(err)
	}
	add("t0", 10, []string{"a"}, []string{"b"})
	add("t1", 10, []string{"b"}, []string{"c"})
	add("t2", 10, []string{"b"}, []string{"d"})
	add("t3", 10, []string{"c"}, []string{"e"})
	add("t4", 10, []string{"c"}, []string{"f"})
	add("t5", 10, []string{"d"}, []string{"h"})
	add("t6", 10, []string{"e", "f", "h"}, []string{"g"})
	must(w.Finalize())
	return w
}

func TestFig3RegularTransfers(t *testing.T) {
	// Regular mode: only the external input a comes in; only the net
	// outputs g and h go out ("files g and h which are the net output of
	// the workflow are staged out").
	w := fig3(t)
	m, err := Run(w, Config{Mode: datamgmt.Regular, Processors: 2, Bandwidth: units.Bandwidth(1)})
	if err != nil {
		t.Fatal(err)
	}
	if m.BytesIn != 1 {
		t.Errorf("BytesIn = %d, want 1 (file a)", m.BytesIn)
	}
	if m.BytesOut != 64+128 {
		t.Errorf("BytesOut = %d, want 192 (files g+h)", m.BytesOut)
	}
}

func TestFig3RemoteIORetransfers(t *testing.T) {
	// Remote I/O: "if the same file is being used by more than one job
	// ... the file may be transferred in multiple times."  File b feeds
	// tasks 1 and 2 (2x), c feeds 3 and 4 (2x); h is transferred in for
	// task 6 even though task 5 produced it, because it was deleted.
	//
	// In: a(1) + b(2)x2 + c(4)x2 + d(8) + e(16) + f(32) + h(64)
	//   = 1 + 4 + 8 + 8 + 16 + 32 + 64 = 133.
	// Out: every task output: b+c+d+e+f+h+g = 2+4+8+16+32+64+128 = 254
	//   ("intermediate data products ... also need to be staged-out").
	w := fig3(t)
	m, err := Run(w, Config{Mode: datamgmt.RemoteIO, Processors: 4, Bandwidth: units.Bandwidth(1)})
	if err != nil {
		t.Fatal(err)
	}
	if m.BytesIn != 133 {
		t.Errorf("BytesIn = %d, want 133", m.BytesIn)
	}
	if m.BytesOut != 254 {
		t.Errorf("BytesOut = %d, want 254", m.BytesOut)
	}
}

func TestFig3CleanupLifetimes(t *testing.T) {
	// Cleanup mode on 1 processor with negligible transfer time: verify
	// the §3 narrative -- a dies after task 0, b only after its last
	// consumer (task 2) -- by checking the exact storage integral.
	w := fig3(t)
	m, err := Run(w, Config{
		Mode: datamgmt.Cleanup, Processors: 1,
		Bandwidth:   units.Bandwidth(1e12),
		RecordCurve: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// With ~instant transfers, tasks run back to back: t0 [0,10],
	// t1 [10,20], t2 [20,30], t3 [30,40], t4 [40,50], t5 [50,60],
	// t6 [60,70].  Lifetimes (cleanup): a [0,10] -> 10; b [10,30] -> 40;
	// c [20,50] -> 120; d [30,60] -> 240; e [40,70] -> 480;
	// f [50,70] -> 640; h (output) [60,70] -> 640; g (output) [70,70+e]
	// ~0.  Total ~ 2170 byte-seconds.
	want := 10.0*1 + 20*2 + 30*4 + 30*8 + 30*16 + 20*32 + 10*64
	got := m.StorageByteSeconds
	if got < want-1 || got > want+2 {
		t.Errorf("StorageByteSeconds = %v, want ~%v", got, want)
	}
}
