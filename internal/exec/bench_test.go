package exec

import (
	"testing"

	"repro/internal/dag"
	"repro/internal/datamgmt"
	"repro/internal/montage"
)

func benchWorkflow(b *testing.B, spec montage.Spec) *dag.Workflow {
	b.Helper()
	w, err := montage.Generate(spec)
	if err != nil {
		b.Fatal(err)
	}
	return w
}

func benchRun(b *testing.B, spec montage.Spec, cfg Config) {
	b.Helper()
	w := benchWorkflow(b, spec)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(w, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunRegular1Deg measures one full 203-task simulation.
func BenchmarkRunRegular1Deg(b *testing.B) {
	benchRun(b, montage.OneDegree(), Config{Mode: datamgmt.Regular})
}

// BenchmarkRunCleanup1Deg adds the cleanup analyzer to the hot path.
func BenchmarkRunCleanup1Deg(b *testing.B) {
	benchRun(b, montage.OneDegree(), Config{Mode: datamgmt.Cleanup})
}

// BenchmarkRunRemoteIO1Deg exercises per-task staging (most events).
func BenchmarkRunRemoteIO1Deg(b *testing.B) {
	benchRun(b, montage.OneDegree(), Config{Mode: datamgmt.RemoteIO})
}

// BenchmarkRunRegular4Deg measures the 3,027-task simulation.
func BenchmarkRunRegular4Deg(b *testing.B) {
	benchRun(b, montage.FourDegree(), Config{Mode: datamgmt.Regular})
}
