package exec

// Data-staging event flows: the resident models (Regular/Cleanup) stage
// everything in, run, and stage out once; the Remote I/O model streams
// every task's inputs and outputs individually.

import (
	"fmt"
	"sort"

	"repro/internal/cloudsim"
	"repro/internal/dag"
	"repro/internal/obs"
	"repro/internal/units"
)

// ---- Regular / Cleanup ----

func (r *runner) startResident() {
	// Phase 1: stage in every external input, serialized on the link in
	// name order.  Each file becomes resident on arrival.
	start := r.avail(r.eng.Now())
	stageInEnd := start
	for _, f := range r.wf.ExternalInputs() {
		f := f
		s, end, err := r.reserveAvail(start, f.Size, cloudsim.In)
		if err != nil {
			r.fail(err)
			return
		}
		if r.trace != nil {
			r.trace.Record(s, obs.Event{
				Kind: obs.KindTransfer, Task: -1, Name: f.Name,
				Bytes: int64(f.Size), Dir: "in", End: end.Seconds(),
			})
		}
		r.eng.Schedule(end, func(now units.Duration) {
			if err := r.storage.Put(now, f.Name, f.Size); err != nil {
				r.fail(err)
			}
		})
		if end > stageInEnd {
			stageInEnd = end
		}
	}
	// Phase 2 begins when all inputs are resident.
	r.eng.Schedule(stageInEnd, func(now units.Duration) {
		for _, t := range r.wf.Tasks() {
			if r.depsLeft[t.ID] == 0 {
				r.enqueueReady(t.ID)
			}
		}
		r.dispatch(now)
	})
}

func (r *runner) finishResident(now units.Duration) {
	r.execEnd = now
	r.capacityAtExecEnd = r.cluster.CapacityProcSeconds(now)
	r.reliableCapAtExecEnd = r.cluster.ReliableCapacityProcSeconds(now)
	// Phase 3: stage out the declared outputs in name order, then delete
	// everything still resident ("after that ... all the files are
	// deleted from the storage resource").
	var lastEnd units.Duration = now
	for _, f := range r.wf.OutputFiles() {
		s, end, err := r.reserveAvail(now, f.Size, cloudsim.Out)
		if err != nil {
			r.fail(err)
			return
		}
		if r.trace != nil {
			r.trace.Record(s, obs.Event{
				Kind: obs.KindTransfer, Task: -1, Name: f.Name,
				Bytes: int64(f.Size), Dir: "out", End: end.Seconds(),
			})
		}
		if end > lastEnd {
			lastEnd = end
		}
	}
	r.eng.Schedule(lastEnd, func(t units.Duration) {
		for _, f := range r.wf.Files() {
			if r.storage.Has(f.Name) {
				if err := r.storage.Delete(t, f.Name); err != nil {
					r.fail(err)
					return
				}
			}
		}
		r.makespan = t
	})
}

// ---- Remote I/O ----

// remoteKey namespaces a file per task: in remote I/O two concurrent
// tasks each hold their own staged copy of a shared input.
func remoteKey(id dag.TaskID, file string) string {
	return fmt.Sprintf("t%d/%s", id, file)
}

func (r *runner) startRemoteIO() {
	for _, t := range r.wf.Tasks() {
		if r.depsLeft[t.ID] == 0 {
			r.beginStaging(t.ID)
		}
	}
}

// beginStaging starts the input transfers of a remote-I/O task.  The
// task fetches its files over its own connection, one after another, at
// full bandwidth; concurrent tasks do not contend (each remote-I/O task
// is an independent stream in the paper's model).
func (r *runner) beginStaging(id dag.TaskID) {
	t := r.wf.Task(id)
	r.phase[id] = phaseStaging
	cur := r.eng.Now()
	inputs := append([]string(nil), t.Inputs...)
	sort.Strings(inputs)
	for _, name := range inputs {
		f := r.wf.File(name)
		key := remoteKey(id, name)
		cur = r.avail(cur)
		s, end, err := r.link.Record(cur, f.Size, cloudsim.In)
		if err != nil {
			r.fail(err)
			return
		}
		if r.trace != nil {
			r.trace.Record(s, obs.Event{
				Kind: obs.KindTransfer, Task: int(id), Name: name,
				Bytes: int64(f.Size), Dir: "in", End: end.Seconds(),
			})
		}
		size := f.Size
		r.eng.Schedule(end, func(at units.Duration) {
			if err := r.storage.Put(at, key, size); err != nil {
				r.fail(err)
			}
		})
		cur = end
	}
	r.eng.Schedule(cur, func(at units.Duration) {
		r.phase[id] = phaseReady
		r.enqueueReady(id)
		r.dispatch(at)
	})
}

// finishRemoteTask stages out every output of a completed remote-I/O
// task, then deletes the task's staged inputs and outputs.
func (r *runner) finishRemoteTask(id dag.TaskID, now units.Duration) {
	t := r.wf.Task(id)
	// Outputs become resident at completion...
	for _, name := range t.Outputs {
		f := r.wf.File(name)
		if err := r.storage.Put(now, remoteKey(id, name), f.Size); err != nil {
			r.fail(err)
			return
		}
	}
	// ...are transferred to the user over the task's own stream...
	outputs := append([]string(nil), t.Outputs...)
	sort.Strings(outputs)
	cur := now
	for _, name := range outputs {
		f := r.wf.File(name)
		cur = r.avail(cur)
		s, end, err := r.link.Record(cur, f.Size, cloudsim.Out)
		if err != nil {
			r.fail(err)
			return
		}
		if r.trace != nil {
			r.trace.Record(s, obs.Event{
				Kind: obs.KindTransfer, Task: int(id), Name: name,
				Bytes: int64(f.Size), Dir: "out", End: end.Seconds(),
			})
		}
		cur = end
	}
	// ...and then inputs and outputs are deleted from the resource.
	r.eng.Schedule(cur, func(at units.Duration) {
		for _, name := range t.Inputs {
			if err := r.storage.Delete(at, remoteKey(id, name)); err != nil {
				r.fail(err)
				return
			}
		}
		for _, name := range t.Outputs {
			if err := r.storage.Delete(at, remoteKey(id, name)); err != nil {
				r.fail(err)
				return
			}
		}
		r.stagedOut++
		r.makespan = at
		// Children depend on the data reaching the user.
		for _, c := range t.Children() {
			r.depsLeft[c]--
			if r.depsLeft[c] == 0 {
				r.beginStaging(c)
			}
		}
		if r.stagedOut == r.wf.NumTasks() {
			r.execEnd = at
			r.capacityAtExecEnd = r.cluster.CapacityProcSeconds(at)
			r.reliableCapAtExecEnd = r.cluster.ReliableCapacityProcSeconds(at)
		}
	})
}
