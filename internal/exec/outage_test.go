package exec

import (
	"testing"
	"testing/quick"

	"repro/internal/datamgmt"
	"repro/internal/montage"
	"repro/internal/units"
)

func TestVMStartupShiftsRun(t *testing.T) {
	w := tiny(t)
	base, err := Run(w, Config{Mode: datamgmt.Regular, Processors: 1, Bandwidth: tinyBW})
	if err != nil {
		t.Fatal(err)
	}
	delayed, err := Run(w, Config{Mode: datamgmt.Regular, Processors: 1, Bandwidth: tinyBW, VMStartup: 100})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := delayed.ExecTime, base.ExecTime+100; got != want {
		t.Errorf("ExecTime = %v, want %v", got, want)
	}
	if got, want := delayed.Makespan, base.Makespan+100; got != want {
		t.Errorf("Makespan = %v, want %v", got, want)
	}
	// Byte volumes unchanged.
	if delayed.BytesIn != base.BytesIn || delayed.BytesOut != base.BytesOut {
		t.Error("startup changed transfer volumes")
	}
	if _, err := Run(w, Config{Mode: datamgmt.Regular, VMStartup: -1}); err == nil {
		t.Error("negative startup accepted")
	}
}

func TestOutageValidation(t *testing.T) {
	w := tiny(t)
	cases := []struct {
		name    string
		outages []Outage
	}{
		{"inverted", []Outage{{Start: 10, End: 5}}},
		{"negative", []Outage{{Start: -1, End: 5}}},
		{"overlap", []Outage{{Start: 0, End: 10}, {Start: 5, End: 20}}},
		{"unsorted", []Outage{{Start: 50, End: 60}, {Start: 0, End: 10}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Run(w, Config{Mode: datamgmt.Regular, Outages: tc.outages}); err == nil {
				t.Error("invalid outage schedule accepted")
			}
		})
	}
}

func TestOutageDelaysDispatch(t *testing.T) {
	// Baseline (see TestRegularTinyExact): stage-in ends at 10, A runs
	// [10,20], B runs [20,40], stage-out [40,60].
	// An outage [15,35) lets A (already running) finish at 20, but B may
	// not start until 35: B runs [35,55], stage-out [55,75].
	w := tiny(t)
	m, err := Run(w, Config{
		Mode: datamgmt.Regular, Processors: 1, Bandwidth: tinyBW,
		Outages: []Outage{{Start: 15, End: 35}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.ExecTime != 55 {
		t.Errorf("ExecTime = %v, want 55", m.ExecTime)
	}
	if m.Makespan != 75 {
		t.Errorf("Makespan = %v, want 75", m.Makespan)
	}
}

func TestOutageDelaysStageIn(t *testing.T) {
	// An outage covering time zero delays the bulk stage-in itself.
	w := tiny(t)
	m, err := Run(w, Config{
		Mode: datamgmt.Regular, Processors: 1, Bandwidth: tinyBW,
		Outages: []Outage{{Start: 0, End: 50}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Everything shifts by 50: exec ends 40+50, makespan 60+50.
	if m.ExecTime != 90 {
		t.Errorf("ExecTime = %v, want 90", m.ExecTime)
	}
	if m.Makespan != 110 {
		t.Errorf("Makespan = %v, want 110", m.Makespan)
	}
}

func TestOutageRemoteIO(t *testing.T) {
	// Remote I/O baseline: A stages [0,10], runs [10,20], out [20,25];
	// B stages [25,30], runs [30,50], out [50,70].
	// Outage [22,28): A's out transfer (started 20) finishes; deletion
	// and B's staging shift to 28: B stages [28,33], runs [33,53],
	// out [53,73].
	w := tiny(t)
	m, err := Run(w, Config{
		Mode: datamgmt.RemoteIO, Processors: 1, Bandwidth: tinyBW,
		Outages: []Outage{{Start: 22, End: 28}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Makespan != 73 {
		t.Errorf("Makespan = %v, want 73", m.Makespan)
	}
}

func TestOutageAfterRunIsFree(t *testing.T) {
	w := tiny(t)
	base, err := Run(w, Config{Mode: datamgmt.Regular, Processors: 1, Bandwidth: tinyBW})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Run(w, Config{
		Mode: datamgmt.Regular, Processors: 1, Bandwidth: tinyBW,
		Outages: []Outage{{Start: 10000, End: 20000}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Makespan != base.Makespan {
		t.Errorf("late outage changed makespan: %v vs %v", m.Makespan, base.Makespan)
	}
}

// Property: outages never shorten a run and never change the data moved,
// for any single window.
func TestPropOutageMonotone(t *testing.T) {
	w, err := montage.Generate(montage.OneDegree())
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(w, Config{Mode: datamgmt.Regular, Processors: 8})
	if err != nil {
		t.Fatal(err)
	}
	f := func(start uint16, length uint16) bool {
		o := Outage{
			Start: units.Duration(start),
			End:   units.Duration(start) + units.Duration(length%10000) + 1,
		}
		m, err := Run(w, Config{Mode: datamgmt.Regular, Processors: 8, Outages: []Outage{o}})
		if err != nil {
			return false
		}
		return m.Makespan >= base.Makespan &&
			m.BytesIn == base.BytesIn && m.BytesOut == base.BytesOut &&
			m.TasksRun == base.TasksRun
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestNextAvailableAdjacentWindows is the regression test for the
// back-to-back-window bug: validateOutages permits Start == prev.End, so
// escaping one window can land exactly at the start of the next; the
// scan must keep going instead of returning a time inside an outage.
func TestNextAvailableAdjacentWindows(t *testing.T) {
	adjacent := []Outage{{Start: 0, End: 10}, {Start: 10, End: 20}, {Start: 20, End: 30}}
	cases := []struct{ now, want units.Duration }{
		{0, 30}, {5, 30}, {10, 30}, {19, 30}, {29, 30}, {30, 30}, {31, 31},
	}
	for _, tc := range cases {
		if got := nextAvailable(adjacent, tc.now); got != tc.want {
			t.Errorf("nextAvailable(adjacent, %v) = %v, want %v", tc.now, got, tc.want)
		}
	}
	// A gap between windows that is itself swallowed by a later window
	// must not stop the scan early.
	gapped := []Outage{{Start: 0, End: 10}, {Start: 10, End: 20}, {Start: 25, End: 30}}
	if got := nextAvailable(gapped, 5); got != 20 {
		t.Errorf("nextAvailable(gapped, 5) = %v, want 20", got)
	}
	// End-to-end: with adjacent windows covering [0,50)+[50,100), nothing
	// may start before 100; the run must behave exactly like one [0,100)
	// outage, not dispatch into the second window.
	w := tiny(t)
	split, err := Run(w, Config{
		Mode: datamgmt.Regular, Processors: 1, Bandwidth: tinyBW,
		Outages: []Outage{{Start: 0, End: 50}, {Start: 50, End: 100}},
	})
	if err != nil {
		t.Fatal(err)
	}
	merged, err := Run(w, Config{
		Mode: datamgmt.Regular, Processors: 1, Bandwidth: tinyBW,
		Outages: []Outage{{Start: 0, End: 100}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if split.Makespan != merged.Makespan || split.ExecTime != merged.ExecTime {
		t.Errorf("adjacent windows ran (exec %v, makespan %v), merged window (exec %v, makespan %v)",
			split.ExecTime, split.Makespan, merged.ExecTime, merged.Makespan)
	}
}

func TestNextAvailable(t *testing.T) {
	outages := []Outage{{Start: 10, End: 20}, {Start: 30, End: 40}}
	cases := []struct{ now, want units.Duration }{
		{0, 0}, {9.9, 9.9}, {10, 20}, {15, 20}, {20, 20},
		{25, 25}, {30, 40}, {39, 40}, {40, 40}, {100, 100},
	}
	for _, tc := range cases {
		if got := nextAvailable(outages, tc.now); got != tc.want {
			t.Errorf("nextAvailable(%v) = %v, want %v", tc.now, got, tc.want)
		}
	}
	if got := nextAvailable(nil, 5); got != 5 {
		t.Errorf("nextAvailable(nil, 5) = %v, want 5", got)
	}
}
