package exec

import (
	"reflect"
	"testing"

	"repro/internal/dag"
	"repro/internal/datamgmt"
	"repro/internal/units"
)

// fanout builds a workflow of independent single-input tasks with the
// given runtimes; task i reads external file "in<i>" (10 bytes) and
// writes output "out<i>".  With tinyBW the stage-in phase takes one
// second per input.
func fanout(t *testing.T, runtimes ...units.Duration) *dag.Workflow {
	t.Helper()
	w := dag.New("fanout")
	for i, rt := range runtimes {
		in := []string{"in" + string(rune('0'+i))}
		out := []string{"out" + string(rune('0'+i))}
		if _, err := w.AddFile(in[0], 10, false); err != nil {
			t.Fatal(err)
		}
		if _, err := w.AddFile(out[0], 10, true); err != nil {
			t.Fatal(err)
		}
		if _, err := w.AddTask("T"+string(rune('0'+i)), "t", rt, in, out); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Finalize(); err != nil {
		t.Fatal(err)
	}
	return w
}

// TestUtilizationCapacityDenominator is the regression for the
// capacity-aware utilization fix: a mid-run reclaim must shrink the
// utilization denominator to the capacity actually available, where the
// old Processors x ExecTime formula kept billing the revoked slots as
// available.
func TestUtilizationCapacityDenominator(t *testing.T) {
	// tiny on 2 processors: stage-in [0,10], A [10,20], B [20,40], so one
	// slot is always idle.  Reclaiming it at 15 kills nothing and leaves
	// every timing untouched -- only the capacity integral changes:
	// 2*15 + 1*25 = 55 proc-s over ExecTime [0,40] instead of 80.
	m, err := Run(tiny(t), Config{
		Mode: datamgmt.Regular, Processors: 2, Bandwidth: tinyBW,
		Preemptions: []Preemption{{Reclaim: 15, Processors: 1, Restore: 100}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Preempted != 0 || m.ExecTime != 40 {
		t.Fatalf("reclaim of the idle slot changed the run: %+v", m)
	}
	if !almost(m.CapacityProcSeconds, 55) {
		t.Errorf("CapacityProcSeconds = %v, want 55", m.CapacityProcSeconds)
	}
	if !almost(m.Utilization, 30.0/55.0) {
		t.Errorf("Utilization = %v, want %v", m.Utilization, 30.0/55.0)
	}
	static := m.CPUSeconds / (float64(m.Processors) * m.ExecTime.Seconds())
	if almost(m.Utilization, static) {
		t.Errorf("Utilization %v still matches the static-pool formula %v", m.Utilization, static)
	}
}

// TestFleetPlacesCriticalPathOnReliable pins the mixed-fleet scheduler:
// the highest-upward-rank tasks claim the reliable on-demand slots, and
// a reclaim kills only the spot residents.
func TestFleetPlacesCriticalPathOnReliable(t *testing.T) {
	// Four independent tasks, runtimes 40/30/20/10 (= their upward
	// ranks), stage-in ends at 4.  On a 4-proc fleet with 2 reliable
	// slots, T0 (40) and T1 (30) run reliably; T2 and T3 are spot.
	w := fanout(t, 40, 30, 20, 10)
	m, err := Run(w, Config{
		Mode: datamgmt.Regular, Processors: 4, OnDemandProcessors: 2,
		Bandwidth: tinyBW, RecordSchedule: true,
		Preemptions: []Preemption{{Reclaim: 12, Processors: 2, Restore: 30}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.OnDemandProcessors != 2 {
		t.Errorf("OnDemandProcessors = %d, want 2", m.OnDemandProcessors)
	}
	// Both spot residents die at 12, re-running from scratch at 30.
	if m.Preempted != 2 {
		t.Errorf("Preempted = %d, want 2", m.Preempted)
	}
	if !almost(m.WastedCPUSeconds, 16) { // 8 s burned on each victim
		t.Errorf("WastedCPUSeconds = %v, want 16", m.WastedCPUSeconds)
	}
	spans := map[string][]TaskSpan{}
	for _, s := range m.Schedule {
		spans[s.Name] = append(spans[s.Name], s)
	}
	// The reliable residents run [4, 4+runtime] uninterrupted.
	if got := spans["T0"]; len(got) != 1 || got[0].Start != 4 || got[0].Finish != 44 {
		t.Errorf("T0 spans = %+v, want one [4,44]", got)
	}
	if got := spans["T1"]; len(got) != 1 || got[0].Start != 4 || got[0].Finish != 34 {
		t.Errorf("T1 spans = %+v, want one [4,34]", got)
	}
	// The spot residents show a killed attempt [4,12] and a restart at 30.
	for name, finish := range map[string]units.Duration{"T2": 50, "T3": 40} {
		got := spans[name]
		if len(got) != 2 || got[0].Start != 4 || got[0].Finish != 12 ||
			got[1].Start != 30 || got[1].Finish != finish {
			t.Errorf("%s spans = %+v, want killed [4,12] then [30,%v]", name, got, finish)
		}
	}
	// Spot CPU split: victims burned 2*8 before the kill, then 20+10 on
	// the restarts; the reliable sub-pool ran 40+30.
	if !almost(m.SpotCPUSeconds, 46) {
		t.Errorf("SpotCPUSeconds = %v, want 46", m.SpotCPUSeconds)
	}
	if !almost(m.CPUSeconds, 116) {
		t.Errorf("CPUSeconds = %v, want 116", m.CPUSeconds)
	}
	// Capacity over ExecTime [0,50]: 4 procs on [0,12), 2 on [12,30),
	// 4 on [30,50).
	if !almost(m.CapacityProcSeconds, 4*12+2*18+4*20) {
		t.Errorf("CapacityProcSeconds = %v, want 164", m.CapacityProcSeconds)
	}
	if !almost(m.Utilization, 116.0/164.0) {
		t.Errorf("Utilization = %v, want %v", m.Utilization, 116.0/164.0)
	}
}

// TestVictimOrderLatestStartFirst pins deterministic victim selection:
// within the spot pool the most recently started attempt dies first,
// regardless of task IDs or remaining work.
func TestVictimOrderLatestStartFirst(t *testing.T) {
	// T0 (10 s) feeds T2 (30 s); T1 (40 s) is independent.  On 2
	// processors: stage-in ends 2, T0 [2,12], T1 [2,42], T2 [12,42].
	w := dag.New("stagger")
	files := []struct {
		name   string
		output bool
	}{{"in0", false}, {"in1", false}, {"mid", false}, {"out1", true}, {"out2", true}}
	for _, f := range files {
		if _, err := w.AddFile(f.name, 10, f.output); err != nil {
			t.Fatal(err)
		}
	}
	mustTask := func(name string, rt units.Duration, in, out []string) {
		t.Helper()
		if _, err := w.AddTask(name, "t", rt, in, out); err != nil {
			t.Fatal(err)
		}
	}
	mustTask("T0", 10, []string{"in0"}, []string{"mid"})
	mustTask("T1", 40, []string{"in1"}, []string{"out1"})
	mustTask("T2", 30, []string{"mid"}, []string{"out2"})
	if err := w.Finalize(); err != nil {
		t.Fatal(err)
	}
	// At 17 both T1 (started 2) and T2 (started 12) are running; the
	// reclaim must kill T2, the latest-started, not the longer-running
	// T1.
	m, err := Run(w, Config{
		Mode: datamgmt.Regular, Processors: 2, Bandwidth: tinyBW, RecordSchedule: true,
		Preemptions: []Preemption{{Reclaim: 17, Processors: 1, Restore: 100}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Preempted != 1 {
		t.Fatalf("Preempted = %d, want 1", m.Preempted)
	}
	var t1, t2 []TaskSpan
	for _, s := range m.Schedule {
		switch s.Name {
		case "T1":
			t1 = append(t1, s)
		case "T2":
			t2 = append(t2, s)
		}
	}
	if len(t1) != 1 || t1[0].Finish != 42 {
		t.Errorf("T1 spans = %+v, want one uninterrupted [2,42]", t1)
	}
	// The surviving processor frees up when T1 completes at 42; the
	// killed T2 restarts there from scratch.
	if len(t2) != 2 || t2[0].Finish != 17 || t2[1].Start != 42 || t2[1].Finish != 72 {
		t.Errorf("T2 spans = %+v, want killed [12,17] then a restart [42,72]", t2)
	}
}

// TestReclaimVictimRestartsOnIdleReliableSlot is the regression for the
// missing dispatch after a reclaim: a killed spot task must restart
// immediately on an idle reliable processor instead of waiting for the
// next unrelated completion or restore event.
func TestReclaimVictimRestartsOnIdleReliableSlot(t *testing.T) {
	// A(10) fans out to B(50), C(50), D(90), D2(90); E(100) needs B and
	// C.  Upward ranks: A 160, B/C 150, E 100, D/D2 90.  On 4 procs with
	// 2 reliable: A runs reliably [1,11]; then B,C take the reliable
	// slots and D,D2 the spot ones [11,101].  B,C finish at 61, E takes
	// one reliable slot [61,161] -- the other goes idle.
	w := dag.New("idle-reliable")
	addFile := func(name string, output bool) {
		t.Helper()
		if _, err := w.AddFile(name, 10, output); err != nil {
			t.Fatal(err)
		}
	}
	addFile("inA", false)
	for _, f := range []string{"aB", "aC", "aD", "aD2", "fB", "fC"} {
		addFile(f, false)
	}
	for _, f := range []string{"outD", "outD2", "outE"} {
		addFile(f, true)
	}
	addTask := func(name string, rt units.Duration, in, out []string) {
		t.Helper()
		if _, err := w.AddTask(name, "t", rt, in, out); err != nil {
			t.Fatal(err)
		}
	}
	addTask("A", 10, []string{"inA"}, []string{"aB", "aC", "aD", "aD2"})
	addTask("B", 50, []string{"aB"}, []string{"fB"})
	addTask("C", 50, []string{"aC"}, []string{"fC"})
	addTask("D", 90, []string{"aD"}, []string{"outD"})
	addTask("D2", 90, []string{"aD2"}, []string{"outD2"})
	addTask("E", 100, []string{"fB", "fC"}, []string{"outE"})
	if err := w.Finalize(); err != nil {
		t.Fatal(err)
	}
	// The reclaim at 70 kills D2 (latest start, ID descending) while a
	// reliable slot has been idle since 61: D2 must restart there at 70,
	// not at D's completion (101) or the restore (670).
	m, err := Run(w, Config{
		Mode: datamgmt.Regular, Processors: 4, OnDemandProcessors: 2,
		Bandwidth: tinyBW, RecordSchedule: true,
		Preemptions: []Preemption{{Reclaim: 70, Processors: 1, Restore: 670}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Preempted != 1 {
		t.Fatalf("Preempted = %d, want 1", m.Preempted)
	}
	var d2 []TaskSpan
	for _, s := range m.Schedule {
		if s.Name == "D2" {
			d2 = append(d2, s)
		}
	}
	if len(d2) != 2 || d2[0].Finish != 70 || d2[1].Start != 70 || d2[1].Finish != 160 {
		t.Errorf("D2 spans = %+v, want killed [11,70] then an immediate restart [70,160]", d2)
	}
	if m.ExecTime != 161 { // E [61,161] is the last computation
		t.Errorf("ExecTime = %v, want 161", m.ExecTime)
	}
}

// TestHeterogeneousWarningsSimultaneousVictims exercises two reclaims
// firing at the same instant with different warning leads: the victim
// with a warning shorter than the checkpoint overhead falls back to its
// last periodic checkpoint, while the longer-warned one cuts an
// emergency checkpoint at notice time.
func TestHeterogeneousWarningsSimultaneousVictims(t *testing.T) {
	// Two independent 20 s tasks on 2 processors, checkpointing every
	// 5 s of work at 1 s overhead: stage-in ends 2, both attempts run
	// [2,25] (20 work + 3 checkpoints).  Both reclaims land at 12, 10 s
	// in, past one full 6 s cycle (5 s banked).
	w := fanout(t, 20, 20)
	rec := Recovery{Checkpoint: true, Interval: 5, Overhead: 1}
	m, err := Run(w, Config{
		Mode: datamgmt.Regular, Processors: 2, Bandwidth: tinyBW, Recovery: rec,
		Preemptions: []Preemption{
			// The 0.5 s warning cannot fit the 1 s checkpoint write; the
			// 2 s warning banks the 7 s of useful work done by notice
			// time (one cycle plus 2 s of the next).
			{Reclaim: 12, Processors: 1, Warning: 0.5, Restore: 40},
			{Reclaim: 12, Processors: 1, Warning: 2, Restore: 40},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Preempted != 2 {
		t.Fatalf("Preempted = %d, want 2", m.Preempted)
	}
	// Victim order is ID-descending on equal starts: the first (short)
	// warning kills T1 (5 s banked, 5 s wasted), the second kills T0
	// with the emergency checkpoint (7 s banked, 3 s wasted).
	if !almost(m.WastedCPUSeconds, 8) {
		t.Errorf("WastedCPUSeconds = %v, want 8", m.WastedCPUSeconds)
	}
	// Checkpoints: T1 one periodic; T0 one periodic plus the emergency
	// one; then the restarts (13 s and 15 s of work) write two each.
	if m.Checkpoints != 7 {
		t.Errorf("Checkpoints = %d, want 7", m.Checkpoints)
	}
	// Restarts at 40: T0 has 13 s + 2 checkpoints = [40,55], T1 has
	// 15 s + 2 = [40,57].
	if m.ExecTime != 57 {
		t.Errorf("ExecTime = %v, want 57", m.ExecTime)
	}
}

func TestFleetValidation(t *testing.T) {
	w := tiny(t)
	cases := map[string]Config{
		"negative on-demand":   {OnDemandProcessors: -1},
		"on-demand over fleet": {Processors: 2, OnDemandProcessors: 3},
		"no spot capacity": {Processors: 2, OnDemandProcessors: 2,
			Preemptions: []Preemption{{Reclaim: 5, Processors: 1, Restore: 10}}},
	}
	for name, cfg := range cases {
		t.Run(name, func(t *testing.T) {
			cfg.Mode = datamgmt.Regular
			if cfg.Processors == 0 {
				cfg.Processors = 1
			}
			cfg.Bandwidth = tinyBW
			if _, err := Run(w, cfg); err == nil {
				t.Error("invalid fleet config accepted")
			}
		})
	}
	// A permanent whole-spot-pool revocation is fine when a reliable
	// floor remains to finish the workflow.
	m, err := Run(w, Config{
		Mode: datamgmt.Regular, Processors: 2, OnDemandProcessors: 1, Bandwidth: tinyBW,
		Preemptions: []Preemption{{Reclaim: 5, Processors: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.TasksRun != 2 {
		t.Errorf("TasksRun = %d, want 2", m.TasksRun)
	}
}

func TestSpotScheduleInstances(t *testing.T) {
	const (
		horizon = units.Duration(24 * 3600)
		warning = units.Duration(120)
		down    = units.Duration(900)
	)
	a, err := SpotScheduleInstances(horizon, 8, 0.5, warning, down, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SpotScheduleInstances(horizon, 8, 0.5, warning, down, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed sampled different per-instance schedules")
	}
	if len(a) < 8 {
		t.Fatalf("only %d events over 24 h at 0.5/h on 8 instances", len(a))
	}
	if err := validatePreemptions(a, 9, 0); err != nil {
		t.Errorf("sampled schedule invalid: %v", err)
	}
	heterogeneous := false
	for i, p := range a {
		if p.Processors != 1 {
			t.Fatalf("event %d reclaims %d processors, want per-instance 1", i, p.Processors)
		}
		if p.Restore != p.Reclaim+down {
			t.Errorf("event %d restore = %v, want reclaim+%v", i, p.Restore, down)
		}
		if p.Warning > warning || (p.Warning < warning/2 && p.Warning != p.Reclaim) {
			t.Errorf("event %d warning %v outside [%v,%v]", i, p.Warning, warning/2, warning)
		}
		if i > 0 && p.Warning != a[0].Warning {
			heterogeneous = true
		}
	}
	if !heterogeneous {
		t.Error("all sampled warnings identical; heterogeneity lost")
	}
	c, err := SpotScheduleInstances(horizon, 8, 0.5, warning, down, 43)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds sampled identical schedules")
	}
	if empty, err := SpotScheduleInstances(3600, 8, 0, warning, down, 1); err != nil || empty != nil {
		t.Errorf("zero rate = (%v, %v), want empty", empty, err)
	}
	if _, err := SpotScheduleInstances(0, 8, 1, 0, 60, 1); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := SpotScheduleInstances(3600, 0, 1, 0, 60, 1); err == nil {
		t.Error("zero procs accepted")
	}
}
