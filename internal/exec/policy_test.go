package exec

import (
	"testing"

	"repro/internal/dag"
	"repro/internal/datamgmt"
	"repro/internal/montage"
	"repro/internal/units"
)

// forkJoin builds a DAG with 4 independent tasks of runtimes 9,7,5,3
// (in that ID order) feeding a join task, so dispatch order on 2
// processors decides the makespan.
func forkJoin(t *testing.T) *dag.Workflow {
	t.Helper()
	w := dag.New("forkjoin")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	_, err := w.AddFile("in", 0, false)
	must(err)
	runtimes := []units.Duration{3, 9, 5, 7} // IDs 0..3
	for i, rt := range runtimes {
		name := string(rune('a' + i))
		_, err := w.AddFile(name, 0, false)
		must(err)
		_, err = w.AddTask("t"+name, "r", rt, []string{"in"}, []string{name})
		must(err)
	}
	_, err = w.AddFile("out", 0, true)
	must(err)
	_, err = w.AddTask("join", "r", 1, []string{"a", "b", "c", "d"}, []string{"out"})
	must(err)
	must(w.Finalize())
	return w
}

func policyExec(t *testing.T, w *dag.Workflow, pol Policy) units.Duration {
	t.Helper()
	m, err := Run(w, Config{
		Mode: datamgmt.Regular, Processors: 2,
		Bandwidth: units.Bandwidth(1e12), // transfers negligible
		Policy:    pol,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m.ExecTime
}

func TestPolicyOrderingForkJoin(t *testing.T) {
	w := forkJoin(t)
	// FIFO by ID on 2 procs: start 3,9; at t=3 start 5; at t=8 start 7;
	// finishes max(9, 8(5 done), 15) = 15; join at 16.
	if got := policyExec(t, w, FIFO); got != 16 {
		t.Errorf("FIFO exec = %v, want 16", got)
	}
	// LPT: start 9,7; t=7 -> 5; t=9 -> 3; finish max(9,12) = 12; join 13.
	if got := policyExec(t, w, LongestFirst); got != 13 {
		t.Errorf("LPT exec = %v, want 13", got)
	}
	// SPT: start 3,5; t=3 -> 7; t=5 -> 9; finish max(10,14) = 14; join 15.
	if got := policyExec(t, w, ShortestFirst); got != 15 {
		t.Errorf("SPT exec = %v, want 15", got)
	}
}

func TestPolicyNames(t *testing.T) {
	if FIFO.String() != "fifo" || LongestFirst.String() != "longest-first" ||
		ShortestFirst.String() != "shortest-first" {
		t.Error("policy names wrong")
	}
}

func TestPolicyValidation(t *testing.T) {
	w := forkJoin(t)
	if _, err := Run(w, Config{Mode: datamgmt.Regular, Policy: Policy(9)}); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestPolicyInvariantMetrics(t *testing.T) {
	// Policies reorder compute but never change data movement, CPU
	// consumption, or task counts.
	w, err := montage.Generate(montage.OneDegree())
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(w, Config{Mode: datamgmt.Regular, Processors: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range []Policy{LongestFirst, ShortestFirst} {
		m, err := Run(w, Config{Mode: datamgmt.Regular, Processors: 8, Policy: pol})
		if err != nil {
			t.Fatal(err)
		}
		if m.BytesIn != base.BytesIn || m.BytesOut != base.BytesOut {
			t.Errorf("%v changed transfer volumes", pol)
		}
		if m.CPUSeconds != base.CPUSeconds {
			t.Errorf("%v changed CPU seconds", pol)
		}
		if m.TasksRun != base.TasksRun {
			t.Errorf("%v changed task count", pol)
		}
	}
}
