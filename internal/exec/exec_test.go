package exec

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/dag"
	"repro/internal/datamgmt"
	"repro/internal/montage"
	"repro/internal/units"
)

// tiny builds a 2-task chain with sizes chosen for exact arithmetic at a
// 10 B/s link:
//
//	in1 (100 B, external) -> A (10 s) -> mid (50 B) -> B (20 s) -> out (200 B, output)
func tiny(t *testing.T) *dag.Workflow {
	t.Helper()
	w := dag.New("tiny")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	_, err := w.AddFile("in1", 100, false)
	must(err)
	_, err = w.AddFile("mid", 50, false)
	must(err)
	_, err = w.AddFile("out", 200, true)
	must(err)
	_, err = w.AddTask("A", "r", 10, []string{"in1"}, []string{"mid"})
	must(err)
	_, err = w.AddTask("B", "r", 20, []string{"mid"}, []string{"out"})
	must(err)
	must(w.Finalize())
	return w
}

const tinyBW = units.Bandwidth(10) // 10 B/s

func almost(a, b float64) bool { return math.Abs(a-b) <= 1e-9*math.Max(1, math.Abs(b)) }

func TestRegularTinyExact(t *testing.T) {
	m, err := Run(tiny(t), Config{Mode: datamgmt.Regular, Processors: 1, Bandwidth: tinyBW, RecordCurve: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.ExecTime != 40 {
		t.Errorf("ExecTime = %v, want 40", m.ExecTime)
	}
	if m.Makespan != 60 {
		t.Errorf("Makespan = %v, want 60", m.Makespan)
	}
	if m.BytesIn != 100 || m.BytesOut != 200 {
		t.Errorf("bytes in/out = %d/%d, want 100/200", m.BytesIn, m.BytesOut)
	}
	// in1 resident [10,60], mid [20,60], out [40,60]:
	// 50*100 + 40*50 + 20*200 = 11000 byte-seconds.
	if !almost(m.StorageByteSeconds, 11000) {
		t.Errorf("StorageByteSeconds = %v, want 11000", m.StorageByteSeconds)
	}
	if m.CPUSeconds != 30 {
		t.Errorf("CPUSeconds = %v, want 30", m.CPUSeconds)
	}
	if m.PeakStorage != 350 {
		t.Errorf("PeakStorage = %d, want 350", m.PeakStorage)
	}
	if m.TasksRun != 2 {
		t.Errorf("TasksRun = %d, want 2", m.TasksRun)
	}
	// Utilization = 30 / (1 * 40).
	if !almost(m.Utilization, 0.75) {
		t.Errorf("Utilization = %v, want 0.75", m.Utilization)
	}
	// Everything must be deleted at the end.
	last := m.Curve[len(m.Curve)-1]
	if last.Bytes != 0 {
		t.Errorf("storage not empty at end: %d bytes", last.Bytes)
	}
}

func TestCleanupTinyExact(t *testing.T) {
	m, err := Run(tiny(t), Config{Mode: datamgmt.Cleanup, Processors: 1, Bandwidth: tinyBW})
	if err != nil {
		t.Fatal(err)
	}
	// in1 resident [10,20], mid [20,40], out [40,60]:
	// 10*100 + 20*50 + 20*200 = 6000 byte-seconds.
	if !almost(m.StorageByteSeconds, 6000) {
		t.Errorf("StorageByteSeconds = %v, want 6000", m.StorageByteSeconds)
	}
	// Transfers identical to Regular (the paper: "the amount of data
	// transfer in the Regular and the Cleanup mode are the same").
	if m.BytesIn != 100 || m.BytesOut != 200 {
		t.Errorf("bytes in/out = %d/%d, want 100/200", m.BytesIn, m.BytesOut)
	}
	if m.ExecTime != 40 || m.Makespan != 60 {
		t.Errorf("times = %v/%v, want 40/60", m.ExecTime, m.Makespan)
	}
}

func TestRemoteIOTinyExact(t *testing.T) {
	m, err := Run(tiny(t), Config{Mode: datamgmt.RemoteIO, Processors: 1, Bandwidth: tinyBW, RecordCurve: true})
	if err != nil {
		t.Fatal(err)
	}
	// A: stage in1 [0,10], compute [10,20], stage out mid [20,25].
	// B: stage mid [25,30], compute [30,50], stage out out [50,70].
	if m.Makespan != 70 {
		t.Errorf("Makespan = %v, want 70", m.Makespan)
	}
	if m.ExecTime != 70 {
		t.Errorf("ExecTime = %v, want 70", m.ExecTime)
	}
	// Re-transfers: in = 100 + 50, out = 50 + 200.
	if m.BytesIn != 150 || m.BytesOut != 250 {
		t.Errorf("bytes in/out = %d/%d, want 150/250", m.BytesIn, m.BytesOut)
	}
	// t0/in1 [10,25]*100 + t0/mid [20,25]*50 + t1/mid [30,70]*50 +
	// t1/out [50,70]*200 = 1500+250+2000+4000 = 7750.
	if !almost(m.StorageByteSeconds, 7750) {
		t.Errorf("StorageByteSeconds = %v, want 7750", m.StorageByteSeconds)
	}
	last := m.Curve[len(m.Curve)-1]
	if last.Bytes != 0 {
		t.Errorf("storage not empty at end: %d bytes", last.Bytes)
	}
}

func TestMoreProcessorsNeverSlower(t *testing.T) {
	w, err := montage.Generate(montage.OneDegree())
	if err != nil {
		t.Fatal(err)
	}
	prev := units.Duration(math.Inf(1))
	for _, p := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		m, err := Run(w, Config{Mode: datamgmt.Regular, Processors: p})
		if err != nil {
			t.Fatal(err)
		}
		if m.ExecTime > prev {
			t.Errorf("%d processors slower than fewer: %v > %v", p, m.ExecTime, prev)
		}
		prev = m.ExecTime
	}
}

func TestModeInvariantsOnMontage(t *testing.T) {
	// The qualitative orderings of Figs. 7-9.
	w, err := montage.Generate(montage.OneDegree())
	if err != nil {
		t.Fatal(err)
	}
	results := make(map[datamgmt.Mode]Metrics)
	for _, mode := range datamgmt.Modes() {
		m, err := Run(w, Config{Mode: mode})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		results[mode] = m
	}
	rem, reg, cln := results[datamgmt.RemoteIO], results[datamgmt.Regular], results[datamgmt.Cleanup]

	// Storage: regular is the most expensive mode (Fig. 7 top), and both
	// cleanup and remote I/O beat it.  (The paper's remote < cleanup
	// ordering does not reproduce under our synthetic profile at full
	// parallelism; see EXPERIMENTS.md.)
	if !(cln.StorageByteSeconds < reg.StorageByteSeconds) {
		t.Errorf("storage: cleanup %v not < regular %v", cln.StorageByteSeconds, reg.StorageByteSeconds)
	}
	if !(rem.StorageByteSeconds < reg.StorageByteSeconds) {
		t.Errorf("storage: remote %v not < regular %v", rem.StorageByteSeconds, reg.StorageByteSeconds)
	}
	// Transfers: remote I/O moves the most data both ways; regular and
	// cleanup move the same (Fig. 7 middle).
	if !(rem.BytesIn > reg.BytesIn) {
		t.Errorf("bytes in: remote %d not > regular %d", rem.BytesIn, reg.BytesIn)
	}
	if !(rem.BytesOut > reg.BytesOut) {
		t.Errorf("bytes out: remote %d not > regular %d", rem.BytesOut, reg.BytesOut)
	}
	if reg.BytesIn != cln.BytesIn || reg.BytesOut != cln.BytesOut {
		t.Errorf("regular/cleanup transfer mismatch: %d/%d vs %d/%d",
			reg.BytesIn, reg.BytesOut, cln.BytesIn, cln.BytesOut)
	}
	// Regular/cleanup stage in exactly the external inputs and stage out
	// exactly the declared outputs.
	if reg.BytesIn != w.InputBytes() {
		t.Errorf("regular BytesIn = %d, want %d", reg.BytesIn, w.InputBytes())
	}
	if reg.BytesOut != w.OutputBytes() {
		t.Errorf("regular BytesOut = %d, want %d", reg.BytesOut, w.OutputBytes())
	}
	// CPU bill is mode-invariant (Fig. 10 discussion).
	if rem.CPUSeconds != reg.CPUSeconds || reg.CPUSeconds != cln.CPUSeconds {
		t.Error("CPUSeconds varies across modes")
	}
}

func TestDeterminism(t *testing.T) {
	w, err := montage.Generate(montage.OneDegree())
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range datamgmt.Modes() {
		a, err := Run(w, Config{Mode: mode, Processors: 8})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(w, Config{Mode: mode, Processors: 8})
		if err != nil {
			t.Fatal(err)
		}
		a.Curve, b.Curve = nil, nil
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%v: two identical runs differ:\n%+v\n%+v", mode, a, b)
		}
	}
}

func TestAllPresetsAllModesComplete(t *testing.T) {
	if testing.Short() {
		t.Skip("full preset sweep is slow")
	}
	for _, spec := range montage.Presets() {
		w, err := montage.Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range datamgmt.Modes() {
			m, err := Run(w, Config{Mode: mode})
			if err != nil {
				t.Fatalf("%s/%v: %v", spec.Name, mode, err)
			}
			if m.TasksRun != spec.TaskCount() {
				t.Errorf("%s/%v: ran %d tasks, want %d", spec.Name, mode, m.TasksRun, spec.TaskCount())
			}
			if m.Utilization < 0 || m.Utilization > 1+1e-9 {
				t.Errorf("%s/%v: utilization %v outside [0,1]", spec.Name, mode, m.Utilization)
			}
			if m.Makespan < m.ExecTime {
				t.Errorf("%s/%v: makespan %v < exec time %v", spec.Name, mode, m.Makespan, m.ExecTime)
			}
		}
	}
}

func TestConfigValidation(t *testing.T) {
	w := tiny(t)
	if _, err := Run(w, Config{Mode: datamgmt.Mode(9)}); err == nil {
		t.Error("bogus mode accepted")
	}
	if _, err := Run(w, Config{Mode: datamgmt.Regular, Processors: -1}); err == nil {
		t.Error("negative processors accepted")
	}
	unfinished := dag.New("x")
	if _, err := Run(unfinished, Config{Mode: datamgmt.Regular}); err == nil {
		t.Error("unfinalized workflow accepted")
	}
}

func TestDefaultProcessorsIsMaxParallelism(t *testing.T) {
	w, err := montage.Generate(montage.OneDegree())
	if err != nil {
		t.Fatal(err)
	}
	m, err := Run(w, Config{Mode: datamgmt.Regular})
	if err != nil {
		t.Fatal(err)
	}
	if m.Processors != w.MaxParallelism() {
		t.Errorf("Processors = %d, want %d", m.Processors, w.MaxParallelism())
	}
}

func TestOneDegreeAnchors(t *testing.T) {
	// Fig. 4 anchors: 1 processor ~5.5 h, 128 processors ~18 min.
	w, err := montage.Generate(montage.OneDegree())
	if err != nil {
		t.Fatal(err)
	}
	m1, err := Run(w, Config{Mode: datamgmt.Regular, Processors: 1})
	if err != nil {
		t.Fatal(err)
	}
	if h := m1.ExecTime.Hours(); h < 5.0 || h > 6.2 {
		t.Errorf("1-proc exec time = %v h, want ~5.5 h", h)
	}
	m128, err := Run(w, Config{Mode: datamgmt.Regular, Processors: 128})
	if err != nil {
		t.Fatal(err)
	}
	if min := m128.ExecTime.Seconds() / 60; min < 10 || min > 30 {
		t.Errorf("128-proc exec time = %v min, want ~18 min", min)
	}
}
