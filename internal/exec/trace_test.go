package exec

// Flight-recorder contract tests: tracing is a pure observer (traced
// metrics byte-identical to untraced) and the timeline itself is
// deterministic across repeated runs of the same configuration.

import (
	"encoding/json"
	"testing"

	"repro/internal/datamgmt"
	"repro/internal/obs"
)

// tracedConfig is a preemption-heavy tiny run: one reclaim mid-task
// with checkpointing on, so the timeline must contain every event kind
// of the recovery path.
func tracedConfig(rec *obs.Recorder) Config {
	return Config{
		Mode: datamgmt.Regular, Processors: 1, Bandwidth: tinyBW,
		Recovery:    Recovery{Checkpoint: true, Interval: 5, Overhead: 1},
		Preemptions: []Preemption{{Reclaim: 34, Processors: 1, Restore: 40}},
		Recorder:    rec,
	}
}

func TestTraceIsPureObserver(t *testing.T) {
	w := tiny(t)
	cfg := tracedConfig(nil)
	base, err := Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder(0)
	traced, err := Run(w, tracedConfig(rec))
	if err != nil {
		t.Fatal(err)
	}
	baseJSON, _ := json.Marshal(base)
	tracedJSON, _ := json.Marshal(traced)
	if string(baseJSON) != string(tracedJSON) {
		t.Errorf("tracing perturbed the run:\nuntraced %s\ntraced   %s", baseJSON, tracedJSON)
	}
	if rec.Len() == 0 {
		t.Fatal("recorder saw no events")
	}
}

func TestTraceTimelineDeterministic(t *testing.T) {
	w := tiny(t)
	var timelines [2][]byte
	for i := range timelines {
		rec := obs.NewRecorder(0)
		if _, err := Run(w, tracedConfig(rec)); err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(rec.Events())
		if err != nil {
			t.Fatal(err)
		}
		timelines[i] = b
	}
	if string(timelines[0]) != string(timelines[1]) {
		t.Errorf("timelines differ across identical runs:\n%s\n%s", timelines[0], timelines[1])
	}
}

func TestTraceCoversRecoveryPath(t *testing.T) {
	w := tiny(t)
	rec := obs.NewRecorder(0)
	if _, err := Run(w, tracedConfig(rec)); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	lastSeq := -1
	for _, e := range rec.Events() {
		if e.Seq != lastSeq+1 {
			t.Fatalf("event seq %d follows %d; sequence must be dense", e.Seq, lastSeq)
		}
		lastSeq = e.Seq
		counts[e.Kind]++
	}
	// The reclaim at 34 catches B mid-flight: the timeline must show
	// the revocation, the victim choice, the pool shrinking and growing
	// back, the checkpoint writes, the restore and the restart.
	for _, kind := range []string{
		obs.KindReady, obs.KindDispatch, obs.KindStart, obs.KindFinish,
		obs.KindRevoke, obs.KindVictim, obs.KindResize,
		obs.KindCheckpoint, obs.KindRestore, obs.KindRestart,
		obs.KindTransfer,
	} {
		if counts[kind] == 0 {
			t.Errorf("timeline has no %q events (kinds seen: %v)", kind, counts)
		}
	}
	// Two resize events: -1 at the reclaim, +1 at the restore.
	if counts[obs.KindResize] != 2 {
		t.Errorf("resize events = %d, want 2", counts[obs.KindResize])
	}
}

func TestTraceVictimCarriesScore(t *testing.T) {
	w := tiny(t)
	rec := obs.NewRecorder(0)
	if _, err := Run(w, tracedConfig(rec)); err != nil {
		t.Fatal(err)
	}
	var victims int
	for _, e := range rec.Events() {
		if e.Kind == obs.KindVictim {
			victims++
			if e.Name == "" {
				t.Errorf("victim event without a task name: %+v", e)
			}
		}
	}
	if victims != 1 {
		t.Errorf("victim events = %d, want 1", victims)
	}
}
