// Preemption support: spot "capacity reclaim" events and the recovery
// policies that decide how much of a killed attempt survives.
//
// The paper's §8 treats rented capacity as reliable except for storage
// outages; spot markets (introduced by Amazon in 2009, a year after the
// paper) rent the same capacity cheaper in exchange for the right to
// revoke it mid-run with a short warning.  This file models exactly
// that: at a scheduled instant some processors disappear, running tasks
// on them are killed, and each task resumes either from scratch or from
// its last durable checkpoint.  Everything is deterministic: the same
// revocation schedule and recovery policy always reproduce the same
// metrics, so spot scenarios stay cacheable and sweep-safe.
package exec

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/dag"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/units"
)

// Preemption is one capacity-reclaim event: at Reclaim, Processors slots
// are revoked from the pool (clamped to what is present).  Idle slots
// are taken first; if that is not enough, the most recently started
// tasks are killed.  Warning is the notice lead time (EC2's two-minute
// spot warning): with checkpointing enabled and Warning >= the
// checkpoint overhead, a victim cuts one final checkpoint during the
// warning window.  Restore, when positive, is when the reclaimed
// capacity comes back (replacement capacity won at the spot price);
// zero means it never returns.
type Preemption struct {
	Reclaim    units.Duration
	Processors int
	Warning    units.Duration
	Restore    units.Duration
}

// validatePreemptions checks ordering and well-formedness.  onDemand is
// the reliable sub-pool size: with a reliable floor the workflow can
// always finish there, so only a floorless pool can be permanently
// revoked to a standstill.
func validatePreemptions(pre []Preemption, procs, onDemand int) error {
	permanent := 0
	for i, p := range pre {
		switch {
		case p.Reclaim < 0:
			return fmt.Errorf("exec: preemption %d reclaims at negative time %v", i, p.Reclaim)
		case p.Processors < 1:
			return fmt.Errorf("exec: preemption %d reclaims %d processors", i, p.Processors)
		case p.Warning < 0 || p.Warning > p.Reclaim:
			return fmt.Errorf("exec: preemption %d warning %v outside [0, %v]", i, p.Warning, p.Reclaim)
		case p.Restore != 0 && p.Restore <= p.Reclaim:
			return fmt.Errorf("exec: preemption %d restores at %v, before its reclaim at %v", i, p.Restore, p.Reclaim)
		}
		if i > 0 && p.Reclaim < pre[i-1].Reclaim {
			return fmt.Errorf("exec: preemptions unsorted at index %d", i)
		}
		if p.Restore == 0 {
			permanent += p.Processors
		}
	}
	if permanent >= procs && procs > 0 && onDemand == 0 {
		return fmt.Errorf("exec: preemptions permanently revoke all %d processors; the workflow could never finish", procs)
	}
	return nil
}

// Recovery says how a preempted task resumes.  The zero value re-runs
// it from scratch, losing the whole attempt.  With Checkpoint set, the
// task writes a durable checkpoint after every Interval seconds of
// useful compute, each costing Overhead extra wall-clock seconds on the
// processor; a killed attempt restarts from its last completed
// checkpoint instead of from zero.
type Recovery struct {
	Checkpoint bool
	// Interval is the useful compute between checkpoints (> 0 when
	// Checkpoint is set).
	Interval units.Duration
	// Overhead is the wall-clock cost of writing one checkpoint (>= 0).
	Overhead units.Duration
	// Bytes is the size of one checkpoint image.  Each write moves this
	// much data into cloud storage (the latest image stays resident until
	// the task completes, and package cost charges every write as inbound
	// transfer) and each restore reads it back out.  Zero keeps
	// checkpoints free of data charges.
	Bytes units.Bytes
}

// validate rejects inconsistent recovery policies.
func (rec Recovery) validate() error {
	if !rec.Checkpoint {
		if rec.Interval != 0 || rec.Overhead != 0 || rec.Bytes != 0 {
			return fmt.Errorf("exec: checkpoint interval/overhead/bytes set without Checkpoint")
		}
		return nil
	}
	if rec.Interval <= 0 {
		return fmt.Errorf("exec: non-positive checkpoint interval %v", rec.Interval)
	}
	if rec.Overhead < 0 {
		return fmt.Errorf("exec: negative checkpoint overhead %v", rec.Overhead)
	}
	if rec.Bytes < 0 {
		return fmt.Errorf("exec: negative checkpoint size %v", rec.Bytes)
	}
	return nil
}

// ckptKey names a task's resident checkpoint image in cloud storage.
func ckptKey(id dag.TaskID) string { return fmt.Sprintf("ckpt/t%d", id) }

// dropCheckpoint deletes a task's resident checkpoint image, if any:
// completion makes it garbage and an application failure poisons it.
func (r *runner) dropCheckpoint(id dag.TaskID, now units.Duration) error {
	if r.cfg.Recovery.Bytes <= 0 || !r.storage.Has(ckptKey(id)) {
		return nil
	}
	return r.storage.Delete(now, ckptKey(id))
}

// checkpointsFor returns how many checkpoints an attempt with rem
// seconds of useful work writes when it runs to completion.  A
// checkpoint that would coincide with completion is skipped: finishing
// is durable by itself.
func (rec Recovery) checkpointsFor(rem units.Duration) int {
	if !rec.Checkpoint || rem <= 0 {
		return 0
	}
	n := int(math.Ceil(float64(rem)/float64(rec.Interval))) - 1
	if n < 0 {
		n = 0
	}
	return n
}

// attemptWall returns the wall-clock length of an attempt that must
// complete rem seconds of useful work: the work itself plus every
// checkpoint written along the way.
func (rec Recovery) attemptWall(rem units.Duration) units.Duration {
	return rem + units.Duration(rec.checkpointsFor(rem))*rec.Overhead
}

// usefulDuring returns the useful compute finished elapsed wall seconds
// into an attempt of rem total useful work (checkpoint windows produce
// no useful work).
func (rec Recovery) usefulDuring(elapsed, rem units.Duration) units.Duration {
	if elapsed <= 0 {
		return 0
	}
	u := elapsed
	if rec.Checkpoint {
		cycle := rec.Interval + rec.Overhead
		full := math.Floor(float64(elapsed) / float64(cycle))
		partial := elapsed - units.Duration(full)*cycle
		if partial > rec.Interval {
			partial = rec.Interval
		}
		u = units.Duration(full)*rec.Interval + partial
	}
	if u > rem {
		u = rem
	}
	return u
}

// bankedDuring returns the useful work durably checkpointed elapsed
// wall seconds into an attempt of rem total useful work, and how many
// checkpoints that is: only fully written checkpoints count.
func (rec Recovery) bankedDuring(elapsed, rem units.Duration) (units.Duration, int) {
	if !rec.Checkpoint || elapsed <= 0 {
		return 0, 0
	}
	cycle := rec.Interval + rec.Overhead
	n := int(math.Floor(float64(elapsed) / float64(cycle)))
	if max := rec.checkpointsFor(rem); n > max {
		n = max
	}
	return units.Duration(n) * rec.Interval, n
}

// reclaim executes one capacity-reclaim event: kill as many running
// spot tasks as the revocation requires (most recently started first,
// the youngest work), shrink the spot sub-pool, and schedule the
// capacity's return.  The reliable on-demand sub-pool is untouchable.
func (r *runner) reclaim(p Preemption, now units.Duration) {
	if r.doneTasks == r.wf.NumTasks() {
		return // all compute finished; a late reclaim has nothing to take
	}
	k := p.Processors
	if k > r.cluster.SpotTotal() {
		k = r.cluster.SpotTotal()
	}
	if k <= 0 {
		return // earlier, still-open reclaims already took the whole spot pool
	}
	if r.trace != nil {
		r.trace.Record(now, obs.Event{Kind: obs.KindRevoke, Task: -1, Procs: k})
	}
	if need := k - r.cluster.SpotFree(); need > 0 {
		for _, v := range r.pickVictims(need, now) {
			r.preemptTask(v.id, now, p.Warning, v.score)
			if r.err != nil {
				return
			}
		}
	}
	if err := r.cluster.Revoke(now, k); err != nil {
		r.fail(err)
		return
	}
	if r.trace != nil {
		r.trace.Record(now, obs.Event{Kind: obs.KindResize, Task: -1, Procs: -k})
	}
	// A victim may be able to restart right away on capacity the reclaim
	// cannot touch -- an idle reliable slot, or spot slots beyond k.  On
	// a uniform pool this is a no-op (victims freed exactly the slots
	// just revoked), but a mixed fleet must not strand ready work while
	// reliable processors idle.
	r.dispatch(now)
	if p.Restore > 0 {
		r.eng.Schedule(p.Restore, func(at units.Duration) {
			if r.doneTasks == r.wf.NumTasks() {
				return // run already complete; leave the clock untouched
			}
			if err := r.cluster.Restore(at, k); err != nil {
				r.fail(err)
				return
			}
			if r.trace != nil {
				r.trace.Record(at, obs.Event{Kind: obs.KindResize, Task: -1, Procs: k})
			}
			r.dispatch(at)
		})
	}
}

// victimChoice is one victim the policy selected, with the score that
// condemned it (surfaced on the flight recorder's victim events).
type victimChoice struct {
	id    dag.TaskID
	score float64
}

// pickVictims selects need running tasks to kill, scored by the victim
// policy: the largest scores die first, task ID descending as the
// deterministic tie-break.  Only tasks on the spot sub-pool are
// candidates -- reliable on-demand capacity is exactly the capacity
// reclaims cannot touch.
func (r *runner) pickVictims(need int, now units.Duration) []victimChoice {
	var cands []policy.VictimCandidate
	for id, ph := range r.phase {
		if ph != phaseRunning || r.onReliable[id] {
			continue
		}
		tid := dag.TaskID(id)
		rec := r.runRec[tid]
		elapsed := now - r.runStart[tid]
		rem := r.runRem[tid]
		saved, _ := rec.bankedDuring(elapsed, rem)
		cands = append(cands, policy.VictimCandidate{
			Task:      tid,
			Start:     r.runStart[tid],
			Elapsed:   elapsed,
			Remaining: rem,
			Runtime:   r.wf.Task(tid).Runtime,
			Banked:    r.banked[tid],
			Useful:    rec.usefulDuring(elapsed, rem),
			Saved:     saved,
		})
	}
	score := make([]float64, len(cands))
	scoreOf := make(map[dag.TaskID]float64, len(cands))
	for i, c := range cands {
		score[i] = r.policies.Victim.Score(c)
		scoreOf[c.Task] = score[i]
	}
	sort.SliceStable(cands, func(i, j int) bool {
		if score[i] != score[j] {
			return score[i] > score[j]
		}
		return cands[i].Task > cands[j].Task
	})
	if need > len(cands) {
		need = len(cands)
	}
	out := make([]victimChoice, need)
	for i := range out {
		// Scores travel by task ID: the sort permutes cands, not the
		// parallel score slice.
		out[i] = victimChoice{id: cands[i].Task, score: scoreOf[cands[i].Task]}
	}
	return out
}

// preemptTask kills one running attempt: bank whatever the recovery
// policy preserved, put the task back on the ready queue, and free its
// processor.  The pending completion event is disarmed by the attempt
// counter.
func (r *runner) preemptTask(id dag.TaskID, now units.Duration, warning units.Duration, score float64) {
	rec := r.runRec[id]
	elapsed := now - r.runStart[id]
	rem := r.runRem[id]
	if r.trace != nil {
		r.trace.Record(now, obs.Event{Kind: obs.KindVictim, Task: int(id), Name: r.wf.Task(id).Name, Score: score})
	}
	saved, ckpts := rec.bankedDuring(elapsed, rem)
	if r.trace != nil && ckpts > 0 {
		r.trace.Record(now, obs.Event{
			Kind: obs.KindCheckpoint, Task: int(id), Name: r.wf.Task(id).Name,
			Count: ckpts, Bytes: int64(units.Bytes(ckpts) * rec.Bytes), Detail: "periodic",
		})
	}
	// The warning window lets a checkpointing task cut one final
	// checkpoint before the capacity disappears, preserving all useful
	// work finished by notice time -- provided the write fits in the
	// window.
	if rec.Checkpoint && warning >= rec.Overhead {
		if u := rec.usefulDuring(elapsed-warning, rem); u > saved {
			saved = u
			ckpts++
			if r.trace != nil {
				r.trace.Record(now, obs.Event{
					Kind: obs.KindCheckpoint, Task: int(id), Name: r.wf.Task(id).Name,
					Count: 1, Bytes: int64(rec.Bytes), Detail: "emergency",
				})
			}
		}
	}
	r.banked[id] += saved
	r.checkpoints += ckpts
	if rec.Bytes > 0 && ckpts > 0 {
		r.ckptWritten += units.Bytes(ckpts) * rec.Bytes
		// The kill may land before the first periodic write event (an
		// emergency checkpoint inside the warning window); the banked
		// image must be resident for the restart to read back.
		if !r.storage.Has(ckptKey(id)) {
			if err := r.storage.Put(now, ckptKey(id), rec.Bytes); err != nil {
				r.fail(err)
				return
			}
		}
	}
	r.wasted += (elapsed - saved).Seconds()
	r.preempted++
	r.attempt[id]++
	if r.cfg.RecordSchedule {
		if i, ok := r.spanOf[id]; ok {
			r.schedule[i].Finish = now // the Gantt shows the killed attempt
		}
	}
	if err := r.releaseSlot(id, now); err != nil {
		r.fail(err)
		return
	}
	if r.trace != nil {
		r.trace.Record(now, obs.Event{Kind: obs.KindRestart, Task: int(id), Name: r.wf.Task(id).Name})
	}
	r.enqueueReady(id)
}

// validateSpotArgs checks the shared arguments of the spot-schedule
// samplers.
func validateSpotArgs(horizon units.Duration, procs int, ratePerHour float64, warning, down units.Duration) error {
	switch {
	case horizon <= 0:
		return fmt.Errorf("exec: non-positive spot horizon %v", horizon)
	case procs < 1:
		return fmt.Errorf("exec: spot schedule needs at least 1 processor, got %d", procs)
	case ratePerHour < 0:
		return fmt.Errorf("exec: negative revocation rate %v/hour", ratePerHour)
	case warning < 0:
		return fmt.Errorf("exec: negative spot warning %v", warning)
	case down <= 0:
		return fmt.Errorf("exec: non-positive spot downtime %v", down)
	}
	return nil
}

// SpotScheduleInstances samples a deterministic per-instance spot
// revocation schedule over a horizon: each of the procs spot instances
// is reclaimed independently as its own Poisson process at ratePerHour,
// every event killing exactly one processor and healing down later.
// Warning lead times are heterogeneous -- real spot notices jitter with
// market pressure -- sampled uniformly in [warning/2, warning] per
// event.  The same seed always yields the same schedule (instances draw
// from decorrelated sub-seeds), so per-instance spot runs stay
// reproducible and cacheable; ratePerHour == 0 returns an empty
// schedule.
func SpotScheduleInstances(horizon units.Duration, procs int, ratePerHour float64, warning, down units.Duration, seed int64) ([]Preemption, error) {
	if err := validateSpotArgs(horizon, procs, ratePerHour, warning, down); err != nil {
		return nil, err
	}
	if ratePerHour == 0 {
		return nil, nil
	}
	var out []Preemption
	for i := 0; i < procs; i++ {
		// Decorrelate instances with a SplitMix64-style odd-constant
		// stride; adjacent raw seeds would make rand.Source streams that
		// are far too similar.
		rng := rand.New(rand.NewSource(seed + int64(i)*-0x61c8864680b583eb))
		var t units.Duration
		for {
			t += units.Duration(rng.ExpFloat64() / ratePerHour * units.SecondsPerHour)
			if t >= horizon {
				break
			}
			w := warning - units.Duration(rng.Float64()*0.5*float64(warning))
			if w > t {
				w = t
			}
			out = append(out, Preemption{Reclaim: t, Processors: 1, Warning: w, Restore: t + down})
			t += down
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Reclaim != b.Reclaim {
			return a.Reclaim < b.Reclaim
		}
		if a.Warning != b.Warning {
			return a.Warning < b.Warning
		}
		return a.Restore < b.Restore
	})
	return out, nil
}

// SpotSchedule samples a deterministic spot revocation schedule over a
// horizon: whole-pool capacity reclaims arriving as a Poisson process
// at ratePerHour, each announced warning ahead and healed down later
// (replacement capacity won back at the spot price).  The same seed
// always yields the same schedule, so spot runs stay reproducible and
// cacheable; ratePerHour == 0 returns an empty schedule.
func SpotSchedule(horizon units.Duration, procs int, ratePerHour float64, warning, down units.Duration, seed int64) ([]Preemption, error) {
	if err := validateSpotArgs(horizon, procs, ratePerHour, warning, down); err != nil {
		return nil, err
	}
	if ratePerHour == 0 {
		return nil, nil
	}
	rng := rand.New(rand.NewSource(seed))
	var out []Preemption
	var t units.Duration
	for {
		gap := units.Duration(rng.ExpFloat64() / ratePerHour * units.SecondsPerHour)
		t += gap
		if t >= horizon {
			return out, nil
		}
		w := warning
		if w > t {
			w = t
		}
		out = append(out, Preemption{Reclaim: t, Processors: procs, Warning: w, Restore: t + down})
		t += down
	}
}
