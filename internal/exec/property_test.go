package exec

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/dagtest"
	"repro/internal/datamgmt"
	"repro/internal/units"
)

// The executor's global invariants, checked over random layered DAGs in
// every data-management mode and at several pool sizes.

func propConfig(mode datamgmt.Mode, procs int) Config {
	return Config{
		Mode:        mode,
		Processors:  procs,
		Bandwidth:   units.Mbps(10),
		RecordCurve: true,
	}
}

func TestPropExecInvariants(t *testing.T) {
	f := func(seed int64, procsRaw uint8, modeRaw uint8) bool {
		w := dagtest.RandomLayered(seed)
		mode := datamgmt.Modes()[int(modeRaw)%3]
		procs := int(procsRaw)%4 + 1
		m, err := Run(w, propConfig(mode, procs))
		if err != nil {
			return false
		}
		// Everything ran.
		if m.TasksRun != w.NumTasks() {
			return false
		}
		// Time ordering.
		if m.ExecTime < 0 || m.Makespan < m.ExecTime {
			return false
		}
		// CPU conservation.
		if m.CPUSeconds != w.TotalRuntime().Seconds() {
			return false
		}
		// Utilization bounded.
		if m.Utilization < 0 || m.Utilization > 1+1e-9 {
			return false
		}
		// At least the external inputs come in and the outputs go out.
		if m.BytesIn < w.InputBytes() || m.BytesOut < w.OutputBytes() {
			return false
		}
		// Storage drains completely: the curve ends at zero.
		last := m.Curve[len(m.Curve)-1]
		if last.Bytes != 0 {
			return false
		}
		// The integral is non-negative and bounded by peak x makespan.
		if m.StorageByteSeconds < 0 ||
			m.StorageByteSeconds > float64(m.PeakStorage)*m.Makespan.Seconds()+1e-6 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: regular and cleanup modes always move identical volumes, and
// cleanup's storage integral never exceeds regular's.
func TestPropCleanupDominatesRegular(t *testing.T) {
	f := func(seed int64, procsRaw uint8) bool {
		w := dagtest.RandomLayered(seed)
		procs := int(procsRaw)%4 + 1
		reg, err := Run(w, propConfig(datamgmt.Regular, procs))
		if err != nil {
			return false
		}
		cln, err := Run(w, propConfig(datamgmt.Cleanup, procs))
		if err != nil {
			return false
		}
		if reg.BytesIn != cln.BytesIn || reg.BytesOut != cln.BytesOut {
			return false
		}
		if cln.StorageByteSeconds > reg.StorageByteSeconds+1e-6 {
			return false
		}
		// Cleanup never slows the run down (deletions are free).
		return cln.ExecTime == reg.ExecTime
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: remote I/O moves at least as much data as regular in both
// directions (re-transfers and intermediate stage-outs only add).
func TestPropRemoteIOMovesMore(t *testing.T) {
	f := func(seed int64) bool {
		w := dagtest.RandomLayered(seed)
		reg, err := Run(w, propConfig(datamgmt.Regular, 2))
		if err != nil {
			return false
		}
		rem, err := Run(w, propConfig(datamgmt.RemoteIO, 2))
		if err != nil {
			return false
		}
		return rem.BytesIn >= reg.BytesIn && rem.BytesOut >= reg.BytesOut
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: the simulator is a function -- identical inputs give
// identical metrics, across modes and pool sizes.
func TestPropDeterministic(t *testing.T) {
	f := func(seed int64, procsRaw, modeRaw uint8) bool {
		w := dagtest.RandomLayered(seed)
		cfg := propConfig(datamgmt.Modes()[int(modeRaw)%3], int(procsRaw)%8+1)
		a, err := Run(w, cfg)
		if err != nil {
			return false
		}
		b, err := Run(w, cfg)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: adding processors never increases ExecTime on layered DAGs
// (greedy list scheduling is monotone here because levels are
// independent and FIFO order is fixed).
func TestPropMoreProcsNeverSlower(t *testing.T) {
	f := func(seed int64) bool {
		w := dagtest.RandomLayered(seed)
		prev := units.Duration(0)
		for i, procs := range []int{1, 2, 4, 8} {
			m, err := Run(w, propConfig(datamgmt.Regular, procs))
			if err != nil {
				return false
			}
			if i > 0 && m.ExecTime > prev+1e-9 {
				return false
			}
			prev = m.ExecTime
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
