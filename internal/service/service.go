// Package service simulates the application tier of the paper's Figure
// 2: a mosaic service (the Montage portal) that owns a modest local
// cluster and reaches out to the cloud "to handle sporadic overloads of
// mosaic requests" -- the first usage scenario of the introduction and
// the motivation behind Question 1.
//
// The request manager applies a simple, auditable policy: serve a
// request locally when the local queue can still meet the turnaround
// target, otherwise provision cloud resources for it and pay the
// per-request price measured by the simulator.
package service

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/montage"
	"repro/internal/units"
)

// Class is a request type with measured turnaround/cost profiles: how
// long it runs on the service's own cluster, and how long/expensive it
// is on the cloud under the chosen plan.
type Class struct {
	Name      string
	LocalTime units.Duration // turnaround on the local cluster (exclusive use)
	CloudTime units.Duration // turnaround on the cloud under the plan
	CloudCost units.Money    // what the cloud run costs
}

// Validate rejects degenerate classes.
func (c Class) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("service: class without a name")
	}
	if c.LocalTime <= 0 || c.CloudTime <= 0 {
		return fmt.Errorf("service: class %q has non-positive runtimes", c.Name)
	}
	if c.CloudCost < 0 {
		return fmt.Errorf("service: class %q has negative cloud cost", c.Name)
	}
	return nil
}

// MeasureClass builds a Class by simulation: the local turnaround comes
// from running the workflow on localProcs processors with co-located
// data (a fast LAN instead of the 10 Mbps WAN), the cloud profile from
// running it under cloudPlan.
func MeasureClass(spec montage.Spec, localProcs int, cloudPlan core.Plan) (Class, error) {
	return MeasureClassContext(context.Background(), spec, localProcs, cloudPlan)
}

// MeasureClassContext is MeasureClass with cooperative cancellation of
// the two measurement simulations.
func MeasureClassContext(ctx context.Context, spec montage.Spec, localProcs int, cloudPlan core.Plan) (Class, error) {
	wf, err := montage.Cached(spec)
	if err != nil {
		return Class{}, err
	}
	local := core.DefaultPlan()
	local.Processors = localProcs
	local.Bandwidth = units.Mbps(1000) // data is already at the service
	lr, err := core.RunContext(ctx, wf, local)
	if err != nil {
		return Class{}, err
	}
	cr, err := core.RunContext(ctx, wf, cloudPlan)
	if err != nil {
		return Class{}, err
	}
	return Class{
		Name:      spec.Name,
		LocalTime: lr.Metrics.ExecTime,
		CloudTime: cr.Metrics.Makespan,
		CloudCost: cr.Cost.Total(),
	}, nil
}

// Request is one user mosaic request.
type Request struct {
	ID      int
	Class   int // index into the class list
	Arrival units.Duration
}

// Decision says where a request ran.
type Decision int

const (
	// Local means the service's own cluster served the request.
	Local Decision = iota
	// Cloud means the request was farmed out to the cloud.
	Cloud
)

// String names the decision.
func (d Decision) String() string {
	if d == Cloud {
		return "cloud"
	}
	return "local"
}

// Outcome records how one request was served.
type Outcome struct {
	Request
	Decision Decision
	Start    units.Duration
	Finish   units.Duration
	Cost     units.Money // cloud spend; zero for local runs (sunk cost)
}

// Turnaround is the user-visible latency.
func (o Outcome) Turnaround() units.Duration { return o.Finish - o.Arrival }

// Config parameterizes the request manager.
type Config struct {
	// SLA is the turnaround target; a request whose projected local
	// turnaround exceeds it is sent to the cloud.
	SLA units.Duration
	// CloudEnabled gates bursting; with it off everything queues locally
	// (the baseline the cloud option is compared against).
	CloudEnabled bool
}

// Stats aggregates a simulation.
type Stats struct {
	Requests       int
	LocalRuns      int
	CloudRuns      int
	CloudSpend     units.Money
	MeanTurnaround units.Duration
	MaxTurnaround  units.Duration
	SLAViolations  int
}

// Simulate runs the request manager over the arrival stream.  The local
// cluster serves one request at a time in FIFO order (Montage workflows
// saturate a small cluster); the cloud has effectively unlimited
// capacity, so cloud requests never queue.
func Simulate(classes []Class, reqs []Request, cfg Config) ([]Outcome, Stats, error) {
	if len(classes) == 0 {
		return nil, Stats{}, fmt.Errorf("service: no request classes")
	}
	for _, c := range classes {
		if err := c.Validate(); err != nil {
			return nil, Stats{}, err
		}
	}
	if cfg.SLA <= 0 {
		return nil, Stats{}, fmt.Errorf("service: non-positive SLA %v", cfg.SLA)
	}
	sorted := append([]Request(nil), reqs...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Arrival < sorted[j].Arrival })

	var (
		outcomes    = make([]Outcome, 0, len(sorted))
		localFreeAt units.Duration
		stats       = Stats{Requests: len(sorted)}
		totalTurn   units.Duration
	)
	for _, r := range sorted {
		if r.Class < 0 || r.Class >= len(classes) {
			return nil, Stats{}, fmt.Errorf("service: request %d has unknown class %d", r.ID, r.Class)
		}
		if r.Arrival < 0 {
			return nil, Stats{}, fmt.Errorf("service: request %d arrives before time zero", r.ID)
		}
		c := classes[r.Class]
		localStart := r.Arrival
		if localFreeAt > localStart {
			localStart = localFreeAt
		}
		localFinish := localStart + c.LocalTime
		o := Outcome{Request: r}
		if cfg.CloudEnabled && localFinish-r.Arrival > cfg.SLA {
			o.Decision = Cloud
			o.Start = r.Arrival
			o.Finish = r.Arrival + c.CloudTime
			o.Cost = c.CloudCost
			stats.CloudRuns++
			stats.CloudSpend += c.CloudCost
		} else {
			o.Decision = Local
			o.Start = localStart
			o.Finish = localFinish
			localFreeAt = localFinish
			stats.LocalRuns++
		}
		turn := o.Turnaround()
		totalTurn += turn
		if turn > stats.MaxTurnaround {
			stats.MaxTurnaround = turn
		}
		if turn > cfg.SLA {
			stats.SLAViolations++
		}
		outcomes = append(outcomes, o)
	}
	if stats.Requests > 0 {
		stats.MeanTurnaround = totalTurn / units.Duration(stats.Requests)
	}
	return outcomes, stats, nil
}

// CapacityPoint is one local-cluster size evaluated against a workload.
type CapacityPoint struct {
	LocalProcessors int
	Stats           Stats
}

// CapacitySweep evaluates the same request stream against local clusters
// of several sizes (re-measuring each class's local turnaround), with
// cloud bursting enabled.  It answers the sizing question behind the
// paper's Question 1: how much local capacity is worth owning when the
// overflow can always go to the cloud.
func CapacitySweep(specs []montage.Spec, localSizes []int, cloudPlan core.Plan, reqs []Request, cfg Config) ([]CapacityPoint, error) {
	if len(localSizes) == 0 {
		return nil, fmt.Errorf("service: no cluster sizes to sweep")
	}
	var points []CapacityPoint
	for _, size := range localSizes {
		if size < 1 {
			return nil, fmt.Errorf("service: invalid cluster size %d", size)
		}
		classes := make([]Class, 0, len(specs))
		for _, spec := range specs {
			c, err := MeasureClass(spec, size, cloudPlan)
			if err != nil {
				return nil, err
			}
			classes = append(classes, c)
		}
		_, stats, err := Simulate(classes, reqs, cfg)
		if err != nil {
			return nil, err
		}
		points = append(points, CapacityPoint{LocalProcessors: size, Stats: stats})
	}
	return points, nil
}

// Arrivals generates a deterministic request stream: exponential
// inter-arrival gaps with the given mean, plus an overload burst (a
// window during which the arrival rate multiplies), the "sporadic
// overload" of the paper's introduction.
//
// All randomness flows from Seed through a private source -- this
// package never touches math/rand's package-global generator -- so the
// same Arrivals value always yields the same stream, no matter what
// else in the process is drawing random numbers.  That is what lets a
// long-running server replay the Figure-2 scenario on demand.
type Arrivals struct {
	Seed       int64
	N          int
	MeanGap    units.Duration // mean inter-arrival time outside the burst
	Classes    int            // class indices are drawn uniformly
	BurstStart units.Duration // 0,0 disables the burst
	BurstEnd   units.Duration
	BurstRate  float64 // arrival-rate multiplier inside the burst (>= 1)
}

// WithSeed returns a copy of the arrival spec reseeded to seed: the
// explicit seed-threading point for callers (the experiment registry,
// the HTTP server) that expose reproducible reruns of the scenario.
func (a Arrivals) WithSeed(seed int64) Arrivals {
	a.Seed = seed
	return a
}

// Generate produces the stream.
func (a Arrivals) Generate() ([]Request, error) {
	if a.N <= 0 {
		return nil, fmt.Errorf("service: non-positive request count %d", a.N)
	}
	if a.MeanGap <= 0 {
		return nil, fmt.Errorf("service: non-positive mean gap %v", a.MeanGap)
	}
	if a.Classes <= 0 {
		return nil, fmt.Errorf("service: non-positive class count %d", a.Classes)
	}
	if a.BurstEnd < a.BurstStart {
		return nil, fmt.Errorf("service: burst window inverted")
	}
	if a.BurstRate < 1 && a.BurstEnd > a.BurstStart {
		return nil, fmt.Errorf("service: burst rate %v below 1", a.BurstRate)
	}
	rng := rand.New(rand.NewSource(a.Seed))
	reqs := make([]Request, 0, a.N)
	var now units.Duration
	for i := 0; i < a.N; i++ {
		gap := units.Duration(rng.ExpFloat64()) * a.MeanGap
		if now >= a.BurstStart && now < a.BurstEnd && a.BurstRate > 1 {
			gap = units.Duration(float64(gap) / a.BurstRate)
		}
		now += gap
		reqs = append(reqs, Request{ID: i, Class: rng.Intn(a.Classes), Arrival: now})
	}
	return reqs, nil
}
