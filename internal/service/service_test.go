package service

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/montage"
)

func oneClass() []Class {
	return []Class{{Name: "1deg", LocalTime: 100, CloudTime: 150, CloudCost: 0.60}}
}

func TestSimulateAllLocalWhenIdle(t *testing.T) {
	// Requests far apart: everything fits locally, no cloud spend.
	reqs := []Request{
		{ID: 0, Class: 0, Arrival: 0},
		{ID: 1, Class: 0, Arrival: 1000},
		{ID: 2, Class: 0, Arrival: 2000},
	}
	outcomes, stats, err := Simulate(oneClass(), reqs, Config{SLA: 200, CloudEnabled: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.CloudRuns != 0 || stats.LocalRuns != 3 {
		t.Fatalf("local/cloud = %d/%d, want 3/0", stats.LocalRuns, stats.CloudRuns)
	}
	if stats.CloudSpend != 0 {
		t.Errorf("cloud spend = %v, want 0", stats.CloudSpend)
	}
	for _, o := range outcomes {
		if o.Turnaround() != 100 {
			t.Errorf("request %d turnaround = %v, want 100", o.ID, o.Turnaround())
		}
	}
	if stats.MeanTurnaround != 100 || stats.MaxTurnaround != 100 {
		t.Errorf("turnaround stats = %v/%v, want 100/100", stats.MeanTurnaround, stats.MaxTurnaround)
	}
	if stats.SLAViolations != 0 {
		t.Errorf("SLA violations = %d, want 0", stats.SLAViolations)
	}
}

func TestSimulateBurstsToCloud(t *testing.T) {
	// Three simultaneous arrivals, local time 100, SLA 150: the first
	// runs locally (turnaround 100), the second would finish at 200 >
	// SLA -> cloud, the third likewise.
	reqs := []Request{
		{ID: 0, Class: 0, Arrival: 0},
		{ID: 1, Class: 0, Arrival: 0},
		{ID: 2, Class: 0, Arrival: 0},
	}
	outcomes, stats, err := Simulate(oneClass(), reqs, Config{SLA: 150, CloudEnabled: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.LocalRuns != 1 || stats.CloudRuns != 2 {
		t.Fatalf("local/cloud = %d/%d, want 1/2", stats.LocalRuns, stats.CloudRuns)
	}
	if got := float64(stats.CloudSpend); got != 1.2 {
		t.Errorf("cloud spend = %v, want $1.20", got)
	}
	// Cloud runs take CloudTime = 150, exactly meeting the SLA.
	if stats.SLAViolations != 0 {
		t.Errorf("SLA violations = %d, want 0", stats.SLAViolations)
	}
	if outcomes[1].Decision != Cloud || outcomes[1].Finish != 150 {
		t.Errorf("request 1 outcome = %+v, want cloud finish at 150", outcomes[1])
	}
}

func TestSimulateWithoutCloudQueues(t *testing.T) {
	reqs := []Request{
		{ID: 0, Class: 0, Arrival: 0},
		{ID: 1, Class: 0, Arrival: 0},
		{ID: 2, Class: 0, Arrival: 0},
	}
	_, stats, err := Simulate(oneClass(), reqs, Config{SLA: 150, CloudEnabled: false})
	if err != nil {
		t.Fatal(err)
	}
	if stats.CloudRuns != 0 {
		t.Fatalf("cloud runs = %d with bursting disabled", stats.CloudRuns)
	}
	// Queueing: turnarounds 100, 200, 300 -> two violations.
	if stats.SLAViolations != 2 {
		t.Errorf("SLA violations = %d, want 2", stats.SLAViolations)
	}
	if stats.MaxTurnaround != 300 {
		t.Errorf("max turnaround = %v, want 300", stats.MaxTurnaround)
	}
	if stats.MeanTurnaround != 200 {
		t.Errorf("mean turnaround = %v, want 200", stats.MeanTurnaround)
	}
}

func TestSimulateSortsArrivals(t *testing.T) {
	reqs := []Request{
		{ID: 1, Class: 0, Arrival: 500},
		{ID: 0, Class: 0, Arrival: 0},
	}
	outcomes, _, err := Simulate(oneClass(), reqs, Config{SLA: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if outcomes[0].ID != 0 || outcomes[1].ID != 1 {
		t.Error("outcomes not in arrival order")
	}
}

func TestSimulateValidation(t *testing.T) {
	good := oneClass()
	reqs := []Request{{ID: 0, Class: 0, Arrival: 0}}
	if _, _, err := Simulate(nil, reqs, Config{SLA: 1}); err == nil {
		t.Error("no classes accepted")
	}
	if _, _, err := Simulate(good, reqs, Config{SLA: 0}); err == nil {
		t.Error("zero SLA accepted")
	}
	if _, _, err := Simulate(good, []Request{{Class: 5}}, Config{SLA: 1}); err == nil {
		t.Error("unknown class accepted")
	}
	if _, _, err := Simulate(good, []Request{{Arrival: -1}}, Config{SLA: 1}); err == nil {
		t.Error("negative arrival accepted")
	}
	bad := []Class{{Name: "", LocalTime: 1, CloudTime: 1}}
	if _, _, err := Simulate(bad, reqs, Config{SLA: 1}); err == nil {
		t.Error("nameless class accepted")
	}
	if Local.String() != "local" || Cloud.String() != "cloud" {
		t.Error("decision names wrong")
	}
}

func TestArrivalsGenerate(t *testing.T) {
	a := Arrivals{Seed: 7, N: 200, MeanGap: 100, Classes: 3}
	reqs, err := a.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 200 {
		t.Fatalf("generated %d requests, want 200", len(reqs))
	}
	for i := 1; i < len(reqs); i++ {
		if reqs[i].Arrival < reqs[i-1].Arrival {
			t.Fatal("arrivals not monotone")
		}
	}
	for _, r := range reqs {
		if r.Class < 0 || r.Class >= 3 {
			t.Fatalf("class %d out of range", r.Class)
		}
	}
	// Deterministic.
	again, err := a.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for i := range reqs {
		if reqs[i] != again[i] {
			t.Fatal("generation not deterministic")
		}
	}
}

func TestArrivalsBurstCompressesGaps(t *testing.T) {
	base := Arrivals{Seed: 3, N: 500, MeanGap: 100, Classes: 1}
	burst := base
	burst.BurstStart = 0
	burst.BurstEnd = 1e9
	burst.BurstRate = 10
	br, err := base.Generate()
	if err != nil {
		t.Fatal(err)
	}
	bu, err := burst.Generate()
	if err != nil {
		t.Fatal(err)
	}
	// A permanent 10x burst must compress the whole stream ~10x.
	ratio := float64(br[len(br)-1].Arrival) / float64(bu[len(bu)-1].Arrival)
	if ratio < 8 || ratio > 12 {
		t.Errorf("burst compression ratio = %.1f, want ~10", ratio)
	}
}

func TestArrivalsValidation(t *testing.T) {
	cases := []Arrivals{
		{N: 0, MeanGap: 1, Classes: 1},
		{N: 1, MeanGap: 0, Classes: 1},
		{N: 1, MeanGap: 1, Classes: 0},
		{N: 1, MeanGap: 1, Classes: 1, BurstStart: 10, BurstEnd: 5},
		{N: 1, MeanGap: 1, Classes: 1, BurstStart: 0, BurstEnd: 10, BurstRate: 0.5},
	}
	for i, a := range cases {
		if _, err := a.Generate(); err == nil {
			t.Errorf("case %d: invalid arrivals accepted", i)
		}
	}
}

func TestMeasureClassIntegration(t *testing.T) {
	cloud := core.DefaultPlan()
	cloud.Billing = core.Provisioned
	cloud.Processors = 16
	c, err := MeasureClass(montage.OneDegree(), 4, cloud)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// A 16-proc cloud pool beats the 4-proc local cluster on turnaround.
	if c.CloudTime >= c.LocalTime {
		t.Errorf("cloud %v not faster than local %v", c.CloudTime, c.LocalTime)
	}
	if c.CloudCost <= 0 {
		t.Error("cloud cost not positive")
	}
}

func TestCapacitySweep(t *testing.T) {
	cloud := core.DefaultPlan()
	cloud.Billing = core.Provisioned
	cloud.Processors = 32
	arrivals := Arrivals{Seed: 5, N: 60, MeanGap: 1800, Classes: 1}
	reqs, err := arrivals.Generate()
	if err != nil {
		t.Fatal(err)
	}
	specs := []montage.Spec{montage.OneDegree()}
	cfg := Config{SLA: 7200, CloudEnabled: true}
	points, err := CapacitySweep(specs, []int{2, 8, 32}, cloud, reqs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d points, want 3", len(points))
	}
	// More local capacity never increases cloud spend.
	for i := 1; i < len(points); i++ {
		if points[i].Stats.CloudSpend > points[i-1].Stats.CloudSpend {
			t.Errorf("cloud spend rose from %d to %d procs",
				points[i-1].LocalProcessors, points[i].LocalProcessors)
		}
	}
	if _, err := CapacitySweep(specs, nil, cloud, reqs, cfg); err == nil {
		t.Error("empty size list accepted")
	}
	if _, err := CapacitySweep(specs, []int{0}, cloud, reqs, cfg); err == nil {
		t.Error("zero cluster size accepted")
	}
}

// Property: enabling the cloud never increases any request's turnaround
// and never increases SLA violations.
func TestPropCloudNeverHurtsLatency(t *testing.T) {
	classes := oneClass()
	f := func(seed int64, n uint8) bool {
		a := Arrivals{Seed: seed, N: int(n%50) + 1, MeanGap: 80, Classes: 1}
		reqs, err := a.Generate()
		if err != nil {
			return false
		}
		cfg := Config{SLA: 180}
		_, off, err := Simulate(classes, reqs, cfg)
		if err != nil {
			return false
		}
		cfg.CloudEnabled = true
		_, on, err := Simulate(classes, reqs, cfg)
		if err != nil {
			return false
		}
		return on.SLAViolations <= off.SLAViolations &&
			on.MeanTurnaround <= off.MeanTurnaround &&
			on.CloudSpend >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
