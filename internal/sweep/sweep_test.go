package sweep

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestMapOrderStable(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	got, err := Map(context.Background(), 8, items, func(_ context.Context, idx, item int) (int, error) {
		if idx != item {
			t.Errorf("index %d delivered item %d", idx, item)
		}
		return item * item, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("results[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapEmptyAndNil(t *testing.T) {
	got, err := Map(context.Background(), 4, nil, func(_ context.Context, _ int, item int) (int, error) {
		return item, nil
	})
	if err != nil || len(got) != 0 {
		t.Fatalf("empty map: got %v, %v", got, err)
	}
	if _, err := Map[int, int](context.Background(), 4, []int{1}, nil); err == nil {
		t.Fatal("nil fn accepted")
	}
}

func TestMapLowestIndexErrorWins(t *testing.T) {
	items := []int{0, 1, 2, 3, 4, 5, 6, 7}
	// Items 2 and 6 both fail; whatever the scheduling, the error of
	// item 2 must surface, matching a serial loop.
	for trial := 0; trial < 20; trial++ {
		_, err := Map(context.Background(), 4, items, func(_ context.Context, _ int, item int) (int, error) {
			if item == 2 || item == 6 {
				return 0, fmt.Errorf("item %d failed", item)
			}
			return item, nil
		})
		if err == nil || err.Error() != "item 2 failed" {
			t.Fatalf("trial %d: got error %v, want item 2's", trial, err)
		}
	}
}

func TestMapRunsEveryItemOnce(t *testing.T) {
	var calls atomic.Int64
	items := make([]int, 37)
	_, err := Map(context.Background(), 5, items, func(_ context.Context, _ int, _ int) (int, error) {
		calls.Add(1)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 37 {
		t.Fatalf("fn called %d times, want 37", got)
	}
}

func TestMapSkipsItemsAboveFailure(t *testing.T) {
	var calls atomic.Int64
	_, err := Map(context.Background(), 1, []int{0, 1, 2, 3, 4, 5, 6, 7},
		func(_ context.Context, _ int, item int) (int, error) {
			calls.Add(1)
			if item == 2 {
				return 0, errors.New("item 2 failed")
			}
			return item, nil
		})
	if err == nil || err.Error() != "item 2 failed" {
		t.Fatalf("got error %v, want item 2's", err)
	}
	// With one worker, items 0-2 run and 3-7 are skipped as doomed.
	if got := calls.Load(); got != 3 {
		t.Errorf("fn called %d times, want 3", got)
	}
}

func TestStreamEmitsInOrderWhileLaterItemsRun(t *testing.T) {
	// Item 1 blocks until item 0 has been emitted: this only completes
	// if emit streams results before the whole grid finishes.
	gate := make(chan struct{})
	var emitted []int
	err := Stream(context.Background(), 2, []int{0, 1},
		func(_ context.Context, _ int, item int) (int, error) {
			if item == 1 {
				<-gate
			}
			return item, nil
		},
		func(i, r int) (err error) {
			if i != r {
				t.Errorf("emit(%d, %d): index and item out of sync", i, r)
			}
			emitted = append(emitted, i)
			if i == 0 {
				close(gate)
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(emitted) != 2 || emitted[0] != 0 || emitted[1] != 1 {
		t.Errorf("emitted %v, want [0 1]", emitted)
	}
}

func TestStreamEmitErrorAborts(t *testing.T) {
	// Workers are not throttled by emission, so fn may drain the whole
	// grid; what must hold is that the emit error surfaces and nothing
	// past the failing index is emitted.
	var emitted []int
	err := Stream(context.Background(), 1, []int{0, 1, 2, 3},
		func(_ context.Context, _ int, item int) (int, error) {
			return item, nil
		},
		func(i, _ int) error {
			emitted = append(emitted, i)
			if i == 1 {
				return errors.New("emit failed")
			}
			return nil
		})
	if err == nil || err.Error() != "emit failed" {
		t.Fatalf("got %v, want emit failure", err)
	}
	if len(emitted) != 2 || emitted[0] != 0 || emitted[1] != 1 {
		t.Errorf("emitted %v, want [0 1]", emitted)
	}
}

func TestMapCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var calls atomic.Int64
	_, err := Map(ctx, 4, []int{1, 2, 3}, func(_ context.Context, _ int, item int) (int, error) {
		calls.Add(1)
		return item, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if calls.Load() != 0 {
		t.Errorf("canceled sweep still ran %d items", calls.Load())
	}
}

func TestMapCancellationBeatsItemError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	_, err := Map(ctx, 1, []int{0, 1, 2}, func(_ context.Context, _ int, item int) (int, error) {
		if item == 0 {
			cancel() // later items are skipped...
			return 0, errors.New("boom")
		}
		return item, nil
	})
	// ...and the caller sees the cancellation, not the item error.
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}
