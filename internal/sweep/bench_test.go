package sweep

import (
	"context"
	"testing"
)

// benchGrid is the synthetic grid every benchmark sweeps: enough items
// that per-item pool overhead (index claim, done-channel close, ordered
// collection) dominates setup, with an item function cheap enough that
// the harness measures the kernel, not the payload.
const benchGrid = 4096

func benchItems() []int {
	items := make([]int, benchGrid)
	for i := range items {
		items[i] = i
	}
	return items
}

func spin(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i ^ (s << 1)
	}
	return s
}

// BenchmarkStreamGrid measures the sweep kernel end to end on the
// default pool: claim, simulate (a tiny spin), close, collect in order.
func BenchmarkStreamGrid(b *testing.B) {
	items := benchItems()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink := 0
		err := Stream(context.Background(), 0, items,
			func(ctx context.Context, index int, item int) (int, error) {
				return spin(64), nil
			},
			func(index int, r int) error {
				sink += r
				return nil
			})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamSerial pins one worker, isolating the pool's ordering
// machinery from parallel speedup.
func BenchmarkStreamSerial(b *testing.B) {
	items := benchItems()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := Stream(context.Background(), 1, items,
			func(ctx context.Context, index int, item int) (int, error) {
				return spin(64), nil
			},
			func(index int, r int) error { return nil })
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMapGrid measures the buffered variant used by the CLI for
// whole-grid sweeps.
func BenchmarkMapGrid(b *testing.B) {
	items := benchItems()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Map(context.Background(), 0, items,
			func(ctx context.Context, index int, item int) (int, error) {
				return spin(64), nil
			}); err != nil {
			b.Fatal(err)
		}
	}
}
