// Package sweep is the deterministic worker-pool kernel behind every
// parameter scan in this repository.  The paper's evaluation is a grid
// of independent simulations (workflow size x pool size x data-management
// mode x CCR); each point is deterministic, so running them concurrently
// and collecting results by grid index yields output byte-identical to a
// serial loop -- only faster.
//
// Map and Stream are intentionally strict about determinism:
//
//   - results are delivered in item order, never in completion order, so
//     output does not depend on goroutine scheduling;
//   - on failure the error of the lowest-indexed failing item is
//     returned, exactly the error a serial loop would have surfaced
//     first (items below the first known failure still run so that a
//     lower-indexed failure can claim the spot; items above it are
//     skipped rather than simulated and discarded);
//   - cancellation of the caller's context wins over item errors, so an
//     interrupted sweep reports context.Canceled, not a half-run item.
package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Map runs fn over every item on a pool of workers goroutines and
// returns the results in item order.  workers <= 0 selects
// runtime.GOMAXPROCS(0), "as fast as the hardware allows".  fn receives
// the item's index alongside the item so call sites can label work
// without capturing loop variables.
//
// fn must be safe to call concurrently; anything shared between items
// (such as a cached workflow) must be treated as read-only.
func Map[I, R any](ctx context.Context, workers int, items []I, fn func(ctx context.Context, index int, item I) (R, error)) ([]R, error) {
	results := make([]R, len(items))
	err := Stream(ctx, workers, items, fn, func(i int, r R) error {
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// Stream is Map for long grids: each result is handed to emit in item
// order as soon as it and every earlier item have finished, while later
// items are still computing.  An error from emit aborts the sweep and is
// returned.
func Stream[I, R any](ctx context.Context, workers int, items []I, fn func(ctx context.Context, index int, item I) (R, error), emit func(index int, r R) error) error {
	if fn == nil {
		return fmt.Errorf("sweep: nil item function")
	}
	if emit == nil {
		return fmt.Errorf("sweep: nil emit function")
	}
	if len(items) == 0 {
		return ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(items) {
		workers = len(items)
	}

	// ictx stops the workers when the collector bails out early (emit
	// error); the caller's ctx still decides the returned error.
	ictx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]R, len(items))
	errs := make([]error, len(items))
	done := make([]chan struct{}, len(items))
	for i := range done {
		done[i] = make(chan struct{})
	}
	var next atomic.Int64
	// minFailed is the lowest index known to have failed.  Items above it
	// are skipped (their results would be discarded anyway); items below
	// it must still run, because one of them failing would become the
	// error a serial loop surfaces first.  minFailed only decreases, so
	// the lowest recorded failure is always below every skipped index and
	// the returned error is deterministic.
	var minFailed atomic.Int64
	minFailed.Store(int64(len(items)))
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			runWorker(ictx, &next, &minFailed, items, results, errs, done, fn)
		}()
	}

	// Collect in item order on the caller's goroutine.
	var sweepErr error
collect:
	for i := range items {
		select {
		case <-ctx.Done():
			break collect
		case <-done[i]:
		}
		if errs[i] != nil {
			sweepErr = errs[i]
			break collect
		}
		if err := emit(i, results[i]); err != nil {
			sweepErr = err
			break collect
		}
	}
	cancel()
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return err
	}
	return sweepErr
}

// runWorker is the per-item loop each pool goroutine runs: pull the
// next index, simulate it (or skip it if a lower-indexed failure
// already decides the sweep's error), and close the item's done
// channel so the collector can emit in order.  This is the sweep
// kernel -- it runs once per grid point, so its loop body must not
// allocate.
//
//repro:hot
func runWorker[I, R any](ictx context.Context, next, minFailed *atomic.Int64, items []I, results []R, errs []error, done []chan struct{}, fn func(ctx context.Context, index int, item I) (R, error)) {
	for {
		i := int(next.Add(1)) - 1
		if i >= len(items) {
			return
		}
		// A canceled sweep stops pulling work; items already in
		// flight on other workers finish on their own.  Unfinished
		// done channels stay open; the collector watches ctx too.
		if ictx.Err() != nil {
			return
		}
		if int64(i) > minFailed.Load() {
			close(done[i])
			continue
		}
		results[i], errs[i] = fn(ictx, i, items[i])
		if errs[i] != nil {
			for {
				cur := minFailed.Load()
				if int64(i) >= cur || minFailed.CompareAndSwap(cur, int64(i)) {
					break
				}
			}
		}
		close(done[i])
	}
}
