package advisor

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/montage"
	"repro/internal/units"
)

func fixedOptions() []Option {
	// Shaped like the paper's Fig. 6 numbers (4-degree sweep).
	return []Option{
		{1, 9.10, units.Duration(84.4 * units.SecondsPerHour)},
		{2, 9.11, units.Duration(42.5 * units.SecondsPerHour)},
		{4, 9.18, units.Duration(21.5 * units.SecondsPerHour)},
		{8, 9.38, units.Duration(11.0 * units.SecondsPerHour)},
		{16, 9.80, units.Duration(5.8 * units.SecondsPerHour)},
		{32, 10.64, units.Duration(3.2 * units.SecondsPerHour)},
		{64, 12.33, units.Duration(1.8 * units.SecondsPerHour)},
		{128, 15.72, units.Duration(1.2 * units.SecondsPerHour)},
	}
}

func TestParetoFrontier(t *testing.T) {
	opts := fixedOptions()
	frontier := ParetoFrontier(opts)
	// Cost strictly increases while time strictly decreases, so every
	// option is non-dominated.
	if len(frontier) != len(opts) {
		t.Fatalf("frontier has %d options, want %d", len(frontier), len(opts))
	}
	// Add a dominated option: slower AND more expensive than 16 procs.
	opts = append(opts, Option{Processors: 24, Cost: 11, Time: units.Duration(7 * units.SecondsPerHour)})
	frontier = ParetoFrontier(opts)
	for _, o := range frontier {
		if o.Processors == 24 {
			t.Error("dominated option survived")
		}
	}
}

func TestCheapestWithin(t *testing.T) {
	opts := fixedOptions()
	got, err := CheapestWithin(opts, units.Duration(6*units.SecondsPerHour))
	if err != nil {
		t.Fatal(err)
	}
	if got.Processors != 16 {
		t.Errorf("cheapest within 6 h = %d procs, want 16", got.Processors)
	}
	if _, err := CheapestWithin(opts, 1); err == nil {
		t.Error("impossible deadline accepted")
	}
}

func TestFastestUnder(t *testing.T) {
	opts := fixedOptions()
	got, err := FastestUnder(opts, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got.Processors != 16 {
		t.Errorf("fastest under $10 = %d procs, want 16", got.Processors)
	}
	if _, err := FastestUnder(opts, 1); err == nil {
		t.Error("impossible budget accepted")
	}
}

func TestRecommendMatchesPaperCompromise(t *testing.T) {
	// §6: "If the application provisions 16 processors ... the total cost
	// of 500 mosaics would be $4,625, not much more than in the 1
	// processor case, while giving a relatively reasonable turnaround."
	got, err := Recommend(fixedOptions(), 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if got.Processors != 16 {
		t.Errorf("Recommend = %d procs, want the paper's 16", got.Processors)
	}
	if _, err := Recommend(nil, 0.1); err == nil {
		t.Error("empty options accepted")
	}
	if _, err := Recommend(fixedOptions(), -1); err == nil {
		t.Error("negative slack accepted")
	}
}

func TestRecommendOnRealSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("4-degree sweep is slow")
	}
	w, err := montage.Generate(montage.FourDegree())
	if err != nil {
		t.Fatal(err)
	}
	points, err := core.ProvisioningSweep(w, core.GeometricProcessors(), core.DefaultPlan())
	if err != nil {
		t.Fatal(err)
	}
	got, err := Recommend(FromSweep(points), 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if got.Processors != 16 {
		t.Errorf("measured sweep recommends %d procs, want 16", got.Processors)
	}
}

func TestExploreMatchesSweep(t *testing.T) {
	w, err := montage.Cached(montage.OneDegree())
	if err != nil {
		t.Fatal(err)
	}
	procs := []int{1, 4, 16}
	points, err := core.ProvisioningSweep(w, procs, core.DefaultPlan())
	if err != nil {
		t.Fatal(err)
	}
	got, err := Explore(context.Background(), w, procs, core.DefaultPlan())
	if err != nil {
		t.Fatal(err)
	}
	if want := FromSweep(points); !reflect.DeepEqual(got, want) {
		t.Errorf("Explore = %+v, want %+v", got, want)
	}
}

func TestExploreCancellation(t *testing.T) {
	w, err := montage.Cached(montage.OneDegree())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Explore(ctx, w, []int{1, 2}, core.DefaultPlan()); !errors.Is(err, context.Canceled) {
		t.Errorf("Explore under canceled ctx: %v, want context.Canceled", err)
	}
}

func sampleMetrics() exec.Metrics {
	return exec.Metrics{
		Processors:         16,
		ExecTime:           units.Duration(units.SecondsPerHour),
		BytesIn:            units.Bytes(units.GB),
		BytesOut:           units.Bytes(2 * units.GB),
		StorageByteSeconds: units.GB * units.SecondsPerMonth,
		CPUSeconds:         8 * units.SecondsPerHour,
	}
}

func TestRecommendSpot(t *testing.T) {
	baseline := Option{Processors: 16, Cost: 1.00, Time: 3600}
	choices := []SpotChoice{
		{Processors: 16, CheckpointInterval: 0, Cost: 0.80, Makespan: 7200},    // cheap but 2x slower
		{Processors: 16, CheckpointInterval: 600, Cost: 0.55, Makespan: 4500},  // best: cheapest within bound
		{Processors: 32, CheckpointInterval: 600, Cost: 0.70, Makespan: 3900},  // within bound, pricier
		{Processors: 32, CheckpointInterval: 0, Cost: 1.20, Makespan: 3700},    // not cheaper at all
		{Processors: 16, CheckpointInterval: 1800, Cost: 0.55, Makespan: 5000}, // ties on cost, slower
	}
	advice, err := RecommendSpot(baseline, choices, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if !advice.UseSpot {
		t.Fatal("spot not recommended despite a 45% saving within the slowdown bound")
	}
	if advice.Choice.CheckpointInterval != 600 || advice.Choice.Processors != 16 {
		t.Errorf("chose %+v, want the 16-proc 600 s-checkpoint run", advice.Choice)
	}
	if advice.Savings < 0.44 || advice.Savings > 0.46 {
		t.Errorf("savings = %v, want 0.45", advice.Savings)
	}

	// With a tight slowdown bound nothing qualifies: stay on demand.
	advice, err = RecommendSpot(baseline, choices, 1.05)
	if err != nil {
		t.Fatal(err)
	}
	if advice.UseSpot {
		t.Errorf("recommended %+v despite no choice within a 5%% slowdown", advice.Choice)
	}
	if advice.Savings != 0 {
		t.Errorf("savings = %v without a recommendation", advice.Savings)
	}

	if _, err := RecommendSpot(Option{Cost: 1}, choices, 1.5); err == nil {
		t.Error("zero baseline turnaround accepted")
	}
	if _, err := RecommendSpot(baseline, choices, 0.5); err == nil {
		t.Error("sub-1 max slowdown accepted")
	}
}

// TestRecommendSpotFleetSplit checks that mixed-fleet choices carry
// their split through the recommendation: the advice names how many
// processors to buy reliably, not just a pool size.
func TestRecommendSpotFleetSplit(t *testing.T) {
	baseline := Option{Processors: 16, Cost: 1.00, Time: 3600}
	choices := []SpotChoice{
		{Processors: 16, OnDemand: 0, CheckpointInterval: 300, Cost: 0.60, Makespan: 6000},  // cheapest, too slow
		{Processors: 16, OnDemand: 4, CheckpointInterval: 300, Cost: 0.65, Makespan: 4800},  // best within bound
		{Processors: 16, OnDemand: 12, CheckpointInterval: 300, Cost: 0.90, Makespan: 3900}, // safe but pricier
	}
	advice, err := RecommendSpot(baseline, choices, 1.4)
	if err != nil {
		t.Fatal(err)
	}
	if !advice.UseSpot {
		t.Fatal("mixed fleet not recommended despite a qualifying split")
	}
	if advice.Choice.OnDemand != 4 {
		t.Errorf("recommended split = %d reliable, want 4", advice.Choice.OnDemand)
	}
}

func TestRankProviders(t *testing.T) {
	cheapCompute := cost.Amazon2008()
	cheapCompute.CPUPerHour = 0.01
	cheapStorage := cost.Amazon2008()
	cheapStorage.StoragePerGBMonth = 0.01
	providers := []Provider{
		{"amazon", cost.Amazon2008()},
		{"compute-discounter", cheapCompute},
		{"storage-discounter", cheapStorage},
	}
	ranked, err := RankProviders(providers, sampleMetrics(), core.OnDemand)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 3 {
		t.Fatalf("ranked %d providers, want 3", len(ranked))
	}
	// CPU dominates this run, so the compute discounter wins.
	if ranked[0].Provider.Name != "compute-discounter" {
		t.Errorf("winner = %q, want compute-discounter", ranked[0].Provider.Name)
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Cost.Total() < ranked[i-1].Cost.Total() {
			t.Error("ranking not sorted by total cost")
		}
	}
}

func TestRankProvidersErrors(t *testing.T) {
	if _, err := RankProviders(nil, sampleMetrics(), core.OnDemand); err == nil {
		t.Error("empty provider list accepted")
	}
	bad := cost.Amazon2008()
	bad.CPUPerHour = -1
	if _, err := RankProviders([]Provider{{"bad", bad}}, sampleMetrics(), core.OnDemand); err == nil {
		t.Error("invalid pricing accepted")
	}
	if _, err := RankProviders([]Provider{{"a", cost.Amazon2008()}}, sampleMetrics(), core.Billing(9)); err == nil {
		t.Error("bogus billing accepted")
	}
}

// Property: the Pareto frontier never contains a dominated option, and
// every excluded option is dominated by some frontier member.
func TestPropParetoCorrect(t *testing.T) {
	f := func(raw []struct {
		C uint16
		T uint16
	}) bool {
		if len(raw) == 0 {
			return true
		}
		opts := make([]Option, len(raw))
		for i, r := range raw {
			opts[i] = Option{
				Processors: i + 1,
				Cost:       units.Money(r.C) + 1,
				Time:       units.Duration(r.T) + 1,
			}
		}
		frontier := ParetoFrontier(opts)
		inFrontier := make(map[int]bool)
		for _, f := range frontier {
			inFrontier[f.Processors] = true
		}
		dominates := func(a, b Option) bool {
			return a.Cost <= b.Cost && a.Time <= b.Time && (a.Cost < b.Cost || a.Time < b.Time)
		}
		for _, o := range opts {
			if inFrontier[o.Processors] {
				for _, f := range frontier {
					if f.Processors != o.Processors && dominates(f, o) {
						return false // frontier member dominated
					}
				}
			} else {
				found := false
				for _, f := range frontier {
					if dominates(f, o) || (f.Cost == o.Cost && f.Time == o.Time) {
						found = true
						break
					}
				}
				if !found {
					return false // excluded but not dominated
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
