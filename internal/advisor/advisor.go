// Package advisor turns sweep measurements into provisioning decisions:
// the reasoning the paper performs by hand in §6 ("If the application
// provisions 16 processors ... not much more than in the 1 processor
// case, while giving a relatively reasonable turnaround time") and in
// its conclusions about future multi-provider clouds.
package advisor

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dag"
	"repro/internal/exec"
	"repro/internal/units"
)

// Option is one provisioning choice: a pool size with its measured cost
// and turnaround.
type Option struct {
	Processors int
	Cost       units.Money
	Time       units.Duration
}

// Explore measures the provisioning options for wf by running the
// Question-1 sweep through the concurrent sweep engine and converting
// the points into options: the one-call path from "which pool size?" to
// a ranked decision basis.
func Explore(ctx context.Context, wf *dag.Workflow, processors []int, plan core.Plan) ([]Option, error) {
	points, err := core.ProvisioningSweepContext(ctx, wf, processors, plan)
	if err != nil {
		return nil, fmt.Errorf("advisor: explore: %w", err)
	}
	return FromSweep(points), nil
}

// FromSweep converts provisioning-sweep points into options.
func FromSweep(points []core.SweepPoint) []Option {
	opts := make([]Option, len(points))
	for i, p := range points {
		opts[i] = Option{
			Processors: p.Processors,
			Cost:       p.Result.Cost.Total(),
			Time:       p.Result.Metrics.ExecTime,
		}
	}
	return opts
}

// ParetoFrontier returns the non-dominated options (no other option is
// both cheaper and faster), sorted by cost ascending.
func ParetoFrontier(opts []Option) []Option {
	var frontier []Option
	for _, o := range opts {
		dominated := false
		for _, other := range opts {
			if other == o {
				continue
			}
			if other.Cost <= o.Cost && other.Time <= o.Time &&
				(other.Cost < o.Cost || other.Time < o.Time) {
				dominated = true
				break
			}
		}
		if !dominated {
			frontier = append(frontier, o)
		}
	}
	sort.Slice(frontier, func(i, j int) bool {
		if frontier[i].Cost != frontier[j].Cost {
			return frontier[i].Cost < frontier[j].Cost
		}
		return frontier[i].Time < frontier[j].Time
	})
	return frontier
}

// CheapestWithin returns the cheapest option whose turnaround meets the
// deadline.
func CheapestWithin(opts []Option, deadline units.Duration) (Option, error) {
	best, found := Option{}, false
	for _, o := range opts {
		if o.Time <= deadline && (!found || o.Cost < best.Cost) {
			best, found = o, true
		}
	}
	if !found {
		return Option{}, fmt.Errorf("advisor: no option meets deadline %v", deadline)
	}
	return best, nil
}

// FastestUnder returns the fastest option whose cost fits the budget.
func FastestUnder(opts []Option, budget units.Money) (Option, error) {
	best, found := Option{}, false
	for _, o := range opts {
		if o.Cost <= budget && (!found || o.Time < best.Time) {
			best, found = o, true
		}
	}
	if !found {
		return Option{}, fmt.Errorf("advisor: no option fits budget %v", budget)
	}
	return best, nil
}

// Recommend picks the paper's compromise: the fastest option whose cost
// stays within costSlack (a fraction, e.g. 0.10 for 10%) of the cheapest
// option.  On the 4-degree sweep with 10% slack this selects the
// 16-processor pool, matching the paper's own reading of Fig. 6.
func Recommend(opts []Option, costSlack float64) (Option, error) {
	if len(opts) == 0 {
		return Option{}, fmt.Errorf("advisor: no options")
	}
	if costSlack < 0 {
		return Option{}, fmt.Errorf("advisor: negative cost slack %v", costSlack)
	}
	minCost := opts[0].Cost
	for _, o := range opts {
		if o.Cost < minCost {
			minCost = o.Cost
		}
	}
	limit := minCost * units.Money(1+costSlack)
	best, found := Option{}, false
	for _, o := range opts {
		if o.Cost <= limit && (!found || o.Time < best.Time) {
			best, found = o, true
		}
	}
	if !found {
		return Option{}, fmt.Errorf("advisor: no option within %.0f%% of the minimum cost", costSlack*100)
	}
	return best, nil
}

// SpotChoice is one measured spot configuration on the cost-reliability
// frontier: a pool size, fleet split and checkpoint interval with the
// run's dollar cost and turnaround under a sampled revocation schedule.
type SpotChoice struct {
	Processors int
	// OnDemand is the reliable sub-pool of a mixed fleet: processors
	// bought at the full rate that revocations cannot touch.  0 means
	// an all-spot fleet.
	OnDemand           int
	CheckpointInterval units.Duration // 0 means restart from scratch
	Cost               units.Money
	Makespan           units.Duration
}

// SpotAdvice is RecommendSpot's outcome: whether to buy interruptible
// capacity at all, and if so which frontier point.
type SpotAdvice struct {
	UseSpot  bool
	Choice   SpotChoice // meaningful only when UseSpot
	Baseline Option
	// Savings is the fraction of the baseline bill the chosen spot
	// configuration saves (0 when UseSpot is false).
	Savings float64
}

// RecommendSpot picks the cheapest spot configuration that undercuts
// the on-demand baseline while keeping its makespan within maxSlowdown
// times the baseline turnaround (ties go to the faster choice).  When
// the choices carry mixed-fleet splits, the recommendation is therefore
// also a fleet split: how many processors to buy reliably versus on the
// spot market.  When no choice qualifies, the advice is to stay on
// demand: a discount that arrives later than tolerated, or that wasted
// work has eaten, is no discount.
func RecommendSpot(baseline Option, choices []SpotChoice, maxSlowdown float64) (SpotAdvice, error) {
	if baseline.Time <= 0 {
		return SpotAdvice{}, fmt.Errorf("advisor: non-positive baseline turnaround %v", baseline.Time)
	}
	if maxSlowdown < 1 {
		return SpotAdvice{}, fmt.Errorf("advisor: max slowdown %v below 1", maxSlowdown)
	}
	advice := SpotAdvice{Baseline: baseline}
	limit := units.Duration(float64(baseline.Time) * maxSlowdown)
	for _, c := range choices {
		if c.Cost >= baseline.Cost || c.Makespan > limit {
			continue
		}
		if !advice.UseSpot || c.Cost < advice.Choice.Cost ||
			(c.Cost == advice.Choice.Cost && c.Makespan < advice.Choice.Makespan) {
			advice.UseSpot = true
			advice.Choice = c
		}
	}
	if advice.UseSpot && baseline.Cost > 0 {
		advice.Savings = float64((baseline.Cost - advice.Choice.Cost) / baseline.Cost)
	}
	return advice, nil
}

// Provider is a named fee schedule, for the paper's closing speculation
// that "some providers will have a cheaper rate for compute resources
// while others will have a cheaper rate for storage".
type Provider struct {
	Name    string
	Pricing cost.Pricing
}

// ProviderCost is one provider's price for a measured run.
type ProviderCost struct {
	Provider Provider
	Cost     cost.Breakdown
}

// RankProviders prices the same measured run under every provider's fee
// schedule and returns them cheapest first.  Billing selects provisioned
// or on-demand CPU charging.
func RankProviders(providers []Provider, m exec.Metrics, billing core.Billing) ([]ProviderCost, error) {
	if len(providers) == 0 {
		return nil, fmt.Errorf("advisor: no providers")
	}
	out := make([]ProviderCost, 0, len(providers))
	for _, p := range providers {
		if err := p.Pricing.Validate(); err != nil {
			return nil, fmt.Errorf("advisor: provider %q: %w", p.Name, err)
		}
		var b cost.Breakdown
		switch billing {
		case core.Provisioned:
			b = p.Pricing.Provisioned(m)
		case core.OnDemand:
			b = p.Pricing.OnDemand(m)
		default:
			return nil, fmt.Errorf("advisor: unknown billing %d", billing)
		}
		out = append(out, ProviderCost{Provider: p, Cost: b})
	}
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].Cost.Total() < out[j].Cost.Total()
	})
	return out, nil
}
