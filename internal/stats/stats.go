// Package stats holds the small numeric helpers shared by the
// experiment harness: geometric parameter sweeps, step-function
// integrals, and series summaries.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Geometric returns n values start, start*ratio, start*ratio^2, ...,
// the progression the paper uses for both processor counts and CCR
// sweeps.
func Geometric(start, ratio float64, n int) ([]float64, error) {
	if n <= 0 {
		return nil, fmt.Errorf("stats: non-positive length %d", n)
	}
	if start <= 0 || ratio <= 0 {
		return nil, fmt.Errorf("stats: geometric sequence needs positive start and ratio")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= ratio
	}
	return out, nil
}

// StepIntegral computes the area under a right-continuous step function
// given as sorted (x, y) breakpoints, from the first breakpoint to end.
// The function holds value y[i] on [x[i], x[i+1]).
func StepIntegral(xs, ys []float64, end float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: xs and ys lengths differ (%d vs %d)", len(xs), len(ys))
	}
	if len(xs) == 0 {
		return 0, nil
	}
	if !sort.Float64sAreSorted(xs) {
		return 0, fmt.Errorf("stats: xs not sorted")
	}
	if end < xs[len(xs)-1] {
		return 0, fmt.Errorf("stats: end %v before last breakpoint %v", end, xs[len(xs)-1])
	}
	var area float64
	for i := 0; i+1 < len(xs); i++ {
		area += ys[i] * (xs[i+1] - xs[i])
	}
	area += ys[len(ys)-1] * (end - xs[len(xs)-1])
	return area, nil
}

// Summary describes a sample of float64 values.
type Summary struct {
	N         int
	Min, Max  float64
	Mean, Sum float64
	Median    float64
	StdDev    float64
}

// Summarize computes a Summary; an empty input yields a zero Summary.
func Summarize(values []float64) Summary {
	if len(values) == 0 {
		return Summary{}
	}
	s := Summary{N: len(values), Min: math.Inf(1), Max: math.Inf(-1)}
	for _, v := range values {
		s.Sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = s.Sum / float64(s.N)
	var ss float64
	for _, v := range values {
		d := v - s.Mean
		ss += d * d
	}
	s.StdDev = math.Sqrt(ss / float64(s.N))
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// RelErr returns |got-want| / max(|want|, eps): the relative deviation
// the EXPERIMENTS.md comparisons report between our measurements and the
// paper's published values.
func RelErr(got, want float64) float64 {
	denom := math.Abs(want)
	if denom < 1e-12 {
		denom = 1e-12
	}
	return math.Abs(got-want) / denom
}
