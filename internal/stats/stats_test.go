package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGeometric(t *testing.T) {
	got, err := Geometric(1, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 4, 8, 16, 32, 64, 128}
	if len(got) != len(want) {
		t.Fatalf("length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("got[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if _, err := Geometric(0, 2, 3); err == nil {
		t.Error("zero start accepted")
	}
	if _, err := Geometric(1, 0, 3); err == nil {
		t.Error("zero ratio accepted")
	}
	if _, err := Geometric(1, 2, 0); err == nil {
		t.Error("zero length accepted")
	}
}

func TestStepIntegral(t *testing.T) {
	// f = 100 on [0,10), 150 on [10,20), 50 on [20,30].
	got, err := StepIntegral([]float64{0, 10, 20}, []float64{100, 150, 50}, 30)
	if err != nil {
		t.Fatal(err)
	}
	if got != 3000 {
		t.Errorf("integral = %v, want 3000", got)
	}
	if _, err := StepIntegral([]float64{0, 1}, []float64{1}, 2); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := StepIntegral([]float64{1, 0}, []float64{1, 1}, 2); err == nil {
		t.Error("unsorted xs accepted")
	}
	if _, err := StepIntegral([]float64{0, 10}, []float64{1, 1}, 5); err == nil {
		t.Error("end before last breakpoint accepted")
	}
	if got, err := StepIntegral(nil, nil, 5); err != nil || got != 0 {
		t.Errorf("empty integral = %v, %v; want 0, nil", got, err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Min != 1 || s.Max != 4 || s.Sum != 10 || s.Mean != 2.5 {
		t.Errorf("bad summary: %+v", s)
	}
	if s.Median != 2.5 {
		t.Errorf("median = %v, want 2.5", s.Median)
	}
	odd := Summarize([]float64{5, 1, 3})
	if odd.Median != 3 {
		t.Errorf("odd median = %v, want 3", odd.Median)
	}
	if zero := Summarize(nil); zero.N != 0 {
		t.Errorf("empty summary: %+v", zero)
	}
	// StdDev of {2,4,4,4,5,5,7,9} is 2.
	sd := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(sd.StdDev-2) > 1e-12 {
		t.Errorf("stddev = %v, want 2", sd.StdDev)
	}
}

func TestRelErr(t *testing.T) {
	if got := RelErr(110, 100); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("RelErr(110,100) = %v, want 0.1", got)
	}
	if got := RelErr(1, 0); got <= 0 {
		t.Errorf("RelErr(1,0) = %v, want large positive", got)
	}
	if got := RelErr(5, 5); got != 0 {
		t.Errorf("RelErr(5,5) = %v, want 0", got)
	}
}

// Property: geometric sequences are strictly increasing for ratio > 1
// and each term is ratio x the previous.
func TestPropGeometric(t *testing.T) {
	f := func(start, ratio uint8, n uint8) bool {
		s := float64(start%50) + 1
		r := 1 + float64(ratio%30+1)/10
		k := int(n%20) + 1
		seq, err := Geometric(s, r, k)
		if err != nil {
			return false
		}
		for i := 1; i < len(seq); i++ {
			if seq[i] <= seq[i-1] {
				return false
			}
			if math.Abs(seq[i]/seq[i-1]-r) > 1e-9 {
				return false
			}
		}
		return seq[0] == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Summarize bounds hold: Min <= Median <= Max, Min <= Mean <= Max.
func TestPropSummaryBounds(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, len(raw))
		for i, r := range raw {
			vals[i] = float64(r)
		}
		s := Summarize(vals)
		return s.Min <= s.Median && s.Median <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max && s.StdDev >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
