package store

import (
	"bytes"
	"fmt"
	"testing"
)

// benchBody approximates a v2 run document: a few kilobytes of
// repetitive JSON, the shape the store actually holds.
func benchBody() []byte {
	var buf bytes.Buffer
	buf.WriteString("{\n  \"version\": 2,\n  \"rows\": [\n")
	for i := 0; i < 64; i++ {
		fmt.Fprintf(&buf, "    {\"index\": %d, \"makespan\": %d.5, \"total\": %d.25},\n", i, i*7, i*3)
	}
	buf.WriteString("  ]\n}\n")
	return buf.Bytes()
}

func BenchmarkStorePut(b *testing.B) {
	s, err := Open(b.TempDir(), Options{WireVersion: 2})
	if err != nil {
		b.Fatal(err)
	}
	body := benchBody()
	b.SetBytes(int64(len(body)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Put(fmt.Sprintf("bench-key-%d", i), body); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStoreGet(b *testing.B) {
	s, err := Open(b.TempDir(), Options{WireVersion: 2})
	if err != nil {
		b.Fatal(err)
	}
	body := benchBody()
	if err := s.Put("bench-key", body); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(body)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Get("bench-key"); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkStoreOpenScan(b *testing.B) {
	dir := b.TempDir()
	seed, err := Open(dir, Options{WireVersion: 2})
	if err != nil {
		b.Fatal(err)
	}
	body := benchBody()
	const entries = 256
	for i := 0; i < entries; i++ {
		if err := seed.Put(fmt.Sprintf("scan-key-%d", i), body); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := Open(dir, Options{WireVersion: 2})
		if err != nil {
			b.Fatal(err)
		}
		if s.Len() != entries {
			b.Fatalf("scan indexed %d entries, want %d", s.Len(), entries)
		}
	}
}
