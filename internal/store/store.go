// Package store is a disk-backed content-addressed result store: the
// persistence tier under the server's in-memory LRU.  Every simulation
// is a deterministic function of its canonical run key, so a result
// written once under the SHA-256 of that key can be served forever --
// across process restarts, and by every replica sharing the volume --
// byte-identical to what re-simulating would produce.
//
// On-disk layout: one file per entry at <dir>/<hh>/<hash>.rpr, where
// hash is the hex SHA-256 of the canonical key and hh its first two
// characters (a fan-out that keeps directories small).  Writes are
// write-once: the envelope is assembled in a temp file in <dir>,
// fsync'd, and atomically renamed into place, so readers never observe
// a partial entry and a crash leaves at worst a stale temp file that
// the next Open sweeps away.
//
// Each file is a versioned envelope:
//
//	[8]byte  magic "RPSTORE1"
//	uint32   envelope format version (big-endian)
//	uint32   wire schema version of the body
//	uint32   canonical key length
//	[]byte   canonical key (verified against the requested key on read)
//	[]byte   gzip stream of the result document bytes
//
// The gzip trailer's CRC-32 covers the body, so a flipped bit anywhere
// in the payload fails the read.  Reads are corruption-tolerant by
// contract: any malformed entry -- bad magic, truncated header, wrong
// key, failed CRC, alien wire version -- is deleted, counted, and
// reported as a miss, never as an error; the caller recomputes and the
// next Put repairs the entry.
//
// Eviction is a byte-bounded LRU: the in-memory index (rebuilt at Open
// by scanning the directory, ordered by file modification time as the
// atime approximation) tracks access recency, and a Put that pushes the
// store over its bound deletes the least-recently-used entries first.
package store

import (
	"bytes"
	"compress/gzip"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// magic opens every envelope; the trailing 1 is the format generation.
var magic = [8]byte{'R', 'P', 'S', 'T', 'O', 'R', 'E', '1'}

// envelopeVersion is the on-disk format version this package writes.
const envelopeVersion = 1

// maxKeyLen bounds the canonical-key field of an envelope header, so a
// corrupted length word cannot make a read allocate gigabytes.
const maxKeyLen = 1 << 20

// suffix is the entry file extension.
const suffix = ".rpr"

// Options configures a store.
type Options struct {
	// MaxBytes bounds the total size of resident entry files; <= 0 means
	// unbounded.  A Put that crosses the bound evicts least-recently-used
	// entries until the store fits again.
	MaxBytes int64
	// WireVersion is the schema version of the bodies this store holds.
	// Entries recorded under a different wire version read as misses (and
	// are deleted), so a schema bump quietly retires the old generation.
	WireVersion int
}

// Stats is a snapshot of the store's counters and occupancy.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Writes    uint64
	Evictions uint64
	// Corrupt counts entries that failed to read back -- bad magic,
	// truncated envelope, key mismatch, CRC failure, or a stale wire
	// version.  Each one also counts as a miss.
	Corrupt uint64
	Entries int
	Bytes   int64
	// MaxBytes echoes the configured bound (0 = unbounded).
	MaxBytes int64
	Dir      string
}

// entry is one resident result in the recency list.
type entry struct {
	hash string
	size int64
	// prev/next link the intrusive LRU list; head side is most recent.
	prev, next *entry
}

// Store is the content-addressed result store.  It is safe for
// concurrent use; the envelope encode/decode work runs outside the
// index lock, so readers and writers only serialize on bookkeeping.
type Store struct {
	dir  string
	opts Options

	hits      atomic.Uint64
	misses    atomic.Uint64
	writes    atomic.Uint64
	evictions atomic.Uint64
	corrupt   atomic.Uint64

	mu    sync.Mutex
	index map[string]*entry
	head  *entry // most recently used
	tail  *entry // least recently used
	bytes int64
}

// Open creates (or reopens) the store rooted at dir: stale temp files
// from interrupted writes are removed and the in-memory index is rebuilt
// by scanning the entry files, ordered oldest-first by modification time
// so the LRU starts from an atime approximation.
func Open(dir string, opts Options) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, opts: opts, index: make(map[string]*entry)}
	type scanned struct {
		hash string
		size int64
		mod  time.Time
	}
	var found []scanned
	top, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	for _, d := range top {
		if !d.IsDir() {
			// Interrupted writes leave tmp-* files at the top level; a
			// reopen is the natural point to sweep them.
			if strings.HasPrefix(d.Name(), "tmp-") {
				os.Remove(filepath.Join(dir, d.Name())) //nolint:errcheck
			}
			continue
		}
		sub, err := os.ReadDir(filepath.Join(dir, d.Name()))
		if err != nil {
			continue
		}
		for _, f := range sub {
			name := f.Name()
			if f.IsDir() || !strings.HasSuffix(name, suffix) {
				continue
			}
			hash := strings.TrimSuffix(name, suffix)
			if !validHash(hash) || !strings.HasPrefix(hash, d.Name()) {
				continue
			}
			info, err := f.Info()
			if err != nil {
				continue
			}
			found = append(found, scanned{hash: hash, size: info.Size(), mod: info.ModTime()})
		}
	}
	// Oldest first, hash as the deterministic tie-break; pushing each to
	// the front leaves the newest entry most recently used.
	sort.Slice(found, func(i, j int) bool {
		if !found[i].mod.Equal(found[j].mod) {
			return found[i].mod.Before(found[j].mod)
		}
		return found[i].hash < found[j].hash
	})
	for _, f := range found {
		e := &entry{hash: f.hash, size: f.size}
		s.index[f.hash] = e
		s.pushFront(e)
		s.bytes += f.size
	}
	return s, nil
}

// Dir reports the store's root directory.
func (s *Store) Dir() string { return s.dir }

// HashKey returns the content address of a canonical key: its SHA-256,
// hex-encoded.  Exposed so callers (tests, the shard router) can find
// an entry's file without re-deriving the scheme.
func HashKey(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}

// path maps a hash to its entry file.
func (s *Store) path(hash string) string {
	return filepath.Join(s.dir, hash[:2], hash+suffix)
}

// Get returns the stored body for key, or ok=false on a miss.  A
// malformed entry is deleted and reported as a miss (with the Corrupt
// counter stepped); Get never returns an error.
func (s *Store) Get(key string) (body []byte, ok bool) {
	hash := HashKey(key)
	raw, err := os.ReadFile(s.path(hash))
	if err != nil {
		// Not present (or vanished under a concurrent eviction): a plain
		// miss.  The index entry, if any, is dropped so occupancy stays
		// honest when another replica sharing the volume evicted the file.
		s.misses.Add(1)
		s.forget(hash)
		return nil, false
	}
	body, err = s.decode(raw, key)
	if err != nil {
		// Bad entry: count it, remove it, and let the caller recompute --
		// the next Put repairs the slot.
		s.corrupt.Add(1)
		s.misses.Add(1)
		s.forget(hash)
		os.Remove(s.path(hash)) //nolint:errcheck
		return nil, false
	}
	s.hits.Add(1)
	s.touch(hash, int64(len(raw)))
	return body, true
}

// Put stores body under key, atomically: temp file, fsync, rename.  A
// Put over an existing entry replaces it (the repair path after a
// corrupt read); determinism makes the replacement byte-identical
// anyway.  Eviction to the byte bound happens after the write, newest
// entry exempt.
func (s *Store) Put(key string, body []byte) error {
	if key == "" {
		return fmt.Errorf("store: empty key")
	}
	hash := HashKey(key)
	env, err := s.encode(key, body)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Join(s.dir, hash[:2]), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(s.dir, "tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(env); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmpName, s.path(hash))
	}
	if err != nil {
		os.Remove(tmpName) //nolint:errcheck
		return fmt.Errorf("store: %w", err)
	}
	syncDir(filepath.Join(s.dir, hash[:2]))
	s.writes.Add(1)
	s.record(hash, int64(len(env)))
	return nil
}

// Len reports the resident entry count.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Stats snapshots the counters and occupancy.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	entries, bytes := len(s.index), s.bytes
	s.mu.Unlock()
	return Stats{
		Hits:      s.hits.Load(),
		Misses:    s.misses.Load(),
		Writes:    s.writes.Load(),
		Evictions: s.evictions.Load(),
		Corrupt:   s.corrupt.Load(),
		Entries:   entries,
		Bytes:     bytes,
		MaxBytes:  s.opts.MaxBytes,
		Dir:       s.dir,
	}
}

// encode assembles the on-disk envelope for (key, body).
func (s *Store) encode(key string, body []byte) ([]byte, error) {
	var buf bytes.Buffer
	buf.Write(magic[:])
	var word [4]byte
	binary.BigEndian.PutUint32(word[:], envelopeVersion)
	buf.Write(word[:])
	binary.BigEndian.PutUint32(word[:], uint32(s.opts.WireVersion))
	buf.Write(word[:])
	if len(key) > maxKeyLen {
		return nil, fmt.Errorf("store: key of %d bytes exceeds the %d-byte bound", len(key), maxKeyLen)
	}
	binary.BigEndian.PutUint32(word[:], uint32(len(key)))
	buf.Write(word[:])
	buf.WriteString(key)
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(body); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := zw.Close(); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return buf.Bytes(), nil
}

// decode parses an envelope and returns the body, verifying magic,
// versions, the recorded key, and (via the gzip trailer) the body CRC.
func (s *Store) decode(raw []byte, key string) ([]byte, error) {
	const header = len(magic) + 12
	if len(raw) < header || !bytes.Equal(raw[:len(magic)], magic[:]) {
		return nil, fmt.Errorf("store: bad envelope header")
	}
	if v := binary.BigEndian.Uint32(raw[8:12]); v != envelopeVersion {
		return nil, fmt.Errorf("store: envelope format v%d, want v%d", v, envelopeVersion)
	}
	if v := binary.BigEndian.Uint32(raw[12:16]); int(v) != s.opts.WireVersion {
		return nil, fmt.Errorf("store: body wire v%d, want v%d", v, s.opts.WireVersion)
	}
	keyLen := binary.BigEndian.Uint32(raw[16:20])
	if keyLen > maxKeyLen || int(keyLen) > len(raw)-header {
		return nil, fmt.Errorf("store: key length %d out of range", keyLen)
	}
	stored := raw[header : header+int(keyLen)]
	if string(stored) != key {
		return nil, fmt.Errorf("store: entry records a different key")
	}
	zr, err := gzip.NewReader(bytes.NewReader(raw[header+int(keyLen):]))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	body, err := io.ReadAll(zr)
	if cerr := zr.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return body, nil
}

// ---- index bookkeeping ----

// pushFront links e as most recently used.  Caller holds mu.
func (s *Store) pushFront(e *entry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

// unlink removes e from the recency list.  Caller holds mu.
func (s *Store) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// touch marks hash most recently used, (re)inserting it if a concurrent
// replica wrote the file behind this index's back.
func (s *Store) touch(hash string, size int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.index[hash]
	if !ok {
		e = &entry{hash: hash, size: size}
		s.index[hash] = e
		s.bytes += size
		s.pushFront(e)
		return
	}
	s.unlink(e)
	s.pushFront(e)
}

// forget drops hash from the index (the file is already gone or bad).
func (s *Store) forget(hash string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.index[hash]; ok {
		s.unlink(e)
		delete(s.index, hash)
		s.bytes -= e.size
	}
}

// record registers a completed write and evicts past the byte bound,
// least recently used first; the entry just written is exempt, so one
// oversized result does not thrash the store empty.
func (s *Store) record(hash string, size int64) {
	s.mu.Lock()
	if e, ok := s.index[hash]; ok {
		s.bytes += size - e.size
		e.size = size
		s.unlink(e)
		s.pushFront(e)
	} else {
		e = &entry{hash: hash, size: size}
		s.index[hash] = e
		s.bytes += size
		s.pushFront(e)
	}
	var evict []string
	for s.opts.MaxBytes > 0 && s.bytes > s.opts.MaxBytes && s.tail != nil && s.tail.hash != hash {
		victim := s.tail
		s.unlink(victim)
		delete(s.index, victim.hash)
		s.bytes -= victim.size
		evict = append(evict, victim.hash)
	}
	s.mu.Unlock()
	for _, h := range evict {
		os.Remove(s.path(h)) //nolint:errcheck
		s.evictions.Add(1)
	}
}

// validHash reports whether name looks like a hex SHA-256.
func validHash(name string) bool {
	if len(name) != sha256.Size*2 {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// syncDir fsyncs a directory so a just-renamed entry survives power
// loss.  Best effort: filesystems that refuse directory fsync (or
// platforms without it) still get the atomic rename.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()  //nolint:errcheck
	d.Close() //nolint:errcheck
}
