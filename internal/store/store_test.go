package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func open(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := open(t, t.TempDir(), Options{WireVersion: 2})
	body := []byte(`{"answer": 42}` + "\n")
	if _, ok := s.Get("k1"); ok {
		t.Fatal("hit on an empty store")
	}
	if err := s.Put("k1", body); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("k1")
	if !ok {
		t.Fatal("miss after Put")
	}
	if !bytes.Equal(got, body) {
		t.Fatalf("body mismatch: got %q want %q", got, body)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Writes != 1 || st.Corrupt != 0 {
		t.Fatalf("counters off: %+v", st)
	}
	if st.Entries != 1 || st.Bytes <= 0 {
		t.Fatalf("occupancy off: %+v", st)
	}
}

func TestSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	body := []byte(strings.Repeat("persist me\n", 100))
	s1 := open(t, dir, Options{WireVersion: 2})
	if err := s1.Put("key-a", body); err != nil {
		t.Fatal(err)
	}
	s2 := open(t, dir, Options{WireVersion: 2})
	if s2.Len() != 1 {
		t.Fatalf("reopened store indexes %d entries, want 1", s2.Len())
	}
	got, ok := s2.Get("key-a")
	if !ok || !bytes.Equal(got, body) {
		t.Fatalf("reopened store: ok=%v body match=%v", ok, bytes.Equal(got, body))
	}
}

func TestSharedVolumeVisibility(t *testing.T) {
	// A second replica opened on the same directory sees entries written
	// after its scan: the index miss falls through to a disk probe.
	dir := t.TempDir()
	s1 := open(t, dir, Options{WireVersion: 2})
	s2 := open(t, dir, Options{WireVersion: 2})
	if err := s1.Put("late", []byte("written after s2 opened")); err != nil {
		t.Fatal(err)
	}
	if got, ok := s2.Get("late"); !ok || string(got) != "written after s2 opened" {
		t.Fatalf("replica did not see the shared write: ok=%v got=%q", ok, got)
	}
	if s2.Len() != 1 {
		t.Fatalf("probe should have indexed the entry; Len=%d", s2.Len())
	}
}

func TestCorruptEntryIsMissAndRepaired(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{WireVersion: 2})
	body := []byte("precious result bytes")
	if err := s.Put("k", body); err != nil {
		t.Fatal(err)
	}
	path := s.path(HashKey("k"))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the gzip stream: the CRC must catch it.
	raw[len(raw)-5] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k"); ok {
		t.Fatal("corrupted entry served as a hit")
	}
	st := s.Stats()
	if st.Corrupt != 1 {
		t.Fatalf("corrupt counter = %d, want 1", st.Corrupt)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt entry not deleted: %v", err)
	}
	// Re-put repairs the slot.
	if err := s.Put("k", body); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get("k"); !ok || !bytes.Equal(got, body) {
		t.Fatal("repair Put did not restore the entry")
	}
}

func TestTruncatedHeaderIsMiss(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{WireVersion: 2})
	if err := s.Put("k", []byte("body")); err != nil {
		t.Fatal(err)
	}
	path := s.path(HashKey("k"))
	if err := os.WriteFile(path, []byte("RPST"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k"); ok {
		t.Fatal("truncated entry served as a hit")
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Fatalf("corrupt counter = %d, want 1", st.Corrupt)
	}
}

func TestWireVersionMismatchIsMiss(t *testing.T) {
	dir := t.TempDir()
	s1 := open(t, dir, Options{WireVersion: 2})
	if err := s1.Put("k", []byte("v2 body")); err != nil {
		t.Fatal(err)
	}
	s3 := open(t, dir, Options{WireVersion: 3})
	if _, ok := s3.Get("k"); ok {
		t.Fatal("entry from an older wire version served as a hit")
	}
	if st := s3.Stats(); st.Corrupt != 1 {
		t.Fatalf("corrupt counter = %d, want 1", st.Corrupt)
	}
}

func TestKeyMismatchIsMiss(t *testing.T) {
	// Two different keys whose files are hand-swapped: the recorded key
	// check must refuse to serve someone else's bytes.
	dir := t.TempDir()
	s := open(t, dir, Options{WireVersion: 2})
	if err := s.Put("a", []byte("body a")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("b", []byte("body b")); err != nil {
		t.Fatal(err)
	}
	pa, pb := s.path(HashKey("a")), s.path(HashKey("b"))
	rawA, err := os.ReadFile(pa)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(pb, rawA, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("b"); ok {
		t.Fatal("entry recording key a served for key b")
	}
}

func TestEvictionByLRU(t *testing.T) {
	dir := t.TempDir()
	// Size the bound so roughly three entries fit.
	body := bytes.Repeat([]byte("x0123456789abcdef"), 256) // incompressible-ish? gzip will squash; measure below
	s := open(t, dir, Options{WireVersion: 2})
	if err := s.Put("probe", body); err != nil {
		t.Fatal(err)
	}
	per := s.Stats().Bytes
	s2 := open(t, t.TempDir(), Options{WireVersion: 2, MaxBytes: per*3 + per/2})
	for i := 0; i < 3; i++ {
		if err := s2.Put(fmt.Sprintf("k%d", i), body); err != nil {
			t.Fatal(err)
		}
	}
	// Touch k0 so k1 is the LRU victim.
	if _, ok := s2.Get("k0"); !ok {
		t.Fatal("k0 should be resident")
	}
	if err := s2.Put("k3", body); err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get("k1"); ok {
		t.Fatal("k1 should have been evicted as least recently used")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := s2.Get(k); !ok {
			t.Fatalf("%s should have survived eviction", k)
		}
	}
	st := s2.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if st.Bytes > st.MaxBytes {
		t.Fatalf("store over its bound: %d > %d", st.Bytes, st.MaxBytes)
	}
}

func TestOversizedEntryIsKept(t *testing.T) {
	s := open(t, t.TempDir(), Options{WireVersion: 2, MaxBytes: 1})
	if err := s.Put("big", bytes.Repeat([]byte("payload"), 100)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("big"); !ok {
		t.Fatal("newest entry must survive even over the bound")
	}
}

func TestScanOrdersByModTime(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{WireVersion: 2})
	body := []byte("b")
	for _, k := range []string{"old", "mid", "new"} {
		if err := s.Put(k, body); err != nil {
			t.Fatal(err)
		}
	}
	// Backdate "old" well below the others so the reopened scan ranks it
	// least recently used.
	past := time.Now().Add(-time.Hour) //repro:nondet-ok test fixture mtime, not simulation state
	if err := os.Chtimes(s.path(HashKey("old")), past, past); err != nil {
		t.Fatal(err)
	}
	per := s.Stats().Bytes / 3
	r := open(t, dir, Options{WireVersion: 2, MaxBytes: s.Stats().Bytes - per/2})
	if err := r.Put("fresh", body); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Get("old"); ok {
		t.Fatal("backdated entry should have been the eviction victim")
	}
}

func TestOpenSweepsStaleTempFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "tmp-123456"), []byte("half a write"), 0o644); err != nil {
		t.Fatal(err)
	}
	open(t, dir, Options{WireVersion: 2})
	if _, err := os.Stat(filepath.Join(dir, "tmp-123456")); !os.IsNotExist(err) {
		t.Fatal("stale temp file survived Open")
	}
}

func TestConcurrentPutGet(t *testing.T) {
	s := open(t, t.TempDir(), Options{WireVersion: 2, MaxBytes: 1 << 20})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				k := fmt.Sprintf("k%d", i%10)
				want := []byte(fmt.Sprintf("body %d", i%10))
				if err := s.Put(k, want); err != nil {
					t.Error(err)
					return
				}
				if got, ok := s.Get(k); ok && !bytes.Equal(got, want) {
					t.Errorf("got %q want %q", got, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestEmptyKeyRejected(t *testing.T) {
	s := open(t, t.TempDir(), Options{WireVersion: 2})
	if err := s.Put("", []byte("x")); err == nil {
		t.Fatal("empty key accepted")
	}
}
