// Package cloudsim models the cloud substrate of the paper's simulator:
// a compute resource with a fixed number of processors, an S3-like shared
// storage system with time-weighted usage accounting, and a fixed-
// bandwidth link between the user and the cloud.
//
// The paper's custom GridSim modification was exactly this storage
// accounting: "creating a curve that shows the amount of storage used at
// the resource with the passage of time and then calculating the area
// under the curve."  Storage reproduces that curve and its integral.
package cloudsim

import (
	"fmt"

	"repro/internal/units"
)

// UsagePoint is one step of the storage usage curve.
type UsagePoint struct {
	Time  units.Duration
	Bytes units.Bytes
}

// Storage is a shared storage resource with infinite capacity and exact
// byte-seconds accounting.  It is not safe for concurrent use; the
// simulation kernel is single-threaded by design.
type Storage struct {
	files       map[string]units.Bytes
	current     units.Bytes
	peak        units.Bytes
	lastTime    units.Duration
	byteSeconds float64
	recordCurve bool
	curve       []UsagePoint
}

// NewStorage returns an empty storage system.  When recordCurve is true,
// every change is appended to a usage curve retrievable via Curve (used
// by tests and the report tooling; large simulations can leave it off).
func NewStorage(recordCurve bool) *Storage {
	s := &Storage{files: make(map[string]units.Bytes), recordCurve: recordCurve}
	if recordCurve {
		s.curve = append(s.curve, UsagePoint{0, 0})
	}
	return s
}

// advance accumulates the area under the usage curve up to now.
func (s *Storage) advance(now units.Duration) {
	if now < s.lastTime {
		panic(fmt.Sprintf("cloudsim: storage time went backwards: %v < %v", now, s.lastTime))
	}
	s.byteSeconds += float64(s.current) * (now - s.lastTime).Seconds()
	s.lastTime = now
}

// Put stores a file.  Storing a name that is already present is an error:
// the execution engines never legitimately double-store.
func (s *Storage) Put(now units.Duration, name string, size units.Bytes) error {
	if size < 0 {
		return fmt.Errorf("cloudsim: negative size %d for %q", size, name)
	}
	if _, dup := s.files[name]; dup {
		return fmt.Errorf("cloudsim: file %q already stored", name)
	}
	s.advance(now)
	s.files[name] = size
	s.current += size
	if s.current > s.peak {
		s.peak = s.current
	}
	if s.recordCurve {
		s.curve = append(s.curve, UsagePoint{now, s.current})
	}
	return nil
}

// Delete removes a file; deleting an absent file is an error.
func (s *Storage) Delete(now units.Duration, name string) error {
	size, ok := s.files[name]
	if !ok {
		return fmt.Errorf("cloudsim: delete of absent file %q", name)
	}
	s.advance(now)
	delete(s.files, name)
	s.current -= size
	if s.recordCurve {
		s.curve = append(s.curve, UsagePoint{now, s.current})
	}
	return nil
}

// Has reports whether the named file is currently stored.
func (s *Storage) Has(name string) bool {
	_, ok := s.files[name]
	return ok
}

// Current returns the bytes stored right now.
func (s *Storage) Current() units.Bytes { return s.current }

// Peak returns the high-water mark of stored bytes.
func (s *Storage) Peak() units.Bytes { return s.peak }

// Count returns the number of stored files.
func (s *Storage) Count() int { return len(s.files) }

// ByteSeconds returns the area under the usage curve from time zero up
// to now (inclusive of the span since the last change).
func (s *Storage) ByteSeconds(now units.Duration) float64 {
	s.advance(now)
	return s.byteSeconds
}

// Curve returns the recorded usage curve (nil unless recording was
// requested at construction).
func (s *Storage) Curve() []UsagePoint { return s.curve }
