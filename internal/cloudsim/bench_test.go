package cloudsim

import (
	"fmt"
	"testing"

	"repro/internal/units"
)

// BenchmarkStoragePutDelete measures the accounting hot path.
func BenchmarkStoragePutDelete(b *testing.B) {
	names := make([]string, 1000)
	for i := range names {
		names[i] = fmt.Sprintf("f%04d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewStorage(false)
		now := units.Duration(0)
		for _, n := range names {
			now++
			if err := s.Put(now, n, 1000); err != nil {
				b.Fatal(err)
			}
		}
		for _, n := range names {
			now++
			if err := s.Delete(now, n); err != nil {
				b.Fatal(err)
			}
		}
		_ = s.ByteSeconds(now)
	}
}

// BenchmarkLinkReserve measures FIFO transfer booking.
func BenchmarkLinkReserve(b *testing.B) {
	l, err := NewLink(units.Mbps(10))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := l.Reserve(0, 1000, In); err != nil {
			b.Fatal(err)
		}
	}
}
