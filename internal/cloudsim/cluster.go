package cloudsim

import (
	"fmt"

	"repro/internal/units"
)

// Cluster is the provisioned compute resource: a pool of identical
// processors (the paper simulates "a single compute resource ... with the
// number of processors greater than the maximum parallelism" for the
// on-demand experiments, and 1..128 processors for the provisioned ones).
//
// The pool may be split into two sub-pools for mixed-fleet scenarios: a
// reliable on-demand floor that can never be revoked, and a revocable
// spot remainder.  NewCluster builds a uniform (all-spot, fully
// revocable) pool, which reproduces both the paper's reliable runs (no
// revocations ever arrive) and the whole-pool spot scenarios.
//
// Besides slot management it integrates busy-processor-seconds and
// capacity-processor-seconds over time.  The former gives the on-demand
// CPU bill; the ratio of the two is CPU utilization against the capacity
// that was actually available, which stays honest when revocations
// shrink the pool mid-run.
type Cluster struct {
	provisioned int // slots originally provisioned
	reliable    int // on-demand sub-pool: the revocation floor
	total       int // slots currently present (provisioned minus revoked)
	busy        int
	busyRel     int // busy slots in the reliable sub-pool

	lastTime               units.Duration
	busyProcSeconds        float64
	spotBusyProcSeconds    float64
	capacityProcSeconds    float64
	reliableCapProcSeconds float64
	peakBusy               int
	acquires               int
}

// NewCluster returns a uniform cluster with n processors (n >= 1): no
// reliable floor, so the whole pool is revocable.
func NewCluster(n int) (*Cluster, error) {
	return NewFleet(n, 0)
}

// NewFleet returns a mixed fleet: n processors total, of which reliable
// form an on-demand sub-pool that revocations can never touch.  The
// remaining n-reliable processors are the revocable spot sub-pool.
func NewFleet(n, reliable int) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("cloudsim: cluster needs at least 1 processor, got %d", n)
	}
	if reliable < 0 || reliable > n {
		return nil, fmt.Errorf("cloudsim: reliable sub-pool %d outside [0, %d]", reliable, n)
	}
	return &Cluster{provisioned: n, reliable: reliable, total: n}, nil
}

func (c *Cluster) advance(now units.Duration) {
	if now < c.lastTime {
		panic(fmt.Sprintf("cloudsim: cluster time went backwards: %v < %v", now, c.lastTime))
	}
	dt := (now - c.lastTime).Seconds()
	c.busyProcSeconds += float64(c.busy) * dt
	c.spotBusyProcSeconds += float64(c.busy-c.busyRel) * dt
	c.capacityProcSeconds += float64(c.total) * dt
	c.reliableCapProcSeconds += float64(c.reliable) * dt
	c.lastTime = now
}

// Acquire takes one free processor, reporting false when none is free.
// On a mixed fleet the reliable sub-pool fills first; sub-pool-aware
// schedulers should use AcquireReliable/AcquireSpot directly.
func (c *Cluster) Acquire(now units.Duration) bool {
	if c.AcquireReliable(now) {
		return true
	}
	return c.AcquireSpot(now)
}

// AcquireReliable takes one free processor from the reliable on-demand
// sub-pool, reporting false when it is full (always, on a uniform pool).
func (c *Cluster) AcquireReliable(now units.Duration) bool {
	if c.busyRel >= c.reliable {
		return false
	}
	c.advance(now)
	c.busy++
	c.busyRel++
	c.noteAcquire()
	return true
}

// AcquireSpot takes one free processor from the revocable spot sub-pool,
// reporting false when none is free there.
func (c *Cluster) AcquireSpot(now units.Duration) bool {
	if c.busy-c.busyRel >= c.total-c.reliable {
		return false
	}
	c.advance(now)
	c.busy++
	c.noteAcquire()
	return true
}

func (c *Cluster) noteAcquire() {
	c.acquires++
	if c.busy > c.peakBusy {
		c.peakBusy = c.busy
	}
}

// Release returns one processor to the pool: a spot slot while any is
// busy, else a reliable one.  Sub-pool-aware callers should use
// ReleaseReliable/ReleaseSpot, which check the right sub-pool.
func (c *Cluster) Release(now units.Duration) error {
	if c.busy > c.busyRel {
		return c.ReleaseSpot(now)
	}
	return c.ReleaseReliable(now)
}

// ReleaseReliable returns one processor to the reliable sub-pool.
func (c *Cluster) ReleaseReliable(now units.Duration) error {
	if c.busyRel == 0 {
		return fmt.Errorf("cloudsim: release with no reliable processor busy")
	}
	c.advance(now)
	c.busy--
	c.busyRel--
	return nil
}

// ReleaseSpot returns one processor to the spot sub-pool.
func (c *Cluster) ReleaseSpot(now units.Duration) error {
	if c.busy-c.busyRel == 0 {
		return fmt.Errorf("cloudsim: release with no spot processor busy")
	}
	c.advance(now)
	c.busy--
	return nil
}

// Revoke removes k idle processors from the spot sub-pool (a spot
// capacity reclaim).  The reliable on-demand sub-pool is never touched;
// the caller must evict enough running spot tasks first, since revoking
// below the spot busy count is a simulation bug.
func (c *Cluster) Revoke(now units.Duration, k int) error {
	if k < 0 || k > c.SpotTotal() {
		return fmt.Errorf("cloudsim: cannot revoke %d of %d spot processors", k, c.SpotTotal())
	}
	if k > c.SpotFree() {
		return fmt.Errorf("cloudsim: revoking %d processors would strand %d busy tasks on %d spot slots",
			k, c.busy-c.busyRel, c.SpotTotal()-k)
	}
	c.advance(now)
	c.total -= k
	return nil
}

// Restore returns k previously revoked processors to the pool.
func (c *Cluster) Restore(now units.Duration, k int) error {
	if k < 0 || c.total+k > c.provisioned {
		return fmt.Errorf("cloudsim: cannot restore %d processors to %d of %d provisioned",
			k, c.total, c.provisioned)
	}
	c.advance(now)
	c.total += k
	return nil
}

// Provisioned returns the originally provisioned processor count,
// regardless of revocations.
func (c *Cluster) Provisioned() int { return c.provisioned }

// Reliable returns the size of the reliable on-demand sub-pool.
func (c *Cluster) Reliable() int { return c.reliable }

// Total returns the processors currently present in the pool.
func (c *Cluster) Total() int { return c.total }

// Busy returns the processors currently in use.
func (c *Cluster) Busy() int { return c.busy }

// Free returns the processors currently idle.
func (c *Cluster) Free() int { return c.total - c.busy }

// FreeReliable returns the idle processors of the reliable sub-pool.
func (c *Cluster) FreeReliable() int { return c.reliable - c.busyRel }

// SpotTotal returns the spot-sub-pool processors currently present.
func (c *Cluster) SpotTotal() int { return c.total - c.reliable }

// SpotFree returns the idle processors of the spot sub-pool.
func (c *Cluster) SpotFree() int { return c.SpotTotal() - (c.busy - c.busyRel) }

// PeakBusy returns the maximum concurrently busy processors observed.
func (c *Cluster) PeakBusy() int { return c.peakBusy }

// Acquires returns how many successful Acquire calls were made.
func (c *Cluster) Acquires() int { return c.acquires }

// BusyProcSeconds returns the integral of busy processors over time up
// to now: the CPU-seconds actually consumed.
func (c *Cluster) BusyProcSeconds(now units.Duration) float64 {
	c.advance(now)
	return c.busyProcSeconds
}

// SpotBusyProcSeconds returns the integral of busy spot-sub-pool
// processors over time up to now: the CPU-seconds billed at the spot
// rate in a mixed fleet.
func (c *Cluster) SpotBusyProcSeconds(now units.Duration) float64 {
	c.advance(now)
	return c.spotBusyProcSeconds
}

// CapacityProcSeconds returns the integral of present processors over
// time up to now: the processor-seconds that were actually available,
// shrinking through every revocation window and growing back on restore.
func (c *Cluster) CapacityProcSeconds(now units.Duration) float64 {
	c.advance(now)
	return c.capacityProcSeconds
}

// ReliableCapacityProcSeconds returns the reliable sub-pool's share of
// the capacity integral up to now.  Revocations never touch the
// reliable floor, so this is exactly reliable-processors x elapsed
// time; the spot share is the remainder of CapacityProcSeconds.
func (c *Cluster) ReliableCapacityProcSeconds(now units.Duration) float64 {
	c.advance(now)
	return c.reliableCapProcSeconds
}

// Utilization returns BusyProcSeconds divided by CapacityProcSeconds
// over the window [0, now]: consumption against the capacity that was
// actually available, not the originally provisioned pool.  0 when no
// capacity-time has accumulated.
func (c *Cluster) Utilization(now units.Duration) float64 {
	c.advance(now)
	if c.capacityProcSeconds <= 0 {
		return 0
	}
	return c.busyProcSeconds / c.capacityProcSeconds
}
