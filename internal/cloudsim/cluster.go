package cloudsim

import (
	"fmt"

	"repro/internal/units"
)

// Cluster is the provisioned compute resource: a fixed pool of identical
// processors (the paper simulates "a single compute resource ... with the
// number of processors greater than the maximum parallelism" for the
// on-demand experiments, and 1..128 processors for the provisioned ones).
//
// Besides slot management it integrates busy-processor-seconds, which
// gives CPU utilization and the on-demand CPU bill.
type Cluster struct {
	provisioned int // slots originally provisioned
	total       int // slots currently present (provisioned minus revoked)
	busy        int

	lastTime        units.Duration
	busyProcSeconds float64
	peakBusy        int
	acquires        int
}

// NewCluster returns a cluster with n processors (n >= 1).
func NewCluster(n int) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("cloudsim: cluster needs at least 1 processor, got %d", n)
	}
	return &Cluster{provisioned: n, total: n}, nil
}

func (c *Cluster) advance(now units.Duration) {
	if now < c.lastTime {
		panic(fmt.Sprintf("cloudsim: cluster time went backwards: %v < %v", now, c.lastTime))
	}
	c.busyProcSeconds += float64(c.busy) * (now - c.lastTime).Seconds()
	c.lastTime = now
}

// Acquire takes one free processor, reporting false when none is free.
func (c *Cluster) Acquire(now units.Duration) bool {
	if c.busy >= c.total {
		return false
	}
	c.advance(now)
	c.busy++
	c.acquires++
	if c.busy > c.peakBusy {
		c.peakBusy = c.busy
	}
	return true
}

// Release returns one processor to the pool.
func (c *Cluster) Release(now units.Duration) error {
	if c.busy == 0 {
		return fmt.Errorf("cloudsim: release with no processor busy")
	}
	c.advance(now)
	c.busy--
	return nil
}

// Revoke removes k idle processors from the pool (a spot capacity
// reclaim).  The caller must evict enough running tasks first: revoking
// below the busy count is a simulation bug.
func (c *Cluster) Revoke(now units.Duration, k int) error {
	if k < 0 || k > c.total {
		return fmt.Errorf("cloudsim: cannot revoke %d of %d processors", k, c.total)
	}
	if c.total-k < c.busy {
		return fmt.Errorf("cloudsim: revoking %d processors would strand %d busy tasks on %d slots",
			k, c.busy, c.total-k)
	}
	c.advance(now)
	c.total -= k
	return nil
}

// Restore returns k previously revoked processors to the pool.
func (c *Cluster) Restore(now units.Duration, k int) error {
	if k < 0 || c.total+k > c.provisioned {
		return fmt.Errorf("cloudsim: cannot restore %d processors to %d of %d provisioned",
			k, c.total, c.provisioned)
	}
	c.advance(now)
	c.total += k
	return nil
}

// Provisioned returns the originally provisioned processor count,
// regardless of revocations.
func (c *Cluster) Provisioned() int { return c.provisioned }

// Total returns the processors currently present in the pool.
func (c *Cluster) Total() int { return c.total }

// Busy returns the processors currently in use.
func (c *Cluster) Busy() int { return c.busy }

// Free returns the processors currently idle.
func (c *Cluster) Free() int { return c.total - c.busy }

// PeakBusy returns the maximum concurrently busy processors observed.
func (c *Cluster) PeakBusy() int { return c.peakBusy }

// Acquires returns how many successful Acquire calls were made.
func (c *Cluster) Acquires() int { return c.acquires }

// BusyProcSeconds returns the integral of busy processors over time up
// to now: the CPU-seconds actually consumed.
func (c *Cluster) BusyProcSeconds(now units.Duration) float64 {
	c.advance(now)
	return c.busyProcSeconds
}

// Utilization returns BusyProcSeconds divided by total processor-seconds
// over the window [0, now]; 0 when now is 0.
func (c *Cluster) Utilization(now units.Duration) float64 {
	if now <= 0 {
		return 0
	}
	return c.BusyProcSeconds(now) / (float64(c.total) * now.Seconds())
}
