package cloudsim

import (
	"fmt"

	"repro/internal/units"
)

// Direction labels a transfer relative to the cloud, matching Amazon's
// asymmetric fee schedule (data in vs. data out).
type Direction int

const (
	// In is user/archive -> cloud storage.
	In Direction = iota
	// Out is cloud storage -> user.
	Out
)

// String returns "in" or "out".
func (d Direction) String() string {
	if d == In {
		return "in"
	}
	return "out"
}

// Link is the fixed-bandwidth connection between the user and the cloud
// storage resource (10 Mbps in the paper).  Transfers are serialized
// FIFO: the link is a single shared pipe, so a transfer requested while
// another is in flight starts when the pipe frees up.  This matches the
// paper's single-user, single-resource setup.
type Link struct {
	bw     units.Bandwidth
	freeAt units.Duration

	bytesIn   units.Bytes
	bytesOut  units.Bytes
	transfers int
	busyTime  units.Duration
}

// NewLink returns a link with the given bandwidth.
func NewLink(bw units.Bandwidth) (*Link, error) {
	if bw <= 0 {
		return nil, fmt.Errorf("cloudsim: non-positive bandwidth %v", bw)
	}
	return &Link{bw: bw}, nil
}

// Bandwidth returns the link's rate.
func (l *Link) Bandwidth() units.Bandwidth { return l.bw }

// Reserve books a transfer of size bytes in the given direction, at or
// after now, and returns its start and completion times.  Accounting
// (bytes moved per direction) happens immediately; the caller schedules
// whatever should occur at the completion time.
func (l *Link) Reserve(now units.Duration, size units.Bytes, dir Direction) (start, end units.Duration, err error) {
	if size < 0 {
		return 0, 0, fmt.Errorf("cloudsim: negative transfer size %d", size)
	}
	start = now
	if l.freeAt > start {
		start = l.freeAt
	}
	end = start + l.bw.TransferTime(size)
	l.freeAt = end
	l.busyTime += end - start
	l.transfers++
	switch dir {
	case In:
		l.bytesIn += size
	case Out:
		l.bytesOut += size
	default:
		return 0, 0, fmt.Errorf("cloudsim: unknown direction %d", dir)
	}
	return start, end, nil
}

// Record books a transfer that does not contend for the shared pipe: it
// starts immediately and proceeds at the full link bandwidth, modeling an
// independent stream (the paper's remote-I/O tasks each open their own
// connection to the user; only the bulk stage-in/stage-out of the
// Regular/Cleanup models is a single serialized stream).  Byte accounting
// is identical to Reserve.
func (l *Link) Record(now units.Duration, size units.Bytes, dir Direction) (start, end units.Duration, err error) {
	if size < 0 {
		return 0, 0, fmt.Errorf("cloudsim: negative transfer size %d", size)
	}
	end = now + l.bw.TransferTime(size)
	l.transfers++
	switch dir {
	case In:
		l.bytesIn += size
	case Out:
		l.bytesOut += size
	default:
		return 0, 0, fmt.Errorf("cloudsim: unknown direction %d", dir)
	}
	return now, end, nil
}

// FreeAt returns the earliest time a new transfer could start.
func (l *Link) FreeAt() units.Duration { return l.freeAt }

// BytesIn returns total bytes moved into the cloud.
func (l *Link) BytesIn() units.Bytes { return l.bytesIn }

// BytesOut returns total bytes moved out of the cloud.
func (l *Link) BytesOut() units.Bytes { return l.bytesOut }

// Transfers returns the number of transfers reserved.
func (l *Link) Transfers() int { return l.transfers }

// BusyTime returns the cumulative time the link spent transferring.
func (l *Link) BusyTime() units.Duration { return l.busyTime }
