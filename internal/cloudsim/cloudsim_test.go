package cloudsim

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func TestStorageByteSeconds(t *testing.T) {
	s := NewStorage(true)
	if err := s.Put(0, "a", 100); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(10, "b", 50); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(20, "a"); err != nil {
		t.Fatal(err)
	}
	// [0,10): 100 B; [10,20): 150 B; [20,30): 50 B.
	got := s.ByteSeconds(30)
	want := 100.0*10 + 150*10 + 50*10
	if got != want {
		t.Errorf("ByteSeconds(30) = %v, want %v", got, want)
	}
	if s.Peak() != 150 {
		t.Errorf("Peak = %d, want 150", s.Peak())
	}
	if s.Current() != 50 {
		t.Errorf("Current = %d, want 50", s.Current())
	}
	if s.Count() != 1 || !s.Has("b") || s.Has("a") {
		t.Error("file inventory wrong after delete")
	}
	curve := s.Curve()
	if len(curve) != 4 { // origin + three changes
		t.Errorf("curve has %d points, want 4", len(curve))
	}
}

func TestStorageErrors(t *testing.T) {
	s := NewStorage(false)
	if err := s.Put(0, "a", -1); err == nil {
		t.Error("negative size accepted")
	}
	if err := s.Put(0, "a", 10); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(1, "a", 10); err == nil {
		t.Error("duplicate put accepted")
	}
	if err := s.Delete(2, "ghost"); err == nil {
		t.Error("delete of absent file accepted")
	}
	if s.Curve() != nil {
		t.Error("curve recorded despite recordCurve=false")
	}
}

func TestStorageTimeMonotonicity(t *testing.T) {
	s := NewStorage(false)
	s.Put(10, "a", 1)
	defer func() {
		if recover() == nil {
			t.Error("time going backwards did not panic")
		}
	}()
	s.Put(5, "b", 1)
}

// Property: byte-seconds equals the step-function integral recomputed
// from the recorded curve, for any event sequence.
func TestPropStorageIntegralMatchesCurve(t *testing.T) {
	f := func(ops []struct {
		Dt   uint8
		Size uint16
	}) bool {
		s := NewStorage(true)
		now := units.Duration(0)
		n := 0
		for _, op := range ops {
			now += units.Duration(op.Dt)
			name := string(rune('a' + n%26))
			if s.Has(name) {
				if err := s.Delete(now, name); err != nil {
					return false
				}
			} else {
				if err := s.Put(now, name, units.Bytes(op.Size)); err != nil {
					return false
				}
			}
			n++
		}
		end := now + 100
		got := s.ByteSeconds(end)

		// Recompute from the curve.
		curve := s.Curve()
		var want float64
		for i := 1; i < len(curve); i++ {
			want += float64(curve[i-1].Bytes) * (curve[i].Time - curve[i-1].Time).Seconds()
		}
		want += float64(curve[len(curve)-1].Bytes) * (end - curve[len(curve)-1].Time).Seconds()
		return math.Abs(got-want) <= 1e-6*math.Max(1, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLinkSerializesFIFO(t *testing.T) {
	l, err := NewLink(units.Bandwidth(10)) // 10 B/s
	if err != nil {
		t.Fatal(err)
	}
	s1, e1, err := l.Reserve(0, 100, In) // 10 s transfer
	if err != nil {
		t.Fatal(err)
	}
	if s1 != 0 || e1 != 10 {
		t.Errorf("first transfer [%v,%v], want [0,10]", s1, e1)
	}
	// Requested at t=5 while busy: starts at 10.
	s2, e2, err := l.Reserve(5, 50, Out)
	if err != nil {
		t.Fatal(err)
	}
	if s2 != 10 || e2 != 15 {
		t.Errorf("second transfer [%v,%v], want [10,15]", s2, e2)
	}
	// Requested after the link is free again: starts immediately.
	s3, e3, err := l.Reserve(100, 10, In)
	if err != nil {
		t.Fatal(err)
	}
	if s3 != 100 || e3 != 101 {
		t.Errorf("third transfer [%v,%v], want [100,101]", s3, e3)
	}
	if l.BytesIn() != 110 || l.BytesOut() != 50 {
		t.Errorf("bytes in/out = %d/%d, want 110/50", l.BytesIn(), l.BytesOut())
	}
	if l.Transfers() != 3 {
		t.Errorf("Transfers = %d, want 3", l.Transfers())
	}
	if l.BusyTime() != 16 {
		t.Errorf("BusyTime = %v, want 16", l.BusyTime())
	}
}

func TestLinkErrors(t *testing.T) {
	if _, err := NewLink(0); err == nil {
		t.Error("zero bandwidth accepted")
	}
	l, _ := NewLink(units.Mbps(10))
	if _, _, err := l.Reserve(0, -5, In); err == nil {
		t.Error("negative size accepted")
	}
	if _, _, err := l.Reserve(0, 5, Direction(9)); err == nil {
		t.Error("bogus direction accepted")
	}
}

func TestDirectionString(t *testing.T) {
	if In.String() != "in" || Out.String() != "out" {
		t.Errorf("Direction strings = %q/%q", In.String(), Out.String())
	}
}

// Property: link busy time equals total bytes divided by bandwidth.
func TestPropLinkBusyTime(t *testing.T) {
	f := func(sizes []uint16) bool {
		l, _ := NewLink(units.Bandwidth(1000))
		var total float64
		for i, sz := range sizes {
			dir := In
			if i%2 == 1 {
				dir = Out
			}
			if _, _, err := l.Reserve(0, units.Bytes(sz), dir); err != nil {
				return false
			}
			total += float64(sz)
		}
		want := total / 1000
		return math.Abs(l.BusyTime().Seconds()-want) <= 1e-9*math.Max(1, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestClusterAccounting(t *testing.T) {
	c, err := NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Acquire(0) {
		t.Fatal("first acquire failed")
	}
	if !c.Acquire(0) {
		t.Fatal("second acquire failed")
	}
	if c.Acquire(0) {
		t.Fatal("third acquire on a 2-proc cluster succeeded")
	}
	if c.Busy() != 2 || c.Free() != 0 {
		t.Errorf("busy/free = %d/%d, want 2/0", c.Busy(), c.Free())
	}
	if err := c.Release(10); err != nil {
		t.Fatal(err)
	}
	if err := c.Release(20); err != nil {
		t.Fatal(err)
	}
	// 2 procs busy on [0,10), 1 on [10,20): 2*10 + 1*10 = 30 proc-s.
	if got := c.BusyProcSeconds(20); got != 30 {
		t.Errorf("BusyProcSeconds = %v, want 30", got)
	}
	// Utilization over [0,20] with 2 procs: 30/40.
	if got := c.Utilization(20); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("Utilization = %v, want 0.75", got)
	}
	if c.PeakBusy() != 2 {
		t.Errorf("PeakBusy = %d, want 2", c.PeakBusy())
	}
	if c.Acquires() != 2 {
		t.Errorf("Acquires = %d, want 2", c.Acquires())
	}
	if err := c.Release(20); err == nil {
		t.Error("release with nothing busy accepted")
	}
}

func TestClusterRevokeRestore(t *testing.T) {
	c, err := NewCluster(4)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Acquire(0) || !c.Acquire(0) {
		t.Fatal("acquires failed")
	}
	// Two idle slots can go; a third would strand a busy task.
	if err := c.Revoke(5, 2); err != nil {
		t.Fatal(err)
	}
	if c.Total() != 2 || c.Provisioned() != 4 || c.Free() != 0 {
		t.Errorf("total/provisioned/free = %d/%d/%d, want 2/4/0", c.Total(), c.Provisioned(), c.Free())
	}
	if err := c.Revoke(5, 1); err == nil {
		t.Error("revoking a busy slot accepted")
	}
	if c.Acquire(5) {
		t.Error("acquire succeeded on a fully revoked pool")
	}
	if err := c.Restore(10, 3); err == nil {
		t.Error("restore past the provisioned size accepted")
	}
	if err := c.Restore(10, 2); err != nil {
		t.Fatal(err)
	}
	if c.Total() != 4 || c.Free() != 2 {
		t.Errorf("after restore total/free = %d/%d, want 4/2", c.Total(), c.Free())
	}
	if err := c.Revoke(10, -1); err == nil {
		t.Error("negative revoke accepted")
	}
	if err := c.Revoke(10, 5); err == nil {
		t.Error("revoking more than present accepted")
	}
	// The busy integral is unaffected by capacity changes: 2 busy the
	// whole [0,15) window.
	if err := c.Release(15); err != nil {
		t.Fatal(err)
	}
	if err := c.Release(15); err != nil {
		t.Fatal(err)
	}
	if got := c.BusyProcSeconds(15); got != 30 {
		t.Errorf("BusyProcSeconds = %v, want 30", got)
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(0); err == nil {
		t.Error("zero-processor cluster accepted")
	}
	c, _ := NewCluster(1)
	if got := c.Utilization(0); got != 0 {
		t.Errorf("Utilization(0) = %v, want 0", got)
	}
}

// Regression for the capacity-aware utilization fix: a revoke/restore
// window mid-run must shrink the utilization denominator to the capacity
// that was actually present, not the instantaneous final pool size.
func TestClusterUtilizationIntegratesCapacity(t *testing.T) {
	c, err := NewCluster(4)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Acquire(0) || !c.Acquire(0) {
		t.Fatal("acquires failed")
	}
	// 4 procs present on [0,10), 2 on [10,30), 4 again on [30,40):
	// capacity = 40 + 40 + 40 = 120 proc-s.
	if err := c.Revoke(10, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.Restore(30, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.Release(40); err != nil {
		t.Fatal(err)
	}
	if err := c.Release(40); err != nil {
		t.Fatal(err)
	}
	if got := c.CapacityProcSeconds(40); got != 120 {
		t.Errorf("CapacityProcSeconds = %v, want 120", got)
	}
	// 2 busy the whole [0,40): 80 proc-s.  Utilization = 80/120, not the
	// 80/160 the static 4-proc denominator would misreport.
	if got, want := c.Utilization(40), 80.0/120.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("Utilization = %v, want %v", got, want)
	}
}

func TestFleetSubPools(t *testing.T) {
	if _, err := NewFleet(4, 5); err == nil {
		t.Error("reliable sub-pool larger than the fleet accepted")
	}
	if _, err := NewFleet(4, -1); err == nil {
		t.Error("negative reliable sub-pool accepted")
	}
	c, err := NewFleet(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.Reliable() != 2 || c.SpotTotal() != 2 {
		t.Fatalf("reliable/spot = %d/%d, want 2/2", c.Reliable(), c.SpotTotal())
	}
	if !c.AcquireReliable(0) || !c.AcquireReliable(0) {
		t.Fatal("reliable acquires failed")
	}
	if c.AcquireReliable(0) {
		t.Error("third reliable acquire succeeded on a 2-reliable fleet")
	}
	if !c.AcquireSpot(0) {
		t.Fatal("spot acquire failed")
	}
	if c.FreeReliable() != 0 || c.SpotFree() != 1 {
		t.Errorf("free reliable/spot = %d/%d, want 0/1", c.FreeReliable(), c.SpotFree())
	}
	// Revocations may never touch the reliable floor: only the one idle
	// spot slot can go.
	if err := c.Revoke(10, 2); err == nil {
		t.Error("revoking into the reliable floor accepted")
	}
	if err := c.Revoke(10, 1); err != nil {
		t.Fatal(err)
	}
	if c.Total() != 3 || c.SpotTotal() != 1 || c.SpotFree() != 0 {
		t.Errorf("total/spot/spot-free = %d/%d/%d, want 3/1/0", c.Total(), c.SpotTotal(), c.SpotFree())
	}
	if err := c.ReleaseSpot(20); err != nil {
		t.Fatal(err)
	}
	if err := c.ReleaseSpot(20); err == nil {
		t.Error("spot release with no spot processor busy accepted")
	}
	if err := c.ReleaseReliable(20); err != nil {
		t.Fatal(err)
	}
	// Sub-pool busy integrals: reliable 2 busy on [0,20), spot 1 busy on
	// [0,20); total 3*20 = 60 of which 20 on spot.
	if got := c.BusyProcSeconds(20); got != 60 {
		t.Errorf("BusyProcSeconds = %v, want 60", got)
	}
	if got := c.SpotBusyProcSeconds(20); got != 20 {
		t.Errorf("SpotBusyProcSeconds = %v, want 20", got)
	}
}

// Property: utilization is always within [0, 1].
func TestPropClusterUtilizationBounds(t *testing.T) {
	f := func(events []bool, procs uint8) bool {
		n := int(procs%8) + 1
		c, _ := NewCluster(n)
		now := units.Duration(0)
		for _, acquire := range events {
			now += 1
			if acquire {
				c.Acquire(now)
			} else if c.Busy() > 0 {
				if err := c.Release(now); err != nil {
					return false
				}
			}
		}
		u := c.Utilization(now + 1)
		return u >= 0 && u <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestClusterReliableCapacitySplit(t *testing.T) {
	// 4-proc fleet, 1 reliable: revoke 2 spot slots over [10,30].  Total
	// capacity 4*10 + 2*20 + 4*10 = 120; the reliable share is 1*40.
	c, err := NewFleet(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Revoke(10, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.Restore(30, 2); err != nil {
		t.Fatal(err)
	}
	if got := c.CapacityProcSeconds(40); got != 120 {
		t.Errorf("CapacityProcSeconds = %v, want 120", got)
	}
	if got := c.ReliableCapacityProcSeconds(40); got != 40 {
		t.Errorf("ReliableCapacityProcSeconds = %v, want 40", got)
	}
}
