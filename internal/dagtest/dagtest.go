// Package dagtest generates random layered workflows for property-based
// tests.  The family matches Montage's shape -- levels of independent
// tasks consuming files from earlier levels -- so invariants exercised
// here transfer to the real workload.
package dagtest

import (
	"fmt"
	"math/rand"

	"repro/internal/dag"
	"repro/internal/units"
)

// RandomLayered builds a random layered DAG from a seed.  Level 1 reads
// external inputs; each later task consumes 1-3 files from the previous
// level; terminal files become workflow outputs.  The result is
// finalized and panics on generator bugs (callers treat it as trusted
// input).
func RandomLayered(seed int64) *dag.Workflow {
	rng := rand.New(rand.NewSource(seed))
	w := dag.New(fmt.Sprintf("rand-%d", seed))
	levels := 2 + rng.Intn(4)
	var prev []string

	nIn := 1 + rng.Intn(5)
	for i := 0; i < nIn; i++ {
		name := fmt.Sprintf("in-%d", i)
		mustAddFile(w, name, units.Bytes(1+rng.Intn(100000)), false)
		prev = append(prev, name)
	}

	taskN := 0
	for lv := 1; lv <= levels; lv++ {
		width := 1 + rng.Intn(5)
		last := lv == levels
		var outs []string
		for i := 0; i < width; i++ {
			// Deal the previous level's files round-robin so every file
			// is consumed at least once (real workflows have no unused
			// inputs), then add random extras.
			inputSet := map[string]bool{}
			for j := i; j < len(prev); j += width {
				inputSet[prev[j]] = true
			}
			for extras := rng.Intn(3); extras > 0; extras-- {
				inputSet[prev[rng.Intn(len(prev))]] = true
			}
			inputs := make([]string, 0, len(inputSet))
			for _, name := range prev { // deterministic order
				if inputSet[name] {
					inputs = append(inputs, name)
				}
			}
			out := fmt.Sprintf("f-%d-%d", lv, i)
			mustAddFile(w, out, units.Bytes(1+rng.Intn(100000)), last)
			if _, err := w.AddTask(fmt.Sprintf("t-%d", taskN), "r",
				units.Duration(1+rng.Intn(300)), inputs, []string{out}); err != nil {
				panic(err)
			}
			outs = append(outs, out)
			taskN++
		}
		prev = outs
	}
	// Produced-but-unconsumed files must be outputs or Finalize rejects.
	for _, f := range w.Files() {
		if !f.External() && len(f.Consumers()) == 0 {
			f.Output = true
		}
	}
	if err := w.Finalize(); err != nil {
		panic(err)
	}
	return w
}

func mustAddFile(w *dag.Workflow, name string, size units.Bytes, output bool) {
	if _, err := w.AddFile(name, size, output); err != nil {
		panic(err)
	}
}
