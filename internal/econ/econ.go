// Package econ answers the question the paper's introduction frames but
// defers: when should a project buy its own cluster rather than rent
// from the cloud?  ("Cloud-based outsourcing of computing may be
// attractive to science applications because it can potentially lower
// the costs of purchasing, operating, maintaining, and periodically
// upgrading a local computing infrastructure.")
//
// The model is deliberately first-order: a cluster costs capital
// (amortized linearly) plus monthly operations, serves requests up to
// its CPU capacity, and is compared against the per-request cloud price
// measured by the simulator.
package econ

import (
	"fmt"
	"math"

	"repro/internal/cost"
	"repro/internal/units"
)

// Cluster describes an owned machine pool.
type Cluster struct {
	Processors        int
	CapExPerProc      units.Money // purchase price per processor
	AmortizationYears float64     // straight-line depreciation horizon
	OpExPerProcMonth  units.Money // power, cooling, admin per processor-month
}

// Validate rejects degenerate clusters.
func (c Cluster) Validate() error {
	switch {
	case c.Processors < 1:
		return fmt.Errorf("econ: cluster needs at least 1 processor, got %d", c.Processors)
	case c.CapExPerProc < 0 || c.OpExPerProcMonth < 0:
		return fmt.Errorf("econ: negative cluster cost")
	case c.AmortizationYears <= 0:
		return fmt.Errorf("econ: non-positive amortization horizon %v", c.AmortizationYears)
	}
	return nil
}

// MonthlyCost returns the cluster's all-in monthly cost.
func (c Cluster) MonthlyCost() units.Money {
	capex := units.Money(float64(c.CapExPerProc) / (c.AmortizationYears * 12))
	return units.Money(c.Processors) * (capex + c.OpExPerProcMonth)
}

// CapacityPerMonth returns how many requests the cluster can serve in a
// 30-day month, given the CPU seconds one request consumes.
func (c Cluster) CapacityPerMonth(cpuSecondsPerRequest float64) (float64, error) {
	if cpuSecondsPerRequest <= 0 {
		return 0, fmt.Errorf("econ: non-positive request CPU time %v", cpuSecondsPerRequest)
	}
	return float64(c.Processors) * units.SecondsPerMonth / cpuSecondsPerRequest, nil
}

// Commodity2008 returns a plausible 2008-era cluster cost model: $2,000
// per processor amortized over 3 years plus $30/processor-month of
// operations.
func Commodity2008(processors int) Cluster {
	return Cluster{
		Processors:        processors,
		CapExPerProc:      2000,
		AmortizationYears: 3,
		OpExPerProcMonth:  30,
	}
}

// SpotVerdict says which capacity market a spot comparison favors.
type SpotVerdict int

const (
	// OnDemandWins means reliable on-demand capacity is the better buy.
	OnDemandWins SpotVerdict = iota
	// SpotWins means the discounted interruptible capacity is cheaper
	// and its delay stays within the tolerated slowdown.
	SpotWins
	// SpotTooSlow means spot is cheaper but revocations stretch the run
	// past the tolerated slowdown.
	SpotTooSlow
)

// String names the spot verdict.
func (v SpotVerdict) String() string {
	switch v {
	case SpotWins:
		return "spot-wins"
	case SpotTooSlow:
		return "spot-too-slow"
	default:
		return "on-demand-wins"
	}
}

// SpotComparison weighs a measured spot run against the same request on
// reliable on-demand capacity.
type SpotComparison struct {
	OnDemandCost units.Money
	SpotCost     units.Money
	// Savings is the fraction of the on-demand bill the spot run saves;
	// negative when wasted work eats the whole discount.
	Savings float64
	// Slowdown is spot makespan over on-demand makespan (>= 1 in
	// practice: revocations only ever delay).
	Slowdown float64
	Verdict  SpotVerdict
}

// CompareSpot renders the verdict on two measured runs of the same
// request: spot wins when it is strictly cheaper and its slowdown stays
// within maxSlowdown (e.g. 1.5 tolerates a 50% longer turnaround).
func CompareSpot(onDemand, spot cost.Breakdown, onDemandMakespan, spotMakespan units.Duration, maxSlowdown float64) (SpotComparison, error) {
	if onDemandMakespan <= 0 || spotMakespan <= 0 {
		return SpotComparison{}, fmt.Errorf("econ: non-positive makespan in spot comparison (%v, %v)", onDemandMakespan, spotMakespan)
	}
	if maxSlowdown < 1 {
		return SpotComparison{}, fmt.Errorf("econ: max slowdown %v below 1; even on-demand could not satisfy it", maxSlowdown)
	}
	cmp := SpotComparison{
		OnDemandCost: onDemand.Total(),
		SpotCost:     spot.Total(),
		Slowdown:     float64(spotMakespan / onDemandMakespan),
	}
	if cmp.OnDemandCost > 0 {
		cmp.Savings = float64((cmp.OnDemandCost - cmp.SpotCost) / cmp.OnDemandCost)
	}
	switch {
	case cmp.SpotCost >= cmp.OnDemandCost:
		cmp.Verdict = OnDemandWins
	case cmp.Slowdown > maxSlowdown:
		cmp.Verdict = SpotTooSlow
	default:
		cmp.Verdict = SpotWins
	}
	return cmp, nil
}

// Verdict says which option a comparison favors.
type Verdict int

const (
	// CloudWins means renting is cheaper at the given request rate.
	CloudWins Verdict = iota
	// ClusterWins means owning is cheaper.
	ClusterWins
	// ClusterInsufficient means the cluster cannot sustain the load at
	// all, so the cloud (or a bigger cluster) is required regardless.
	ClusterInsufficient
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case ClusterWins:
		return "cluster-wins"
	case ClusterInsufficient:
		return "cluster-insufficient"
	default:
		return "cloud-wins"
	}
}

// Comparison is the outcome of Compare.
type Comparison struct {
	ClusterMonthly    units.Money
	CloudPerRequest   units.Money
	CloudMonthly      units.Money // at the evaluated request rate
	CapacityPerMonth  float64     // max requests/month the cluster sustains
	BreakEvenRequests float64     // rate at which owning starts to win (+Inf if never)
	Verdict           Verdict
}

// Compare evaluates owning the given cluster against paying the measured
// per-request cloud cost, at a monthly request rate.  cpuSecondsPerRequest
// is the compute one request consumes (it bounds the cluster's
// throughput; the cloud is assumed elastic).
func Compare(c Cluster, cloudPerRequest cost.Breakdown, cpuSecondsPerRequest, requestsPerMonth float64) (Comparison, error) {
	if err := c.Validate(); err != nil {
		return Comparison{}, err
	}
	if requestsPerMonth < 0 {
		return Comparison{}, fmt.Errorf("econ: negative request rate %v", requestsPerMonth)
	}
	capacity, err := c.CapacityPerMonth(cpuSecondsPerRequest)
	if err != nil {
		return Comparison{}, err
	}
	per := cloudPerRequest.Total()
	cmp := Comparison{
		ClusterMonthly:   c.MonthlyCost(),
		CloudPerRequest:  per,
		CloudMonthly:     per * units.Money(requestsPerMonth),
		CapacityPerMonth: capacity,
	}
	if per > 0 {
		cmp.BreakEvenRequests = float64(cmp.ClusterMonthly / per)
	} else {
		cmp.BreakEvenRequests = math.Inf(1)
	}
	switch {
	case requestsPerMonth > capacity:
		cmp.Verdict = ClusterInsufficient
	case cmp.CloudMonthly < cmp.ClusterMonthly:
		cmp.Verdict = CloudWins
	default:
		cmp.Verdict = ClusterWins
	}
	return cmp, nil
}
