package econ

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cost"
	"repro/internal/units"
)

func TestClusterMonthlyCost(t *testing.T) {
	c := Cluster{Processors: 10, CapExPerProc: 3600, AmortizationYears: 3, OpExPerProcMonth: 50}
	// Capex: 3600/36 = $100/proc-month; +$50 opex = $150 x 10 = $1500.
	if got := c.MonthlyCost(); got != 1500 {
		t.Errorf("MonthlyCost = %v, want $1500", got)
	}
}

func TestCommodity2008(t *testing.T) {
	c := Commodity2008(16)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// 2000/36 + 30 = 85.56/proc-month x 16 = $1368.9.
	got := float64(c.MonthlyCost())
	if math.Abs(got-1368.9) > 0.1 {
		t.Errorf("MonthlyCost = %v, want ~$1368.9", got)
	}
}

func TestCapacity(t *testing.T) {
	c := Commodity2008(10)
	// 1-degree mosaic: 5.6 CPU-hours = 20,160 s.
	cap, err := c.CapacityPerMonth(5.6 * units.SecondsPerHour)
	if err != nil {
		t.Fatal(err)
	}
	// 10 procs x 720 h / 5.6 h = 1285.7 requests/month.
	if math.Abs(cap-1285.7) > 0.1 {
		t.Errorf("capacity = %v, want ~1285.7", cap)
	}
	if _, err := c.CapacityPerMonth(0); err == nil {
		t.Error("zero request CPU accepted")
	}
}

func TestClusterValidation(t *testing.T) {
	cases := []Cluster{
		{Processors: 0, CapExPerProc: 1, AmortizationYears: 1},
		{Processors: 1, CapExPerProc: -1, AmortizationYears: 1},
		{Processors: 1, CapExPerProc: 1, AmortizationYears: 0},
		{Processors: 1, CapExPerProc: 1, AmortizationYears: 1, OpExPerProcMonth: -1},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid cluster accepted", i)
		}
	}
}

// oneDegRequest approximates the measured 1-degree request: $0.60 total.
func oneDegRequest() cost.Breakdown {
	return cost.Breakdown{CPU: 0.56, Storage: 0.0001, TransferIn: 0.0136, TransferOut: 0.0278}
}

func TestCompareLowRateFavorsCloud(t *testing.T) {
	c := Commodity2008(10)
	cmp, err := Compare(c, oneDegRequest(), 5.6*units.SecondsPerHour, 100)
	if err != nil {
		t.Fatal(err)
	}
	// 100 requests x $0.60 = $60/month vs ~$856 cluster.
	if cmp.Verdict != CloudWins {
		t.Errorf("verdict = %v, want cloud-wins", cmp.Verdict)
	}
	if cmp.CloudMonthly >= cmp.ClusterMonthly {
		t.Error("cloud not cheaper at low rate")
	}
}

func TestCompareSaturatedFavorsCluster(t *testing.T) {
	c := Commodity2008(10)
	// 1,200 requests/month is near capacity (1,285) and costs the cloud
	// 1200 x $0.60 = $722... still below $1,369!  The 2008 economics
	// genuinely favored the cloud for Montage-like loads; push the rate
	// above break-even via a pricier request.
	expensive := cost.Breakdown{CPU: 2.0}
	cmp, err := Compare(c, expensive, 5.6*units.SecondsPerHour, 1200)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Verdict != ClusterWins {
		t.Errorf("verdict = %v, want cluster-wins", cmp.Verdict)
	}
	// Break-even = $855.6 (10-proc cluster) / $2.00 = ~428 requests/month.
	if math.Abs(cmp.BreakEvenRequests-427.8) > 1 {
		t.Errorf("break-even = %v, want ~428", cmp.BreakEvenRequests)
	}
}

func TestCompareOverCapacity(t *testing.T) {
	c := Commodity2008(2)
	cmp, err := Compare(c, oneDegRequest(), 5.6*units.SecondsPerHour, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Verdict != ClusterInsufficient {
		t.Errorf("verdict = %v, want cluster-insufficient", cmp.Verdict)
	}
}

func TestCompareErrors(t *testing.T) {
	c := Commodity2008(2)
	if _, err := Compare(Cluster{}, oneDegRequest(), 1, 1); err == nil {
		t.Error("invalid cluster accepted")
	}
	if _, err := Compare(c, oneDegRequest(), 1, -1); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := Compare(c, oneDegRequest(), 0, 1); err == nil {
		t.Error("zero CPU per request accepted")
	}
}

func TestFreeCloudBreakEvenInfinite(t *testing.T) {
	cmp, err := Compare(Commodity2008(1), cost.Breakdown{}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(cmp.BreakEvenRequests, 1) {
		t.Errorf("break-even = %v, want +Inf", cmp.BreakEvenRequests)
	}
	if cmp.Verdict != CloudWins {
		t.Errorf("free cloud should win, got %v", cmp.Verdict)
	}
}

func TestCompareSpot(t *testing.T) {
	onDemand := cost.Breakdown{CPU: 0.56, TransferIn: 0.0136, TransferOut: 0.0278}
	// Spot at 35% of the CPU rate, with some wasted work re-billed.
	spot := cost.Breakdown{CPU: 0.25, TransferIn: 0.0136, TransferOut: 0.0278}
	cmp, err := CompareSpot(onDemand, spot, 3600, 4500, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Verdict != SpotWins {
		t.Errorf("verdict = %v, want spot-wins", cmp.Verdict)
	}
	if math.Abs(cmp.Slowdown-1.25) > 1e-12 {
		t.Errorf("slowdown = %v, want 1.25", cmp.Slowdown)
	}
	if cmp.Savings <= 0.5 || cmp.Savings >= 0.52 {
		t.Errorf("savings = %v, want ~0.516", cmp.Savings)
	}

	// Same prices but a 2x delay: cheaper, yet too slow.
	cmp, err = CompareSpot(onDemand, spot, 3600, 7200, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Verdict != SpotTooSlow {
		t.Errorf("verdict = %v, want spot-too-slow", cmp.Verdict)
	}

	// Wasted work eating the whole discount: on demand wins.
	waste := cost.Breakdown{CPU: 0.60, TransferIn: 0.0136, TransferOut: 0.0278}
	cmp, err = CompareSpot(onDemand, waste, 3600, 4000, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Verdict != OnDemandWins {
		t.Errorf("verdict = %v, want on-demand-wins", cmp.Verdict)
	}
	if cmp.Savings >= 0 {
		t.Errorf("savings = %v, want negative", cmp.Savings)
	}

	if _, err := CompareSpot(onDemand, spot, 0, 3600, 1.5); err == nil {
		t.Error("zero on-demand makespan accepted")
	}
	if _, err := CompareSpot(onDemand, spot, 3600, 3600, 0.9); err == nil {
		t.Error("sub-1 max slowdown accepted")
	}
}

func TestSpotVerdictStrings(t *testing.T) {
	for v, want := range map[SpotVerdict]string{
		OnDemandWins: "on-demand-wins",
		SpotWins:     "spot-wins",
		SpotTooSlow:  "spot-too-slow",
	} {
		if v.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(v), v.String(), want)
		}
	}
}

func TestVerdictStrings(t *testing.T) {
	if CloudWins.String() != "cloud-wins" || ClusterWins.String() != "cluster-wins" ||
		ClusterInsufficient.String() != "cluster-insufficient" {
		t.Error("verdict names wrong")
	}
}

// Property: the verdict is consistent with the monthly totals whenever
// the cluster has capacity.
func TestPropVerdictConsistent(t *testing.T) {
	f := func(procsRaw uint8, rateRaw uint16, cpuHoursRaw uint8) bool {
		procs := int(procsRaw%64) + 1
		rate := float64(rateRaw % 5000)
		cpuSec := (float64(cpuHoursRaw%20) + 0.5) * units.SecondsPerHour
		c := Commodity2008(procs)
		cmp, err := Compare(c, oneDegRequest(), cpuSec, rate)
		if err != nil {
			return false
		}
		switch cmp.Verdict {
		case ClusterInsufficient:
			return rate > cmp.CapacityPerMonth
		case CloudWins:
			return cmp.CloudMonthly < cmp.ClusterMonthly
		case ClusterWins:
			return cmp.CloudMonthly >= cmp.ClusterMonthly && rate <= cmp.CapacityPerMonth
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
