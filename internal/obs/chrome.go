package obs

import (
	"encoding/json"
	"fmt"
	"sort"
)

// chromeEvent is one entry of the Chrome trace-event JSON format, the
// schema chrome://tracing and Perfetto (ui.perfetto.dev) both open.
// Timestamps and durations are microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// Lane bases: task attempts occupy per-pool lanes, link transfers their
// own per-direction lanes, and run-level instants (reclaims, resizes)
// land on lane 0.
const (
	laneReliableBase = 1
	laneSpotBase     = 1001
	laneInBase       = 2001
	laneOutBase      = 3001
)

// lanePool assigns spans to the first lane free at their start time,
// which turns the flat event list back into a Gantt chart: lanes are a
// deterministic stand-in for the processors the simulator does not
// individually identify.
type lanePool struct {
	base   int
	freeAt []float64
}

func (p *lanePool) take(t float64) int {
	for i, f := range p.freeAt {
		if f <= t {
			p.freeAt[i] = t
			return p.base + i
		}
	}
	p.freeAt = append(p.freeAt, t)
	return p.base + len(p.freeAt) - 1
}

func (p *lanePool) release(lane int, t float64) {
	if i := lane - p.base; i >= 0 && i < len(p.freeAt) {
		p.freeAt[i] = t
	}
}

// ChromeTrace renders a timeline as Chrome trace-event JSON, viewable
// in Perfetto or chrome://tracing.  Task attempts become complete ("X")
// spans on per-pool lanes, transfers become spans on per-direction link
// lanes, and everything else becomes instant ("i") markers.  The output
// is deterministic for a given timeline.
func ChromeTrace(events []Event) ([]byte, error) {
	var out []chromeEvent
	reliable := &lanePool{base: laneReliableBase}
	spot := &lanePool{base: laneSpotBase}
	in := &lanePool{base: laneInBase}
	outLink := &lanePool{base: laneOutBase}
	type open struct {
		lane  int
		pool  *lanePool
		start float64
		name  string
		pname string
	}
	running := map[int]open{}
	usedLanes := map[int]string{}

	name := func(e Event) string {
		if e.Name != "" {
			return e.Name
		}
		return fmt.Sprintf("t%d", e.Task)
	}
	const sec = 1e6 // seconds -> trace microseconds

	for _, e := range events {
		switch e.Kind {
		case KindStart:
			pool, pname := spot, "spot"
			if e.Pool == "reliable" {
				pool, pname = reliable, "reliable"
			}
			lane := pool.take(e.T)
			usedLanes[lane] = pname
			running[e.Task] = open{lane: lane, pool: pool, start: e.T, name: name(e), pname: pname}
		case KindFinish, KindVictim:
			o, ok := running[e.Task]
			if !ok {
				continue
			}
			delete(running, e.Task)
			o.pool.release(o.lane, e.T)
			args := map[string]any{"task": e.Task, "pool": o.pname}
			cat := "task"
			if e.Kind == KindVictim {
				cat = "preempted"
				args["score"] = e.Score
			}
			out = append(out, chromeEvent{
				Name: o.name, Cat: cat, Ph: "X",
				Ts: o.start * sec, Dur: (e.T - o.start) * sec,
				Pid: 1, Tid: o.lane, Args: args,
			})
		case KindTransfer:
			pool, pname := in, "link in"
			if e.Dir == "out" {
				pool, pname = outLink, "link out"
			}
			lane := pool.take(e.T)
			usedLanes[lane] = pname
			pool.release(lane, e.End)
			out = append(out, chromeEvent{
				Name: name(e), Cat: "transfer", Ph: "X",
				Ts: e.T * sec, Dur: (e.End - e.T) * sec,
				Pid: 1, Tid: lane,
				Args: map[string]any{"bytes": e.Bytes, "dir": e.Dir},
			})
		case KindRevoke, KindResize, KindCheckpoint, KindRestore, KindRestart, KindRetry:
			lane := 0
			if o, ok := running[e.Task]; ok {
				lane = o.lane
			}
			args := map[string]any{}
			if e.Task >= 0 {
				args["task"] = e.Task
			}
			if e.Procs != 0 {
				args["procs"] = e.Procs
			}
			if e.Bytes != 0 {
				args["bytes"] = e.Bytes
			}
			if e.Detail != "" {
				args["detail"] = e.Detail
			}
			out = append(out, chromeEvent{
				Name: e.Kind, Cat: "event", Ph: "i",
				Ts: e.T * sec, Pid: 1, Tid: lane, S: "t", Args: args,
			})
		}
	}

	// Name the lanes so Perfetto shows "reliable 1" / "spot 3" / "link
	// in" tracks instead of bare thread IDs.
	lanes := make([]int, 0, len(usedLanes))
	for lane := range usedLanes {
		lanes = append(lanes, lane)
	}
	sort.Ints(lanes)
	meta := make([]chromeEvent, 0, len(lanes))
	for _, lane := range lanes {
		meta = append(meta, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: lane,
			Args: map[string]any{"name": fmt.Sprintf("%s %d", usedLanes[lane], lane)},
		})
	}
	doc := chromeDoc{TraceEvents: append(meta, out...), DisplayTimeUnit: "ms"}
	return json.MarshalIndent(doc, "", " ")
}
