package obs

import (
	"encoding/json"
	"testing"

	"repro/internal/units"
)

func TestRecorderStampsSeqAndTime(t *testing.T) {
	rec := NewRecorder(0)
	rec.Record(1.5, Event{Kind: KindStart, Task: 3})
	rec.Record(2.5, Event{Kind: KindFinish, Task: 3})
	events := rec.Events()
	if len(events) != 2 || rec.Len() != 2 {
		t.Fatalf("events = %d, want 2", len(events))
	}
	if events[0].Seq != 0 || events[1].Seq != 1 {
		t.Errorf("seqs = %d,%d, want 0,1", events[0].Seq, events[1].Seq)
	}
	if events[0].T != 1.5 || events[1].T != 2.5 {
		t.Errorf("times = %v,%v", events[0].T, events[1].T)
	}
}

func TestRecorderBoundsAndCountsDrops(t *testing.T) {
	rec := NewRecorder(3)
	for i := 0; i < 10; i++ {
		rec.Record(units.Duration(i), Event{Kind: KindReady, Task: i})
	}
	if rec.Len() != 3 {
		t.Errorf("len = %d, want 3 (the bound)", rec.Len())
	}
	if rec.Dropped() != 7 {
		t.Errorf("dropped = %d, want 7", rec.Dropped())
	}
	// The bound keeps the prefix: the earliest events survive, so the
	// trace's causal head is never lost.
	for i, e := range rec.Events() {
		if e.Task != i {
			t.Errorf("event %d is task %d, want %d (prefix must survive)", i, e.Task, i)
		}
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var rec *Recorder
	rec.Record(1, Event{Kind: KindReady}) // must not panic
	if rec.Len() != 0 || rec.Dropped() != 0 || rec.Events() != nil {
		t.Error("nil recorder is not inert")
	}
}

func TestEventJSONOmitsEmptyFields(t *testing.T) {
	b, err := json.Marshal(Event{Seq: 0, T: 1, Kind: KindReady, Task: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"seq":0,"t":1,"kind":"ready","task":4}`
	if string(b) != want {
		t.Errorf("event JSON = %s, want %s", b, want)
	}
}

// timeline is a hand-built two-task trace: task 1 runs once cleanly,
// task 2 is killed mid-attempt and re-runs, accumulating wait time.
var timeline = []Event{
	{Seq: 0, T: 0, Kind: KindReady, Task: 1, Name: "mProject"},
	{Seq: 1, T: 0, Kind: KindReady, Task: 2, Name: "mAdd"},
	{Seq: 2, T: 1, Kind: KindStart, Task: 1},
	{Seq: 3, T: 5, Kind: KindFinish, Task: 1},
	{Seq: 4, T: 5, Kind: KindStart, Task: 2},
	{Seq: 5, T: 8, Kind: KindVictim, Task: 2},
	{Seq: 6, T: 8, Kind: KindReady, Task: 2},
	{Seq: 7, T: 10, Kind: KindStart, Task: 2},
	{Seq: 8, T: 16, Kind: KindFinish, Task: 2},
	{Seq: 9, T: 16, Kind: KindTransfer, Task: -1, Name: "out.fits", Dir: "out", End: 18},
}

func TestCriticalPathRanksByBlockingTime(t *testing.T) {
	got := CriticalPath(timeline, 10)
	if len(got) != 2 {
		t.Fatalf("entries = %d, want 2 (run-level events must not produce rows)", len(got))
	}
	// Task 2: busy (8-5)+(16-10)=9, wait (5-0)+(10-8)=7, blocking 16.
	// Task 1: busy 4, wait 1, blocking 5.
	if got[0].Task != 2 || got[1].Task != 1 {
		t.Fatalf("order = %d,%d, want 2,1", got[0].Task, got[1].Task)
	}
	top := got[0]
	if top.Name != "mAdd" || top.Attempts != 2 {
		t.Errorf("top entry = %+v", top)
	}
	if top.BusySeconds != 9 || top.WaitSeconds != 7 || top.BlockingSeconds != 16 {
		t.Errorf("top busy/wait/blocking = %v/%v/%v, want 9/7/16", top.BusySeconds, top.WaitSeconds, top.BlockingSeconds)
	}
}

func TestCriticalPathTruncatesToK(t *testing.T) {
	if got := CriticalPath(timeline, 1); len(got) != 1 || got[0].Task != 2 {
		t.Errorf("top-1 = %+v", got)
	}
}

func TestChromeTraceRendersSpansAndInstants(t *testing.T) {
	b, err := ChromeTrace(timeline)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("ChromeTrace output is not JSON: %v", err)
	}
	var spans, instants, metas int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			spans++
			if e.Dur <= 0 {
				t.Errorf("span %q with dur %v", e.Name, e.Dur)
			}
		case "i":
			instants++
		case "M":
			metas++
		}
	}
	// Three task attempts + one transfer = four spans; the victim kill
	// renders as the preempted attempt's span, not an extra instant.
	if spans != 4 {
		t.Errorf("spans = %d, want 4", spans)
	}
	if metas == 0 {
		t.Error("no thread_name metadata; lanes would be unlabeled in the viewer")
	}

	// Determinism: same timeline, same bytes.
	again, err := ChromeTrace(timeline)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(b) {
		t.Error("ChromeTrace is nondeterministic")
	}
}
