package obs

import "sort"

// PathEntry is one task's row in a critical-path summary: how long it
// occupied a processor across every attempt (killed ones included), how
// long it sat ready waiting for a slot, and how often it ran.
// BlockingSeconds -- the ranking key -- is busy plus waiting: the wall
// clock during which this task was either consuming capacity or
// starved for it, the time an optimizer would attack first.
type PathEntry struct {
	Task            int     `json:"task"`
	Name            string  `json:"name,omitempty"`
	Attempts        int     `json:"attempts"`
	BusySeconds     float64 `json:"busy_seconds"`
	WaitSeconds     float64 `json:"wait_seconds"`
	BlockingSeconds float64 `json:"blocking_seconds"`
}

// CriticalPath derives the top-k tasks by blocking time from a
// timeline.  Busy time is the span from each start to its matching
// finish or victim kill (an attempt still running when the timeline
// ends contributes nothing -- the recorder only sees completed spans);
// wait time is the span from each ready event to the next start.  The
// result is deterministic: ties break on task ID ascending.
func CriticalPath(events []Event, k int) []PathEntry {
	type state struct {
		entry    PathEntry
		readyAt  float64
		startAt  float64
		waitOpen bool
		runOpen  bool
		hasRow   bool
	}
	byTask := map[int]*state{}
	get := func(e Event) *state {
		s, ok := byTask[e.Task]
		if !ok {
			s = &state{entry: PathEntry{Task: e.Task}}
			byTask[e.Task] = s
		}
		if e.Name != "" {
			s.entry.Name = e.Name
		}
		return s
	}
	for _, e := range events {
		if e.Task < 0 {
			continue
		}
		switch e.Kind {
		case KindReady:
			s := get(e)
			s.readyAt, s.waitOpen, s.hasRow = e.T, true, true
		case KindStart:
			s := get(e)
			if s.waitOpen {
				s.entry.WaitSeconds += e.T - s.readyAt
				s.waitOpen = false
			}
			s.startAt, s.runOpen, s.hasRow = e.T, true, true
			s.entry.Attempts++
		case KindFinish, KindVictim:
			s := get(e)
			if s.runOpen {
				s.entry.BusySeconds += e.T - s.startAt
				s.runOpen = false
			}
			s.hasRow = true
		}
	}
	out := make([]PathEntry, 0, len(byTask))
	for _, s := range byTask {
		if !s.hasRow {
			continue
		}
		s.entry.BlockingSeconds = s.entry.BusySeconds + s.entry.WaitSeconds
		out = append(out, s.entry)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].BlockingSeconds != out[j].BlockingSeconds {
			return out[i].BlockingSeconds > out[j].BlockingSeconds
		}
		return out[i].Task < out[j].Task
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}
