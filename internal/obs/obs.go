// Package obs is the flight recorder of the simulator: an opt-in,
// deterministic, allocation-bounded event timeline capturing what a run
// actually did -- which tasks were dispatched, started, finished and
// retried, which spot reclaims fired, which victims the policy chose
// (and at what score), which checkpoints were written and restored, and
// how the pool was resized.
//
// The paper's argument rests on explaining where a workflow's time and
// money go; aggregate metrics answer "how much", the timeline answers
// "why".  The recorder is a pure observer: it never schedules events,
// never branches the simulation, and a traced run's Metrics are
// byte-identical to the untraced run's (package exec's trace tests pin
// this).  Because the simulator itself is deterministic, the recorded
// event sequence is too: the same scenario always yields byte-identical
// timelines, so traces are diffable across engine releases -- the lens
// every performance PR is judged through.
//
// The package deliberately depends only on units: recording seams live
// in internal/exec and internal/core, exporters (wire documents, Chrome
// trace JSON) build on the plain Event slice.
package obs

import "repro/internal/units"

// Event kinds recorded by the executor's seams.  A timeline is a
// sequence of these in causal record order; each event carries only the
// fields meaningful for its kind (the rest stay zero and are omitted
// from the JSON encoding).
const (
	// KindReady marks a task entering the ready queue (dependencies
	// satisfied, or re-queued after a retry or preemption).
	KindReady = "ready"
	// KindDispatch marks one dispatcher batch: Count ready tasks claimed
	// free processors at T.
	KindDispatch = "dispatch"
	// KindStart marks one task attempt beginning on a processor; Pool
	// says which sub-pool it landed on.
	KindStart = "start"
	// KindFinish marks a task attempt completing successfully.
	KindFinish = "finish"
	// KindRetry marks a failed attempt being re-queued (the burned CPU
	// stays on the bill).
	KindRetry = "retry"
	// KindRevoke marks a spot capacity reclaim arriving: Procs slots are
	// about to disappear.
	KindRevoke = "revoke"
	// KindVictim marks the victim policy killing one running attempt;
	// Score is the policy's score for the choice (largest dies first).
	KindVictim = "victim"
	// KindCheckpoint marks durable checkpoint writes: Count checkpoints,
	// Bytes moved into storage.  Detail distinguishes "periodic" writes
	// (accounted when the attempt completes) from the "emergency" write
	// cut inside a reclaim's warning window.
	KindCheckpoint = "checkpoint"
	// KindRestore marks an attempt resuming from its last durable
	// checkpoint instead of from scratch; Bytes is the image read back.
	KindRestore = "restore"
	// KindRestart marks a preempted task re-entering the ready queue.
	KindRestart = "restart"
	// KindResize marks the pool shrinking (negative Procs) or growing
	// back (positive Procs) as reclaimed capacity heals.
	KindResize = "resize"
	// KindTransfer marks one reserved link transfer: Bytes over the
	// user<->cloud link, Dir "in" or "out", occupying [T, End].
	KindTransfer = "transfer"
)

// Event is one timeline entry.  T is the simulated time the event was
// recorded at (seconds); Seq is its position in causal record order.
// Transfers are recorded at reservation time, so their T (the window
// start) may lead the recording clock -- order by Seq, not T.
type Event struct {
	Seq  int     `json:"seq"`
	T    float64 `json:"t"`
	Kind string  `json:"kind"`
	// Task is the task the event concerns; -1 for run-level events
	// (dispatch batches, reclaims, resizes, stage-in/out transfers).
	Task int `json:"task"`
	// Name is the task or file name, when one applies.
	Name string `json:"name,omitempty"`
	// Pool is "reliable" or "spot" for start events on a mixed fleet.
	Pool string `json:"pool,omitempty"`
	// Procs is the processor delta of revoke/resize events.
	Procs int `json:"procs,omitempty"`
	// Count is the batch size of dispatch events and the checkpoint
	// count of checkpoint events.
	Count int `json:"count,omitempty"`
	// Bytes is the data volume of checkpoint, restore and transfer
	// events.
	Bytes int64 `json:"bytes,omitempty"`
	// Score is the victim policy's score on victim events.
	Score float64 `json:"score,omitempty"`
	// End is the window end of transfer events (seconds).
	End float64 `json:"end,omitempty"`
	// Dir is "in" or "out" on transfer events.
	Dir string `json:"dir,omitempty"`
	// Detail is a kind-specific qualifier (e.g. "periodic" vs
	// "emergency" checkpoints).
	Detail string `json:"detail,omitempty"`
}

// DefaultMaxEvents bounds a recorder that was not given an explicit
// budget.  A 1-degree mosaic's spot run records a few thousand events;
// the bound exists so a pathological scenario cannot turn an opt-in
// trace into an unbounded allocation.
const DefaultMaxEvents = 1 << 17

// Recorder accumulates a bounded timeline.  The zero value is unusable;
// NewRecorder sizes it.  A nil *Recorder is a valid "tracing off"
// recorder: every method no-ops, so recording seams need no nil guards
// (the executor still guards hot paths to keep untraced runs free of
// even the call overhead).
//
// A Recorder is not safe for concurrent use; the simulator is
// single-threaded per run, which is exactly what makes the timeline
// deterministic.
type Recorder struct {
	max     int
	dropped int
	events  []Event
}

// NewRecorder returns a recorder bounded to max events; max <= 0 means
// DefaultMaxEvents.  Capacity grows geometrically from a small seed, so
// short runs never pay for the bound.
func NewRecorder(max int) *Recorder {
	if max <= 0 {
		max = DefaultMaxEvents
	}
	seed := 256
	if seed > max {
		seed = max
	}
	return &Recorder{max: max, events: make([]Event, 0, seed)}
}

// Record appends one event at simulated time t, stamping Seq and T.
// Beyond the bound events are counted as dropped, never stored: the
// prefix of a truncated timeline stays exact.
func (r *Recorder) Record(t units.Duration, e Event) {
	if r == nil {
		return
	}
	if len(r.events) >= r.max {
		r.dropped++
		return
	}
	e.Seq = len(r.events)
	e.T = t.Seconds()
	r.events = append(r.events, e)
}

// Events returns the recorded timeline in causal order.  The slice is
// the recorder's backing store; callers must treat it as read-only.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	return r.events
}

// Len reports how many events were recorded.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.events)
}

// Dropped reports how many events the bound discarded.
func (r *Recorder) Dropped() int {
	if r == nil {
		return 0
	}
	return r.dropped
}
