package dax

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/dag"
	"repro/internal/units"
)

func sample(t *testing.T) *dag.Workflow {
	t.Helper()
	w := dag.New("sample")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	_, err := w.AddFile("raw.fits", units.Bytes(6e6), false)
	must(err)
	_, err = w.AddFile("proj.fits", units.Bytes(11e6), false)
	must(err)
	_, err = w.AddFile("mosaic.fits", units.Bytes(173.46e6), true)
	must(err)
	_, err = w.AddTask("mProject-0", "mProject", 271.5, []string{"raw.fits"}, []string{"proj.fits"})
	must(err)
	_, err = w.AddTask("mAdd-0", "mAdd", 542.25, []string{"proj.fits"}, []string{"mosaic.fits"})
	must(err)
	must(w.Finalize())
	return w
}

func TestRoundTrip(t *testing.T) {
	w := sample(t)
	var buf bytes.Buffer
	if err := Write(&buf, w); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Name != w.Name {
		t.Errorf("name = %q, want %q", got.Name, w.Name)
	}
	if got.NumTasks() != w.NumTasks() || got.NumFiles() != w.NumFiles() {
		t.Fatalf("shape mismatch: %d/%d tasks, %d/%d files",
			got.NumTasks(), w.NumTasks(), got.NumFiles(), w.NumFiles())
	}
	if got.TotalRuntime() != w.TotalRuntime() {
		t.Errorf("TotalRuntime = %v, want %v", got.TotalRuntime(), w.TotalRuntime())
	}
	if got.TotalFileBytes() != w.TotalFileBytes() {
		t.Errorf("TotalFileBytes = %v, want %v", got.TotalFileBytes(), w.TotalFileBytes())
	}
	if got.File("mosaic.fits") == nil || !got.File("mosaic.fits").Output {
		t.Error("output flag lost in round trip")
	}
	if got.Task(1).Type != "mAdd" {
		t.Errorf("task type = %q, want mAdd", got.Task(1).Type)
	}
}

func TestWriteDeterministic(t *testing.T) {
	w := sample(t)
	var a, b bytes.Buffer
	if err := Write(&a, w); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, w); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("two Write calls produced different documents")
	}
	if !strings.Contains(a.String(), `<adag name="sample">`) {
		t.Errorf("missing adag element in:\n%s", a.String())
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct {
		name, doc string
	}{
		{"garbage", "not xml at all"},
		{"missing name", `<adag><file name="f" size="1"/></adag>`},
		{"bad link", `<adag name="x"><file name="f" size="1" output="true"/>` +
			`<job id="1" name="t" type="r" runtime="1"><uses file="f" link="sideways"/></job></adag>`},
		{"unknown file", `<adag name="x">` +
			`<job id="1" name="t" type="r" runtime="1"><uses file="ghost" link="input"/></job></adag>`},
		{"cycle", `<adag name="x"><file name="a" size="1"/><file name="b" size="1" output="true"/>` +
			`<job id="1" name="t1" type="r" runtime="1"><uses file="b" link="input"/><uses file="a" link="output"/></job>` +
			`<job id="2" name="t2" type="r" runtime="1"><uses file="a" link="input"/><uses file="b" link="output"/></job></adag>`},
		{"empty", `<adag name="x"></adag>`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Read(strings.NewReader(tc.doc)); err == nil {
				t.Errorf("Read(%s) succeeded, want error", tc.name)
			}
		})
	}
}

func TestReadMinimalValid(t *testing.T) {
	doc := `<?xml version="1.0"?>
<adag name="mini">
  <file name="in" size="100"/>
  <file name="out" size="200" output="true"/>
  <job id="ID0" name="only" type="r" runtime="5">
    <uses file="in" link="input"/>
    <uses file="out" link="output"/>
  </job>
</adag>`
	w, err := Read(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if w.NumTasks() != 1 || w.NumFiles() != 2 {
		t.Fatalf("got %d tasks %d files", w.NumTasks(), w.NumFiles())
	}
	if w.Task(0).Runtime != 5 {
		t.Errorf("runtime = %v, want 5", w.Task(0).Runtime)
	}
}
