package dax

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/montage"
)

// TestGoldenOneDegree pins both the workload generator's determinism and
// the DAX wire format: the serialized 1-degree workflow must match the
// checked-in golden file byte for byte.  Regenerate with
//
//	go run ./cmd/daxgen -preset 1deg -o internal/dax/testdata/montage-1deg.golden.xml
//
// if either the generator or the format changes intentionally.
func TestGoldenOneDegree(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "montage-1deg.golden.xml"))
	if err != nil {
		t.Fatal(err)
	}
	w, err := montage.Generate(montage.OneDegree())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, w); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("serialized workflow differs from golden file (%d vs %d bytes); "+
			"if intentional, regenerate with daxgen", buf.Len(), len(want))
	}
}

// TestGoldenParses keeps the golden file itself valid.
func TestGoldenParses(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "montage-1deg.golden.xml"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w, err := Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if w.NumTasks() != 203 || w.NumFiles() != 249 {
		t.Errorf("golden workflow has %d tasks, %d files; want 203, 249", w.NumTasks(), w.NumFiles())
	}
}
