package dax

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzRead asserts the parser never panics and either errors cleanly or
// returns a finalized workflow, whatever bytes arrive.
func FuzzRead(f *testing.F) {
	f.Add([]byte(`<adag name="x"><file name="a" size="1"/><file name="b" size="2" output="true"/>` +
		`<job id="1" name="t" type="r" runtime="1"><uses file="a" link="input"/><uses file="b" link="output"/></job></adag>`))
	f.Add([]byte(`<adag name=""></adag>`))
	f.Add([]byte(`not xml`))
	if golden, err := os.ReadFile(filepath.Join("testdata", "montage-1deg.golden.xml")); err == nil {
		f.Add(golden)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		wf, err := Read(bytes.NewReader(data))
		if err == nil {
			if wf == nil || !wf.Finalized() {
				t.Fatal("Read returned nil error with unusable workflow")
			}
			// A successful parse must round-trip.
			var buf bytes.Buffer
			if err := Write(&buf, wf); err != nil {
				t.Fatalf("Write after successful Read: %v", err)
			}
			again, err := Read(&buf)
			if err != nil {
				t.Fatalf("re-Read after Write: %v", err)
			}
			if again.NumTasks() != wf.NumTasks() || again.NumFiles() != wf.NumFiles() {
				t.Fatal("round trip changed workflow shape")
			}
		}
	})
}
