// Package dax reads and writes workflows in an XML format modeled on the
// DAX ("DAG in XML") description that Montage's mDAG component emits and
// that the paper's authors parsed into an adjacency list for their
// simulator.  The format captures exactly what the simulator needs: task
// names and types, runtimes from real (here: synthetic) runs, file names
// and sizes, and input/output linkage.
//
// Example document:
//
//	<adag name="montage-1deg">
//	  <file name="2mass-001.fits" size="6000000"/>
//	  <file name="mosaic.fits" size="173460000" output="true"/>
//	  <job id="ID0000" name="mProject-0" type="mProject" runtime="271.3">
//	    <uses file="2mass-001.fits" link="input"/>
//	    <uses file="proj-0.fits" link="output"/>
//	  </job>
//	</adag>
package dax

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"

	"repro/internal/dag"
	"repro/internal/units"
)

// xmlADAG is the top-level document element.
type xmlADAG struct {
	XMLName xml.Name  `xml:"adag"`
	Name    string    `xml:"name,attr"`
	Files   []xmlFile `xml:"file"`
	Jobs    []xmlJob  `xml:"job"`
}

type xmlFile struct {
	Name   string `xml:"name,attr"`
	Size   int64  `xml:"size,attr"`
	Output bool   `xml:"output,attr,omitempty"`
}

type xmlJob struct {
	ID      string    `xml:"id,attr"`
	Name    string    `xml:"name,attr"`
	Type    string    `xml:"type,attr"`
	Runtime float64   `xml:"runtime,attr"`
	Uses    []xmlUses `xml:"uses"`
}

type xmlUses struct {
	File string `xml:"file,attr"`
	Link string `xml:"link,attr"` // "input" or "output"
}

// Write serializes the workflow as a DAX XML document.  Files are
// emitted sorted by name and jobs in task-ID order, so output is
// deterministic and round-trip stable.
func Write(w io.Writer, wf *dag.Workflow) error {
	doc := xmlADAG{Name: wf.Name}
	files := wf.Files()
	sort.Slice(files, func(i, j int) bool { return files[i].Name < files[j].Name })
	for _, f := range files {
		doc.Files = append(doc.Files, xmlFile{Name: f.Name, Size: int64(f.Size), Output: f.Output})
	}
	for _, t := range wf.Tasks() {
		j := xmlJob{
			ID:      fmt.Sprintf("ID%05d", t.ID),
			Name:    t.Name,
			Type:    t.Type,
			Runtime: t.Runtime.Seconds(),
		}
		for _, in := range t.Inputs {
			j.Uses = append(j.Uses, xmlUses{File: in, Link: "input"})
		}
		for _, out := range t.Outputs {
			j.Uses = append(j.Uses, xmlUses{File: out, Link: "output"})
		}
		doc.Jobs = append(doc.Jobs, j)
	}
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("dax: encode: %w", err)
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// Read parses a DAX XML document into a finalized Workflow.
func Read(r io.Reader) (*dag.Workflow, error) {
	var doc xmlADAG
	if err := xml.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("dax: decode: %w", err)
	}
	if doc.Name == "" {
		return nil, fmt.Errorf("dax: adag element missing name attribute")
	}
	wf := dag.New(doc.Name)
	for _, f := range doc.Files {
		if _, err := wf.AddFile(f.Name, units.Bytes(f.Size), f.Output); err != nil {
			return nil, fmt.Errorf("dax: file %q: %w", f.Name, err)
		}
	}
	for _, j := range doc.Jobs {
		var inputs, outputs []string
		for _, u := range j.Uses {
			switch u.Link {
			case "input":
				inputs = append(inputs, u.File)
			case "output":
				outputs = append(outputs, u.File)
			default:
				return nil, fmt.Errorf("dax: job %q uses %q with unknown link %q", j.Name, u.File, u.Link)
			}
		}
		if _, err := wf.AddTask(j.Name, j.Type, units.Duration(j.Runtime), inputs, outputs); err != nil {
			return nil, fmt.Errorf("dax: job %q: %w", j.Name, err)
		}
	}
	if err := wf.Finalize(); err != nil {
		return nil, fmt.Errorf("dax: %w", err)
	}
	return wf, nil
}
