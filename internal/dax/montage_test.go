package dax

import (
	"bytes"
	"testing"

	"repro/internal/montage"
)

// TestMontagePresetsRoundTrip serializes each paper workload and parses
// it back, checking that every simulation-relevant quantity survives.
func TestMontagePresetsRoundTrip(t *testing.T) {
	for _, spec := range montage.Presets() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			w, err := montage.Generate(spec)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := Write(&buf, w); err != nil {
				t.Fatal(err)
			}
			got, err := Read(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if got.NumTasks() != w.NumTasks() || got.NumFiles() != w.NumFiles() {
				t.Fatalf("shape: %d/%d tasks, %d/%d files",
					got.NumTasks(), w.NumTasks(), got.NumFiles(), w.NumFiles())
			}
			if got.TotalRuntime() != w.TotalRuntime() {
				t.Errorf("TotalRuntime %v != %v", got.TotalRuntime(), w.TotalRuntime())
			}
			if got.TotalFileBytes() != w.TotalFileBytes() {
				t.Errorf("TotalFileBytes %d != %d", got.TotalFileBytes(), w.TotalFileBytes())
			}
			if got.InputBytes() != w.InputBytes() || got.OutputBytes() != w.OutputBytes() {
				t.Error("external input/output volumes changed")
			}
			if got.MaxLevel() != w.MaxLevel() || got.MaxParallelism() != w.MaxParallelism() {
				t.Error("level structure changed")
			}
			if got.CriticalPath() != w.CriticalPath() {
				t.Errorf("CriticalPath %v != %v", got.CriticalPath(), w.CriticalPath())
			}
			// Per-task spot checks.
			for _, id := range []int{0, w.NumTasks() / 2, w.NumTasks() - 1} {
				a, b := w.Tasks()[id], got.Tasks()[id]
				if a.Name != b.Name || a.Type != b.Type || a.Runtime != b.Runtime {
					t.Errorf("task %d changed: %+v vs %+v", id, a, b)
				}
			}
		})
	}
}

// TestWriteStableAcrossGenerations confirms the serialized form is
// byte-identical for identically-specified workflows (regression guard
// for determinism end to end).
func TestWriteStableAcrossGenerations(t *testing.T) {
	spec := montage.OneDegree()
	w1, err := montage.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := montage.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	var b1, b2 bytes.Buffer
	if err := Write(&b1, w1); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b2, w2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("identical specs produced different DAX documents")
	}
}
