// Package report renders experiment results as aligned ASCII tables or
// CSV, the two output formats of the reproduction harness.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of string cells.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// New returns a table with the given title and column headers.
func New(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// Add appends a row.  The cell count must match the column count.
func (t *Table) Add(cells ...string) error {
	if len(cells) != len(t.Columns) {
		return fmt.Errorf("report: row has %d cells, table has %d columns", len(cells), len(t.Columns))
	}
	t.Rows = append(t.Rows, cells)
	return nil
}

// MustAdd appends a row and panics on arity mismatch; the experiment
// harness constructs rows from fixed-arity code, so a mismatch is a bug.
func (t *Table) MustAdd(cells ...string) {
	if err := t.Add(cells...); err != nil {
		panic(err)
	}
}

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	rule := make([]string, len(t.Columns))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteMarkdown renders the table as a GitHub-style markdown table with
// the title as a bold caption line.
func (t *Table) WriteMarkdown(w io.Writer) error {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for _, cell := range cells {
			b.WriteString(" ")
			b.WriteString(strings.ReplaceAll(cell, "|", "\\|"))
			b.WriteString(" |")
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	rule := make([]string, len(t.Columns))
	for i := range rule {
		rule[i] = "---"
	}
	writeRow(rule)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the table as CSV (header row first, no title).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// F formats a float with the given precision; the harness's standard
// cell formatter.
func F(v float64, prec int) string { return fmt.Sprintf("%.*f", prec, v) }
