package report

import (
	"strings"
	"testing"
)

func TestTableText(t *testing.T) {
	tbl := New("Demo", "procs", "cost")
	if err := tbl.Add("1", "$0.60"); err != nil {
		t.Fatal(err)
	}
	tbl.MustAdd("128", "$4.00")
	var b strings.Builder
	if err := tbl.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Demo", "procs", "cost", "128", "$4.00", "-----"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("got %d lines, want 5:\n%s", len(lines), out)
	}
}

func TestTableTextNoTitle(t *testing.T) {
	tbl := New("", "a")
	tbl.MustAdd("x")
	var b strings.Builder
	if err := tbl.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if strings.HasPrefix(b.String(), "\n") {
		t.Error("leading blank line for untitled table")
	}
}

func TestTableCSV(t *testing.T) {
	tbl := New("T", "a", "b")
	tbl.MustAdd("1", "two,with comma")
	var b strings.Builder
	if err := tbl.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,\"two,with comma\"\n"
	if b.String() != want {
		t.Errorf("CSV = %q, want %q", b.String(), want)
	}
}

func TestTableMarkdown(t *testing.T) {
	tbl := New("Fig X", "a", "b")
	tbl.MustAdd("1", "with|pipe")
	var b strings.Builder
	if err := tbl.WriteMarkdown(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"**Fig X**", "| a | b |", "| --- | --- |", `with\|pipe`} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestAddArityMismatch(t *testing.T) {
	tbl := New("T", "a", "b")
	if err := tbl.Add("only-one"); err == nil {
		t.Error("arity mismatch accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustAdd did not panic on mismatch")
		}
	}()
	tbl.MustAdd("only-one")
}

func TestF(t *testing.T) {
	if got := F(3.14159, 2); got != "3.14" {
		t.Errorf("F = %q, want 3.14", got)
	}
	if got := F(2, 0); got != "2" {
		t.Errorf("F = %q, want 2", got)
	}
}
