package experiments

import (
	"context"
	"fmt"

	"repro/internal/advisor"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/econ"
	"repro/internal/exec"
	"repro/internal/montage"
	"repro/internal/report"
	"repro/internal/units"
)

// The spot frontier is the post-paper scenario the §8 reliability
// discussion points straight at: Amazon's 2009 spot market sells the
// same processors at a deep discount in exchange for the right to
// reclaim them mid-run.  Whether the discount survives contact with the
// revocations depends on how much killed work gets re-billed -- which
// checkpointing trades against its own overhead.  The experiment maps
// that frontier: on-demand baselines versus spot runs across pool sizes
// and checkpoint intervals, all under one seeded revocation schedule.

// DefaultSpotSeed is the published revocation-schedule seed;
// SpotFrontierSeeded reproduces any other schedule on demand.
const DefaultSpotSeed int64 = 2009

// DefaultSpotMarket is the frontier's market model: spot capacity at
// 35% of the on-demand CPU rate, reclaimed 1.5 times per hour on
// average -- aggressive enough that an unprotected run visibly bleeds.
func DefaultSpotMarket() cost.Spot {
	return cost.Spot{Discount: 0.65, RevocationsPerHour: 1.5}
}

// SpotBaselineRow is one on-demand reference run.
type SpotBaselineRow struct {
	Processors int
	Makespan   units.Duration
	Cost       units.Money
}

// SpotFrontierRow is one spot configuration's measured outcome.
type SpotFrontierRow struct {
	Processors int
	// Checkpoint is the checkpoint interval; 0 re-runs preempted tasks
	// from scratch.
	Checkpoint  units.Duration
	Makespan    units.Duration
	Preempted   int
	WastedCPU   float64
	Checkpoints int
	SpotCost    units.Money
	Comparison  econ.SpotComparison
}

// SpotFrontierResult is the full cost-reliability frontier.
type SpotFrontierResult struct {
	Spec        montage.Spec
	Seed        int64
	Market      cost.Spot
	Warning     units.Duration
	Downtime    units.Duration
	Overhead    units.Duration
	MaxSlowdown float64
	Baselines   []SpotBaselineRow
	Rows        []SpotFrontierRow
	Advice      advisor.SpotAdvice
}

// SpotFrontier maps the frontier under the published seed.
func SpotFrontier(ctx context.Context) (SpotFrontierResult, error) {
	return SpotFrontierSeeded(ctx, DefaultSpotSeed)
}

// SpotFrontierSeeded is SpotFrontier with an explicit revocation seed:
// the schedule is the scenario's only stochastic input, sampled once
// per pool size through exec.SpotSchedule, so any server or CLI caller
// can replay the exact same revocations or explore fresh ones.
func SpotFrontierSeeded(ctx context.Context, seed int64) (SpotFrontierResult, error) {
	spec := montage.OneDegree()
	w, err := generate(spec)
	if err != nil {
		return SpotFrontierResult{}, err
	}
	res := SpotFrontierResult{
		Spec:        spec,
		Seed:        seed,
		Market:      DefaultSpotMarket(),
		Warning:     120, // EC2's two-minute reclaim notice
		Downtime:    600,
		Overhead:    10,
		MaxSlowdown: 1.5,
	}
	procsAxis := []int{8, 16, 32}
	intervals := []units.Duration{0, 300, 900}
	// The revocation horizon covers even a badly stretched run; events
	// past the makespan are simply never reached.
	const horizon = units.Duration(4 * units.SecondsPerHour)

	baselineRuns, err := Sweep[int, core.Result]{
		Name:   "spot-baselines",
		Points: procsAxis,
		Run: func(ctx context.Context, procs int) (core.Result, error) {
			plan := core.DefaultPlan()
			plan.Processors = procs
			return core.RunContext(ctx, w, plan)
		},
	}.Do(ctx)
	if err != nil {
		return SpotFrontierResult{}, err
	}
	baseline := make(map[int]core.Result, len(procsAxis))
	for i, procs := range procsAxis {
		baseline[procs] = baselineRuns[i]
		res.Baselines = append(res.Baselines, SpotBaselineRow{
			Processors: procs,
			Makespan:   baselineRuns[i].Metrics.Makespan,
			Cost:       baselineRuns[i].Cost.Total(),
		})
	}
	// One schedule per pool size, shared by every checkpoint interval in
	// that column: the reclaim instants are identical across columns, so
	// differences within a column are purely the recovery policy's.
	schedules := make(map[int][]exec.Preemption, len(procsAxis))
	for _, procs := range procsAxis {
		sched, err := exec.SpotSchedule(horizon, procs, res.Market.RevocationsPerHour, res.Warning, res.Downtime, seed)
		if err != nil {
			return SpotFrontierResult{}, err
		}
		schedules[procs] = sched
	}

	type cell struct {
		procs    int
		interval units.Duration
	}
	var grid []cell
	for _, procs := range procsAxis {
		for _, iv := range intervals {
			grid = append(grid, cell{procs, iv})
		}
	}
	res.Rows, err = Sweep[cell, SpotFrontierRow]{
		Name:   "spot-frontier",
		Points: grid,
		Run: func(ctx context.Context, c cell) (SpotFrontierRow, error) {
			plan := core.DefaultPlan()
			plan.Processors = c.procs
			plan.Pricing = res.Market.Apply(cost.Amazon2008())
			plan.Preemptions = schedules[c.procs]
			if c.interval > 0 {
				plan.Recovery = exec.Recovery{Checkpoint: true, Interval: c.interval, Overhead: res.Overhead}
			}
			r, err := core.RunContext(ctx, w, plan)
			if err != nil {
				return SpotFrontierRow{}, err
			}
			base := baseline[c.procs]
			cmp, err := econ.CompareSpot(base.Cost, r.Cost, base.Metrics.Makespan, r.Metrics.Makespan, res.MaxSlowdown)
			if err != nil {
				return SpotFrontierRow{}, err
			}
			return SpotFrontierRow{
				Processors:  c.procs,
				Checkpoint:  c.interval,
				Makespan:    r.Metrics.Makespan,
				Preempted:   r.Metrics.Preempted,
				WastedCPU:   r.Metrics.WastedCPUSeconds,
				Checkpoints: r.Metrics.Checkpoints,
				SpotCost:    r.Cost.Total(),
				Comparison:  cmp,
			}, nil
		},
	}.Do(ctx)
	if err != nil {
		return SpotFrontierResult{}, err
	}

	// The advice weighs every frontier point against the cheapest
	// baseline (ties to the faster one): the decision a portal operator
	// actually faces.
	best := advisor.Option{}
	for i, b := range res.Baselines {
		o := advisor.Option{Processors: b.Processors, Cost: b.Cost, Time: b.Makespan}
		if i == 0 || o.Cost < best.Cost || (o.Cost == best.Cost && o.Time < best.Time) {
			best = o
		}
	}
	choices := make([]advisor.SpotChoice, len(res.Rows))
	for i, r := range res.Rows {
		choices[i] = advisor.SpotChoice{
			Processors:         r.Processors,
			CheckpointInterval: r.Checkpoint,
			Cost:               r.SpotCost,
			Makespan:           r.Makespan,
		}
	}
	res.Advice, err = advisor.RecommendSpot(best, choices, res.MaxSlowdown)
	if err != nil {
		return SpotFrontierResult{}, err
	}
	return res, nil
}

// Tables renders the frontier: baselines, the grid, and the advice.
func (r SpotFrontierResult) Tables() []*report.Table {
	base := report.New(
		fmt.Sprintf("Spot frontier: on-demand baselines on %s", r.Spec.Name),
		"procs", "makespan", "total$")
	for _, b := range r.Baselines {
		base.MustAdd(fmt.Sprint(b.Processors), b.Makespan.String(), report.F(b.Cost.Dollars(), 4))
	}

	grid := report.New(
		fmt.Sprintf("Spot frontier on %s: %.0f%% CPU discount, %.1f reclaims/hour, seed %d",
			r.Spec.Name, r.Market.Discount*100, r.Market.RevocationsPerHour, r.Seed),
		"procs", "checkpoint", "makespan", "slowdown", "preempted", "wasted-cpu-s", "ckpts", "spot$", "on-demand$", "verdict")
	for _, row := range r.Rows {
		ck := "none"
		if row.Checkpoint > 0 {
			ck = row.Checkpoint.String()
		}
		grid.MustAdd(fmt.Sprint(row.Processors), ck, row.Makespan.String(),
			report.F(row.Comparison.Slowdown, 2), fmt.Sprint(row.Preempted),
			report.F(row.WastedCPU, 0), fmt.Sprint(row.Checkpoints),
			report.F(row.SpotCost.Dollars(), 4),
			report.F(row.Comparison.OnDemandCost.Dollars(), 4),
			row.Comparison.Verdict.String())
	}

	advice := report.New("Spot advice (cheapest baseline, max slowdown "+report.F(r.MaxSlowdown, 2)+"x)",
		"use-spot", "procs", "checkpoint", "spot$", "baseline$", "saving")
	if r.Advice.UseSpot {
		ck := "none"
		if r.Advice.Choice.CheckpointInterval > 0 {
			ck = r.Advice.Choice.CheckpointInterval.String()
		}
		advice.MustAdd("yes", fmt.Sprint(r.Advice.Choice.Processors), ck,
			report.F(r.Advice.Choice.Cost.Dollars(), 4),
			report.F(r.Advice.Baseline.Cost.Dollars(), 4),
			fmt.Sprintf("%.0f%%", r.Advice.Savings*100))
	} else {
		advice.MustAdd("no", fmt.Sprint(r.Advice.Baseline.Processors), "-",
			"-", report.F(r.Advice.Baseline.Cost.Dollars(), 4), "-")
	}
	return []*report.Table{base, grid, advice}
}
