package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/montage"
	"repro/internal/report"
	"repro/wire"
)

// The scenario-grid experiment is the registry's door into the v2
// declarative sweep engine: any experiment expressible as "a base
// scenario plus axes" runs through it, so adding a new scenario knob
// makes it sweepable from the CLI (-exp scenario-grid), the API
// (POST /v2/experiments/scenario-grid with {"grid": ...}) and
// /v2/sweep with zero new experiment code.

// DefaultGridSeed seeds the canned default grid's revocation sampling.
const DefaultGridSeed int64 = 2026

// DefaultGrid is the canned scenario grid the experiment runs when the
// caller supplies none: the 1-degree workflow on a 16-processor fleet
// with a 4-slot reliable floor and checkpointing, swept over the spot
// revocation rate -- the ROADMAP's "wire-level sweeps over spot axes"
// made a first-class experiment.
func DefaultGrid() wire.SweepRequest {
	return wire.SweepRequest{
		Scenario: wire.Scenario{
			Version:  wire.Version,
			Workflow: wire.WorkflowSection{Name: "1deg"},
			Fleet:    &wire.FleetSection{Processors: 16, Reliable: 4},
			Spot:     &wire.SpotSection{Seed: DefaultGridSeed, Discount: 0.65},
			Recovery: &wire.RecoverySection{CheckpointSeconds: 300, CheckpointOverheadSeconds: 10},
		},
		Axes: []wire.Axis{
			{Path: "spot.rate_per_hour", Values: []any{0.0, 0.5, 1.0, 2.0}},
		},
	}
}

// GridRow is one grid point's measured outcome.
type GridRow struct {
	Values   []any
	Scenario wire.Scenario
	Result   core.Result
}

// ScenarioGrid expands and runs a declarative scenario grid through the
// concurrent sweep engine, returning rows in grid order.
func ScenarioGrid(ctx context.Context, req wire.SweepRequest) ([]GridRow, error) {
	grid, err := req.ResolveGrid()
	if err != nil {
		return nil, err
	}
	return Sweep[wire.ResolvedPoint, GridRow]{
		Name:   "scenario-grid",
		Points: grid,
		Run: func(ctx context.Context, p wire.ResolvedPoint) (GridRow, error) {
			wf, err := montage.Cached(p.Spec)
			if err != nil {
				return GridRow{}, err
			}
			res, err := core.RunContext(ctx, wf, p.Plan)
			if err != nil {
				return GridRow{}, err
			}
			return GridRow{Values: p.Values, Scenario: p.Scenario, Result: res}, nil
		},
	}.Do(ctx)
}

// GridTable renders a scenario grid's rows: one column per axis, then
// the headline outcome of each point.
func GridTable(req wire.SweepRequest, rows []GridRow) (*report.Table, error) {
	cols := make([]string, 0, len(req.Axes)+5)
	for _, ax := range req.Axes {
		cols = append(cols, ax.Path)
	}
	cols = append(cols, "makespan", "util", "preempted", "wasted-cpu-s", "total$")
	tbl := report.New(fmt.Sprintf("Scenario grid: %d points over %d axes", len(rows), len(req.Axes)), cols...)
	for _, row := range rows {
		cells := make([]string, 0, len(cols))
		for _, v := range row.Values {
			cells = append(cells, fmt.Sprint(v))
		}
		m := row.Result.Metrics
		cells = append(cells,
			m.Makespan.String(),
			report.F(m.Utilization, 3),
			fmt.Sprint(m.Preempted),
			report.F(m.WastedCPUSeconds, 0),
			report.F(row.Result.Cost.Total().Dollars(), 4),
		)
		if err := tbl.Add(cells...); err != nil {
			return nil, err
		}
	}
	return tbl, nil
}

// scenarioGridTables is the registry runner: the caller's grid from
// Params, or the canned default.  Params.Seed reseeds the base
// scenario's revocation sampling like every other stochastic
// experiment (a copy of the spot section is mutated, never the
// caller's document).
func scenarioGridTables(ctx context.Context, p Params) ([]*report.Table, error) {
	req := DefaultGrid()
	if p.Grid != nil {
		req = *p.Grid
	}
	if p.Seed != nil {
		spot := wire.SpotSection{}
		if req.Scenario.Spot != nil {
			spot = *req.Scenario.Spot
		}
		spot.Seed = *p.Seed
		req.Scenario.Spot = &spot
	}
	rows, err := ScenarioGrid(ctx, req)
	if err != nil {
		return nil, err
	}
	tbl, err := GridTable(req, rows)
	if err != nil {
		return nil, err
	}
	return []*report.Table{tbl}, nil
}
