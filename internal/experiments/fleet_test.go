package experiments

import (
	"context"
	"reflect"
	"testing"
)

func TestMixedFleetScenario(t *testing.T) {
	r, err := MixedFleet(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("frontier has %d rows, want 4 splits", len(r.Rows))
	}
	if r.Seed != DefaultFleetSeed || r.Processors != 16 {
		t.Errorf("header = seed %d, %d procs", r.Seed, r.Processors)
	}
	if r.Baseline.Cost <= 0 || r.Baseline.Makespan <= 0 {
		t.Fatalf("degenerate baseline %+v", r.Baseline)
	}
	byOnDemand := map[int]FleetRow{}
	for _, row := range r.Rows {
		if row.Cost <= 0 || row.Makespan <= 0 {
			t.Errorf("degenerate row %+v", row)
		}
		if row.Utilization <= 0 || row.Utilization > 1 {
			t.Errorf("split %d utilization %v outside (0,1]", row.OnDemand, row.Utilization)
		}
		byOnDemand[row.OnDemand] = row
	}
	allSpot, ok := byOnDemand[0]
	mostly, ok2 := byOnDemand[12]
	if !ok || !ok2 {
		t.Fatal("expected splits missing")
	}
	if allSpot.Preempted == 0 {
		t.Error("all-spot fleet was never preempted; the scenario is vacuous")
	}
	// A larger reliable floor shields more work from the reclaims.
	if mostly.Preempted >= allSpot.Preempted {
		t.Errorf("12-reliable fleet preempted %d >= all-spot %d", mostly.Preempted, allSpot.Preempted)
	}
	// The advice names a concrete fleet split drawn from the grid.
	if r.Advice.UseSpot {
		if _, ok := byOnDemand[r.Advice.Choice.OnDemand]; !ok {
			t.Errorf("advice recommends split %d, not on the grid", r.Advice.Choice.OnDemand)
		}
		if r.Advice.Choice.Cost >= r.Baseline.Cost {
			t.Errorf("recommended fleet costs %v, not below the %v baseline", r.Advice.Choice.Cost, r.Baseline.Cost)
		}
	}
}

// TestMixedFleetSeededDeterministic pins replayability: the registered
// experiment must produce identical tables for the same seed and
// distinct ones for different seeds.
func TestMixedFleetSeededDeterministic(t *testing.T) {
	ctx := context.Background()
	a, err := MixedFleetSeeded(ctx, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MixedFleetSeeded(ctx, 99)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different frontiers")
	}
	c, err := MixedFleetSeeded(ctx, 100)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Rows, c.Rows) {
		t.Error("different seeds produced identical frontiers")
	}
}
