package experiments

import (
	"context"
	"fmt"

	"repro/internal/advisor"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/econ"
	"repro/internal/montage"
	"repro/internal/report"
	"repro/internal/units"
)

// The mixed-fleet frontier extends the spot frontier with the ROADMAP's
// "part on-demand, part spot" scenario: a fixed-size pool is split
// between reliable on-demand capacity (full price, never reclaimed,
// hosting the critical-path tasks) and revocable spot capacity (deeply
// discounted, reclaimed per instance with heterogeneous warnings).  The
// experiment sweeps the split and asks where the fleet should sit
// between "all spot and cheap but bleeding rework" and "all on demand
// and safe but full price" -- the same heterogeneous, partially-reliable
// capacity trade grid federations like the International Lattice Data
// Grid faced long before clouds priced it explicitly.

// DefaultFleetSeed is the published revocation-schedule seed of the
// mixed-fleet frontier.
const DefaultFleetSeed int64 = 2010

// FleetRow is one fleet split's measured outcome.
type FleetRow struct {
	// OnDemand is the reliable sub-pool size; Processors - OnDemand run
	// on the spot market.
	OnDemand    int
	Makespan    units.Duration
	Utilization float64
	Preempted   int
	WastedCPU   float64
	Cost        units.Money
	Comparison  econ.SpotComparison
}

// MixedFleetResult is the full fleet-split frontier.
type MixedFleetResult struct {
	Spec        montage.Spec
	Seed        int64
	Market      cost.Spot
	Processors  int
	Warning     units.Duration
	Downtime    units.Duration
	Checkpoint  units.Duration
	Overhead    units.Duration
	MaxSlowdown float64
	Baseline    SpotBaselineRow
	Rows        []FleetRow
	Advice      advisor.SpotAdvice
}

// MixedFleet maps the frontier under the published seed.
func MixedFleet(ctx context.Context) (MixedFleetResult, error) {
	return MixedFleetSeeded(ctx, DefaultFleetSeed)
}

// MixedFleetSeeded is MixedFleet with an explicit revocation seed: the
// per-instance reclaim schedule is the scenario's only stochastic
// input, materialized once per split through the declarative
// core.SpotPlan, so any server or CLI caller can replay or explore it.
func MixedFleetSeeded(ctx context.Context, seed int64) (MixedFleetResult, error) {
	spec := montage.OneDegree()
	w, err := generate(spec)
	if err != nil {
		return MixedFleetResult{}, err
	}
	res := MixedFleetResult{
		Spec:        spec,
		Seed:        seed,
		Market:      DefaultSpotMarket(),
		Processors:  16,
		Warning:     120, // EC2's two-minute reclaim notice
		Downtime:    600,
		Checkpoint:  300,
		Overhead:    10,
		MaxSlowdown: 1.5,
	}

	base := core.DefaultPlan()
	base.Processors = res.Processors
	baseline, err := core.RunContext(ctx, w, base)
	if err != nil {
		return MixedFleetResult{}, err
	}
	res.Baseline = SpotBaselineRow{
		Processors: res.Processors,
		Makespan:   baseline.Metrics.Makespan,
		Cost:       baseline.Cost.Total(),
	}

	splits := []int{0, 4, 8, 12}
	res.Rows, err = Sweep[int, FleetRow]{
		Name:   "mixed-fleet",
		Points: splits,
		Run: func(ctx context.Context, onDemand int) (FleetRow, error) {
			plan := core.DefaultPlan()
			plan.Processors = res.Processors
			plan.Spot = core.SpotPlan{
				RatePerHour: res.Market.RevocationsPerHour,
				Warning:     res.Warning,
				Downtime:    res.Downtime,
				Seed:        seed,
				Discount:    res.Market.Discount,
				OnDemand:    onDemand,
			}
			plan.Recovery.Checkpoint = true
			plan.Recovery.Interval = res.Checkpoint
			plan.Recovery.Overhead = res.Overhead
			r, err := core.RunContext(ctx, w, plan)
			if err != nil {
				return FleetRow{}, err
			}
			cmp, err := econ.CompareSpot(baseline.Cost, r.Cost,
				baseline.Metrics.Makespan, r.Metrics.Makespan, res.MaxSlowdown)
			if err != nil {
				return FleetRow{}, err
			}
			return FleetRow{
				OnDemand:    onDemand,
				Makespan:    r.Metrics.Makespan,
				Utilization: r.Metrics.Utilization,
				Preempted:   r.Metrics.Preempted,
				WastedCPU:   r.Metrics.WastedCPUSeconds,
				Cost:        r.Cost.Total(),
				Comparison:  cmp,
			}, nil
		},
	}.Do(ctx)
	if err != nil {
		return MixedFleetResult{}, err
	}

	choices := make([]advisor.SpotChoice, len(res.Rows))
	for i, r := range res.Rows {
		choices[i] = advisor.SpotChoice{
			Processors:         res.Processors,
			OnDemand:           r.OnDemand,
			CheckpointInterval: res.Checkpoint,
			Cost:               r.Cost,
			Makespan:           r.Makespan,
		}
	}
	res.Advice, err = advisor.RecommendSpot(advisor.Option{
		Processors: res.Processors,
		Cost:       res.Baseline.Cost,
		Time:       res.Baseline.Makespan,
	}, choices, res.MaxSlowdown)
	if err != nil {
		return MixedFleetResult{}, err
	}
	return res, nil
}

// Tables renders the frontier: the all-on-demand baseline, the split
// grid, and the recommended fleet split.
func (r MixedFleetResult) Tables() []*report.Table {
	grid := report.New(
		fmt.Sprintf("Mixed fleet on %s: %d procs, %.0f%% spot discount, %.1f reclaims/hour/instance, seed %d",
			r.Spec.Name, r.Processors, r.Market.Discount*100, r.Market.RevocationsPerHour, r.Seed),
		"on-demand", "spot", "makespan", "slowdown", "util", "preempted", "wasted-cpu-s", "total$", "verdict")
	grid.MustAdd(fmt.Sprint(r.Processors), "0", r.Baseline.Makespan.String(), "1.00", "-", "0", "0",
		report.F(r.Baseline.Cost.Dollars(), 4), "baseline")
	for _, row := range r.Rows {
		grid.MustAdd(fmt.Sprint(row.OnDemand), fmt.Sprint(r.Processors-row.OnDemand),
			row.Makespan.String(), report.F(row.Comparison.Slowdown, 2),
			report.F(row.Utilization, 3), fmt.Sprint(row.Preempted),
			report.F(row.WastedCPU, 0), report.F(row.Cost.Dollars(), 4),
			row.Comparison.Verdict.String())
	}

	advice := report.New("Fleet advice (vs all-on-demand, max slowdown "+report.F(r.MaxSlowdown, 2)+"x)",
		"use-spot", "on-demand", "spot", "checkpoint", "fleet$", "baseline$", "saving")
	if r.Advice.UseSpot {
		advice.MustAdd("yes", fmt.Sprint(r.Advice.Choice.OnDemand),
			fmt.Sprint(r.Advice.Choice.Processors-r.Advice.Choice.OnDemand),
			r.Advice.Choice.CheckpointInterval.String(),
			report.F(r.Advice.Choice.Cost.Dollars(), 4),
			report.F(r.Advice.Baseline.Cost.Dollars(), 4),
			fmt.Sprintf("%.0f%%", r.Advice.Savings*100))
	} else {
		advice.MustAdd("no", fmt.Sprint(r.Processors), "0", "-",
			"-", report.F(r.Advice.Baseline.Cost.Dollars(), 4), "-")
	}
	return []*report.Table{grid, advice}
}
