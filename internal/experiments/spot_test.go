package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/econ"
	"repro/internal/exec"
	"repro/internal/montage"
	"repro/internal/units"
)

func TestSpotFrontierScenario(t *testing.T) {
	r, err := SpotFrontier(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Baselines) != 3 || len(r.Rows) != 9 {
		t.Fatalf("frontier shape = %d baselines, %d rows; want 3, 9", len(r.Baselines), len(r.Rows))
	}
	if r.Seed != DefaultSpotSeed {
		t.Errorf("seed not recorded: %d", r.Seed)
	}
	byKey := map[[2]int]SpotFrontierRow{}
	for _, row := range r.Rows {
		if row.SpotCost <= 0 || row.Makespan <= 0 {
			t.Errorf("degenerate row %+v", row)
		}
		if row.Comparison.Slowdown < 1 {
			t.Errorf("spot run faster than reliable capacity: %+v", row)
		}
		byKey[[2]int{row.Processors, int(row.Checkpoint)}] = row
	}
	// Under the published seed the 8-processor pool is hit repeatedly:
	// unprotected it bleeds far more CPU than with 5-minute checkpoints.
	raw, ok := byKey[[2]int{8, 0}]
	ck, ok2 := byKey[[2]int{8, 300}]
	if !ok || !ok2 {
		t.Fatal("expected grid points missing")
	}
	if raw.Preempted == 0 {
		t.Error("published seed preempted nothing at 8 processors; the frontier is vacuous")
	}
	if ck.WastedCPU >= raw.WastedCPU {
		t.Errorf("checkpointing did not cut waste: %v vs %v", ck.WastedCPU, raw.WastedCPU)
	}
	if ck.Checkpoints == 0 {
		t.Error("checkpointed run wrote no checkpoints")
	}
	// The 65% discount survives the revocations comfortably here.
	if !r.Advice.UseSpot {
		t.Errorf("advice = %+v, want spot recommended", r.Advice)
	}
	if r.Advice.Savings < 0.3 {
		t.Errorf("savings = %v, want > 0.3", r.Advice.Savings)
	}

	tables := r.Tables()
	if len(tables) != 3 {
		t.Fatalf("got %d tables, want 3", len(tables))
	}
	var b strings.Builder
	for _, tb := range tables {
		if err := tb.WriteText(&b); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range []string{"seed 2009", "spot-wins", "use-spot"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("rendered frontier missing %q:\n%s", want, b.String())
		}
	}
}

func TestSpotFrontierSeedThreading(t *testing.T) {
	ctx := context.Background()
	a, err := SpotFrontierSeeded(ctx, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SpotFrontierSeeded(ctx, 11)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different frontiers")
	}
	c, err := SpotFrontierSeeded(ctx, DefaultSpotSeed)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Rows, c.Rows) {
		t.Error("different seeds produced identical frontier rows")
	}
}

// TestSpotSweepSerialMatchesParallel is the preemption determinism
// pin: the same seed and revocation schedule must yield byte-identical
// metrics whether the sweep engine runs the grid on one worker or on
// GOMAXPROCS workers.
func TestSpotSweepSerialMatchesParallel(t *testing.T) {
	w, err := generate(montage.OneDegree())
	if err != nil {
		t.Fatal(err)
	}
	market := DefaultSpotMarket()
	type cell struct {
		procs    int
		interval units.Duration
	}
	var grid []cell
	for _, procs := range []int{8, 16, 32} {
		for _, iv := range []units.Duration{0, 300, 900} {
			grid = append(grid, cell{procs, iv})
		}
	}
	run := func(ctx context.Context, c cell) (exec.Metrics, error) {
		sched, err := exec.SpotSchedule(4*3600, c.procs, market.RevocationsPerHour, 120, 600, DefaultSpotSeed)
		if err != nil {
			return exec.Metrics{}, err
		}
		plan := core.DefaultPlan()
		plan.Processors = c.procs
		plan.Pricing = market.Apply(cost.Amazon2008())
		plan.Preemptions = sched
		if c.interval > 0 {
			plan.Recovery = exec.Recovery{Checkpoint: true, Interval: c.interval, Overhead: 10}
		}
		r, err := core.RunContext(ctx, w, plan)
		return r.Metrics, err
	}
	serial, err := Sweep[cell, exec.Metrics]{Name: "spot-serial", Points: grid, Workers: 1, Run: run}.Do(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Sweep[cell, exec.Metrics]{Name: "spot-parallel", Points: grid, Run: run}.Do(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	a, err := json.Marshal(serial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("serial and parallel spot sweeps diverge")
	}
	preempted := 0
	for _, m := range serial {
		preempted += m.Preempted
	}
	if preempted == 0 {
		t.Error("no grid point was preempted; the determinism pin is vacuous")
	}
}

// TestCompareSpotConsistency cross-checks the experiment's verdicts
// against a direct econ computation on one grid point.
func TestCompareSpotConsistency(t *testing.T) {
	r, err := SpotFrontier(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	base := map[int]SpotBaselineRow{}
	for _, b := range r.Baselines {
		base[b.Processors] = b
	}
	for _, row := range r.Rows {
		b := base[row.Processors]
		if row.Comparison.OnDemandCost != b.Cost {
			t.Errorf("row %+v compares against %v, baseline says %v", row, row.Comparison.OnDemandCost, b.Cost)
		}
		wantVerdict := econ.OnDemandWins
		switch {
		case row.SpotCost < b.Cost && float64(row.Makespan/b.Makespan) <= r.MaxSlowdown:
			wantVerdict = econ.SpotWins
		case row.SpotCost < b.Cost:
			wantVerdict = econ.SpotTooSlow
		}
		if row.Comparison.Verdict != wantVerdict {
			t.Errorf("row procs=%d ck=%v verdict %v, want %v", row.Processors, row.Checkpoint, row.Comparison.Verdict, wantVerdict)
		}
	}
}
