package experiments

import (
	"context"
	"fmt"

	"repro/internal/sweep"
)

// Sweep is the concurrent grid engine every figure and table reproduction
// is routed through: a grid of points plus a function that simulates one
// point.  Do fans the grid out over a worker pool sized by GOMAXPROCS
// (unless Workers pins it) and collects results in grid order, so the
// output is byte-identical to a serial loop over Points -- parallelism
// never changes a paper number.
type Sweep[P, R any] struct {
	// Name labels the sweep in errors.
	Name string
	// Points is the grid, in presentation order.
	Points []P
	// Workers bounds the pool; <= 0 means GOMAXPROCS.  Workers == 1 is
	// the serial reference path the determinism tests compare against.
	Workers int
	// Run simulates one grid point.  It is called concurrently and must
	// treat shared state (cached workflows in particular) as read-only.
	Run func(ctx context.Context, p P) (R, error)
}

// Do executes the grid and returns one result per point, in the order of
// Points.  The first error (by grid index, matching what a serial loop
// would report) aborts the sweep, labeled with Name; cancellation of ctx
// wins over errors.
func (s Sweep[P, R]) Do(ctx context.Context) ([]R, error) {
	out, err := sweep.Map(ctx, s.Workers, s.Points, func(ctx context.Context, _ int, p P) (R, error) {
		return s.Run(ctx, p)
	})
	if err != nil && s.Name != "" {
		return nil, fmt.Errorf("%s: %w", s.Name, err)
	}
	return out, err
}

// DoEach executes the grid like Do but hands each result to emit in
// grid order as soon as it and every earlier point have finished, while
// later points are still computing -- streaming output for long grids.
// An error from emit aborts the sweep.
func (s Sweep[P, R]) DoEach(ctx context.Context, emit func(r R) error) error {
	err := sweep.Stream(ctx, s.Workers, s.Points,
		func(ctx context.Context, _ int, p P) (R, error) {
			return s.Run(ctx, p)
		},
		func(_ int, r R) error { return emit(r) })
	if err != nil && s.Name != "" {
		return fmt.Errorf("%s: %w", s.Name, err)
	}
	return err
}
