// Package experiments is the reproduction harness: one constructor per
// table and figure in the paper's evaluation (§6), each returning typed
// rows plus renderable tables.  The bench harness (bench_test.go) and
// the montagesim CLI are thin wrappers over this package.
//
// Index (see DESIGN.md for the full mapping):
//
//	CCRTable      -- the §6.3 CCR table
//	Fig4/5/6      -- Question 1 provisioning sweeps (1/2/4-degree)
//	Fig7/8/9      -- Question 2a data-management comparison
//	Fig10         -- CPU vs data-management cost summary
//	Fig11         -- CCR sensitivity sweep
//	Q2b           -- archive break-even analysis
//	Q3WholeSky    -- whole-sky campaign costing
//	Q3Store       -- store-vs-recompute horizons
package experiments

import (
	"fmt"

	"repro/internal/archive"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dag"
	"repro/internal/datamgmt"
	"repro/internal/montage"
	"repro/internal/report"
	"repro/internal/units"
)

// generate builds a preset workflow, failing loudly on generator bugs.
func generate(spec montage.Spec) (*dag.Workflow, error) {
	w, err := montage.Generate(spec)
	if err != nil {
		return nil, fmt.Errorf("experiments: generate %s: %w", spec.Name, err)
	}
	return w, nil
}

// ---- E1: the CCR table ----

// CCRRow is one line of the §6.3 table.
type CCRRow struct {
	Workflow string
	Tasks    int
	CCR      float64
	PaperCCR float64
}

// CCRTableResult reproduces the communication-to-computation table.
type CCRTableResult struct {
	Bandwidth units.Bandwidth
	Rows      []CCRRow
}

// CCRTable computes the CCR of the three Montage workflows at the
// paper's 10 Mbps reference bandwidth.
func CCRTable() (CCRTableResult, error) {
	paper := map[string]float64{
		"montage-1deg": 0.053, "montage-2deg": 0.053, "montage-4deg": 0.045,
	}
	res := CCRTableResult{Bandwidth: units.Mbps(10)}
	for _, spec := range montage.Presets() {
		w, err := generate(spec)
		if err != nil {
			return CCRTableResult{}, err
		}
		res.Rows = append(res.Rows, CCRRow{
			Workflow: spec.Name,
			Tasks:    w.NumTasks(),
			CCR:      w.CCR(res.Bandwidth),
			PaperCCR: paper[spec.Name],
		})
	}
	return res, nil
}

// Table renders the CCR table.
func (r CCRTableResult) Table() *report.Table {
	t := report.New(fmt.Sprintf("CCR table (B = %v) -- paper §6.3", r.Bandwidth),
		"workflow", "tasks", "ccr", "paper")
	for _, row := range r.Rows {
		t.MustAdd(row.Workflow, fmt.Sprint(row.Tasks),
			report.F(row.CCR, 3), report.F(row.PaperCCR, 3))
	}
	return t
}

// ---- E2-E4: Question 1 provisioning sweeps (Figs. 4-6) ----

// ProvisioningFigure is a Question-1 sweep for one workflow.
type ProvisioningFigure struct {
	Figure string
	Spec   montage.Spec
	Points []core.SweepPoint
}

// Fig4 sweeps the 1-degree workflow over 1..128 provisioned processors.
func Fig4() (ProvisioningFigure, error) { return provisioning("Fig4", montage.OneDegree()) }

// Fig5 sweeps the 2-degree workflow.
func Fig5() (ProvisioningFigure, error) { return provisioning("Fig5", montage.TwoDegree()) }

// Fig6 sweeps the 4-degree workflow.
func Fig6() (ProvisioningFigure, error) { return provisioning("Fig6", montage.FourDegree()) }

func provisioning(figure string, spec montage.Spec) (ProvisioningFigure, error) {
	w, err := generate(spec)
	if err != nil {
		return ProvisioningFigure{}, err
	}
	points, err := core.ProvisioningSweep(w, core.GeometricProcessors(), core.DefaultPlan())
	if err != nil {
		return ProvisioningFigure{}, err
	}
	return ProvisioningFigure{Figure: figure, Spec: spec, Points: points}, nil
}

// CostTable renders the figure's top panel: cost components vs. pool
// size.
func (f ProvisioningFigure) CostTable() *report.Table {
	t := report.New(
		fmt.Sprintf("%s (top): execution costs of %s vs. provisioned processors", f.Figure, f.Spec.Name),
		"procs", "cpu$", "storage$", "storage$(cleanup)", "transfer$", "total$")
	for _, p := range f.Points {
		c := p.Result.Cost
		t.MustAdd(
			fmt.Sprint(p.Processors),
			report.F(c.CPU.Dollars(), 4),
			fmt.Sprintf("%.6f", c.Storage.Dollars()),
			fmt.Sprintf("%.6f", p.StorageCostCleanup.Dollars()),
			report.F(c.Transfer().Dollars(), 4),
			report.F(c.Total().Dollars(), 4),
		)
	}
	return t
}

// TimeTable renders the figure's bottom panel: execution time vs. pool
// size.
func (f ProvisioningFigure) TimeTable() *report.Table {
	t := report.New(
		fmt.Sprintf("%s (bottom): execution time of %s vs. provisioned processors", f.Figure, f.Spec.Name),
		"procs", "exec-time", "hours", "utilization")
	for _, p := range f.Points {
		m := p.Result.Metrics
		t.MustAdd(
			fmt.Sprint(p.Processors),
			m.ExecTime.String(),
			report.F(m.ExecTime.Hours(), 3),
			report.F(m.Utilization, 3),
		)
	}
	return t
}

// ---- E5-E7: Question 2a data-management comparison (Figs. 7-9) ----

// DataManagementFigure compares the three execution models for one
// workflow under on-demand billing at full parallelism.
type DataManagementFigure struct {
	Figure  string
	Spec    montage.Spec
	Results map[datamgmt.Mode]core.Result
}

// Fig7 compares modes on the 1-degree workflow.
func Fig7() (DataManagementFigure, error) { return dataManagement("Fig7", montage.OneDegree()) }

// Fig8 compares modes on the 2-degree workflow.
func Fig8() (DataManagementFigure, error) { return dataManagement("Fig8", montage.TwoDegree()) }

// Fig9 compares modes on the 4-degree workflow.
func Fig9() (DataManagementFigure, error) { return dataManagement("Fig9", montage.FourDegree()) }

func dataManagement(figure string, spec montage.Spec) (DataManagementFigure, error) {
	w, err := generate(spec)
	if err != nil {
		return DataManagementFigure{}, err
	}
	results, err := core.CompareModes(w, core.DefaultPlan())
	if err != nil {
		return DataManagementFigure{}, err
	}
	return DataManagementFigure{Figure: figure, Spec: spec, Results: results}, nil
}

// StorageTable renders the figure's top panel: storage space-time per
// mode.
func (f DataManagementFigure) StorageTable() *report.Table {
	t := report.New(
		fmt.Sprintf("%s (top): storage used by %s per mode", f.Figure, f.Spec.Name),
		"mode", "gb-hours", "peak")
	for _, mode := range datamgmt.Modes() {
		m := f.Results[mode].Metrics
		t.MustAdd(mode.String(), report.F(m.GBHoursStorage(), 4), m.PeakStorage.String())
	}
	return t
}

// TransferTable renders the middle panel: data moved per direction.
func (f DataManagementFigure) TransferTable() *report.Table {
	t := report.New(
		fmt.Sprintf("%s (middle): data transfer of %s per mode", f.Figure, f.Spec.Name),
		"mode", "in", "out")
	for _, mode := range datamgmt.Modes() {
		m := f.Results[mode].Metrics
		t.MustAdd(mode.String(), m.BytesIn.String(), m.BytesOut.String())
	}
	return t
}

// CostTable renders the bottom panel: data-management dollar costs.
func (f DataManagementFigure) CostTable() *report.Table {
	t := report.New(
		fmt.Sprintf("%s (bottom): costs of %s per mode (excl. CPU)", f.Figure, f.Spec.Name),
		"mode", "storage$", "in$", "out$", "dm-total$")
	for _, mode := range datamgmt.Modes() {
		c := f.Results[mode].Cost
		t.MustAdd(mode.String(),
			fmt.Sprintf("%.6f", c.Storage.Dollars()),
			report.F(c.TransferIn.Dollars(), 4),
			report.F(c.TransferOut.Dollars(), 4),
			report.F(c.DataManagement().Dollars(), 4),
		)
	}
	return t
}

// ---- E8: Fig. 10, CPU vs data-management costs ----

// Fig10Row is one workflow's summary.
type Fig10Row struct {
	Workflow string
	CPUCost  units.Money
	DM       map[datamgmt.Mode]units.Money
	Total    map[datamgmt.Mode]units.Money
}

// Fig10Result summarizes CPU and DM costs across workflows and modes.
type Fig10Result struct {
	Rows []Fig10Row
}

// Fig10 runs all three workflows under all three modes with on-demand
// billing.
func Fig10() (Fig10Result, error) {
	var res Fig10Result
	for _, spec := range montage.Presets() {
		w, err := generate(spec)
		if err != nil {
			return Fig10Result{}, err
		}
		results, err := core.CompareModes(w, core.DefaultPlan())
		if err != nil {
			return Fig10Result{}, err
		}
		row := Fig10Row{
			Workflow: spec.Name,
			CPUCost:  results[datamgmt.Regular].Cost.CPU,
			DM:       make(map[datamgmt.Mode]units.Money, 3),
			Total:    make(map[datamgmt.Mode]units.Money, 3),
		}
		for mode, r := range results {
			row.DM[mode] = r.Cost.DataManagement()
			row.Total[mode] = r.Cost.Total()
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table renders the Fig. 10 summary.
func (r Fig10Result) Table() *report.Table {
	t := report.New("Fig10: CPU and data-management costs per workflow and mode",
		"workflow", "cpu$", "dm$(remote)", "dm$(regular)", "dm$(cleanup)",
		"total$(remote)", "total$(regular)", "total$(cleanup)")
	for _, row := range r.Rows {
		t.MustAdd(row.Workflow,
			report.F(row.CPUCost.Dollars(), 2),
			report.F(row.DM[datamgmt.RemoteIO].Dollars(), 4),
			report.F(row.DM[datamgmt.Regular].Dollars(), 4),
			report.F(row.DM[datamgmt.Cleanup].Dollars(), 4),
			report.F(row.Total[datamgmt.RemoteIO].Dollars(), 2),
			report.F(row.Total[datamgmt.Regular].Dollars(), 2),
			report.F(row.Total[datamgmt.Cleanup].Dollars(), 2),
		)
	}
	return t
}

// ---- E9: Fig. 11, CCR sensitivity ----

// Fig11Result is the CCR sweep of the 1-degree workflow on 8 provisioned
// processors.
type Fig11Result struct {
	Spec   montage.Spec
	Procs  int
	Points []core.CCRPoint
}

// Fig11CCRs returns the swept ratios: the paper's measured 0.053 doubled
// up to ~3.4.
func Fig11CCRs() []float64 {
	return []float64{0.053, 0.106, 0.212, 0.424, 0.848, 1.696, 3.392}
}

// Fig11 reproduces the CCR sensitivity experiment.
func Fig11() (Fig11Result, error) {
	spec := montage.OneDegree()
	w, err := generate(spec)
	if err != nil {
		return Fig11Result{}, err
	}
	plan := core.DefaultPlan()
	plan.Processors = 8
	plan.Billing = core.Provisioned
	points, err := core.CCRSweep(w, Fig11CCRs(), plan)
	if err != nil {
		return Fig11Result{}, err
	}
	return Fig11Result{Spec: spec, Procs: 8, Points: points}, nil
}

// Table renders the Fig. 11 sweep.
func (r Fig11Result) Table() *report.Table {
	t := report.New(
		fmt.Sprintf("Fig11: costs of %s with changing CCR (%d provisioned procs)", r.Spec.Name, r.Procs),
		"ccr", "cpu$", "storage$", "storage$(cleanup)", "transfer$", "total$", "exec-time")
	for _, p := range r.Points {
		c := p.Result.Cost
		t.MustAdd(
			report.F(p.CCR, 3),
			report.F(c.CPU.Dollars(), 4),
			fmt.Sprintf("%.6f", c.Storage.Dollars()),
			fmt.Sprintf("%.6f", p.StorageCostCleanup.Dollars()),
			report.F(c.Transfer().Dollars(), 4),
			report.F(c.Total().Dollars(), 4),
			p.Result.Metrics.ExecTime.String(),
		)
	}
	return t
}

// ---- E10: Question 2b, archive break-even ----

// Q2bResult is the archive economics analysis.
type Q2bResult struct {
	Spec      montage.Spec
	Request   core.Result
	BreakEven archive.BreakEven
}

// Q2b measures a 2-degree request in regular mode (the paper's example)
// and computes the 2MASS-archive break-even request rate.
func Q2b() (Q2bResult, error) {
	spec := montage.TwoDegree()
	w, err := generate(spec)
	if err != nil {
		return Q2bResult{}, err
	}
	req, err := core.Run(w, core.DefaultPlan())
	if err != nil {
		return Q2bResult{}, err
	}
	be, err := archive.ComputeBreakEven(cost.Amazon2008(), archive.TwoMASSArchiveBytes, req.Cost)
	if err != nil {
		return Q2bResult{}, err
	}
	return Q2bResult{Spec: spec, Request: req, BreakEven: be}, nil
}

// Table renders the break-even analysis.
func (r Q2bResult) Table() *report.Table {
	t := report.New("Q2b: storing the 12 TB 2MASS archive on the cloud", "quantity", "value")
	be := r.BreakEven
	t.MustAdd("archive monthly storage", be.MonthlyStorageCost.String())
	t.MustAdd("archive one-time upload", be.OneTimeUploadCost.String())
	t.MustAdd(r.Spec.Name+" request (staged inputs)", be.CostPerRequestStaged.String())
	t.MustAdd(r.Spec.Name+" request (archived inputs)", be.CostPerRequestArchived.String())
	t.MustAdd("savings per request", be.SavingsPerRequest.String())
	t.MustAdd("break-even requests/month", report.F(be.RequestsPerMonth, 0))
	return t
}

// ---- E11/E12: Question 3 ----

// Q3WholeSkyResult prices mosaicking the entire sky.
type Q3WholeSkyResult struct {
	FourDeg archive.SkyCampaign
	SixDeg  archive.SkyCampaign
}

// Q3WholeSky prices the 3,900 x 4-degree tiling (and the 1,734 x
// 6-degree alternative) from measured per-request costs.
func Q3WholeSky() (Q3WholeSkyResult, error) {
	w4, err := generate(montage.FourDegree())
	if err != nil {
		return Q3WholeSkyResult{}, err
	}
	r4, err := core.Run(w4, core.DefaultPlan())
	if err != nil {
		return Q3WholeSkyResult{}, err
	}
	c4, err := archive.ComputeSkyCampaign(r4.Cost, archive.WholeSky4DegMosaics)
	if err != nil {
		return Q3WholeSkyResult{}, err
	}
	w6, err := generate(montage.FromDegrees(6, 6))
	if err != nil {
		return Q3WholeSkyResult{}, err
	}
	r6, err := core.Run(w6, core.DefaultPlan())
	if err != nil {
		return Q3WholeSkyResult{}, err
	}
	c6, err := archive.ComputeSkyCampaign(r6.Cost, archive.WholeSky6DegMosaics)
	if err != nil {
		return Q3WholeSkyResult{}, err
	}
	return Q3WholeSkyResult{FourDeg: c4, SixDeg: c6}, nil
}

// Table renders the whole-sky costing.
func (r Q3WholeSkyResult) Table() *report.Table {
	t := report.New("Q3: cost of the mosaic of the entire sky",
		"tiling", "mosaics", "per-mosaic$", "total$", "total$(archived inputs)")
	for _, c := range []struct {
		name string
		camp archive.SkyCampaign
	}{{"4-degree", r.FourDeg}, {"6-degree", r.SixDeg}} {
		t.MustAdd(c.name,
			fmt.Sprint(c.camp.Mosaics),
			report.F(c.camp.CostPerMosaic.Dollars(), 2),
			report.F(c.camp.TotalCost.Dollars(), 0),
			report.F(c.camp.TotalCostArchived.Dollars(), 0),
		)
	}
	return t
}

// Q3StoreRow is one workflow's store-vs-recompute horizon.
type Q3StoreRow struct {
	Workflow string
	Horizon  archive.StorageHorizon
	Paper    float64 // months reported by the paper
}

// Q3StoreResult is the store-vs-recompute analysis for the three
// presets.
type Q3StoreResult struct {
	Rows []Q3StoreRow
}

// Q3Store computes, from measured CPU costs and mosaic sizes, how long
// each generated mosaic is worth storing rather than recomputing.
func Q3Store() (Q3StoreResult, error) {
	paper := map[string]float64{
		"montage-1deg": 21.52, "montage-2deg": 24.25, "montage-4deg": 25.12,
	}
	var res Q3StoreResult
	for _, spec := range montage.Presets() {
		w, err := generate(spec)
		if err != nil {
			return Q3StoreResult{}, err
		}
		r, err := core.Run(w, core.DefaultPlan())
		if err != nil {
			return Q3StoreResult{}, err
		}
		h, err := archive.ComputeStorageHorizon(cost.Amazon2008(), w.OutputBytes(), r.Cost.CPU)
		if err != nil {
			return Q3StoreResult{}, err
		}
		res.Rows = append(res.Rows, Q3StoreRow{
			Workflow: spec.Name, Horizon: h, Paper: paper[spec.Name],
		})
	}
	return res, nil
}

// Table renders the horizons.
func (r Q3StoreResult) Table() *report.Table {
	t := report.New("Q3: store vs recompute horizons",
		"workflow", "mosaic", "cpu$", "storage$/month", "months", "paper-months")
	for _, row := range r.Rows {
		t.MustAdd(row.Workflow,
			row.Horizon.ProductBytes.String(),
			report.F(row.Horizon.RecomputeCost.Dollars(), 2),
			report.F(row.Horizon.MonthlyCost.Dollars(), 4),
			report.F(row.Horizon.Months, 2),
			report.F(row.Paper, 2),
		)
	}
	return t
}
