// Package experiments is the reproduction harness: one constructor per
// table and figure in the paper's evaluation (§6), each returning typed
// rows plus renderable tables.  The bench harness (bench_test.go) and
// the montagesim CLI are thin wrappers over this package.
//
// Index (see DESIGN.md for the full mapping):
//
//	CCRTable      -- the §6.3 CCR table
//	Fig4/5/6      -- Question 1 provisioning sweeps (1/2/4-degree)
//	Fig7/8/9      -- Question 2a data-management comparison
//	Fig10         -- CPU vs data-management cost summary
//	Fig11         -- CCR sensitivity sweep
//	Q2b           -- archive break-even analysis
//	Q3WholeSky    -- whole-sky campaign costing
//	Q3Store       -- store-vs-recompute horizons
package experiments

import (
	"context"
	"fmt"

	"repro/internal/archive"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dag"
	"repro/internal/datamgmt"
	"repro/internal/montage"
	"repro/internal/report"
	"repro/internal/units"
)

// generate returns a preset workflow from the process-wide memo (grid
// points re-ask for the same presets constantly), failing loudly on
// generator bugs.  The result is shared and read-only.
func generate(spec montage.Spec) (*dag.Workflow, error) {
	w, err := montage.Cached(spec)
	if err != nil {
		return nil, fmt.Errorf("experiments: generate %s: %w", spec.Name, err)
	}
	return w, nil
}

// ---- E1: the CCR table ----

// CCRRow is one line of the §6.3 table.
type CCRRow struct {
	Workflow string
	Tasks    int
	CCR      float64
	PaperCCR float64
}

// CCRTableResult reproduces the communication-to-computation table.
type CCRTableResult struct {
	Bandwidth units.Bandwidth
	Rows      []CCRRow
}

// CCRTable computes the CCR of the three Montage workflows at the
// paper's 10 Mbps reference bandwidth.
func CCRTable(ctx context.Context) (CCRTableResult, error) {
	paper := map[string]float64{
		"montage-1deg": 0.053, "montage-2deg": 0.053, "montage-4deg": 0.045,
	}
	res := CCRTableResult{Bandwidth: units.Mbps(10)}
	rows, err := Sweep[montage.Spec, CCRRow]{
		Name:   "ccr-table",
		Points: montage.Presets(),
		Run: func(ctx context.Context, spec montage.Spec) (CCRRow, error) {
			w, err := generate(spec)
			if err != nil {
				return CCRRow{}, err
			}
			return CCRRow{
				Workflow: spec.Name,
				Tasks:    w.NumTasks(),
				CCR:      w.CCR(res.Bandwidth),
				PaperCCR: paper[spec.Name],
			}, nil
		},
	}.Do(ctx)
	if err != nil {
		return CCRTableResult{}, err
	}
	res.Rows = rows
	return res, nil
}

// Table renders the CCR table.
func (r CCRTableResult) Table() *report.Table {
	t := report.New(fmt.Sprintf("CCR table (B = %v) -- paper §6.3", r.Bandwidth),
		"workflow", "tasks", "ccr", "paper")
	for _, row := range r.Rows {
		t.MustAdd(row.Workflow, fmt.Sprint(row.Tasks),
			report.F(row.CCR, 3), report.F(row.PaperCCR, 3))
	}
	return t
}

// ---- E2-E4: Question 1 provisioning sweeps (Figs. 4-6) ----

// ProvisioningFigure is a Question-1 sweep for one workflow.
type ProvisioningFigure struct {
	Figure string
	Spec   montage.Spec
	Points []core.SweepPoint
}

// Fig4 sweeps the 1-degree workflow over 1..128 provisioned processors.
func Fig4(ctx context.Context) (ProvisioningFigure, error) {
	return provisioning(ctx, "Fig4", montage.OneDegree())
}

// Fig5 sweeps the 2-degree workflow.
func Fig5(ctx context.Context) (ProvisioningFigure, error) {
	return provisioning(ctx, "Fig5", montage.TwoDegree())
}

// Fig6 sweeps the 4-degree workflow.
func Fig6(ctx context.Context) (ProvisioningFigure, error) {
	return provisioning(ctx, "Fig6", montage.FourDegree())
}

func provisioning(ctx context.Context, figure string, spec montage.Spec) (ProvisioningFigure, error) {
	w, err := generate(spec)
	if err != nil {
		return ProvisioningFigure{}, err
	}
	points, err := core.ProvisioningSweepContext(ctx, w, core.GeometricProcessors(), core.DefaultPlan())
	if err != nil {
		return ProvisioningFigure{}, err
	}
	return ProvisioningFigure{Figure: figure, Spec: spec, Points: points}, nil
}

// CostTable renders the figure's top panel: cost components vs. pool
// size.
func (f ProvisioningFigure) CostTable() *report.Table {
	t := report.New(
		fmt.Sprintf("%s (top): execution costs of %s vs. provisioned processors", f.Figure, f.Spec.Name),
		"procs", "cpu$", "storage$", "storage$(cleanup)", "transfer$", "total$")
	for _, p := range f.Points {
		c := p.Result.Cost
		t.MustAdd(
			fmt.Sprint(p.Processors),
			report.F(c.CPU.Dollars(), 4),
			fmt.Sprintf("%.6f", c.Storage.Dollars()),
			fmt.Sprintf("%.6f", p.StorageCostCleanup.Dollars()),
			report.F(c.Transfer().Dollars(), 4),
			report.F(c.Total().Dollars(), 4),
		)
	}
	return t
}

// TimeTable renders the figure's bottom panel: execution time vs. pool
// size.
func (f ProvisioningFigure) TimeTable() *report.Table {
	t := report.New(
		fmt.Sprintf("%s (bottom): execution time of %s vs. provisioned processors", f.Figure, f.Spec.Name),
		"procs", "exec-time", "hours", "utilization")
	for _, p := range f.Points {
		m := p.Result.Metrics
		t.MustAdd(
			fmt.Sprint(p.Processors),
			m.ExecTime.String(),
			report.F(m.ExecTime.Hours(), 3),
			report.F(m.Utilization, 3),
		)
	}
	return t
}

// ---- E5-E7: Question 2a data-management comparison (Figs. 7-9) ----

// DataManagementFigure compares the three execution models for one
// workflow under on-demand billing at full parallelism.
type DataManagementFigure struct {
	Figure  string
	Spec    montage.Spec
	Results map[datamgmt.Mode]core.Result
}

// Fig7 compares modes on the 1-degree workflow.
func Fig7(ctx context.Context) (DataManagementFigure, error) {
	return dataManagement(ctx, "Fig7", montage.OneDegree())
}

// Fig8 compares modes on the 2-degree workflow.
func Fig8(ctx context.Context) (DataManagementFigure, error) {
	return dataManagement(ctx, "Fig8", montage.TwoDegree())
}

// Fig9 compares modes on the 4-degree workflow.
func Fig9(ctx context.Context) (DataManagementFigure, error) {
	return dataManagement(ctx, "Fig9", montage.FourDegree())
}

func dataManagement(ctx context.Context, figure string, spec montage.Spec) (DataManagementFigure, error) {
	w, err := generate(spec)
	if err != nil {
		return DataManagementFigure{}, err
	}
	results, err := core.CompareModesContext(ctx, w, core.DefaultPlan())
	if err != nil {
		return DataManagementFigure{}, err
	}
	return DataManagementFigure{Figure: figure, Spec: spec, Results: results}, nil
}

// StorageTable renders the figure's top panel: storage space-time per
// mode.
func (f DataManagementFigure) StorageTable() *report.Table {
	t := report.New(
		fmt.Sprintf("%s (top): storage used by %s per mode", f.Figure, f.Spec.Name),
		"mode", "gb-hours", "peak")
	for _, mode := range datamgmt.Modes() {
		m := f.Results[mode].Metrics
		t.MustAdd(mode.String(), report.F(m.GBHoursStorage(), 4), m.PeakStorage.String())
	}
	return t
}

// TransferTable renders the middle panel: data moved per direction.
func (f DataManagementFigure) TransferTable() *report.Table {
	t := report.New(
		fmt.Sprintf("%s (middle): data transfer of %s per mode", f.Figure, f.Spec.Name),
		"mode", "in", "out")
	for _, mode := range datamgmt.Modes() {
		m := f.Results[mode].Metrics
		t.MustAdd(mode.String(), m.BytesIn.String(), m.BytesOut.String())
	}
	return t
}

// CostTable renders the bottom panel: data-management dollar costs.
func (f DataManagementFigure) CostTable() *report.Table {
	t := report.New(
		fmt.Sprintf("%s (bottom): costs of %s per mode (excl. CPU)", f.Figure, f.Spec.Name),
		"mode", "storage$", "in$", "out$", "dm-total$")
	for _, mode := range datamgmt.Modes() {
		c := f.Results[mode].Cost
		t.MustAdd(mode.String(),
			fmt.Sprintf("%.6f", c.Storage.Dollars()),
			report.F(c.TransferIn.Dollars(), 4),
			report.F(c.TransferOut.Dollars(), 4),
			report.F(c.DataManagement().Dollars(), 4),
		)
	}
	return t
}

// ---- E8: Fig. 10, CPU vs data-management costs ----

// Fig10Row is one workflow's summary.
type Fig10Row struct {
	Workflow string
	CPUCost  units.Money
	DM       map[datamgmt.Mode]units.Money
	Total    map[datamgmt.Mode]units.Money
}

// Fig10Result summarizes CPU and DM costs across workflows and modes.
type Fig10Result struct {
	Rows []Fig10Row
}

// Fig10 runs all three workflows under all three modes with on-demand
// billing; the nine runs execute concurrently (three workflows through
// the sweep engine, three modes inside each).
func Fig10(ctx context.Context) (Fig10Result, error) {
	rows, err := Sweep[montage.Spec, Fig10Row]{
		Name:   "fig10",
		Points: montage.Presets(),
		Run: func(ctx context.Context, spec montage.Spec) (Fig10Row, error) {
			w, err := generate(spec)
			if err != nil {
				return Fig10Row{}, err
			}
			results, err := core.CompareModesContext(ctx, w, core.DefaultPlan())
			if err != nil {
				return Fig10Row{}, err
			}
			row := Fig10Row{
				Workflow: spec.Name,
				CPUCost:  results[datamgmt.Regular].Cost.CPU,
				DM:       make(map[datamgmt.Mode]units.Money, 3),
				Total:    make(map[datamgmt.Mode]units.Money, 3),
			}
			for mode, r := range results {
				row.DM[mode] = r.Cost.DataManagement()
				row.Total[mode] = r.Cost.Total()
			}
			return row, nil
		},
	}.Do(ctx)
	if err != nil {
		return Fig10Result{}, err
	}
	return Fig10Result{Rows: rows}, nil
}

// Table renders the Fig. 10 summary.
func (r Fig10Result) Table() *report.Table {
	t := report.New("Fig10: CPU and data-management costs per workflow and mode",
		"workflow", "cpu$", "dm$(remote)", "dm$(regular)", "dm$(cleanup)",
		"total$(remote)", "total$(regular)", "total$(cleanup)")
	for _, row := range r.Rows {
		t.MustAdd(row.Workflow,
			report.F(row.CPUCost.Dollars(), 2),
			report.F(row.DM[datamgmt.RemoteIO].Dollars(), 4),
			report.F(row.DM[datamgmt.Regular].Dollars(), 4),
			report.F(row.DM[datamgmt.Cleanup].Dollars(), 4),
			report.F(row.Total[datamgmt.RemoteIO].Dollars(), 2),
			report.F(row.Total[datamgmt.Regular].Dollars(), 2),
			report.F(row.Total[datamgmt.Cleanup].Dollars(), 2),
		)
	}
	return t
}

// ---- E9: Fig. 11, CCR sensitivity ----

// Fig11Result is the CCR sweep of the 1-degree workflow on 8 provisioned
// processors.
type Fig11Result struct {
	Spec   montage.Spec
	Procs  int
	Points []core.CCRPoint
}

// Fig11CCRs returns the swept ratios: the paper's measured 0.053 doubled
// up to ~3.4.
func Fig11CCRs() []float64 {
	return []float64{0.053, 0.106, 0.212, 0.424, 0.848, 1.696, 3.392}
}

// Fig11 reproduces the CCR sensitivity experiment.
func Fig11(ctx context.Context) (Fig11Result, error) {
	spec := montage.OneDegree()
	w, err := generate(spec)
	if err != nil {
		return Fig11Result{}, err
	}
	plan := core.DefaultPlan()
	plan.Processors = 8
	plan.Billing = core.Provisioned
	points, err := core.CCRSweepContext(ctx, w, Fig11CCRs(), plan)
	if err != nil {
		return Fig11Result{}, err
	}
	return Fig11Result{Spec: spec, Procs: 8, Points: points}, nil
}

// Table renders the Fig. 11 sweep.
func (r Fig11Result) Table() *report.Table {
	t := report.New(
		fmt.Sprintf("Fig11: costs of %s with changing CCR (%d provisioned procs)", r.Spec.Name, r.Procs),
		"ccr", "cpu$", "storage$", "storage$(cleanup)", "transfer$", "total$", "exec-time")
	for _, p := range r.Points {
		c := p.Result.Cost
		t.MustAdd(
			report.F(p.CCR, 3),
			report.F(c.CPU.Dollars(), 4),
			fmt.Sprintf("%.6f", c.Storage.Dollars()),
			fmt.Sprintf("%.6f", p.StorageCostCleanup.Dollars()),
			report.F(c.Transfer().Dollars(), 4),
			report.F(c.Total().Dollars(), 4),
			p.Result.Metrics.ExecTime.String(),
		)
	}
	return t
}

// ---- E10: Question 2b, archive break-even ----

// Q2bResult is the archive economics analysis.
type Q2bResult struct {
	Spec      montage.Spec
	Request   core.Result
	BreakEven archive.BreakEven
}

// Q2b measures a 2-degree request in regular mode (the paper's example)
// and computes the 2MASS-archive break-even request rate.
func Q2b(ctx context.Context) (Q2bResult, error) {
	spec := montage.TwoDegree()
	w, err := generate(spec)
	if err != nil {
		return Q2bResult{}, err
	}
	req, err := core.RunContext(ctx, w, core.DefaultPlan())
	if err != nil {
		return Q2bResult{}, err
	}
	be, err := archive.ComputeBreakEven(cost.Amazon2008(), archive.TwoMASSArchiveBytes, req.Cost)
	if err != nil {
		return Q2bResult{}, err
	}
	return Q2bResult{Spec: spec, Request: req, BreakEven: be}, nil
}

// Table renders the break-even analysis.
func (r Q2bResult) Table() *report.Table {
	t := report.New("Q2b: storing the 12 TB 2MASS archive on the cloud", "quantity", "value")
	be := r.BreakEven
	t.MustAdd("archive monthly storage", be.MonthlyStorageCost.String())
	t.MustAdd("archive one-time upload", be.OneTimeUploadCost.String())
	t.MustAdd(r.Spec.Name+" request (staged inputs)", be.CostPerRequestStaged.String())
	t.MustAdd(r.Spec.Name+" request (archived inputs)", be.CostPerRequestArchived.String())
	t.MustAdd("savings per request", be.SavingsPerRequest.String())
	t.MustAdd("break-even requests/month", report.F(be.RequestsPerMonth, 0))
	return t
}

// ---- E11/E12: Question 3 ----

// Q3WholeSkyResult prices mosaicking the entire sky.
type Q3WholeSkyResult struct {
	FourDeg archive.SkyCampaign
	SixDeg  archive.SkyCampaign
}

// Q3WholeSky prices the 3,900 x 4-degree tiling (and the 1,734 x
// 6-degree alternative) from measured per-request costs; the two tilings
// are measured concurrently.
func Q3WholeSky(ctx context.Context) (Q3WholeSkyResult, error) {
	type tiling struct {
		spec    montage.Spec
		mosaics int
	}
	campaigns, err := Sweep[tiling, archive.SkyCampaign]{
		Name: "q3-whole-sky",
		Points: []tiling{
			{montage.FourDegree(), archive.WholeSky4DegMosaics},
			{montage.FromDegrees(6, 6), archive.WholeSky6DegMosaics},
		},
		Run: func(ctx context.Context, tl tiling) (archive.SkyCampaign, error) {
			w, err := generate(tl.spec)
			if err != nil {
				return archive.SkyCampaign{}, err
			}
			r, err := core.RunContext(ctx, w, core.DefaultPlan())
			if err != nil {
				return archive.SkyCampaign{}, err
			}
			return archive.ComputeSkyCampaign(r.Cost, tl.mosaics)
		},
	}.Do(ctx)
	if err != nil {
		return Q3WholeSkyResult{}, err
	}
	return Q3WholeSkyResult{FourDeg: campaigns[0], SixDeg: campaigns[1]}, nil
}

// Table renders the whole-sky costing.
func (r Q3WholeSkyResult) Table() *report.Table {
	t := report.New("Q3: cost of the mosaic of the entire sky",
		"tiling", "mosaics", "per-mosaic$", "total$", "total$(archived inputs)")
	for _, c := range []struct {
		name string
		camp archive.SkyCampaign
	}{{"4-degree", r.FourDeg}, {"6-degree", r.SixDeg}} {
		t.MustAdd(c.name,
			fmt.Sprint(c.camp.Mosaics),
			report.F(c.camp.CostPerMosaic.Dollars(), 2),
			report.F(c.camp.TotalCost.Dollars(), 0),
			report.F(c.camp.TotalCostArchived.Dollars(), 0),
		)
	}
	return t
}

// Q3StoreRow is one workflow's store-vs-recompute horizon.
type Q3StoreRow struct {
	Workflow string
	Horizon  archive.StorageHorizon
	Paper    float64 // months reported by the paper
}

// Q3StoreResult is the store-vs-recompute analysis for the three
// presets.
type Q3StoreResult struct {
	Rows []Q3StoreRow
}

// Q3Store computes, from measured CPU costs and mosaic sizes, how long
// each generated mosaic is worth storing rather than recomputing.
func Q3Store(ctx context.Context) (Q3StoreResult, error) {
	paper := map[string]float64{
		"montage-1deg": 21.52, "montage-2deg": 24.25, "montage-4deg": 25.12,
	}
	rows, err := Sweep[montage.Spec, Q3StoreRow]{
		Name:   "q3-store",
		Points: montage.Presets(),
		Run: func(ctx context.Context, spec montage.Spec) (Q3StoreRow, error) {
			w, err := generate(spec)
			if err != nil {
				return Q3StoreRow{}, err
			}
			r, err := core.RunContext(ctx, w, core.DefaultPlan())
			if err != nil {
				return Q3StoreRow{}, err
			}
			h, err := archive.ComputeStorageHorizon(cost.Amazon2008(), w.OutputBytes(), r.Cost.CPU)
			if err != nil {
				return Q3StoreRow{}, err
			}
			return Q3StoreRow{Workflow: spec.Name, Horizon: h, Paper: paper[spec.Name]}, nil
		},
	}.Do(ctx)
	if err != nil {
		return Q3StoreResult{}, err
	}
	return Q3StoreResult{Rows: rows}, nil
}

// Table renders the horizons.
func (r Q3StoreResult) Table() *report.Table {
	t := report.New("Q3: store vs recompute horizons",
		"workflow", "mosaic", "cpu$", "storage$/month", "months", "paper-months")
	for _, row := range r.Rows {
		t.MustAdd(row.Workflow,
			row.Horizon.ProductBytes.String(),
			report.F(row.Horizon.RecomputeCost.Dollars(), 2),
			report.F(row.Horizon.MonthlyCost.Dollars(), 4),
			report.F(row.Horizon.Months, 2),
			report.F(row.Paper, 2),
		)
	}
	return t
}
