package experiments

import (
	"context"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/montage"
	"repro/internal/report"
	"repro/internal/units"
)

// The ablation experiments probe the design choices DESIGN.md calls out:
// the paper's per-second billing normalization, and the provisioned vs.
// on-demand charging contrast the paper highlights with the 4-degree
// $13.92-vs-$8.89 example.

// GranularityRow compares per-second and per-hour CPU billing for one
// pool size.
type GranularityRow struct {
	Processors int
	PerSecond  units.Money
	PerHour    units.Money
}

// AblationGranularityResult is the billing-granularity ablation over the
// Question-1 sweep of the 1-degree workflow.
type AblationGranularityResult struct {
	Spec montage.Spec
	Rows []GranularityRow
}

// AblationGranularity re-prices the Fig. 4 sweep with whole-hour billing
// (what 2008 EC2 actually charged) against the paper's per-second
// normalization.
func AblationGranularity(ctx context.Context) (AblationGranularityResult, error) {
	spec := montage.OneDegree()
	w, err := generate(spec)
	if err != nil {
		return AblationGranularityResult{}, err
	}
	points, err := core.ProvisioningSweepContext(ctx, w, core.GeometricProcessors(), core.DefaultPlan())
	if err != nil {
		return AblationGranularityResult{}, err
	}
	hourly := cost.Amazon2008()
	hourly.Granularity = cost.PerHour
	res := AblationGranularityResult{Spec: spec}
	for _, p := range points {
		res.Rows = append(res.Rows, GranularityRow{
			Processors: p.Processors,
			PerSecond:  p.Result.Cost.Total(),
			PerHour:    hourly.Provisioned(p.Result.Metrics).Total(),
		})
	}
	return res, nil
}

// Table renders the granularity ablation.
func (r AblationGranularityResult) Table() *report.Table {
	t := report.New(
		fmt.Sprintf("Ablation: billing granularity on the %s sweep", r.Spec.Name),
		"procs", "total$(per-second)", "total$(per-hour)", "hourly-premium")
	for _, row := range r.Rows {
		premium := 0.0
		if row.PerSecond > 0 {
			premium = float64(row.PerHour/row.PerSecond) - 1
		}
		t.MustAdd(fmt.Sprint(row.Processors),
			report.F(row.PerSecond.Dollars(), 4),
			report.F(row.PerHour.Dollars(), 4),
			fmt.Sprintf("%.0f%%", premium*100),
		)
	}
	return t
}

// StartupRow is one point of the VM-startup ablation.
type StartupRow struct {
	Startup  units.Duration
	ExecTime units.Duration
	Total    units.Money
}

// AblationVMStartupResult quantifies the §8 "startup cost" the paper
// deliberately excluded: booting and configuring the virtual machines
// before the workflow can run.
type AblationVMStartupResult struct {
	Spec  montage.Spec
	Procs int
	Rows  []StartupRow
}

// AblationVMStartup reruns the 1-degree workflow on a 16-processor
// provisioned pool with increasing VM boot windows.
func AblationVMStartup(ctx context.Context) (AblationVMStartupResult, error) {
	spec := montage.OneDegree()
	w, err := generate(spec)
	if err != nil {
		return AblationVMStartupResult{}, err
	}
	res := AblationVMStartupResult{Spec: spec, Procs: 16}
	res.Rows, err = Sweep[units.Duration, StartupRow]{
		Name:   "ablation-startup",
		Points: []units.Duration{0, 60, 300, 900},
		Run: func(ctx context.Context, startup units.Duration) (StartupRow, error) {
			plan := core.DefaultPlan()
			plan.Billing = core.Provisioned
			plan.Processors = res.Procs
			plan.VMStartup = startup
			r, err := core.RunContext(ctx, w, plan)
			if err != nil {
				return StartupRow{}, err
			}
			return StartupRow{
				Startup:  startup,
				ExecTime: r.Metrics.ExecTime,
				Total:    r.Cost.Total(),
			}, nil
		},
	}.Do(ctx)
	if err != nil {
		return AblationVMStartupResult{}, err
	}
	return res, nil
}

// Table renders the startup ablation.
func (r AblationVMStartupResult) Table() *report.Table {
	t := report.New(
		fmt.Sprintf("Ablation: VM startup on %s (%d provisioned procs)", r.Spec.Name, r.Procs),
		"startup", "exec-time", "total$")
	for _, row := range r.Rows {
		t.MustAdd(row.Startup.String(), row.ExecTime.String(), report.F(row.Total.Dollars(), 4))
	}
	return t
}

// OutageRow is one point of the availability ablation.
type OutageRow struct {
	OutageLen units.Duration
	ExecTime  units.Duration
	Makespan  units.Duration
	Total     units.Money
}

// AblationOutageResult quantifies §8's reliability concern: "when the
// system goes down, as it did twice in the first 7 months of 2008, the
// possible impact on the applications can be significant."
type AblationOutageResult struct {
	Spec  montage.Spec
	Procs int
	Rows  []OutageRow
}

// AblationOutage injects a storage outage mid-run (opening 10 minutes
// into the 1-degree workflow on 16 provisioned processors) of increasing
// length and reports the delay and cost impact.
func AblationOutage(ctx context.Context) (AblationOutageResult, error) {
	spec := montage.OneDegree()
	w, err := generate(spec)
	if err != nil {
		return AblationOutageResult{}, err
	}
	res := AblationOutageResult{Spec: spec, Procs: 16}
	res.Rows, err = Sweep[units.Duration, OutageRow]{
		Name:   "ablation-outage",
		Points: []units.Duration{0, 300, 1800, 7200},
		Run: func(ctx context.Context, length units.Duration) (OutageRow, error) {
			plan := core.DefaultPlan()
			plan.Billing = core.Provisioned
			plan.Processors = res.Procs
			if length > 0 {
				plan.Outages = []exec.Outage{{Start: 600, End: 600 + length}}
			}
			r, err := core.RunContext(ctx, w, plan)
			if err != nil {
				return OutageRow{}, err
			}
			return OutageRow{
				OutageLen: length,
				ExecTime:  r.Metrics.ExecTime,
				Makespan:  r.Metrics.Makespan,
				Total:     r.Cost.Total(),
			}, nil
		},
	}.Do(ctx)
	if err != nil {
		return AblationOutageResult{}, err
	}
	return res, nil
}

// Table renders the outage ablation.
func (r AblationOutageResult) Table() *report.Table {
	t := report.New(
		fmt.Sprintf("Ablation: mid-run storage outage on %s (%d provisioned procs)", r.Spec.Name, r.Procs),
		"outage", "exec-time", "makespan", "total$")
	for _, row := range r.Rows {
		t.MustAdd(row.OutageLen.String(), row.ExecTime.String(), row.Makespan.String(),
			report.F(row.Total.Dollars(), 4))
	}
	return t
}

// SchedulerRow is one policy's outcome at one pool size.
type SchedulerRow struct {
	Processors int
	Policy     exec.Policy
	ExecTime   units.Duration
	Total      units.Money
}

// AblationSchedulerResult compares ready-queue policies of the list
// scheduler on a scarce pool, where dispatch order matters.
type AblationSchedulerResult struct {
	Spec montage.Spec
	Rows []SchedulerRow
}

// AblationScheduler runs the 1-degree workflow at several pool sizes
// under FIFO, longest-first and shortest-first dispatch.  The 3x3 grid
// runs concurrently in row-major order.
func AblationScheduler(ctx context.Context) (AblationSchedulerResult, error) {
	spec := montage.OneDegree()
	w, err := generate(spec)
	if err != nil {
		return AblationSchedulerResult{}, err
	}
	type cell struct {
		procs  int
		policy exec.Policy
	}
	var grid []cell
	for _, procs := range []int{4, 8, 16} {
		for _, pol := range []exec.Policy{exec.FIFO, exec.LongestFirst, exec.ShortestFirst} {
			grid = append(grid, cell{procs, pol})
		}
	}
	res := AblationSchedulerResult{Spec: spec}
	res.Rows, err = Sweep[cell, SchedulerRow]{
		Name:   "ablation-scheduler",
		Points: grid,
		Run: func(ctx context.Context, c cell) (SchedulerRow, error) {
			plan := core.DefaultPlan()
			plan.Billing = core.Provisioned
			plan.Processors = c.procs
			plan.Policy = c.policy
			r, err := core.RunContext(ctx, w, plan)
			if err != nil {
				return SchedulerRow{}, err
			}
			return SchedulerRow{
				Processors: c.procs,
				Policy:     c.policy,
				ExecTime:   r.Metrics.ExecTime,
				Total:      r.Cost.Total(),
			}, nil
		},
	}.Do(ctx)
	if err != nil {
		return AblationSchedulerResult{}, err
	}
	return res, nil
}

// Table renders the scheduler ablation.
func (r AblationSchedulerResult) Table() *report.Table {
	t := report.New(
		fmt.Sprintf("Ablation: list-scheduler policy on %s", r.Spec.Name),
		"procs", "policy", "exec-time", "total$")
	for _, row := range r.Rows {
		t.MustAdd(fmt.Sprint(row.Processors), row.Policy.String(),
			row.ExecTime.String(), report.F(row.Total.Dollars(), 4))
	}
	return t
}

// ReliabilityRow is one failure-rate point.
type ReliabilityRow struct {
	FailureProb float64
	Retries     int
	ExecTime    units.Duration
	CPUCost     units.Money
	Total       units.Money
}

// AblationReliabilityResult quantifies §8's reliability concern on the
// compute side: flaky tasks are retried and every burned attempt is
// billed.
type AblationReliabilityResult struct {
	Spec  montage.Spec
	Procs int
	Rows  []ReliabilityRow
}

// AblationReliability sweeps the per-attempt failure probability on the
// 1-degree workflow (16 provisioned processors).  Each grid point owns
// its own seeded RNG, so concurrent points sample identically to serial
// ones.
func AblationReliability(ctx context.Context) (AblationReliabilityResult, error) {
	spec := montage.OneDegree()
	w, err := generate(spec)
	if err != nil {
		return AblationReliabilityResult{}, err
	}
	res := AblationReliabilityResult{Spec: spec, Procs: 16}
	res.Rows, err = Sweep[float64, ReliabilityRow]{
		Name:   "ablation-reliability",
		Points: []float64{0, 0.01, 0.05, 0.10, 0.25},
		Run: func(ctx context.Context, p float64) (ReliabilityRow, error) {
			plan := core.DefaultPlan()
			plan.Billing = core.Provisioned
			plan.Processors = res.Procs
			plan.FailureProb = p
			plan.FailureSeed = 11
			r, err := core.RunContext(ctx, w, plan)
			if err != nil {
				return ReliabilityRow{}, err
			}
			return ReliabilityRow{
				FailureProb: p,
				Retries:     r.Metrics.Retries,
				ExecTime:    r.Metrics.ExecTime,
				CPUCost:     r.Cost.CPU,
				Total:       r.Cost.Total(),
			}, nil
		},
	}.Do(ctx)
	if err != nil {
		return AblationReliabilityResult{}, err
	}
	return res, nil
}

// Table renders the reliability ablation.
func (r AblationReliabilityResult) Table() *report.Table {
	t := report.New(
		fmt.Sprintf("Ablation: task failure rate on %s (%d provisioned procs)", r.Spec.Name, r.Procs),
		"failure-prob", "retries", "exec-time", "cpu$", "total$")
	for _, row := range r.Rows {
		t.MustAdd(report.F(row.FailureProb, 2), fmt.Sprint(row.Retries),
			row.ExecTime.String(), report.F(row.CPUCost.Dollars(), 4),
			report.F(row.Total.Dollars(), 4))
	}
	return t
}

// ClusteringRow is one clustering factor's outcome.
type ClusteringRow struct {
	Factor    int
	Tasks     int
	ExecTime  units.Duration
	PerSecond units.Money
	PerHour   units.Money
}

// AblationClusteringResult measures Pegasus-style horizontal task
// clustering on a provisioned pool under both billing granularities.
// Clustering conserves CPU work, so per-second costs barely move, but
// coarser tasks lengthen the schedule and shift the hourly bill.
type AblationClusteringResult struct {
	Spec  montage.Spec
	Procs int
	Rows  []ClusteringRow
}

// AblationClustering clusters the 1-degree workflow at factors 1..16 and
// runs each variant on 16 provisioned processors.  Each grid point
// derives its own clustered copy, so the shared base workflow stays
// untouched.
func AblationClustering(ctx context.Context) (AblationClusteringResult, error) {
	spec := montage.OneDegree()
	w, err := generate(spec)
	if err != nil {
		return AblationClusteringResult{}, err
	}
	hourly := cost.Amazon2008()
	hourly.Granularity = cost.PerHour
	res := AblationClusteringResult{Spec: spec, Procs: 16}
	res.Rows, err = Sweep[int, ClusteringRow]{
		Name:   "ablation-clustering",
		Points: []int{1, 2, 4, 8, 16},
		Run: func(ctx context.Context, factor int) (ClusteringRow, error) {
			cw, err := cluster.Horizontal(w, factor)
			if err != nil {
				return ClusteringRow{}, err
			}
			plan := core.DefaultPlan()
			plan.Billing = core.Provisioned
			plan.Processors = res.Procs
			r, err := core.RunContext(ctx, cw, plan)
			if err != nil {
				return ClusteringRow{}, err
			}
			return ClusteringRow{
				Factor:    factor,
				Tasks:     cw.NumTasks(),
				ExecTime:  r.Metrics.ExecTime,
				PerSecond: r.Cost.Total(),
				PerHour:   hourly.Provisioned(r.Metrics).Total(),
			}, nil
		},
	}.Do(ctx)
	if err != nil {
		return AblationClusteringResult{}, err
	}
	return res, nil
}

// Table renders the clustering ablation.
func (r AblationClusteringResult) Table() *report.Table {
	t := report.New(
		fmt.Sprintf("Ablation: horizontal clustering on %s (%d provisioned procs)", r.Spec.Name, r.Procs),
		"factor", "tasks", "exec-time", "total$(per-second)", "total$(per-hour)")
	for _, row := range r.Rows {
		t.MustAdd(fmt.Sprint(row.Factor), fmt.Sprint(row.Tasks), row.ExecTime.String(),
			report.F(row.PerSecond.Dollars(), 4), report.F(row.PerHour.Dollars(), 4))
	}
	return t
}

// PlanComparisonRow contrasts the two charging plans for one workflow.
type PlanComparisonRow struct {
	Workflow    string
	Provisioned units.Money // 128 processors held for the whole run
	OnDemand    units.Money // CPU charged per second used
	Utilization float64     // of the provisioned pool
}

// PlanComparisonResult is the provisioned-vs-on-demand ablation.
type PlanComparisonResult struct {
	Processors int
	Rows       []PlanComparisonRow
}

// AblationPlanComparison reproduces the paper's §6 comparison: "the cost
// of running the 4 degree square Montage workflow on 128 processors is
// $13.92 in the provisioned case, whereas the workflow which is charged
// only for the resources used is only $8.89."
func AblationPlanComparison(ctx context.Context) (PlanComparisonResult, error) {
	const procs = 128
	res := PlanComparisonResult{Processors: procs}
	rows, err := Sweep[montage.Spec, PlanComparisonRow]{
		Name:   "ablation-plan",
		Points: montage.Presets(),
		Run: func(ctx context.Context, spec montage.Spec) (PlanComparisonRow, error) {
			w, err := generate(spec)
			if err != nil {
				return PlanComparisonRow{}, err
			}
			prov := core.DefaultPlan()
			prov.Billing = core.Provisioned
			prov.Processors = procs
			pr, err := core.RunContext(ctx, w, prov)
			if err != nil {
				return PlanComparisonRow{}, err
			}
			od, err := core.RunContext(ctx, w, core.DefaultPlan())
			if err != nil {
				return PlanComparisonRow{}, err
			}
			return PlanComparisonRow{
				Workflow:    spec.Name,
				Provisioned: pr.Cost.Total(),
				OnDemand:    od.Cost.Total(),
				Utilization: pr.Metrics.Utilization,
			}, nil
		},
	}.Do(ctx)
	if err != nil {
		return PlanComparisonResult{}, err
	}
	res.Rows = rows
	return res, nil
}

// Table renders the plan comparison.
func (r PlanComparisonResult) Table() *report.Table {
	t := report.New(
		fmt.Sprintf("Ablation: provisioned (%d procs) vs on-demand charging", r.Processors),
		"workflow", "provisioned$", "on-demand$", "pool-utilization")
	for _, row := range r.Rows {
		t.MustAdd(row.Workflow,
			report.F(row.Provisioned.Dollars(), 2),
			report.F(row.OnDemand.Dollars(), 2),
			report.F(row.Utilization, 3),
		)
	}
	return t
}
