package experiments

import (
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/datamgmt"
	"repro/internal/stats"
)

func TestCCRTableMatchesPaper(t *testing.T) {
	res, err := CCRTable(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(res.Rows))
	}
	for _, row := range res.Rows {
		if stats.RelErr(row.CCR, row.PaperCCR) > 0.02 {
			t.Errorf("%s: CCR %.4f vs paper %.4f", row.Workflow, row.CCR, row.PaperCCR)
		}
	}
	tbl := res.Table()
	var b strings.Builder
	if err := tbl.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "montage-4deg") {
		t.Error("table missing 4-degree row")
	}
}

func TestFig4Anchors(t *testing.T) {
	f, err := Fig4(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Points) != 8 {
		t.Fatalf("got %d points, want 8", len(f.Points))
	}
	// Paper: 1 proc -> ~$0.60 / 5.5 h; 128 procs -> ~$4 / 18 min.
	first, last := f.Points[0], f.Points[7]
	if tot := float64(first.Result.Cost.Total()); math.Abs(tot-0.60) > 0.10 {
		t.Errorf("1-proc total = $%.3f, want ~$0.60", tot)
	}
	if h := first.Result.Metrics.ExecTime.Hours(); math.Abs(h-5.5) > 0.7 {
		t.Errorf("1-proc time = %.2f h, want ~5.5", h)
	}
	if tot := float64(last.Result.Cost.Total()); tot < 2.5 || tot > 5.5 {
		t.Errorf("128-proc total = $%.3f, want ~$4", tot)
	}
	if min := last.Result.Metrics.ExecTime.Seconds() / 60; min < 10 || min > 30 {
		t.Errorf("128-proc time = %.1f min, want ~18", min)
	}
	if got := len(f.CostTable().Rows); got != 8 {
		t.Errorf("cost table rows = %d, want 8", got)
	}
	if got := len(f.TimeTable().Rows); got != 8 {
		t.Errorf("time table rows = %d, want 8", got)
	}
}

func TestFig5Anchors(t *testing.T) {
	f, err := Fig5(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 1 proc $2.25 / 20.5 h; 128 procs < $8 / < 40 min.
	first, last := f.Points[0], f.Points[7]
	if tot := float64(first.Result.Cost.Total()); math.Abs(tot-2.25) > 0.25 {
		t.Errorf("1-proc total = $%.3f, want ~$2.25", tot)
	}
	if h := first.Result.Metrics.ExecTime.Hours(); math.Abs(h-20.5) > 1.5 {
		t.Errorf("1-proc time = %.2f h, want ~20.5", h)
	}
	if tot := float64(last.Result.Cost.Total()); tot > 8 {
		t.Errorf("128-proc total = $%.3f, paper says < $8", tot)
	}
	if min := last.Result.Metrics.ExecTime.Seconds() / 60; min > 40 {
		t.Errorf("128-proc time = %.1f min, paper says < 40", min)
	}
}

func TestFig6Anchors(t *testing.T) {
	if testing.Short() {
		t.Skip("4-degree sweep is slow")
	}
	f, err := Fig6(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 1 proc $9 / 85 h; 128 procs ~$14 / ~1 h; 16 procs 5.5 h / $9.25.
	first, last := f.Points[0], f.Points[7]
	if tot := float64(first.Result.Cost.Total()); math.Abs(tot-9) > 0.8 {
		t.Errorf("1-proc total = $%.3f, want ~$9", tot)
	}
	if h := first.Result.Metrics.ExecTime.Hours(); math.Abs(h-85) > 4 {
		t.Errorf("1-proc time = %.2f h, want ~85", h)
	}
	if tot := float64(last.Result.Cost.Total()); tot < 11 || tot > 18 {
		t.Errorf("128-proc total = $%.3f, want ~$14", tot)
	}
	if h := last.Result.Metrics.ExecTime.Hours(); h < 0.7 || h > 1.7 {
		t.Errorf("128-proc time = %.2f h, want ~1.1", h)
	}
	var sixteen *struct {
		tot float64
		h   float64
	}
	for _, p := range f.Points {
		if p.Processors == 16 {
			sixteen = &struct {
				tot float64
				h   float64
			}{float64(p.Result.Cost.Total()), p.Result.Metrics.ExecTime.Hours()}
		}
	}
	if sixteen == nil {
		t.Fatal("no 16-processor point")
	}
	if math.Abs(sixteen.tot-9.25) > 1.0 {
		t.Errorf("16-proc total = $%.3f, want ~$9.25", sixteen.tot)
	}
	if math.Abs(sixteen.h-5.5) > 1.0 {
		t.Errorf("16-proc time = %.2f h, want ~5.5", sixteen.h)
	}
}

func TestFig7ModeOrderings(t *testing.T) {
	f, err := Fig7(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rem := f.Results[datamgmt.RemoteIO]
	reg := f.Results[datamgmt.Regular]
	cln := f.Results[datamgmt.Cleanup]
	// Transfers: remote highest; regular == cleanup (Fig. 7 middle).
	if !(rem.Metrics.BytesIn > reg.Metrics.BytesIn && rem.Metrics.BytesOut > reg.Metrics.BytesOut) {
		t.Error("remote I/O does not move the most data")
	}
	if reg.Metrics.BytesIn != cln.Metrics.BytesIn {
		t.Error("regular and cleanup transfer volumes differ")
	}
	// DM costs: remote highest, cleanup lowest (Fig. 7 bottom).
	if !(rem.Cost.DataManagement() > reg.Cost.DataManagement()) {
		t.Error("remote I/O DM cost not highest")
	}
	if !(cln.Cost.DataManagement() < reg.Cost.DataManagement()) {
		t.Error("cleanup DM cost not lowest")
	}
	// Storage: regular mode uses the most (Fig. 7 top).
	if !(reg.Metrics.StorageByteSeconds > cln.Metrics.StorageByteSeconds) {
		t.Error("regular storage not above cleanup")
	}
	for _, tbl := range []int{
		len(f.StorageTable().Rows), len(f.TransferTable().Rows), len(f.CostTable().Rows),
	} {
		if tbl != 3 {
			t.Errorf("table rows = %d, want 3", tbl)
		}
	}
}

func TestFig8And9SameShapeAsFig7(t *testing.T) {
	if testing.Short() {
		t.Skip("larger workflows are slow")
	}
	for name, fn := range map[string]func(context.Context) (DataManagementFigure, error){
		"fig8": Fig8, "fig9": Fig9,
	} {
		f, err := fn(context.Background())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rem := f.Results[datamgmt.RemoteIO]
		reg := f.Results[datamgmt.Regular]
		cln := f.Results[datamgmt.Cleanup]
		if !(rem.Cost.Total() > reg.Cost.Total() && cln.Cost.Total() < reg.Cost.Total()) {
			t.Errorf("%s: cost ordering broken (remote %v, regular %v, cleanup %v)",
				name, rem.Cost.Total(), reg.Cost.Total(), cln.Cost.Total())
		}
	}
}

func TestFig10Anchors(t *testing.T) {
	res, err := Fig10(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(res.Rows))
	}
	// Paper CPU costs: $0.56 / $2.03 / $8.40 -- ours match by calibration.
	wantCPU := map[string]float64{
		"montage-1deg": 0.56, "montage-2deg": 2.03, "montage-4deg": 8.40,
	}
	for _, row := range res.Rows {
		if got := float64(row.CPUCost); math.Abs(got-wantCPU[row.Workflow]) > 1e-6 {
			t.Errorf("%s CPU = $%.4f, want $%.2f", row.Workflow, got, wantCPU[row.Workflow])
		}
		// CPU exceeds DM cost in regular mode for every workflow (the
		// paper's headline: storage costs are insignificant vs CPU).
		if !(row.CPUCost > row.DM[datamgmt.Regular]) {
			t.Errorf("%s: CPU %v not above DM %v", row.Workflow, row.CPUCost, row.DM[datamgmt.Regular])
		}
	}
	// Paper: the 4-degree regular-mode total is $8.88.
	last := res.Rows[2]
	if got := float64(last.Total[datamgmt.Regular]); math.Abs(got-8.88) > 0.35 {
		t.Errorf("4-degree regular total = $%.3f, want ~$8.88", got)
	}
	if len(res.Table().Rows) != 3 {
		t.Error("Fig10 table row count wrong")
	}
}

func TestFig11Monotone(t *testing.T) {
	res, err := Fig11(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(Fig11CCRs()) {
		t.Fatalf("got %d points, want %d", len(res.Points), len(Fig11CCRs()))
	}
	for i := 1; i < len(res.Points); i++ {
		prev, cur := res.Points[i-1], res.Points[i]
		if cur.Result.Cost.Total() <= prev.Result.Cost.Total() {
			t.Errorf("total cost not increasing at CCR %v", cur.CCR)
		}
	}
	if len(res.Table().Rows) != len(res.Points) {
		t.Error("Fig11 table row count wrong")
	}
}

func TestQ2bAnchors(t *testing.T) {
	res, err := Q2b(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	be := res.BreakEven
	if float64(be.MonthlyStorageCost) != 1800 {
		t.Errorf("monthly storage = %v, want $1800", be.MonthlyStorageCost)
	}
	if float64(be.OneTimeUploadCost) != 1200 {
		t.Errorf("upload = %v, want $1200", be.OneTimeUploadCost)
	}
	// Ours: savings = measured transfer-in cost of the 2-degree request
	// (~$0.049 for ~490 MB of inputs), so the break-even lands near
	// 37,000 requests/month vs the paper's 18,000 (same order; the
	// paper's input volume is not published -- see EXPERIMENTS.md).
	if be.RequestsPerMonth < 10000 || be.RequestsPerMonth > 80000 {
		t.Errorf("break-even = %.0f requests/month, want tens of thousands", be.RequestsPerMonth)
	}
	if len(res.Table().Rows) != 6 {
		t.Error("Q2b table row count wrong")
	}
}

func TestQ3WholeSkyAnchors(t *testing.T) {
	if testing.Short() {
		t.Skip("4- and 6-degree runs are slow")
	}
	res, err := Q3WholeSky(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 3,900 x $8.88 = $34,632; ours lands within ~10%.
	if got := float64(res.FourDeg.TotalCost); math.Abs(got-34632) > 3500 {
		t.Errorf("whole-sky 4-degree total = $%.0f, want ~$34,632", got)
	}
	if res.FourDeg.TotalCostArchived >= res.FourDeg.TotalCost {
		t.Error("archived-inputs total not cheaper")
	}
	if res.SixDeg.Mosaics != 1734 {
		t.Errorf("6-degree mosaics = %d, want 1734", res.SixDeg.Mosaics)
	}
	if res.SixDeg.TotalCost <= 0 {
		t.Error("6-degree total not positive")
	}
	if len(res.Table().Rows) != 2 {
		t.Error("whole-sky table row count wrong")
	}
}

func TestQ3StoreAnchors(t *testing.T) {
	res, err := Q3Store(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(res.Rows))
	}
	// Paper horizons: 21.52 / 24.25 / 25.12 months; ours match because
	// mosaic sizes and CPU costs are calibrated.
	for _, row := range res.Rows {
		if stats.RelErr(row.Horizon.Months, row.Paper) > 0.03 {
			t.Errorf("%s horizon = %.2f months, want %.2f", row.Workflow, row.Horizon.Months, row.Paper)
		}
		if row.Horizon.Months < 20 || row.Horizon.Months > 27 {
			t.Errorf("%s horizon %.2f outside the ~2-year band", row.Workflow, row.Horizon.Months)
		}
	}
	if len(res.Table().Rows) != 3 {
		t.Error("store table row count wrong")
	}
}

func TestOverloadScenario(t *testing.T) {
	res, err := Overload(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 600 {
		t.Fatalf("requests = %d, want 600", res.Requests)
	}
	if res.Without.CloudRuns != 0 {
		t.Error("local-only baseline used the cloud")
	}
	if res.With.CloudRuns == 0 {
		t.Error("burst scenario never used the cloud")
	}
	// Bursting must fix the SLA story and cost real money.
	if res.With.SLAViolations >= res.Without.SLAViolations {
		t.Errorf("bursting did not reduce SLA violations: %d vs %d",
			res.With.SLAViolations, res.Without.SLAViolations)
	}
	if res.With.CloudSpend <= 0 {
		t.Error("bursting cost nothing")
	}
	if res.With.MeanTurnaround >= res.Without.MeanTurnaround {
		t.Error("bursting did not improve mean turnaround")
	}
	if len(res.Table().Rows) != 2 {
		t.Error("overload table row count wrong")
	}
}

func TestAblationGranularity(t *testing.T) {
	res, err := AblationGranularity(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("got %d rows, want 8", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.PerHour < row.PerSecond {
			t.Errorf("%d procs: hourly %v below per-second %v", row.Processors, row.PerHour, row.PerSecond)
		}
	}
	if len(res.Table().Rows) != 8 {
		t.Error("granularity table row count wrong")
	}
}

func TestAblationVMStartup(t *testing.T) {
	res, err := AblationVMStartup(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(res.Rows))
	}
	for i := 1; i < len(res.Rows); i++ {
		prev, cur := res.Rows[i-1], res.Rows[i]
		if cur.ExecTime <= prev.ExecTime {
			t.Errorf("exec time not increasing with startup %v", cur.Startup)
		}
		if cur.Total <= prev.Total {
			t.Errorf("total cost not increasing with startup %v", cur.Startup)
		}
	}
	// A 15-minute boot on 16 procs adds 16 x 0.25 h x $0.1 = $0.40.
	delta := float64(res.Rows[3].Total - res.Rows[0].Total)
	if math.Abs(delta-0.40) > 0.01 {
		t.Errorf("15-min startup premium = $%.4f, want ~$0.40", delta)
	}
	if len(res.Table().Rows) != 4 {
		t.Error("startup table row count wrong")
	}
}

func TestAblationOutage(t *testing.T) {
	res, err := AblationOutage(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(res.Rows))
	}
	for i := 1; i < len(res.Rows); i++ {
		prev, cur := res.Rows[i-1], res.Rows[i]
		if cur.Makespan < prev.Makespan {
			t.Errorf("makespan decreased with outage %v", cur.OutageLen)
		}
		if cur.Total < prev.Total {
			t.Errorf("cost decreased with outage %v", cur.OutageLen)
		}
	}
	// A 2-hour outage must delay the run by roughly 2 hours.
	delay := res.Rows[3].Makespan - res.Rows[0].Makespan
	if delay < 6000 || delay > 8000 {
		t.Errorf("2-hour outage delayed the run by %v, want ~7200 s", delay)
	}
	if len(res.Table().Rows) != 4 {
		t.Error("outage table row count wrong")
	}
}

func TestAblationScheduler(t *testing.T) {
	res, err := AblationScheduler(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 9 { // 3 pool sizes x 3 policies
		t.Fatalf("got %d rows, want 9", len(res.Rows))
	}
	// Group by pool size; the policies must all complete and differ only
	// in time/cost, with the spread staying modest (level-structured DAG).
	byProcs := map[int][]SchedulerRow{}
	for _, row := range res.Rows {
		if row.ExecTime <= 0 || row.Total <= 0 {
			t.Fatalf("degenerate row %+v", row)
		}
		byProcs[row.Processors] = append(byProcs[row.Processors], row)
	}
	for procs, rows := range byProcs {
		if len(rows) != 3 {
			t.Fatalf("%d procs: %d policies, want 3", procs, len(rows))
		}
		min, max := rows[0].ExecTime, rows[0].ExecTime
		for _, r := range rows {
			if r.ExecTime < min {
				min = r.ExecTime
			}
			if r.ExecTime > max {
				max = r.ExecTime
			}
		}
		if float64(max)/float64(min) > 1.5 {
			t.Errorf("%d procs: policy spread %vx too wide", procs, float64(max)/float64(min))
		}
	}
	if len(res.Table().Rows) != 9 {
		t.Error("scheduler table row count wrong")
	}
}

func TestAblationReliability(t *testing.T) {
	res, err := AblationReliability(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("got %d rows, want 5", len(res.Rows))
	}
	if res.Rows[0].FailureProb != 0 || res.Rows[0].Retries != 0 {
		t.Errorf("baseline row wrong: %+v", res.Rows[0])
	}
	for i := 1; i < len(res.Rows); i++ {
		prev, cur := res.Rows[i-1], res.Rows[i]
		if cur.Retries <= prev.Retries {
			t.Errorf("retries not increasing at p=%v", cur.FailureProb)
		}
		if cur.Total <= prev.Total {
			t.Errorf("cost not increasing at p=%v", cur.FailureProb)
		}
	}
	if len(res.Table().Rows) != 5 {
		t.Error("reliability table row count wrong")
	}
}

func TestAblationClustering(t *testing.T) {
	res, err := AblationClustering(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("got %d rows, want 5", len(res.Rows))
	}
	if res.Rows[0].Factor != 1 || res.Rows[0].Tasks != 203 {
		t.Errorf("baseline row wrong: %+v", res.Rows[0])
	}
	for i := 1; i < len(res.Rows); i++ {
		prev, cur := res.Rows[i-1], res.Rows[i]
		if cur.Tasks >= prev.Tasks {
			t.Errorf("task count not shrinking at factor %d", cur.Factor)
		}
		if cur.ExecTime < prev.ExecTime-1e-9 {
			t.Errorf("coarser clustering finished sooner at factor %d", cur.Factor)
		}
	}
	if len(res.Table().Rows) != 5 {
		t.Error("clustering table row count wrong")
	}
}

func TestAblationPlanComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("all-preset comparison is slow")
	}
	res, err := AblationPlanComparison(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Provisioned <= row.OnDemand {
			t.Errorf("%s: provisioned %v not above on-demand %v",
				row.Workflow, row.Provisioned, row.OnDemand)
		}
		if row.Utilization <= 0 || row.Utilization > 1 {
			t.Errorf("%s: utilization %v outside (0,1]", row.Workflow, row.Utilization)
		}
	}
	// The 4-degree row reproduces the paper's $13.92 vs $8.89 contrast.
	last := res.Rows[2]
	if got := float64(last.Provisioned); got < 11 || got > 18 {
		t.Errorf("4-degree provisioned = $%.2f, want ~$13.92", got)
	}
	if got := float64(last.OnDemand); got < 8 || got > 10.5 {
		t.Errorf("4-degree on-demand = $%.2f, want ~$8.89", got)
	}
}
