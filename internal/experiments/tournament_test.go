package experiments

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/wire"
)

func TestTournamentEntriesValidation(t *testing.T) {
	base := DefaultTournamentScenario()
	if _, err := TournamentEntries(base, nil); err == nil {
		t.Error("empty roster accepted")
	}
	over := make([]wire.PoliciesSection, wire.MaxGridPoints+1)
	if _, err := TournamentEntries(base, over); err == nil {
		t.Error("oversized roster accepted")
	}
	bad := []wire.PoliciesSection{{}, {Placement: "astrology"}}
	if _, err := TournamentEntries(base, bad); err == nil {
		t.Error("unregistered policy accepted")
	} else if !strings.Contains(err.Error(), "bundle 1") {
		t.Errorf("error does not name the offending entry: %v", err)
	}
}

// TestTournamentEntriesReplaceOutright: an entry's scenario is the base
// document with its policies section REPLACED, not merged -- the empty
// bundle competes as the true defaults even when the base names
// something else.
func TestTournamentEntriesReplaceOutright(t *testing.T) {
	base := DefaultTournamentScenario()
	base.Policies = &wire.PoliciesSection{Checkpoint: "risk"}
	entries, err := TournamentEntries(base, []wire.PoliciesSection{{}, {Placement: "heft"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := entries[0].Plan.Policies.Canonical().Checkpoint; got != "interval" {
		t.Errorf("empty bundle inherited the base checkpoint policy %q", got)
	}
	if got := entries[1].Plan.Policies.Canonical(); got.Placement != "heft" || got.Checkpoint != "interval" {
		t.Errorf("bundle 1 plan policies = %+v", got)
	}
}

func TestDefaultTournamentCoversEverySlot(t *testing.T) {
	bundles := DefaultTournamentBundles()
	if bundles[0] != (wire.PoliciesSection{}) {
		t.Error("roster does not open with the historical defaults")
	}
	var place, victim, ckpt, size int
	for _, b := range bundles[1:] {
		switch {
		case b.Placement != "":
			place++
		case b.Victim != "":
			victim++
		case b.Checkpoint != "":
			ckpt++
		case b.Sizing != "":
			size++
		}
	}
	for slot, n := range map[string]int{"placement": place, "victim": victim, "checkpoint": ckpt, "sizing": size} {
		if n < 2 {
			t.Errorf("%s has %d challengers, want >= 2", slot, n)
		}
	}
}

// TestTournamentDeterministicAndRanked runs the full default tournament
// twice: the rows come back in entry order, the standings rank every
// bundle exactly once, and the whole thing is a pure function of the
// scenario.
func TestTournamentDeterministicAndRanked(t *testing.T) {
	base := DefaultTournamentScenario()
	bundles := DefaultTournamentBundles()
	rows, err := Tournament(context.Background(), base, bundles)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(bundles) {
		t.Fatalf("%d rows for %d bundles", len(rows), len(bundles))
	}
	for i, r := range rows {
		if r.Entry.Index != i || r.Entry.Bundle != bundles[i] {
			t.Fatalf("row %d carries entry %d (%+v)", i, r.Entry.Index, r.Entry.Bundle)
		}
		if r.Result.Metrics.Makespan <= 0 {
			t.Fatalf("row %d has no makespan", i)
		}
	}

	standings := RankTournament(rows)
	seen := make(map[int]bool)
	for i, st := range standings {
		if st.Rank != i+1 {
			t.Errorf("standing %d has rank %d", i, st.Rank)
		}
		if seen[st.Index] {
			t.Errorf("entry %d ranked twice", st.Index)
		}
		seen[st.Index] = true
		if i > 0 && st.CostDollars < standings[i-1].CostDollars {
			t.Errorf("standings not cost-sorted at %d: %v < %v", i, st.CostDollars, standings[i-1].CostDollars)
		}
	}

	again, err := Tournament(context.Background(), base, bundles)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(RankTournament(again), standings) {
		t.Error("repeat tournament produced different standings")
	}
}

func TestTournamentStreamOrder(t *testing.T) {
	var got []int
	err := TournamentStream(context.Background(), DefaultTournamentScenario(),
		[]wire.PoliciesSection{{}, {Victim: "cost-aware"}, {Sizing: "half"}},
		func(r TournamentRow) error {
			got = append(got, r.Entry.Index)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Errorf("stream order = %v", got)
	}
}

func TestBundleLabel(t *testing.T) {
	if got := bundleLabel(wire.PoliciesSection{}); got != "defaults" {
		t.Errorf("empty bundle label = %q", got)
	}
	b := wire.PoliciesSection{Placement: "heft", Checkpoint: "adaptive"}
	if got := bundleLabel(b); got != "place=heft ckpt=adaptive" {
		t.Errorf("label = %q", got)
	}
}

func TestReseedSpotDoesNotMutateCaller(t *testing.T) {
	base := DefaultTournamentScenario()
	re := ReseedSpot(base, 99)
	if re.Spot.Seed != 99 {
		t.Errorf("reseeded seed = %d", re.Spot.Seed)
	}
	if base.Spot.Seed != DefaultTournamentSeed {
		t.Error("ReseedSpot mutated the caller's section")
	}
	// A scenario with no spot section grows one carrying the seed.
	if got := ReseedSpot(wire.Scenario{}, 7); got.Spot == nil || got.Spot.Seed != 7 {
		t.Errorf("reseed without section = %+v", got.Spot)
	}
}
