package experiments

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/datamgmt"
	"repro/internal/montage"
)

// serialProvisioning is the seed's serial sweep loop, kept as the
// reference the concurrent engine is measured against: same grid, same
// plan mutations, one point after another.
func serialProvisioning(t *testing.T, processors []int, plan core.Plan) []core.SweepPoint {
	t.Helper()
	w, err := generate(montage.OneDegree())
	if err != nil {
		t.Fatal(err)
	}
	var points []core.SweepPoint
	for _, n := range processors {
		p := plan
		p.Mode = datamgmt.Regular
		p.Processors = n
		p.Billing = core.Provisioned
		res, err := core.Run(w, p)
		if err != nil {
			t.Fatal(err)
		}
		pc := p
		pc.Mode = datamgmt.Cleanup
		resC, err := core.Run(w, pc)
		if err != nil {
			t.Fatal(err)
		}
		points = append(points, core.SweepPoint{
			Processors:         n,
			Result:             res,
			StorageCostCleanup: resC.Cost.Storage,
		})
	}
	return points
}

// TestParallelSweepMatchesSerial is the tentpole guarantee: the
// concurrent sweep returns exactly what the serial loop returns -- same
// order, same metrics, same costs.  Parallelism may never change a paper
// number.
func TestParallelSweepMatchesSerial(t *testing.T) {
	procs := core.GeometricProcessors()
	plan := core.DefaultPlan()
	want := serialProvisioning(t, procs, plan)

	w, err := generate(montage.OneDegree())
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.ProvisioningSweepContext(context.Background(), w, procs, plan)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("parallel sweep differs from serial reference\nparallel: %+v\nserial:   %+v", got, want)
	}
}

// TestSweepWorkerCountInvariant drives the figure-level engine directly:
// the same grid through 1 worker and through GOMAXPROCS workers must
// collect identical results in identical order.
func TestSweepWorkerCountInvariant(t *testing.T) {
	w, err := generate(montage.OneDegree())
	if err != nil {
		t.Fatal(err)
	}
	grid := []float64{0.053, 0.106, 0.212, 0.424}
	plan := core.DefaultPlan()
	plan.Processors = 8
	plan.Billing = core.Provisioned
	run := func(workers int) []core.CCRPoint {
		points, err := Sweep[float64, core.CCRPoint]{
			Name:    "worker-invariant",
			Points:  grid,
			Workers: workers,
			Run: func(ctx context.Context, ccr float64) (core.CCRPoint, error) {
				pts, err := core.CCRSweepContext(ctx, w, []float64{ccr}, plan)
				if err != nil {
					return core.CCRPoint{}, err
				}
				return pts[0], nil
			},
		}.Do(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return points
	}
	serial := run(1)
	parallel := run(runtime.GOMAXPROCS(0))
	if !reflect.DeepEqual(serial, parallel) {
		t.Error("worker count changed sweep results")
	}
	for i, p := range parallel {
		if p.CCR != grid[i] {
			t.Errorf("point %d: CCR %v out of grid order (want %v)", i, p.CCR, grid[i])
		}
	}
}

// TestCompareModesMatchesSerial pins the mode-comparison path the same
// way: the concurrent map equals three serial runs.
func TestCompareModesMatchesSerial(t *testing.T) {
	w, err := generate(montage.OneDegree())
	if err != nil {
		t.Fatal(err)
	}
	plan := core.DefaultPlan()
	want := make(map[datamgmt.Mode]core.Result, 3)
	for _, mode := range datamgmt.Modes() {
		p := plan
		p.Mode = mode
		p.Billing = core.OnDemand
		p.Processors = 0
		res, err := core.Run(w, p)
		if err != nil {
			t.Fatal(err)
		}
		want[mode] = res
	}
	got, err := core.CompareModesContext(context.Background(), w, plan)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("concurrent CompareModes differs from serial runs")
	}
}

// TestSweepCancellation covers the context plumbing end to end: a
// canceled context aborts figure reproductions, core sweeps and raw
// sweep grids with context.Canceled.
func TestSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := Fig4(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("Fig4 under canceled ctx: %v, want context.Canceled", err)
	}
	if _, err := Fig10(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("Fig10 under canceled ctx: %v, want context.Canceled", err)
	}
	if _, err := AblationScheduler(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("AblationScheduler under canceled ctx: %v, want context.Canceled", err)
	}
	w, err := generate(montage.OneDegree())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.RunContext(ctx, w, core.DefaultPlan()); !errors.Is(err, context.Canceled) {
		t.Errorf("RunContext under canceled ctx: %v, want context.Canceled", err)
	}
}

// TestSweepMidRunCancellation cancels while the grid is in flight: the
// engine must stop dispatching and report the cancellation rather than a
// partial result.
func TestSweepMidRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 1)
	_, err := Sweep[int, int]{
		Name:    "mid-run-cancel",
		Points:  []int{0, 1, 2, 3, 4, 5, 6, 7},
		Workers: 1,
		Run: func(ctx context.Context, p int) (int, error) {
			select {
			case started <- struct{}{}:
				cancel() // cancel as soon as the first point starts
			default:
			}
			return p, nil
		},
	}.Do(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run cancel: %v, want context.Canceled", err)
	}
}
