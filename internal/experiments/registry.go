package experiments

import (
	"context"
	"fmt"

	"repro/internal/report"
	"repro/wire"
)

// Params carries the optional knobs a caller may turn on a registered
// experiment.  The zero value reproduces the paper: every experiment
// ignores the fields it does not consult.
type Params struct {
	// Seed overrides the arrival-stream or revocation-schedule seed of
	// the stochastic experiments; nil keeps the published default.
	// Every other experiment is fully deterministic and ignores it.
	Seed *int64
	// Grid overrides the declarative scenario grid of the grid-driven
	// experiments (scenario-grid); nil keeps the canned default.  This
	// is how a registered experiment is expressed as a v2 scenario
	// sweep: a base Scenario document plus {axis, values} pairs.
	Grid *wire.SweepRequest
	// Scenario overrides the base scenario of the policy tournament;
	// nil keeps the canned default arena.
	Scenario *wire.Scenario
	// Bundles overrides the policy bundles the tournament fields; empty
	// keeps the default roster (every registered competitor, one slot
	// varied at a time).
	Bundles []wire.PoliciesSection
}

// Experiment is one registered paper experiment: a stable name, a short
// description, and a runner producing renderable tables.  The montagesim
// CLI and the reprosrv HTTP daemon both enumerate and invoke experiments
// through this registry, so the two surfaces can never drift apart.
type Experiment struct {
	Name        string
	Description string
	Tables      func(ctx context.Context, p Params) ([]*report.Table, error)
}

// Registry lists every experiment in presentation order (the order of
// the paper's evaluation, then the §8 ablation extensions).
func Registry() []Experiment {
	return []Experiment{
		{"ccr-table", "§6.3 CCR table", one(CCRTable)},
		{"fig4", "Q1 provisioning sweep, 1-degree", provisioningTables(Fig4)},
		{"fig5", "Q1 provisioning sweep, 2-degree", provisioningTables(Fig5)},
		{"fig6", "Q1 provisioning sweep, 4-degree", provisioningTables(Fig6)},
		{"fig7", "Q2a data-management comparison, 1-degree", dataManagementTables(Fig7)},
		{"fig8", "Q2a data-management comparison, 2-degree", dataManagementTables(Fig8)},
		{"fig9", "Q2a data-management comparison, 4-degree", dataManagementTables(Fig9)},
		{"fig10", "CPU vs data-management cost summary", one(Fig10)},
		{"fig11", "CCR sensitivity sweep", one(Fig11)},
		{"q2b", "archive break-even analysis", one(Q2b)},
		{"q3", "whole-sky campaign costing", one(Q3WholeSky)},
		{"store", "store-vs-recompute horizons", one(Q3Store)},
		{"ablation-granularity", "per-hour vs per-second billing", one(AblationGranularity)},
		{"ablation-plan", "provisioned vs on-demand charging", one(AblationPlanComparison)},
		{"ablation-startup", "VM startup cost (§8 extension)", one(AblationVMStartup)},
		{"ablation-outage", "storage outage impact (§8 extension)", one(AblationOutage)},
		{"ablation-scheduler", "list-scheduler policy comparison", one(AblationScheduler)},
		{"ablation-clustering", "horizontal task clustering", one(AblationClustering)},
		{"ablation-reliability", "task failure rate impact (§8 extension)", one(AblationReliability)},
		{"overload", "cloud bursting under a request overload (?seed= reseeds the arrivals)",
			func(ctx context.Context, p Params) ([]*report.Table, error) {
				seed := DefaultOverloadSeed
				if p.Seed != nil {
					seed = *p.Seed
				}
				r, err := OverloadSeeded(ctx, seed)
				if err != nil {
					return nil, err
				}
				return []*report.Table{r.Table()}, nil
			}},
		{"spot-frontier", "spot vs on-demand cost-reliability frontier (?seed= reseeds the revocations)",
			func(ctx context.Context, p Params) ([]*report.Table, error) {
				seed := DefaultSpotSeed
				if p.Seed != nil {
					seed = *p.Seed
				}
				r, err := SpotFrontierSeeded(ctx, seed)
				if err != nil {
					return nil, err
				}
				return r.Tables(), nil
			}},
		{"mixed-fleet", "on-demand/spot fleet-split frontier with per-instance reclaims (?seed= reseeds the revocations)",
			func(ctx context.Context, p Params) ([]*report.Table, error) {
				seed := DefaultFleetSeed
				if p.Seed != nil {
					seed = *p.Seed
				}
				r, err := MixedFleetSeeded(ctx, seed)
				if err != nil {
					return nil, err
				}
				return r.Tables(), nil
			}},
		{"scenario-grid", "declarative any-axis scenario sweep (default: spot.rate_per_hour; ?seed= reseeds the revocations; POST a {grid} to /v2/experiments/scenario-grid to sweep anything)",
			scenarioGridTables},
		{"policy-tournament", "rank scheduling/recovery policy bundles on one scenario by cost, makespan and wasted CPU (?seed= reseeds the revocations; POST {scenario, bundles} to /v2/experiments/policy-tournament for the NDJSON stream)",
			tournamentTables},
	}
}

// Lookup finds a registered experiment by name.
func Lookup(name string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// tabler is any experiment result that renders itself as one table.
type tabler interface {
	Table() *report.Table
}

// one adapts a single-table experiment constructor to the registry
// runner signature.
func one[R tabler](fn func(context.Context) (R, error)) func(context.Context, Params) ([]*report.Table, error) {
	return func(ctx context.Context, _ Params) ([]*report.Table, error) {
		r, err := fn(ctx)
		if err != nil {
			return nil, err
		}
		return []*report.Table{r.Table()}, nil
	}
}

// provisioningTables adapts a Question-1 figure (two panels).
func provisioningTables(fn func(context.Context) (ProvisioningFigure, error)) func(context.Context, Params) ([]*report.Table, error) {
	return func(ctx context.Context, _ Params) ([]*report.Table, error) {
		f, err := fn(ctx)
		if err != nil {
			return nil, err
		}
		return []*report.Table{f.CostTable(), f.TimeTable()}, nil
	}
}

// dataManagementTables adapts a Question-2a figure (three panels).
func dataManagementTables(fn func(context.Context) (DataManagementFigure, error)) func(context.Context, Params) ([]*report.Table, error) {
	return func(ctx context.Context, _ Params) ([]*report.Table, error) {
		f, err := fn(ctx)
		if err != nil {
			return nil, err
		}
		return []*report.Table{f.StorageTable(), f.TransferTable(), f.CostTable()}, nil
	}
}

// Run executes the named experiment, labeling errors with the name.
func Run(ctx context.Context, name string, p Params) ([]*report.Table, error) {
	e, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q", name)
	}
	tables, err := e.Tables(ctx, p)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", e.Name, err)
	}
	return tables, nil
}
