package experiments

import (
	"context"
	"fmt"
	"testing"

	"repro/wire"
)

// TestScenarioGridDefault runs the canned spot-axis grid end to end:
// four revocation rates on a mixed fleet, rows in grid order, the calm
// (rate 0) point preempting nothing.
func TestScenarioGridDefault(t *testing.T) {
	req := DefaultGrid()
	rows, err := ScenarioGrid(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("grid produced %d rows, want 4", len(rows))
	}
	if rows[0].Result.Metrics.Preempted != 0 {
		t.Errorf("calm-market point preempted %d tasks", rows[0].Result.Metrics.Preempted)
	}
	for i, row := range rows {
		want := req.Axes[0].Values[i]
		if len(row.Values) != 1 || row.Values[0] != want {
			t.Errorf("row %d carries axis values %v, want [%v]", i, row.Values, want)
		}
		if row.Scenario.Spot == nil {
			t.Fatalf("row %d scenario lost its spot section", i)
		}
	}
	tbl, err := GridTable(req, rows)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Columns[0] != "spot.rate_per_hour" {
		t.Errorf("first grid column = %q", tbl.Columns[0])
	}
	if len(tbl.Rows) != 4 {
		t.Errorf("table has %d rows, want 4", len(tbl.Rows))
	}
}

// TestScenarioGridRegistryParams: the registry path honours a caller-
// supplied grid, which is how experiments become expressible as
// scenario grids.
func TestScenarioGridRegistryParams(t *testing.T) {
	grid := &wire.SweepRequest{
		Scenario: wire.Scenario{
			Version:  wire.Version,
			Workflow: wire.WorkflowSection{Name: "1deg"},
			Pricing:  &wire.PricingSection{Billing: "provisioned"},
		},
		Axes: []wire.Axis{{Path: "fleet.processors", Values: []any{1.0, 2.0, 4.0}}},
	}
	tables, err := Run(context.Background(), "scenario-grid", Params{Grid: grid})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || len(tables[0].Rows) != 3 {
		t.Fatalf("unexpected tables: %+v", tables)
	}
	// A malformed caller grid must surface, not fall back to the default.
	bad := &wire.SweepRequest{Scenario: grid.Scenario, Axes: []wire.Axis{{Path: "no.such", Values: []any{1}}}}
	if _, err := Run(context.Background(), "scenario-grid", Params{Grid: bad}); err == nil {
		t.Error("malformed grid accepted")
	}
}

// TestScenarioGridHonoursSeed: like every stochastic experiment, the
// grid reseeds its revocation sampling through Params.Seed -- a
// different seed must change the sampled schedule's outcome.
func TestScenarioGridHonoursSeed(t *testing.T) {
	base, err := Run(context.Background(), "scenario-grid", Params{})
	if err != nil {
		t.Fatal(err)
	}
	seed := int64(99)
	reseeded, err := Run(context.Background(), "scenario-grid", Params{Seed: &seed})
	if err != nil {
		t.Fatal(err)
	}
	same, err := Run(context.Background(), "scenario-grid", Params{Seed: &seed})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(base[0].Rows) == fmt.Sprint(reseeded[0].Rows) {
		t.Error("reseeding changed nothing")
	}
	if fmt.Sprint(reseeded[0].Rows) != fmt.Sprint(same[0].Rows) {
		t.Error("same seed produced different tables")
	}
	// The default grid's seed must stay untouched by the override path.
	if DefaultGrid().Scenario.Spot.Seed != DefaultGridSeed {
		t.Errorf("default grid seed drifted: %d", DefaultGrid().Scenario.Spot.Seed)
	}
}
