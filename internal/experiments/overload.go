package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/montage"
	"repro/internal/report"
	"repro/internal/service"
	"repro/internal/units"
)

// OverloadResult is the introduction's first scenario made quantitative:
// a Montage service with a small local cluster facing a multi-day
// overload, with and without cloud bursting.
type OverloadResult struct {
	Classes  []service.Class
	SLA      units.Duration
	Requests int
	Without  service.Stats
	With     service.Stats
}

// Overload simulates a month of 1- and 2-degree mosaic requests against
// an 8-processor local cluster with a 4-hour turnaround target and a
// 3-day, 8x request burst, comparing local-only operation against
// bursting to a 32-processor provisioned cloud pool.
func Overload() (OverloadResult, error) {
	cloudPlan := core.DefaultPlan()
	cloudPlan.Billing = core.Provisioned
	cloudPlan.Processors = 32

	var classes []service.Class
	for _, spec := range []montage.Spec{montage.OneDegree(), montage.TwoDegree()} {
		c, err := service.MeasureClass(spec, 8, cloudPlan)
		if err != nil {
			return OverloadResult{}, err
		}
		classes = append(classes, c)
	}

	day := units.Duration(24 * units.SecondsPerHour)
	arrivals := service.Arrivals{
		Seed: 42, N: 600, MeanGap: 2 * units.Duration(units.SecondsPerHour), Classes: 2,
		BurstStart: 10 * day, BurstEnd: 13 * day, BurstRate: 8,
	}
	reqs, err := arrivals.Generate()
	if err != nil {
		return OverloadResult{}, err
	}

	res := OverloadResult{
		Classes:  classes,
		SLA:      units.Duration(4 * units.SecondsPerHour),
		Requests: len(reqs),
	}
	if _, res.Without, err = service.Simulate(classes, reqs,
		service.Config{SLA: res.SLA}); err != nil {
		return OverloadResult{}, err
	}
	if _, res.With, err = service.Simulate(classes, reqs,
		service.Config{SLA: res.SLA, CloudEnabled: true}); err != nil {
		return OverloadResult{}, err
	}
	return res, nil
}

// Table renders the comparison.
func (r OverloadResult) Table() *report.Table {
	t := report.New(
		fmt.Sprintf("Overload scenario: %d requests, %v SLA, 3-day 8x burst", r.Requests, r.SLA),
		"operation", "local-runs", "cloud-runs", "mean-turnaround", "max-turnaround", "sla-violations", "cloud-spend")
	add := func(name string, s service.Stats) {
		t.MustAdd(name, fmt.Sprint(s.LocalRuns), fmt.Sprint(s.CloudRuns),
			s.MeanTurnaround.String(), s.MaxTurnaround.String(),
			fmt.Sprint(s.SLAViolations), s.CloudSpend.String())
	}
	add("local only", r.Without)
	add("cloud burst", r.With)
	return t
}
