package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/montage"
	"repro/internal/report"
	"repro/internal/service"
	"repro/internal/units"
)

// OverloadResult is the introduction's first scenario made quantitative:
// a Montage service with a small local cluster facing a multi-day
// overload, with and without cloud bursting.
type OverloadResult struct {
	Classes  []service.Class
	Seed     int64
	SLA      units.Duration
	Requests int
	Without  service.Stats
	With     service.Stats
}

// DefaultOverloadSeed is the published arrival-stream seed; Overload
// uses it, and OverloadSeeded reproduces any other stream on demand.
const DefaultOverloadSeed int64 = 42

// Overload simulates a month of 1- and 2-degree mosaic requests against
// an 8-processor local cluster with a 4-hour turnaround target and a
// 3-day, 8x request burst, comparing local-only operation against
// bursting to a 32-processor provisioned cloud pool.  The two class
// measurements and the two month-long simulations each run concurrently.
func Overload(ctx context.Context) (OverloadResult, error) {
	return OverloadSeeded(ctx, DefaultOverloadSeed)
}

// OverloadSeeded is Overload with an explicit arrival-stream seed: the
// only stochastic input of the scenario, threaded through
// service.Arrivals so a server (or anyone else) can re-run the exact
// same request stream, or explore fresh ones, reproducibly.
func OverloadSeeded(ctx context.Context, seed int64) (OverloadResult, error) {
	cloudPlan := core.DefaultPlan()
	cloudPlan.Billing = core.Provisioned
	cloudPlan.Processors = 32

	classes, err := Sweep[montage.Spec, service.Class]{
		Name:   "overload-classes",
		Points: []montage.Spec{montage.OneDegree(), montage.TwoDegree()},
		Run: func(ctx context.Context, spec montage.Spec) (service.Class, error) {
			return service.MeasureClassContext(ctx, spec, 8, cloudPlan)
		},
	}.Do(ctx)
	if err != nil {
		return OverloadResult{}, err
	}

	day := units.Duration(24 * units.SecondsPerHour)
	arrivals := service.Arrivals{
		N: 600, MeanGap: 2 * units.Duration(units.SecondsPerHour), Classes: 2,
		BurstStart: 10 * day, BurstEnd: 13 * day, BurstRate: 8,
	}.WithSeed(seed)
	reqs, err := arrivals.Generate()
	if err != nil {
		return OverloadResult{}, err
	}

	res := OverloadResult{
		Classes:  classes,
		Seed:     seed,
		SLA:      units.Duration(4 * units.SecondsPerHour),
		Requests: len(reqs),
	}
	stats, err := Sweep[service.Config, service.Stats]{
		Name: "overload-scenarios",
		Points: []service.Config{
			{SLA: res.SLA},
			{SLA: res.SLA, CloudEnabled: true},
		},
		Run: func(ctx context.Context, cfg service.Config) (service.Stats, error) {
			_, s, err := service.Simulate(classes, reqs, cfg)
			return s, err
		},
	}.Do(ctx)
	if err != nil {
		return OverloadResult{}, err
	}
	res.Without, res.With = stats[0], stats[1]
	return res, nil
}

// Table renders the comparison.
func (r OverloadResult) Table() *report.Table {
	t := report.New(
		fmt.Sprintf("Overload scenario: %d requests, %v SLA, 3-day 8x burst", r.Requests, r.SLA),
		"operation", "local-runs", "cloud-runs", "mean-turnaround", "max-turnaround", "sla-violations", "cloud-spend")
	add := func(name string, s service.Stats) {
		t.MustAdd(name, fmt.Sprint(s.LocalRuns), fmt.Sprint(s.CloudRuns),
			s.MeanTurnaround.String(), s.MaxTurnaround.String(),
			fmt.Sprint(s.SLAViolations), s.CloudSpend.String())
	}
	add("local only", r.Without)
	add("cloud burst", r.With)
	return t
}
