package experiments

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/montage"
	"repro/internal/report"
	"repro/wire"
)

// The policy tournament runs one base scenario under several policy
// bundles and ranks them: the composable-policy analogue of the paper's
// single-strategy study.  Every entry is a deterministic simulation of
// the same workload and market, so the ranking isolates exactly the
// policy choices.

// DefaultTournamentSeed seeds the default tournament's revocation
// sampling.
const DefaultTournamentSeed int64 = 2026

// DefaultTournamentScenario is the canned arena: the 1-degree workflow
// on a 16-processor fleet with a 4-slot reliable floor, renting from a
// reclaiming spot market with checkpoint/restart enabled -- a scenario
// where all four policy slots have work to do.
func DefaultTournamentScenario() wire.Scenario {
	return wire.Scenario{
		Version:  wire.Version,
		Workflow: wire.WorkflowSection{Name: "1deg"},
		Fleet:    &wire.FleetSection{Processors: 16, Reliable: 4},
		Spot:     &wire.SpotSection{RatePerHour: 1, Seed: DefaultTournamentSeed, Discount: 0.65},
		Recovery: &wire.RecoverySection{CheckpointSeconds: 300, CheckpointOverheadSeconds: 10, CheckpointBytes: 1e8},
	}
}

// DefaultTournamentBundles is the default roster: the historical
// defaults plus every registered competitor, varied one slot at a time
// -- at least two challengers per policy slot, so each decision point
// is ranked in isolation against the baseline.
func DefaultTournamentBundles() []wire.PoliciesSection {
	return []wire.PoliciesSection{
		{}, // the historical defaults
		{Placement: "heft"},
		{Placement: "fifo"},
		{Victim: "cost-aware"},
		{Victim: "least-progress"},
		{Checkpoint: "adaptive"},
		{Checkpoint: "risk"},
		{Sizing: "quarter"},
		{Sizing: "half"},
	}
}

// TournamentEntry is one resolved competitor: the bundle, the base
// scenario with that bundle substituted, and its runnable (spec, plan).
type TournamentEntry struct {
	Index    int
	Bundle   wire.PoliciesSection
	Scenario wire.Scenario
	Spec     montage.Spec
	Plan     core.Plan
}

// TournamentEntries resolves every bundle against the base scenario,
// failing with the offending entry index on a malformed combination.
// Each entry's scenario is the base document with its policies section
// replaced outright (not merged), so an entry is exactly what a direct
// POST of that document would run.
func TournamentEntries(base wire.Scenario, bundles []wire.PoliciesSection) ([]TournamentEntry, error) {
	if len(bundles) == 0 {
		return nil, fmt.Errorf("experiments: tournament with no bundles")
	}
	if len(bundles) > wire.MaxGridPoints {
		return nil, fmt.Errorf("experiments: tournament exceeds %d bundles", wire.MaxGridPoints)
	}
	out := make([]TournamentEntry, len(bundles))
	for i, b := range bundles {
		b := b
		s := base
		s.Policies = &b
		spec, plan, err := s.Resolve()
		if err != nil {
			return nil, fmt.Errorf("experiments: tournament bundle %d: %w", i, err)
		}
		out[i] = TournamentEntry{Index: i, Bundle: b, Scenario: s, Spec: spec, Plan: plan}
	}
	return out, nil
}

// TournamentRow is one competitor's measured outcome.
type TournamentRow struct {
	Entry  TournamentEntry
	Result core.Result
}

// tournamentSweep wraps the entries in the shared concurrent grid
// engine.
func tournamentSweep(entries []TournamentEntry) Sweep[TournamentEntry, TournamentRow] {
	return Sweep[TournamentEntry, TournamentRow]{
		Name:   "policy-tournament",
		Points: entries,
		Run: func(ctx context.Context, e TournamentEntry) (TournamentRow, error) {
			wf, err := montage.Cached(e.Spec)
			if err != nil {
				return TournamentRow{}, err
			}
			res, err := core.RunContext(ctx, wf, e.Plan)
			if err != nil {
				return TournamentRow{}, err
			}
			return TournamentRow{Entry: e, Result: res}, nil
		},
	}
}

// Tournament runs every bundle on the base scenario concurrently,
// returning rows in entry order.
func Tournament(ctx context.Context, base wire.Scenario, bundles []wire.PoliciesSection) ([]TournamentRow, error) {
	entries, err := TournamentEntries(base, bundles)
	if err != nil {
		return nil, err
	}
	return tournamentSweep(entries).Do(ctx)
}

// TournamentStream is Tournament with streaming delivery: emit receives
// each row in entry order as soon as it and every earlier entry have
// finished.
func TournamentStream(ctx context.Context, base wire.Scenario, bundles []wire.PoliciesSection, emit func(TournamentRow) error) error {
	entries, err := TournamentEntries(base, bundles)
	if err != nil {
		return err
	}
	return tournamentSweep(entries).DoEach(ctx, emit)
}

// RankTournament orders the rows best-first -- total cost, then
// makespan, then wasted CPU, then entry index as the deterministic
// tie-break -- and returns the standings.
func RankTournament(rows []TournamentRow) []wire.TournamentStanding {
	standings := make([]wire.TournamentStanding, len(rows))
	for i, r := range rows {
		standings[i] = wire.TournamentStanding{
			Index:            r.Entry.Index,
			Bundle:           r.Entry.Bundle,
			CostDollars:      r.Result.Cost.Total().Dollars(),
			MakespanSeconds:  r.Result.Metrics.Makespan.Seconds(),
			WastedCPUSeconds: r.Result.Metrics.WastedCPUSeconds,
		}
	}
	sort.SliceStable(standings, func(i, j int) bool {
		a, b := standings[i], standings[j]
		if a.CostDollars != b.CostDollars {
			return a.CostDollars < b.CostDollars
		}
		if a.MakespanSeconds != b.MakespanSeconds {
			return a.MakespanSeconds < b.MakespanSeconds
		}
		if a.WastedCPUSeconds != b.WastedCPUSeconds {
			return a.WastedCPUSeconds < b.WastedCPUSeconds
		}
		return a.Index < b.Index
	})
	for i := range standings {
		standings[i].Rank = i + 1
	}
	return standings
}

// bundleLabel names a bundle compactly: only the slots that deviate
// from the defaults, or "defaults" for the baseline.
func bundleLabel(b wire.PoliciesSection) string {
	s := ""
	add := func(k, v string) {
		if v == "" {
			return
		}
		if s != "" {
			s += " "
		}
		s += k + "=" + v
	}
	add("place", b.Placement)
	add("victim", b.Victim)
	add("ckpt", b.Checkpoint)
	add("size", b.Sizing)
	if s == "" {
		return "defaults"
	}
	return s
}

// TournamentTable renders the standings, best bundle first.
func TournamentTable(rows []TournamentRow) (*report.Table, error) {
	standings := RankTournament(rows)
	tbl := report.New(fmt.Sprintf("Policy tournament: %d bundles ranked by cost, makespan, wasted CPU", len(rows)),
		"rank", "bundle", "total$", "makespan", "wasted-cpu-s", "preempted", "ckpts")
	for _, st := range standings {
		m := rows[st.Index].Result.Metrics
		if err := tbl.Add(
			fmt.Sprint(st.Rank),
			bundleLabel(st.Bundle),
			report.F(st.CostDollars, 4),
			m.Makespan.String(),
			report.F(st.WastedCPUSeconds, 0),
			fmt.Sprint(m.Preempted),
			fmt.Sprint(m.Checkpoints),
		); err != nil {
			return nil, err
		}
	}
	return tbl, nil
}

// ReseedSpot returns the scenario with its spot seed replaced,
// mutating a copy of the section rather than the caller's document.
func ReseedSpot(s wire.Scenario, seed int64) wire.Scenario {
	spot := wire.SpotSection{}
	if s.Spot != nil {
		spot = *s.Spot
	}
	spot.Seed = seed
	s.Spot = &spot
	return s
}

// tournamentTables is the registry runner: the caller's scenario and
// bundles from Params, or the canned defaults; Params.Seed reseeds the
// revocation sampling like every other stochastic experiment.
func tournamentTables(ctx context.Context, p Params) ([]*report.Table, error) {
	base := DefaultTournamentScenario()
	if p.Scenario != nil {
		base = *p.Scenario
	}
	bundles := DefaultTournamentBundles()
	if len(p.Bundles) > 0 {
		bundles = p.Bundles
	}
	if p.Seed != nil {
		base = ReseedSpot(base, *p.Seed)
	}
	rows, err := Tournament(ctx, base, bundles)
	if err != nil {
		return nil, err
	}
	tbl, err := TournamentTable(rows)
	if err != nil {
		return nil, err
	}
	return []*report.Table{tbl}, nil
}
