package experiments

import (
	"context"
	"strings"
	"testing"
)

func TestRegistryNamesUniqueAndComplete(t *testing.T) {
	reg := Registry()
	if len(reg) < 19 {
		t.Fatalf("registry has %d experiments, want at least 19", len(reg))
	}
	seen := make(map[string]bool)
	for _, e := range reg {
		if e.Name == "" || e.Description == "" || e.Tables == nil {
			t.Errorf("incomplete registry entry %+v", e)
		}
		if seen[e.Name] {
			t.Errorf("duplicate experiment name %q", e.Name)
		}
		seen[e.Name] = true
	}
	for _, want := range []string{"ccr-table", "fig4", "fig10", "q2b", "overload", "ablation-outage", "spot-frontier"} {
		if !seen[want] {
			t.Errorf("registry missing %q", want)
		}
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("ccr-table"); !ok {
		t.Error("ccr-table not found")
	}
	if _, ok := Lookup("no-such-experiment"); ok {
		t.Error("bogus name found")
	}
}

func TestRunByName(t *testing.T) {
	tables, err := Run(context.Background(), "ccr-table", Params{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 {
		t.Fatalf("got %d tables, want 1", len(tables))
	}
	var b strings.Builder
	if err := tables[0].WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "montage-4deg") {
		t.Errorf("ccr-table output missing workflow row:\n%s", b.String())
	}
}

func TestRunUnknownName(t *testing.T) {
	if _, err := Run(context.Background(), "no-such-experiment", Params{}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestOverloadSeedThreading(t *testing.T) {
	ctx := context.Background()
	a, err := OverloadSeeded(ctx, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := OverloadSeeded(ctx, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.With != b.With || a.Without != b.Without {
		t.Error("same seed produced different overload stats")
	}
	c, err := OverloadSeeded(ctx, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.With == c.With && a.Without == c.Without {
		t.Error("different seeds produced identical overload stats")
	}
	if a.Seed != 7 || c.Seed != 8 {
		t.Errorf("seeds not recorded: %d, %d", a.Seed, c.Seed)
	}
}
