package core

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/exec"
	"repro/internal/montage"
)

func TestSpotPlanValidation(t *testing.T) {
	cases := map[string]SpotPlan{
		"negative rate":      {RatePerHour: -1, Downtime: 600},
		"negative warning":   {RatePerHour: 1, Warning: -1, Downtime: 600},
		"negative downtime":  {RatePerHour: 1, Downtime: -600},
		"zero downtime":      {RatePerHour: 1},
		"discount over 1":    {RatePerHour: 1, Downtime: 600, Discount: 1},
		"negative on-demand": {RatePerHour: 1, Downtime: 600, OnDemand: -1},
	}
	for name, sp := range cases {
		t.Run(name, func(t *testing.T) {
			plan := DefaultPlan()
			plan.Spot = sp
			if err := plan.Validate(); err == nil {
				t.Error("invalid spot plan accepted")
			}
		})
	}
	plan := DefaultPlan()
	plan.Spot = SpotPlan{RatePerHour: 1, Warning: 120, Downtime: 600}
	plan.Preemptions = []exec.Preemption{{Reclaim: 10, Processors: 1, Restore: 20}}
	if err := plan.Validate(); err == nil {
		t.Error("spot plan alongside explicit preemptions accepted")
	}
}

// TestSpotPlanDeterministicAndDistinct pins the declarative scenario's
// cacheability: equal plans reproduce byte-identical results, and the
// spot knobs actually change the run.
func TestSpotPlanDeterministicAndDistinct(t *testing.T) {
	wf, err := montage.Generate(montage.OneDegree())
	if err != nil {
		t.Fatal(err)
	}
	plan := DefaultPlan()
	plan.Processors = 16
	plan.Spot = SpotPlan{RatePerHour: 3, Warning: 120, Downtime: 600, Seed: 7, Discount: 0.65, OnDemand: 4}
	plan.Recovery = exec.Recovery{Checkpoint: true, Interval: 300, Overhead: 10}

	a, err := Run(wf, plan)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(wf, plan)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("two runs of the same spot plan differ")
	}
	if a.Metrics.Preempted == 0 {
		t.Error("spot plan revoked nothing; the scenario is vacuous")
	}
	if a.Metrics.OnDemandProcessors != 4 {
		t.Errorf("OnDemandProcessors = %d, want 4", a.Metrics.OnDemandProcessors)
	}

	reseeded := plan
	reseeded.Spot.Seed = 8
	c, err := Run(wf, reseeded)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Metrics, c.Metrics) {
		t.Error("different spot seeds produced identical metrics")
	}
}

// TestSpotPlanMixedBilling checks the CPU bill splits across the fleet:
// reliable CPU-seconds at the full rate, spot CPU-seconds discounted.
func TestSpotPlanMixedBilling(t *testing.T) {
	wf, err := montage.Generate(montage.OneDegree())
	if err != nil {
		t.Fatal(err)
	}
	plan := DefaultPlan()
	plan.Processors = 16
	plan.Spot = SpotPlan{RatePerHour: 1.5, Warning: 120, Downtime: 600, Seed: 2009, Discount: 0.65, OnDemand: 8}
	plan.Recovery = exec.Recovery{Checkpoint: true, Interval: 300, Overhead: 10}
	res, err := Run(wf, plan)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if m.SpotCPUSeconds <= 0 || m.SpotCPUSeconds >= m.CPUSeconds {
		t.Fatalf("SpotCPUSeconds = %v of %v; expected a strict split", m.SpotCPUSeconds, m.CPUSeconds)
	}
	rate := plan.Pricing.CPUPerHour
	wantCPU := float64(rate)*(m.CPUSeconds-m.SpotCPUSeconds)/3600 +
		float64(rate)*(1-plan.Spot.Discount)*m.SpotCPUSeconds/3600
	if math.Abs(float64(res.Cost.CPU)-wantCPU) > 1e-9 {
		t.Errorf("CPU cost = %v, want %v", res.Cost.CPU, wantCPU)
	}
	// The discounted mixed bill undercuts pricing the same metrics at
	// the flat on-demand rate.
	if flat := plan.Pricing.OnDemand(m); res.Cost.CPU >= flat.CPU {
		t.Errorf("mixed CPU cost %v not below flat %v", res.Cost.CPU, flat.CPU)
	}
	// Utilization is computed against integrated available capacity,
	// which the reclaims shrank below the static pool.
	staticCap := float64(m.Processors) * m.ExecTime.Seconds()
	if m.CapacityProcSeconds >= staticCap {
		t.Errorf("CapacityProcSeconds = %v not below the static %v despite reclaims", m.CapacityProcSeconds, staticCap)
	}
	if got, want := m.Utilization, m.CPUSeconds/m.CapacityProcSeconds; math.Abs(got-want) > 1e-12 {
		t.Errorf("Utilization = %v, want %v", got, want)
	}
}
