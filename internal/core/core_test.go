package core

import (
	"math"
	"testing"

	"repro/internal/cost"
	"repro/internal/datamgmt"
	"repro/internal/montage"
)

func TestDefaultPlanValid(t *testing.T) {
	if err := DefaultPlan().Validate(); err != nil {
		t.Fatalf("DefaultPlan invalid: %v", err)
	}
	if DefaultPlan().Pricing != cost.Amazon2008() {
		t.Error("default pricing is not Amazon 2008")
	}
}

func TestPlanValidation(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
	}{
		{"negative procs", Plan{Processors: -1}},
		{"negative bandwidth", Plan{Bandwidth: -5}},
		{"bad billing", Plan{Billing: Billing(7)}},
		{"bad mode", Plan{Mode: datamgmt.Mode(7)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.plan.Validate(); err == nil {
				t.Error("invalid plan accepted")
			}
		})
	}
	if Provisioned.String() != "provisioned" || OnDemand.String() != "on-demand" {
		t.Error("billing names wrong")
	}
}

func TestRunOneDegreeOnDemandAnchor(t *testing.T) {
	// Fig. 10 anchor: the 1-degree CPU cost is $0.56 on demand.
	w, err := montage.Generate(montage.OneDegree())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(w, DefaultPlan())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(res.Cost.CPU)-0.56) > 1e-6 {
		t.Errorf("CPU cost = %v, want $0.56", res.Cost.CPU)
	}
	// Total = CPU + DM; DM small but positive.
	if res.Cost.DataManagement() <= 0 {
		t.Error("data-management cost should be positive")
	}
	if res.Cost.Total() <= res.Cost.CPU {
		t.Error("total should exceed CPU cost")
	}
}

func TestRunProvisionedOneProcAnchor(t *testing.T) {
	// Fig. 4 anchor: 1 processor costs ~$0.60 total, ~5.5 h.
	w, err := montage.Generate(montage.OneDegree())
	if err != nil {
		t.Fatal(err)
	}
	plan := DefaultPlan()
	plan.Billing = Provisioned
	plan.Processors = 1
	res, err := Run(w, plan)
	if err != nil {
		t.Fatal(err)
	}
	total := float64(res.Cost.Total())
	if total < 0.55 || total > 0.70 {
		t.Errorf("1-proc total = $%.4f, want ~$0.60", total)
	}
	if h := res.Metrics.ExecTime.Hours(); h < 5.0 || h > 6.2 {
		t.Errorf("1-proc time = %.2f h, want ~5.5 h", h)
	}
}

func TestProvisioningSweepShape(t *testing.T) {
	// Fig. 4's qualitative shape: total cost increases with processors,
	// execution time decreases, transfer costs are flat, and cleanup
	// storage is cheaper than regular storage.
	w, err := montage.Generate(montage.OneDegree())
	if err != nil {
		t.Fatal(err)
	}
	points, err := ProvisioningSweep(w, GeometricProcessors(), DefaultPlan())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 8 {
		t.Fatalf("got %d points, want 8", len(points))
	}
	for i := 1; i < len(points); i++ {
		prev, cur := points[i-1], points[i]
		if cur.Result.Cost.CPU < prev.Result.Cost.CPU {
			t.Errorf("CPU cost decreased from %d to %d procs", prev.Processors, cur.Processors)
		}
		if cur.Result.Metrics.ExecTime > prev.Result.Metrics.ExecTime {
			t.Errorf("exec time increased from %d to %d procs", prev.Processors, cur.Processors)
		}
		if cur.Result.Cost.Transfer() != prev.Result.Cost.Transfer() {
			t.Errorf("transfer cost not flat across the sweep")
		}
		// Storage cost declines with more processors (shorter residency).
		if cur.Result.Cost.Storage > prev.Result.Cost.Storage+1e-12 {
			t.Errorf("storage cost increased from %d to %d procs", prev.Processors, cur.Processors)
		}
	}
	for _, pt := range points {
		if pt.StorageCostCleanup > pt.Result.Cost.Storage+1e-15 {
			t.Errorf("%d procs: cleanup storage %v exceeds regular %v",
				pt.Processors, pt.StorageCostCleanup, pt.Result.Cost.Storage)
		}
	}
	// Total cost at 128 procs must exceed the 1-proc total by a lot
	// (paper: $0.60 vs almost $4).
	first, last := points[0], points[len(points)-1]
	if ratio := float64(last.Result.Cost.Total() / first.Result.Cost.Total()); ratio < 3 {
		t.Errorf("128-proc/1-proc cost ratio = %.2f, want >= 3 (paper ~6.5)", ratio)
	}
}

func TestProvisioningSweepValidation(t *testing.T) {
	w, err := montage.Generate(montage.OneDegree())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ProvisioningSweep(w, nil, DefaultPlan()); err == nil {
		t.Error("empty sweep accepted")
	}
	if _, err := ProvisioningSweep(w, []int{0}, DefaultPlan()); err == nil {
		t.Error("zero processor count accepted")
	}
}

func TestCompareModesCostOrdering(t *testing.T) {
	// Fig. 7 bottom: remote I/O has the highest total cost, cleanup the
	// least of the three.
	w, err := montage.Generate(montage.OneDegree())
	if err != nil {
		t.Fatal(err)
	}
	res, err := CompareModes(w, DefaultPlan())
	if err != nil {
		t.Fatal(err)
	}
	rem := res[datamgmt.RemoteIO].Cost
	reg := res[datamgmt.Regular].Cost
	cln := res[datamgmt.Cleanup].Cost
	if !(rem.Total() > reg.Total()) {
		t.Errorf("remote total %v not > regular %v", rem.Total(), reg.Total())
	}
	if !(cln.Total() < reg.Total()) {
		t.Errorf("cleanup total %v not < regular %v", cln.Total(), reg.Total())
	}
	// CPU invariant across modes (Fig. 10).
	if rem.CPU != reg.CPU || reg.CPU != cln.CPU {
		t.Error("CPU cost varies across modes")
	}
}

func TestCCRSweepShape(t *testing.T) {
	// Fig. 11: all cost components and the execution time increase with
	// CCR.
	w, err := montage.Generate(montage.OneDegree())
	if err != nil {
		t.Fatal(err)
	}
	plan := DefaultPlan()
	plan.Processors = 8
	plan.Billing = Provisioned
	ccrs := []float64{0.053, 0.106, 0.212, 0.424}
	points, err := CCRSweep(w, ccrs, plan)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(points); i++ {
		prev, cur := points[i-1], points[i]
		if cur.Result.Cost.Storage <= prev.Result.Cost.Storage {
			t.Errorf("storage cost not increasing at CCR %v", cur.CCR)
		}
		if cur.Result.Cost.Transfer() <= prev.Result.Cost.Transfer() {
			t.Errorf("transfer cost not increasing at CCR %v", cur.CCR)
		}
		if cur.Result.Metrics.ExecTime < prev.Result.Metrics.ExecTime {
			t.Errorf("exec time decreased at CCR %v", cur.CCR)
		}
		if cur.Result.Cost.Total() <= prev.Result.Cost.Total() {
			t.Errorf("total cost not increasing at CCR %v", cur.CCR)
		}
		if cur.StorageCostCleanup <= prev.StorageCostCleanup {
			t.Errorf("cleanup storage cost not increasing at CCR %v", cur.CCR)
		}
	}
	if _, err := CCRSweep(w, nil, plan); err == nil {
		t.Error("empty CCR list accepted")
	}
	if _, err := CCRSweep(w, []float64{-1}, plan); err == nil {
		t.Error("negative CCR accepted")
	}
}

func TestProvisionedBeatsOnDemandAnchor4Deg(t *testing.T) {
	if testing.Short() {
		t.Skip("4-degree run is slow")
	}
	// §6: 4-degree on 128 provisioned processors costs $13.92 vs $8.89
	// when charged only for used resources.
	w, err := montage.Generate(montage.FourDegree())
	if err != nil {
		t.Fatal(err)
	}
	plan := DefaultPlan()
	plan.Billing = Provisioned
	plan.Processors = 128
	prov, err := Run(w, plan)
	if err != nil {
		t.Fatal(err)
	}
	od, err := Run(w, DefaultPlan())
	if err != nil {
		t.Fatal(err)
	}
	pt, ot := float64(prov.Cost.Total()), float64(od.Cost.Total())
	if !(pt > ot) {
		t.Errorf("provisioned %v not > on-demand %v", pt, ot)
	}
	// Paper: $13.92 vs $8.89 (ratio 1.57); accept a broad band.
	if pt < 11 || pt > 18 {
		t.Errorf("provisioned 128-proc total = $%.2f, want ~$14", pt)
	}
	if ot < 8 || ot > 10.5 {
		t.Errorf("on-demand total = $%.2f, want ~$8.9", ot)
	}
}
