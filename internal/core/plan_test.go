package core

import (
	"testing"

	"repro/internal/datamgmt"
	"repro/internal/exec"
	"repro/internal/montage"
)

func TestRunRejectsBadExtensions(t *testing.T) {
	w, err := montage.Generate(montage.OneDegree())
	if err != nil {
		t.Fatal(err)
	}
	bad := DefaultPlan()
	bad.VMStartup = -1
	if _, err := Run(w, bad); err == nil {
		t.Error("negative VM startup accepted")
	}
	bad = DefaultPlan()
	bad.Outages = []exec.Outage{{Start: 10, End: 5}}
	if _, err := Run(w, bad); err == nil {
		t.Error("inverted outage accepted")
	}
	bad = DefaultPlan()
	bad.FailureProb = 1.5
	if _, err := Run(w, bad); err == nil {
		t.Error("failure probability above 1 accepted")
	}
}

func TestRunWithAllExtensionsTogether(t *testing.T) {
	// The §8 extensions compose: boot delay + an outage + failures +
	// LPT scheduling in one plan.
	w, err := montage.Generate(montage.OneDegree())
	if err != nil {
		t.Fatal(err)
	}
	plan := DefaultPlan()
	plan.Billing = Provisioned
	plan.Processors = 16
	plan.VMStartup = 120
	plan.Outages = []exec.Outage{{Start: 600, End: 900}}
	plan.FailureProb = 0.05
	plan.FailureSeed = 9
	plan.Policy = exec.LongestFirst
	plan.Mode = datamgmt.Cleanup
	res, err := Run(w, plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.TasksRun != w.NumTasks() {
		t.Errorf("tasks = %d, want %d", res.Metrics.TasksRun, w.NumTasks())
	}
	base, err := Run(w, func() Plan {
		p := DefaultPlan()
		p.Billing = Provisioned
		p.Processors = 16
		p.Mode = datamgmt.Cleanup
		return p
	}())
	if err != nil {
		t.Fatal(err)
	}
	// Boot + outage + retries all push time and cost up.
	if res.Metrics.ExecTime <= base.Metrics.ExecTime {
		t.Error("extensions did not lengthen the run")
	}
	if res.Cost.Total() <= base.Cost.Total() {
		t.Error("extensions did not raise the cost")
	}
	if res.Metrics.Retries == 0 {
		t.Error("no retries at 5% failure rate")
	}
}
