// Package core is the top of the library: it combines the workload
// generator, the cloud simulator and the fee schedule into the
// experiment API the paper's study is built from.
//
// A Plan says how a mosaic request runs (data-management mode, processor
// pool, link bandwidth) and how it is billed (provisioned pool vs.
// on-demand CPU, under a Pricing).  Run executes one workflow under one
// plan; the sweep helpers reproduce the paper's parameter scans:
//
//	ProvisioningSweep  Question 1  (Figs. 4-6)
//	CompareModes       Question 2a (Figs. 7-10)
//	CCRSweep           Question 2a (Fig. 11)
//
// The archive-economics questions (2b and 3) build on these results in
// package archive.
package core

import (
	"context"
	"fmt"

	"repro/internal/cost"
	"repro/internal/dag"
	"repro/internal/datamgmt"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/sweep"
	"repro/internal/units"
)

// Billing selects how CPU time is charged.
type Billing int

const (
	// Provisioned charges the whole processor pool for the whole
	// provisioning window (the paper's Question 1).
	Provisioned Billing = iota
	// OnDemand charges only the CPU seconds tasks actually used (the
	// paper's Question 2).
	OnDemand
)

// String names the billing model.
func (b Billing) String() string {
	if b == OnDemand {
		return "on-demand"
	}
	return "provisioned"
}

// Plan is a complete execution-and-billing plan for a request.
type Plan struct {
	// Mode is the data-management model (remote I/O, regular, cleanup).
	Mode datamgmt.Mode
	// Processors provisioned; 0 means enough for full parallelism.
	Processors int
	// Billing is the CPU charging model.
	Billing Billing
	// Bandwidth of the user<->cloud link; 0 means the paper's 10 Mbps.
	Bandwidth units.Bandwidth
	// Pricing is the fee schedule; the zero value means Amazon2008.
	Pricing cost.Pricing
	// RecordCurve retains the storage usage curve in the result.
	RecordCurve bool
	// VMStartup delays the run by a virtual-machine boot window that the
	// provisioned pool pays for (a §8 extension; zero reproduces the
	// paper).
	VMStartup units.Duration
	// Outages are storage-unavailability windows (a §8 extension).
	Outages []exec.Outage
	// Policy orders the ready queue when processors are scarce; the zero
	// value (FIFO) matches the paper's setup.
	Policy exec.Policy
	// FailureProb retries tasks with this per-attempt probability,
	// billing the burned CPU (a §8 extension; zero reproduces the
	// paper).  FailureSeed makes the sampling deterministic.
	FailureProb float64
	FailureSeed int64
	// Preemptions are spot capacity-reclaim events (a post-paper
	// extension); empty reproduces the paper's reliable capacity.
	Preemptions []exec.Preemption
	// Recovery decides how preempted tasks resume (from scratch by
	// default, or checkpoint/restart).
	Recovery exec.Recovery
	// Spot declaratively describes a seeded spot scenario; the zero
	// value reproduces reliable capacity.  Mutually exclusive with
	// explicit Preemptions.
	Spot SpotPlan
	// Policies names the scheduling and recovery policies of the run,
	// one per decision point (placement, victim, checkpoint, sizing).
	// The zero value selects the historical defaults.
	Policies policy.Bundle
	// Recorder, when non-nil, captures the run's flight-recorder
	// timeline (see package obs).  It is a pure observer: it never
	// changes what the run computes, so it is deliberately excluded from
	// the canonical cache key -- a traced run and an untraced run of the
	// same plan are the same result.
	//repro:nokey recorder — pure observer; a traced and an untraced run of the same plan are the same result
	Recorder *obs.Recorder
}

// SpotPlan is a declarative spot scenario: instead of handing the plan
// a concrete revocation schedule, the caller names the market (reclaim
// rate, warning, downtime, seed, discount) and the fleet split, and the
// runner materializes per-instance Preemption events once the pool size
// is known.  Being a flat value struct, it travels on the wire and
// feeds the canonical cache key directly.
type SpotPlan struct {
	// RatePerHour is each spot instance's Poisson reclaim intensity;
	// 0 disables revocations.
	RatePerHour float64
	// Warning is the reclaim notice lead (heterogeneous per event:
	// sampled in [Warning/2, Warning]).
	Warning units.Duration
	// Downtime is how long reclaimed capacity stays gone.
	Downtime units.Duration
	// Seed drives the deterministic revocation sampling.
	Seed int64
	// Discount is the fraction taken off the on-demand CPU rate for
	// spot capacity, in [0, 1).
	Discount float64
	// OnDemand is the reliable sub-pool size of a mixed fleet: these
	// processors bill at the full rate and can never be reclaimed.
	OnDemand int
}

// Enabled reports whether the plan describes any spot behaviour.
func (s SpotPlan) Enabled() bool { return s != (SpotPlan{}) }

// Validate rejects inconsistent spot plans.
func (s SpotPlan) Validate() error {
	switch {
	case s.RatePerHour < 0:
		return fmt.Errorf("core: negative spot reclaim rate %v/hour", s.RatePerHour)
	case s.Warning < 0:
		return fmt.Errorf("core: negative spot warning %v", s.Warning)
	case s.Downtime < 0:
		return fmt.Errorf("core: negative spot downtime %v", s.Downtime)
	case s.RatePerHour > 0 && s.Downtime == 0:
		return fmt.Errorf("core: spot reclaims need a positive downtime")
	case s.Discount < 0 || s.Discount >= 1:
		return fmt.Errorf("core: spot discount %v outside [0,1)", s.Discount)
	case s.OnDemand < 0:
		return fmt.Errorf("core: negative on-demand sub-pool %d", s.OnDemand)
	}
	return nil
}

// market is the spot plan as a cost-model value.
func (s SpotPlan) market() cost.Spot {
	return cost.Spot{Discount: s.Discount, RevocationsPerHour: s.RatePerHour}
}

// spotHorizon bounds the revocation-sampling window for a workflow:
// twice the serial compute plus twice the full transfer time, plus an
// hour of slack.  Runs stretched beyond it by rework simply see no
// reclaims in the deep tail; what matters is that the bound is a
// deterministic function of the workflow and plan, so equal requests
// sample equal schedules and stay cacheable.
func spotHorizon(wf *dag.Workflow, bw units.Bandwidth) units.Duration {
	transfer := units.Duration(float64(wf.TotalFileBytes()) / bw.BytesPerSecond())
	return 2*(wf.TotalRuntime()+transfer) + units.Duration(units.SecondsPerHour)
}

// DefaultPlan returns the paper's baseline setup: regular data
// management, full parallelism, on-demand billing, 10 Mbps, Amazon 2008
// rates.
func DefaultPlan() Plan {
	return Plan{
		Mode:      datamgmt.Regular,
		Billing:   OnDemand,
		Bandwidth: units.Mbps(10),
		Pricing:   cost.Amazon2008(),
	}
}

// Canonical returns the plan with its zero-value defaults filled in:
// the form two plans must be reduced to before being compared or used
// as a cache key, since a zero Bandwidth and an explicit 10 Mbps
// describe the same run.
func (p Plan) Canonical() Plan { return p.normalized() }

// normalized fills zero-value defaults.
func (p Plan) normalized() Plan {
	if p.Bandwidth == 0 {
		p.Bandwidth = units.Mbps(10)
	}
	if p.Pricing == (cost.Pricing{}) {
		p.Pricing = cost.Amazon2008()
	}
	p.Policies = p.Policies.Canonical()
	return p
}

// Validate rejects inconsistent plans.
func (p Plan) Validate() error {
	if p.Processors < 0 {
		return fmt.Errorf("core: negative processor count %d", p.Processors)
	}
	if p.Bandwidth < 0 {
		return fmt.Errorf("core: negative bandwidth %v", p.Bandwidth)
	}
	switch p.Billing {
	case Provisioned, OnDemand:
	default:
		return fmt.Errorf("core: unknown billing model %d", p.Billing)
	}
	switch p.Mode {
	case datamgmt.RemoteIO, datamgmt.Regular, datamgmt.Cleanup:
	default:
		return fmt.Errorf("core: unknown data-management mode %d", p.Mode)
	}
	if p.Spot.Enabled() {
		if err := p.Spot.Validate(); err != nil {
			return err
		}
		if len(p.Preemptions) > 0 {
			return fmt.Errorf("core: plan sets both a declarative Spot scenario and explicit Preemptions; use one")
		}
	}
	if err := p.Policies.Validate(); err != nil {
		return err
	}
	return p.normalized().Pricing.Validate()
}

// Result pairs the measured metrics of a run with its billed cost.
type Result struct {
	Plan    Plan
	Metrics exec.Metrics
	Cost    cost.Breakdown
}

// Run executes wf under the plan and prices the outcome.
func Run(wf *dag.Workflow, plan Plan) (Result, error) {
	return RunContext(context.Background(), wf, plan)
}

// RunContext is Run with cooperative cancellation, for sweeps that must
// abort cleanly mid-grid.
func RunContext(ctx context.Context, wf *dag.Workflow, plan Plan) (Result, error) {
	if err := plan.Validate(); err != nil {
		return Result{}, err
	}
	p := plan.normalized()
	resolved, err := p.Policies.Resolve()
	if err != nil {
		return Result{}, err
	}
	// The pool-sizing policy fixes the reliable/spot split before the
	// revocation schedule is sampled: the spot sub-pool's size decides
	// how many instances draw reclaim events.
	procs := p.Processors
	if procs == 0 {
		procs = wf.MaxParallelism()
	}
	spotActive := len(p.Preemptions) > 0 || (p.Spot.Enabled() && p.Spot.RatePerHour > 0)
	onDemand := resolved.Sizing.Reliable(procs, p.Spot.OnDemand, spotActive)
	if onDemand < 0 || onDemand > procs {
		return Result{}, fmt.Errorf("core: pool-sizing policy %q sized the reliable sub-pool to %d of %d processors", p.Policies.Sizing, onDemand, procs)
	}
	preemptions := p.Preemptions
	if p.Spot.Enabled() && p.Spot.RatePerHour > 0 {
		// Materialize the declarative scenario into per-instance reclaim
		// events now that the pool size is known.  Only the revocable
		// spot sub-pool is sampled.
		spotProcs := procs - onDemand
		if spotProcs < 1 {
			return Result{}, fmt.Errorf("core: spot plan leaves no revocable capacity in a %d-processor fleet with %d on demand", procs, onDemand)
		}
		sched, err := exec.SpotScheduleInstances(
			spotHorizon(wf, p.Bandwidth), spotProcs,
			p.Spot.RatePerHour, p.Spot.Warning, p.Spot.Downtime, p.Spot.Seed)
		if err != nil {
			return Result{}, err
		}
		preemptions = sched
	}
	m, err := exec.RunContext(ctx, wf, exec.Config{
		Mode:               p.Mode,
		Processors:         p.Processors,
		Bandwidth:          p.Bandwidth,
		RecordCurve:        p.RecordCurve,
		VMStartup:          p.VMStartup,
		Outages:            p.Outages,
		Policy:             p.Policy,
		FailureProb:        p.FailureProb,
		FailureSeed:        p.FailureSeed,
		Preemptions:        preemptions,
		Recovery:           p.Recovery,
		OnDemandProcessors: onDemand,
		Policies:           p.Policies,
		SpotRatePerHour:    p.Spot.RatePerHour,
		Recorder:           p.Recorder,
	})
	if err != nil {
		return Result{}, err
	}
	var b cost.Breakdown
	switch {
	case p.Spot.Enabled() && p.Billing == Provisioned:
		b = p.Spot.market().ProvisionedMixed(p.Pricing, m)
	case p.Spot.Enabled():
		b = p.Spot.market().OnDemandMixed(p.Pricing, m)
	case p.Billing == Provisioned:
		b = p.Pricing.Provisioned(m)
	default:
		b = p.Pricing.OnDemand(m)
	}
	return Result{Plan: p, Metrics: m, Cost: b}, nil
}

// SweepPoint is one row of a provisioning sweep: the run at one pool
// size, plus the storage cost the same run would have had with dynamic
// cleanup (Figs. 4-6 plot both storage series).
type SweepPoint struct {
	Processors         int
	Result             Result
	StorageCostCleanup units.Money
}

// ProvisioningSweep reproduces Question 1: run wf on each pool size with
// provisioned billing, reporting cost components and execution time.
// The plan's Mode is forced to Regular (the sweep reports cleanup
// storage alongside, as the paper's figures do).
//
// Grid points run concurrently on a GOMAXPROCS-sized worker pool; each
// point is a deterministic simulation, so the returned slice is
// identical to what a serial loop produces.
func ProvisioningSweep(wf *dag.Workflow, processors []int, plan Plan) ([]SweepPoint, error) {
	return ProvisioningSweepContext(context.Background(), wf, processors, plan)
}

// ProvisioningSweepContext is ProvisioningSweep with cooperative
// cancellation across the whole grid.
func ProvisioningSweepContext(ctx context.Context, wf *dag.Workflow, processors []int, plan Plan) ([]SweepPoint, error) {
	if len(processors) == 0 {
		return nil, fmt.Errorf("core: empty processor list")
	}
	for _, n := range processors {
		if n <= 0 {
			return nil, fmt.Errorf("core: invalid processor count %d in sweep", n)
		}
	}
	return sweep.Map(ctx, 0, processors, func(ctx context.Context, _ int, n int) (SweepPoint, error) {
		p := plan.normalized()
		p.Mode = datamgmt.Regular
		p.Processors = n
		p.Billing = Provisioned
		res, err := RunContext(ctx, wf, p)
		if err != nil {
			return SweepPoint{}, fmt.Errorf("core: sweep at %d processors: %w", n, err)
		}
		pc := p
		pc.Mode = datamgmt.Cleanup
		resC, err := RunContext(ctx, wf, pc)
		if err != nil {
			return SweepPoint{}, fmt.Errorf("core: cleanup run at %d processors: %w", n, err)
		}
		return SweepPoint{
			Processors:         n,
			Result:             res,
			StorageCostCleanup: resC.Cost.Storage,
		}, nil
	})
}

// GeometricProcessors returns the paper's pool sizes: 1,2,4,...,128.
func GeometricProcessors() []int { return []int{1, 2, 4, 8, 16, 32, 64, 128} }

// CompareModes reproduces Question 2a: run wf once per data-management
// mode with on-demand billing and full parallelism.  The three runs
// execute concurrently.
func CompareModes(wf *dag.Workflow, plan Plan) (map[datamgmt.Mode]Result, error) {
	return CompareModesContext(context.Background(), wf, plan)
}

// CompareModesContext is CompareModes with cooperative cancellation.
func CompareModesContext(ctx context.Context, wf *dag.Workflow, plan Plan) (map[datamgmt.Mode]Result, error) {
	modes := datamgmt.Modes()
	results, err := sweep.Map(ctx, 0, modes, func(ctx context.Context, _ int, mode datamgmt.Mode) (Result, error) {
		p := plan.normalized()
		p.Mode = mode
		p.Billing = OnDemand
		p.Processors = 0
		res, err := RunContext(ctx, wf, p)
		if err != nil {
			return Result{}, fmt.Errorf("core: mode %v: %w", mode, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[datamgmt.Mode]Result, len(modes))
	for i, mode := range modes {
		out[mode] = results[i]
	}
	return out, nil
}

// CCRPoint is one row of a CCR sensitivity sweep.
type CCRPoint struct {
	CCR                float64
	Result             Result
	StorageCostCleanup units.Money
}

// CCRSweep reproduces Fig. 11: rescale wf's file sizes to each target
// CCR (at the plan's bandwidth) and run under the plan.  The paper uses
// the 1-degree workflow on 8 provisioned processors.  Grid points run
// concurrently; each point rescales its own deep copy of wf.
func CCRSweep(wf *dag.Workflow, ccrs []float64, plan Plan) ([]CCRPoint, error) {
	return CCRSweepContext(context.Background(), wf, ccrs, plan)
}

// CCRSweepContext is CCRSweep with cooperative cancellation.
func CCRSweepContext(ctx context.Context, wf *dag.Workflow, ccrs []float64, plan Plan) ([]CCRPoint, error) {
	if len(ccrs) == 0 {
		return nil, fmt.Errorf("core: empty CCR list")
	}
	p := plan.normalized()
	return sweep.Map(ctx, 0, ccrs, func(ctx context.Context, _ int, ccr float64) (CCRPoint, error) {
		scaled, err := wf.RescaleCCR(ccr, p.Bandwidth)
		if err != nil {
			return CCRPoint{}, fmt.Errorf("core: ccr %v: %w", ccr, err)
		}
		pr := p
		pr.Mode = datamgmt.Regular
		res, err := RunContext(ctx, scaled, pr)
		if err != nil {
			return CCRPoint{}, fmt.Errorf("core: ccr %v: %w", ccr, err)
		}
		pc := p
		pc.Mode = datamgmt.Cleanup
		resC, err := RunContext(ctx, scaled, pc)
		if err != nil {
			return CCRPoint{}, fmt.Errorf("core: ccr %v cleanup: %w", ccr, err)
		}
		return CCRPoint{
			CCR:                ccr,
			Result:             res,
			StorageCostCleanup: resC.Cost.Storage,
		}, nil
	})
}
