package server

// Request-scoped telemetry: every route is wrapped by instrument, which
// assigns a request ID (honoring a caller-supplied X-Request-Id so IDs
// propagate through proxies), counts the request, times it into the
// per-endpoint latency histogram and emits one structured log line.

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"log/slog"
	"net/http"
	"time"
)

// discardLogs is a slog.Handler that drops everything, the default when
// no logger is configured (slog.DiscardHandler needs go 1.24; go.mod
// declares 1.22).
type discardLogs struct{}

func (discardLogs) Enabled(context.Context, slog.Level) bool  { return false }
func (discardLogs) Handle(context.Context, slog.Record) error { return nil }
func (discardLogs) WithAttrs([]slog.Attr) slog.Handler        { return discardLogs{} }
func (discardLogs) WithGroup(string) slog.Handler             { return discardLogs{} }

// newRequestIDNonce draws the per-process request-ID prefix: IDs must
// be unique across restarts, not just within one process, or two log
// streams could not be merged.
func newRequestIDNonce() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "srv"
	}
	return hex.EncodeToString(b[:])
}

// nextRequestID mints a process-unique request ID.
func (s *Server) nextRequestID() string {
	return fmt.Sprintf("%s-%06d", s.ridNonce, s.ridSeq.Add(1))
}

// statusWriter captures the response status for the log line.  It
// forwards Flush so the NDJSON streaming handlers (sweeps, tournaments,
// traces) keep flushing rows through the wrapper.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps one route with the request telemetry: request ID,
// request counter, latency histogram and a structured log line.  The
// endpoint label is the stable, low-cardinality metrics key for the
// route (never the raw URL path).
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now() //repro:nondet-ok request latency telemetry, never simulation state
		rid := r.Header.Get("X-Request-Id")
		if rid == "" {
			rid = s.nextRequestID()
		}
		w.Header().Set("X-Request-Id", rid)
		s.metrics.count(endpoint)
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		elapsed := time.Since(start) //repro:nondet-ok request latency telemetry, never simulation state
		s.metrics.observe(endpoint, elapsed.Seconds())
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		s.logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
			slog.String("request_id", rid),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.String("endpoint", endpoint),
			slog.Int("status", status),
			slog.Duration("duration", elapsed),
		)
	}
}
