package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestFlightGroupExecutesOnce(t *testing.T) {
	var g flightGroup
	var calls atomic.Int32
	started := make(chan struct{})
	release := make(chan struct{})
	const waiters = 8

	results := make([][]byte, waiters)
	errs := make([]error, waiters)
	shared := make([]bool, waiters)
	var wg sync.WaitGroup
	wg.Add(waiters)
	for i := 0; i < waiters; i++ {
		go func(i int) {
			defer wg.Done()
			results[i], shared[i], errs[i] = g.Do(context.Background(), "key", func(ctx context.Context) ([]byte, error) {
				close(started)
				calls.Add(1)
				<-release
				return []byte("answer"), nil
			})
		}(i)
	}
	<-started
	// Wait until every goroutine has joined the flight, then land it.
	for deadline := time.Now().Add(5 * time.Second); ; {
		g.mu.Lock()
		n := 0
		for _, f := range g.flights {
			n += f.waiters
		}
		g.mu.Unlock()
		if n == waiters {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d waiters joined", n, waiters)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Errorf("fn ran %d times, want 1", got)
	}
	sharedCount := 0
	for i := 0; i < waiters; i++ {
		if errs[i] != nil {
			t.Errorf("waiter %d: %v", i, errs[i])
		}
		if string(results[i]) != "answer" {
			t.Errorf("waiter %d got %q", i, results[i])
		}
		if shared[i] {
			sharedCount++
		}
	}
	if sharedCount != waiters-1 {
		t.Errorf("%d waiters were shared, want %d", sharedCount, waiters-1)
	}
}

func TestFlightGroupErrorNotMemoized(t *testing.T) {
	var g flightGroup
	boom := errors.New("boom")
	if _, _, err := g.Do(context.Background(), "k", func(context.Context) ([]byte, error) {
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// A finished (even failed) flight leaves the group: the next call
	// runs fn again.
	body, shared, err := g.Do(context.Background(), "k", func(context.Context) ([]byte, error) {
		return []byte("ok"), nil
	})
	if err != nil || shared || string(body) != "ok" {
		t.Errorf("second call = %q, shared=%v, err=%v", body, shared, err)
	}
}

func TestFlightGroupLastWaiterCancelsFlight(t *testing.T) {
	var g flightGroup
	fnCtxDone := make(chan struct{})
	entered := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := g.Do(ctx, "k", func(fctx context.Context) ([]byte, error) {
			close(entered)
			<-fctx.Done()
			close(fnCtxDone)
			return nil, fctx.Err()
		})
		done <- err
	}()
	<-entered
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Errorf("waiter err = %v, want canceled", err)
	}
	select {
	case <-fnCtxDone:
	case <-time.After(5 * time.Second):
		t.Error("flight context not canceled after last waiter left")
	}
}

func TestFlightGroupSurvivorKeepsFlightAlive(t *testing.T) {
	var g flightGroup
	entered := make(chan struct{})
	release := make(chan struct{})
	fn := func(fctx context.Context) ([]byte, error) {
		close(entered)
		select {
		case <-release:
			return []byte("landed"), nil
		case <-fctx.Done():
			return nil, fctx.Err()
		}
	}
	impatient, cancelImpatient := context.WithCancel(context.Background())
	first := make(chan error, 1)
	go func() {
		_, _, err := g.Do(impatient, "k", fn)
		first <- err
	}()
	<-entered
	second := make(chan error, 1)
	var secondBody []byte
	go func() {
		body, _, err := g.Do(context.Background(), "k", fn)
		secondBody = body
		second <- err
	}()
	// Wait for the second caller to join, then cancel the first.
	for deadline := time.Now().Add(5 * time.Second); ; {
		g.mu.Lock()
		var n int
		for _, f := range g.flights {
			n += f.waiters
		}
		g.mu.Unlock()
		if n == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("second caller never joined")
		}
		time.Sleep(time.Millisecond)
	}
	cancelImpatient()
	if err := <-first; !errors.Is(err, context.Canceled) {
		t.Fatalf("first err = %v", err)
	}
	close(release)
	if err := <-second; err != nil {
		t.Fatalf("second err = %v: one client hanging up aborted another's flight", err)
	}
	if string(secondBody) != "landed" {
		t.Errorf("second body = %q", secondBody)
	}
}
