package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postRun(t *testing.T, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func TestRunEndpointCachesRepeats(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := `{"workflow":"1deg","processors":4,"billing":"provisioned"}`

	cold, coldBody := postRun(t, ts, req)
	if cold.StatusCode != http.StatusOK {
		t.Fatalf("cold status %d: %s", cold.StatusCode, coldBody)
	}
	if got := cold.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("cold X-Cache = %q, want miss", got)
	}
	warm, warmBody := postRun(t, ts, req)
	if warm.StatusCode != http.StatusOK {
		t.Fatalf("warm status %d", warm.StatusCode)
	}
	if got := warm.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("warm X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(coldBody, warmBody) {
		t.Errorf("cached response differs from cold:\ncold: %s\nwarm: %s", coldBody, warmBody)
	}

	var doc repro.RunDocument
	if err := json.Unmarshal(coldBody, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Workflow != "montage-1deg" || doc.Tasks != 203 || doc.Plan.Processors != 4 {
		t.Errorf("document = %+v", doc)
	}

	// The hit must be visible in /metrics, per the acceptance criteria.
	_, metricsBody := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(string(metricsBody), "reprosrv_result_cache_hits_total 1") {
		t.Errorf("metrics missing the cache hit:\n%s", metricsBody)
	}
}

// TestRunCacheByteIdenticalAcrossGrid is the cache-correctness property
// test: over a grid of specs and plans, the cached response must be
// byte-identical to the cold one.
func TestRunCacheByteIdenticalAcrossGrid(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, workflow := range []string{"1deg", "2deg"} {
		for _, mode := range []string{"remote-io", "regular", "cleanup"} {
			for _, procs := range []int{0, 8} {
				req := fmt.Sprintf(`{"workflow":%q,"mode":%q,"processors":%d}`, workflow, mode, procs)
				cold, coldBody := postRun(t, ts, req)
				warm, warmBody := postRun(t, ts, req)
				if cold.StatusCode != http.StatusOK || warm.StatusCode != http.StatusOK {
					t.Fatalf("%s: statuses %d/%d", req, cold.StatusCode, warm.StatusCode)
				}
				if warm.Header.Get("X-Cache") != "hit" {
					t.Errorf("%s: repeat was not a cache hit", req)
				}
				if !bytes.Equal(coldBody, warmBody) {
					t.Errorf("%s: cached body differs from cold", req)
				}
			}
		}
	}
}

// TestRunSpotMixedFleet is the spot wire acceptance test: a seeded
// mixed-fleet request is served byte-identical to the library's own
// document (the same document montagesim -json prints), is cached under
// a key distinct from its on-demand twin, and reports utilization
// against integrated available capacity rather than the static pool.
func TestRunSpotMixedFleet(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := `{"workflow":"1deg","processors":16,"spot":{"rate_per_hour":1.5,"seed":7,"discount":0.65,"on_demand_processors":4,"checkpoint_seconds":300,"checkpoint_overhead_seconds":10}}`

	cold, coldBody := postRun(t, ts, req)
	if cold.StatusCode != http.StatusOK {
		t.Fatalf("cold status %d: %s", cold.StatusCode, coldBody)
	}
	// Byte identity with the offline path: resolve, run, encode exactly
	// as montagesim -json does.
	var wireReq repro.RunRequest
	if err := json.Unmarshal([]byte(req), &wireReq); err != nil {
		t.Fatal(err)
	}
	spec, plan, err := wireReq.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	wf, err := repro.GenerateCached(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := repro.Run(wf, plan)
	if err != nil {
		t.Fatal(err)
	}
	want, err := repro.NewRunDocument(res).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(coldBody, want) {
		t.Errorf("server document differs from the offline encoding:\nserver: %s\nlocal:  %s", coldBody, want)
	}

	// The on-demand twin (same workflow, same pool, no spot knobs) must
	// miss the cache: distinct plans, distinct keys.
	twin, twinBody := postRun(t, ts, `{"workflow":"1deg","processors":16}`)
	if twin.StatusCode != http.StatusOK {
		t.Fatalf("twin status %d", twin.StatusCode)
	}
	if got := twin.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("on-demand twin X-Cache = %q, want miss (cache collision with the spot plan)", got)
	}
	if bytes.Equal(coldBody, twinBody) {
		t.Error("spot and on-demand documents identical; the knobs did nothing")
	}
	// The spot repeat hits its own entry, byte-identically.
	warm, warmBody := postRun(t, ts, req)
	if got := warm.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("spot repeat X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(coldBody, warmBody) {
		t.Error("cached spot body differs from cold")
	}

	var doc repro.RunDocument
	if err := json.Unmarshal(coldBody, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Plan.Spot == nil || doc.Plan.Spot.RatePerHour != 1.5 || doc.Plan.Spot.OnDemandProcessors != 4 ||
		doc.Plan.Spot.WarningSeconds != 120 || doc.Plan.Spot.CheckpointSeconds != 300 {
		t.Errorf("spot plan did not round-trip: %+v", doc.Plan.Spot)
	}
	m := doc.Metrics
	if m.Preempted == 0 {
		t.Error("seeded spot scenario preempted nothing; the test is vacuous")
	}
	// The reclaims provably changed the utilization denominator: the
	// capacity integral sits below the static pool, and the reported
	// utilization is CPU over that integral.
	staticCap := float64(m.Processors) * m.ExecTime.Seconds()
	if m.CapacityProcSeconds <= 0 || m.CapacityProcSeconds >= staticCap {
		t.Errorf("CapacityProcSeconds = %v, want in (0, %v)", m.CapacityProcSeconds, staticCap)
	}
	if got, want := m.Utilization, m.CPUSeconds/m.CapacityProcSeconds; got != want {
		t.Errorf("Utilization = %v, want CPU/capacity = %v", got, want)
	}
}

func TestRunCoalescesConcurrentIdenticalRequests(t *testing.T) {
	const herd = 8
	s, ts := newTestServer(t, Config{MaxConcurrent: 2})
	release := make(chan struct{})
	s.testHookPreSim = func() { <-release }

	bodies := make([][]byte, herd)
	statuses := make([]int, herd)
	var wg sync.WaitGroup
	wg.Add(herd)
	for i := 0; i < herd; i++ {
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/run", "application/json",
				strings.NewReader(`{"workflow":"1deg","processors":2}`))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			statuses[i] = resp.StatusCode
			bodies[i], _ = io.ReadAll(resp.Body)
		}(i)
	}
	// Wait until the whole herd is parked on one flight, then let the
	// single simulation proceed.
	for deadline := time.Now().Add(10 * time.Second); ; {
		s.flights.mu.Lock()
		n := 0
		for _, f := range s.flights.flights {
			n += f.waiters
		}
		s.flights.mu.Unlock()
		if n == herd {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d requests joined the flight", n, herd)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	for i := 0; i < herd; i++ {
		if statuses[i] != http.StatusOK {
			t.Errorf("request %d: status %d", i, statuses[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Errorf("request %d got a different body", i)
		}
	}
	if got := s.metrics.simulations.Load(); got != 1 {
		t.Errorf("herd of %d ran %d simulations, want exactly 1", herd, got)
	}
	if got := s.metrics.coalesced.Load(); got != herd-1 {
		t.Errorf("coalesced = %d, want %d", got, herd-1)
	}
}

func TestAdmissionQueueRejectsOverflow(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 1, QueueDepth: 1})
	release := make(chan struct{})
	s.testHookPreSim = func() { <-release }

	var wg sync.WaitGroup
	wg.Add(2)
	errs := make([]error, 2)
	// A holds the only worker slot; B waits in the queue.
	for i, body := range []string{
		`{"workflow":"1deg","processors":1}`,
		`{"workflow":"1deg","processors":2}`,
	} {
		go func(i int, body string) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
			if err != nil {
				errs[i] = err
				return
			}
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d", resp.StatusCode)
			}
		}(i, body)
		// A must be in flight before B queues, and B queued before C.
		for deadline := time.Now().Add(10 * time.Second); ; {
			if s.metrics.inflight.Load() == 1 && s.waiting.Load() == int64(i) {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("request %d never reached its slot", i)
			}
			time.Sleep(time.Millisecond)
		}
	}
	// C overflows the queue and must be refused immediately.
	resp, body := postRun(t, ts, `{"workflow":"1deg","processors":3}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("overflow status = %d, want 503 (%s)", resp.StatusCode, body)
	}
	close(release)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("request %d: %v", i, err)
		}
	}
	if got := s.metrics.rejected.Load(); got != 1 {
		t.Errorf("rejected = %d, want 1", got)
	}
}

func TestSweepStreamsNDJSONInGridOrder(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json",
		strings.NewReader(`{"workflow":"1deg","billing":"provisioned","processors":[1,2,4]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	type row struct {
		Index int `json:"index"`
		Plan  struct {
			Processors int `json:"processors"`
		} `json:"plan"`
	}
	type envelope struct {
		Row  *row `json:"row"`
		Done *struct {
			Rows int `json:"rows"`
		} `json:"done"`
		Error string `json:"error"`
	}
	wantProcs := []int{1, 2, 4}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var rows int
	var done bool
	for sc.Scan() {
		var e envelope
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %d: %v: %s", rows, err, sc.Text())
		}
		switch {
		case e.Row != nil:
			if done {
				t.Error("row after the done sentinel")
			}
			if e.Row.Index != rows {
				t.Errorf("row %d has index %d: rows out of grid order", rows, e.Row.Index)
			}
			if e.Row.Plan.Processors != wantProcs[rows] {
				t.Errorf("row %d ran %d processors, want %d", rows, e.Row.Plan.Processors, wantProcs[rows])
			}
			rows++
		case e.Done != nil:
			done = true
			if e.Done.Rows != len(wantProcs) {
				t.Errorf("done sentinel counts %d rows, want %d", e.Done.Rows, len(wantProcs))
			}
		default:
			t.Errorf("line is neither row nor done: %s", sc.Text())
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if rows != len(wantProcs) {
		t.Errorf("got %d rows, want %d", rows, len(wantProcs))
	}
	if !done {
		t.Error("stream ended without the done sentinel")
	}
}

// TestSweepMidStreamFailureEmitsErrorEnvelope pins the wire contract
// for a grid that fails after rows have streamed: the 200 status line
// is long gone, so the stream must end with an unambiguous {"error"}
// envelope -- never a bare data row, and no done sentinel.
func TestSweepMidStreamFailureEmitsErrorEnvelope(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.testHookSweepPoint = func(index int) error {
		if index == 2 {
			return fmt.Errorf("injected failure at point %d", index)
		}
		return nil
	}
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json",
		strings.NewReader(`{"workflow":"1deg","billing":"provisioned","processors":[1,2,4]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d; the failure was supposed to hit mid-stream", resp.StatusCode)
	}
	type envelope struct {
		Row   *json.RawMessage `json:"row"`
		Done  *json.RawMessage `json:"done"`
		Error string           `json:"error"`
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var rows int
	var sawError bool
	for sc.Scan() {
		var e envelope
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("unparseable line: %v: %s", err, sc.Text())
		}
		switch {
		case sawError:
			t.Errorf("line after the terminal error envelope: %s", sc.Text())
		case e.Row != nil:
			rows++
		case e.Error != "":
			sawError = true
			if !strings.Contains(e.Error, "injected failure") {
				t.Errorf("error envelope says %q", e.Error)
			}
		case e.Done != nil:
			t.Error("done sentinel on a failed sweep")
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if rows != 2 {
		t.Errorf("streamed %d rows before the failure, want 2", rows)
	}
	if !sawError {
		t.Error("stream ended without the error envelope")
	}
}

func TestSweepModeAndCCRAxes(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json",
		strings.NewReader(`{"workflow":"1deg","modes":["regular","cleanup"],"ccrs":[0.1]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	type row struct {
		Index int     `json:"index"`
		CCR   float64 `json:"ccr"`
		Plan  struct {
			Mode string `json:"mode"`
		} `json:"plan"`
	}
	type envelope struct {
		Row *row `json:"row"`
	}
	wantModes := []string{"regular", "cleanup"}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var rows int
	for sc.Scan() {
		var e envelope
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatal(err)
		}
		if e.Row == nil {
			continue // terminal sentinel
		}
		if e.Row.CCR != 0.1 {
			t.Errorf("row %d ccr = %v", rows, e.Row.CCR)
		}
		if e.Row.Plan.Mode != wantModes[rows] {
			t.Errorf("row %d mode = %q, want %q", rows, e.Row.Plan.Mode, wantModes[rows])
		}
		rows++
	}
	if rows != 2 {
		t.Errorf("got %d rows, want 2", rows)
	}
}

func TestExperimentsEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := getBody(t, ts.URL+"/v1/experiments")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list status %d", resp.StatusCode)
	}
	var list []struct {
		Name        string `json:"name"`
		Description string `json:"description"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	names := make(map[string]bool, len(list))
	for _, e := range list {
		names[e.Name] = true
	}
	for _, want := range []string{"ccr-table", "fig4", "overload"} {
		if !names[want] {
			t.Errorf("experiment list missing %q", want)
		}
	}

	resp, body = getBody(t, ts.URL+"/v1/experiments/ccr-table")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ccr-table status %d: %s", resp.StatusCode, body)
	}
	var run struct {
		Name   string `json:"name"`
		Tables []struct {
			Title string     `json:"title"`
			Rows  [][]string `json:"rows"`
		} `json:"tables"`
	}
	if err := json.Unmarshal(body, &run); err != nil {
		t.Fatal(err)
	}
	if run.Name != "ccr-table" || len(run.Tables) != 1 || len(run.Tables[0].Rows) != 3 {
		t.Errorf("ccr-table response = %+v", run)
	}

	resp, _ = getBody(t, ts.URL+"/v1/experiments/no-such-figure")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown experiment status = %d, want 404", resp.StatusCode)
	}

	resp, _ = getBody(t, ts.URL+"/v1/experiments/ccr-table?seed=nope")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad seed status = %d, want 400", resp.StatusCode)
	}
}

func TestAdvisorEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := getBody(t, ts.URL+"/v1/advisor?workflow=1deg&processors=1,2,4&slack=0.5")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var doc struct {
		Workflow string `json:"workflow"`
		Options  []struct {
			Processors int `json:"processors"`
		} `json:"options"`
		Pareto      []json.RawMessage `json:"pareto"`
		Recommended *json.RawMessage  `json:"recommended"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Workflow != "montage-1deg" || len(doc.Options) != 3 {
		t.Errorf("advisor doc = %s", body)
	}
	if len(doc.Pareto) == 0 || doc.Recommended == nil {
		t.Errorf("advisor gave no recommendation: %s", body)
	}

	resp, _ = getBody(t, ts.URL+"/v1/advisor")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing workflow status = %d, want 400", resp.StatusCode)
	}
}

func TestBadRunRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for name, body := range map[string]string{
		"garbage":          `{not json`,
		"unknown workflow": `{"workflow":"9deg"}`,
		"no selector":      `{}`,
		"bad mode":         `{"workflow":"1deg","mode":"sideways"}`,
	} {
		resp, _ := postRun(t, ts, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := getBody(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"ok"`) {
		t.Errorf("healthz = %d %s", resp.StatusCode, body)
	}
}

func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	postRun(t, ts, `{"workflow":"1deg"}`)
	postRun(t, ts, `{"workflow":"1deg"}`)
	_, body := getBody(t, ts.URL+"/metrics")
	for _, want := range []string{
		`reprosrv_requests_total{endpoint="run"} 2`,
		"reprosrv_simulations_total 1",
		"reprosrv_result_cache_hits_total 1",
		"reprosrv_result_cache_misses_total 1",
		"reprosrv_in_flight 0",
		"reprosrv_queue_depth 0",
		"reprosrv_workflow_cache_entries",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}

// TestMetricsPrometheusConformance checks the exposition format: every
// sample family carries # HELP and # TYPE lines before its first
// sample, cumulative *_total families are counters, and point-in-time
// families are gauges -- so a real Prometheus scrape ingests them with
// the right semantics.
func TestMetricsPrometheusConformance(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	postRun(t, ts, `{"workflow":"1deg"}`)
	_, body := getBody(t, ts.URL+"/metrics")

	helps := map[string]bool{}
	types := map[string]string{}
	samples := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			fields := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(fields) != 2 || fields[1] == "" {
				t.Errorf("HELP line without text: %q", line)
			}
			helps[fields[0]] = true
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			if samples[fields[0]] {
				t.Errorf("TYPE for %s after its samples", fields[0])
			}
			if _, dup := types[fields[0]]; dup {
				t.Errorf("duplicate TYPE for %s", fields[0])
			}
			types[fields[0]] = fields[1]
		case strings.HasPrefix(line, "#"):
			t.Errorf("unexpected comment line: %q", line)
		default:
			name := line
			if i := strings.IndexAny(line, "{ "); i >= 0 {
				name = line[:i]
			}
			// Histogram families expose _bucket/_sum/_count sample
			// names under the base family's HELP/TYPE.
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				base := strings.TrimSuffix(name, suffix)
				if base != name && types[base] == "histogram" {
					name = base
					break
				}
			}
			samples[name] = true
			if !helps[name] || types[name] == "" {
				t.Errorf("sample %s without preceding HELP/TYPE", name)
			}
		}
	}
	if len(samples) == 0 {
		t.Fatalf("no samples in exposition:\n%s", body)
	}
	for name, typ := range types {
		want := "gauge"
		if strings.HasSuffix(name, "_total") {
			want = "counter"
		}
		if strings.HasSuffix(name, "_seconds") && typ == "histogram" {
			want = "histogram"
		}
		if typ != want {
			t.Errorf("%s declared %s, want %s", name, typ, want)
		}
	}
	for _, want := range []string{
		"reprosrv_requests_total", "reprosrv_simulations_total", "reprosrv_in_flight",
		"reprosrv_result_cache_entries",
		// The store and peer families are present (as zeros) even on a
		// standalone, storeless daemon: the exposition schema must not
		// depend on configuration.
		"reprosrv_store_hits_total", "reprosrv_store_misses_total", "reprosrv_store_writes_total",
		"reprosrv_store_evictions_total", "reprosrv_store_corrupt_total",
		"reprosrv_store_entries", "reprosrv_store_bytes",
		"reprosrv_peer_fetches_total", "reprosrv_peer_failures_total",
	} {
		if !samples[want] {
			t.Errorf("exposition missing %s", want)
		}
	}
}

// TestServeDrainsInflightRequests pins the graceful-drain contract:
// canceling Serve's context (what SIGTERM does in cmd/reprosrv) lets
// in-flight requests finish before Serve returns.
func TestServeDrainsInflightRequests(t *testing.T) {
	s, err := New(Config{DrainTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	s.testHookPreSim = func() { <-release }

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ctx, l) }()

	reqDone := make(chan struct{})
	var status int
	var body []byte
	go func() {
		defer close(reqDone)
		resp, err := http.Post("http://"+l.Addr().String()+"/v1/run", "application/json",
			strings.NewReader(`{"workflow":"1deg"}`))
		if err != nil {
			t.Error(err)
			return
		}
		defer resp.Body.Close()
		status = resp.StatusCode
		body, _ = io.ReadAll(resp.Body)
	}()
	for deadline := time.Now().Add(10 * time.Second); s.metrics.inflight.Load() == 0; {
		if time.Now().After(deadline) {
			t.Fatal("request never reached the worker pool")
		}
		time.Sleep(time.Millisecond)
	}

	cancel() // the SIGTERM path
	select {
	case err := <-serveDone:
		t.Fatalf("Serve returned %v with a request still in flight", err)
	case <-time.After(100 * time.Millisecond):
	}
	close(release)
	<-reqDone
	select {
	case err := <-serveDone:
		if err != nil {
			t.Errorf("Serve = %v after drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after the last request drained")
	}
	if status != http.StatusOK {
		t.Errorf("in-flight request finished with %d: %s", status, body)
	}
	var doc repro.RunDocument
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Errorf("drained response unparseable: %v", err)
	}
}
