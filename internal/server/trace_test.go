package server

// Tests for the flight-recorder surface: traced POST /v2/run documents,
// the GET /v2/run NDJSON trace stream, the request-telemetry headers
// and the stable /metrics exposition order.

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/url"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/wire"
)

// tracedSpotScenario is a seeded spot scenario known to preempt: the
// flight recorder must see revocations, checkpoints and restarts.
const tracedSpotScenario = `{
	"version": 2,
	"workflow": {"name": "1deg"},
	"fleet": {"processors": 16, "reliable": 4},
	"spot": {"rate_per_hour": 1.5, "seed": 7, "discount": 0.65},
	"recovery": {"checkpoint_seconds": 300, "checkpoint_overhead_seconds": 10, "checkpoint_bytes": 500000000},
	"trace": true
}`

func kindCounts(timeline []obs.Event) map[string]int {
	got := map[string]int{}
	for _, e := range timeline {
		got[e.Kind]++
	}
	return got
}

// TestRunV2TracedTimeline is the flight-recorder acceptance test: a
// traced run of the seeded spot scenario returns a non-empty timeline
// containing revocations, checkpoints and restarts, is deterministic
// across repeated requests, bypasses the result cache -- and leaves the
// untraced twin's cached, byte-identical responses untouched.
func TestRunV2TracedTimeline(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, cold := postJSON(t, ts.URL+"/v2/run", tracedSpotScenario)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, cold)
	}
	if got := resp.Header.Get("X-Cache"); got != "bypass" {
		t.Errorf("traced run X-Cache = %q, want bypass", got)
	}
	var doc wire.RunDocumentV2
	if err := json.Unmarshal(cold, &doc); err != nil {
		t.Fatal(err)
	}
	if !doc.Scenario.Trace {
		t.Error("traced document does not echo scenario.trace")
	}
	if len(doc.Timeline) == 0 {
		t.Fatal("traced run returned an empty timeline")
	}
	counts := kindCounts(doc.Timeline)
	for _, kind := range []string{obs.KindRevoke, obs.KindCheckpoint, obs.KindRestart, obs.KindStart, obs.KindFinish} {
		if counts[kind] == 0 {
			t.Errorf("timeline has no %q events (kinds seen: %v)", kind, counts)
		}
	}
	if len(doc.CriticalPath) == 0 {
		t.Error("traced run returned no critical-path summary")
	}

	// Determinism: the repeat re-simulates (bypass, not hit) yet is
	// byte-identical.
	resp2, again := postJSON(t, ts.URL+"/v2/run", tracedSpotScenario)
	if got := resp2.Header.Get("X-Cache"); got != "bypass" {
		t.Errorf("traced repeat X-Cache = %q, want bypass", got)
	}
	if string(again) != string(cold) {
		t.Error("traced repeat differs from first traced run; timeline is nondeterministic")
	}

	// The untraced twin still caches, and tracing did not perturb the
	// simulation: its metrics equal the traced run's.
	untraced := strings.Replace(tracedSpotScenario, `,
	"trace": true`, "", 1)
	respU, coldU := postJSON(t, ts.URL+"/v2/run", untraced)
	if got := respU.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("untraced first run X-Cache = %q, want miss", got)
	}
	respU2, hitU := postJSON(t, ts.URL+"/v2/run", untraced)
	if got := respU2.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("untraced repeat X-Cache = %q, want hit", got)
	}
	if string(hitU) != string(coldU) {
		t.Error("cached untraced body differs from cold")
	}
	var docU wire.RunDocumentV2
	if err := json.Unmarshal(coldU, &docU); err != nil {
		t.Fatal(err)
	}
	tracedM, _ := json.Marshal(doc.Metrics)
	untracedM, _ := json.Marshal(docU.Metrics)
	if string(tracedM) != string(untracedM) {
		t.Errorf("tracing perturbed the simulation:\ntraced   %s\nuntraced %s", tracedM, untracedM)
	}
	if len(docU.Timeline) != 0 {
		t.Error("untraced document carries a timeline")
	}
}

// TestTraceStreamV2 checks the GET /v2/run NDJSON stream: one
// {"event": ...} line per timeline event followed by a terminal
// {"done": ...} envelope whose counts match.
func TestTraceStreamV2(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v2/run?scenario=" + url.QueryEscape(tracedSpotScenario))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}

	var events int
	var done *wire.TraceDone
	counts := map[string]int{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		if done != nil {
			t.Fatalf("line after done envelope: %s", sc.Text())
		}
		var env wire.TraceEnvelope
		if err := json.Unmarshal(sc.Bytes(), &env); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch {
		case env.Event != nil:
			if env.Event.Seq != events {
				t.Fatalf("event seq %d at stream position %d", env.Event.Seq, events)
			}
			counts[env.Event.Kind]++
			events++
		case env.Done != nil:
			done = env.Done
		case env.Error != "":
			t.Fatalf("stream error: %s", env.Error)
		default:
			t.Fatalf("empty envelope: %s", sc.Text())
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if done == nil {
		t.Fatal("stream ended without a done envelope (truncated)")
	}
	if done.Events != events || events == 0 {
		t.Errorf("done.events = %d, streamed %d", done.Events, events)
	}
	if counts[obs.KindRevoke] == 0 || counts[obs.KindRestart] == 0 {
		t.Errorf("trace stream saw no preemption (kinds: %v)", counts)
	}
	if len(done.CriticalPath) == 0 {
		t.Error("done envelope has no critical-path summary")
	}
	if done.Total <= 0 {
		t.Errorf("done.total = %v", done.Total)
	}
}

// TestTraceStreamV2RejectsBadScenarios pins the error paths of the GET
// surface: a missing and a malformed ?scenario= both 400.
func TestTraceStreamV2RejectsBadScenarios(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for name, query := range map[string]string{
		"missing":       "",
		"not json":      "?scenario=" + url.QueryEscape("{"),
		"unknown field": "?scenario=" + url.QueryEscape(`{"version":2,"workflow":{"name":"1deg"},"bogus":1}`),
	} {
		resp, body := getBody(t, ts.URL+"/v2/run"+query)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", name, resp.StatusCode, body)
		}
	}
}

// TestRequestIDHeader checks the telemetry wrapper: every response
// carries an X-Request-Id, and a caller-supplied one is echoed back so
// IDs propagate through proxies.
func TestRequestIDHeader(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, _ := getBody(t, ts.URL+"/healthz")
	if resp.Header.Get("X-Request-Id") == "" {
		t.Error("response has no X-Request-Id")
	}
	req, err := http.NewRequest("GET", ts.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "caller-supplied-42")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Request-Id"); got != "caller-supplied-42" {
		t.Errorf("X-Request-Id = %q, want the caller's", got)
	}
}

// TestHealthzEnriched checks the health document's operational fields.
func TestHealthzEnriched(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheEntries: 7, WorkflowCacheEntries: 3})
	postRun(t, ts, `{"workflow":"1deg"}`)
	_, body := getBody(t, ts.URL+"/healthz")
	var h struct {
		Status        string  `json:"status"`
		Version       string  `json:"version"`
		UptimeSeconds float64 `json:"uptime_seconds"`
		ResultCache   struct {
			Entries  int `json:"entries"`
			Capacity int `json:"capacity"`
		} `json:"result_cache"`
		WorkflowCache struct {
			Entries  int `json:"entries"`
			Capacity int `json:"capacity"`
		} `json:"workflow_cache"`
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatalf("healthz not JSON: %v: %s", err, body)
	}
	if h.Status != "ok" || h.Version != "dev" {
		t.Errorf("healthz status/version = %q/%q", h.Status, h.Version)
	}
	if h.UptimeSeconds < 0 {
		t.Errorf("uptime_seconds = %v", h.UptimeSeconds)
	}
	if h.ResultCache.Capacity != 7 || h.WorkflowCache.Capacity != 3 {
		t.Errorf("cache capacities = %d/%d, want 7/3", h.ResultCache.Capacity, h.WorkflowCache.Capacity)
	}
	if h.ResultCache.Entries != 1 || h.WorkflowCache.Entries != 1 {
		t.Errorf("cache entries = %d/%d after one run, want 1/1", h.ResultCache.Entries, h.WorkflowCache.Entries)
	}
}

// TestMetricsFamilyOrderStable pins the exposition order: families are
// sorted by name and two scrapes list them identically, no matter in
// which order the lazily created endpoint labels first appeared.
func TestMetricsFamilyOrderStable(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// Touch endpoints in an order unlike the sorted one.
	getBody(t, ts.URL+"/healthz")
	postRun(t, ts, `{"workflow":"1deg"}`)
	getBody(t, ts.URL+"/v1/experiments")

	familyOrder := func(body []byte) []string {
		var names []string
		for _, line := range strings.Split(string(body), "\n") {
			if strings.HasPrefix(line, "# TYPE ") {
				names = append(names, strings.Fields(line)[2])
			}
		}
		return names
	}
	_, first := getBody(t, ts.URL+"/metrics")
	order := familyOrder(first)
	if len(order) == 0 {
		t.Fatal("no TYPE lines in exposition")
	}
	for i := 1; i < len(order); i++ {
		if order[i-1] >= order[i] {
			t.Errorf("families out of order: %q before %q", order[i-1], order[i])
		}
	}
	_, second := getBody(t, ts.URL+"/metrics")
	if got := familyOrder(second); strings.Join(got, ",") != strings.Join(order, ",") {
		t.Errorf("family order changed between scrapes:\nfirst  %v\nsecond %v", order, got)
	}
}

// TestMetricsLatencyHistogram checks the per-endpoint duration family:
// cumulative buckets, a +Inf bound equal to the count, and sum/count
// samples for an endpoint that served a request.
func TestMetricsLatencyHistogram(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	postRun(t, ts, `{"workflow":"1deg"}`)
	_, body := getBody(t, ts.URL+"/metrics")
	for _, want := range []string{
		`# TYPE reprosrv_request_duration_seconds histogram`,
		`reprosrv_request_duration_seconds_bucket{endpoint="run",le="+Inf"} 1`,
		`reprosrv_request_duration_seconds_count{endpoint="run"} 1`,
		`reprosrv_request_duration_seconds_sum{endpoint="run"}`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
