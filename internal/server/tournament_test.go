package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"repro/wire"
)

// TestTournamentV2StreamsRowsAndRanking posts a three-bundle tournament
// and checks the NDJSON contract: one row envelope per bundle in entry
// order, then a terminal done envelope whose ranking covers every
// bundle exactly once, best (lowest cost) first.
func TestTournamentV2StreamsRowsAndRanking(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{
		"bundles": [
			{},
			{"placement": "heft", "victim": "cost-aware"},
			{"checkpoint": "adaptive", "sizing": "half"}
		]
	}`
	resp, raw := postJSON(t, ts.URL+"/v2/experiments/policy-tournament", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}

	var rows []wire.TournamentRow
	var done *wire.TournamentDone
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var env wire.TournamentEnvelope
		if err := json.Unmarshal(sc.Bytes(), &env); err != nil {
			t.Fatalf("bad envelope %q: %v", sc.Text(), err)
		}
		if env.Error != "" {
			t.Fatalf("error envelope: %s", env.Error)
		}
		if done != nil {
			t.Fatal("envelope after done")
		}
		if env.Row != nil {
			rows = append(rows, *env.Row)
		}
		if env.Done != nil {
			done = env.Done
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d row envelopes, want 3", len(rows))
	}
	for i, r := range rows {
		if r.Index != i {
			t.Errorf("row %d carries index %d", i, r.Index)
		}
		if r.Version != 2 || r.Workflow == "" || r.Metrics.Makespan <= 0 {
			t.Errorf("row %d is not a full v2 run document: %+v", i, r.RunDocumentV2)
		}
	}
	// The non-default bundles echo their policies; the defaults do not.
	if rows[0].Scenario.Policies != nil {
		t.Error("default bundle echoed a policies section")
	}
	if rows[1].Scenario.Policies == nil || rows[1].Scenario.Policies.Placement != "heft" {
		t.Errorf("bundle 1 echo = %+v", rows[1].Scenario.Policies)
	}

	if done == nil {
		t.Fatal("stream did not end with a done envelope")
	}
	if done.Rows != 3 || len(done.Ranking) != 3 {
		t.Fatalf("done = %d rows, %d standings", done.Rows, len(done.Ranking))
	}
	seen := map[int]bool{}
	for i, st := range done.Ranking {
		if st.Rank != i+1 {
			t.Errorf("standing %d has rank %d", i, st.Rank)
		}
		if seen[st.Index] || st.Index < 0 || st.Index > 2 {
			t.Errorf("bad or duplicate index %d in ranking", st.Index)
		}
		seen[st.Index] = true
		if i > 0 && st.CostDollars < done.Ranking[i-1].CostDollars {
			t.Errorf("ranking not cost-sorted at %d", i)
		}
	}
}

// TestTournamentV2Defaults: an empty body runs the canned scenario
// against the full default roster.
func TestTournamentV2Defaults(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, raw := postJSON(t, ts.URL+"/v2/experiments/policy-tournament", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	lines := bytes.Count(bytes.TrimSpace(raw), []byte("\n")) + 1
	// 9 default bundles + the done envelope.
	if lines != 10 {
		t.Errorf("%d NDJSON lines, want 10", lines)
	}
}

// TestTournamentV2RejectsBadBundles: malformed rosters fail as a clean
// 400 before any row streams.
func TestTournamentV2RejectsBadBundles(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for name, body := range map[string]string{
		"unknown policy": `{"bundles": [{"placement": "astrology"}]}`,
		"unknown field":  `{"bundles": [{"placemnt": "heft"}]}`,
		"bad scenario":   `{"scenario": {"version": 2, "workflow": {"name": "11deg"}}}`,
	} {
		resp, raw := postJSON(t, ts.URL+"/v2/experiments/policy-tournament", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d: %s", name, resp.StatusCode, raw)
		}
	}
}

// TestTournamentV2SeedChangesOutcome: the seed knob reseeds the spot
// revocation sampling, so two seeds disagree somewhere in the metrics
// while the same seed reproduces itself.
func TestTournamentV2SeedChangesOutcome(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	post := func(seed string) []byte {
		t.Helper()
		resp, raw := postJSON(t, ts.URL+"/v2/experiments/policy-tournament",
			`{"seed": `+seed+`, "bundles": [{}]}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %s: status %d: %s", seed, resp.StatusCode, raw)
		}
		return raw
	}
	a, b, c := post("1"), post("2"), post("1")
	if bytes.Equal(a, b) {
		t.Error("different seeds produced identical streams")
	}
	if !bytes.Equal(a, c) {
		t.Error("same seed did not reproduce the stream")
	}
}
