package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"repro"
	"repro/internal/advisor"
	"repro/internal/dag"
	"repro/internal/datamgmt"
	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/store"
	"repro/internal/sweep"
	"repro/internal/units"
	"repro/wire"
)

// maxBodyBytes bounds request bodies; every request document is tiny.
const maxBodyBytes = 1 << 20

// writeJSON renders v as indented JSON.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // nothing left to tell the client
}

// errorDoc is the wire form of a failure.
type errorDoc struct {
	Error string `json:"error"`
}

func (s *Server) fail(w http.ResponseWriter, r *http.Request, status int, err error) {
	s.metrics.errors.Add(1)
	// A client that hung up gets nothing; don't count its cancellation
	// as a server error status.
	if errors.Is(err, context.Canceled) && r.Context().Err() != nil {
		return
	}
	writeJSON(w, status, errorDoc{Error: err.Error()})
}

// statusFor maps a handler error to an HTTP status.
func statusFor(err error) int {
	switch {
	case errors.Is(err, errBusy):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// decodeBody strictly decodes a bounded POST body: an unknown field
// anywhere in the document is a 400 with the offending name, never a
// silently ignored knob.
func decodeBody(r *http.Request, v any) error {
	if err := wire.DecodeStrict(http.MaxBytesReader(nil, r.Body, maxBodyBytes), v); err != nil {
		return fmt.Errorf("server: bad request body: %w", err)
	}
	return nil
}

// ---- POST /v1/run ----

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req repro.RunRequest
	if err := decodeBody(r, &req); err != nil {
		s.fail(w, r, http.StatusBadRequest, err)
		return
	}
	// The legacy surface is a thin adapter: the request upgrades into a
	// v2 scenario inside Resolve, and only the v1 document shape (and
	// the v1 cache-key space) is preserved here.
	spec, plan, err := req.Resolve()
	if err != nil {
		s.fail(w, r, http.StatusBadRequest, err)
		return
	}
	s.serveCachedRun(w, r, repro.CanonicalRunKey(spec, plan), nil, func(ctx context.Context) ([]byte, error) {
		wf, err := s.wfCache.Generate(spec)
		if err != nil {
			return nil, err
		}
		res, err := repro.RunContext(ctx, wf, plan)
		if err != nil {
			return nil, err
		}
		return repro.NewRunDocument(res).Encode()
	})
}

// tierRoute is what the v2 tier chain needs beyond the cache key: the
// marshaled scenario document (to relay the request to its owning peer)
// and whether this request was itself relayed by a peer, in which case
// it must be answered locally -- a relayed request that forwarded again
// could loop on a misconfigured ring.  A nil route keeps the legacy
// /v1 behavior: memory LRU plus compute, no disk, no peers.
type tierRoute struct {
	scenario []byte
	relayed  bool
}

// serveCachedRun serves one deterministic simulation through the cache
// tiers -- memory LRU, disk store, owning peer, compute -- and the
// coalescing flight group.  Determinism makes every tier byte-identical
// to a cold run, so which tier answers is pure economics: memory is
// free, a disk read is cheap, a peer hop costs a LAN round trip, and a
// simulation costs seconds of CPU.  The X-Cache header names the tier
// that answered (hit, store, peer, miss).  Peer failure never fails the
// request; it degrades to local computation.  The disk read, the peer
// relay and the simulation all run inside the flight, so a thundering
// herd of identical requests costs one of whichever tier answers.
func (s *Server) serveCachedRun(w http.ResponseWriter, r *http.Request, key string, route *tierRoute, simulate func(ctx context.Context) ([]byte, error)) {
	if body, ok := s.cache.Get(key); ok {
		s.serveResult(w, "hit", body)
		return
	}
	tier := "miss"
	body, shared, err := s.flights.Do(r.Context(), key, func(ctx context.Context) ([]byte, error) {
		if route != nil && s.store != nil {
			if body, ok := s.store.Get(key); ok {
				tier = "store"
				s.cache.Put(key, body)
				return body, nil
			}
		}
		if route != nil && !route.relayed && s.ring != nil {
			if owner := s.ring.Owner(wire.KeyHash(key)); owner != s.self {
				s.metrics.peerFetches.Add(1)
				body, err := s.relay.Run(ctx, owner, route.scenario)
				if err == nil {
					tier = "peer"
					s.cache.Put(key, body)
					return body, nil
				}
				// The owner is down or slow: degrade to computing here.
				// The result is byte-identical either way; only the
				// pool's cache locality suffers, which the counter makes
				// visible.
				s.metrics.peerFailures.Add(1)
			}
		}
		release, err := s.admit(ctx)
		if err != nil {
			return nil, err
		}
		defer release()
		if s.testHookPreSim != nil {
			s.testHookPreSim()
		}
		s.metrics.simulations.Add(1)
		body, err := simulate(ctx)
		if err != nil {
			return nil, err
		}
		s.cache.Put(key, body)
		if route != nil && s.store != nil {
			s.store.Put(key, body) //nolint:errcheck // a failed persist only costs a future recompute
		}
		return body, nil
	})
	if shared {
		s.metrics.coalesced.Add(1)
	}
	if err != nil {
		s.fail(w, r, statusFor(err), err)
		return
	}
	s.serveResult(w, tier, body)
}

// serveResult writes one canonical result body, naming the tier that
// answered in X-Cache.
func (s *Server) serveResult(w http.ResponseWriter, tier string, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", tier)
	w.Write(body) //nolint:errcheck
}

// ---- POST /v1/sweep ----

// SweepRequest is the wire form of a grid request: a base run plus up
// to three axes.  The grid is the cross product in processors x modes x
// CCRs order; an absent axis contributes the base plan's single value.
type SweepRequest struct {
	repro.RunRequest
	Processors []int     `json:"processors,omitempty"`
	Modes      []string  `json:"modes,omitempty"`
	CCRs       []float64 `json:"ccrs,omitempty"`
}

// sweepRow is one grid point's result within a sweep envelope.
type sweepRow struct {
	Index int     `json:"index"`
	CCR   float64 `json:"ccr,omitempty"`
	repro.RunDocument
}

// sweepEnvelope is one NDJSON line of a sweep response.  Exactly one
// field is set, so a client can always tell what it is reading:
//
//	{"row": {...}}          one grid point, in grid order
//	{"done": {"rows": N}}   terminal: the grid completed
//	{"error": "..."}        terminal: the sweep failed mid-stream
//
// The terminal line is the truncation detector -- the HTTP status line
// is long gone by the time a mid-grid point fails, so a stream that
// ends without "done" or "error" was cut off.
type sweepEnvelope struct {
	Row   *sweepRow  `json:"row,omitempty"`
	Done  *sweepDone `json:"done,omitempty"`
	Error string     `json:"error,omitempty"`
}

// sweepDone is the success sentinel: how many rows were streamed.
type sweepDone struct {
	Rows int `json:"rows"`
}

type gridPoint struct {
	procs int
	mode  datamgmt.Mode
	ccr   float64 // 0 means "leave the workflow's CCR alone"
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := decodeBody(r, &req); err != nil {
		s.fail(w, r, http.StatusBadRequest, err)
		return
	}
	spec, plan, err := req.Resolve()
	if err != nil {
		s.fail(w, r, http.StatusBadRequest, err)
		return
	}
	procsAxis := req.Processors
	if len(procsAxis) == 0 {
		procsAxis = []int{plan.Processors}
	}
	modesAxis := []datamgmt.Mode{plan.Mode}
	if len(req.Modes) > 0 {
		modesAxis = modesAxis[:0]
		for _, m := range req.Modes {
			mode, err := datamgmt.ParseMode(m)
			if err != nil {
				s.fail(w, r, http.StatusBadRequest, err)
				return
			}
			modesAxis = append(modesAxis, mode)
		}
	}
	ccrAxis := req.CCRs
	if len(ccrAxis) == 0 {
		ccrAxis = []float64{0}
	}
	var grid []gridPoint
	for _, procs := range procsAxis {
		if procs < 0 {
			s.fail(w, r, http.StatusBadRequest, fmt.Errorf("server: negative processor count %d", procs))
			return
		}
		for _, mode := range modesAxis {
			for _, ccr := range ccrAxis {
				if ccr < 0 {
					s.fail(w, r, http.StatusBadRequest, fmt.Errorf("server: negative CCR %v", ccr))
					return
				}
				grid = append(grid, gridPoint{procs: procs, mode: mode, ccr: ccr})
			}
		}
	}

	// A sweep holds one worker slot; its grid fans out on the sweep
	// engine's own GOMAXPROCS pool, like every nested sweep in the repo.
	release, err := s.admit(r.Context())
	if err != nil {
		s.fail(w, r, statusFor(err), err)
		return
	}
	defer release()
	wf, err := s.wfCache.Generate(spec)
	if err != nil {
		s.fail(w, r, http.StatusInternalServerError, err)
		return
	}
	// Rescale once per distinct CCR, not once per grid point: the scaled
	// workflow is independent of the processor and mode axes, and cloning
	// a multi-thousand-task DAG per point is pure waste.
	scaledByCCR := make(map[float64]*dag.Workflow)
	for _, ccr := range ccrAxis {
		if ccr == 0 {
			continue
		}
		if _, ok := scaledByCCR[ccr]; ok {
			continue
		}
		scaled, err := wf.RescaleCCR(ccr, plan.Bandwidth)
		if err != nil {
			s.fail(w, r, http.StatusBadRequest, err)
			return
		}
		scaledByCCR[ccr] = scaled
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	rows := 0
	// Rows stream in grid order as soon as each point (and every earlier
	// one) finishes; r.Context() cancellation -- the client hanging up --
	// drains the whole grid.
	err = sweep.Stream(r.Context(), 0, grid,
		func(ctx context.Context, i int, p gridPoint) (repro.RunDocument, error) {
			if s.testHookSweepPoint != nil {
				if err := s.testHookSweepPoint(i); err != nil {
					return repro.RunDocument{}, err
				}
			}
			pointPlan := plan
			pointPlan.Processors = p.procs
			pointPlan.Mode = p.mode
			pointWf := wf
			if p.ccr > 0 {
				pointWf = scaledByCCR[p.ccr]
			}
			res, err := repro.RunContext(ctx, pointWf, pointPlan)
			if err != nil {
				return repro.RunDocument{}, err
			}
			return repro.NewRunDocument(res), nil
		},
		func(i int, doc repro.RunDocument) error {
			row := sweepRow{Index: i, CCR: grid[i].ccr, RunDocument: doc}
			if err := enc.Encode(sweepEnvelope{Row: &row}); err != nil {
				return err
			}
			rows++
			if flusher != nil {
				flusher.Flush()
			}
			return nil
		})
	if err != nil {
		if rows == 0 {
			s.fail(w, r, statusFor(err), err)
			return
		}
		// Mid-stream the status line is gone; emit the terminal error
		// envelope instead (unless the client already hung up).
		s.metrics.errors.Add(1)
		if r.Context().Err() == nil {
			enc.Encode(sweepEnvelope{Error: err.Error()}) //nolint:errcheck
		}
		return
	}
	enc.Encode(sweepEnvelope{Done: &sweepDone{Rows: rows}}) //nolint:errcheck
}

// ---- GET /v1/experiments and /v1/experiments/{name} ----

// experimentDoc is one registry entry on the wire.
type experimentDoc struct {
	Name        string `json:"name"`
	Description string `json:"description"`
}

// tableDoc is one rendered result table on the wire.
type tableDoc struct {
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

func tableDocs(tables []*report.Table) []tableDoc {
	docs := make([]tableDoc, len(tables))
	for i, t := range tables {
		docs[i] = tableDoc{Title: t.Title, Columns: t.Columns, Rows: t.Rows}
	}
	return docs
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	reg := experiments.Registry()
	docs := make([]experimentDoc, len(reg))
	for i, e := range reg {
		docs[i] = experimentDoc{Name: e.Name, Description: e.Description}
	}
	writeJSON(w, http.StatusOK, docs)
}

func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if _, ok := experiments.Lookup(name); !ok {
		s.fail(w, r, http.StatusNotFound, fmt.Errorf("server: unknown experiment %q", name))
		return
	}
	var params experiments.Params
	if seedStr := r.URL.Query().Get("seed"); seedStr != "" {
		seed, err := strconv.ParseInt(seedStr, 10, 64)
		if err != nil {
			s.fail(w, r, http.StatusBadRequest, fmt.Errorf("server: bad seed %q: %w", seedStr, err))
			return
		}
		params.Seed = &seed
	}
	release, err := s.admit(r.Context())
	if err != nil {
		s.fail(w, r, statusFor(err), err)
		return
	}
	defer release()
	tables, err := experiments.Run(r.Context(), name, params)
	if err != nil {
		s.fail(w, r, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Name   string     `json:"name"`
		Tables []tableDoc `json:"tables"`
	}{Name: name, Tables: tableDocs(tables)})
}

// ---- GET /v1/advisor ----

// advisorOption is one provisioning choice on the wire.
type advisorOption struct {
	Processors  int     `json:"processors"`
	CostDollars float64 `json:"cost_dollars"`
	Hours       float64 `json:"hours"`
}

func toAdvisorOptions(opts []advisor.Option) []advisorOption {
	out := make([]advisorOption, len(opts))
	for i, o := range opts {
		out[i] = advisorOption{Processors: o.Processors, CostDollars: o.Cost.Dollars(), Hours: o.Time.Hours()}
	}
	return out
}

// advisorQuery is the parsed, validated form of an advisor request,
// shared by the v1 and v2 handlers.
type advisorQuery struct {
	spec     repro.Spec
	plan     repro.Plan
	procs    []int
	slack    float64
	deadline *units.Duration
	budget   *units.Money
}

// parseAdvisorQuery validates every parameter before any sweep runs: a
// malformed deadline or budget must cost a 400, not a full exploration.
func parseAdvisorQuery(r *http.Request) (advisorQuery, error) {
	q := r.URL.Query()
	req := repro.RunRequest{
		Workflow: q.Get("workflow"),
		Mode:     q.Get("mode"),
		Billing:  "provisioned",
	}
	if req.Workflow == "" {
		return advisorQuery{}, fmt.Errorf("server: advisor needs ?workflow= (1deg, 2deg or 4deg)")
	}
	spec, plan, err := req.Resolve()
	if err != nil {
		return advisorQuery{}, err
	}
	out := advisorQuery{spec: spec, plan: plan, procs: repro.GeometricProcessors(), slack: 0.10}
	if list := q.Get("processors"); list != "" {
		out.procs = out.procs[:0]
		for _, field := range strings.Split(list, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(field))
			if err != nil || n <= 0 {
				return advisorQuery{}, fmt.Errorf("server: bad processor list %q", list)
			}
			out.procs = append(out.procs, n)
		}
	}
	if v := q.Get("slack"); v != "" {
		if out.slack, err = strconv.ParseFloat(v, 64); err != nil || out.slack < 0 {
			return advisorQuery{}, fmt.Errorf("server: bad slack %q", v)
		}
	}
	if v := q.Get("deadline_hours"); v != "" {
		hours, err := strconv.ParseFloat(v, 64)
		if err != nil || hours <= 0 {
			return advisorQuery{}, fmt.Errorf("server: bad deadline_hours %q", v)
		}
		d := units.Duration(hours * units.SecondsPerHour)
		out.deadline = &d
	}
	if v := q.Get("budget"); v != "" {
		dollars, err := strconv.ParseFloat(v, 64)
		if err != nil || dollars < 0 {
			return advisorQuery{}, fmt.Errorf("server: bad budget %q", v)
		}
		b := units.Money(dollars)
		out.budget = &b
	}
	return out, nil
}

// explore runs the advisor's provisioning sweep inside a worker slot.
// The boolean reports success; on failure the response is written.
func (s *Server) explore(w http.ResponseWriter, r *http.Request) (advisorQuery, []advisor.Option, bool) {
	aq, err := parseAdvisorQuery(r)
	if err != nil {
		s.fail(w, r, http.StatusBadRequest, err)
		return advisorQuery{}, nil, false
	}
	release, err := s.admit(r.Context())
	if err != nil {
		s.fail(w, r, statusFor(err), err)
		return advisorQuery{}, nil, false
	}
	defer release()
	wf, err := s.wfCache.Generate(aq.spec)
	if err != nil {
		s.fail(w, r, http.StatusInternalServerError, err)
		return advisorQuery{}, nil, false
	}
	opts, err := advisor.Explore(r.Context(), wf, aq.procs, aq.plan)
	if err != nil {
		s.fail(w, r, statusFor(err), err)
		return advisorQuery{}, nil, false
	}
	return aq, opts, true
}

func (s *Server) handleAdvisor(w http.ResponseWriter, r *http.Request) {
	aq, opts, ok := s.explore(w, r)
	if !ok {
		return
	}
	spec, slack, deadline, budget := aq.spec, aq.slack, aq.deadline, aq.budget
	resp := struct {
		Workflow    string          `json:"workflow"`
		Options     []advisorOption `json:"options"`
		Pareto      []advisorOption `json:"pareto"`
		Recommended *advisorOption  `json:"recommended,omitempty"`
		Cheapest    *advisorOption  `json:"cheapest_within_deadline,omitempty"`
		Fastest     *advisorOption  `json:"fastest_under_budget,omitempty"`
	}{
		Workflow: spec.Name,
		Options:  toAdvisorOptions(opts),
		Pareto:   toAdvisorOptions(advisor.ParetoFrontier(opts)),
	}
	if rec, err := advisor.Recommend(opts, slack); err == nil {
		o := advisorOption{Processors: rec.Processors, CostDollars: rec.Cost.Dollars(), Hours: rec.Time.Hours()}
		resp.Recommended = &o
	}
	if deadline != nil {
		if o, err := advisor.CheapestWithin(opts, *deadline); err == nil {
			d := advisorOption{Processors: o.Processors, CostDollars: o.Cost.Dollars(), Hours: o.Time.Hours()}
			resp.Cheapest = &d
		}
	}
	if budget != nil {
		if o, err := advisor.FastestUnder(opts, *budget); err == nil {
			d := advisorOption{Processors: o.Processors, CostDollars: o.Cost.Dollars(), Hours: o.Time.Hours()}
			resp.Fastest = &d
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// ---- GET /healthz and /metrics ----

// healthCache reports one cache's occupancy on /healthz.
type healthCache struct {
	Entries  int `json:"entries"`
	Capacity int `json:"capacity"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	resp := struct {
		Status        string       `json:"status"`
		Version       string       `json:"version"`
		UptimeSeconds float64      `json:"uptime_seconds"`
		ResultCache   healthCache  `json:"result_cache"`
		WorkflowCache healthCache  `json:"workflow_cache"`
		Store         *healthStore `json:"store,omitempty"`
	}{
		Status:        "ok",
		Version:       s.metrics.version,
		UptimeSeconds: s.metrics.uptime().Seconds(),
		ResultCache:   healthCache{Entries: s.cache.Stats().Entries, Capacity: s.cfg.CacheEntries},
		WorkflowCache: healthCache{Entries: s.wfCache.Stats().Entries, Capacity: s.cfg.WorkflowCacheEntries},
	}
	if s.store != nil {
		st := s.store.Stats()
		resp.Store = &healthStore{Entries: st.Entries, Bytes: st.Bytes, MaxBytes: st.MaxBytes, Dir: st.Dir}
	}
	writeJSON(w, http.StatusOK, resp)
}

// healthStore is the /healthz block describing the disk store; present
// only when a store directory is configured.
type healthStore struct {
	Entries  int    `json:"entries"`
	Bytes    int64  `json:"bytes"`
	MaxBytes int64  `json:"max_bytes"`
	Dir      string `json:"dir"`
}

// storeStats snapshots the disk store, or a zero Stats when the store
// is disabled; metric families are emitted either way so the exposition
// schema is identical across configurations.
func (s *Server) storeStats() store.Stats {
	if s.store == nil {
		return store.Stats{}
	}
	return s.store.Stats()
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.write(w, s.cache.Stats(), s.wfCache.Stats(), s.storeStats())
}
