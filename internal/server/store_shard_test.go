package server

// Tier and shard coverage over real HTTP: the disk store under the
// memory LRU (persistence across restarts, corruption fall-through and
// repair) and the consistent-hash peer tier (sharded sweeps, peer
// failure degrading to local computation, relay loop prevention).

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/shard"
)

// v2Scenario builds a distinct small scenario per processor count:
// distinct canonical keys, cheap simulations.
func v2Scenario(processors int) string {
	return fmt.Sprintf(`{"version": 2, "workflow": {"name": "1deg"}, "fleet": {"processors": %d}}`, processors)
}

func postV2Run(t *testing.T, url, body string, relayed bool) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v2/run", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if relayed {
		req.Header.Set(shard.RelayHeader, "1")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	return resp, b
}

// TestRunV2StoreTierServesEvictedEntries: an entry evicted from the
// memory LRU comes back byte-identical from the disk store, labeled
// X-Cache: store.
func TestRunV2StoreTierServesEvictedEntries(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheEntries: 1, StoreDir: t.TempDir()})

	cold, coldBody := postV2Run(t, ts.URL, v2Scenario(4), false)
	if got := cold.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("cold X-Cache = %q, want miss", got)
	}
	// A second scenario evicts the first from the single-entry LRU.
	postV2Run(t, ts.URL, v2Scenario(8), false)

	warm, warmBody := postV2Run(t, ts.URL, v2Scenario(4), false)
	if got := warm.Header.Get("X-Cache"); got != "store" {
		t.Errorf("post-eviction X-Cache = %q, want store", got)
	}
	if !bytes.Equal(coldBody, warmBody) {
		t.Errorf("store tier served different bytes:\ncold: %s\nstore: %s", coldBody, warmBody)
	}
}

// TestRunV2StoreSurvivesRestart pins the acceptance criterion: a result
// computed by one daemon is served byte-identical -- without
// re-simulation -- by a fresh daemon over the same store directory.
func TestRunV2StoreSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	_, ts1 := newTestServer(t, Config{StoreDir: dir})
	_, coldBody := postV2Run(t, ts1.URL, v2Scenario(4), false)
	ts1.Close()

	s2, ts2 := newTestServer(t, Config{StoreDir: dir})
	warm, warmBody := postV2Run(t, ts2.URL, v2Scenario(4), false)
	if got := warm.Header.Get("X-Cache"); got != "store" {
		t.Errorf("restart X-Cache = %q, want store", got)
	}
	if !bytes.Equal(coldBody, warmBody) {
		t.Errorf("restarted daemon served different bytes:\nbefore: %s\nafter: %s", coldBody, warmBody)
	}
	if sims := s2.metrics.simulations.Load(); sims != 0 {
		t.Errorf("restarted daemon simulated %d times, want 0", sims)
	}
}

// TestRunV2CorruptStoreEntryRecomputesAndRepairs: a corrupted store
// file is a miss, never an error -- the request falls through to
// computation (byte-identical result) and the recompute repairs the
// entry on disk.
func TestRunV2CorruptStoreEntryRecomputesAndRepairs(t *testing.T) {
	dir := t.TempDir()
	_, ts1 := newTestServer(t, Config{StoreDir: dir})
	_, coldBody := postV2Run(t, ts1.URL, v2Scenario(4), false)
	ts1.Close()

	corruptOneEntry(t, dir)

	s2, ts2 := newTestServer(t, Config{StoreDir: dir})
	resp, body := postV2Run(t, ts2.URL, v2Scenario(4), false)
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("corrupt-entry X-Cache = %q, want miss (recompute)", got)
	}
	if !bytes.Equal(coldBody, body) {
		t.Errorf("recomputed bytes differ from original:\nwas: %s\nnow: %s", coldBody, body)
	}
	st := s2.store.Stats()
	if st.Corrupt != 1 {
		t.Errorf("corrupt counter = %d, want 1", st.Corrupt)
	}
	if st.Writes != 1 || st.Entries != 1 {
		t.Errorf("repair: writes = %d entries = %d, want 1 and 1", st.Writes, st.Entries)
	}
}

// corruptOneEntry flips a byte near the end of the single store entry
// under dir (inside the gzip stream, so the CRC catches it).
func corruptOneEntry(t *testing.T, dir string) {
	t.Helper()
	var files []string
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && strings.HasSuffix(path, ".rpr") {
			files = append(files, path)
		}
		return err
	})
	if err != nil || len(files) != 1 {
		t.Fatalf("expected exactly one store entry, got %v (err %v)", files, err)
	}
	b, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-3] ^= 0xff
	if err := os.WriteFile(files[0], b, 0o644); err != nil {
		t.Fatal(err)
	}
}

// startReplicaPool boots n Server instances on real listeners wired
// into one peer ring and returns their addresses.  Serving goroutines
// drain on test cleanup.
func startReplicaPool(t *testing.T, n int) ([]*Server, []string) {
	t.Helper()
	listeners := make([]net.Listener, n)
	peers := make([]string, n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		peers[i] = l.Addr().String()
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{}, n)
	servers := make([]*Server, n)
	for i, l := range listeners {
		s, err := New(Config{Peers: peers, Self: peers[i], StoreDir: t.TempDir()})
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = s
		go func(l net.Listener) {
			s.Serve(ctx, l) //nolint:errcheck
			done <- struct{}{}
		}(l)
	}
	t.Cleanup(func() {
		cancel()
		for range listeners {
			<-done
		}
	})
	return servers, peers
}

const shardedSweepDoc = `{
  "scenario": {"version": 2, "workflow": {"name": "1deg"}},
  "axes": [{"axis": "fleet.processors", "values": [1, 2, 3, 4, 5, 6, 7, 8]}]
}`

// TestSweepV2ShardedPoolMatchesSingleReplica pins the acceptance
// criterion: a sweep scattered across a two-replica pool streams NDJSON
// byte-identical to the single-replica stream -- same rows, same grid
// order, same terminal done envelope.
func TestSweepV2ShardedPoolMatchesSingleReplica(t *testing.T) {
	_, ref := newTestServer(t, Config{})
	resp, err := http.Post(ref.URL+"/v2/sweep", "application/json", strings.NewReader(shardedSweepDoc))
	if err != nil {
		t.Fatal(err)
	}
	refBody, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("reference sweep: status %d err %v", resp.StatusCode, err)
	}

	servers, peers := startReplicaPool(t, 2)
	resp, err = http.Post("http://"+peers[0]+"/v2/sweep", "application/json", strings.NewReader(shardedSweepDoc))
	if err != nil {
		t.Fatal(err)
	}
	gotBody, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("sharded sweep: status %d err %v", resp.StatusCode, err)
	}
	if !bytes.Equal(refBody, gotBody) {
		t.Errorf("sharded sweep differs from single-replica stream:\nsingle: %s\nsharded: %s", refBody, gotBody)
	}
	if fails := servers[0].metrics.peerFailures.Load(); fails != 0 {
		t.Errorf("healthy pool recorded %d peer failures", fails)
	}
}

// TestRunV2PeerDownDegradesToLocal: with the owning peer unreachable,
// every run still answers 200 by computing locally, and at least one
// relay attempt is recorded against the dead peer.
func TestRunV2PeerDownDegradesToLocal(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	self := l.Addr().String()
	l.Close()
	s, err := New(Config{Peers: []string{self, "127.0.0.1:1"}, Self: self})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	// 16 distinct keys: the chance the dead peer owns none of them is
	// 2^-16, so this deterministically exercises the degradation path.
	for p := 1; p <= 16; p++ {
		resp, _ := postV2Run(t, ts.URL, v2Scenario(p), false)
		if got := resp.Header.Get("X-Cache"); got != "miss" {
			t.Errorf("processors=%d X-Cache = %q, want miss (local compute)", p, got)
		}
	}
	if s.metrics.peerFetches.Load() == 0 {
		t.Error("no relay was ever attempted")
	}
	if s.metrics.peerFetches.Load() != s.metrics.peerFailures.Load() {
		t.Errorf("fetches %d != failures %d against a dead peer",
			s.metrics.peerFetches.Load(), s.metrics.peerFailures.Load())
	}
}

// TestRunV2RelayedRequestsNeverForward: a request already routed by a
// peer (RelayHeader set) is answered locally even when the ring says
// another replica owns it -- the loop-prevention contract.
func TestRunV2RelayedRequestsNeverForward(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	self := l.Addr().String()
	l.Close()
	s, err := New(Config{Peers: []string{self, "127.0.0.1:1"}, Self: self})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	for p := 1; p <= 8; p++ {
		postV2Run(t, ts.URL, v2Scenario(p), true)
	}
	if fetches := s.metrics.peerFetches.Load(); fetches != 0 {
		t.Errorf("relayed requests triggered %d forwards, want 0", fetches)
	}
}

// TestHealthzReportsStore: the health document grows a store block when
// (and only when) a store directory is configured.
func TestHealthzReportsStore(t *testing.T) {
	_, plain := newTestServer(t, Config{})
	_, body := getBody(t, plain.URL+"/healthz")
	if strings.Contains(string(body), `"store"`) {
		t.Errorf("storeless healthz mentions a store: %s", body)
	}

	dir := t.TempDir()
	_, ts := newTestServer(t, Config{StoreDir: dir})
	postV2Run(t, ts.URL, v2Scenario(4), false)
	_, body = getBody(t, ts.URL+"/healthz")
	for _, want := range []string{`"store"`, `"entries": 1`, dir} {
		if !strings.Contains(string(body), want) {
			t.Errorf("healthz missing %s: %s", want, body)
		}
	}
}
