package server

import (
	"context"
	"sync"
)

// flightGroup coalesces concurrent identical requests, singleflight
// style: callers who ask for the same key while a computation is in
// flight share its result instead of re-simulating, so a thundering
// herd of identical mosaic requests costs one simulation.
//
// The in-flight computation runs under its own context, detached from
// any single caller and canceled only when every waiter has gone away --
// one impatient client hanging up cannot abort work the others still
// want, but when the whole herd disconnects the simulation stops.
type flightGroup struct {
	mu      sync.Mutex
	flights map[string]*flight
}

type flight struct {
	waiters int
	cancel  context.CancelFunc
	done    chan struct{}
	body    []byte
	err     error
}

// Do returns fn's result for key, executing fn at most once across all
// concurrent callers with the same key.  shared reports whether this
// call joined a flight another caller started.  If ctx is done before
// the flight lands, Do returns ctx's error (and aborts the flight if
// this was its last waiter).
func (g *flightGroup) Do(ctx context.Context, key string, fn func(ctx context.Context) ([]byte, error)) (body []byte, shared bool, err error) {
	g.mu.Lock()
	if g.flights == nil {
		g.flights = make(map[string]*flight)
	}
	f, joined := g.flights[key]
	if !joined {
		fctx, cancel := context.WithCancel(context.Background())
		f = &flight{cancel: cancel, done: make(chan struct{})}
		g.flights[key] = f
		//repro:detached a flight outlives canceled callers by design; every waiter joins via f.done, and the flight itself is the only writer
		go func() {
			body, err := fn(fctx)
			g.mu.Lock()
			f.body, f.err = body, err
			// A finished flight leaves the map so the next request starts
			// fresh (results live in the response cache, not here).  The
			// guard matters: if every waiter left and a new flight took
			// the key, that flight is not ours to remove.
			if g.flights[key] == f {
				delete(g.flights, key)
			}
			g.mu.Unlock()
			close(f.done)
			cancel()
		}()
	}
	f.waiters++
	g.mu.Unlock()

	select {
	case <-f.done:
		return f.body, joined, f.err
	case <-ctx.Done():
		g.mu.Lock()
		f.waiters--
		if f.waiters == 0 {
			f.cancel()
			if g.flights[key] == f {
				delete(g.flights, key)
			}
		}
		g.mu.Unlock()
		return nil, joined, ctx.Err()
	}
}
