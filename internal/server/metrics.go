package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/montage"
)

// metrics holds the daemon's operational counters.  Everything is
// atomics or snapshot reads, so the hot paths never serialize on the
// exposition format.
type metrics struct {
	mu       sync.Mutex
	requests map[string]*atomic.Uint64 // per-endpoint request count

	simulations atomic.Uint64 // simulations actually executed
	coalesced   atomic.Uint64 // requests that joined another's flight
	rejected    atomic.Uint64 // requests refused at the admission queue
	errors      atomic.Uint64 // requests that failed

	inflight atomic.Int64 // requests holding a worker slot
	queued   atomic.Int64 // requests waiting for a worker slot
}

func newMetrics() *metrics {
	return &metrics{requests: make(map[string]*atomic.Uint64)}
}

// count records one request against an endpoint label.
func (m *metrics) count(endpoint string) {
	m.mu.Lock()
	c, ok := m.requests[endpoint]
	if !ok {
		c = new(atomic.Uint64)
		m.requests[endpoint] = c
	}
	m.mu.Unlock()
	c.Add(1)
}

// write renders the counters in the Prometheus text exposition format,
// alongside the result-cache and workflow-generation-cache stats.
func (m *metrics) write(w io.Writer, cache CacheStats, wf montage.CacheStats) {
	m.mu.Lock()
	endpoints := make([]string, 0, len(m.requests))
	for e := range m.requests {
		endpoints = append(endpoints, e)
	}
	sort.Strings(endpoints)
	counts := make(map[string]uint64, len(endpoints))
	for _, e := range endpoints {
		counts[e] = m.requests[e].Load()
	}
	m.mu.Unlock()

	for _, e := range endpoints {
		fmt.Fprintf(w, "reprosrv_requests_total{endpoint=%q} %d\n", e, counts[e])
	}
	fmt.Fprintf(w, "reprosrv_simulations_total %d\n", m.simulations.Load())
	fmt.Fprintf(w, "reprosrv_coalesced_requests_total %d\n", m.coalesced.Load())
	fmt.Fprintf(w, "reprosrv_rejected_total %d\n", m.rejected.Load())
	fmt.Fprintf(w, "reprosrv_errors_total %d\n", m.errors.Load())
	fmt.Fprintf(w, "reprosrv_in_flight %d\n", m.inflight.Load())
	fmt.Fprintf(w, "reprosrv_queue_depth %d\n", m.queued.Load())
	fmt.Fprintf(w, "reprosrv_result_cache_hits_total %d\n", cache.Hits)
	fmt.Fprintf(w, "reprosrv_result_cache_misses_total %d\n", cache.Misses)
	fmt.Fprintf(w, "reprosrv_result_cache_evictions_total %d\n", cache.Evictions)
	fmt.Fprintf(w, "reprosrv_result_cache_entries %d\n", cache.Entries)
	fmt.Fprintf(w, "reprosrv_workflow_cache_hits_total %d\n", wf.Hits)
	fmt.Fprintf(w, "reprosrv_workflow_cache_misses_total %d\n", wf.Misses)
	fmt.Fprintf(w, "reprosrv_workflow_cache_evictions_total %d\n", wf.Evictions)
	fmt.Fprintf(w, "reprosrv_workflow_cache_entries %d\n", wf.Entries)
}
