package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/montage"
)

// metrics holds the daemon's operational counters.  Everything is
// atomics or snapshot reads, so the hot paths never serialize on the
// exposition format.
type metrics struct {
	mu       sync.Mutex
	requests map[string]*atomic.Uint64 // per-endpoint request count

	simulations atomic.Uint64 // simulations actually executed
	coalesced   atomic.Uint64 // requests that joined another's flight
	rejected    atomic.Uint64 // requests refused at the admission queue
	errors      atomic.Uint64 // requests that failed

	inflight atomic.Int64 // requests holding a worker slot
	queued   atomic.Int64 // requests waiting for a worker slot
}

func newMetrics() *metrics {
	return &metrics{requests: make(map[string]*atomic.Uint64)}
}

// count records one request against an endpoint label.
func (m *metrics) count(endpoint string) {
	m.mu.Lock()
	c, ok := m.requests[endpoint]
	if !ok {
		c = new(atomic.Uint64)
		m.requests[endpoint] = c
	}
	m.mu.Unlock()
	c.Add(1)
}

// header writes the # HELP and # TYPE lines a conforming Prometheus
// exposition puts before each metric family's samples.
func header(w io.Writer, name, typ, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
}

// write renders the counters in the Prometheus text exposition format
// (HELP/TYPE headers included, so scrapers ingest the families with the
// right semantics), alongside the result-cache and
// workflow-generation-cache stats.
func (m *metrics) write(w io.Writer, cache CacheStats, wf montage.CacheStats) {
	m.mu.Lock()
	endpoints := make([]string, 0, len(m.requests))
	for e := range m.requests {
		endpoints = append(endpoints, e)
	}
	sort.Strings(endpoints)
	counts := make(map[string]uint64, len(endpoints))
	for _, e := range endpoints {
		counts[e] = m.requests[e].Load()
	}
	m.mu.Unlock()

	header(w, "reprosrv_requests_total", "counter", "Requests received, by endpoint.")
	for _, e := range endpoints {
		fmt.Fprintf(w, "reprosrv_requests_total{endpoint=%q} %d\n", e, counts[e])
	}
	counter := func(name, help string, v uint64) {
		header(w, name, "counter", help)
		fmt.Fprintf(w, "%s %d\n", name, v)
	}
	gauge := func(name, help string, v int64) {
		header(w, name, "gauge", help)
		fmt.Fprintf(w, "%s %d\n", name, v)
	}
	counter("reprosrv_simulations_total", "Simulations actually executed.", m.simulations.Load())
	counter("reprosrv_coalesced_requests_total", "Requests that joined another request's in-flight simulation.", m.coalesced.Load())
	counter("reprosrv_rejected_total", "Requests refused at the admission queue.", m.rejected.Load())
	counter("reprosrv_errors_total", "Requests that failed.", m.errors.Load())
	gauge("reprosrv_in_flight", "Requests currently holding a worker slot.", m.inflight.Load())
	gauge("reprosrv_queue_depth", "Requests waiting for a worker slot.", m.queued.Load())
	counter("reprosrv_result_cache_hits_total", "Result-cache hits.", cache.Hits)
	counter("reprosrv_result_cache_misses_total", "Result-cache misses.", cache.Misses)
	counter("reprosrv_result_cache_evictions_total", "Result-cache LRU evictions.", cache.Evictions)
	gauge("reprosrv_result_cache_entries", "Result-cache resident entries.", int64(cache.Entries))
	counter("reprosrv_workflow_cache_hits_total", "Workflow-generation-cache hits.", wf.Hits)
	counter("reprosrv_workflow_cache_misses_total", "Workflow-generation-cache misses.", wf.Misses)
	counter("reprosrv_workflow_cache_evictions_total", "Workflow-generation-cache LRU evictions.", wf.Evictions)
	gauge("reprosrv_workflow_cache_entries", "Workflow-generation-cache resident entries.", int64(wf.Entries))
}
