package server

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/montage"
	"repro/internal/store"
)

// latencyBuckets are the upper bounds of the request-duration histogram,
// in seconds: cache hits land in the low millisecond buckets, cold
// 4-degree simulations and long sweeps in the tail.
var latencyBuckets = []float64{0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30}

// hist is one endpoint's latency histogram: cumulative on exposition,
// plain per-bucket counts in memory.  Guarded by metrics.mu.
type hist struct {
	counts []uint64 // one per bucket, +Inf implicit in count
	sum    float64
	count  uint64
}

// metrics holds the daemon's operational counters.  Counters are
// atomics; the label maps take a short mutex on the request path and a
// snapshot on exposition, so scrapes never serialize simulations.
type metrics struct {
	mu        sync.Mutex
	requests  map[string]*atomic.Uint64 // per-endpoint request count
	durations map[string]*hist          // per-endpoint latency histogram

	simulations atomic.Uint64 // simulations actually executed
	coalesced   atomic.Uint64 // requests that joined another's flight
	rejected    atomic.Uint64 // requests refused at the admission queue
	errors      atomic.Uint64 // requests that failed

	peerFetches  atomic.Uint64 // runs relayed to their owning replica
	peerFailures atomic.Uint64 // relays that degraded to local computation

	inflight atomic.Int64 // requests holding a worker slot
	queued   atomic.Int64 // requests waiting for a worker slot

	version string    // build version, stamped via -ldflags
	start   time.Time // process start, for the uptime gauge
}

func newMetrics(version string) *metrics {
	if version == "" {
		version = "dev"
	}
	return &metrics{
		requests:  make(map[string]*atomic.Uint64),
		durations: make(map[string]*hist),
		version:   version,
		start:     time.Now(), //repro:nondet-ok process start anchors the uptime gauge, never a simulation
	}
}

// count records one request against an endpoint label.
func (m *metrics) count(endpoint string) {
	m.mu.Lock()
	c, ok := m.requests[endpoint]
	if !ok {
		c = new(atomic.Uint64)
		m.requests[endpoint] = c
	}
	m.mu.Unlock()
	c.Add(1)
}

// observe records one request's latency against an endpoint label.
func (m *metrics) observe(endpoint string, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.durations[endpoint]
	if !ok {
		h = &hist{counts: make([]uint64, len(latencyBuckets))}
		m.durations[endpoint] = h
	}
	for i, le := range latencyBuckets {
		if seconds <= le {
			h.counts[i]++
			break
		}
	}
	h.sum += seconds
	h.count++
}

// family is one metric family ready for exposition: its metadata plus
// fully rendered sample lines.  Families are emitted sorted by name, so
// the exposition is stable across scrapes no matter in which order the
// lazily created per-endpoint labels first appeared.
type family struct {
	name, typ, help string
	samples         []string
}

// fmtFloat renders a float the shortest way that round-trips, the
// conventional Prometheus sample encoding.
func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// snapshot renders every family under a single lock acquisition.
func (m *metrics) snapshot(cache CacheStats, wf montage.CacheStats, st store.Stats) []family {
	m.mu.Lock()
	endpoints := make([]string, 0, len(m.requests))
	for e := range m.requests {
		endpoints = append(endpoints, e)
	}
	sort.Strings(endpoints)
	counts := make(map[string]uint64, len(endpoints))
	for _, e := range endpoints {
		counts[e] = m.requests[e].Load()
	}
	observed := make([]string, 0, len(m.durations))
	for e := range m.durations {
		observed = append(observed, e)
	}
	sort.Strings(observed)
	hists := make(map[string]hist, len(observed))
	for _, e := range observed {
		h := m.durations[e]
		hists[e] = hist{counts: append([]uint64(nil), h.counts...), sum: h.sum, count: h.count}
	}
	m.mu.Unlock()

	var fams []family
	reqFam := family{name: "reprosrv_requests_total", typ: "counter", help: "Requests received, by endpoint."}
	for _, e := range endpoints {
		reqFam.samples = append(reqFam.samples, fmt.Sprintf("reprosrv_requests_total{endpoint=%q} %d", e, counts[e]))
	}
	fams = append(fams, reqFam)

	durFam := family{name: "reprosrv_request_duration_seconds", typ: "histogram", help: "Request latency, by endpoint."}
	for _, e := range observed {
		h := hists[e]
		cum := uint64(0)
		for i, le := range latencyBuckets {
			cum += h.counts[i]
			durFam.samples = append(durFam.samples,
				fmt.Sprintf("reprosrv_request_duration_seconds_bucket{endpoint=%q,le=%q} %d", e, fmtFloat(le), cum))
		}
		durFam.samples = append(durFam.samples,
			fmt.Sprintf("reprosrv_request_duration_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d", e, h.count),
			fmt.Sprintf("reprosrv_request_duration_seconds_sum{endpoint=%q} %s", e, fmtFloat(h.sum)),
			fmt.Sprintf("reprosrv_request_duration_seconds_count{endpoint=%q} %d", e, h.count))
	}
	fams = append(fams, durFam)

	counter := func(name, help string, v uint64) {
		fams = append(fams, family{name: name, typ: "counter", help: help,
			samples: []string{fmt.Sprintf("%s %d", name, v)}})
	}
	gauge := func(name, help string, v int64) {
		fams = append(fams, family{name: name, typ: "gauge", help: help,
			samples: []string{fmt.Sprintf("%s %d", name, v)}})
	}
	counter("reprosrv_simulations_total", "Simulations actually executed.", m.simulations.Load())
	counter("reprosrv_coalesced_requests_total", "Requests that joined another request's in-flight simulation.", m.coalesced.Load())
	counter("reprosrv_rejected_total", "Requests refused at the admission queue.", m.rejected.Load())
	counter("reprosrv_errors_total", "Requests that failed.", m.errors.Load())
	gauge("reprosrv_in_flight", "Requests currently holding a worker slot.", m.inflight.Load())
	gauge("reprosrv_queue_depth", "Requests waiting for a worker slot.", m.queued.Load())
	counter("reprosrv_result_cache_hits_total", "Result-cache hits.", cache.Hits)
	counter("reprosrv_result_cache_misses_total", "Result-cache misses.", cache.Misses)
	counter("reprosrv_result_cache_evictions_total", "Result-cache LRU evictions.", cache.Evictions)
	gauge("reprosrv_result_cache_entries", "Result-cache resident entries.", int64(cache.Entries))
	counter("reprosrv_workflow_cache_hits_total", "Workflow-generation-cache hits.", wf.Hits)
	counter("reprosrv_workflow_cache_misses_total", "Workflow-generation-cache misses.", wf.Misses)
	counter("reprosrv_workflow_cache_evictions_total", "Workflow-generation-cache LRU evictions.", wf.Evictions)
	gauge("reprosrv_workflow_cache_entries", "Workflow-generation-cache resident entries.", int64(wf.Entries))
	// Store and peer families are emitted even when those subsystems are
	// off (all zeros): the exposition schema stays identical across
	// configurations, so dashboards and the conformance tests never see
	// families appear or vanish.
	counter("reprosrv_store_hits_total", "Disk-store hits.", st.Hits)
	counter("reprosrv_store_misses_total", "Disk-store misses.", st.Misses)
	counter("reprosrv_store_writes_total", "Disk-store entries persisted.", st.Writes)
	counter("reprosrv_store_evictions_total", "Disk-store LRU evictions.", st.Evictions)
	counter("reprosrv_store_corrupt_total", "Disk-store entries dropped as corrupt.", st.Corrupt)
	gauge("reprosrv_store_entries", "Disk-store resident entries.", int64(st.Entries))
	gauge("reprosrv_store_bytes", "Disk-store resident bytes.", st.Bytes)
	counter("reprosrv_peer_fetches_total", "Runs relayed to their owning replica.", m.peerFetches.Load())
	counter("reprosrv_peer_failures_total", "Peer relays that degraded to local computation.", m.peerFailures.Load())
	fams = append(fams, family{
		name: "reprosrv_build_info", typ: "gauge",
		help: "Build metadata; the value is always 1.",
		samples: []string{fmt.Sprintf("reprosrv_build_info{go_version=%q,version=%q} 1",
			runtime.Version(), m.version)},
	})
	fams = append(fams, family{
		name: "reprosrv_uptime_seconds", typ: "gauge",
		help: "Seconds since the process started.",
		samples: []string{fmt.Sprintf("reprosrv_uptime_seconds %s",
			fmtFloat(time.Since(m.start).Seconds()))}, //repro:nondet-ok the uptime gauge is wall-clock by definition
	})
	return fams
}

// write renders the counters in the Prometheus text exposition format:
// families sorted by name, each preceded by its # HELP and # TYPE
// lines, so scrapers ingest them with the right semantics and two
// scrapes of the same state are byte-identical apart from sample
// values.
func (m *metrics) write(w io.Writer, cache CacheStats, wf montage.CacheStats, st store.Stats) {
	fams := m.snapshot(cache, wf, st)
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.samples {
			fmt.Fprintln(w, s)
		}
	}
}

// uptime reports how long the process has been up (also on /healthz, so
// the health probe doubles as a readiness signal with history).
func (m *metrics) uptime() time.Duration { return time.Since(m.start) } //repro:nondet-ok the uptime gauge is wall-clock by definition
