package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"repro/wire"
)

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestRunV2EchoesScenarioAndCaches(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{
		"version": 2,
		"workflow": {"name": "1deg"},
		"fleet": {"processors": 16, "reliable": 4},
		"spot": {"rate_per_hour": 1.5, "seed": 7, "discount": 0.65},
		"recovery": {"checkpoint_seconds": 300, "checkpoint_overhead_seconds": 10, "checkpoint_bytes": 500000000}
	}`
	resp, cold := postJSON(t, ts.URL+"/v2/run", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, cold)
	}
	if resp.Header.Get("X-Cache") != "miss" {
		t.Errorf("first request X-Cache = %q", resp.Header.Get("X-Cache"))
	}
	var doc wire.RunDocumentV2
	if err := json.Unmarshal(cold, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Version != 2 || doc.Workflow != "montage-1deg" {
		t.Errorf("document header: version %d workflow %q", doc.Version, doc.Workflow)
	}
	sc := doc.Scenario
	if sc.Spot == nil || sc.Spot.RatePerHour != 1.5 || sc.Spot.WarningSeconds != 120 {
		t.Errorf("scenario echo spot = %+v (defaults must be filled)", sc.Spot)
	}
	if sc.Fleet == nil || sc.Fleet.Reliable != 4 {
		t.Errorf("scenario echo fleet = %+v", sc.Fleet)
	}
	if sc.Recovery == nil || sc.Recovery.CheckpointBytes != 5e8 {
		t.Errorf("scenario echo recovery = %+v", sc.Recovery)
	}
	if doc.Metrics.CheckpointBytesWritten == 0 && doc.Metrics.Preempted > 0 && doc.Metrics.Checkpoints > 0 {
		t.Error("checkpoint bytes missing from metrics")
	}
	if doc.Utilization.Reliable <= 0 || doc.Utilization.Spot <= 0 {
		t.Errorf("per-sub-pool utilization = %+v", doc.Utilization)
	}
	if doc.Metrics.ReliableCapacityProcSeconds <= 0 ||
		doc.Metrics.SpotCapacityProcSeconds <= 0 {
		t.Errorf("capacity split = %v/%v", doc.Metrics.ReliableCapacityProcSeconds, doc.Metrics.SpotCapacityProcSeconds)
	}

	// The cached repeat must be byte-identical.
	resp2, warm := postJSON(t, ts.URL+"/v2/run", body)
	if resp2.Header.Get("X-Cache") != "hit" {
		t.Errorf("repeat X-Cache = %q", resp2.Header.Get("X-Cache"))
	}
	if !bytes.Equal(cold, warm) {
		t.Error("cache hit differs from cold run")
	}

	// The echoed scenario is re-POSTable and resolves to the same run.
	echo, err := json.Marshal(doc.Scenario)
	if err != nil {
		t.Fatal(err)
	}
	resp3, reposted := postJSON(t, ts.URL+"/v2/run", string(echo))
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("echo re-POST status %d: %s", resp3.StatusCode, reposted)
	}
	if !bytes.Equal(cold, reposted) {
		t.Error("re-POSTed echo produced a different document")
	}
}

// TestRunV1AndV2CacheSpacesDisjoint: the same resolved run cached under
// /v1 must never be served on /v2 (the document shapes differ).
func TestRunV1AndV2CacheSpacesDisjoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if resp, body := postRun(t, ts, `{"workflow":"1deg","processors":4}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("v1 run: %d %s", resp.StatusCode, body)
	}
	resp, body := postJSON(t, ts.URL+"/v2/run", `{"version":2,"workflow":{"name":"1deg"},"fleet":{"processors":4}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("v2 run: %d %s", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Cache") != "miss" {
		t.Error("v2 request hit the v1 cache entry")
	}
	var doc wire.RunDocumentV2
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("v2 body is not a v2 document: %v", err)
	}
}

func TestSweepV2SpotAxis(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{
		"scenario": {
			"version": 2,
			"workflow": {"name": "1deg"},
			"fleet": {"processors": 16, "reliable": 4},
			"spot": {"seed": 7, "discount": 0.65},
			"recovery": {"checkpoint_seconds": 300}
		},
		"axes": [{"axis": "spot.rate_per_hour", "values": [0, 1, 2]}]
	}`
	resp, raw := postJSON(t, ts.URL+"/v2/sweep", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var rows []wire.SweepRow
	done := false
	for sc.Scan() {
		var env wire.SweepEnvelope
		if err := json.Unmarshal(sc.Bytes(), &env); err != nil {
			t.Fatalf("bad envelope line: %v", err)
		}
		switch {
		case env.Row != nil:
			rows = append(rows, *env.Row)
		case env.Done != nil:
			done = true
			if env.Done.Rows != len(rows) {
				t.Errorf("done sentinel counts %d rows, saw %d", env.Done.Rows, len(rows))
			}
		case env.Error != "":
			t.Fatalf("sweep failed: %s", env.Error)
		}
	}
	if !done {
		t.Fatal("stream ended without a done sentinel")
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	rates := []float64{0, 1, 2}
	for i, row := range rows {
		if row.Index != i {
			t.Errorf("row %d has index %d", i, row.Index)
		}
		if row.Scenario.Spot == nil || row.Scenario.Spot.RatePerHour != rates[i] {
			t.Errorf("row %d scenario rate = %+v, want %g", i, row.Scenario.Spot, rates[i])
		}
	}
	// A hotter spot market can only preempt at least as much.
	if rows[0].Metrics.Preempted != 0 {
		t.Errorf("calm market preempted %d", rows[0].Metrics.Preempted)
	}
	if rows[2].Metrics.Preempted < rows[1].Metrics.Preempted {
		t.Errorf("preemptions not monotone: %d then %d", rows[1].Metrics.Preempted, rows[2].Metrics.Preempted)
	}
}

func TestSweepV2RejectsMalformedGrids(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	base := `"scenario": {"version": 2, "workflow": {"name": "1deg"}}`
	for name, body := range map[string]string{
		"no axes":       fmt.Sprintf(`{%s}`, base),
		"unknown axis":  fmt.Sprintf(`{%s, "axes": [{"axis": "spot.rate_per_hr", "values": [1]}]}`, base),
		"bad combo":     fmt.Sprintf(`{%s, "axes": [{"axis": "fleet.reliable", "values": [-3]}]}`, base),
		"unknown field": fmt.Sprintf(`{%s, "axis": []}`, base),
	} {
		resp, _ := postJSON(t, ts.URL+"/v2/sweep", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}

// TestPostBodiesRejectUnknownFields is the table-driven strictness
// guard across every POST endpoint: a misspelled knob is a 400 naming
// the field, not a silently applied default.
func TestPostBodiesRejectUnknownFields(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for name, tc := range map[string]struct{ path, body string }{
		"v1 run top-level": {"/v1/run", `{"workflow":"1deg","procesors":4}`},
		"v1 run spot":      {"/v1/run", `{"workflow":"1deg","spot":{"rate":1}}`},
		"v1 sweep":         {"/v1/sweep", `{"workflow":"1deg","procs":[1,2]}`},
		"v2 run top-level": {"/v2/run", `{"version":2,"workflow":{"name":"1deg"},"fleets":{}}`},
		"v2 run nested":    {"/v2/run", `{"version":2,"workflow":{"name":"1deg"},"spot":{"rate":1}}`},
		"v2 sweep":         {"/v2/sweep", `{"scenario":{"version":2,"workflow":{"name":"1deg"}},"grid":[]}`},
		"v2 experiment":    {"/v2/experiments/scenario-grid", `{"sedd":1}`},
		"v2 run trailing":  {"/v2/run", `{"version":2,"workflow":{"name":"1deg"}} garbage`},
	} {
		resp, body := postJSON(t, ts.URL+tc.path, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", name, resp.StatusCode, body)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: no error document: %s", name, body)
		}
	}
}

func TestAdvisorV2ReturnsPostableScenarios(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := getBody(t, ts.URL+"/v2/advisor?workflow=1deg&processors=4,8")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Recommended *struct {
			Processors int           `json:"processors"`
			Scenario   wire.Scenario `json:"scenario"`
		} `json:"recommended"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Recommended == nil {
		t.Fatal("no recommendation")
	}
	sc := out.Recommended.Scenario
	if sc.Version != 2 || sc.Fleet == nil || sc.Fleet.Processors != out.Recommended.Processors {
		t.Fatalf("recommended scenario is not self-consistent: %+v", sc)
	}
	if sc.Pricing == nil || sc.Pricing.Billing != "provisioned" {
		t.Errorf("recommended scenario billing = %+v, want provisioned", sc.Pricing)
	}
	// Ready to POST: the scenario must run as-is.
	enc, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	runResp, runBody := postJSON(t, ts.URL+"/v2/run", string(enc))
	if runResp.StatusCode != http.StatusOK {
		t.Fatalf("recommended scenario does not run: %d %s", runResp.StatusCode, runBody)
	}
}

func TestExperimentV2ParamsBody(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{
		"grid": {
			"scenario": {"version": 2, "workflow": {"name": "1deg"}, "pricing": {"billing": "provisioned"}},
			"axes": [{"axis": "fleet.processors", "values": [1, 2]}]
		}
	}`
	resp, raw := postJSON(t, ts.URL+"/v2/experiments/scenario-grid", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var out struct {
		Name   string `json:"name"`
		Tables []struct {
			Columns []string   `json:"columns"`
			Rows    [][]string `json:"rows"`
		} `json:"tables"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Name != "scenario-grid" || len(out.Tables) != 1 {
		t.Fatalf("unexpected response: %s", raw)
	}
	if len(out.Tables[0].Rows) != 2 {
		t.Errorf("grid table has %d rows, want 2", len(out.Tables[0].Rows))
	}
	if out.Tables[0].Columns[0] != "fleet.processors" {
		t.Errorf("first column = %q", out.Tables[0].Columns[0])
	}
	// Unknown experiment still 404s on the POST route.
	if resp, _ := postJSON(t, ts.URL+"/v2/experiments/nope", `{}`); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown experiment: status %d, want 404", resp.StatusCode)
	}
	// An empty body runs the canned default grid.
	if resp, _ := postJSON(t, ts.URL+"/v2/experiments/scenario-grid", ""); resp.StatusCode != http.StatusOK {
		t.Errorf("empty params body: status %d, want 200", resp.StatusCode)
	}
}
