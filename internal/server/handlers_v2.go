package server

// The /v2 surface: every endpoint speaks the declarative ScenarioSpec
// (wire.Scenario) instead of the flat v1 request.  /v2/run caches and
// coalesces exactly like /v1/run (in a disjoint key space, since the
// document shapes differ); /v2/sweep generalizes the fixed three-axis
// v1 grid into any-scenario-path axes; /v2/advisor returns each
// recommendation as a ready-to-POST scenario; and /v2/experiments
// accepts experiment parameters -- including a full scenario grid -- as
// a POST body.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"repro"
	"repro/internal/advisor"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/sweep"
	"repro/wire"
)

// ---- POST /v2/run ----

func (s *Server) handleRunV2(w http.ResponseWriter, r *http.Request) {
	var sc wire.Scenario
	if err := decodeBody(r, &sc); err != nil {
		s.fail(w, r, http.StatusBadRequest, err)
		return
	}
	spec, plan, err := sc.Resolve()
	if err != nil {
		s.fail(w, r, http.StatusBadRequest, err)
		return
	}
	// Traced runs bypass the result cache entirely: timeline-bearing
	// documents would bloat the LRU, and the cache key deliberately
	// ignores the trace knob so untraced requests keep hitting the
	// byte-identical cached body.
	if sc.Trace {
		s.serveTracedRun(w, r, spec, plan)
		return
	}
	route := &tierRoute{relayed: r.Header.Get(shard.RelayHeader) != ""}
	if s.ring != nil && !route.relayed {
		raw, err := json.Marshal(sc)
		if err != nil {
			s.fail(w, r, http.StatusInternalServerError, err)
			return
		}
		route.scenario = raw
	}
	s.serveCachedRun(w, r, wire.CanonicalRunKeyV2(spec, plan), route, func(ctx context.Context) ([]byte, error) {
		wf, err := s.wfCache.Generate(spec)
		if err != nil {
			return nil, err
		}
		res, err := repro.RunContext(ctx, wf, plan)
		if err != nil {
			return nil, err
		}
		return wire.NewRunDocumentV2(spec, res).Encode()
	})
}

// runTraced executes one flight-recorded simulation inside a worker
// slot and returns the result together with its recorder.  Shared by
// the POST trace bypass and the GET trace stream.
func (s *Server) runTraced(r *http.Request, spec repro.Spec, plan repro.Plan) (repro.Result, *obs.Recorder, error) {
	release, err := s.admit(r.Context())
	if err != nil {
		return repro.Result{}, nil, err
	}
	defer release()
	wf, err := s.wfCache.Generate(spec)
	if err != nil {
		return repro.Result{}, nil, err
	}
	rec := obs.NewRecorder(0)
	plan.Recorder = rec
	s.metrics.simulations.Add(1)
	res, err := repro.RunContext(r.Context(), wf, plan)
	if err != nil {
		return repro.Result{}, nil, err
	}
	return res, rec, nil
}

// serveTracedRun answers a trace:true POST /v2/run with the full traced
// document (timeline and critical path inline).
func (s *Server) serveTracedRun(w http.ResponseWriter, r *http.Request, spec repro.Spec, plan repro.Plan) {
	res, rec, err := s.runTraced(r, spec, plan)
	if err != nil {
		s.fail(w, r, statusFor(err), err)
		return
	}
	body, err := wire.NewTracedRunDocumentV2(spec, res, rec).Encode()
	if err != nil {
		s.fail(w, r, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", "bypass")
	w.Write(body) //nolint:errcheck
}

// ---- GET /v2/run ----

// handleRunTraceV2 streams a traced run's timeline as NDJSON: one
// {"event": ...} line per flight-recorder event in causal order, then a
// terminal {"done": ...} envelope carrying the event count, the
// critical-path summary and the run's bottom line.  The scenario rides
// the ?scenario= query parameter (URL-encoded JSON); its trace field is
// implied by the route.
func (s *Server) handleRunTraceV2(w http.ResponseWriter, r *http.Request) {
	raw := r.URL.Query().Get("scenario")
	if raw == "" {
		s.fail(w, r, http.StatusBadRequest,
			fmt.Errorf("server: GET /v2/run needs a ?scenario= query parameter (URL-encoded scenario JSON)"))
		return
	}
	var sc wire.Scenario
	if err := wire.DecodeStrict(strings.NewReader(raw), &sc); err != nil {
		s.fail(w, r, http.StatusBadRequest, fmt.Errorf("server: bad scenario: %w", err))
		return
	}
	spec, plan, err := sc.Resolve()
	if err != nil {
		s.fail(w, r, http.StatusBadRequest, err)
		return
	}
	res, rec, err := s.runTraced(r, spec, plan)
	if err != nil {
		s.fail(w, r, statusFor(err), err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	events := rec.Events()
	for i := range events {
		if err := enc.Encode(wire.TraceEnvelope{Event: &events[i]}); err != nil {
			return // client hung up mid-stream; nothing left to tell it
		}
		if flusher != nil && i%256 == 255 {
			flusher.Flush()
		}
	}
	enc.Encode(wire.TraceEnvelope{Done: &wire.TraceDone{ //nolint:errcheck
		Events:       len(events),
		Dropped:      rec.Dropped(),
		CriticalPath: obs.CriticalPath(events, wire.CriticalPathTopK),
		Total:        res.Cost.Total(),
	}})
}

// ---- POST /v2/sweep ----

func (s *Server) handleSweepV2(w http.ResponseWriter, r *http.Request) {
	var req wire.SweepRequest
	if err := decodeBody(r, &req); err != nil {
		s.fail(w, r, http.StatusBadRequest, err)
		return
	}
	// Every point resolves before the first row streams, so a malformed
	// combination is a clean 400 instead of a mid-stream error envelope.
	grid, err := req.ResolveGrid()
	if err != nil {
		s.fail(w, r, http.StatusBadRequest, err)
		return
	}

	// A sweep holds one worker slot; its grid fans out on the sweep
	// engine's own GOMAXPROCS pool, like every nested sweep in the repo.
	release, err := s.admit(r.Context())
	if err != nil {
		s.fail(w, r, statusFor(err), err)
		return
	}
	defer release()

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	rows := 0
	// Rows stream in grid order as soon as each point (and every earlier
	// one) finishes; r.Context() cancellation -- the client hanging up --
	// drains the whole grid.  Workflow generation goes through the
	// bounded server cache: axes over workflow.* make specs vary per
	// point, and each distinct spec pins a multi-thousand-task DAG.
	err = sweep.Stream(r.Context(), 0, grid,
		func(ctx context.Context, i int, p wire.ResolvedPoint) (wire.RunDocumentV2, error) {
			if s.testHookSweepPoint != nil {
				if err := s.testHookSweepPoint(i); err != nil {
					return wire.RunDocumentV2{}, err
				}
			}
			return s.sweepPoint(ctx, p)
		},
		func(i int, doc wire.RunDocumentV2) error {
			row := wire.SweepRow{Index: i, RunDocumentV2: doc}
			if err := enc.Encode(wire.SweepEnvelope{Row: &row}); err != nil {
				return err
			}
			rows++
			if flusher != nil {
				flusher.Flush()
			}
			return nil
		})
	if err != nil {
		if rows == 0 {
			s.fail(w, r, statusFor(err), err)
			return
		}
		// Mid-stream the status line is gone; emit the terminal error
		// envelope instead (unless the client already hung up).
		s.metrics.errors.Add(1)
		if r.Context().Err() == nil {
			enc.Encode(wire.SweepEnvelope{Error: err.Error()}) //nolint:errcheck
		}
		return
	}
	enc.Encode(wire.SweepEnvelope{Done: &wire.SweepDone{Rows: rows}}) //nolint:errcheck
}

// sweepPoint produces one grid point's document through the v2 tiers.
// A point owned by a peer is fetched from it as a standalone /v2/run
// request -- every materialized point scenario is directly POSTable --
// which splits the grid across the pool and warms each owner's caches;
// any peer failure degrades that point to local computation.  Local
// points consult the disk store before simulating and persist what they
// compute, so sweeps both feed and benefit from the same
// content-addressed tier as /v2/run.  Round-tripping a stored or
// relayed body through DecodeStrict is lossless here: result documents
// carry no maps and no custom marshalers, so they re-encode
// byte-identically and a row is the same bytes no matter which tier
// produced it.
func (s *Server) sweepPoint(ctx context.Context, p wire.ResolvedPoint) (wire.RunDocumentV2, error) {
	key := wire.CanonicalRunKeyV2(p.Spec, p.Plan)
	if s.ring != nil {
		if owner := s.ring.Owner(wire.KeyHash(key)); owner != s.self {
			if doc, ok := s.fetchPeerDoc(ctx, owner, p.Scenario); ok {
				return doc, nil
			}
		}
	}
	if s.store != nil {
		if body, ok := s.store.Get(key); ok {
			var doc wire.RunDocumentV2
			if err := wire.DecodeStrict(bytes.NewReader(body), &doc); err == nil {
				return doc, nil
			}
		}
	}
	wf, err := s.wfCache.Generate(p.Spec)
	if err != nil {
		return wire.RunDocumentV2{}, err
	}
	res, err := repro.RunContext(ctx, wf, p.Plan)
	if err != nil {
		return wire.RunDocumentV2{}, err
	}
	doc := wire.NewRunDocumentV2(p.Spec, res)
	if s.store != nil {
		if body, err := doc.Encode(); err == nil {
			s.store.Put(key, body) //nolint:errcheck // a failed persist only costs a future recompute
		}
	}
	return doc, nil
}

// fetchPeerDoc relays one scenario to its owning replica and decodes
// the canonical result body.  false means "compute it here instead":
// the relay path is an optimization, never a dependency.
func (s *Server) fetchPeerDoc(ctx context.Context, owner string, sc wire.Scenario) (wire.RunDocumentV2, bool) {
	raw, err := json.Marshal(sc)
	if err != nil {
		return wire.RunDocumentV2{}, false
	}
	s.metrics.peerFetches.Add(1)
	body, err := s.relay.Run(ctx, owner, raw)
	if err == nil {
		var doc wire.RunDocumentV2
		if err := wire.DecodeStrict(bytes.NewReader(body), &doc); err == nil {
			return doc, true
		}
	}
	s.metrics.peerFailures.Add(1)
	return wire.RunDocumentV2{}, false
}

// ---- GET /v2/advisor ----

// advisorChoiceV2 is one provisioning choice with the scenario that
// reproduces it: the recommendation is directly POSTable to /v2/run.
type advisorChoiceV2 struct {
	Processors  int           `json:"processors"`
	CostDollars float64       `json:"cost_dollars"`
	Hours       float64       `json:"hours"`
	Scenario    wire.Scenario `json:"scenario"`
}

func (s *Server) handleAdvisorV2(w http.ResponseWriter, r *http.Request) {
	aq, opts, ok := s.explore(w, r)
	if !ok {
		return
	}
	choice := func(o advisor.Option) *advisorChoiceV2 {
		plan := aq.plan
		plan.Processors = o.Processors
		return &advisorChoiceV2{
			Processors:  o.Processors,
			CostDollars: o.Cost.Dollars(),
			Hours:       o.Time.Hours(),
			Scenario:    wire.EchoScenario(aq.spec, plan),
		}
	}
	resp := struct {
		Workflow    string           `json:"workflow"`
		Options     []advisorOption  `json:"options"`
		Pareto      []advisorOption  `json:"pareto"`
		Recommended *advisorChoiceV2 `json:"recommended,omitempty"`
		Cheapest    *advisorChoiceV2 `json:"cheapest_within_deadline,omitempty"`
		Fastest     *advisorChoiceV2 `json:"fastest_under_budget,omitempty"`
	}{
		Workflow: aq.spec.Name,
		Options:  toAdvisorOptions(opts),
		Pareto:   toAdvisorOptions(advisor.ParetoFrontier(opts)),
	}
	if rec, err := advisor.Recommend(opts, aq.slack); err == nil {
		resp.Recommended = choice(rec)
	}
	if aq.deadline != nil {
		if o, err := advisor.CheapestWithin(opts, *aq.deadline); err == nil {
			resp.Cheapest = choice(o)
		}
	}
	if aq.budget != nil {
		if o, err := advisor.FastestUnder(opts, *aq.budget); err == nil {
			resp.Fastest = choice(o)
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// ---- POST /v2/experiments/{name} ----

// experimentParamsDoc is the POST body of a v2 experiment invocation:
// the wire form of experiments.Params.  (policy-tournament has its own
// POST route streaming NDJSON; scenario/bundles here serve any future
// table-shaped policy experiments.)
type experimentParamsDoc struct {
	Seed     *int64                 `json:"seed,omitempty"`
	Grid     *wire.SweepRequest     `json:"grid,omitempty"`
	Scenario *wire.Scenario         `json:"scenario,omitempty"`
	Bundles  []wire.PoliciesSection `json:"bundles,omitempty"`
}

func (s *Server) handleExperimentV2(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if _, ok := experiments.Lookup(name); !ok {
		s.fail(w, r, http.StatusNotFound, fmt.Errorf("server: unknown experiment %q", name))
		return
	}
	var doc experimentParamsDoc
	if r.ContentLength != 0 {
		if err := decodeBody(r, &doc); err != nil {
			s.fail(w, r, http.StatusBadRequest, err)
			return
		}
	}
	release, err := s.admit(r.Context())
	if err != nil {
		s.fail(w, r, statusFor(err), err)
		return
	}
	defer release()
	tables, err := experiments.Run(r.Context(), name, experiments.Params{
		Seed: doc.Seed, Grid: doc.Grid, Scenario: doc.Scenario, Bundles: doc.Bundles,
	})
	if err != nil {
		s.fail(w, r, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Name   string     `json:"name"`
		Tables []tableDoc `json:"tables"`
	}{Name: name, Tables: tableDocs(tables)})
}

// ---- POST /v2/experiments/policy-tournament ----

// handleTournamentV2 streams a policy tournament as NDJSON: one row per
// bundle in entry order, then a terminal done envelope carrying the
// ranking (best bundle first).  The exact-path route wins over the
// generic POST /v2/experiments/{name} handler.
func (s *Server) handleTournamentV2(w http.ResponseWriter, r *http.Request) {
	var req wire.TournamentRequest
	if r.ContentLength != 0 {
		if err := decodeBody(r, &req); err != nil {
			s.fail(w, r, http.StatusBadRequest, err)
			return
		}
	}
	base := experiments.DefaultTournamentScenario()
	if req.Scenario != nil {
		base = *req.Scenario
	}
	bundles := experiments.DefaultTournamentBundles()
	if len(req.Bundles) > 0 {
		bundles = req.Bundles
	}
	if req.Seed != nil {
		base = experiments.ReseedSpot(base, *req.Seed)
	}
	// Every entry resolves before the first row streams, so a malformed
	// bundle is a clean 400 instead of a mid-stream error envelope.
	if _, err := experiments.TournamentEntries(base, bundles); err != nil {
		s.fail(w, r, http.StatusBadRequest, err)
		return
	}

	release, err := s.admit(r.Context())
	if err != nil {
		s.fail(w, r, statusFor(err), err)
		return
	}
	defer release()

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	var rows []experiments.TournamentRow
	err = experiments.TournamentStream(r.Context(), base, bundles, func(row experiments.TournamentRow) error {
		doc := wire.TournamentRow{
			Index:         row.Entry.Index,
			Bundle:        row.Entry.Bundle,
			RunDocumentV2: wire.NewRunDocumentV2(row.Entry.Spec, row.Result),
		}
		if err := enc.Encode(wire.TournamentEnvelope{Row: &doc}); err != nil {
			return err
		}
		rows = append(rows, row)
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
	if err != nil {
		if len(rows) == 0 {
			s.fail(w, r, statusFor(err), err)
			return
		}
		s.metrics.errors.Add(1)
		if r.Context().Err() == nil {
			enc.Encode(wire.TournamentEnvelope{Error: err.Error()}) //nolint:errcheck
		}
		return
	}
	enc.Encode(wire.TournamentEnvelope{Done: &wire.TournamentDone{ //nolint:errcheck
		Rows:    len(rows),
		Ranking: experiments.RankTournament(rows),
	}})
}
