package server

import (
	"bytes"
	"fmt"
	"testing"
)

func TestResultCacheHitMiss(t *testing.T) {
	c := newResultCache(4)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", []byte("alpha"))
	body, ok := c.Get("a")
	if !ok || !bytes.Equal(body, []byte("alpha")) {
		t.Fatalf("Get(a) = %q, %v", body, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 1 entry", st)
	}
}

func TestResultCacheLRUBound(t *testing.T) {
	c := newResultCache(3)
	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprintf("k%d", i), []byte{byte(i)})
	}
	// Touch k0 so k1 becomes the least recently used.
	if _, ok := c.Get("k0"); !ok {
		t.Fatal("k0 missing before eviction")
	}
	c.Put("k3", []byte{3})
	if st := c.Stats(); st.Entries != 3 || st.Evictions != 1 {
		t.Fatalf("stats after eviction = %+v, want 3 entries / 1 eviction", st)
	}
	if _, ok := c.Get("k1"); ok {
		t.Error("LRU entry k1 survived eviction")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("recent entry %s evicted", k)
		}
	}
}

func TestResultCachePutRefreshesRecency(t *testing.T) {
	c := newResultCache(2)
	c.Put("a", []byte("1"))
	c.Put("b", []byte("2"))
	c.Put("a", []byte("1")) // refresh a; b is now LRU
	c.Put("c", []byte("3"))
	if _, ok := c.Get("b"); ok {
		t.Error("refreshed entry was evicted instead of the stale one")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("refreshed entry missing")
	}
}

func TestResultCacheUnbounded(t *testing.T) {
	c := newResultCache(0)
	for i := 0; i < 100; i++ {
		c.Put(fmt.Sprintf("k%d", i), nil)
	}
	if st := c.Stats(); st.Entries != 100 || st.Evictions != 0 {
		t.Errorf("unbounded cache stats = %+v", st)
	}
}
