// Package server puts the deterministic Montage simulator behind a
// long-running HTTP daemon: the paper's Figure-2 scenario -- a mosaic
// portal fielding a stream of requests -- made literal.  cmd/reprosrv is
// the thin binary around it.
//
// Endpoints:
//
//	POST /v2/run                one simulation from a declarative v2
//	                            scenario document (cached, coalesced;
//	                            trace:true returns the flight-recorder
//	                            timeline and bypasses the cache)
//	GET  /v2/run                the same run streamed as an NDJSON
//	                            flight-recorder trace (?scenario= is the
//	                            URL-encoded scenario document)
//	POST /v2/sweep              any-axis scenario grid ({axis, values}
//	                            pairs over any scenario path), streamed
//	                            as NDJSON rows in grid order
//	GET  /v2/experiments        the registered paper experiments
//	GET  /v2/experiments/{name} run one experiment (tables as JSON)
//	POST /v2/experiments/{name} run one experiment with a params body
//	                            ({"seed": ..., "grid": {...}})
//	GET  /v2/advisor            provisioning recommendations, each one a
//	                            ready-to-POST v2 scenario
//	POST /v1/run                deprecated flat request; upgraded into a
//	                            v2 scenario internally
//	POST /v1/sweep              deprecated processors/modes/CCR grid
//	GET  /v1/experiments        as /v2/experiments
//	GET  /v1/experiments/{name} as GET /v2/experiments/{name}
//	GET  /v1/advisor            deprecated advisor (no scenarios)
//	GET  /healthz               liveness
//	GET  /metrics               Prometheus text exposition
//
// Every simulation is a deterministic function of its (spec, plan)
// pair, which buys three things at once: responses are cacheable (a
// size-bounded LRU keyed by repro.CanonicalRunKey stores the marshaled
// bytes, so a hit is byte-identical to a cold run); concurrent identical
// requests coalesce singleflight-style into one simulation; and admitted
// work runs on a bounded worker pool with per-request context
// cancellation, so a client hanging up aborts its grid and SIGTERM
// drains in-flight requests before the process exits.
//
// The same determinism extends the v2 cache beyond the process:
// Config.StoreDir adds a disk-backed content-addressed tier
// (internal/store) that survives restarts, and Config.Peers shards the
// key space across a replica pool on a consistent-hash ring
// (internal/shard), relaying each /v2/run to its owner and scattering
// /v2/sweep grids per point.  The tier order is memory -> disk ->
// owning peer -> compute; every tier serves byte-identical documents,
// and any store or peer failure degrades to the next tier, never to an
// error.
package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/montage"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/wire"
)

// Config sizes the daemon.  The zero value picks sensible defaults.
type Config struct {
	// MaxConcurrent bounds how many simulations run at once; <= 0 means
	// GOMAXPROCS.  (Grid endpoints hold one slot and fan out internally
	// on the sweep engine's own GOMAXPROCS pool, matching how the CLI
	// nests sweeps.)
	MaxConcurrent int
	// QueueDepth bounds how many admitted requests may wait for a worker
	// slot before new ones are refused with 503; <= 0 means 64.
	QueueDepth int
	// CacheEntries bounds the LRU result cache; <= 0 means 1024.
	CacheEntries int
	// WorkflowCacheEntries bounds the server's workflow-generation memo.
	// Requests choose arbitrary mosaic sizes and every distinct spec
	// pins a multi-thousand-task DAG, so unlike the CLI's preset-only
	// process cache this one must be bounded; <= 0 means 64.
	WorkflowCacheEntries int
	// DrainTimeout caps how long Serve waits for in-flight requests
	// after its context is canceled; <= 0 means 30s.
	DrainTimeout time.Duration
	// StoreDir, when non-empty, enables the disk-backed content-addressed
	// result store (internal/store): a second cache tier under the LRU
	// that survives restarts and can be shared by replicas on one volume.
	StoreDir string
	// StoreMaxBytes bounds the disk store; <= 0 means 1 GiB.  Eviction is
	// least-recently-used.
	StoreMaxBytes int64
	// Peers, when non-empty, is the full replica set of a sharded pool --
	// every member's advertised host:port, this replica included.  The
	// consistent-hash ring over it routes /v2/run by canonical-key hash
	// and splits /v2/sweep grids across owners.
	Peers []string
	// Self is this replica's own address as it appears in Peers.
	// Required when Peers is set.
	Self string
	// PeerTimeout caps one relay round trip to a peer; <= 0 means 30s.
	// A peer that misses it degrades that request to local computation.
	PeerTimeout time.Duration
	// Version is the build version surfaced on reprosrv_build_info and
	// /healthz; empty means "dev".
	Version string
	// Logger receives one structured line per request (request ID,
	// endpoint, status, latency); nil discards them.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 1024
	}
	if c.WorkflowCacheEntries <= 0 {
		c.WorkflowCacheEntries = 64
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.StoreMaxBytes <= 0 {
		c.StoreMaxBytes = 1 << 30
	}
	return c
}

// Server is the simulation service.  Create it with New; it is safe for
// concurrent use by the HTTP stack.
type Server struct {
	cfg      Config
	mux      *http.ServeMux
	cache    *resultCache
	wfCache  *montage.Cache
	flights  flightGroup
	metrics  *metrics
	sem      chan struct{}
	waiting  atomic.Int64
	logger   *slog.Logger
	ridNonce string
	ridSeq   atomic.Uint64

	// store is the disk tier under the LRU; nil when StoreDir is unset.
	store *store.Store
	// ring/relay shard the v2 key space across Peers; nil off a pool.
	ring  *shard.Ring
	relay *shard.Client
	self  string

	// testHookPreSim, when set by tests in this package, runs inside the
	// worker slot just before a /v1/run simulation starts.
	testHookPreSim func()
	// testHookSweepPoint, when set by tests in this package, runs before
	// each sweep grid point simulates; returning an error fails that
	// point, which is how tests force a mid-stream failure.
	testHookSweepPoint func(index int) error
}

// New builds a server from the config.  It fails when the result store
// directory cannot be opened or the shard configuration is inconsistent
// (Peers without Self, or Self missing from Peers) -- a replica that
// silently dropped its persistence or its ring position would defeat
// both subsystems.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(discardLogs{})
	}
	s := &Server{
		cfg:      cfg,
		cache:    newResultCache(cfg.CacheEntries),
		wfCache:  montage.NewCache(cfg.WorkflowCacheEntries),
		metrics:  newMetrics(cfg.Version),
		sem:      make(chan struct{}, cfg.MaxConcurrent),
		logger:   logger,
		ridNonce: newRequestIDNonce(),
	}
	if cfg.StoreDir != "" {
		st, err := store.Open(cfg.StoreDir, store.Options{
			MaxBytes:    cfg.StoreMaxBytes,
			WireVersion: wire.Version,
		})
		if err != nil {
			return nil, err
		}
		s.store = st
	}
	if len(cfg.Peers) > 0 {
		if cfg.Self == "" {
			return nil, fmt.Errorf("server: a peer set needs Self, this replica's own address in it")
		}
		ring, err := shard.New(cfg.Peers)
		if err != nil {
			return nil, err
		}
		if !ring.Contains(cfg.Self) {
			return nil, fmt.Errorf("server: Self %q is not in the peer set %v", cfg.Self, ring.Members())
		}
		s.ring = ring
		s.self = cfg.Self
		s.relay = shard.NewClient(cfg.PeerTimeout)
	}
	// Endpoint labels are the stable metrics keys of the routes: every
	// route is wrapped by instrument (request ID + counter + latency
	// histogram + one structured log line).
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", s.instrument("run", s.handleRun))
	mux.HandleFunc("POST /v1/sweep", s.instrument("sweep", s.handleSweep))
	mux.HandleFunc("GET /v1/experiments", s.instrument("experiments", s.handleExperiments))
	mux.HandleFunc("GET /v1/experiments/{name}", s.instrument("experiment", s.handleExperiment))
	mux.HandleFunc("GET /v1/advisor", s.instrument("advisor", s.handleAdvisor))
	mux.HandleFunc("POST /v2/run", s.instrument("run_v2", s.handleRunV2))
	mux.HandleFunc("GET /v2/run", s.instrument("trace_v2", s.handleRunTraceV2))
	mux.HandleFunc("POST /v2/sweep", s.instrument("sweep_v2", s.handleSweepV2))
	mux.HandleFunc("GET /v2/experiments", s.instrument("experiments", s.handleExperiments))
	mux.HandleFunc("GET /v2/experiments/{name}", s.instrument("experiment", s.handleExperiment))
	mux.HandleFunc("POST /v2/experiments/{name}", s.instrument("experiment_v2", s.handleExperimentV2))
	mux.HandleFunc("POST /v2/experiments/policy-tournament", s.instrument("tournament_v2", s.handleTournamentV2))
	mux.HandleFunc("GET /v2/advisor", s.instrument("advisor_v2", s.handleAdvisorV2))
	mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealth))
	mux.HandleFunc("GET /metrics", s.instrument("metrics", s.handleMetrics))
	s.mux = mux
	return s, nil
}

// Handler returns the service's HTTP handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// errBusy is returned by admit when the wait queue is full.
var errBusy = errors.New("server: at capacity, try again later")

// admit blocks until a worker slot is free (or ctx is done) and returns
// the release function for the slot.  At most QueueDepth requests may
// wait; beyond that admit fails fast with errBusy so a overload degrades
// into quick 503s instead of an unbounded queue.
func (s *Server) admit(ctx context.Context) (release func(), err error) {
	if s.waiting.Add(1) > int64(s.cfg.QueueDepth) {
		s.waiting.Add(-1)
		s.metrics.rejected.Add(1)
		return nil, errBusy
	}
	s.metrics.queued.Add(1)
	defer func() {
		s.waiting.Add(-1)
		s.metrics.queued.Add(-1)
	}()
	select {
	case s.sem <- struct{}{}:
		s.metrics.inflight.Add(1)
		return func() {
			<-s.sem
			s.metrics.inflight.Add(-1)
		}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Serve accepts connections on l until ctx is canceled, then drains:
// in-flight requests get up to DrainTimeout to finish before the
// process gives up on them.  It returns nil on a clean drain.
func (s *Server) Serve(ctx context.Context, l net.Listener) error {
	srv := &http.Server{
		Handler: s.Handler(),
		// Sweeps over 4-degree workflows stream for a while; only bound
		// the read side (headers + small JSON bodies).
		ReadHeaderTimeout: 10 * time.Second,
	}
	shutdownErr := make(chan error, 1)
	//repro:detached shutdown watcher is joined via shutdownErr only on the graceful-drain path; on listener error or external close it exits with the process
	go func() {
		<-ctx.Done()
		dctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
		defer cancel()
		shutdownErr <- srv.Shutdown(dctx)
	}()
	if err := srv.Serve(l); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if ctx.Err() == nil {
		// Serve returned without a shutdown (listener closed externally).
		return nil
	}
	return <-shutdownErr
}
