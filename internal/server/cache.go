package server

import (
	"container/list"
	"sync"
)

// resultCache is a size-bounded LRU of canonical response bodies keyed
// by repro.CanonicalRunKey.  Simulations are deterministic, so a cached
// body is byte-identical to what re-simulating would produce; serving
// the stored bytes verbatim is both the fast path and the correctness
// guarantee.
type resultCache struct {
	mu      sync.Mutex
	limit   int
	entries map[string]*list.Element
	order   *list.List // of *cacheItem; front = most recently used
	hits    uint64
	misses  uint64
	evicted uint64
}

type cacheItem struct {
	key  string
	body []byte
}

// CacheStats is a snapshot of the result cache's counters.
type CacheStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Entries   int
}

// newResultCache returns a cache bounded to limit entries (<= 0 means
// unbounded).
func newResultCache(limit int) *resultCache {
	return &resultCache{
		limit:   limit,
		entries: make(map[string]*list.Element),
		order:   list.New(),
	}
}

// Get returns the cached body for key, marking it most recently used.
func (c *resultCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(e)
	return e.Value.(*cacheItem).body, true
}

// Put stores body under key, evicting the least-recently-used entries
// beyond the bound.  Storing an existing key refreshes its recency; the
// body is identical by construction (deterministic simulations), so
// which copy survives is immaterial.
func (c *resultCache) Put(key string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		c.order.MoveToFront(e)
		e.Value.(*cacheItem).body = body
		return
	}
	c.entries[key] = c.order.PushFront(&cacheItem{key: key, body: body})
	for c.limit > 0 && len(c.entries) > c.limit {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheItem).key)
		c.evicted++
	}
}

// Stats snapshots the counters.
func (c *resultCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Evictions: c.evicted, Entries: len(c.entries)}
}
