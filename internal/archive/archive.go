// Package archive answers the paper's data-archival economics questions:
//
//   - Question 2b: when does keeping a large input archive (the 12 TB
//     2MASS survey) in cloud storage pay for itself, versus staging
//     inputs in for every request?
//   - Question 3: what does the mosaic of the entire sky cost, and for
//     how long is it cheaper to store a generated mosaic than to
//     recompute it on demand?
package archive

import (
	"fmt"
	"math"

	"repro/internal/cost"
	"repro/internal/units"
)

// TwoMASSArchiveBytes is the size of the full 2MASS survey (images of
// the entire sky in three bands), per §6 of the paper.
const TwoMASSArchiveBytes = units.Bytes(12 * units.TB)

// Whole-sky tiling options from Question 3.
const (
	// WholeSky4DegMosaics is the number of 4-degree-square plates that
	// tile the sky (with overlap) in three bands.
	WholeSky4DegMosaics = 3900
	// WholeSky6DegMosaics is the 6-degree-square alternative.
	WholeSky6DegMosaics = 1734
)

// BreakEven is the outcome of the Question-2b analysis.
type BreakEven struct {
	// MonthlyStorageCost of keeping the archive resident ($1,800/month
	// for 2MASS at 2008 rates).
	MonthlyStorageCost units.Money
	// OneTimeUploadCost of moving the archive into the cloud ($1,200).
	OneTimeUploadCost units.Money
	// CostPerRequestStaged is a request's cost when inputs are staged in
	// from outside the cloud.
	CostPerRequestStaged units.Money
	// CostPerRequestArchived is a request's cost when inputs are already
	// in cloud storage (no transfer-in charge).
	CostPerRequestArchived units.Money
	// SavingsPerRequest is the difference.
	SavingsPerRequest units.Money
	// RequestsPerMonth is the request rate at which archive storage pays
	// for itself (+Inf when there are no savings).
	RequestsPerMonth float64
}

// String summarizes the analysis.
func (b BreakEven) String() string {
	return fmt.Sprintf("archive %v/month (+%v upload), request %v staged vs %v archived -> break-even %.0f requests/month",
		b.MonthlyStorageCost, b.OneTimeUploadCost,
		b.CostPerRequestStaged, b.CostPerRequestArchived, b.RequestsPerMonth)
}

// ComputeBreakEven carries out the Question-2b arithmetic.
//
// archiveSize is the resident dataset; requestCost is the full cost of
// one request when inputs are staged from outside (its TransferIn
// component is the saving an in-cloud archive realizes, exactly the
// paper's $2.22 vs $2.12 comparison for the 2-degree mosaic).
func ComputeBreakEven(p cost.Pricing, archiveSize units.Bytes, requestCost cost.Breakdown) (BreakEven, error) {
	if err := p.Validate(); err != nil {
		return BreakEven{}, err
	}
	if archiveSize <= 0 {
		return BreakEven{}, fmt.Errorf("archive: non-positive archive size %d", archiveSize)
	}
	be := BreakEven{
		MonthlyStorageCost:     p.MonthlyStorage(archiveSize),
		OneTimeUploadCost:      p.TransferInCost(archiveSize),
		CostPerRequestStaged:   requestCost.Total(),
		CostPerRequestArchived: requestCost.Total() - requestCost.TransferIn,
		SavingsPerRequest:      requestCost.TransferIn,
	}
	if be.SavingsPerRequest > 0 {
		be.RequestsPerMonth = float64(be.MonthlyStorageCost / be.SavingsPerRequest)
	} else {
		be.RequestsPerMonth = inf()
	}
	return be, nil
}

// StorageHorizon is the Question-3 store-vs-recompute analysis for one
// generated data product.
type StorageHorizon struct {
	ProductBytes  units.Bytes
	RecomputeCost units.Money // what regenerating the product costs (the paper uses its CPU cost)
	MonthlyCost   units.Money // storing the product for one month
	Months        float64     // how long storage stays cheaper than recomputation
}

// String summarizes the horizon.
func (h StorageHorizon) String() string {
	return fmt.Sprintf("%v product, %v to recompute, %v/month to store -> worth storing %.2f months",
		h.ProductBytes, h.RecomputeCost, h.MonthlyCost, h.Months)
}

// ComputeStorageHorizon returns how many months a product of the given
// size can be stored for its recomputation cost.  The paper's examples:
// the 173.46 MB 1-degree mosaic with a $0.56 CPU cost stores for 21.52
// months.
func ComputeStorageHorizon(p cost.Pricing, productSize units.Bytes, recomputeCost units.Money) (StorageHorizon, error) {
	if err := p.Validate(); err != nil {
		return StorageHorizon{}, err
	}
	if productSize <= 0 {
		return StorageHorizon{}, fmt.Errorf("archive: non-positive product size %d", productSize)
	}
	if recomputeCost < 0 {
		return StorageHorizon{}, fmt.Errorf("archive: negative recompute cost %v", recomputeCost)
	}
	monthly := p.MonthlyStorage(productSize)
	h := StorageHorizon{
		ProductBytes:  productSize,
		RecomputeCost: recomputeCost,
		MonthlyCost:   monthly,
	}
	if monthly > 0 {
		h.Months = float64(recomputeCost / monthly)
	} else {
		h.Months = inf()
	}
	return h, nil
}

// SkyCampaign is the Question-3 whole-sky costing.
type SkyCampaign struct {
	Mosaics               int
	CostPerMosaic         units.Money
	TotalCost             units.Money
	CostPerMosaicArchived units.Money // inputs already in the cloud
	TotalCostArchived     units.Money
}

// String summarizes the campaign.
func (c SkyCampaign) String() string {
	return fmt.Sprintf("%d mosaics x %v = %v (archived inputs: %v)",
		c.Mosaics, c.CostPerMosaic, c.TotalCost, c.TotalCostArchived)
}

// ComputeSkyCampaign prices generating n mosaics from the per-request
// breakdown, both with inputs staged per request and with inputs already
// archived in the cloud (the paper's 3,900 x $8.88 = $34,632 versus
// 3,900 x $8.75).
func ComputeSkyCampaign(requestCost cost.Breakdown, n int) (SkyCampaign, error) {
	if n <= 0 {
		return SkyCampaign{}, fmt.Errorf("archive: non-positive mosaic count %d", n)
	}
	per := requestCost.Total()
	perArch := per - requestCost.TransferIn
	return SkyCampaign{
		Mosaics:               n,
		CostPerMosaic:         per,
		TotalCost:             per * units.Money(n),
		CostPerMosaicArchived: perArch,
		TotalCostArchived:     perArch * units.Money(n),
	}, nil
}

func inf() float64 { return math.Inf(1) }
