package archive

import (
	"math"
	"strings"
	"testing"

	"repro/internal/cost"
	"repro/internal/units"
)

func almostF(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestArchiveConstants(t *testing.T) {
	if TwoMASSArchiveBytes != units.Bytes(12*units.TB) {
		t.Errorf("2MASS archive = %d bytes, want 12 TB", TwoMASSArchiveBytes)
	}
	if WholeSky4DegMosaics != 3900 || WholeSky6DegMosaics != 1734 {
		t.Error("whole-sky tiling constants do not match the paper")
	}
}

func TestBreakEvenPaperArithmetic(t *testing.T) {
	// Reconstruct the paper's own numbers: a 2-degree request costing
	// $2.22 staged with a $0.10 transfer-in component, against the 12 TB
	// archive: $1,800 / $0.10 = 18,000 requests/month.
	p := cost.Amazon2008()
	req := cost.Breakdown{CPU: 2.03, Storage: 0.0007, TransferIn: 0.10, TransferOut: 0.0893}
	be, err := ComputeBreakEven(p, TwoMASSArchiveBytes, req)
	if err != nil {
		t.Fatal(err)
	}
	if !almostF(float64(be.MonthlyStorageCost), 1800, 1e-9) {
		t.Errorf("monthly storage = %v, want $1800", be.MonthlyStorageCost)
	}
	if !almostF(float64(be.OneTimeUploadCost), 1200, 1e-9) {
		t.Errorf("upload = %v, want $1200", be.OneTimeUploadCost)
	}
	if !almostF(be.RequestsPerMonth, 18000, 1) {
		t.Errorf("break-even = %v requests/month, want 18000", be.RequestsPerMonth)
	}
	if !almostF(float64(be.CostPerRequestArchived), 2.12, 1e-9) {
		t.Errorf("archived request = %v, want $2.12", be.CostPerRequestArchived)
	}
	if !strings.Contains(be.String(), "requests/month") {
		t.Error("String() missing summary")
	}
}

func TestBreakEvenNoSavings(t *testing.T) {
	p := cost.Amazon2008()
	req := cost.Breakdown{CPU: 1} // no transfer-in component
	be, err := ComputeBreakEven(p, TwoMASSArchiveBytes, req)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(be.RequestsPerMonth, 1) {
		t.Errorf("break-even = %v, want +Inf", be.RequestsPerMonth)
	}
}

func TestBreakEvenValidation(t *testing.T) {
	p := cost.Amazon2008()
	if _, err := ComputeBreakEven(p, 0, cost.Breakdown{}); err == nil {
		t.Error("zero archive size accepted")
	}
	bad := p
	bad.CPUPerHour = -1
	if _, err := ComputeBreakEven(bad, 1, cost.Breakdown{}); err == nil {
		t.Error("invalid pricing accepted")
	}
}

func TestStorageHorizonPaperAnchors(t *testing.T) {
	// §6 Q3: 173.46 MB/$0.56 -> 21.52 months; 557.9 MB/$2.03 -> 24.25;
	// 2.229 GB/$8.40 -> 25.12.
	p := cost.Amazon2008()
	cases := []struct {
		size   units.Bytes
		cpu    units.Money
		months float64
	}{
		{units.Bytes(173.46 * units.MB), 0.56, 21.52},
		{units.Bytes(557.9 * units.MB), 2.03, 24.25},
		{units.Bytes(2.229 * units.GB), 8.40, 25.12},
	}
	for _, tc := range cases {
		h, err := ComputeStorageHorizon(p, tc.size, tc.cpu)
		if err != nil {
			t.Fatal(err)
		}
		if !almostF(h.Months, tc.months, 0.02) {
			t.Errorf("horizon(%v, %v) = %.2f months, want %.2f", tc.size, tc.cpu, h.Months, tc.months)
		}
		if h.String() == "" {
			t.Error("empty String()")
		}
	}
}

func TestStorageHorizonEdgeCases(t *testing.T) {
	p := cost.Amazon2008()
	if _, err := ComputeStorageHorizon(p, 0, 1); err == nil {
		t.Error("zero product size accepted")
	}
	if _, err := ComputeStorageHorizon(p, 100, -1); err == nil {
		t.Error("negative recompute cost accepted")
	}
	free := p
	free.StoragePerGBMonth = 0
	h, err := ComputeStorageHorizon(free, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(h.Months, 1) {
		t.Errorf("free storage horizon = %v, want +Inf", h.Months)
	}
}

func TestSkyCampaignPaperArithmetic(t *testing.T) {
	// §6 Q3: 3,900 x $8.88 = $34,632 staged; $8.75 archived.
	req := cost.Breakdown{CPU: 8.40, Storage: 0.0, TransferIn: 0.13, TransferOut: 0.35}
	c, err := ComputeSkyCampaign(req, WholeSky4DegMosaics)
	if err != nil {
		t.Fatal(err)
	}
	if !almostF(float64(c.TotalCost), 34632, 0.5) {
		t.Errorf("total = %v, want ~$34,632", c.TotalCost)
	}
	if !almostF(float64(c.CostPerMosaicArchived), 8.75, 1e-9) {
		t.Errorf("archived per-mosaic = %v, want $8.75", c.CostPerMosaicArchived)
	}
	if !almostF(float64(c.TotalCostArchived), 34125, 0.5) {
		t.Errorf("archived total = %v, want ~$34,125", c.TotalCostArchived)
	}
	if c.String() == "" {
		t.Error("empty String()")
	}
	if _, err := ComputeSkyCampaign(req, 0); err == nil {
		t.Error("zero mosaic count accepted")
	}
}
