package policy

// The built-in policies: the historical defaults plus the competitors
// the policy tournament ranks against them.  All are parameterless pure
// functions, so a bundle of names fully determines behavior.

import (
	"math"

	"repro/internal/dag"
	"repro/internal/units"
)

func init() {
	RegisterPlacement(rankPlacement{})
	RegisterPlacement(heftPlacement{})
	RegisterPlacement(fifoPlacement{})

	RegisterVictim(deterministicVictim{})
	RegisterVictim(costAwareVictim{})
	RegisterVictim(leastProgressVictim{})

	RegisterCheckpoint(intervalTrigger{})
	RegisterCheckpoint(adaptiveTrigger{})
	RegisterCheckpoint(riskTrigger{})

	RegisterSizing(staticSizing{})
	RegisterSizing(fractionSizing{name: "quarter", num: 1, den: 4})
	RegisterSizing(fractionSizing{name: "half", num: 1, den: 2})
}

// ---- placement ----

// rankPlacement is the historical default: runtime-weighted upward
// ranks, so critical-path tasks claim the reliable slots first.
type rankPlacement struct{}

func (rankPlacement) Name() string { return DefaultPlacement }

func (rankPlacement) Priorities(wf *dag.Workflow, _ PlacementContext) []float64 {
	ranks := wf.UpwardRanks()
	out := make([]float64, len(ranks))
	for i, r := range ranks {
		out[i] = float64(r)
	}
	return out
}

// heftPlacement ranks tasks HEFT-style: upward ranks weighting both
// computation and the data each dependency edge must move at the run's
// bandwidth.  Tasks whose completion unblocks the longest
// compute-plus-transfer chain -- the earliest-finish-critical work --
// claim the reliable slots first.
type heftPlacement struct{}

func (heftPlacement) Name() string { return "heft" }

func (heftPlacement) Priorities(wf *dag.Workflow, ctx PlacementContext) []float64 {
	ranks := wf.HEFTRanks(ctx.Bandwidth)
	out := make([]float64, len(ranks))
	for i, r := range ranks {
		out[i] = float64(r)
	}
	return out
}

// fifoPlacement keeps the ready-queue order: reliable slots go to
// whichever tasks the list scheduler dequeues first, with no
// critical-path awareness.  The naive baseline competitor.
type fifoPlacement struct{}

func (fifoPlacement) Name() string { return "fifo" }

func (fifoPlacement) Priorities(*dag.Workflow, PlacementContext) []float64 { return nil }

// ---- victim selection ----

// deterministicVictim is the historical default: kill the most recently
// started attempts first (the least sunk wall-clock work), task ID
// descending as the tie-break.
type deterministicVictim struct{}

func (deterministicVictim) Name() string { return DefaultVictim }

func (deterministicVictim) Score(c VictimCandidate) float64 { return float64(c.Start) }

// costAwareVictim kills the attempt whose death burns the least billed
// CPU: elapsed wall-clock minus the progress already durably
// checkpointed.  A freshly restarted task that just restored a large
// checkpoint is cheap to kill again; an hour of unbanked work is not.
type costAwareVictim struct{}

func (costAwareVictim) Name() string { return "cost-aware" }

func (costAwareVictim) Score(c VictimCandidate) float64 { return -float64(c.WastedIfKilled()) }

// leastProgressVictim kills the attempt of the task farthest from
// completion: tasks near the finish line keep their slot, minimizing
// the work the workflow re-queues.
type leastProgressVictim struct{}

func (leastProgressVictim) Name() string { return "least-progress" }

func (leastProgressVictim) Score(c VictimCandidate) float64 { return -c.Progress() }

// ---- checkpoint triggering ----

// intervalTrigger is the historical default: checkpoint every configured
// interval of useful compute, regardless of where the attempt runs.
type intervalTrigger struct{}

func (intervalTrigger) Name() string { return DefaultCheckpoint }

func (intervalTrigger) EffectiveInterval(ctx CheckpointContext) units.Duration {
	return ctx.Interval
}

// adaptiveTrigger spaces checkpoints with the Young/Daly first-order
// optimum sqrt(2 * overhead * MTBF), where the mean time between
// failures is the inverse of the per-instance spot reclaim rate.
// Attempts on reliable capacity (which no reclaim can touch) and runs
// with no declared hazard rate skip straight to the base behavior:
// reliable attempts write no periodic checkpoints at all, spot attempts
// under an external schedule keep the configured interval.
type adaptiveTrigger struct{}

func (adaptiveTrigger) Name() string { return "adaptive" }

func (adaptiveTrigger) EffectiveInterval(ctx CheckpointContext) units.Duration {
	if ctx.OnReliable {
		return ctx.Remaining // nothing can kill this attempt; finishing is durable
	}
	if ctx.SpotRatePerHour <= 0 || ctx.Overhead <= 0 {
		return ctx.Interval
	}
	mtbf := units.SecondsPerHour / ctx.SpotRatePerHour
	iv := units.Duration(math.Sqrt(2 * float64(ctx.Overhead) * mtbf))
	if iv < 1 {
		iv = 1 // floor the spacing: sub-second checkpointing is all overhead
	}
	return iv
}

// riskTrigger writes no periodic checkpoints at all: it banks progress
// only when a reclaim warning arrives, via the shared warning-window
// emergency checkpoint.  Zero steady-state overhead bought with maximum
// exposure to warningless kills.
type riskTrigger struct{}

func (riskTrigger) Name() string { return "risk" }

func (riskTrigger) EffectiveInterval(ctx CheckpointContext) units.Duration {
	return ctx.Remaining
}

// ---- pool sizing ----

// staticSizing is the historical default: the scenario's configured
// reliable/spot split, unchanged.
type staticSizing struct{}

func (staticSizing) Name() string { return DefaultSizing }

func (staticSizing) Reliable(_, configured int, _ bool) int { return configured }

// fractionSizing pins a fixed fraction of the fleet as the reliable
// floor while the spot market can actually revoke capacity, clamped to
// leave at least one revocable slot; under a calm market (no reclaims
// possible) a reliable floor buys nothing, so the configured split is
// kept.  Registered as "quarter" (procs/4) and "half" (procs/2).
type fractionSizing struct {
	name     string
	num, den int
}

func (f fractionSizing) Name() string { return f.name }

func (f fractionSizing) Reliable(procs, configured int, spotActive bool) int {
	if !spotActive {
		return configured
	}
	r := (procs*f.num + f.den - 1) / f.den // ceil(procs * num/den)
	if r > procs-1 {
		r = procs - 1
	}
	if r < 0 {
		r = 0
	}
	return r
}
