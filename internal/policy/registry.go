package policy

// String-keyed policy registries.  Registration happens in package
// init (builtin.go) and, for experimental policies, from other
// packages' init functions; lookups after init are read-only, so a
// plain RWMutex keeps the registries safe for concurrent resolution
// inside the server's worker pool.

import (
	"fmt"
	"sort"
	"sync"
)

var (
	regMu      sync.RWMutex
	placements = map[string]Placement{}
	victims    = map[string]Victim{}
	triggers   = map[string]CheckpointTrigger{}
	sizings    = map[string]PoolSizing{}
)

func register[P interface{ Name() string }](kind string, reg map[string]P, p P) {
	regMu.Lock()
	defer regMu.Unlock()
	name := p.Name()
	if name == "" {
		panic(fmt.Sprintf("policy: %s policy with an empty name", kind))
	}
	if _, dup := reg[name]; dup {
		panic(fmt.Sprintf("policy: duplicate %s policy %q", kind, name))
	}
	reg[name] = p
}

func lookup[P any](reg map[string]P, name string) (P, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	p, ok := reg[name]
	return p, ok
}

func names[P any](reg map[string]P) []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(reg))
	for n := range reg {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// RegisterPlacement adds a placement policy; duplicate names panic.
func RegisterPlacement(p Placement) { register("placement", placements, p) }

// RegisterVictim adds a victim policy; duplicate names panic.
func RegisterVictim(v Victim) { register("victim", victims, v) }

// RegisterCheckpoint adds a checkpoint trigger; duplicate names panic.
func RegisterCheckpoint(t CheckpointTrigger) { register("checkpoint", triggers, t) }

// RegisterSizing adds a pool-sizing policy; duplicate names panic.
func RegisterSizing(s PoolSizing) { register("pool-sizing", sizings, s) }

// LookupPlacement finds a placement policy; "" means the default.
func LookupPlacement(name string) (Placement, bool) {
	if name == "" {
		name = DefaultPlacement
	}
	return lookup(placements, name)
}

// LookupVictim finds a victim policy; "" means the default.
func LookupVictim(name string) (Victim, bool) {
	if name == "" {
		name = DefaultVictim
	}
	return lookup(victims, name)
}

// LookupCheckpoint finds a checkpoint trigger; "" means the default.
func LookupCheckpoint(name string) (CheckpointTrigger, bool) {
	if name == "" {
		name = DefaultCheckpoint
	}
	return lookup(triggers, name)
}

// LookupSizing finds a pool-sizing policy; "" means the default.
func LookupSizing(name string) (PoolSizing, bool) {
	if name == "" {
		name = DefaultSizing
	}
	return lookup(sizings, name)
}

// Placements lists the registered placement policy names, sorted.
func Placements() []string { return names(placements) }

// Victims lists the registered victim policy names, sorted.
func Victims() []string { return names(victims) }

// Checkpoints lists the registered checkpoint trigger names, sorted.
func Checkpoints() []string { return names(triggers) }

// Sizings lists the registered pool-sizing policy names, sorted.
func Sizings() []string { return names(sizings) }
