// Package policy turns the scheduling and recovery decisions of the
// simulator into named, composable policies.
//
// The paper's study hard-codes one strategy: upward-rank placement onto
// the reliable sub-pool, latest-start victim selection under spot
// reclaims, fixed-interval checkpointing, and a static reliable/spot
// fleet split.  This package carves each of those decision points into
// an interface with a string-keyed registry, re-registers the historical
// behavior as the default, and adds competitors -- so a v2 scenario
// document can name its policies, sweeps can use policy names as axes,
// and tournaments can rank policy bundles against each other.
//
// Four decision points, four interfaces:
//
//   - Placement: which ready task claims a reliable slot of a mixed
//     fleet ("rank" is the default).
//   - Victim: which running spot attempt a capacity reclaim kills
//     ("deterministic" is the default).
//   - CheckpointTrigger: how often a running attempt snapshots
//     ("interval" is the default).
//   - PoolSizing: how the reliable/spot split is sized ("static" is the
//     default).
//
// Every policy is a pure, deterministic function of its inputs: the same
// scenario always reproduces the same metrics, so policy-parameterized
// runs stay cacheable and sweep-safe.  The zero Bundle resolves to the
// defaults and reproduces every pre-policy run byte for byte.
package policy

import (
	"fmt"

	"repro/internal/dag"
	"repro/internal/units"
)

// PlacementContext is the run-level context a placement policy may
// consult when computing priorities.
type PlacementContext struct {
	// Bandwidth of the user<->cloud link, the cost basis of
	// communication-inclusive (HEFT) ranks.
	Bandwidth units.Bandwidth
}

// Placement decides which ready tasks claim the reliable on-demand
// slots of a mixed fleet.  Everything in a dispatch batch starts at the
// same instant, so placement only chooses who gets revocation-proof
// capacity, not who runs first.
type Placement interface {
	Name() string
	// Priorities returns each task's placement priority, indexed by task
	// ID: when a dispatch batch starts, tasks with larger priority claim
	// reliable slots first (ties broken by task ID ascending).  A nil
	// return keeps the ready-queue order unchanged.
	Priorities(wf *dag.Workflow, ctx PlacementContext) []float64
}

// VictimCandidate describes one running spot attempt at reclaim time:
// everything a victim policy may weigh when choosing whom to kill.
type VictimCandidate struct {
	// Task is the candidate's ID.
	Task dag.TaskID
	// Start is when the attempt began.
	Start units.Duration
	// Elapsed is the wall-clock time the attempt has run so far.
	Elapsed units.Duration
	// Remaining is the useful work the attempt set out to complete.
	Remaining units.Duration
	// Runtime is the task's full runtime on the reference CPU.
	Runtime units.Duration
	// Banked is the useful work preserved by earlier preemptions.
	Banked units.Duration
	// Useful is the useful compute finished so far in this attempt
	// (checkpoint-overhead windows excluded).
	Useful units.Duration
	// Saved is the useful work already durably checkpointed this
	// attempt: what survives a kill before any warning-window emergency
	// checkpoint.
	Saved units.Duration
}

// WastedIfKilled returns the busy processor time this attempt would burn
// without surviving as banked progress if killed right now (ignoring any
// emergency checkpoint the warning window may still buy).
func (c VictimCandidate) WastedIfKilled() units.Duration { return c.Elapsed - c.Saved }

// Progress returns the fraction of the task's total work that is done or
// durably banked, in [0, 1]; tasks with zero runtime count as complete.
func (c VictimCandidate) Progress() float64 {
	if c.Runtime <= 0 {
		return 1
	}
	p := float64(c.Banked+c.Useful) / float64(c.Runtime)
	if p > 1 {
		return 1
	}
	return p
}

// Victim decides which running spot attempts a capacity reclaim kills.
type Victim interface {
	Name() string
	// Score returns the candidate's kill preference: candidates with the
	// largest scores are killed first, ties broken by task ID
	// descending.  Scores must be a deterministic function of the
	// candidate.
	Score(c VictimCandidate) float64
}

// CheckpointContext is everything a checkpoint trigger may consult when
// spacing one attempt's snapshots.
type CheckpointContext struct {
	// Interval is the configured base checkpoint spacing.
	Interval units.Duration
	// Overhead is the wall-clock cost of writing one checkpoint.
	Overhead units.Duration
	// Remaining is the useful work of the attempt being started.
	Remaining units.Duration
	// OnReliable reports whether the attempt occupies a reliable
	// on-demand slot, which no reclaim can ever touch.
	OnReliable bool
	// SpotRatePerHour is the per-instance reclaim intensity of the spot
	// market, the hazard rate adaptive triggers optimize against; 0
	// means the revocation schedule is external or absent.
	SpotRatePerHour float64
}

// CheckpointTrigger decides the effective checkpoint spacing of one
// attempt.  The periodic checkpoint machinery (overhead per write,
// warning-window emergency checkpoints, banked-progress restarts) is
// shared; the trigger only chooses the interval.
type CheckpointTrigger interface {
	Name() string
	// EffectiveInterval returns the useful-compute spacing between this
	// attempt's checkpoints.  An interval >= Remaining writes no
	// periodic checkpoints (completing is durable by itself); a
	// non-positive return falls back to the configured base interval.
	EffectiveInterval(ctx CheckpointContext) units.Duration
}

// PoolSizing decides the reliable/spot split of the fleet before a run
// starts.
type PoolSizing interface {
	Name() string
	// Reliable returns the reliable sub-pool size for a fleet of procs
	// processors, given the scenario's configured static split.
	// spotActive reports whether capacity reclaims can occur; when it is
	// true the result must leave at least one revocable slot
	// (implementations clamp to procs-1).
	Reliable(procs, configured int, spotActive bool) int
}

// Default policy names: the historical hard-coded behavior, re-registered
// under these keys.  A Bundle with empty fields resolves to them.
const (
	DefaultPlacement  = "rank"
	DefaultVictim     = "deterministic"
	DefaultCheckpoint = "interval"
	DefaultSizing     = "static"
)

// Bundle names one policy per decision point.  The zero value selects
// the defaults; it is a flat comparable value struct, so it travels on
// the wire and feeds canonical cache keys directly.
type Bundle struct {
	Placement  string
	Victim     string
	Checkpoint string
	Sizing     string
}

// Canonical fills empty slots with the default policy names: the form
// bundles must be reduced to before being compared or used as a cache
// key, since an empty slot and an explicit default describe the same
// run.
func (b Bundle) Canonical() Bundle {
	if b.Placement == "" {
		b.Placement = DefaultPlacement
	}
	if b.Victim == "" {
		b.Victim = DefaultVictim
	}
	if b.Checkpoint == "" {
		b.Checkpoint = DefaultCheckpoint
	}
	if b.Sizing == "" {
		b.Sizing = DefaultSizing
	}
	return b
}

// IsDefault reports whether the bundle reproduces the historical
// hard-coded behavior.
func (b Bundle) IsDefault() bool {
	return b.Canonical() == Bundle{
		Placement:  DefaultPlacement,
		Victim:     DefaultVictim,
		Checkpoint: DefaultCheckpoint,
		Sizing:     DefaultSizing,
	}
}

// Validate rejects bundles naming unregistered policies.
func (b Bundle) Validate() error {
	_, err := b.Resolve()
	return err
}

// Resolved is a bundle with every name looked up in its registry.
type Resolved struct {
	Placement  Placement
	Victim     Victim
	Checkpoint CheckpointTrigger
	Sizing     PoolSizing
}

// Resolve looks up every slot of the (canonicalized) bundle, failing
// with the offending slot and the registered alternatives on an unknown
// name.
func (b Bundle) Resolve() (Resolved, error) {
	c := b.Canonical()
	var r Resolved
	var ok bool
	if r.Placement, ok = LookupPlacement(c.Placement); !ok {
		return Resolved{}, fmt.Errorf("policy: unknown placement policy %q (registered: %v)", c.Placement, Placements())
	}
	if r.Victim, ok = LookupVictim(c.Victim); !ok {
		return Resolved{}, fmt.Errorf("policy: unknown victim policy %q (registered: %v)", c.Victim, Victims())
	}
	if r.Checkpoint, ok = LookupCheckpoint(c.Checkpoint); !ok {
		return Resolved{}, fmt.Errorf("policy: unknown checkpoint policy %q (registered: %v)", c.Checkpoint, Checkpoints())
	}
	if r.Sizing, ok = LookupSizing(c.Sizing); !ok {
		return Resolved{}, fmt.Errorf("policy: unknown pool-sizing policy %q (registered: %v)", c.Sizing, Sizings())
	}
	return r, nil
}
