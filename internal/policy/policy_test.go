package policy

import (
	"math"
	"strings"
	"testing"

	"repro/internal/dag"
	"repro/internal/units"
)

// chainWorkflow builds a tiny DAG where runtime-only and
// communication-inclusive ranks disagree: a -> b moves a 12.5 MB file
// (10 s at the 10 Mbps reference link) while c runs alone.
//
//	UpwardRanks:          a=10, b=5, c=12   (c beats a)
//	HEFTRanks @ 10 Mbps:  a=20, b=5, c=12   (a beats c)
func chainWorkflow(t *testing.T) *dag.Workflow {
	t.Helper()
	wf := dag.New("chain")
	if _, err := wf.AddFile("f", 1.25e7, false); err != nil {
		t.Fatal(err)
	}
	for _, task := range []struct {
		name            string
		runtime         units.Duration
		inputs, outputs []string
	}{
		{"a", 5, nil, []string{"f"}},
		{"b", 5, []string{"f"}, nil},
		{"c", 12, nil, nil},
	} {
		if _, err := wf.AddTask(task.name, "t", task.runtime, task.inputs, task.outputs); err != nil {
			t.Fatal(err)
		}
	}
	if err := wf.Finalize(); err != nil {
		t.Fatal(err)
	}
	return wf
}

func TestRegistriesHoldDefaultsAndCompetitors(t *testing.T) {
	for kind, got := range map[string][]string{
		"placement":  Placements(),
		"victim":     Victims(),
		"checkpoint": Checkpoints(),
		"sizing":     Sizings(),
	} {
		if len(got) < 3 {
			t.Errorf("%s registry has %d policies, want >= 3 (default + 2 competitors): %v", kind, len(got), got)
		}
		for i := 1; i < len(got); i++ {
			if got[i-1] >= got[i] {
				t.Errorf("%s names not sorted: %v", kind, got)
			}
		}
	}
	// The empty name resolves to the default in every registry.
	if p, ok := LookupPlacement(""); !ok || p.Name() != DefaultPlacement {
		t.Errorf(`LookupPlacement("") = %v, %v`, p, ok)
	}
	if v, ok := LookupVictim(""); !ok || v.Name() != DefaultVictim {
		t.Errorf(`LookupVictim("") = %v, %v`, v, ok)
	}
	if c, ok := LookupCheckpoint(""); !ok || c.Name() != DefaultCheckpoint {
		t.Errorf(`LookupCheckpoint("") = %v, %v`, c, ok)
	}
	if s, ok := LookupSizing(""); !ok || s.Name() != DefaultSizing {
		t.Errorf(`LookupSizing("") = %v, %v`, s, ok)
	}
	if _, ok := LookupPlacement("no-such-policy"); ok {
		t.Error("unknown placement name resolved")
	}
}

func TestRegisterRejectsDuplicatesAndEmptyNames(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("duplicate", func() { RegisterPlacement(fifoPlacement{}) })
	mustPanic("empty name", func() { RegisterVictim(emptyNameVictim{}) })
}

type emptyNameVictim struct{}

func (emptyNameVictim) Name() string                  { return "" }
func (emptyNameVictim) Score(VictimCandidate) float64 { return 0 }

func TestBundleCanonicalAndDefault(t *testing.T) {
	want := Bundle{
		Placement:  DefaultPlacement,
		Victim:     DefaultVictim,
		Checkpoint: DefaultCheckpoint,
		Sizing:     DefaultSizing,
	}
	if got := (Bundle{}).Canonical(); got != want {
		t.Errorf("zero bundle canonicalizes to %+v", got)
	}
	if !(Bundle{}).IsDefault() || !(Bundle{Victim: DefaultVictim}).IsDefault() {
		t.Error("defaults not recognized")
	}
	if (Bundle{Checkpoint: "adaptive"}).IsDefault() {
		t.Error("non-default bundle claims to be the default")
	}
	// Canonical keeps explicit non-default slots untouched.
	mixed := Bundle{Placement: "heft"}.Canonical()
	if mixed.Placement != "heft" || mixed.Victim != DefaultVictim {
		t.Errorf("mixed canonical = %+v", mixed)
	}
}

func TestBundleResolveNamesOffendingSlot(t *testing.T) {
	if _, err := (Bundle{}).Resolve(); err != nil {
		t.Fatalf("zero bundle does not resolve: %v", err)
	}
	for slot, b := range map[string]Bundle{
		"placement":   {Placement: "bogus"},
		"victim":      {Victim: "bogus"},
		"checkpoint":  {Checkpoint: "bogus"},
		"pool-sizing": {Sizing: "bogus"},
	} {
		err := b.Validate()
		if err == nil {
			t.Errorf("%s: bogus name accepted", slot)
			continue
		}
		if !strings.Contains(err.Error(), slot) || !strings.Contains(err.Error(), "bogus") {
			t.Errorf("%s error does not name the slot and value: %v", slot, err)
		}
	}
}

func TestPlacementPriorities(t *testing.T) {
	wf := chainWorkflow(t)
	ctx := PlacementContext{Bandwidth: units.Mbps(10)}

	rank, _ := LookupPlacement(DefaultPlacement)
	heft, _ := LookupPlacement("heft")
	fifo, _ := LookupPlacement("fifo")

	if got := fifo.Priorities(wf, ctx); got != nil {
		t.Errorf("fifo priorities = %v, want nil (keep queue order)", got)
	}
	r := rank.Priorities(wf, ctx)
	h := heft.Priorities(wf, ctx)
	if len(r) != wf.NumTasks() || len(h) != wf.NumTasks() {
		t.Fatalf("priority lengths %d/%d, want %d", len(r), len(h), wf.NumTasks())
	}
	a, c := wf.Tasks()[0].ID, wf.Tasks()[2].ID
	// Runtime-only ranks put the long independent task first; pricing the
	// 10-second file transfer flips the order toward the chain head.
	if r[a] >= r[c] {
		t.Errorf("rank: a=%v c=%v, want c ahead", r[a], r[c])
	}
	if h[a] <= h[c] {
		t.Errorf("heft: a=%v c=%v, want a ahead", h[a], h[c])
	}
	if want := 20.0; h[a] != want {
		t.Errorf("heft rank of a = %v, want %v (5 + 10s transfer + 5)", h[a], want)
	}
}

func TestVictimScores(t *testing.T) {
	det, _ := LookupVictim(DefaultVictim)
	cost, _ := LookupVictim("cost-aware")
	least, _ := LookupVictim("least-progress")

	young := VictimCandidate{Task: 1, Start: 900, Elapsed: 50, Remaining: 400, Runtime: 500, Banked: 100, Useful: 40, Saved: 30}
	old := VictimCandidate{Task: 2, Start: 100, Elapsed: 800, Remaining: 900, Runtime: 1000, Banked: 0, Useful: 750, Saved: 600}

	// Deterministic: latest start dies first.
	if det.Score(young) <= det.Score(old) {
		t.Error("deterministic does not prefer the most recent attempt")
	}
	// Cost-aware: the attempt with less unbanked wall-clock dies first.
	// young wastes 50-30=20s, old wastes 800-600=200s.
	if cost.Score(young) <= cost.Score(old) {
		t.Error("cost-aware does not prefer the cheaper kill")
	}
	// Least-progress: young is 140/500 done, old is 750/1000 done.
	if least.Score(young) <= least.Score(old) {
		t.Error("least-progress does not prefer the task farthest from done")
	}

	if got := young.WastedIfKilled(); got != 20 {
		t.Errorf("WastedIfKilled = %v, want 20", got)
	}
	if got := young.Progress(); got != 0.28 {
		t.Errorf("Progress = %v, want 0.28", got)
	}
	if got := (VictimCandidate{Runtime: 0}).Progress(); got != 1 {
		t.Errorf("zero-runtime progress = %v, want 1", got)
	}
	if got := (VictimCandidate{Runtime: 10, Banked: 20}).Progress(); got != 1 {
		t.Errorf("overbanked progress = %v, want capped at 1", got)
	}
}

func TestCheckpointTriggers(t *testing.T) {
	interval, _ := LookupCheckpoint(DefaultCheckpoint)
	adaptive, _ := LookupCheckpoint("adaptive")
	risk, _ := LookupCheckpoint("risk")

	base := CheckpointContext{Interval: 300, Overhead: 10, Remaining: 5000, SpotRatePerHour: 1}

	if got := interval.EffectiveInterval(base); got != 300 {
		t.Errorf("interval trigger = %v, want the configured 300", got)
	}
	if got := risk.EffectiveInterval(base); got != base.Remaining {
		t.Errorf("risk trigger = %v, want Remaining (no periodic checkpoints)", got)
	}

	// Young/Daly: sqrt(2 * 10 * 3600) ~= 268.3 at one reclaim per hour.
	want := units.Duration(math.Sqrt(2 * 10 * 3600))
	if got := adaptive.EffectiveInterval(base); got != want {
		t.Errorf("adaptive spot interval = %v, want %v", got, want)
	}
	// Reliable attempts cannot be reclaimed: no periodic checkpoints.
	rel := base
	rel.OnReliable = true
	if got := adaptive.EffectiveInterval(rel); got != base.Remaining {
		t.Errorf("adaptive on reliable = %v, want Remaining", got)
	}
	// No declared hazard rate: keep the external schedule's interval.
	calm := base
	calm.SpotRatePerHour = 0
	if got := adaptive.EffectiveInterval(calm); got != 300 {
		t.Errorf("adaptive without hazard rate = %v, want base interval", got)
	}
	// The spacing floors at one second of useful compute.
	frantic := CheckpointContext{Interval: 300, Overhead: 1e-9, Remaining: 5000, SpotRatePerHour: 1e6}
	if got := adaptive.EffectiveInterval(frantic); got != 1 {
		t.Errorf("adaptive floor = %v, want 1", got)
	}
}

func TestPoolSizing(t *testing.T) {
	static, _ := LookupSizing(DefaultSizing)
	quarter, _ := LookupSizing("quarter")
	half, _ := LookupSizing("half")

	if got := static.Reliable(16, 4, true); got != 4 {
		t.Errorf("static = %d, want the configured 4", got)
	}
	if got := quarter.Reliable(16, 0, true); got != 4 {
		t.Errorf("quarter of 16 = %d, want 4", got)
	}
	if got := half.Reliable(16, 4, true); got != 8 {
		t.Errorf("half of 16 = %d, want 8", got)
	}
	// Ceiling division: half of 5 is 3, quarter of 5 is 2.
	if got := half.Reliable(5, 0, true); got != 3 {
		t.Errorf("half of 5 = %d, want 3", got)
	}
	if got := quarter.Reliable(5, 0, true); got != 2 {
		t.Errorf("quarter of 5 = %d, want 2", got)
	}
	// A reliable floor must leave one revocable slot.
	if got := half.Reliable(1, 0, true); got != 0 {
		t.Errorf("half of 1 = %d, want clamped to 0", got)
	}
	// A calm market makes the floor pointless: keep the configured split.
	if got := half.Reliable(16, 4, false); got != 4 {
		t.Errorf("half under calm market = %d, want the configured 4", got)
	}
}
