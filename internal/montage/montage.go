// Package montage generates Montage mosaic workflows with the structure,
// task counts, runtimes and data volumes of the workflows the paper
// simulated.
//
// The real workflows were produced by Montage's mDAG component for the
// M17 region and profiled on real runs; neither artifact is available
// here, so this package is the synthetic equivalent: it emits the
// canonical nine-level Montage DAG
//
//	mProject (N) -> mDiffFit (D) -> mConcatFit -> mBgModel ->
//	mBackground (N) -> mAdd -> mShrink -> mJPEG
//
// with task totals 2N + D + 5 matching the paper exactly
// (203 / 731 / 3,027 tasks for the 1/2/4-degree mosaics), and calibrates
// runtimes and file sizes to the paper's published aggregates:
//
//   - total CPU time 5.6 / 20.3 / 84 CPU-hours (from the Fig. 10 CPU
//     costs of $0.56 / $2.03 / $8.40 at $0.10 per CPU-hour),
//   - final mosaic sizes 173.46 MB / 557.9 MB / 2.229 GB (§6, Q3), and
//   - CCR 0.053 / 0.053 / 0.045 at the 10 Mbps reference bandwidth.
package montage

import (
	"fmt"
	"math"

	"repro/internal/dag"
	"repro/internal/trace"
	"repro/internal/units"
)

// Spec parameterizes one Montage workflow.
type Spec struct {
	Name    string
	Degrees float64 // mosaic edge length in degrees (documentation only)
	Images  int     // N: input images, also mProject and mBackground count
	Diffs   int     // D: overlapping image pairs, the mDiffFit count

	// TotalCPU is the calibration target for the sum of task runtimes.
	TotalCPU units.Duration
	// MosaicBytes pins the size of the final mosaic FITS file.
	MosaicBytes units.Bytes
	// TargetCCR, when positive, rescales intermediate file sizes so the
	// workflow's CCR at Bandwidth matches it.
	TargetCCR float64
	// Bandwidth is the reference bandwidth for the CCR calibration; the
	// paper uses 10 Mbps.
	Bandwidth units.Bandwidth
	// Seed drives the deterministic runtime/size jitter.
	Seed int64
}

// The three workflows simulated in the paper.  Task counts come from §5;
// CPU totals from Fig. 10; mosaic sizes and CCRs from §6.
//
// N and D are chosen so 2N+D+5 reproduces the published task counts with
// a diff-to-image ratio (~2.4-2.6) consistent with a gridded sky overlap
// pattern.

// OneDegree returns the spec of the 1-degree-square M17 mosaic workflow
// (203 tasks).
func OneDegree() Spec {
	return Spec{
		Name: "montage-1deg", Degrees: 1, Images: 45, Diffs: 108,
		TotalCPU:    units.Duration(5.6 * units.SecondsPerHour),
		MosaicBytes: units.Bytes(173.46 * units.MB),
		TargetCCR:   0.053, Bandwidth: units.Mbps(10), Seed: 1,
	}
}

// TwoDegree returns the spec of the 2-degree-square workflow (731 tasks).
func TwoDegree() Spec {
	return Spec{
		Name: "montage-2deg", Degrees: 2, Images: 162, Diffs: 402,
		TotalCPU:    units.Duration(20.3 * units.SecondsPerHour),
		MosaicBytes: units.Bytes(557.9 * units.MB),
		TargetCCR:   0.053, Bandwidth: units.Mbps(10), Seed: 2,
	}
}

// FourDegree returns the spec of the 4-degree-square workflow (3,027
// tasks).
func FourDegree() Spec {
	return Spec{
		Name: "montage-4deg", Degrees: 4, Images: 662, Diffs: 1698,
		TotalCPU:    units.Duration(84 * units.SecondsPerHour),
		MosaicBytes: units.Bytes(2.229 * units.GB),
		TargetCCR:   0.045, Bandwidth: units.Mbps(10), Seed: 4,
	}
}

// Presets returns the paper's three workflows in size order.
func Presets() []Spec { return []Spec{OneDegree(), TwoDegree(), FourDegree()} }

// FromDegrees builds a spec for an arbitrary mosaic size by scaling the
// paper's presets: image count grows with sky area, CPU time and mosaic
// size likewise.  Used by the whole-sky planner for 6-degree mosaics.
func FromDegrees(degrees float64, seed int64) Spec {
	base := OneDegree()
	area := degrees * degrees
	images := int(math.Round(41*area + 4)) // ~41 plates per sq. degree + border
	diffs := int(math.Round(2.5 * float64(images)))
	return Spec{
		Name:    fmt.Sprintf("montage-%.3gdeg", degrees),
		Degrees: degrees, Images: images, Diffs: diffs,
		TotalCPU:    units.Duration(float64(base.TotalCPU) / 1.12 * area), // ~5 CPU-h per sq. degree
		MosaicBytes: units.BytesOf(float64(base.MosaicBytes) / 1.25 * area),
		TargetCCR:   0.05, Bandwidth: units.Mbps(10), Seed: seed,
	}
}

// Validate checks the spec for internal consistency.
func (s Spec) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("montage: spec has no name")
	case s.Images < 2:
		return fmt.Errorf("montage: need at least 2 images, got %d", s.Images)
	case s.Diffs < 1:
		return fmt.Errorf("montage: need at least 1 diff, got %d", s.Diffs)
	case s.TotalCPU <= 0:
		return fmt.Errorf("montage: non-positive TotalCPU %v", s.TotalCPU)
	case s.MosaicBytes <= 0:
		return fmt.Errorf("montage: non-positive MosaicBytes %d", s.MosaicBytes)
	case s.TargetCCR < 0:
		return fmt.Errorf("montage: negative TargetCCR %v", s.TargetCCR)
	case s.TargetCCR > 0 && s.Bandwidth <= 0:
		return fmt.Errorf("montage: TargetCCR set but no reference bandwidth")
	}
	return nil
}

// TaskCount returns the number of tasks Generate will produce: 2N + D + 5.
func (s Spec) TaskCount() int { return 2*s.Images + s.Diffs + 5 }

// Nominal per-type profiles.  Runtimes (seconds on the reference CPU) are
// shaped like published Montage profiles -- mProject dominates, the serial
// tail (mConcatFit..mJPEG) is short -- and are rescaled as a whole to hit
// Spec.TotalCPU, so only the ratios matter.  Sizes (bytes) are likewise
// nominal; intermediates are rescaled to hit the CCR target.
var (
	rtProfiles = map[string]trace.Profile{
		"mProject":   {Base: 200, Jitter: 0.25},
		"mDiffFit":   {Base: 12, Jitter: 0.25},
		"mConcatFit": {Base: 15, Jitter: 0.10},
		"mBgModel":   {Base: 30, Jitter: 0.10},
		"mBackground": {
			Base: 15, Jitter: 0.25,
		},
		"mAdd":    {Base: 80, Jitter: 0.10},
		"mShrink": {Base: 20, Jitter: 0.10},
		"mJPEG":   {Base: 10, Jitter: 0.10},
	}
	szInput     = trace.Profile{Base: 3 * units.MB, Jitter: 0.10}   // 2MASS FITS plate
	szProjected = trace.Profile{Base: 6.6 * units.MB, Jitter: 0.10} // reprojected image
	szFit       = trace.Profile{Base: 5 * units.KB, Jitter: 0.20}   // plane-fit coefficients
	szSmallTbl  = trace.Profile{Base: 50 * units.KB}                // metadata tables
	szTemplate  = trace.Profile{Base: 10 * units.KB}                // template header
	szJPEG      = trace.Profile{Base: 500 * units.KB}               // preview image
	shrinkRatio = 0.10                                              // mShrink output vs mosaic
)

// Generate builds, calibrates and finalizes the workflow described by s.
func Generate(s Spec) (*dag.Workflow, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	sampler := trace.NewSampler(s.Seed)
	w := dag.New(s.Name)

	b := &builder{w: w, s: s, sampler: sampler}
	if err := b.build(); err != nil {
		return nil, err
	}
	if err := b.calibrateRuntimes(); err != nil {
		return nil, err
	}
	if s.TargetCCR > 0 {
		if err := b.calibrateCCR(); err != nil {
			return nil, err
		}
	}
	if err := w.Finalize(); err != nil {
		return nil, fmt.Errorf("montage: %w", err)
	}
	return w, nil
}

// builder accumulates the workflow plus the bookkeeping needed for the
// two calibration passes (which must run before Finalize freezes it).
type builder struct {
	w       *dag.Workflow
	s       Spec
	sampler *trace.Sampler

	taskRuntimes []float64 // parallel to task IDs
	taskNames    []string
	fixedFiles   map[string]bool // external inputs + staged-out outputs
}

func (b *builder) addFile(name string, p trace.Profile, output bool) error {
	_, err := b.w.AddFile(name, b.sampler.SampleBytes(p), output)
	return err
}

func (b *builder) addFixedFile(name string, size units.Bytes, output bool) error {
	if b.fixedFiles == nil {
		b.fixedFiles = make(map[string]bool)
	}
	b.fixedFiles[name] = true
	_, err := b.w.AddFile(name, size, output)
	return err
}

func (b *builder) addTask(name, typ string, inputs, outputs []string) error {
	rt := b.sampler.Sample(rtProfiles[typ])
	// Runtime 0 placeholder; calibrateRuntimes sets the real values via a
	// rebuild-free path: we record samples and write them scaled.
	if _, err := b.w.AddTask(name, typ, units.Duration(rt), inputs, outputs); err != nil {
		return err
	}
	b.taskRuntimes = append(b.taskRuntimes, rt)
	b.taskNames = append(b.taskNames, name)
	return nil
}

func (b *builder) build() error {
	s := b.s
	if b.fixedFiles == nil {
		b.fixedFiles = make(map[string]bool)
	}
	// Shared template header, used by every mProject and mDiffFit.
	if err := b.addFile("region.hdr", szTemplate, false); err != nil {
		return err
	}
	// External input images and their reprojections.
	for i := 0; i < s.Images; i++ {
		in := fmt.Sprintf("2mass-%04d.fits", i)
		if err := b.addFile(in, szInput, false); err != nil {
			return err
		}
		b.fixedFiles[in] = true // inputs keep their nominal size
		if err := b.addFile(fmt.Sprintf("proj-%04d.fits", i), szProjected, false); err != nil {
			return err
		}
	}
	for i := 0; i < s.Images; i++ {
		if err := b.addTask(
			fmt.Sprintf("mProject-%04d", i), "mProject",
			[]string{fmt.Sprintf("2mass-%04d.fits", i), "region.hdr"},
			[]string{fmt.Sprintf("proj-%04d.fits", i)},
		); err != nil {
			return err
		}
	}
	// Overlap pairs and mDiffFit tasks.
	pairs := overlapPairs(s.Images, s.Diffs)
	for d, p := range pairs {
		fit := fmt.Sprintf("fit-%05d.txt", d)
		if err := b.addFile(fit, szFit, false); err != nil {
			return err
		}
		if err := b.addTask(
			fmt.Sprintf("mDiffFit-%05d", d), "mDiffFit",
			[]string{
				fmt.Sprintf("proj-%04d.fits", p[0]),
				fmt.Sprintf("proj-%04d.fits", p[1]),
				"region.hdr",
			},
			[]string{fit},
		); err != nil {
			return err
		}
	}
	// Serial spine: mConcatFit -> mBgModel.
	if err := b.addFile("fits.tbl", szSmallTbl, false); err != nil {
		return err
	}
	fitNames := make([]string, len(pairs))
	for d := range pairs {
		fitNames[d] = fmt.Sprintf("fit-%05d.txt", d)
	}
	if err := b.addTask("mConcatFit", "mConcatFit", fitNames, []string{"fits.tbl"}); err != nil {
		return err
	}
	if err := b.addFile("corrections.tbl", szSmallTbl, false); err != nil {
		return err
	}
	if err := b.addTask("mBgModel", "mBgModel", []string{"fits.tbl"}, []string{"corrections.tbl"}); err != nil {
		return err
	}
	// Background rectification fan.
	for i := 0; i < s.Images; i++ {
		if err := b.addFile(fmt.Sprintf("bg-%04d.fits", i), szProjected, false); err != nil {
			return err
		}
	}
	for i := 0; i < s.Images; i++ {
		if err := b.addTask(
			fmt.Sprintf("mBackground-%04d", i), "mBackground",
			[]string{fmt.Sprintf("proj-%04d.fits", i), "corrections.tbl"},
			[]string{fmt.Sprintf("bg-%04d.fits", i)},
		); err != nil {
			return err
		}
	}
	// Final serial spine: mAdd -> mShrink -> mJPEG.
	bgNames := make([]string, s.Images)
	for i := range bgNames {
		bgNames[i] = fmt.Sprintf("bg-%04d.fits", i)
	}
	if err := b.addFixedFile("mosaic.fits", s.MosaicBytes, true); err != nil {
		return err
	}
	if err := b.addTask("mAdd", "mAdd", bgNames, []string{"mosaic.fits"}); err != nil {
		return err
	}
	if err := b.addFile("mosaic-small.fits",
		trace.Profile{Base: float64(s.MosaicBytes) * shrinkRatio}, false); err != nil {
		return err
	}
	if err := b.addTask("mShrink", "mShrink", []string{"mosaic.fits"}, []string{"mosaic-small.fits"}); err != nil {
		return err
	}
	if err := b.addFixedFile("mosaic.jpg", units.Bytes(szJPEG.Base), true); err != nil {
		return err
	}
	return b.addTask("mJPEG", "mJPEG", []string{"mosaic-small.fits"}, []string{"mosaic.jpg"})
}

// calibrateRuntimes rescales every sampled runtime so their sum equals
// Spec.TotalCPU.
func (b *builder) calibrateRuntimes() error {
	factor, err := trace.CalibrationFactor(b.taskRuntimes, b.s.TotalCPU.Seconds())
	if err != nil {
		return fmt.Errorf("montage: runtime calibration: %w", err)
	}
	for i, rt := range b.taskRuntimes {
		b.w.Tasks()[i].Runtime = units.Duration(rt * factor)
	}
	return nil
}

// calibrateCCR rescales intermediate file sizes (everything except the
// external inputs and the staged-out outputs, whose sizes are anchored by
// the paper) so the workflow's total file bytes satisfy
//
//	CCR = totalBytes / B / totalRuntime.
func (b *builder) calibrateCCR() error {
	s := b.s
	targetTotal := s.TargetCCR * s.Bandwidth.BytesPerSecond() * s.TotalCPU.Seconds()
	var fixed, scalable float64
	for _, f := range b.w.Files() {
		if b.fixedFiles[f.Name] {
			fixed += float64(f.Size)
		} else {
			scalable += float64(f.Size)
		}
	}
	need := targetTotal - fixed
	if need <= 0 {
		return fmt.Errorf("montage: CCR %v unreachable: fixed files alone are %.0f bytes of a %.0f byte budget",
			s.TargetCCR, fixed, targetTotal)
	}
	factor, err := trace.CalibrationFactor([]float64{scalable}, need)
	if err != nil {
		return fmt.Errorf("montage: CCR calibration: %w", err)
	}
	for _, f := range b.w.Files() {
		if !b.fixedFiles[f.Name] {
			f.Size = units.BytesOf(float64(f.Size) * factor)
		}
	}
	return nil
}

// overlapPairs lays n images on a near-square grid and returns exactly
// want neighbor pairs, enumerating right, down, down-right and down-left
// adjacencies row-major (the overlap pattern of a gridded sky survey) and
// extending with wider strides when the geometric pairs run out.
func overlapPairs(n, want int) [][2]int {
	cols := int(math.Ceil(math.Sqrt(float64(n))))
	pairs := make([][2]int, 0, want)
	add := func(a, bIdx int) bool {
		if bIdx >= n || len(pairs) >= want {
			return len(pairs) < want
		}
		pairs = append(pairs, [2]int{a, bIdx})
		return len(pairs) < want
	}
	for i := 0; i < n && len(pairs) < want; i++ {
		col := i % cols
		if col+1 < cols {
			add(i, i+1) // right
		}
		add(i, i+cols) // down
		if col+1 < cols {
			add(i, i+cols+1) // down-right
		}
		if col > 0 {
			add(i, i+cols-1) // down-left
		}
	}
	// Wider strides for dense overlap requests.
	for stride := 2; len(pairs) < want; stride++ {
		if stride >= n {
			// Fall back to repeating near-neighbor pairs; Montage DAGs
			// never need this, but stay total for tiny synthetic inputs.
			for i := 0; len(pairs) < want; i = (i + 1) % (n - 1) {
				pairs = append(pairs, [2]int{i, i + 1})
			}
			break
		}
		for i := 0; i+stride < n && len(pairs) < want; i++ {
			pairs = append(pairs, [2]int{i, i + stride})
		}
	}
	return pairs[:want]
}
