package montage

import (
	"math"
	"testing"

	"repro/internal/units"
)

func TestPresetTaskCounts(t *testing.T) {
	// §5 of the paper: 203 / 731 / 3,027 application tasks.
	tests := []struct {
		spec Spec
		want int
	}{
		{OneDegree(), 203},
		{TwoDegree(), 731},
		{FourDegree(), 3027},
	}
	for _, tt := range tests {
		t.Run(tt.spec.Name, func(t *testing.T) {
			if got := tt.spec.TaskCount(); got != tt.want {
				t.Fatalf("TaskCount = %d, want %d", got, tt.want)
			}
			w, err := Generate(tt.spec)
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			if got := w.NumTasks(); got != tt.want {
				t.Errorf("generated %d tasks, want %d", got, tt.want)
			}
		})
	}
}

func TestPresetCPUAnchors(t *testing.T) {
	// Fig. 10: CPU costs $0.56/$2.03/$8.40 at $0.10/CPU-hour imply
	// 5.6/20.3/84 total CPU-hours.
	tests := []struct {
		spec      Spec
		wantHours float64
	}{
		{OneDegree(), 5.6},
		{TwoDegree(), 20.3},
		{FourDegree(), 84},
	}
	for _, tt := range tests {
		t.Run(tt.spec.Name, func(t *testing.T) {
			w, err := Generate(tt.spec)
			if err != nil {
				t.Fatal(err)
			}
			got := w.TotalRuntime().Hours()
			if math.Abs(got-tt.wantHours) > 1e-6*tt.wantHours {
				t.Errorf("TotalRuntime = %v h, want %v h", got, tt.wantHours)
			}
		})
	}
}

func TestPresetCCRAnchors(t *testing.T) {
	// §6.3 CCR table: 0.053 / 0.053 / 0.045 at 10 Mbps.
	tests := []struct {
		spec Spec
		want float64
	}{
		{OneDegree(), 0.053},
		{TwoDegree(), 0.053},
		{FourDegree(), 0.045},
	}
	for _, tt := range tests {
		t.Run(tt.spec.Name, func(t *testing.T) {
			w, err := Generate(tt.spec)
			if err != nil {
				t.Fatal(err)
			}
			got := w.CCR(units.Mbps(10))
			if math.Abs(got-tt.want) > 0.001 {
				t.Errorf("CCR = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestPresetMosaicSizes(t *testing.T) {
	// §6 Q3: mosaic sizes 173.46 MB / 557.9 MB / 2.229 GB.
	tests := []struct {
		spec Spec
		want units.Bytes
	}{
		{OneDegree(), units.Bytes(173.46 * units.MB)},
		{TwoDegree(), units.Bytes(557.9 * units.MB)},
		{FourDegree(), units.Bytes(2.229 * units.GB)},
	}
	for _, tt := range tests {
		t.Run(tt.spec.Name, func(t *testing.T) {
			w, err := Generate(tt.spec)
			if err != nil {
				t.Fatal(err)
			}
			f := w.File("mosaic.fits")
			if f == nil {
				t.Fatal("no mosaic.fits in workflow")
			}
			if f.Size != tt.want {
				t.Errorf("mosaic size = %d, want %d", f.Size, tt.want)
			}
			if !f.Output {
				t.Error("mosaic.fits not marked as output")
			}
		})
	}
}

func TestStructureLevels(t *testing.T) {
	w, err := Generate(OneDegree())
	if err != nil {
		t.Fatal(err)
	}
	if got := w.MaxLevel(); got != 8 {
		t.Fatalf("MaxLevel = %d, want 8", got)
	}
	wantWidths := map[int]int{
		1: 45, 2: 108, 3: 1, 4: 1, 5: 45, 6: 1, 7: 1, 8: 1,
	}
	for lv, want := range wantWidths {
		if got := len(w.TasksAtLevel(lv)); got != want {
			t.Errorf("level %d width = %d, want %d", lv, got, want)
		}
	}
	// Level 1 must be all mProject, level 2 all mDiffFit.
	for _, task := range w.TasksAtLevel(1) {
		if task.Type != "mProject" {
			t.Errorf("level-1 task %q has type %q", task.Name, task.Type)
		}
	}
	for _, task := range w.TasksAtLevel(2) {
		if task.Type != "mDiffFit" {
			t.Errorf("level-2 task %q has type %q", task.Name, task.Type)
		}
	}
}

func TestMaxParallelism(t *testing.T) {
	w, err := Generate(FourDegree())
	if err != nil {
		t.Fatal(err)
	}
	// The widest level is mDiffFit with D tasks.
	if got := w.MaxParallelism(); got != 1698 {
		t.Errorf("MaxParallelism = %d, want 1698", got)
	}
}

func TestExternalInputsAndOutputs(t *testing.T) {
	s := OneDegree()
	w, err := Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	ins := w.ExternalInputs()
	// N input images + the template header.
	if got := len(ins); got != s.Images+1 {
		t.Fatalf("ExternalInputs = %d, want %d", got, s.Images+1)
	}
	outs := w.OutputFiles()
	if got := len(outs); got != 2 { // mosaic.fits + mosaic.jpg
		t.Fatalf("OutputFiles = %d, want 2", got)
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Generate(OneDegree())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(OneDegree())
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalFileBytes() != b.TotalFileBytes() {
		t.Error("same spec produced different total bytes")
	}
	if a.TotalRuntime() != b.TotalRuntime() {
		t.Error("same spec produced different total runtime")
	}
	for i, task := range a.Tasks() {
		if task.Runtime != b.Tasks()[i].Runtime {
			t.Fatalf("task %d runtime differs between runs", i)
		}
	}
	// A different seed must change per-task values but not aggregates.
	s := OneDegree()
	s.Seed = 77
	c, err := Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.TotalRuntime().Hours()-5.6) > 1e-6 {
		t.Errorf("seed change broke runtime calibration: %v", c.TotalRuntime().Hours())
	}
	same := true
	for i, task := range a.Tasks() {
		if task.Runtime != c.Tasks()[i].Runtime {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical runtimes")
	}
}

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"no name", func(s *Spec) { s.Name = "" }},
		{"too few images", func(s *Spec) { s.Images = 1 }},
		{"no diffs", func(s *Spec) { s.Diffs = 0 }},
		{"zero cpu", func(s *Spec) { s.TotalCPU = 0 }},
		{"zero mosaic", func(s *Spec) { s.MosaicBytes = 0 }},
		{"negative ccr", func(s *Spec) { s.TargetCCR = -1 }},
		{"ccr without bandwidth", func(s *Spec) { s.Bandwidth = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := OneDegree()
			tc.mutate(&s)
			if err := s.Validate(); err == nil {
				t.Error("Validate accepted invalid spec")
			}
			if _, err := Generate(s); err == nil {
				t.Error("Generate accepted invalid spec")
			}
		})
	}
	good := OneDegree()
	if err := good.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestUnreachableCCRRejected(t *testing.T) {
	s := OneDegree()
	s.TargetCCR = 1e-9 // fixed files alone exceed the byte budget
	if _, err := Generate(s); err == nil {
		t.Error("Generate accepted unreachable CCR target")
	}
}

func TestFromDegrees(t *testing.T) {
	s := FromDegrees(6, 6)
	if err := s.Validate(); err != nil {
		t.Fatalf("FromDegrees spec invalid: %v", err)
	}
	w, err := Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	// A 6-degree mosaic must be strictly bigger than a 4-degree one in
	// every aggregate.
	w4, err := Generate(FourDegree())
	if err != nil {
		t.Fatal(err)
	}
	if w.NumTasks() <= w4.NumTasks() {
		t.Errorf("6-deg tasks %d not > 4-deg tasks %d", w.NumTasks(), w4.NumTasks())
	}
	if w.TotalRuntime() <= w4.TotalRuntime() {
		t.Errorf("6-deg runtime %v not > 4-deg %v", w.TotalRuntime(), w4.TotalRuntime())
	}
}

func TestOverlapPairs(t *testing.T) {
	for _, tc := range []struct{ n, want int }{
		{45, 108}, {162, 402}, {662, 1698}, {4, 3}, {2, 1}, {5, 30},
	} {
		pairs := overlapPairs(tc.n, tc.want)
		if len(pairs) != tc.want {
			t.Errorf("overlapPairs(%d,%d) returned %d pairs", tc.n, tc.want, len(pairs))
		}
		for _, p := range pairs {
			if p[0] < 0 || p[0] >= tc.n || p[1] < 0 || p[1] >= tc.n {
				t.Fatalf("pair %v out of range for n=%d", p, tc.n)
			}
			if p[0] == p[1] {
				t.Fatalf("self-pair %v", p)
			}
		}
	}
}

func TestInputBytesReasonable(t *testing.T) {
	// Input volume should scale with image count and stay near the 3 MB
	// nominal plate size.
	for _, s := range Presets() {
		w, err := Generate(s)
		if err != nil {
			t.Fatal(err)
		}
		perImage := float64(w.InputBytes()) / float64(s.Images)
		if perImage < 2*units.MB || perImage > 4*units.MB {
			t.Errorf("%s: %.1f MB per input image, want ~3 MB", s.Name, perImage/units.MB)
		}
	}
}
