package montage

import (
	"container/list"
	"sync"

	"repro/internal/dag"
)

// Cache memoizes Generate by Spec.  Generation is deterministic, so two
// identical specs always describe the same workflow; the experiment grid
// re-asks for the same presets dozens of times, and regenerating a
// 3,027-task DAG per grid point is pure waste.
//
// A positive Limit bounds the memo: once more than Limit distinct specs
// have been generated, the least-recently-used workflow is evicted.  A
// long-running server fielding arbitrary mosaic sizes needs the bound
// (every distinct spec pins a multi-thousand-task DAG) and the Stats
// surface to report cache behaviour; the process-wide preset memo stays
// unbounded (Limit 0).
//
// The cached *dag.Workflow is shared between callers and MUST be treated
// as read-only (a finalized workflow already is for every simulation
// path; clone before mutating, as RescaleCCR does).
type Cache struct {
	// Limit bounds the number of memoized specs; <= 0 means unbounded.
	Limit int

	mu      sync.Mutex
	entries map[Spec]*cacheEntry
	order   *list.List // of Spec; front = most recently used
	hits    uint64
	misses  uint64
	evicted uint64
}

type cacheEntry struct {
	once sync.Once
	elem *list.Element
	wf   *dag.Workflow
	err  error
}

// CacheStats is a snapshot of a cache's behaviour.
type CacheStats struct {
	Hits      uint64 // lookups that found a memoized entry
	Misses    uint64 // lookups that triggered a generation
	Evictions uint64 // entries dropped to respect Limit
	Entries   int    // specs currently memoized
}

// NewCache returns a cache bounded to at most limit memoized specs
// (<= 0 means unbounded).
func NewCache(limit int) *Cache { return &Cache{Limit: limit} }

// Generate returns the memoized workflow for s, generating it on first
// use.  Concurrent callers with the same spec share one generation.
func (c *Cache) Generate(s Spec) (*dag.Workflow, error) {
	c.mu.Lock()
	if c.entries == nil {
		c.entries = make(map[Spec]*cacheEntry)
		c.order = list.New()
	}
	e, ok := c.entries[s]
	if ok {
		c.hits++
		c.order.MoveToFront(e.elem)
	} else {
		c.misses++
		e = new(cacheEntry)
		e.elem = c.order.PushFront(s)
		c.entries[s] = e
		for c.Limit > 0 && len(c.entries) > c.Limit {
			oldest := c.order.Back()
			c.order.Remove(oldest)
			delete(c.entries, oldest.Value.(Spec))
			c.evicted++
		}
	}
	c.mu.Unlock()
	// An entry evicted while its generation is still running stays valid
	// for the callers already holding it; it is merely no longer shared
	// with future lookups.
	e.once.Do(func() { e.wf, e.err = Generate(s) })
	return e.wf, e.err
}

// Len reports how many specs are currently memoized.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Evictions: c.evicted, Entries: len(c.entries)}
}

// defaultCache backs Cached: one process-wide memo of the preset
// workflows every figure and sweep shares.
var defaultCache Cache

// Cached is Generate memoized through a process-wide cache; see Cache
// for the sharing contract.  Only trusted callers (the experiment
// harness, the CLIs) should use it -- a server fielding arbitrary specs
// must own a bounded Cache instead.
func Cached(s Spec) (*dag.Workflow, error) {
	return defaultCache.Generate(s)
}
