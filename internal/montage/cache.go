package montage

import (
	"sync"

	"repro/internal/dag"
)

// Cache memoizes Generate by Spec.  Generation is deterministic, so two
// identical specs always describe the same workflow; the experiment grid
// re-asks for the same presets dozens of times, and regenerating a
// 3,027-task DAG per grid point is pure waste.
//
// The cached *dag.Workflow is shared between callers and MUST be treated
// as read-only (a finalized workflow already is for every simulation
// path; clone before mutating, as RescaleCCR does).
type Cache struct {
	mu      sync.Mutex
	entries map[Spec]*cacheEntry
}

type cacheEntry struct {
	once sync.Once
	wf   *dag.Workflow
	err  error
}

// Generate returns the memoized workflow for s, generating it on first
// use.  Concurrent callers with the same spec share one generation.
func (c *Cache) Generate(s Spec) (*dag.Workflow, error) {
	c.mu.Lock()
	if c.entries == nil {
		c.entries = make(map[Spec]*cacheEntry)
	}
	e, ok := c.entries[s]
	if !ok {
		e = new(cacheEntry)
		c.entries[s] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.wf, e.err = Generate(s) })
	return e.wf, e.err
}

// Len reports how many specs have been memoized.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// defaultCache backs Cached: one process-wide memo of the preset
// workflows every figure and sweep shares.
var defaultCache Cache

// Cached is Generate memoized through a process-wide cache; see Cache
// for the sharing contract.
func Cached(s Spec) (*dag.Workflow, error) {
	return defaultCache.Generate(s)
}
