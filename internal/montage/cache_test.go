package montage

import (
	"sync"
	"testing"
)

func TestCacheReturnsSameWorkflow(t *testing.T) {
	var c Cache
	a, err := c.Generate(OneDegree())
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Generate(OneDegree())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("identical specs produced distinct workflows")
	}
	other, err := c.Generate(TwoDegree())
	if err != nil {
		t.Fatal(err)
	}
	if other == a {
		t.Error("distinct specs shared one workflow")
	}
	if c.Len() != 2 {
		t.Errorf("cache holds %d entries, want 2", c.Len())
	}
}

func TestCacheMatchesGenerate(t *testing.T) {
	spec := OneDegree()
	cached, err := Cached(spec)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if cached.NumTasks() != fresh.NumTasks() || cached.NumFiles() != fresh.NumFiles() {
		t.Errorf("cached %d tasks/%d files vs fresh %d/%d",
			cached.NumTasks(), cached.NumFiles(), fresh.NumTasks(), fresh.NumFiles())
	}
	if cached.TotalRuntime() != fresh.TotalRuntime() {
		t.Errorf("cached runtime %v vs fresh %v", cached.TotalRuntime(), fresh.TotalRuntime())
	}
	if cached.TotalFileBytes() != fresh.TotalFileBytes() {
		t.Errorf("cached bytes %v vs fresh %v", cached.TotalFileBytes(), fresh.TotalFileBytes())
	}
}

func TestCacheConcurrentSingleGeneration(t *testing.T) {
	var c Cache
	const goroutines = 16
	out := make([]interface{ NumTasks() int }, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for i := 0; i < goroutines; i++ {
		go func(i int) {
			defer wg.Done()
			w, err := c.Generate(OneDegree())
			if err != nil {
				t.Error(err)
				return
			}
			out[i] = w
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if out[i] != out[0] {
			t.Fatalf("goroutine %d got a different workflow", i)
		}
	}
	if c.Len() != 1 {
		t.Errorf("cache holds %d entries, want 1", c.Len())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	one, two, four := OneDegree(), TwoDegree(), FourDegree()
	mustGen := func(s Spec) {
		t.Helper()
		if _, err := c.Generate(s); err != nil {
			t.Fatal(err)
		}
	}
	mustGen(one)
	mustGen(two)
	mustGen(one) // touch: one is now more recently used than two
	mustGen(four)
	if c.Len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", c.Len())
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	// two was least recently used, so it must be the evicted one: asking
	// for one and four again is all hits, asking for two regenerates.
	before := c.Stats()
	mustGen(one)
	mustGen(four)
	if got := c.Stats(); got.Misses != before.Misses {
		t.Errorf("resident entries missed: misses %d -> %d", before.Misses, got.Misses)
	}
	mustGen(two)
	if got := c.Stats(); got.Misses != before.Misses+1 {
		t.Errorf("evicted entry not regenerated: misses %d -> %d", before.Misses, got.Misses)
	}
	if got := c.Stats(); got.Evictions != 2 {
		t.Errorf("evictions = %d, want 2", got.Evictions)
	}
}

func TestCacheStats(t *testing.T) {
	var c Cache // unbounded
	if _, err := c.Generate(OneDegree()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := c.Generate(OneDegree()); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Hits != 3 || st.Misses != 1 || st.Evictions != 0 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 3 hits / 1 miss / 0 evictions / 1 entry", st)
	}
}

func TestCacheInvalidSpec(t *testing.T) {
	var c Cache
	bad := OneDegree()
	bad.Images = 0
	if _, err := c.Generate(bad); err == nil {
		t.Fatal("invalid spec accepted")
	}
	// The error is memoized too: same spec, same answer.
	if _, err := c.Generate(bad); err == nil {
		t.Fatal("invalid spec accepted on second lookup")
	}
}
