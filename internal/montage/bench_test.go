package montage

import "testing"

func benchGenerate(b *testing.B, spec Spec) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenerateOneDegree measures building + calibrating the
// 203-task workflow.
func BenchmarkGenerateOneDegree(b *testing.B) { benchGenerate(b, OneDegree()) }

// BenchmarkGenerateFourDegree measures the 3,027-task workflow.
func BenchmarkGenerateFourDegree(b *testing.B) { benchGenerate(b, FourDegree()) }
