package montage

import (
	"testing"

	"repro/internal/units"
)

func TestGenerateWithoutCCRTarget(t *testing.T) {
	// TargetCCR = 0 skips the size calibration entirely; runtimes are
	// still calibrated.
	s := OneDegree()
	s.TargetCCR = 0
	w, err := Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	if got := w.TotalRuntime().Hours(); got < 5.59 || got > 5.61 {
		t.Errorf("runtime calibration lost: %v h", got)
	}
	// The uncalibrated CCR differs from the preset's target.
	if ccr := w.CCR(units.Mbps(10)); ccr == 0.053 {
		t.Error("CCR coincidentally equals target without calibration")
	}
}

func TestGenerateTinyCustomSpec(t *testing.T) {
	// The smallest legal Montage: 2 images, 1 overlap.
	s := Spec{
		Name: "tiny", Degrees: 0.2, Images: 2, Diffs: 1,
		TotalCPU:    600,
		MosaicBytes: units.Bytes(10 * units.MB),
		TargetCCR:   0.05, Bandwidth: units.Mbps(10), Seed: 1,
	}
	w, err := Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	if w.NumTasks() != s.TaskCount() {
		t.Errorf("tasks = %d, want %d", w.NumTasks(), s.TaskCount())
	}
	if w.MaxLevel() != 8 {
		t.Errorf("levels = %d, want 8", w.MaxLevel())
	}
}

func TestFromDegreesSubDegree(t *testing.T) {
	s := FromDegrees(0.5, 3)
	if err := s.Validate(); err != nil {
		t.Fatalf("0.5-degree spec invalid: %v", err)
	}
	w, err := Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	w1, err := Generate(OneDegree())
	if err != nil {
		t.Fatal(err)
	}
	if w.NumTasks() >= w1.NumTasks() {
		t.Errorf("0.5-degree workflow (%d tasks) not smaller than 1-degree (%d)",
			w.NumTasks(), w1.NumTasks())
	}
}

func TestPresetsOrder(t *testing.T) {
	ps := Presets()
	if len(ps) != 3 {
		t.Fatalf("presets = %d, want 3", len(ps))
	}
	for i := 1; i < len(ps); i++ {
		if ps[i].TaskCount() <= ps[i-1].TaskCount() {
			t.Error("presets not in size order")
		}
	}
}
