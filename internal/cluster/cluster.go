// Package cluster implements horizontal task clustering, the Pegasus
// optimization the Montage project used in production to cut scheduling
// overhead: tasks of the same type at the same workflow level are merged
// into bundles that run as one schedulable unit.
//
// Under the paper's per-second cost normalization clustering is cost-
// neutral (total CPU time is conserved), but it reduces the simulator's
// scheduling granularity and, under real hourly billing or per-task
// dispatch overheads, changes the bill -- which is what the clustering
// ablation measures.
package cluster

import (
	"fmt"
	"sort"

	"repro/internal/dag"
	"repro/internal/units"
)

// Horizontal merges same-type tasks at the same level into groups of up
// to factor tasks, returning a new finalized workflow.  factor == 1
// returns a plain copy.  File identities, sizes, external inputs and
// outputs are preserved; a bundle's runtime is the sum of its members'
// (the members run sequentially inside the bundle).
func Horizontal(wf *dag.Workflow, factor int) (*dag.Workflow, error) {
	if !wf.Finalized() {
		return nil, fmt.Errorf("cluster: workflow %q not finalized", wf.Name)
	}
	if factor < 1 {
		return nil, fmt.Errorf("cluster: factor %d below 1", factor)
	}
	out := dag.New(fmt.Sprintf("%s-cluster%d", wf.Name, factor))
	for _, f := range wf.Files() {
		if _, err := out.AddFile(f.Name, f.Size, f.Output); err != nil {
			return nil, fmt.Errorf("cluster: %w", err)
		}
	}

	// Group tasks by (level, type) in task-ID order, then chunk.
	type groupKey struct {
		level int
		typ   string
	}
	groups := make(map[groupKey][]*dag.Task)
	var keys []groupKey
	for _, t := range wf.Tasks() {
		k := groupKey{t.Level(), t.Type}
		if _, seen := groups[k]; !seen {
			keys = append(keys, k)
		}
		groups[k] = append(groups[k], t)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].level != keys[j].level {
			return keys[i].level < keys[j].level
		}
		return keys[i].typ < keys[j].typ
	})

	for _, k := range keys {
		members := groups[k]
		for start := 0; start < len(members); start += factor {
			end := start + factor
			if end > len(members) {
				end = len(members)
			}
			bundle := members[start:end]
			if len(bundle) == 1 {
				t := bundle[0]
				if _, err := out.AddTask(t.Name, t.Type, t.Runtime, t.Inputs, t.Outputs); err != nil {
					return nil, fmt.Errorf("cluster: %w", err)
				}
				continue
			}
			var (
				runtime units.Duration
				inputs  []string
				outputs []string
				inSeen  = map[string]bool{}
				outSeen = map[string]bool{}
			)
			for _, t := range bundle {
				runtime += t.Runtime
				for _, in := range t.Inputs {
					if !inSeen[in] {
						inSeen[in] = true
						inputs = append(inputs, in)
					}
				}
				for _, o := range t.Outputs {
					if !outSeen[o] {
						outSeen[o] = true
						outputs = append(outputs, o)
					}
				}
			}
			name := fmt.Sprintf("cluster-%s-l%d-%04d", k.typ, k.level, start/factor)
			if _, err := out.AddTask(name, k.typ, runtime, inputs, outputs); err != nil {
				return nil, fmt.Errorf("cluster: %w", err)
			}
		}
	}
	if err := out.Finalize(); err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	return out, nil
}
