package cluster

import (
	"testing"
	"testing/quick"

	"repro/internal/dag"
	"repro/internal/dagtest"
	"repro/internal/datamgmt"
	"repro/internal/exec"
	"repro/internal/montage"
)

func oneDeg(t *testing.T) *dag.Workflow {
	t.Helper()
	w, err := montage.Generate(montage.OneDegree())
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestHorizontalFactorOneIsCopy(t *testing.T) {
	w := oneDeg(t)
	c, err := Horizontal(w, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumTasks() != w.NumTasks() || c.NumFiles() != w.NumFiles() {
		t.Fatalf("factor-1 clustering changed shape: %d/%d tasks", c.NumTasks(), w.NumTasks())
	}
	if c.TotalRuntime() != w.TotalRuntime() {
		t.Error("factor-1 clustering changed total runtime")
	}
}

func TestHorizontalMergesFanStages(t *testing.T) {
	w := oneDeg(t)
	c, err := Horizontal(w, 8)
	if err != nil {
		t.Fatal(err)
	}
	// 45 mProject -> 6 bundles, 108 mDiffFit -> 14, 45 mBackground -> 6,
	// plus the 5 serial tasks unchanged: 6+14+6+5 = 31.
	if got := c.NumTasks(); got != 31 {
		t.Errorf("clustered task count = %d, want 31", got)
	}
	// Conserved aggregates (up to float summation order).
	if d := c.TotalRuntime() - w.TotalRuntime(); d > 1e-6 || d < -1e-6 {
		t.Errorf("total runtime changed: %v vs %v", c.TotalRuntime(), w.TotalRuntime())
	}
	if c.TotalFileBytes() != w.TotalFileBytes() {
		t.Error("total file bytes changed")
	}
	if c.InputBytes() != w.InputBytes() || c.OutputBytes() != w.OutputBytes() {
		t.Error("external volumes changed")
	}
	// Structure: still a valid Montage-shaped DAG with 8 levels.
	if c.MaxLevel() != w.MaxLevel() {
		t.Errorf("levels changed: %d vs %d", c.MaxLevel(), w.MaxLevel())
	}
	// Parallelism shrinks by ~factor.
	if got := c.MaxParallelism(); got != 14 {
		t.Errorf("clustered parallelism = %d, want 14", got)
	}
}

func TestHorizontalValidation(t *testing.T) {
	w := oneDeg(t)
	if _, err := Horizontal(w, 0); err == nil {
		t.Error("factor 0 accepted")
	}
	if _, err := Horizontal(dag.New("x"), 2); err == nil {
		t.Error("unfinalized workflow accepted")
	}
}

func TestClusteredRunEquivalence(t *testing.T) {
	// Running the clustered workflow must preserve the paper's cost
	// inputs: same CPU seconds, same transfers (regular mode).
	w := oneDeg(t)
	c, err := Horizontal(w, 4)
	if err != nil {
		t.Fatal(err)
	}
	base, err := exec.Run(w, exec.Config{Mode: datamgmt.Regular, Processors: 16})
	if err != nil {
		t.Fatal(err)
	}
	clustered, err := exec.Run(c, exec.Config{Mode: datamgmt.Regular, Processors: 16})
	if err != nil {
		t.Fatal(err)
	}
	if d := clustered.CPUSeconds - base.CPUSeconds; d > 1e-6 || d < -1e-6 {
		t.Errorf("CPU seconds changed: %v vs %v", clustered.CPUSeconds, base.CPUSeconds)
	}
	if clustered.BytesIn != base.BytesIn || clustered.BytesOut != base.BytesOut {
		t.Error("transfer volumes changed")
	}
	// Coarser units cannot finish sooner on the same pool.
	if clustered.ExecTime < base.ExecTime-1e-9 {
		t.Errorf("clustered run faster than unclustered: %v vs %v",
			clustered.ExecTime, base.ExecTime)
	}
}

// Property: clustering conserves runtime, bytes and validity on random
// layered workflows, for any factor.
func TestPropClusterConservation(t *testing.T) {
	f := func(seed int64, factorRaw uint8) bool {
		w := dagtest.RandomLayered(seed)
		factor := int(factorRaw)%6 + 1
		c, err := Horizontal(w, factor)
		if err != nil {
			return false
		}
		if d := c.TotalRuntime() - w.TotalRuntime(); d > 1e-6 || d < -1e-6 {
			return false
		}
		if c.TotalFileBytes() != w.TotalFileBytes() {
			return false
		}
		if c.InputBytes() != w.InputBytes() || c.OutputBytes() != w.OutputBytes() {
			return false
		}
		if c.NumTasks() > w.NumTasks() {
			return false
		}
		// The clustered workflow still executes to completion.
		m, err := exec.Run(c, exec.Config{Mode: datamgmt.Cleanup, Processors: 2})
		if err != nil {
			return false
		}
		return m.TasksRun == c.NumTasks()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
