// Package sweep is the ctxflow fixture: its gated import path puts
// every loop and goroutine here under the cancellation rule.
package sweep

import (
	"context"
	"time"
)

// recvNoContext blocks on a bare channel receive with no cancellation
// route at all: the canonical leak.
func recvNoContext(ch chan int) int {
	total := 0
	for {
		v, ok := <-ch // want `never consults a context`
		if !ok {
			return total
		}
		total += v
	}
}

// sendNoContext blocks on the send side instead.
func sendNoContext(out chan<- int, items []int) {
	for _, v := range items {
		out <- v // want `never consults a context`
	}
}

// sleepPoll spins on the wall clock without a context.
func sleepPoll(ready func() bool) {
	for !ready() {
		time.Sleep(time.Millisecond) // want `never consults a context`
	}
}

// selectDone is the remedied form of recvNoContext: the select gives
// cancellation a route in every iteration.
func selectDone(ctx context.Context, ch chan int) int {
	total := 0
	for {
		select {
		case <-ctx.Done():
			return total
		case v, ok := <-ch:
			if !ok {
				return total
			}
			total += v
		}
	}
}

// errPoll consults ctx.Err each pass, the sweep-worker idiom.
func errPoll(ctx context.Context, ch chan int) int {
	total := 0
	for {
		if ctx.Err() != nil {
			return total
		}
		total += <-ch
	}
}

// passThrough hands its context to the callee that does the blocking
// coordination; the loop itself stays cancellable through it.
func passThrough(ctx context.Context, ch chan int, fn func(context.Context, int) int) int {
	total := 0
	for v := range ch {
		total += fn(ctx, v)
		ch <- total
	}
	return total
}

// nonBlocking loops never trip the rule: no channel ops, no sleeps.
func nonBlocking(items []int) int {
	total := 0
	for _, v := range items {
		total += v
	}
	return total
}

// launchBare starts a goroutine with no context and no annotation.
func launchBare(fn func()) {
	go fn() // want `goroutine launches without a context`
}

// launchWithArg passes its context as a call argument: scoped.
func launchWithArg(ctx context.Context, fn func(context.Context)) {
	go fn(ctx)
}

// launchCapture closes over the context inside the literal: scoped.
func launchCapture(ctx context.Context, ch chan int) {
	go func() {
		<-ctx.Done()
		close(ch)
	}()
}

// launchDetached is sanctioned: the annotation names why it outlives
// its launcher.
func launchDetached(fn func()) {
	//repro:detached fixture goroutine serves until process exit
	go fn()
}

// launchDetachedNoReason carries the verb but forgets the audit.
func launchDetachedNoReason(fn func()) {
	//repro:detached
	go fn() // want `needs a reason`
}
