// Package ctxflow enforces cancellation discipline in the packages
// whose loops and goroutines sit on the request path: every loop that
// can block must stay cancellable, and every goroutine launch must be
// handed a context or declare itself detached.
//
// A loop "can block" when its body performs a channel send or receive
// or sleeps (time.Sleep).  Such a loop must also consult its context
// each iteration, in any of the forms Go code actually uses:
//
//   - select on <-ctx.Done() (or receive it directly),
//   - poll ctx.Err(),
//   - pass the context to a callee (fn(ctx, ...)) that does either.
//
// A `go` launch must receive a context -- as a call argument or by
// capturing a context variable in its function literal -- so the new
// goroutine is tied to some cancellation scope.  A goroutine that is
// deliberately unscoped (a process-lifetime listener, a singleflight
// body that outlives canceled callers) must say so where it launches:
//
//	//repro:detached <reason>
//
// on the go statement's line or the line above, reason mandatory.
// The annotation shares the //repro:nokey grammar and also satisfies
// the goroleak join requirement: detached means "audited to leak
// nothing", and the reason records the audit.
package ctxflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint"
	"repro/internal/lint/nokey"
)

// Analyzer is the cancellation-discipline check.
var Analyzer = &lint.Analyzer{
	Name: "ctxflow",
	Doc:  "require blocking loops to consult their context and goroutine launches to receive one or be marked //repro:detached",
	Run:  run,
}

// gated lists the packages under the rule: the sweep worker pool, the
// executor, the HTTP service layer, and the storage/sharding tiers its
// request paths thread through.  (cmd/reprosrv's goroutines are covered
// by goroleak; its loops are flag parsing and shutdown plumbing, not
// request-path concurrency.)
var gated = map[string]bool{
	"repro/internal/sweep":  true,
	"repro/internal/exec":   true,
	"repro/internal/server": true,
	"repro/internal/store":  true,
	"repro/internal/shard":  true,
}

// DetachedVerb is the escape-hatch annotation verb, shared with
// goroleak.
const DetachedVerb = "detached"

func run(pass *lint.Pass) error {
	if !gated[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.Files {
		dirs := nokey.CollectDirectives(pass.Fset, f, DetachedVerb)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ForStmt:
				checkLoop(pass, n.Body, token.NoPos)
			case *ast.RangeStmt:
				// Ranging over a channel is itself a blocking receive.
				chanRange := token.NoPos
				if tv, ok := pass.Info.Types[n.X]; ok && tv.Type != nil {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						chanRange = n.Pos()
					}
				}
				checkLoop(pass, n.Body, chanRange)
			case *ast.GoStmt:
				checkGo(pass, n, dirs)
			}
			return true
		})
	}
	return nil
}

// checkLoop flags a blocking loop that never consults a context.  A
// valid rangeRecv marks a loop whose range clause already blocks
// (ranging over a channel).
func checkLoop(pass *lint.Pass, body *ast.BlockStmt, rangeRecv token.Pos) {
	blockSite := rangeRecv
	if !blockSite.IsValid() {
		blockSite = findBlockingOp(pass, body)
	}
	if !blockSite.IsValid() {
		return
	}
	if consultsContext(pass, body) {
		return
	}
	pass.Reportf(blockSite, "this loop can block here but never consults a context; select on ctx.Done(), poll ctx.Err(), or pass the context to a callee so cancellation can reach it")
}

// findBlockingOp returns the position of the first operation in the
// loop body that can block indefinitely: a channel send, a channel
// receive, or time.Sleep.  Receives of a context's Done channel do not
// count -- blocking on cancellation IS the remedy.  Function literals
// and nested loops are skipped: a closure's interior blocks the
// goroutine that runs it, and nested loops are checked on their own,
// so each blocking site is attributed to exactly one loop.
func findBlockingOp(pass *lint.Pass, body *ast.BlockStmt) token.Pos {
	var found token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		if found.IsValid() {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit, *ast.ForStmt, *ast.RangeStmt:
			return false
		case *ast.SendStmt:
			found = n.Arrow
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !isContextChannel(pass, n.X) {
				found = n.OpPos
			}
		case *ast.CallExpr:
			if fn := lint.Callee(pass.Info, n); fn != nil && fn.Pkg() != nil &&
				fn.Pkg().Path() == "time" && fn.Name() == "Sleep" {
				found = n.Pos()
			}
		}
		return true
	})
	return found
}

// consultsContext reports whether the loop body touches a context at
// all: calls ctx.Done()/ctx.Err(), or passes a context-typed argument
// to any callee.
func consultsContext(pass *lint.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if (sel.Sel.Name == "Done" || sel.Sel.Name == "Err") && isContextExpr(pass, sel.X) {
				found = true
				return false
			}
		}
		for _, arg := range call.Args {
			if isContextExpr(pass, arg) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// checkGo requires the launched goroutine to receive a context (as an
// argument or by closing over one) or to carry //repro:detached.
func checkGo(pass *lint.Pass, g *ast.GoStmt, dirs *nokey.Directives) {
	if goroutineSeesContext(pass, g.Call) {
		return
	}
	d, ok := dirs.At(g.Pos(), DetachedVerb)
	if !ok {
		pass.Reportf(g.Pos(), "goroutine launches without a context; pass one (or close over one) so it joins a cancellation scope, or annotate //repro:detached <reason> if it is deliberately unscoped")
		return
	}
	if d.Reason == "" {
		pass.Reportf(g.Pos(), "//repro:detached needs a reason: //repro:detached <why this goroutine outlives its launcher>")
	}
}

// goroutineSeesContext reports whether the go statement's call passes
// a context argument or its function literal mentions a context-typed
// variable (capture).
func goroutineSeesContext(pass *lint.Pass, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if isContextExpr(pass, arg) {
			return true
		}
	}
	lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && isContextExpr(pass, id) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isContextExpr reports whether the expression's static type is
// context.Context.
func isContextExpr(pass *lint.Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		// Identifiers used as operands are sometimes only in Uses.
		if id, ok := e.(*ast.Ident); ok {
			if obj := pass.Info.Uses[id]; obj != nil {
				return isContextType(obj.Type())
			}
		}
		return false
	}
	return isContextType(tv.Type)
}

// isContextChannel reports whether a received-from expression is a
// context's Done channel: <-ctx.Done() or a variable of type
// <-chan struct{} produced by one is out of scope -- only the direct
// call form counts, which is the form the codebase uses.
func isContextChannel(pass *lint.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	return isContextExpr(pass, sel.X)
}

// isContextType matches the context.Context named interface.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
