package ctxflow_test

import (
	"testing"

	"repro/internal/lint/ctxflow"
	"repro/internal/lint/linttest"
)

func TestFixture(t *testing.T) {
	if testing.Short() {
		t.Skip("fixture analysis shells out to go list")
	}
	linttest.Run(t, "testdata/mod", ctxflow.Analyzer)
}
