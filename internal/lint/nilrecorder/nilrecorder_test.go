package nilrecorder_test

import (
	"path/filepath"
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/nilrecorder"
)

// TestFixture pins the guard contract: unguarded and value-receiver
// Recorder methods are findings; guarded, ||-chained and
// receiver-free methods are clean.
func TestFixture(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "mod"), nilrecorder.Analyzer)
}
