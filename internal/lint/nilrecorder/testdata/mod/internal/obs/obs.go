// Package obs is the nilrecorder fixture: Recorder methods with and
// without the mandatory nil-receiver guard.
package obs

// Recorder captures run events; a nil *Recorder must be free to call.
type Recorder struct {
	events []string
}

// Guarded short-circuits on a nil receiver: the required shape.
func (r *Recorder) Guarded(ev string) {
	if r == nil {
		return
	}
	r.events = append(r.events, ev)
}

// Chained guards through the first operand of an || chain.
func (r *Recorder) Chained(ev string) {
	if r == nil || ev == "" {
		return
	}
	r.events = append(r.events, ev)
}

// Unguarded would dereference a nil receiver on the first call.
func (r *Recorder) Unguarded(ev string) { // want `method Unguarded on \*Recorder is missing its leading nil-receiver guard`
	r.events = append(r.events, ev)
}

// Value is declared on the value type, so it can never see the nil.
func (r Recorder) Value() int { // want `method Value is declared on the Recorder value`
	return len(r.events)
}

// Unused never touches its receiver; no guard is needed.
func (_ *Recorder) Unused() int {
	return 0
}
