// Package nilrecorder keeps the flight recorder free when disabled.
//
// The executor calls obs.Recorder methods unconditionally on every
// dispatch, preemption and checkpoint; an untraced run passes a nil
// recorder and relies on every method short-circuiting.  The contract
// is structural and easy to erode -- one new method without the guard
// and every untraced simulation panics -- so this analyzer pins it:
// every method declared on obs.Recorder must take a pointer receiver
// and open with
//
//	if r == nil {
//	    return ...
//	}
//
// (possibly as the first operand of an || chain).
package nilrecorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint"
)

// Analyzer is the nilrecorder check.
var Analyzer = &lint.Analyzer{
	Name: "nilrecorder",
	Doc:  "require a leading nil-receiver guard on every obs.Recorder method",
	Run:  run,
}

// recorderType names the guarded type inside its package.
const recorderType = "Recorder"

func run(pass *lint.Pass) error {
	if !strings.HasSuffix(pass.Pkg.Path(), "internal/obs") {
		return nil
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 {
				continue
			}
			checkMethod(pass, fd)
		}
	}
	return nil
}

func checkMethod(pass *lint.Pass, fd *ast.FuncDecl) {
	recv := fd.Recv.List[0]
	named, pointer := receiverType(pass, recv)
	if named == nil || named.Obj().Name() != recorderType {
		return
	}
	if !pointer {
		pass.Reportf(fd.Name.Pos(), "method %s is declared on the %s value; use a pointer receiver with a nil guard so calls on a nil recorder stay free instead of panicking", fd.Name.Name, recorderType)
		return
	}
	if len(recv.Names) == 0 || recv.Names[0].Name == "_" {
		return // the receiver is unused, so a nil receiver cannot be dereferenced
	}
	recvObj, _ := pass.Info.Defs[recv.Names[0]].(*types.Var)
	if fd.Body == nil || recvObj == nil {
		return
	}
	if !startsWithNilGuard(pass, fd.Body, recvObj) {
		pass.Reportf(fd.Name.Pos(), "method %s on *%s is missing its leading nil-receiver guard (if %s == nil { return ... }); tracing must stay free when disabled", fd.Name.Name, recorderType, recv.Names[0].Name)
	}
}

// receiverType unwraps the receiver declaration to its named type.
func receiverType(pass *lint.Pass, recv *ast.Field) (*types.Named, bool) {
	tv, ok := pass.Info.Types[recv.Type]
	if !ok || tv.Type == nil {
		return nil, false
	}
	t := tv.Type
	pointer := false
	if p, ok := t.(*types.Pointer); ok {
		pointer = true
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n, pointer
}

// startsWithNilGuard reports whether the body's first statement is an
// if whose condition checks the receiver against nil and whose branch
// returns.
func startsWithNilGuard(pass *lint.Pass, body *ast.BlockStmt, recvObj *types.Var) bool {
	if len(body.List) == 0 {
		return false
	}
	ifs, ok := body.List[0].(*ast.IfStmt)
	if !ok || ifs.Init != nil {
		return false
	}
	if !condChecksNil(pass, ifs.Cond, recvObj) {
		return false
	}
	if len(ifs.Body.List) == 0 {
		return false
	}
	_, returns := ifs.Body.List[len(ifs.Body.List)-1].(*ast.ReturnStmt)
	return returns
}

// condChecksNil accepts `recv == nil` directly or as an operand of an
// || chain.
func condChecksNil(pass *lint.Pass, cond ast.Expr, recvObj *types.Var) bool {
	switch e := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LOR:
			return condChecksNil(pass, e.X, recvObj) || condChecksNil(pass, e.Y, recvObj)
		case token.EQL:
			return operandIs(pass, e.X, recvObj) && isNil(pass, e.Y) ||
				operandIs(pass, e.Y, recvObj) && isNil(pass, e.X)
		}
	}
	return false
}

func operandIs(pass *lint.Pass, expr ast.Expr, v *types.Var) bool {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	return ok && pass.Info.Uses[id] == v
}

func isNil(pass *lint.Pass, expr ast.Expr) bool {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNilConst := pass.Info.Uses[id].(*types.Nil)
	return isNilConst
}
