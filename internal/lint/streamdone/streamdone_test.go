package streamdone_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/streamdone"
)

func TestFixture(t *testing.T) {
	if testing.Short() {
		t.Skip("fixture analysis shells out to go list")
	}
	linttest.Run(t, "testdata/mod", streamdone.Analyzer)
}
