// Package streamdone proves the NDJSON streaming contract the service
// documents: once a handler switches the response to
// application/x-ndjson, the status line is gone, so the stream itself
// must tell the client how it ended -- with exactly one terminal
// `done` or `error` envelope on every return path.
//
// The analyzer anchors on the Content-Type set call (the stream
// start), builds the handler's CFG, and requires every path from there
// to return to contain exactly one terminal emit: an Encode call whose
// composite-literal argument sets a top-level Done or Error field.
// Two kinds of early return are sanctioned, because there is no client
// left to tell:
//
//   - transport death: a return guarded by a checked Encode result
//     (if err := enc.Encode(...); err != nil { return });
//   - client hang-up: a path that consults ctx.Err() before bailing;
//   - pre-stream failure: a path through s.fail/http.Error, which ends
//     the request with an HTTP status because no rows were written yet.
//
// Two presence rules ride along: a handler that streams row/event
// envelopes must flush them (http.Flusher), and a deferred recover()
// inside a streaming handler must either emit a terminal envelope or
// re-panic -- a swallowed panic mid-stream would otherwise truncate
// the stream with no sentinel at all.
package streamdone

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/cfg"
)

// Analyzer is the NDJSON-terminal check.
var Analyzer = &lint.Analyzer{
	Name: "streamdone",
	Doc:  "require NDJSON handlers to emit exactly one terminal done/error envelope and a flush on every return path",
	Run:  run,
}

// gated lists the packages that write NDJSON streams.
var gated = map[string]bool{
	"repro/internal/server": true,
}

func run(pass *lint.Pass) error {
	if !gated[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkHandler(pass, fd)
		}
	}
	return nil
}

// checkHandler applies the streaming contract to one function, if it
// starts an NDJSON stream.
func checkHandler(pass *lint.Pass, fd *ast.FuncDecl) {
	marker := findNDJSONMarker(fd.Body)
	if marker == nil {
		return
	}
	g := cfg.New(fd.Body)

	// Exactly one terminal on every path: first, at least one.
	pred := func(n ast.Node) bool { return isTerminalEmit(n) || isSanctionedAbort(pass, n) }
	if !g.EveryPathContains(marker, pred) {
		pass.Reportf(marker.Pos(), "a return path of this NDJSON handler emits no terminal done/error envelope; after the stream starts, every return must end it with exactly one sentinel (client hang-up may be skipped after checking ctx.Err())")
	}

	// Then, at most one: no terminal may be followed by another.
	var terminals []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if isTerminalEmit(n) {
			terminals = append(terminals, n)
		}
		return true
	})
	for _, t := range terminals {
		if g.SomePathContains(t, isTerminalEmit) {
			pass.Reportf(t.Pos(), "another terminal envelope can follow this one on the same path; a stream ends with exactly one done/error sentinel -- return after emitting it")
		}
	}

	checkFlush(pass, fd)
	checkRecover(pass, fd, marker)
}

// checkFlush requires a handler that streams row/event envelopes to
// flush them.  Row emits usually live in callbacks, so this is a
// whole-function presence check, closures included.
func checkFlush(pass *lint.Pass, fd *ast.FuncDecl) {
	var firstRow ast.Node
	flushes := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if firstRow == nil && encodesEnvelope(call, "Row", "Event") {
			firstRow = call
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Flush" {
			flushes = true
		}
		return true
	})
	if firstRow != nil && !flushes {
		pass.Reportf(firstRow.Pos(), "row envelopes stream without a flush; take the http.Flusher and flush so rows reach the client before the stream ends")
	}
}

// checkRecover requires any deferred recover() in a streaming handler
// to end the stream: emit a terminal envelope or re-panic.
func checkRecover(pass *lint.Pass, fd *ast.FuncDecl, marker ast.Node) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		def, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		lit, ok := ast.Unparen(def.Call.Fun).(*ast.FuncLit)
		if !ok || !containsCallNamed(lit.Body, "recover") {
			return true
		}
		terminal := false
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			if isTerminalEmit(m) || containsPanic(m) {
				terminal = true
				return false
			}
			return true
		})
		if !terminal {
			pass.Reportf(def.Pos(), "this recover() swallows a mid-stream panic without ending the stream; emit a terminal error envelope from the recover path or re-panic")
		}
		return true
	})
}

// findNDJSONMarker locates the statement-level call that switches the
// response to application/x-ndjson, ignoring closures.
func findNDJSONMarker(body *ast.BlockStmt) ast.Node {
	var marker ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if marker != nil {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Set" {
			return true
		}
		for _, arg := range call.Args {
			if lit, ok := ast.Unparen(arg).(*ast.BasicLit); ok && strings.Contains(lit.Value, "application/x-ndjson") {
				marker = call
				return false
			}
		}
		return true
	})
	return marker
}

// isTerminalEmit matches enc.Encode(Envelope{Done: ...}) and
// enc.Encode(Envelope{Error: ...}).
func isTerminalEmit(n ast.Node) bool {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return false
	}
	return encodesEnvelope(call, "Done", "Error")
}

// encodesEnvelope matches a .Encode call whose single argument is a
// composite literal (possibly &-addressed) with one of the given
// top-level field keys set.
func encodesEnvelope(call *ast.CallExpr, keys ...string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Encode" || len(call.Args) != 1 {
		return false
	}
	arg := ast.Unparen(call.Args[0])
	if ue, ok := arg.(*ast.UnaryExpr); ok {
		arg = ast.Unparen(ue.X)
	}
	lit, ok := arg.(*ast.CompositeLit)
	if !ok {
		return false
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		id, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		for _, k := range keys {
			if id.Name == k {
				return true
			}
		}
	}
	return false
}

// isSanctionedAbort matches the three audited early-return shapes: a
// checked Encode result, a context liveness probe, and the pre-stream
// HTTP failure helpers.
func isSanctionedAbort(pass *lint.Pass, n ast.Node) bool {
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, rhs := range n.Rhs {
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Encode" {
					return true
				}
			}
		}
	case *ast.CallExpr:
		if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
			if sel.Sel.Name == "Err" && isContextExpr(pass, sel.X) {
				return true
			}
			if sel.Sel.Name == "fail" {
				return true
			}
		}
		if fn := lint.Callee(pass.Info, n); fn != nil && fn.Pkg() != nil &&
			fn.Pkg().Path() == "net/http" && fn.Name() == "Error" {
			return true
		}
	}
	return false
}

// containsCallNamed reports whether the subtree calls the named
// built-in or identifier.
func containsCallNamed(n ast.Node, name string) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if call, ok := m.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == name {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// containsPanic reports whether the node is a call to panic.
func containsPanic(n ast.Node) bool {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

// isContextExpr reports whether the expression's static type is
// context.Context.
func isContextExpr(pass *lint.Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
