// Package server is the streamdone fixture: every function here that
// switches to application/x-ndjson is under the terminal-envelope
// contract.
package server

import (
	"context"
	"encoding/json"
	"net/http"
)

// envelope mirrors the wire envelopes: one NDJSON line, exactly one
// field set.
type envelope struct {
	Row   *int   `json:"row,omitempty"`
	Done  *int   `json:"done,omitempty"`
	Error string `json:"error,omitempty"`
}

type srv struct{}

func (s *srv) fail(w http.ResponseWriter, code int, err error) {
	http.Error(w, err.Error(), code)
}

// missingTerminal streams rows and then just stops: the client cannot
// tell a complete stream from a truncated one.
func (s *srv) missingTerminal(w http.ResponseWriter, rows []int) {
	w.Header().Set("Content-Type", "application/x-ndjson") // want `no terminal done/error envelope`
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for i := range rows {
		enc.Encode(envelope{Row: &rows[i]}) //nolint:errcheck
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// streamClean is the production shape: pre-stream failures use the
// HTTP status, mid-stream failures emit the error envelope unless the
// client hung up, transport death aborts silently, success ends with
// done.
func (s *srv) streamClean(ctx context.Context, w http.ResponseWriter, rows []int, compute func(int) error) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	n := 0
	for i := range rows {
		if err := compute(i); err != nil {
			if n == 0 {
				s.fail(w, http.StatusInternalServerError, err)
				return
			}
			if ctx.Err() == nil {
				enc.Encode(envelope{Error: err.Error()}) //nolint:errcheck
			}
			return
		}
		if err := enc.Encode(envelope{Row: &rows[i]}); err != nil {
			return // transport dead: nothing left to tell the client
		}
		n++
		if flusher != nil {
			flusher.Flush()
		}
	}
	enc.Encode(envelope{Done: &n}) //nolint:errcheck
}

// doubleTerminal forgets the return after the error envelope, so a
// failed stream also claims success.
func (s *srv) doubleTerminal(w http.ResponseWriter, rows []int, err error) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, ok := w.(http.Flusher)
	enc := json.NewEncoder(w)
	n := 0
	for i := range rows {
		enc.Encode(envelope{Row: &rows[i]}) //nolint:errcheck
		if ok {
			flusher.Flush()
		}
		n++
	}
	if err != nil {
		enc.Encode(envelope{Error: err.Error()}) // want `another terminal envelope can follow`
	}
	enc.Encode(envelope{Done: &n}) //nolint:errcheck
}

// missingFlush buffers rows until the handler returns, defeating the
// point of streaming them.
func (s *srv) missingFlush(w http.ResponseWriter, rows []int) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	n := 0
	for i := range rows {
		enc.Encode(envelope{Row: &rows[i]}) // want `without a flush`
		n++
	}
	enc.Encode(envelope{Done: &n}) //nolint:errcheck
}

// recoverSwallowed hides a mid-stream panic: the stream ends with no
// sentinel and the client hangs waiting for one.
func (s *srv) recoverSwallowed(w http.ResponseWriter, rows []int) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	defer func() { // want `swallows a mid-stream panic`
		_ = recover()
	}()
	n := 0
	for i := range rows {
		enc.Encode(envelope{Row: &rows[i]}) //nolint:errcheck
		if flusher != nil {
			flusher.Flush()
		}
		n++
	}
	enc.Encode(envelope{Done: &n}) //nolint:errcheck
}

// recoverTerminates turns the panic into the stream's error sentinel.
func (s *srv) recoverTerminates(w http.ResponseWriter, rows []int) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	defer func() {
		if r := recover(); r != nil {
			enc.Encode(envelope{Error: "panic mid-stream"}) //nolint:errcheck
		}
	}()
	n := 0
	for i := range rows {
		enc.Encode(envelope{Row: &rows[i]}) //nolint:errcheck
		if flusher != nil {
			flusher.Flush()
		}
		n++
	}
	enc.Encode(envelope{Done: &n}) //nolint:errcheck
}

// plainJSON never switches to NDJSON; the contract does not apply.
func (s *srv) plainJSON(w http.ResponseWriter, doc map[string]int) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(doc) //nolint:errcheck
}
