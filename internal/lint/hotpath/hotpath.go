// Package hotpath keeps annotated hot functions allocation-free in
// their loop bodies.  A function marked
//
//	//repro:hot
//
// in its doc comment -- the exec dispatch/event loops, the event-engine
// kernel, the sweep worker -- promises that its loops run millions of
// times per request, so per-iteration allocation is a performance bug
// the benchmarks will eventually catch; this analyzer catches it at
// lint time and names the allocation site.
//
// Inside a hot function's loop bodies the analyzer forbids:
//
//   - fmt.* calls (formatting allocates and reflects);
//   - reflect.* calls;
//   - map allocation: make(map...) or a map composite literal;
//   - closure allocation: any function literal;
//   - interface boxing: passing or converting a concrete value whose
//     type is not pointer-shaped (pointers, channels, maps and funcs
//     are stored directly in an interface; structs, strings, slices
//     and numbers escape to the heap when boxed).
//
// Code before or after the loops is not checked: one-time setup may
// allocate.  Function literals are not followed -- a closure built
// inside a loop is already flagged as an allocation, and one built
// outside runs on its own schedule.
package hotpath

import (
	"go/ast"
	"go/types"

	"repro/internal/lint"
	"repro/internal/lint/nokey"
)

// Analyzer is the hot-path allocation check.
var Analyzer = &lint.Analyzer{
	Name: "hotpath",
	Doc:  "forbid fmt/reflect calls, map and closure allocation, and interface boxing in the loop bodies of //repro:hot functions",
	Run:  run,
}

// HotVerb is the annotation verb that opts a function in.
const HotVerb = "hot"

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, hot := nokey.HasDirective(fd.Doc, HotVerb); hot {
				checkHot(pass, fd)
			}
		}
	}
	return nil
}

// checkHot flags per-iteration allocation inside the function's loop
// bodies.
func checkHot(pass *lint.Pass, fd *ast.FuncDecl) {
	// Collect every loop body span; a node is "per iteration" when it
	// sits inside any of them.
	var loops []*ast.BlockStmt
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			loops = append(loops, n.Body)
		case *ast.RangeStmt:
			loops = append(loops, n.Body)
		}
		return true
	})
	inLoop := func(n ast.Node) bool {
		for _, b := range loops {
			if n.Pos() >= b.Pos() && n.End() <= b.End() {
				return true
			}
		}
		return false
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if inLoop(n) {
				pass.Reportf(n.Pos(), "closure allocated on every iteration of a //repro:hot loop; hoist it out of the loop or pass a named function")
			}
			return false
		case *ast.CompositeLit:
			if inLoop(n) && isMapType(pass, n) {
				pass.Reportf(n.Pos(), "map allocated on every iteration of a //repro:hot loop; hoist the map out of the loop and reuse it")
			}
		case *ast.CallExpr:
			if inLoop(n) {
				checkCall(pass, n)
			}
		}
		return true
	})
}

// checkCall flags banned callees, per-iteration map makes, and
// interface boxing at one call site.
func checkCall(pass *lint.Pass, call *ast.CallExpr) {
	// Conversions: any(v) / io.Reader(v) box concrete values.
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type.Underlying()) && len(call.Args) == 1 {
			reportIfBoxes(pass, call.Args[0], tv.Type)
		}
		return
	}

	if fn := lint.Callee(pass.Info, call); fn != nil && fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "fmt":
			pass.Reportf(call.Pos(), "fmt.%s formats through reflection and allocates on every iteration of a //repro:hot loop; precompute the message or record raw values", fn.Name())
			return
		case "reflect":
			pass.Reportf(call.Pos(), "reflect.%s on every iteration of a //repro:hot loop; hot paths must stay monomorphic", fn.Name())
			return
		}
	}

	// make(map[...]...) allocates per iteration.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "make" && len(call.Args) >= 1 {
		if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
			if tv, ok := pass.Info.Types[call.Args[0]]; ok && tv.Type != nil {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					pass.Reportf(call.Pos(), "map allocated on every iteration of a //repro:hot loop; hoist the map out of the loop and reuse it")
				}
			}
		}
		return
	}

	// Interface boxing through call arguments, func values included.
	tv, ok := pass.Info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // a spread slice is passed as-is
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt.Underlying()) {
			continue
		}
		reportIfBoxes(pass, arg, pt)
	}
}

// reportIfBoxes flags the argument when assigning it to the interface
// type allocates: its static type is concrete and not pointer-shaped.
func reportIfBoxes(pass *lint.Pass, arg ast.Expr, iface types.Type) {
	tv, ok := pass.Info.Types[arg]
	if !ok || tv.Type == nil {
		return
	}
	at := tv.Type
	if types.IsInterface(at.Underlying()) {
		return // interface to interface: no new allocation
	}
	if tv.Value != nil {
		return // constants box to pointers into static data, not the heap
	}
	if isPointerShaped(at) {
		return
	}
	pass.Reportf(arg.Pos(), "%s boxed into %s on every iteration of a //repro:hot loop; pass a pointer or restructure so the interface is built once",
		types.TypeString(at, types.RelativeTo(pass.Pkg)), types.TypeString(iface, types.RelativeTo(pass.Pkg)))
}

// isPointerShaped reports whether values of the type are stored
// directly in an interface word: pointers, channels, maps, functions
// and unsafe pointers.  Everything else escapes when boxed.
func isPointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// isMapType reports whether the composite literal builds a map.
func isMapType(pass *lint.Pass, lit *ast.CompositeLit) bool {
	tv, ok := pass.Info.Types[lit]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}
