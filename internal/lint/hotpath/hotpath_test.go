package hotpath_test

import (
	"testing"

	"repro/internal/lint/hotpath"
	"repro/internal/lint/linttest"
)

func TestFixture(t *testing.T) {
	if testing.Short() {
		t.Skip("fixture analysis shells out to go list")
	}
	linttest.Run(t, "testdata/mod", hotpath.Analyzer)
}
