// Package exec is the hotpath fixture.  The analyzer is gated by the
// //repro:hot annotation, not the package path, so the flagged and
// clean forms live side by side.
package exec

import (
	"fmt"
	"reflect"
	"sort"
)

func sink(v any)      { _ = v }
func use(v int) int   { return v + 1 }
func handle(s string) { _ = s }

// hotClean is the shape the annotation promises: arithmetic, indexing,
// pointer arguments, no per-iteration allocation.
//
//repro:hot
func hotClean(items []int, out []int, m map[int]int) int {
	total := 0
	for i, v := range items {
		out[i] = use(v)
		m[i] = v
		total += v
		sink(&out[i]) // pointer-shaped: stored directly in the interface
	}
	return total
}

// hotSetupAllowed may allocate before and after its loops; only the
// loop bodies are hot.
//
//repro:hot
func hotSetupAllowed(items []int) map[int]int {
	m := make(map[int]int, len(items))
	f := func(v int) int { return v * 2 }
	for i, v := range items {
		m[i] = f(v)
	}
	sort.Ints(items)
	return m
}

// hotFmt formats per iteration.
//
//repro:hot
func hotFmt(items []int) {
	for _, v := range items {
		handle(fmt.Sprintf("item %d", v)) // want `fmt\.Sprintf formats through reflection`
	}
}

// hotReflect reflects per iteration.
//
//repro:hot
func hotReflect(items []int) {
	for _, v := range items {
		_ = reflect.ValueOf(&v) // want `reflect\.ValueOf on every iteration`
	}
}

// hotMapMake allocates a map per iteration.
//
//repro:hot
func hotMapMake(items []int) {
	for range items {
		m := make(map[int]int) // want `map allocated on every iteration`
		_ = m
	}
}

// hotMapLit allocates through the literal form.
//
//repro:hot
func hotMapLit(items []int) {
	for _, v := range items {
		m := map[string]int{"v": v} // want `map allocated on every iteration`
		_ = m
	}
}

// hotClosure allocates a closure per iteration.
//
//repro:hot
func hotClosure(items []int) {
	for _, v := range items {
		f := func() int { return v } // want `closure allocated on every iteration`
		_ = f()
	}
}

// hotBoxing passes a concrete int where an interface is expected: one
// heap allocation per iteration.
//
//repro:hot
func hotBoxing(items []int) {
	for _, v := range items {
		sink(v) // want `int boxed into any`
	}
}

// hotConversion boxes through an explicit conversion.
//
//repro:hot
func hotConversion(items []int) {
	for _, v := range items {
		x := any(v) // want `int boxed into any`
		_ = x
	}
}

// hotStructBoxing boxes a struct value.
type point struct{ x, y int }

//repro:hot
func hotStructBoxing(items []point) {
	for _, p := range items {
		sink(p) // want `point boxed into any`
	}
}

// notHot does all of the above without the annotation: convention says
// it is allowed to be slow.
func notHot(items []int) {
	for _, v := range items {
		handle(fmt.Sprintf("item %d", v))
		m := map[string]int{"v": v}
		_ = m
		sink(v)
	}
}
