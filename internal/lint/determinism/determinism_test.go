package determinism_test

import (
	"path/filepath"
	"testing"

	"repro/internal/lint/determinism"
	"repro/internal/lint/linttest"
)

// TestFixture pins the banned constructs (wall clock, global rand,
// order-leaking map ranges), the compliant forms of each, the
// //repro:nondet-ok escape hatch and the server exemption.
func TestFixture(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "mod"), determinism.Analyzer)
}
