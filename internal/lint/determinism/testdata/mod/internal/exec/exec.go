// Package exec is the fixture simulation package: every construct the
// determinism analyzer bans, next to the compliant form of each.
package exec

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Clock reads the wall clock inside the simulation.
func Clock() int64 {
	return time.Now().Unix() // want `time\.Now reads the wall clock`
}

// Elapsed is the same violation through time.Since.
func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time\.Since reads the wall clock`
}

// Draw samples from the unseeded global source.
func Draw() int {
	return rand.Intn(10) // want `math/rand\.Intn draws from the global random source`
}

// SeededDraw is the compliant form: an explicit seeded generator.
func SeededDraw(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// Emit publishes map iteration order on stdout.
func Emit(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `output written while ranging over a map publishes the iteration order`
	}
}

// Leak accumulates map keys with no later sort in the block.
func Leak(m map[string]int) []string {
	var out []string
	for k := range m { // want `map iteration order leaks into an accumulated value`
		out = append(out, k)
	}
	return out
}

// Sorted is the compliant collect-then-sort idiom.
func Sorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// PerIteration appends only to a slice declared inside the loop body;
// nothing order-sensitive survives an iteration.
func PerIteration(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var batch []int
		batch = append(batch, vs...)
		total += len(batch)
	}
	return total
}

// Audited shows the single-site escape hatch.
func Audited() int64 {
	//repro:nondet-ok fixture exercises the suppression marker
	return time.Now().Unix()
}
