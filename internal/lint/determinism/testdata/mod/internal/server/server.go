// Package server is exempt by allowlist: HTTP telemetry is wall-clock
// by definition, so nothing here may be flagged.
package server

import "time"

// Stamp timestamps a telemetry record.
func Stamp() int64 {
	return time.Now().UnixNano()
}
