// Package server is NOT exempt: the old package allowlist is gone, so
// even telemetry code must annotate each audited wall-clock site with
// //repro:nondet-ok <reason>.
package server

import "time"

// Stamp timestamps a telemetry record without an audit annotation.
func Stamp() int64 {
	return time.Now().UnixNano() // want `time\.Now reads the wall clock`
}

// StampAudited is the same read, opted in per-site.
func StampAudited() int64 {
	//repro:nondet-ok request telemetry is wall-clock by definition
	return time.Now().UnixNano()
}
