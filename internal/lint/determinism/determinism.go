// Package determinism forbids the three classic ways a simulation
// package stops being a pure function of its inputs:
//
//   - wall-clock reads (time.Now, time.Since, time.Until) -- simulated
//     time must be threaded explicitly;
//   - the unseeded global math/rand source (rand.Intn, rand.Float64,
//     rand.Shuffle, ... and every other package-level draw) -- all
//     sampling must go through rand.New(rand.NewSource(seed));
//   - map iteration whose order can leak into results: a `for range`
//     over a map whose body writes output, accumulates a string, or
//     appends to a slice that no later statement in the block sorts.
//
// The result cache, the sweep engine, the policy-tournament goldens
// and the flight-recorder purity tests all assume byte-identical
// reruns; any one of these constructs silently breaks all four.
//
// There is no package-level exemption: even the HTTP service layer,
// whose telemetry is wall-clock by definition, must annotate each
// audited site with a same-line or preceding-line comment
// (//repro:nondet-ok <reason>), so new nondeterminism is opt-in
// rather than invisible.  Test files are skipped -- a deadline loop
// in a test reads the wall clock legitimately and never feeds
// simulation state.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint"
)

// Analyzer is the determinism check.
var Analyzer = &lint.Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock reads, unseeded randomness and order-leaking map iteration in simulation packages",
	Run:  run,
}

// bannedTime are the wall-clock reads.
var bannedTime = map[string]bool{"Now": true, "Since": true, "Until": true}

// allowedRand are the package-level math/rand constructors that build
// seeded generators; every other package-level rand function draws
// from the global source.
var allowedRand = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// emitNames are call names that write output; inside a map-range body
// they publish iteration order.
var emitNames = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Error": true, "Errorf": true, "Fatal": true, "Fatalf": true,
	"Log": true, "Logf": true,
}

const suppressMarker = "//repro:nondet-ok"

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		suppressed := suppressedLines(pass.Fset, f)
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				checkCall(pass, call, suppressed)
			}
			for _, list := range stmtLists(n) {
				checkStmtList(pass, list, suppressed)
			}
			return true
		})
	}
	return nil
}

// checkCall flags wall-clock reads and global-source randomness.
func checkCall(pass *lint.Pass, call *ast.CallExpr, suppressed map[int]bool) {
	fn := lint.Callee(pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return // methods (e.g. on a seeded *rand.Rand) are fine
	}
	if suppressed[pass.Fset.Position(call.Pos()).Line] {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if bannedTime[fn.Name()] {
			pass.Reportf(call.Pos(), "time.%s reads the wall clock, which breaks bit-deterministic reruns; thread simulated time explicitly (or move this to an exempt telemetry package)", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !allowedRand[fn.Name()] {
			pass.Reportf(call.Pos(), "%s.%s draws from the global random source; use rand.New(rand.NewSource(seed)) so reruns are byte-identical", fn.Pkg().Path(), fn.Name())
		}
	}
}

// stmtLists returns the statement lists a node carries, so range
// checks can see their following siblings.
func stmtLists(n ast.Node) [][]ast.Stmt {
	switch n := n.(type) {
	case *ast.BlockStmt:
		return [][]ast.Stmt{n.List}
	case *ast.CaseClause:
		return [][]ast.Stmt{n.Body}
	case *ast.CommClause:
		return [][]ast.Stmt{n.Body}
	}
	return nil
}

// checkStmtList examines each map-range statement of one list with its
// trailing siblings in view.
func checkStmtList(pass *lint.Pass, list []ast.Stmt, suppressed map[int]bool) {
	for i, stmt := range list {
		rs, ok := unwrapLabeled(stmt).(*ast.RangeStmt)
		if !ok || !isMapRange(pass, rs) {
			continue
		}
		line := pass.Fset.Position(rs.Pos()).Line
		if suppressed[line] {
			continue
		}
		emits, accumulates := classifyBody(pass, rs.Body)
		switch {
		case emits.IsValid():
			pass.Reportf(emits, "output written while ranging over a map publishes the iteration order; collect into a slice, sort, then emit (or annotate //repro:nondet-ok <reason>)")
		case accumulates && !sortFollows(pass, list[i+1:]):
			pass.Reportf(rs.Pos(), "map iteration order leaks into an accumulated value and no later statement in this block sorts it; sort the result (or annotate //repro:nondet-ok <reason>)")
		}
	}
}

func unwrapLabeled(s ast.Stmt) ast.Stmt {
	for {
		ls, ok := s.(*ast.LabeledStmt)
		if !ok {
			return s
		}
		s = ls.Stmt
	}
}

func isMapRange(pass *lint.Pass, rs *ast.RangeStmt) bool {
	tv, ok := pass.Info.Types[rs.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// classifyBody reports whether the loop body emits output (position of
// the first emitting call) or accumulates order-sensitive state: an
// append or string += whose destination outlives one iteration.  A
// destination declared inside the body is rebuilt fresh every pass, so
// iteration order cannot leak through it.
func classifyBody(pass *lint.Pass, body *ast.BlockStmt) (emits token.Pos, accumulates bool) {
	local := func(expr ast.Expr) bool {
		obj := rootObject(pass, expr)
		return obj != nil && obj.Pos() >= body.Pos() && obj.Pos() < body.End()
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if !emits.IsValid() && isEmitCall(n) {
				emits = n.Pos()
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if !isAppendCall(pass, rhs) || i >= len(n.Lhs) || local(n.Lhs[i]) {
					continue
				}
				accumulates = true
			}
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && !local(n.Lhs[0]) {
				if tv, ok := pass.Info.Types[n.Lhs[0]]; ok && tv.Type != nil {
					if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						accumulates = true
					}
				}
			}
		}
		return true
	})
	return emits, accumulates
}

// isAppendCall matches a call to the append built-in.
func isAppendCall(pass *lint.Pass, expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := pass.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// rootObject resolves the base identifier of an assignable expression
// (x, x.f.g, x[i]) to its declared object.
func rootObject(pass *lint.Pass, expr ast.Expr) types.Object {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.Ident:
			if obj := pass.Info.Defs[e]; obj != nil {
				return obj
			}
			return pass.Info.Uses[e]
		default:
			return nil
		}
	}
}

// isEmitCall matches calls whose bare name is an output writer; the
// name check is deliberately syntactic so wrappers like a logger field
// or a strings.Builder both count.
func isEmitCall(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return emitNames[fun.Name]
	case *ast.SelectorExpr:
		return emitNames[fun.Sel.Name]
	}
	return false
}

// sortFollows reports whether any trailing sibling statement sorts
// something -- the collect-then-sort idiom that makes an accumulating
// map range deterministic.
func sortFollows(pass *lint.Pass, rest []ast.Stmt) bool {
	for _, stmt := range rest {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := lint.Callee(pass.Info, call); fn != nil && fn.Pkg() != nil {
				switch fn.Pkg().Path() {
				case "sort":
					found = true
				case "slices":
					if strings.HasPrefix(fn.Name(), "Sort") {
						found = true
					}
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// suppressedLines maps each line carrying (or directly above) a
// //repro:nondet-ok comment to true.
func suppressedLines(fset *token.FileSet, f *ast.File) map[int]bool {
	out := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, suppressMarker) {
				line := fset.Position(c.Pos()).Line
				out[line] = true
				out[line+1] = true
			}
		}
	}
	return out
}
