// Package linttest runs one analyzer over a fixture module and checks
// its diagnostics against // want comments, the analysistest idiom
// rebuilt on the repo's own loader:
//
//	return rand.Intn(10) // want `rand\.Intn draws from the global source`
//
// A want comment expects exactly one diagnostic on its line whose
// message matches the backquoted (or quoted) regular expression.
// Diagnostics with no matching expectation and expectations with no
// matching diagnostic both fail the test, so a fixture pins the
// analyzer's behavior in both directions: what it must flag and what
// it must leave alone.
//
// Fixture modules live under testdata and declare `module repro` so
// package paths match the production tree the analyzers anchor on
// (wire's key.go, internal/obs, the internal/server exemption).
package linttest

import (
	"fmt"
	"go/token"
	"regexp"
	"strings"
	"testing"

	"repro/internal/lint"
)

// expectation is one parsed // want comment.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// wantRE pulls the patterns out of a want comment; both backquoted and
// double-quoted forms are accepted.
var wantRE = regexp.MustCompile("// want (`[^`]*`|\"[^\"]*\")")

// Run loads the fixture module rooted at dir, applies the analyzer to
// every package in it, and verifies the diagnostics against the
// fixture's // want comments.
func Run(t *testing.T, dir string, a *lint.Analyzer) {
	t.Helper()
	pkgs, err := lint.Load(dir, "./...")
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture %s matched no packages", dir)
	}

	var diags []lint.Diagnostic
	var wants []*expectation
	for _, pkg := range pkgs {
		ds, err := lint.Run(pkg, []*lint.Analyzer{a})
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, pkg.ImportPath, err)
		}
		diags = append(diags, ds...)
		ws, err := collectWants(pkg)
		if err != nil {
			t.Fatal(err)
		}
		wants = append(wants, ws...)
	}
	lint.Sort(diags)

	for _, d := range diags {
		if w := match(wants, d.Pos, d.Message); w != nil {
			w.matched = true
			continue
		}
		t.Errorf("unexpected diagnostic: %s", d)
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

// match finds the first unmatched expectation on the diagnostic's line
// whose pattern matches its message.
func match(wants []*expectation, pos token.Position, msg string) *expectation {
	for _, w := range wants {
		if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.pattern.MatchString(msg) {
			return w
		}
	}
	return nil
}

// collectWants scans the package's parsed comments for want markers.
func collectWants(pkg *lint.Package) ([]*expectation, error) {
	var out []*expectation
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.Contains(c.Text, "// want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				ms := wantRE.FindAllStringSubmatch(c.Text, -1)
				if len(ms) == 0 {
					return nil, fmt.Errorf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
				}
				for _, m := range ms {
					pat := m[1][1 : len(m[1])-1] // strip the quotes
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	return out, nil
}
