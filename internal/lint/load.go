package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	GoFiles    []string

	Fset   *token.FileSet
	Syntax []*ast.File
	Types  *types.Package
	Info   *types.Info
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load resolves patterns (e.g. "./...") in dir via `go list -export`,
// then parses and type-checks every matched package of the enclosing
// module against the export data of its dependencies.  It needs the go
// tool on PATH but no network: a module with no external requirements
// resolves entirely from GOROOT and the build cache.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	// A fixture module under testdata must resolve on its own terms,
	// never against an enclosing workspace file.
	cmd.Env = append(os.Environ(), "GOWORK=off")
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, errb.String())
	}

	exports := map[string]string{} // import path -> export data file
	var targets []*listPackage
	dec := json.NewDecoder(&out)
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard && !p.DepOnly && p.Name != "" {
			q := p
			targets = append(targets, &q)
		}
	}

	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports, nil)
	var pkgs []*Package
	for _, t := range targets {
		pkg, err := checkPackage(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadUnit type-checks a single package from an explicit file list --
// the vet.cfg unit-checking entry point.  importMap translates import
// paths as written in source to canonical package paths; packageFile
// maps canonical paths to export data files.
func LoadUnit(importPath, dir string, goFiles []string, importMap, packageFile map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	imp := newExportImporter(fset, packageFile, importMap)
	return checkPackage(fset, imp, importPath, dir, goFiles)
}

// checkPackage parses the files (with comments: the analyzers read
// annotations out of them) and runs the type checker.
func checkPackage(fset *token.FileSet, imp types.Importer, importPath, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		path := name
		if !strings.HasPrefix(path, "/") && dir != "" {
			path = dir + "/" + name
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", build.Default.GOARCH),
	}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		GoFiles:    goFiles,
		Fset:       fset,
		Syntax:     files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// newExportImporter resolves imports from compiler export data files,
// the way the real vet driver does, so type-checking needs no network
// and no source for dependencies.  importMap translates import paths
// as written in source to canonical package paths ("unsafe" is handled
// by the gc importer itself and never reaches the lookup).
func newExportImporter(fset *token.FileSet, packageFile, importMap map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		if p, ok := importMap[path]; ok {
			path = p
		}
		file, ok := packageFile[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}
