package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseFunc parses src as a file and returns the CFG of the first
// function declaration plus the file for node lookups.
func parseFunc(t *testing.T, src string) (*Graph, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			return New(fd.Body), f
		}
	}
	t.Fatal("no function in source")
	return nil, nil
}

// callTo matches an atomic node containing a call to the named
// function (identifier form only; good enough for fixtures).
func callTo(name string) func(ast.Node) bool {
	return func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == name
	}
}

// findCall returns the CallExpr to the named function, for use as a
// query anchor.
func findCall(t *testing.T, f *ast.File, name string) ast.Node {
	t.Helper()
	var found ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
				found = call
				return false
			}
		}
		return true
	})
	if found == nil {
		t.Fatalf("no call to %s in fixture", name)
	}
	return found
}

func TestStraightLine(t *testing.T) {
	g, _ := parseFunc(t, `package p
func f() { a(); b(); c() }
func a(); func b(); func c()`)
	if !g.EveryPathContains(nil, callTo("b")) {
		t.Error("b() is on the only path but EveryPathContains said no")
	}
	if !g.SomePathContains(nil, callTo("c")) {
		t.Error("c() is reachable but SomePathContains said no")
	}
	if g.EveryPathContains(nil, callTo("missing")) {
		t.Error("EveryPathContains matched a call that is not there")
	}
}

func TestIfJoin(t *testing.T) {
	src := `package p
func f(x bool) {
	if x {
		a()
	} else {
		b()
	}
	c()
}
func a(); func b(); func c()`
	g, _ := parseFunc(t, src)
	if g.EveryPathContains(nil, callTo("a")) {
		t.Error("a() is only on the then-branch; every-path must fail")
	}
	if !g.EveryPathContains(nil, callTo("c")) {
		t.Error("c() follows the join; every path passes it")
	}
	if !g.SomePathContains(nil, callTo("b")) {
		t.Error("b() is reachable on the else branch")
	}
}

func TestIfWithoutElse(t *testing.T) {
	g, _ := parseFunc(t, `package p
func f(x bool) {
	if x {
		a()
	}
}
func a()`)
	if g.EveryPathContains(nil, callTo("a")) {
		t.Error("the fallthrough path skips a(); every-path must fail")
	}
}

func TestEarlyReturnSplitsPaths(t *testing.T) {
	src := `package p
func f(x bool) {
	if x {
		return
	}
	done()
}
func done()`
	g, _ := parseFunc(t, src)
	if g.EveryPathContains(nil, callTo("done")) {
		t.Error("the early return bypasses done(); every-path must fail")
	}
	if !g.SomePathContains(nil, callTo("done")) {
		t.Error("done() is reachable on the non-returning path")
	}
}

func TestPanicTerminatesPath(t *testing.T) {
	// A path that panics never reaches the exit, so it cannot violate
	// an every-path condition.
	src := `package p
func f(x bool) {
	if x {
		panic("boom")
	}
	done()
}
func done()`
	g, _ := parseFunc(t, src)
	if !g.EveryPathContains(nil, callTo("done")) {
		t.Error("the panicking path dies before exit; every surviving path passes done()")
	}
}

func TestQueryFromAnchor(t *testing.T) {
	src := `package p
func f(x bool) {
	before()
	start()
	if x {
		return
	}
	after()
}
func before(); func start(); func after()`
	g, f := parseFunc(t, src)
	anchor := findCall(t, f, "start")
	if g.EveryPathContains(anchor, callTo("after")) {
		t.Error("the return path from the anchor skips after()")
	}
	if !g.SomePathContains(anchor, callTo("after")) {
		t.Error("after() is reachable from the anchor")
	}
	// Queries are exclusive of the anchor and see nothing behind it.
	if g.SomePathContains(anchor, callTo("before")) {
		t.Error("before() precedes the anchor; it must not be visible forward")
	}
	if g.SomePathContains(anchor, callTo("start")) {
		t.Error("the anchor itself is excluded from the forward query")
	}
}

func TestLoopBodyNotOnEveryPath(t *testing.T) {
	src := `package p
func f(n int) {
	for i := 0; i < n; i++ {
		work()
	}
}
func work()`
	g, _ := parseFunc(t, src)
	if g.EveryPathContains(nil, callTo("work")) {
		t.Error("a conditional loop may run zero times; every-path must fail")
	}
	if !g.SomePathContains(nil, callTo("work")) {
		t.Error("the loop body is reachable")
	}
}

func TestInfiniteLoopNeverViolates(t *testing.T) {
	// for{} without break never reaches exit, so every-path holds
	// vacuously past it.
	src := `package p
func f() {
	for {
		work()
	}
}
func work()`
	g, _ := parseFunc(t, src)
	if !g.EveryPathContains(nil, callTo("cleanup")) {
		t.Error("no path reaches exit; every-path holds vacuously")
	}
}

func TestLoopBreakPath(t *testing.T) {
	src := `package p
func f() {
	for {
		if stop() {
			break
		}
		work()
	}
	cleanup()
}
func stop() bool
func work(); func cleanup()`
	g, _ := parseFunc(t, src)
	if !g.EveryPathContains(nil, callTo("cleanup")) {
		t.Error("the only route to exit is break -> cleanup()")
	}
	if g.EveryPathContains(nil, callTo("work")) {
		t.Error("breaking on the first iteration skips work()")
	}
}

func TestLabeledBreak(t *testing.T) {
	// The sweep collector idiom: a labeled outer loop broken from an
	// inner select, with a join (wait) after the label on all paths.
	src := `package p
func f(items []int, done chan int, ctx chan int) {
collect:
	for range items {
		select {
		case <-ctx:
			break collect
		case <-done:
		}
		row()
	}
	wait()
}
func row(); func wait()`
	g, _ := parseFunc(t, src)
	if !g.EveryPathContains(nil, callTo("wait")) {
		t.Error("both the labeled break and loop exhaustion reach wait()")
	}
	if g.EveryPathContains(nil, callTo("row")) {
		t.Error("the break-collect path skips row()")
	}
}

func TestLabeledContinue(t *testing.T) {
	src := `package p
func f(xs, ys []int) {
outer:
	for range xs {
		for range ys {
			if skip() {
				continue outer
			}
			inner()
		}
		tail()
	}
	done()
}
func skip() bool
func inner(); func tail(); func done()`
	g, f := parseFunc(t, src)
	if !g.EveryPathContains(nil, callTo("done")) {
		t.Error("all paths drain to done()")
	}
	// From the continue site, tail() is skipped on that iteration but
	// reachable on later ones -- SomePath yes.
	anchor := findCall(t, f, "skip")
	if !g.SomePathContains(anchor, callTo("tail")) {
		t.Error("tail() is reachable from skip() via a non-continuing iteration")
	}
}

func TestSelectBranches(t *testing.T) {
	src := `package p
func f(a, b chan int) {
	select {
	case <-a:
		left()
	case <-b:
		right()
	}
	after()
}
func left(); func right(); func after()`
	g, _ := parseFunc(t, src)
	if g.EveryPathContains(nil, callTo("left")) {
		t.Error("left() runs on only one comm clause")
	}
	if !g.EveryPathContains(nil, callTo("after")) {
		t.Error("every clause falls through to after()")
	}
}

func TestSwitchDefaultAndFallthrough(t *testing.T) {
	src := `package p
func f(x int) {
	switch x {
	case 1:
		one()
		fallthrough
	case 2:
		two()
	default:
		other()
	}
	after()
}
func one(); func two(); func other(); func after()`
	g, _ := parseFunc(t, src)
	if !g.EveryPathContains(nil, callTo("after")) {
		t.Error("every clause reaches after()")
	}
	if g.EveryPathContains(nil, callTo("two")) {
		t.Error("the default clause skips two()")
	}
	// fallthrough: every path through one() continues into two().
	g2, f2 := parseFunc(t, src)
	anchor := findCall(t, f2, "one")
	if !g2.EveryPathContains(anchor, callTo("two")) {
		t.Error("fallthrough chains case 1 into case 2")
	}
}

func TestSwitchWithoutDefault(t *testing.T) {
	src := `package p
func f(x int) {
	switch x {
	case 1:
		one()
	}
	after()
}
func one(); func after()`
	g, _ := parseFunc(t, src)
	if g.EveryPathContains(nil, callTo("one")) {
		t.Error("a switch without default can match nothing")
	}
	if !g.EveryPathContains(nil, callTo("after")) {
		t.Error("all switch outcomes reach after()")
	}
}

func TestTypeSwitch(t *testing.T) {
	src := `package p
func f(x any) {
	switch x.(type) {
	case int:
		num()
	default:
		other()
	}
	after()
}
func num(); func other(); func after()`
	g, _ := parseFunc(t, src)
	if !g.EveryPathContains(nil, callTo("after")) {
		t.Error("both clauses reach after()")
	}
	if g.EveryPathContains(nil, callTo("num")) {
		t.Error("num() runs on one clause only")
	}
}

func TestFuncLitIsOpaque(t *testing.T) {
	// A closure body is not control flow of the enclosing function: a
	// call inside it must not satisfy path queries for the outer graph.
	src := `package p
func f() {
	g := func() { hidden() }
	g()
	done()
}
func hidden(); func done()`
	g, _ := parseFunc(t, src)
	if g.SomePathContains(nil, callTo("hidden")) {
		t.Error("hidden() lives in a FuncLit; the outer graph must not see it")
	}
	if !g.EveryPathContains(nil, callTo("done")) {
		t.Error("done() is on the only outer path")
	}
}

func TestDeferAndGoAreAtomic(t *testing.T) {
	src := `package p
func f() {
	defer cleanup()
	go worker()
	done()
}
func cleanup(); func worker(); func done()`
	g, _ := parseFunc(t, src)
	// The defer and go statements themselves are nodes; their callee
	// expressions are visible as part of those nodes.
	if !g.EveryPathContains(nil, func(n ast.Node) bool {
		_, ok := n.(*ast.GoStmt)
		return ok
	}) {
		t.Error("the go statement is an atomic node on the only path")
	}
	if !g.EveryPathContains(nil, callTo("done")) {
		t.Error("done() follows unconditionally")
	}
}

func TestGoto(t *testing.T) {
	src := `package p
func f(x bool) {
	if x {
		goto end
	}
	work()
end:
	done()
}
func work(); func done()`
	g, _ := parseFunc(t, src)
	if !g.EveryPathContains(nil, callTo("done")) {
		t.Error("both the goto and fallthrough paths reach done()")
	}
	if g.EveryPathContains(nil, callTo("work")) {
		t.Error("the goto path skips work()")
	}
}

func TestOsExitTerminates(t *testing.T) {
	src := `package p
import "os"
func f(x bool) {
	if x {
		os.Exit(1)
	}
	done()
}
func done()`
	g, _ := parseFunc(t, src)
	if !g.EveryPathContains(nil, callTo("done")) {
		t.Error("the os.Exit path never reaches the function exit")
	}
}

func TestNilBody(t *testing.T) {
	g := New(nil)
	if g.EveryPathContains(nil, func(ast.Node) bool { return true }) {
		t.Error("an empty body has an unmatched entry->exit path")
	}
	if g.SomePathContains(nil, func(ast.Node) bool { return true }) {
		t.Error("an empty body has no nodes to match")
	}
}

func TestRangeLoopJoin(t *testing.T) {
	// The worker-pool shape: range over items, block on a channel per
	// item, wait after.  EveryPath from the range must include wait().
	src := `package p
func f(items []int, wgWait func()) {
	for range items {
		recv()
	}
	wgWait()
}
func recv()`
	g, _ := parseFunc(t, src)
	if !g.EveryPathContains(nil, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "wgWait"
	}) {
		t.Error("loop exhaustion always reaches wgWait()")
	}
}
