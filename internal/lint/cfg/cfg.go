// Package cfg builds intra-procedural control-flow graphs over plain
// go/ast, the shared layer under the flow-sensitive analyzers
// (goroleak, streamdone).  Like the rest of internal/lint it is a
// deliberate, dependency-free reduction of the x/tools shape
// (golang.org/x/tools/go/cfg): a function body becomes basic blocks of
// atomic nodes joined by successor edges, plus the two queries the
// analyzers need -- "does SOME path from here reach a node like X" and
// "does EVERY path from here to the function exit pass a node like X".
//
// Control statements are decomposed, never stored whole: an IfStmt
// contributes its Init and Cond as nodes of the branching block, and
// its branches become blocks of their own.  Function literals are
// opaque -- a FuncLit is a value, not control flow of the enclosing
// function, so it appears as part of the node that creates it and its
// body is never traversed.  Analyzers build a separate Graph per
// function literal when they care about its interior.
//
// Terminating calls (panic, os.Exit, runtime.Goexit, log.Fatal*) end
// their block with no successors: a path that dies there never
// "reaches return", so it can never violate an every-path condition.
package cfg

import (
	"go/ast"
	"go/token"
)

// Block is one basic block: a straight-line run of atomic nodes with
// the successor edges control flow can take afterwards.
type Block struct {
	// Index is the block's position in Graph.Blocks, entry first.
	Index int
	// Nodes are the block's atomic statements and control expressions
	// (if/for conditions, switch tags, select comm statements), in
	// execution order.
	Nodes []ast.Node
	// Succs are the blocks control can reach next.  The Exit block has
	// none.
	Succs []*Block
}

// Graph is one function body's control-flow graph.
type Graph struct {
	// Entry is where execution starts.
	Entry *Block
	// Exit is the synthetic sink every return, panic and fall-off-end
	// edge leads to.  It holds no nodes.
	Exit *Block
	// Blocks lists every block, entry first, exit last.  Unreachable
	// blocks (dead code after return) are included.
	Blocks []*Block
}

// New builds the graph of one function body.  A nil body (declaration
// without definition) yields a graph whose entry edges straight to
// exit.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{}
	b.entry = b.newBlock()
	b.exit = b.newBlock()
	b.cur = b.entry
	if body != nil {
		b.stmtList(body.List)
	}
	b.edge(b.cur, b.exit)
	b.resolveGotos()
	// Exit last, for readability of dumps.
	for i, blk := range b.blocks {
		blk.Index = i
	}
	g := &Graph{Entry: b.entry, Exit: b.exit, Blocks: b.blocks}
	return g
}

// builder accumulates blocks while walking one function body.
type builder struct {
	blocks []*Block
	entry  *Block
	exit   *Block
	cur    *Block

	// breakables / continuables are the innermost-first stacks of
	// targets an unlabeled break or continue jumps to.
	breakables   []*Block
	continuables []*Block

	// labels maps a label name to the targets its labeled statement
	// established; gotoSites are forward references resolved at the end.
	labels    map[string]*labelTargets
	gotoSites []gotoSite
	// pendingLabel is the label of the statement about to be built.
	pendingLabel string
}

type labelTargets struct {
	brk, cont *Block // break/continue targets; nil when not a loop
	start     *Block // goto target: where the labeled statement begins
}

type gotoSite struct {
	from  *Block
	label string
}

func (b *builder) newBlock() *Block {
	blk := &Block{}
	b.blocks = append(b.blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
}

// add appends an atomic node to the current block.
func (b *builder) add(n ast.Node) {
	if n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

// jump ends the current block with an edge to target and parks the
// builder on a fresh unreachable block (dead code after the jump).
func (b *builder) jump(target *Block) {
	b.edge(b.cur, target)
	b.cur = b.newBlock()
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	label := b.pendingLabel
	b.pendingLabel = ""
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.LabeledStmt:
		// Record the label, then build the labeled statement with the
		// label pending so loops and switches claim it as their own
		// break/continue name.
		start := b.newBlock()
		b.jump2(start)
		b.cur = start
		if b.labels == nil {
			b.labels = map[string]*labelTargets{}
		}
		lt := &labelTargets{start: start}
		b.labels[s.Label.Name] = lt
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		condBlock := b.cur
		after := b.newBlock()
		b.cur = b.newBlock()
		b.edge(condBlock, b.cur)
		b.stmt(s.Body)
		b.jump2(after)
		if s.Else != nil {
			b.cur = b.newBlock()
			b.edge(condBlock, b.cur)
			b.stmt(s.Else)
			b.jump2(after)
		} else {
			b.edge(condBlock, after)
		}
		b.cur = after
	case *ast.ForStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock()
		b.jump2(head)
		b.cur = head
		if s.Cond != nil {
			b.add(s.Cond)
		}
		body := b.newBlock()
		after := b.newBlock()
		cont := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock()
			cont = post
		}
		b.edge(head, body)
		if s.Cond != nil {
			b.edge(head, after)
		}
		b.pushLoop(label, after, cont)
		b.cur = body
		b.stmt(s.Body)
		b.jump2(cont)
		b.popLoop()
		if post != nil {
			b.cur = post
			b.add(s.Post)
			b.jump2(head)
		}
		b.cur = after
	case *ast.RangeStmt:
		b.add(s.X)
		head := b.newBlock()
		b.jump2(head)
		body := b.newBlock()
		after := b.newBlock()
		b.edge(head, body)
		b.edge(head, after)
		b.pushLoop(label, after, head)
		b.cur = body
		b.stmt(s.Body)
		b.jump2(head)
		b.popLoop()
		b.cur = after
	case *ast.SwitchStmt:
		b.switchStmt(label, s.Init, s.Tag, nil, s.Body)
	case *ast.TypeSwitchStmt:
		b.switchStmt(label, s.Init, nil, s.Assign, s.Body)
	case *ast.SelectStmt:
		head := b.cur
		after := b.newBlock()
		b.pushBreakable(label, after)
		hasClause := false
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			hasClause = true
			b.cur = b.newBlock()
			b.edge(head, b.cur)
			if cc.Comm != nil {
				b.add(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.jump2(after)
		}
		if !hasClause {
			// select{} blocks forever: no edge to after.
			_ = head
		}
		b.popBreakable()
		b.cur = after
	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.exit)
	case *ast.BranchStmt:
		b.add(s)
		switch s.Tok {
		case token.BREAK:
			b.jump(b.branchTarget(s.Label, true))
		case token.CONTINUE:
			b.jump(b.branchTarget(s.Label, false))
		case token.GOTO:
			if s.Label != nil {
				b.gotoSites = append(b.gotoSites, gotoSite{from: b.cur, label: s.Label.Name})
			}
			b.cur = b.newBlock()
		case token.FALLTHROUGH:
			// Handled structurally by switchStmt (the clause body's
			// last statement); nothing to do here.
		}
	case *ast.ExprStmt:
		b.add(s)
		if isTerminatingCall(s.X) {
			// Dead end: no successor, so the path never reaches Exit.
			b.cur = b.newBlock()
		}
	default:
		// Assign, IncDec, Send, Decl, Defer, Go, Empty: atomic.
		b.add(s)
	}
}

// switchStmt builds expression and type switches: the head evaluates
// init plus tag/assign, every clause hangs off the head, fallthrough
// chains clause bodies, and a missing default adds a head->after edge.
func (b *builder) switchStmt(label string, init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt) {
	if init != nil {
		b.add(init)
	}
	if tag != nil {
		b.add(tag)
	}
	if assign != nil {
		b.add(assign)
	}
	head := b.cur
	after := b.newBlock()
	b.pushBreakable(label, after)
	clauses := body.List
	// Pre-create each clause's block so fallthrough can edge forward.
	blocks := make([]*Block, len(clauses))
	for i := range clauses {
		blocks[i] = b.newBlock()
	}
	hasDefault := false
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		b.edge(head, blocks[i])
		b.cur = blocks[i]
		for _, e := range cc.List {
			b.add(e)
		}
		b.stmtList(cc.Body)
		if fallsThrough(cc.Body) && i+1 < len(clauses) {
			b.jump2(blocks[i+1])
		} else {
			b.jump2(after)
		}
	}
	if !hasDefault {
		b.edge(head, after)
	}
	b.popBreakable()
	b.cur = after
}

// fallsThrough reports whether a case body ends in a fallthrough.
func fallsThrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

// jump2 is jump for structural joins: it only draws the edge when the
// current block can still fall through (i.e. it was not already ended
// by return/break/continue, which parked the builder on a dead block).
// Unlike jump it does not allocate a replacement block, so structural
// joins do not litter the graph.
func (b *builder) jump2(target *Block) {
	b.edge(b.cur, target)
}

func (b *builder) pushLoop(label string, brk, cont *Block) {
	b.breakables = append(b.breakables, brk)
	b.continuables = append(b.continuables, cont)
	if label != "" && b.labels[label] != nil {
		b.labels[label].brk = brk
		b.labels[label].cont = cont
	}
}

func (b *builder) popLoop() {
	b.breakables = b.breakables[:len(b.breakables)-1]
	b.continuables = b.continuables[:len(b.continuables)-1]
}

func (b *builder) pushBreakable(label string, brk *Block) {
	b.breakables = append(b.breakables, brk)
	if label != "" && b.labels[label] != nil {
		b.labels[label].brk = brk
	}
}

func (b *builder) popBreakable() {
	b.breakables = b.breakables[:len(b.breakables)-1]
}

// branchTarget resolves a break (isBreak) or continue target, labeled
// or not.  An unresolvable target (malformed source) goes to exit so
// queries stay conservative.
func (b *builder) branchTarget(label *ast.Ident, isBreak bool) *Block {
	if label != nil {
		if lt := b.labels[label.Name]; lt != nil {
			if isBreak && lt.brk != nil {
				return lt.brk
			}
			if !isBreak && lt.cont != nil {
				return lt.cont
			}
		}
		return b.exit
	}
	if isBreak {
		if n := len(b.breakables); n > 0 {
			return b.breakables[n-1]
		}
	} else {
		if n := len(b.continuables); n > 0 {
			return b.continuables[n-1]
		}
	}
	return b.exit
}

func (b *builder) resolveGotos() {
	for _, g := range b.gotoSites {
		if lt := b.labels[g.label]; lt != nil {
			b.edge(g.from, lt.start)
		} else {
			b.edge(g.from, b.exit)
		}
	}
}

// isTerminatingCall matches calls that never return: panic, os.Exit,
// runtime.Goexit, log.Fatal/Fatalf/Fatalln (by name -- the analyzers
// run this package without type information for these).
func isTerminatingCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch {
		case pkg.Name == "os" && fun.Sel.Name == "Exit":
			return true
		case pkg.Name == "runtime" && fun.Sel.Name == "Goexit":
			return true
		case pkg.Name == "log" && (fun.Sel.Name == "Fatal" || fun.Sel.Name == "Fatalf" || fun.Sel.Name == "Fatalln"):
			return true
		}
	}
	return false
}

// ---- queries ----

// Contains reports whether node n (or one of n's descendants, function
// literal bodies excluded) satisfies pred.  It is the match primitive
// the path queries apply per atomic node: an atomic node like an
// assignment carries its whole expression subtree.
func Contains(n ast.Node, pred func(ast.Node) bool) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if x == nil || found {
			return false
		}
		if _, ok := x.(*ast.FuncLit); ok && x != n {
			return false // opaque: a closure body is not this function's flow
		}
		if pred(x) {
			found = true
			return false
		}
		return true
	})
	return found
}

// locate finds the block and node index holding `at`: the atomic node
// that is, or whose subtree contains, the given node.
func (g *Graph) locate(at ast.Node) (*Block, int) {
	for _, blk := range g.Blocks {
		for i, n := range blk.Nodes {
			if n == at || Contains(n, func(x ast.Node) bool { return x == at }) {
				return blk, i
			}
		}
	}
	return nil, 0
}

// EveryPathContains reports whether every execution path from the node
// `from` (exclusive; nil means the function entry) to the function
// exit passes at least one atomic node matching pred.  A path that
// loops forever without reaching the exit never violates the
// condition, and a `from` node the graph does not contain (dead code)
// is vacuously true.
func (g *Graph) EveryPathContains(from ast.Node, pred func(ast.Node) bool) bool {
	match := func(n ast.Node) bool { return Contains(n, pred) }
	blk, idx := g.Entry, 0
	if from != nil {
		b, i := g.locate(from)
		if b == nil {
			return true
		}
		blk, idx = b, i+1
	}
	e := &escaper{g: g, match: match, state: make(map[*Block]int)}
	return !e.escapes(blk, idx)
}

// SomePathContains reports whether any execution path from the node
// `from` (exclusive; nil means entry) onward reaches an atomic node
// matching pred, whether or not that path later exits.
func (g *Graph) SomePathContains(from ast.Node, pred func(ast.Node) bool) bool {
	match := func(n ast.Node) bool { return Contains(n, pred) }
	blk, idx := g.Entry, 0
	if from != nil {
		b, i := g.locate(from)
		if b == nil {
			return false
		}
		blk, idx = b, i+1
	}
	seen := make(map[*Block]bool)
	var reach func(b *Block, i int) bool
	reach = func(b *Block, i int) bool {
		if i == 0 {
			if seen[b] {
				return false
			}
			seen[b] = true
		}
		for _, n := range b.Nodes[i:] {
			if match(n) {
				return true
			}
		}
		for _, s := range b.Succs {
			if reach(s, 0) {
				return true
			}
		}
		return false
	}
	return reach(blk, idx)
}

// escaper answers "can control reach the exit from here without
// passing a matching node".  In-progress blocks (cycles) cannot escape
// through themselves: a loop with no exit path never reaches return.
type escaper struct {
	g     *Graph
	match func(ast.Node) bool
	state map[*Block]int // 0 unknown, 1 in progress, 2 escapes, 3 contained
}

func (e *escaper) escapes(b *Block, from int) bool {
	if from == 0 {
		switch e.state[b] {
		case 1: // cycle: this route never reaches exit
			return false
		case 2:
			return true
		case 3:
			return false
		}
		e.state[b] = 1
	}
	for _, n := range b.Nodes[from:] {
		if e.match(n) {
			if from == 0 {
				e.state[b] = 3
			}
			return false
		}
	}
	out := false
	if b == e.g.Exit {
		out = true
	}
	for _, s := range b.Succs {
		if out {
			break
		}
		out = e.escapes(s, 0)
	}
	if from == 0 {
		if out {
			e.state[b] = 2
		} else {
			e.state[b] = 3
		}
	}
	return out
}
