// Package lint is the minimal analysis framework behind cmd/reprolint.
//
// It is a deliberate, dependency-free reduction of the
// golang.org/x/tools/go/analysis shape -- an Analyzer with a Run
// function over a type-checked Pass -- small enough to live in the
// repo, so the determinism and cache-key invariants can be machine
// checked without reaching for the module proxy.  Packages are loaded
// either through `go list -export` (standalone mode, see Load) or from
// the vet.cfg handed over by `go vet -vettool=` (see cmd/reprolint).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics (keycomplete,
	// determinism, strictdecode, nilrecorder).
	Name string
	// Doc is the one-paragraph contract the analyzer enforces.
	Doc string
	// Run inspects one package and reports findings via pass.Reportf.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed non-test sources, with comments.
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Dir is the package's source directory.
	Dir string

	diags *[]Diagnostic
}

// Diagnostic is one finding, positioned against the pass's FileSet.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic in the familiar file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies every analyzer to the loaded package and returns the
// findings sorted by position.  Analyzer errors (not findings) abort.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Syntax,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Dir:      pkg.Dir,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
		}
	}
	Sort(diags)
	return diags, nil
}

// Sort orders diagnostics by file, line, column, then analyzer name.
func Sort(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// Callee resolves the function or method a call expression invokes,
// or nil when the callee is not a declared function (built-ins,
// function-typed variables, type conversions).
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel := info.Selections[fun]; sel != nil {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// ModuleInfo locates the enclosing module of dir: its root directory
// and module path, read from go.mod.  Analyzers use it to map import
// paths of sibling packages back to source directories (for the
// comment-borne //repro:nokey annotations that export data cannot
// carry).
func ModuleInfo(dir string) (root, path string, err error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		d = parent
	}
}

// PkgDir maps an import path inside the module rooted at root (module
// path modPath) to its source directory, or "" if the package is
// outside the module.
func PkgDir(root, modPath, importPath string) string {
	if importPath == modPath {
		return root
	}
	rest, ok := strings.CutPrefix(importPath, modPath+"/")
	if !ok {
		return ""
	}
	return filepath.Join(root, filepath.FromSlash(rest))
}
