// Package goroleak requires every goroutine launched in the service
// layer to have a join edge its launcher actually reaches: evidence,
// on every path from the `go` statement to the enclosing function's
// return, that someone waits for the goroutine to finish.
//
// Accepted join shapes, matched by object identity between the
// goroutine body and the launching function:
//
//   - WaitGroup pairing: the body calls (or defers) wg.Done() and the
//     launcher reaches wg.Wait() on the same WaitGroup;
//   - channel close: the body runs close(ch) and the launcher receives
//     from ch (<-ch, a select comm case, or ranging over it);
//   - errgroup-style collection: the body sends its result on ch and
//     the launcher receives from ch.
//
// "On every path" is the flow-sensitive part, answered by the
// internal/lint/cfg graph: a wg.Wait() in one select branch while
// another branch returns early is exactly the leak this analyzer
// exists to catch.  A goroutine that is designed to outlive its
// launcher -- a process-lifetime listener, a singleflight flight that
// survives canceled callers -- must carry //repro:detached <reason>
// (shared with ctxflow) on the go statement's line or the line above.
//
// Launches whose callee is not a function literal (go fn()) have no
// inspectable body, so they always need either a detached annotation
// or wrapping in a literal that pairs with a join.
package goroleak

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint"
	"repro/internal/lint/cfg"
	"repro/internal/lint/ctxflow"
	"repro/internal/lint/nokey"
)

// Analyzer is the goroutine-join check.
var Analyzer = &lint.Analyzer{
	Name: "goroleak",
	Doc:  "require every goroutine launch to have a join edge (WaitGroup, channel close, or result collection) on all paths, or //repro:detached <reason>",
	Run:  run,
}

// gated lists the packages under the rule: the HTTP service layer, the
// sweep worker pool, the server binary, and the storage/sharding tiers
// the request paths thread through.
var gated = map[string]bool{
	"repro/internal/server": true,
	"repro/internal/sweep":  true,
	"repro/cmd/reprosrv":    true,
	"repro/internal/store":  true,
	"repro/internal/shard":  true,
}

func run(pass *lint.Pass) error {
	if !gated[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.Files {
		dirs := nokey.CollectDirectives(pass.Fset, f, ctxflow.DetachedVerb)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncBody(pass, fd.Body, dirs)
		}
	}
	return nil
}

// checkFuncBody examines one function body's directly-owned go
// statements against that body's CFG, then recurses into nested
// function literals, each of which owns its interior go statements.
func checkFuncBody(pass *lint.Pass, body *ast.BlockStmt, dirs *nokey.Directives) {
	var gos []*ast.GoStmt
	var lits []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			lits = append(lits, n)
			return false
		case *ast.GoStmt:
			gos = append(gos, n)
			// The launched literal's interior belongs to the goroutine.
			if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				lits = append(lits, lit)
				// Arguments may still contain literals of their own.
				for _, arg := range n.Call.Args {
					ast.Inspect(arg, func(a ast.Node) bool {
						if al, ok := a.(*ast.FuncLit); ok {
							lits = append(lits, al)
							return false
						}
						return true
					})
				}
				return false
			}
		}
		return true
	})
	if len(gos) > 0 {
		g := cfg.New(body)
		for _, stmt := range gos {
			checkGo(pass, g, stmt, dirs)
		}
	}
	for _, lit := range lits {
		checkFuncBody(pass, lit.Body, dirs)
	}
}

// checkGo verifies one go statement's join edge.
func checkGo(pass *lint.Pass, g *cfg.Graph, stmt *ast.GoStmt, dirs *nokey.Directives) {
	if d, ok := dirs.At(stmt.Pos(), ctxflow.DetachedVerb); ok {
		if d.Reason == "" {
			pass.Reportf(stmt.Pos(), "//repro:detached needs a reason: //repro:detached <why this goroutine is never joined>")
		}
		return
	}
	lit, ok := ast.Unparen(stmt.Call.Fun).(*ast.FuncLit)
	if !ok {
		pass.Reportf(stmt.Pos(), "goroutine body is not inspectable (go on a named function); wrap it in a literal that pairs with a WaitGroup or channel join, or annotate //repro:detached <reason>")
		return
	}
	handles := joinHandles(pass, lit.Body)
	if len(handles) == 0 {
		pass.Reportf(stmt.Pos(), "goroutine signals completion to no one (no wg.Done, close, or result send in its body); add a join edge or annotate //repro:detached <reason>")
		return
	}
	for _, h := range handles {
		if g.EveryPathContains(stmt, func(n ast.Node) bool { return isJoinUse(pass, n, h) }) {
			return
		}
	}
	pass.Reportf(stmt.Pos(), "goroutine's completion signal (%s) is not consumed on every path from this launch to return; join it on all paths or annotate //repro:detached <reason>", handleNames(handles))
}

// handle is one completion signal the goroutine body offers: a
// WaitGroup it calls Done on, or a channel it closes or sends to.
type handle struct {
	obj types.Object
	wg  bool // true: WaitGroup Done; false: channel close/send
}

func handleNames(hs []handle) string {
	out := ""
	for i, h := range hs {
		if i > 0 {
			out += ", "
		}
		out += h.obj.Name()
	}
	return out
}

// joinHandles scans the goroutine body for completion signals.
// Nested literals count: a deferred func(){ wg.Done() }() still
// signals the same WaitGroup.
func joinHandles(pass *lint.Pass, body *ast.BlockStmt) []handle {
	var out []handle
	seen := map[types.Object]bool{}
	add := func(obj types.Object, wg bool) {
		if obj != nil && !seen[obj] {
			seen[obj] = true
			out = append(out, handle{obj: obj, wg: wg})
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := lint.Callee(pass.Info, n); fn != nil && fn.FullName() == "(*sync.WaitGroup).Done" {
				if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
					add(rootObject(pass, sel.X), true)
				}
			}
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
				if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
					add(rootObject(pass, n.Args[0]), false)
				}
			}
		case *ast.SendStmt:
			add(rootObject(pass, n.Chan), false)
		}
		return true
	})
	return out
}

// isJoinUse reports whether the node joins on the handle: wg.Wait for
// a WaitGroup handle; a receive (<-ch, including select comm cases)
// for a channel handle.
func isJoinUse(pass *lint.Pass, n ast.Node, h handle) bool {
	if h.wg {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return false
		}
		fn := lint.Callee(pass.Info, call)
		if fn == nil || fn.FullName() != "(*sync.WaitGroup).Wait" {
			return false
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		return ok && rootObject(pass, sel.X) == h.obj
	}
	ue, ok := n.(*ast.UnaryExpr)
	return ok && ue.Op == token.ARROW && rootObject(pass, ue.X) == h.obj
}

// rootObject resolves the base identifier of an expression (x, x.f,
// x[i], *x) to its declared object, so close(done[i]) in the goroutine
// and <-done[i] in the launcher match on `done`.
func rootObject(pass *lint.Pass, expr ast.Expr) types.Object {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.UnaryExpr:
			expr = e.X
		case *ast.Ident:
			if obj := pass.Info.Defs[e]; obj != nil {
				return obj
			}
			return pass.Info.Uses[e]
		default:
			return nil
		}
	}
}
