// Package server is the goroleak fixture: its gated import path puts
// every goroutine launch here under the join rule.
package server

import (
	"context"
	"sync"
)

func work() error { return nil }

// leakNoSignal starts a goroutine that tells no one when it finishes.
func leakNoSignal() {
	go func() { // want `signals completion to no one`
		_ = work()
	}()
}

// leakNamed launches a named function: the body is not inspectable, so
// the launch must be annotated or wrapped.
func leakNamed(fn func()) {
	go fn() // want `not inspectable`
}

// wgJoined is the canonical pairing: Done in the body, Wait on the
// only path out.
func wgJoined() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = work()
	}()
	wg.Wait()
}

// wgBranchLeak waits on only one branch: the early return leaks the
// goroutine, and the flow-sensitive query catches exactly that.
func wgBranchLeak(skip bool) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want `not consumed on every path`
		defer wg.Done()
		_ = work()
	}()
	if skip {
		return
	}
	wg.Wait()
}

// closeJoined signals by closing a channel the launcher receives from.
func closeJoined() {
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = work()
	}()
	<-done
}

// sendCollected is the errgroup shape: the result send is the signal,
// the receive is the join.
func sendCollected() error {
	errc := make(chan error, 1)
	go func() {
		errc <- work()
	}()
	return <-errc
}

// selectPartialJoin receives the done signal on only one comm case;
// the other case abandons the goroutine.
func selectPartialJoin(ctx context.Context) {
	done := make(chan struct{})
	go func() { // want `not consumed on every path`
		defer close(done)
		_ = work()
	}()
	select {
	case <-done:
	case <-ctx.Done():
	}
}

// poolJoined is the sweep-engine shape: launches in a loop, a labeled
// collector loop that can break out early, and a Wait every path still
// reaches.
func poolJoined(items []int, fn func(int) error) error {
	done := make([]chan struct{}, len(items))
	errs := make([]error, len(items))
	for i := range done {
		done[i] = make(chan struct{})
	}
	var wg sync.WaitGroup
	wg.Add(len(items))
	for i := range items {
		go func() {
			defer wg.Done()
			errs[i] = fn(items[i])
			close(done[i])
		}()
	}
	var first error
collect:
	for i := range items {
		<-done[i]
		if errs[i] != nil {
			first = errs[i]
			break collect
		}
	}
	wg.Wait()
	return first
}

// detachedListener is sanctioned: the reason records the audit.
func detachedListener(fn func()) {
	//repro:detached fixture listener serves until process exit
	go fn()
}

// detachedNoReason carries the verb but no audit trail.
func detachedNoReason(fn func()) {
	//repro:detached
	go fn() // want `needs a reason`
}
