package goroleak_test

import (
	"testing"

	"repro/internal/lint/goroleak"
	"repro/internal/lint/linttest"
)

func TestFixture(t *testing.T) {
	if testing.Short() {
		t.Skip("fixture analysis shells out to go list")
	}
	linttest.Run(t, "testdata/mod", goroleak.Analyzer)
}
