// Package server is the strictdecode fixture: every way a handler can
// decode a request body, strict and lax.
package server

import (
	"encoding/json"
	"net/http"
)

type payload struct {
	Nodes int `json:"nodes"`
}

// lax is the chained one-liner: no room for DisallowUnknownFields.
func lax(w http.ResponseWriter, r *http.Request) {
	var p payload
	if err := json.NewDecoder(r.Body).Decode(&p); err != nil { // want `json\.NewDecoder\(<request body>\)\.Decode without DisallowUnknownFields`
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
}

// looseVar binds a decoder variable but never makes it strict.
func looseVar(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	var p payload
	if err := dec.Decode(&p); err != nil { // want `Decode on an HTTP request-body json\.Decoder with no prior DisallowUnknownFields`
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
}

// strict is the required idiom.
func strict(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var p payload
	if err := dec.Decode(&p); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
}

// limited wraps the body first; the decoder still derives from it.
func limited(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	dec := json.NewDecoder(body)
	var p payload
	if err := dec.Decode(&p); err != nil { // want `Decode on an HTTP request-body json\.Decoder with no prior DisallowUnknownFields`
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
}

// response decodes an *http.Response body -- a client, not a handler;
// out of scope for the check.
func response(resp *http.Response) payload {
	var p payload
	_ = json.NewDecoder(resp.Body).Decode(&p)
	return p
}

var _ = []any{lax, looseVar, strict, limited, response}
