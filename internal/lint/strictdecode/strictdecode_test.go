package strictdecode_test

import (
	"path/filepath"
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/strictdecode"
)

// TestFixture pins the chained, loose-variable and wrapped-body lax
// forms as findings, and the strict idiom and client-response decode
// as clean.
func TestFixture(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "mod"), strictdecode.Analyzer)
}
