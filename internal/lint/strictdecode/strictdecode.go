// Package strictdecode enforces the service's wire discipline: every
// json.Decoder constructed over an HTTP request body must call
// DisallowUnknownFields before its first Decode.  A misspelled field
// in a POSTed scenario must cost the caller a 400, never a silently
// applied default -- with a content-addressed result cache, a silently
// defaulted knob does not just corrupt one response, it poisons the
// cached entry every later caller shares.
//
// The check is flow-light but positional: within one function body it
// tracks decoder variables initialized from json.NewDecoder(x) where x
// syntactically derives from an *http.Request Body (directly, or via a
// local wrapper like http.MaxBytesReader), and requires a
// DisallowUnknownFields call on the same variable at an earlier
// position than every Decode.  The chained one-liner
// json.NewDecoder(r.Body).Decode(&v) is flagged outright: the form
// leaves no room for the required call.
package strictdecode

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/lint"
)

// Analyzer is the strictdecode check.
var Analyzer = &lint.Analyzer{
	Name: "strictdecode",
	Doc:  "require DisallowUnknownFields before Decode on every HTTP request-body json.Decoder",
	Run:  run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				body = n.Body
			case *ast.FuncLit:
				body = n.Body
			}
			if body != nil {
				checkBody(pass, body)
			}
			return true
		})
	}
	return nil
}

func checkBody(pass *lint.Pass, body *ast.BlockStmt) {
	derived := bodyDerivedVars(pass, body)

	type decoder struct {
		strictAt  token.Pos
		decodeAt  token.Pos
		decodePos []token.Pos
	}
	decoders := map[*types.Var]*decoder{}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// d := json.NewDecoder(<request body>)
			if len(n.Rhs) != 1 || len(n.Lhs) != 1 {
				return true
			}
			call, ok := n.Rhs[0].(*ast.CallExpr)
			if !ok || !isNewDecoder(pass, call) || !derivesFromRequestBody(pass, call, derived) {
				return true
			}
			if id, ok := n.Lhs[0].(*ast.Ident); ok {
				if v, ok := pass.Info.Defs[id].(*types.Var); ok {
					decoders[v] = &decoder{}
				} else if v, ok := pass.Info.Uses[id].(*types.Var); ok {
					decoders[v] = &decoder{}
				}
			}
		case *ast.CallExpr:
			fn := lint.Callee(pass.Info, n)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "encoding/json" {
				return true
			}
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch fn.Name() {
			case "Decode":
				// Chained json.NewDecoder(r.Body).Decode(&v): no room
				// for DisallowUnknownFields at all.
				if inner, ok := ast.Unparen(sel.X).(*ast.CallExpr); ok &&
					isNewDecoder(pass, inner) && derivesFromRequestBody(pass, inner, derived) {
					pass.Reportf(n.Pos(), "json.NewDecoder(<request body>).Decode without DisallowUnknownFields; bind the decoder to a variable and call DisallowUnknownFields first so unknown fields are a 400")
					return true
				}
				if v := identVar(pass, sel.X); v != nil {
					if d := decoders[v]; d != nil {
						d.decodePos = append(d.decodePos, n.Pos())
					}
				}
			case "DisallowUnknownFields":
				if v := identVar(pass, sel.X); v != nil {
					if d := decoders[v]; d != nil && !d.strictAt.IsValid() {
						d.strictAt = n.Pos()
					}
				}
			}
		}
		return true
	})

	var diags []token.Pos
	for _, d := range decoders {
		for _, p := range d.decodePos {
			if !d.strictAt.IsValid() || d.strictAt > p {
				diags = append(diags, p)
			}
		}
	}
	// Map order must not surface: report in position order.
	sort.Slice(diags, func(i, j int) bool { return diags[i] < diags[j] })
	for _, p := range diags {
		pass.Reportf(p, "Decode on an HTTP request-body json.Decoder with no prior DisallowUnknownFields call; unknown fields must be a 400, not a silently applied default")
	}
}

// bodyDerivedVars collects local variables whose initializer involves
// an *http.Request Body, iterating to a small fixpoint so one level of
// wrapping (readers, buffers, limiters) is followed.
func bodyDerivedVars(pass *lint.Pass, body *ast.BlockStmt) map[*types.Var]bool {
	derived := map[*types.Var]bool{}
	for i := 0; i < 3; i++ {
		grew := false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for j, rhs := range as.Rhs {
				if !exprDerivesFromBody(pass, rhs, derived) {
					continue
				}
				if id, ok := as.Lhs[j].(*ast.Ident); ok {
					var v *types.Var
					if d, ok := pass.Info.Defs[id].(*types.Var); ok {
						v = d
					} else if u, ok := pass.Info.Uses[id].(*types.Var); ok {
						v = u
					}
					if v != nil && !derived[v] {
						derived[v] = true
						grew = true
					}
				}
			}
			return true
		})
		if !grew {
			break
		}
	}
	return derived
}

// derivesFromRequestBody reports whether any argument of the
// json.NewDecoder call derives from a request body.
func derivesFromRequestBody(pass *lint.Pass, call *ast.CallExpr, derived map[*types.Var]bool) bool {
	for _, arg := range call.Args {
		if exprDerivesFromBody(pass, arg, derived) {
			return true
		}
	}
	return false
}

// exprDerivesFromBody walks one expression for a `.Body` selection on
// *net/http.Request or a variable already known to carry one.
func exprDerivesFromBody(pass *lint.Pass, expr ast.Expr, derived map[*types.Var]bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if isRequestBody(pass, n) {
				found = true
			}
		case *ast.Ident:
			if v, ok := pass.Info.Uses[n].(*types.Var); ok && derived[v] {
				found = true
			}
		}
		return !found
	})
	return found
}

// isRequestBody matches a field selection of net/http.Request.Body.
func isRequestBody(pass *lint.Pass, sel *ast.SelectorExpr) bool {
	s := pass.Info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal || s.Obj().Name() != "Body" {
		return false
	}
	recv := s.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	n, ok := recv.(*types.Named)
	return ok && n.Obj().Name() == "Request" &&
		n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "net/http"
}

// isNewDecoder matches encoding/json.NewDecoder.
func isNewDecoder(pass *lint.Pass, call *ast.CallExpr) bool {
	fn := lint.Callee(pass.Info, call)
	return fn != nil && fn.Pkg() != nil &&
		fn.Pkg().Path() == "encoding/json" && fn.Name() == "NewDecoder"
}

// identVar resolves a bare identifier expression to its variable.
func identVar(pass *lint.Pass, expr ast.Expr) *types.Var {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := pass.Info.Uses[id].(*types.Var)
	return v
}
