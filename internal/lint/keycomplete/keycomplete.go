// Package keycomplete statically proves the cache-key coverage
// invariant: every field that can change what a simulation computes is
// either encoded into the canonical run key or carries an explicit
// //repro:nokey exclusion annotation (see package nokey).
//
// The check has two halves, both anchored on the key encoders --
// the CanonicalRunKey* functions declared in the wire package's
// key.go:
//
//   - Encoder coverage: starting from the encoder parameter types
//     (montage.Spec and core.Plan in this repo), every exported field
//     of every module-local struct reachable through encoded fields
//     must itself be referenced somewhere in key.go or be annotated.
//     A new Plan field that never reaches the encoder is named in the
//     diagnostic -- unlike the retired reflect.NumField count guards,
//     which could only say "a field was added somewhere".
//
//   - Resolution coverage: every exported field of the wire Scenario
//     document (all nested sections) must be read somewhere in the
//     call closure of Scenario.Resolve, the only path by which a wire
//     knob can reach the (spec, plan) pair the key encodes -- or be
//     annotated (the trace flag is the canonical example: a pure
//     observer, deliberately outside the key).
//
// Malformed or misplaced annotations are diagnostics too: a stale
// exclusion is as dangerous as a missing encoding.
package keycomplete

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/nokey"
)

// Analyzer is the keycomplete check.
var Analyzer = &lint.Analyzer{
	Name: "keycomplete",
	Doc:  "verify every scenario/plan field is canonical-key encoded or //repro:nokey annotated",
	Run:  run,
}

// keyFileName anchors the check: the analyzer activates on any package
// whose key.go declares CanonicalRunKey* functions.
const keyFileName = "key.go"

func run(pass *lint.Pass) error {
	keyFile := findKeyFile(pass)
	if keyFile == nil {
		return nil
	}
	encoders := encoderDecls(keyFile)
	if len(encoders) == 0 {
		return nil
	}
	root, modPath, err := lint.ModuleInfo(pass.Dir)
	if err != nil {
		return err
	}
	c := &checker{
		pass:       pass,
		modRoot:    root,
		modPath:    modPath,
		referenced: map[*types.Var]bool{},
		anns:       map[string]*nokey.Set{},
		visited:    map[*types.Named]bool{},
	}

	// Every field selection anywhere in key.go counts as "encoded".
	ast.Inspect(keyFile, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if sel := pass.Info.Selections[n]; sel != nil && sel.Kind() == types.FieldVal {
				c.referenced[sel.Obj().(*types.Var)] = true
			}
		case *ast.Ident:
			if v, ok := pass.Info.Uses[n].(*types.Var); ok && v.IsField() {
				c.referenced[v] = true
			}
		}
		return true
	})

	for _, fd := range encoders {
		fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
		if !ok {
			continue
		}
		sig := fn.Type().(*types.Signature)
		for i := 0; i < sig.Params().Len(); i++ {
			if n := namedStruct(sig.Params().At(i).Type()); n != nil {
				c.visitEncoded(n)
			}
		}
	}

	c.checkResolutionCoverage()
	return nil
}

// checker carries the traversal state of one keycomplete run.
type checker struct {
	pass       *lint.Pass
	modRoot    string
	modPath    string
	referenced map[*types.Var]bool
	anns       map[string]*nokey.Set // package path -> parsed annotations
	visited    map[*types.Named]bool
}

// visitEncoded enforces encoder coverage on struct n and recurses
// through the fields that are themselves encoded.
func (c *checker) visitEncoded(n *types.Named) {
	if c.visited[n] {
		return
	}
	c.visited[n] = true
	st, ok := n.Underlying().(*types.Struct)
	if !ok {
		return
	}
	pkg := n.Obj().Pkg()
	if pkg == nil || !c.inModule(pkg.Path()) {
		return
	}
	anns := c.annotations(pkg.Path())
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Exported() {
			continue
		}
		if _, excluded := anns.Excluded(n.Obj().Name(), f.Name()); excluded {
			continue // the exclusion covers the whole subtree
		}
		if !c.referenced[f] {
			c.pass.Reportf(c.fieldPos(anns, n, f), "%s.%s.%s is not referenced by the canonical-key encoders in %s and has no //repro:nokey annotation; encode it or annotate the exclusion",
				pkg.Name(), n.Obj().Name(), f.Name(), keyFileName)
			continue
		}
		for _, nested := range reachableStructs(f.Type()) {
			c.visitEncoded(nested)
		}
	}
}

// checkResolutionCoverage enforces that every exported Scenario field
// is read on the Scenario.Resolve call closure or annotated.
func (c *checker) checkResolutionCoverage() {
	pass := c.pass
	obj, ok := pass.Pkg.Scope().Lookup("Scenario").(*types.TypeName)
	if !ok {
		return
	}
	scen, ok := obj.Type().(*types.Named)
	if !ok || !isStruct(scen) {
		return
	}
	resolve := method(scen, "Resolve")
	if resolve == nil {
		return
	}

	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
	}

	// Breadth-first closure of same-package calls from Resolve.
	reads := map[*types.Var]bool{}
	queue := []*types.Func{resolve}
	inClosure := map[*types.Func]bool{resolve: true}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		fd := decls[fn]
		if fd == nil || fd.Body == nil {
			continue
		}
		c.collectReads(fd.Body, reads)
		for _, callee := range c.callees(fd.Body) {
			if callee.Pkg() == pass.Pkg && !inClosure[callee] {
				inClosure[callee] = true
				queue = append(queue, callee)
			}
		}
	}

	anns := c.annotations(pass.Pkg.Path())
	c.visitResolved(scen, reads, anns, map[*types.Named]bool{})
}

// visitResolved checks one wire struct's fields against the resolution
// read set, recursing into same-package section structs.
func (c *checker) visitResolved(n *types.Named, reads map[*types.Var]bool, anns *nokey.Set, seen map[*types.Named]bool) {
	if seen[n] {
		return
	}
	seen[n] = true
	st := n.Underlying().(*types.Struct)
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Exported() {
			continue
		}
		if _, excluded := anns.Excluded(n.Obj().Name(), f.Name()); excluded {
			continue
		}
		if !reads[f] {
			c.pass.Reportf(c.fieldPos(anns, n, f), "%s.%s.%s is never read while resolving %s (it cannot reach the canonical key) and has no //repro:nokey annotation; resolve it into the plan or annotate the exclusion",
				n.Obj().Pkg().Name(), n.Obj().Name(), f.Name(), "Scenario")
			continue
		}
		for _, nested := range reachableStructs(f.Type()) {
			if nested.Obj().Pkg() == c.pass.Pkg {
				c.visitResolved(nested, reads, anns, seen)
			}
		}
	}
}

// collectReads records field objects read in body, skipping selectors
// that are pure assignment targets (writes cannot feed the key).
func (c *checker) collectReads(body *ast.BlockStmt, reads map[*types.Var]bool) {
	writes := map[*ast.SelectorExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok && as.Tok == token.ASSIGN {
			for _, lhs := range as.Lhs {
				if sel, ok := lhs.(*ast.SelectorExpr); ok {
					writes[sel] = true
				}
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || writes[sel] {
			return true
		}
		if s := c.pass.Info.Selections[sel]; s != nil && s.Kind() == types.FieldVal {
			reads[s.Obj().(*types.Var)] = true
		}
		return true
	})
}

// callees lists the functions body calls, resolved through the type
// information (plain calls, method calls, qualified calls).
func (c *checker) callees(body *ast.BlockStmt) []*types.Func {
	var out []*types.Func
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := lint.Callee(c.pass.Info, call); fn != nil {
			out = append(out, fn)
		}
		return true
	})
	return out
}

// annotations parses (and caches) the //repro:nokey annotations of one
// module package, reporting malformed ones as diagnostics.
func (c *checker) annotations(pkgPath string) *nokey.Set {
	if s, ok := c.anns[pkgPath]; ok {
		return s
	}
	var set *nokey.Set
	if pkgPath == c.pass.Pkg.Path() {
		set = nokey.ParseFiles(c.pass.Files)
	} else if dir := lint.PkgDir(c.modRoot, c.modPath, pkgPath); dir != "" {
		s, err := nokey.ParseDir(c.pass.Fset, dir)
		if err != nil {
			// Sources unavailable (vendored build?): fall back to an
			// empty set; missing annotations then surface as missing
			// encodings, which is the safe direction.
			s = nokey.ParseFiles(nil)
		}
		set = s
	} else {
		set = nokey.ParseFiles(nil)
	}
	for _, p := range set.Problems() {
		c.pass.Reportf(p.Pos, "%s", p.Message)
	}
	c.anns[pkgPath] = set
	return set
}

// fieldPos prefers the syntactic declaration position (exact file and
// column) over the export-data position for imported packages.
func (c *checker) fieldPos(anns *nokey.Set, n *types.Named, f *types.Var) token.Pos {
	if fi, ok := anns.FieldInfo(n.Obj().Name(), f.Name()); ok && fi.Pos.IsValid() {
		return fi.Pos
	}
	return f.Pos()
}

func (c *checker) inModule(path string) bool {
	return path == c.modPath || strings.HasPrefix(path, c.modPath+"/")
}

// findKeyFile returns the package file named key.go, if any.
func findKeyFile(pass *lint.Pass) *ast.File {
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		if filepath.Base(name) == keyFileName {
			return f
		}
	}
	return nil
}

// encoderDecls returns key.go's CanonicalRunKey* function declarations.
func encoderDecls(keyFile *ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, d := range keyFile.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Recv == nil && strings.HasPrefix(fd.Name.Name, "CanonicalRunKey") {
			out = append(out, fd)
		}
	}
	return out
}

// namedStruct unwraps pointers and returns t as a named struct type.
func namedStruct(t types.Type) *types.Named {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || !isStruct(n) {
		return nil
	}
	return n
}

func isStruct(n *types.Named) bool {
	_, ok := n.Underlying().(*types.Struct)
	return ok
}

// reachableStructs lists the named struct types reachable from t
// through pointers, slices, arrays and map values.
func reachableStructs(t types.Type) []*types.Named {
	switch t := t.(type) {
	case *types.Pointer:
		return reachableStructs(t.Elem())
	case *types.Slice:
		return reachableStructs(t.Elem())
	case *types.Array:
		return reachableStructs(t.Elem())
	case *types.Map:
		return append(reachableStructs(t.Key()), reachableStructs(t.Elem())...)
	case *types.Named:
		if isStruct(t) {
			return []*types.Named{t}
		}
	}
	return nil
}

// method returns the declared method named name on n (value or pointer
// receiver), or nil.
func method(n *types.Named, name string) *types.Func {
	for i := 0; i < n.NumMethods(); i++ {
		if m := n.Method(i); m.Name() == name {
			return m
		}
	}
	return nil
}
