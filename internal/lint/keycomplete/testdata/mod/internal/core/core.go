// Package core is the fixture stand-in for the simulation kernel: a
// Plan with one field the key encoders forgot and one annotated
// observer.
package core

// Recorder is the fixture observer type hanging off the plan.
type Recorder struct {
	Events []string
}

// Plan is the executable plan the canonical key must cover.
type Plan struct {
	Nodes int
	Seed  int64
	// Debug was added without touching the key encoders and without an
	// exclusion annotation -- keycomplete must name it.
	Debug bool // want `core\.Plan\.Debug is not referenced by the canonical-key encoders`
	// Recorder is a pure observer and says so.
	//repro:nokey recorder — pure observer, never changes what the run computes
	Recorder *Recorder
}
