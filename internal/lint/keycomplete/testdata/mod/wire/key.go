package wire

import (
	"fmt"

	"repro/internal/core"
)

// CanonicalRunKey encodes the plan into its result-cache key.
func CanonicalRunKey(plan core.Plan) string {
	return fmt.Sprintf("v1|nodes=%d|seed=%d", plan.Nodes, plan.Seed)
}
