// Package wire is the fixture scenario document: two resolved knobs,
// one annotated observer, and one field Resolve never reads.
package wire

import "repro/internal/core"

// Scenario is the wire document lowered by Resolve.
type Scenario struct {
	Nodes int   `json:"nodes"`
	Seed  int64 `json:"seed"`
	// Label is accepted on the wire but never resolved into the plan,
	// so it can never reach the canonical key -- keycomplete must name
	// it.
	Label string `json:"label,omitempty"` // want `wire\.Scenario\.Label is never read while resolving Scenario`
	// Trace is the canonical exclusion example from the annotation
	// grammar.
	//repro:nokey trace — observer only
	Trace bool `json:"trace,omitempty"`
}

// Resolve lowers the document to an executable plan.
func (s Scenario) Resolve() (core.Plan, error) {
	plan := core.Plan{Nodes: s.Nodes}
	plan.Seed = resolveSeed(s)
	return plan, nil
}

// resolveSeed exists so the fixture exercises the call-closure walk:
// the Seed read happens one call away from Resolve.
func resolveSeed(s Scenario) int64 {
	return s.Seed
}
