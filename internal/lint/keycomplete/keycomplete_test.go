package keycomplete_test

import (
	"path/filepath"
	"testing"

	"repro/internal/lint/keycomplete"
	"repro/internal/lint/linttest"
)

// TestFixture proves the acceptance criterion: a plan field omitted
// from the encoders and a scenario field Resolve never reads are both
// named, while annotated observers pass.
func TestFixture(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "mod"), keycomplete.Analyzer)
}
