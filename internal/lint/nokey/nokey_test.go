package nokey_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"repro/internal/lint/nokey"
)

func parse(t *testing.T, src string) *nokey.Set {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return nokey.ParseFiles([]*ast.File{f})
}

func TestAnnotationGrammar(t *testing.T) {
	set := parse(t, `package p

type S struct {
	// Kept feeds the key.
	Kept int
	//repro:nokey skipped — observer only
	Skipped bool `+"`json:\"skipped\"`"+`
	//repro:nokey by_tag -- double-dash separator, matched via json tag
	Tagged bool `+"`json:\"by_tag\"`"+`
}
`)
	if len(set.Problems()) != 0 {
		t.Fatalf("unexpected problems: %v", set.Problems())
	}
	if _, ok := set.Excluded("S", "Kept"); ok {
		t.Error("Kept must not be excluded")
	}
	ann, ok := set.Excluded("S", "Skipped")
	if !ok {
		t.Fatal("Skipped must be excluded")
	}
	if ann.Reason != "observer only" {
		t.Errorf("Skipped reason = %q, want %q", ann.Reason, "observer only")
	}
	if _, ok := set.Excluded("S", "Tagged"); !ok {
		t.Error("Tagged must be excluded via its json tag name")
	}
}

func TestMalformedAnnotations(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"missing reason", `package p

type S struct {
	//repro:nokey field
	Field int
}
`},
		{"wrong name", `package p

type S struct {
	//repro:nokey other — reason
	Field int
}
`},
		{"embedded field", `package p

type T struct{}

type S struct {
	//repro:nokey t — reason
	T
}
`},
		{"multi-name declaration", `package p

type S struct {
	//repro:nokey a — reason
	A, B int
}
`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			set := parse(t, tc.src)
			if len(set.Problems()) == 0 {
				t.Errorf("want a problem for %s, got none", tc.name)
			}
		})
	}
}

func TestFieldInventory(t *testing.T) {
	set := parse(t, `package p

type S struct {
	A int `+"`json:\"a\"`"+`
	B int
	c int
}
`)
	st := set.Struct("S")
	if st == nil {
		t.Fatal("struct S not found")
	}
	if got := len(st.Fields); got != 3 {
		t.Fatalf("got %d fields, want 3", got)
	}
	f, ok := set.FieldInfo("S", "A")
	if !ok || f.JSONName != "a" {
		t.Errorf("FieldInfo(S, A) = %+v, %v; want json name %q", f, ok, "a")
	}
}
