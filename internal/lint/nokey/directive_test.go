package nokey_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"repro/internal/lint/nokey"
)

func TestParseDirective(t *testing.T) {
	src := `package p

//repro:hot
func a() {}

//repro:detached serves until process exit
func b() {}

//repro:detached — em-dash reason
func c() {}

//repro:hotter not the hot verb
func d() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	var hot, detached int
	var reasons []string
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if _, ok := nokey.ParseDirective(c, "hot"); ok {
				hot++
			}
			if d, ok := nokey.ParseDirective(c, "detached"); ok {
				detached++
				reasons = append(reasons, d.Reason)
			}
		}
	}
	if hot != 1 {
		t.Errorf("hot directives = %d, want 1 (//repro:hotter must not match)", hot)
	}
	if detached != 2 {
		t.Fatalf("detached directives = %d, want 2", detached)
	}
	if reasons[0] != "serves until process exit" {
		t.Errorf("bare reason = %q", reasons[0])
	}
	if reasons[1] != "em-dash reason" {
		t.Errorf("em-dash reason = %q, separator must be stripped", reasons[1])
	}
}

func TestDirectivesAt(t *testing.T) {
	src := `package p

func f() {
	//repro:detached flight outlives callers
	go work() // line 5, sanctioned by line 4
	go work() //repro:detached same-line form
	go work() // line 7, unsanctioned
}

func work() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	d := nokey.CollectDirectives(fset, f, "detached")
	at := func(line int) bool {
		pos := fset.File(f.Pos()).LineStart(line)
		_, ok := d.At(pos, "detached")
		return ok
	}
	if !at(5) {
		t.Error("line 5 is sanctioned by the preceding-line directive")
	}
	if !at(6) {
		t.Error("line 6 is sanctioned by its same-line directive")
	}
	if at(8) {
		t.Error("line 8 carries no directive")
	}
	if _, ok := d.At(fset.File(f.Pos()).LineStart(5), "hot"); ok {
		t.Error("verb filter must not cross: detached is not hot")
	}
}

func TestHasDirective(t *testing.T) {
	src := `package p

// f is the dispatch loop.
//repro:hot
func f() {}

// g is ordinary.
func g() {}
`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	docs := map[string]bool{}
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok {
			_, has := nokey.HasDirective(fd.Doc, "hot")
			docs[fd.Name.Name] = has
		}
	}
	if !docs["f"] {
		t.Error("f's doc carries //repro:hot")
	}
	if docs["g"] {
		t.Error("g's doc carries no directive")
	}
}
