// Package nokey parses //repro:nokey exclusion annotations.
//
// The canonical cache key must cover every field that can change what
// a simulation computes.  A field that deliberately does NOT feed the
// key -- a pure observer like the flight recorder -- must say so where
// it is declared, in a form machines can check:
//
//	// Recorder captures the run's timeline.
//	//repro:nokey recorder — pure observer, never changes results
//	Recorder *obs.Recorder
//
// Grammar, one annotation per struct field, in the field's doc or
// trailing line comment:
//
//	//repro:nokey <name> — <reason>
//	//repro:nokey <name> -- <reason>
//
// <name> must match the field it annotates: its Go name (any case) or
// its JSON tag name.  <reason> is mandatory -- an exclusion without a
// recorded why is exactly the kind of folklore this annotation
// retires.  The keycomplete analyzer and wire's key discipline test
// both consume this package, so the annotation means the same thing to
// the compiler gate and to `go test`.
package nokey

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
)

// Annotation is one parsed //repro:nokey marker.
type Annotation struct {
	Struct string // enclosing struct type name
	Field  string // Go name of the annotated field
	Name   string // the name as written in the annotation
	Reason string
	Pos    token.Pos
}

// Field describes one declared struct field.
type Field struct {
	Name     string // Go name
	JSONName string // json tag name, "" if untagged
	Pos      token.Pos
	Ann      *Annotation // nil when the field carries no annotation
}

// Struct is one struct type declaration's fields, in order.
type Struct struct {
	Name   string
	Fields []Field
}

// Problem is a malformed annotation: wrong name, missing reason,
// ambiguous placement.
type Problem struct {
	Pos     token.Pos
	Message string
}

// Set holds every struct declaration and annotation found in a parse.
type Set struct {
	structs  map[string]*Struct
	problems []Problem
}

// Struct returns the declared struct by type name, or nil.
func (s *Set) Struct(name string) *Struct {
	if s == nil {
		return nil
	}
	return s.structs[name]
}

// StructNames lists the parsed struct type names, sorted.
func (s *Set) StructNames() []string {
	names := make([]string, 0, len(s.structs))
	for n := range s.structs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Excluded reports whether structName.fieldName carries a //repro:nokey
// annotation.
func (s *Set) Excluded(structName, fieldName string) (Annotation, bool) {
	st := s.Struct(structName)
	if st == nil {
		return Annotation{}, false
	}
	for _, f := range st.Fields {
		if f.Name == fieldName && f.Ann != nil {
			return *f.Ann, true
		}
	}
	return Annotation{}, false
}

// FieldInfo returns the parsed declaration of structName.fieldName.
func (s *Set) FieldInfo(structName, fieldName string) (Field, bool) {
	st := s.Struct(structName)
	if st == nil {
		return Field{}, false
	}
	for _, f := range st.Fields {
		if f.Name == fieldName {
			return f, true
		}
	}
	return Field{}, false
}

// Problems returns malformed annotations found during parsing.
func (s *Set) Problems() []Problem { return s.problems }

// ParseDir parses the non-test Go files of dir (comments on) and
// collects every struct declaration and annotation.
func ParseDir(fset *token.FileSet, dir string) (*Set, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return ParseFiles(files), nil
}

// ParseFiles collects struct declarations and annotations from already
// parsed files (which must have been parsed with comments).
func ParseFiles(files []*ast.File) *Set {
	s := &Set{structs: map[string]*Struct{}}
	for _, f := range files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				s.addStruct(ts.Name.Name, st)
			}
		}
	}
	return s
}

func (s *Set) addStruct(name string, st *ast.StructType) {
	out := &Struct{Name: name}
	for _, fld := range st.Fields.List {
		jsonName := jsonTagName(fld.Tag)
		text, pos, found := annotationText(fld)
		switch len(fld.Names) {
		case 0: // embedded field; annotations unsupported there
			if found {
				s.problems = append(s.problems, Problem{pos,
					fmt.Sprintf("//repro:nokey on an embedded field of %s; annotate a named field", name)})
			}
			continue
		case 1:
		default:
			if found {
				s.problems = append(s.problems, Problem{pos,
					fmt.Sprintf("//repro:nokey on a multi-name field declaration in %s is ambiguous; split the declaration", name)})
				found = false
			}
		}
		for _, id := range fld.Names {
			field := Field{Name: id.Name, JSONName: jsonName, Pos: id.Pos()}
			if found {
				ann, prob := parseAnnotation(name, id.Name, jsonName, text, pos)
				if prob != nil {
					s.problems = append(s.problems, *prob)
				} else {
					field.Ann = ann
				}
			}
			out.Fields = append(out.Fields, field)
		}
	}
	s.structs[name] = out
}

// annotationText finds a //repro:nokey line in the field's doc comment
// or trailing line comment.
func annotationText(fld *ast.Field) (text string, pos token.Pos, ok bool) {
	for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			body, found := strings.CutPrefix(c.Text, "//repro:nokey")
			if found {
				return strings.TrimSpace(body), c.Pos(), true
			}
		}
	}
	return "", token.NoPos, false
}

// parseAnnotation validates "<name> — <reason>" against the field it
// is attached to.
func parseAnnotation(structName, fieldName, jsonName, text string, pos token.Pos) (*Annotation, *Problem) {
	name, reason := splitNameReason(text)
	if name == "" || reason == "" {
		return nil, &Problem{pos, fmt.Sprintf(
			"malformed //repro:nokey on %s.%s: want %q", structName, fieldName,
			"//repro:nokey <field> — <reason>")}
	}
	if !strings.EqualFold(name, fieldName) && name != jsonName {
		return nil, &Problem{pos, fmt.Sprintf(
			"//repro:nokey names %q but annotates field %s.%s (json %q); fix the name or move the annotation",
			name, structName, fieldName, jsonName)}
	}
	return &Annotation{Struct: structName, Field: fieldName, Name: name, Reason: reason, Pos: pos}, nil
}

// splitNameReason splits "<name> — <reason>" (em dash or "--").
func splitNameReason(text string) (name, reason string) {
	for _, sep := range []string{"—", "--"} {
		if i := strings.Index(text, sep); i >= 0 {
			return strings.TrimSpace(text[:i]), strings.TrimSpace(text[i+len(sep):])
		}
	}
	return strings.TrimSpace(text), ""
}

// jsonTagName extracts the json tag name from a struct tag literal.
func jsonTagName(tag *ast.BasicLit) string {
	if tag == nil {
		return ""
	}
	raw := strings.Trim(tag.Value, "`")
	v, ok := reflect.StructTag(raw).Lookup("json")
	if !ok {
		return ""
	}
	name, _, _ := strings.Cut(v, ",")
	if name == "-" {
		return ""
	}
	return name
}
