package nokey

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directive is one //repro:<verb> comment: the generalized form of the
// //repro:nokey grammar, used by the flow-sensitive analyzers --
// //repro:detached <reason> sanctions a deliberately unjoined
// goroutine, //repro:hot marks a function for hot-path allocation
// checking, //repro:nondet-ok <reason> suppresses one audited
// nondeterministic site.  Reasons share the nokey convention: the text
// after the verb, with an optional leading em dash or "--" separator.
type Directive struct {
	Verb   string
	Reason string // "" when the comment carries no reason text
	Pos    token.Pos
}

// ParseDirective parses one comment as //repro:<verb> [— <reason>].
// It matches whole verbs only: //repro:hotter is not //repro:hot.
func ParseDirective(c *ast.Comment, verb string) (Directive, bool) {
	rest, found := strings.CutPrefix(c.Text, "//repro:"+verb)
	if !found {
		return Directive{}, false
	}
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return Directive{}, false
	}
	reason := strings.TrimSpace(rest)
	for _, sep := range []string{"—", "--"} {
		if after, ok := strings.CutPrefix(reason, sep); ok {
			reason = strings.TrimSpace(after)
			break
		}
	}
	return Directive{Verb: verb, Reason: reason, Pos: c.Pos()}, true
}

// HasDirective reports whether a comment group (typically a FuncDecl
// doc) carries //repro:<verb>, returning the parsed form.
func HasDirective(doc *ast.CommentGroup, verb string) (Directive, bool) {
	if doc == nil {
		return Directive{}, false
	}
	for _, c := range doc.List {
		if d, ok := ParseDirective(c, verb); ok {
			return d, true
		}
	}
	return Directive{}, false
}

// Directives indexes one file's //repro:<verb> comments by source
// line, so analyzers can ask whether a statement is sanctioned by a
// same-line or directly-preceding-line annotation -- the same
// placement rule the determinism suppressions established.
type Directives struct {
	fset   *token.FileSet
	byLine map[int][]Directive
}

// CollectDirectives scans a parsed file's comments for the given verbs.
func CollectDirectives(fset *token.FileSet, f *ast.File, verbs ...string) *Directives {
	d := &Directives{fset: fset, byLine: map[int][]Directive{}}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			for _, verb := range verbs {
				dir, ok := ParseDirective(c, verb)
				if !ok {
					continue
				}
				line := fset.Position(c.Pos()).Line
				d.byLine[line] = append(d.byLine[line], dir)
				break
			}
		}
	}
	return d
}

// At returns the directive sanctioning the node at pos: one written on
// the same line, or alone on the line directly above.
func (d *Directives) At(pos token.Pos, verb string) (Directive, bool) {
	if d == nil {
		return Directive{}, false
	}
	line := d.fset.Position(pos).Line
	for _, l := range []int{line, line - 1} {
		for _, dir := range d.byLine[l] {
			if dir.Verb == verb {
				return dir, true
			}
		}
	}
	return Directive{}, false
}
