package trace

import (
	"math"
	"testing"
	"testing/quick"
)

func TestProfileValidate(t *testing.T) {
	cases := []struct {
		name string
		p    Profile
		ok   bool
	}{
		{"plain", Profile{Base: 100, Jitter: 0.2}, true},
		{"zero", Profile{}, true},
		{"no jitter", Profile{Base: 5}, true},
		{"negative base", Profile{Base: -1}, false},
		{"negative jitter", Profile{Base: 1, Jitter: -0.1}, false},
		{"jitter one", Profile{Base: 1, Jitter: 1}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.p.Validate()
			if (err == nil) != tc.ok {
				t.Errorf("Validate() err = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}

func TestSamplerDeterministic(t *testing.T) {
	p := Profile{Base: 100, Jitter: 0.3}
	a, b := NewSampler(42), NewSampler(42)
	for i := 0; i < 100; i++ {
		if va, vb := a.Sample(p), b.Sample(p); va != vb {
			t.Fatalf("draw %d: %v != %v for identical seeds", i, va, vb)
		}
	}
	c := NewSampler(43)
	same := true
	a = NewSampler(42)
	for i := 0; i < 10; i++ {
		if a.Sample(p) != c.Sample(p) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestSampleNoJitterIsExact(t *testing.T) {
	s := NewSampler(1)
	p := Profile{Base: 123.5}
	for i := 0; i < 5; i++ {
		if got := s.Sample(p); got != 123.5 {
			t.Fatalf("Sample = %v, want 123.5", got)
		}
	}
}

func TestSampleBounds(t *testing.T) {
	s := NewSampler(7)
	p := Profile{Base: 100, Jitter: 0.25}
	for i := 0; i < 10000; i++ {
		v := s.Sample(p)
		if v < 75 || v > 125 {
			t.Fatalf("sample %v outside [75,125]", v)
		}
	}
}

func TestSampleMeanApproximatesBase(t *testing.T) {
	s := NewSampler(99)
	p := Profile{Base: 200, Jitter: 0.5}
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += s.Sample(p)
	}
	mean := sum / n
	if math.Abs(mean-200) > 2 {
		t.Errorf("mean = %v, want ~200", mean)
	}
}

func TestSampleBytesRounds(t *testing.T) {
	s := NewSampler(3)
	if got := s.SampleBytes(Profile{Base: 1000.4}); got != 1000 {
		t.Errorf("SampleBytes = %d, want 1000", got)
	}
}

func TestCalibrationFactor(t *testing.T) {
	f, err := CalibrationFactor([]float64{1, 2, 3}, 12)
	if err != nil {
		t.Fatal(err)
	}
	if f != 2 {
		t.Errorf("factor = %v, want 2", f)
	}
	if _, err := CalibrationFactor(nil, 10); err == nil {
		t.Error("empty population accepted")
	}
	if _, err := CalibrationFactor([]float64{0, 0}, 10); err == nil {
		t.Error("zero-sum population accepted")
	}
	if _, err := CalibrationFactor([]float64{1}, 0); err == nil {
		t.Error("zero target accepted")
	}
	if _, err := CalibrationFactor([]float64{1}, -5); err == nil {
		t.Error("negative target accepted")
	}
}

// Property: scaling by the calibration factor hits the target exactly
// (up to float rounding).
func TestPropCalibrationHitsTarget(t *testing.T) {
	f := func(raw []uint16, tgt uint16) bool {
		if len(raw) == 0 {
			return true
		}
		values := make([]float64, len(raw))
		var sum float64
		for i, r := range raw {
			values[i] = float64(r) + 1 // strictly positive
			sum += values[i]
		}
		target := float64(tgt) + 1
		factor, err := CalibrationFactor(values, target)
		if err != nil {
			return false
		}
		var scaled float64
		for _, v := range values {
			scaled += v * factor
		}
		return math.Abs(scaled-target) <= 1e-9*math.Max(1, target)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: samples always stay within the jitter envelope.
func TestPropSampleEnvelope(t *testing.T) {
	f := func(seed int64, base uint16, jit uint8) bool {
		p := Profile{Base: float64(base), Jitter: float64(jit%100) / 100}
		s := NewSampler(seed)
		for i := 0; i < 50; i++ {
			v := s.Sample(p)
			lo := p.Base * (1 - p.Jitter)
			hi := p.Base * (1 + p.Jitter)
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
