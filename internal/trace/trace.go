// Package trace models the per-task runtime and file-size profiles that
// the paper took "from real runs of the workflow".  Since the original
// execution traces are not available, this package provides the closest
// synthetic equivalent: deterministic per-task-type base values with
// seeded, bounded jitter, plus calibration helpers that scale a sampled
// population so its aggregate hits a published anchor (total CPU-hours,
// total bytes, or a target CCR).
//
// Determinism matters: every simulator run in the repository must be
// bit-reproducible, so samplers are seeded explicitly and never touch
// global randomness.
package trace

import (
	"fmt"
	"math/rand"

	"repro/internal/units"
)

// Profile describes the distribution of a scalar quantity (a runtime in
// seconds or a file size in bytes) for one task type.
type Profile struct {
	Base   float64 // mean value
	Jitter float64 // relative half-width; samples fall in Base*(1±Jitter)
}

// Validate reports whether the profile is usable.
func (p Profile) Validate() error {
	if p.Base < 0 {
		return fmt.Errorf("trace: negative base %v", p.Base)
	}
	if p.Jitter < 0 || p.Jitter >= 1 {
		return fmt.Errorf("trace: jitter %v outside [0,1)", p.Jitter)
	}
	return nil
}

// Sampler draws deterministic values from Profiles.
type Sampler struct {
	rng *rand.Rand
}

// NewSampler returns a sampler seeded deterministically.
func NewSampler(seed int64) *Sampler {
	return &Sampler{rng: rand.New(rand.NewSource(seed))}
}

// Sample draws one value from p: uniform on Base*(1±Jitter).  The result
// is never negative.
func (s *Sampler) Sample(p Profile) float64 {
	if p.Jitter == 0 {
		return p.Base
	}
	v := p.Base * (1 + p.Jitter*(2*s.rng.Float64()-1))
	if v < 0 {
		v = 0
	}
	return v
}

// SampleDuration draws a runtime.
func (s *Sampler) SampleDuration(p Profile) units.Duration {
	return units.Duration(s.Sample(p))
}

// SampleBytes draws a file size, rounded to whole bytes.
func (s *Sampler) SampleBytes(p Profile) units.Bytes {
	return units.BytesOf(s.Sample(p))
}

// CalibrationFactor returns the multiplier that makes sum(values) equal
// target.  It returns an error when the population is degenerate.
func CalibrationFactor(values []float64, target float64) (float64, error) {
	var sum float64
	for _, v := range values {
		sum += v
	}
	if sum <= 0 {
		return 0, fmt.Errorf("trace: cannot calibrate zero-sum population to %v", target)
	}
	if target <= 0 {
		return 0, fmt.Errorf("trace: non-positive calibration target %v", target)
	}
	return target / sum, nil
}
