package units

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestBytesConversions(t *testing.T) {
	tests := []struct {
		name   string
		b      Bytes
		wantGB float64
		wantMB float64
	}{
		{"zero", 0, 0, 0},
		{"one GB", Bytes(1e9), 1, 1000},
		{"mosaic 1deg", Bytes(173.46 * MB), 0.17346, 173.46},
		{"archive 12TB", Bytes(12 * TB), 12000, 12e6},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if !almostEqual(tt.b.GB(), tt.wantGB, 1e-9) {
				t.Errorf("GB() = %v, want %v", tt.b.GB(), tt.wantGB)
			}
			if !almostEqual(tt.b.MB(), tt.wantMB, 1e-6) {
				t.Errorf("MB() = %v, want %v", tt.b.MB(), tt.wantMB)
			}
		})
	}
}

func TestBytesString(t *testing.T) {
	tests := []struct {
		b    Bytes
		want string
	}{
		{0, "0 B"},
		{512, "512 B"},
		{Bytes(2 * KB), "2.0 kB"},
		{Bytes(173.46 * MB), "173.46 MB"},
		{Bytes(2.229 * GB), "2.229 GB"},
		{Bytes(12 * TB), "12.000 TB"},
	}
	for _, tt := range tests {
		if got := tt.b.String(); got != tt.want {
			t.Errorf("Bytes(%d).String() = %q, want %q", int64(tt.b), got, tt.want)
		}
	}
}

func TestBytesOfRounds(t *testing.T) {
	if got := BytesOf(1.4); got != 1 {
		t.Errorf("BytesOf(1.4) = %d, want 1", got)
	}
	if got := BytesOf(1.6); got != 2 {
		t.Errorf("BytesOf(1.6) = %d, want 2", got)
	}
	if got := BytesOf(-2.5); got != -2 && got != -3 {
		t.Errorf("BytesOf(-2.5) = %d, want -2 or -3", got)
	}
}

func TestDuration(t *testing.T) {
	d := Duration(5.5 * SecondsPerHour)
	if !almostEqual(d.Hours(), 5.5, 1e-12) {
		t.Errorf("Hours() = %v, want 5.5", d.Hours())
	}
	if d.String() != "5.50 h" {
		t.Errorf("String() = %q, want %q", d.String(), "5.50 h")
	}
	if got := Duration(90).String(); got != "1.5 min" {
		t.Errorf("String() = %q, want %q", got, "1.5 min")
	}
	if got := Duration(12).String(); got != "12.0 s" {
		t.Errorf("String() = %q, want %q", got, "12.0 s")
	}
}

func TestMoneyString(t *testing.T) {
	tests := []struct {
		m    Money
		want string
	}{
		{0.56, "$0.5600"},
		{2.25, "$2.25"},
		{34632, "$34632.00"},
		{0.0001, "$0.0001"},
	}
	for _, tt := range tests {
		if got := tt.m.String(); got != tt.want {
			t.Errorf("Money(%v).String() = %q, want %q", float64(tt.m), got, tt.want)
		}
	}
	if !almostEqual(Money(0.56).Cents(), 56, 1e-9) {
		t.Errorf("Cents() = %v, want 56", Money(0.56).Cents())
	}
}

func TestMbps(t *testing.T) {
	bw := Mbps(10)
	if !almostEqual(bw.BytesPerSecond(), 1.25e6, 1e-6) {
		t.Errorf("10 Mbps = %v B/s, want 1.25e6", bw.BytesPerSecond())
	}
	if bw.String() != "10.0 Mbps" {
		t.Errorf("String() = %q, want %q", bw.String(), "10.0 Mbps")
	}
}

func TestTransferTime(t *testing.T) {
	bw := Mbps(10)
	// 173.46 MB at 10 Mbps: 173.46e6 / 1.25e6 = 138.768 s.
	got := bw.TransferTime(Bytes(173.46 * MB))
	if !almostEqual(got.Seconds(), 138.768, 1e-6) {
		t.Errorf("TransferTime = %v s, want 138.768", got.Seconds())
	}
	if zero := Bandwidth(0).TransferTime(100); zero != 0 {
		t.Errorf("TransferTime at zero bandwidth = %v, want 0", zero)
	}
}

func TestGBHoursAndMonths(t *testing.T) {
	// 1 GB held for 1 hour = 1 GB-hour.
	bs := GB * SecondsPerHour
	if !almostEqual(GBHours(bs), 1, 1e-12) {
		t.Errorf("GBHours = %v, want 1", GBHours(bs))
	}
	// 12 TB for a month = 12,000 GB-months (x $0.15 = $1,800 -- paper Q2b).
	bs = 12 * TB * SecondsPerMonth
	if !almostEqual(GBMonths(bs), 12000, 1e-6) {
		t.Errorf("GBMonths = %v, want 12000", GBMonths(bs))
	}
}

// Property: TransferTime scales linearly with size at fixed bandwidth.
func TestTransferTimeLinearity(t *testing.T) {
	bw := Mbps(10)
	f := func(n uint32) bool {
		a := bw.TransferTime(Bytes(n)).Seconds()
		b := bw.TransferTime(Bytes(2 * uint64(n))).Seconds()
		return almostEqual(2*a, b, 1e-9*math.Max(1, b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: GBHours and GBMonths stay proportional (720 hours per month).
func TestStorageUnitProportion(t *testing.T) {
	f := func(v uint32) bool {
		bs := float64(v)
		h, m := GBHours(bs), GBMonths(bs)
		return almostEqual(h, m*HoursPerMonth, 1e-9*math.Max(1, h))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
