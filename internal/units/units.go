// Package units defines the value types shared by the whole simulator:
// byte counts, simulated durations, money, and bandwidth.
//
// The paper's arithmetic uses decimal SI units throughout (1 GB = 1e9
// bytes, 1 month = 30 days) and normalizes every Amazon rate to a
// per-second / per-byte granularity.  This package pins those conventions
// in one place so that every cost in the repository reproduces the
// paper's numbers (e.g. 12 TB x $0.15/GB-month = $1,800/month).
package units

import (
	"fmt"
	"math"
)

// Decimal SI byte sizes, as used by the paper (1 GB = 1e9 bytes).
const (
	KB float64 = 1e3
	MB float64 = 1e6
	GB float64 = 1e9
	TB float64 = 1e12
)

// Time conversions used when normalizing monthly or hourly rates.
const (
	SecondsPerHour  float64 = 3600
	HoursPerMonth   float64 = 24 * 30 // the paper's 30-day month
	SecondsPerMonth float64 = SecondsPerHour * HoursPerMonth
)

// Bytes is a size in bytes. Sizes are int64 so that storage accounting is
// exact; derived quantities (costs, GB-hours) convert to float64.
type Bytes int64

// GB returns the size in decimal gigabytes.
func (b Bytes) GB() float64 { return float64(b) / GB }

// MB returns the size in decimal megabytes.
func (b Bytes) MB() float64 { return float64(b) / MB }

// String renders the size with a human-friendly decimal SI suffix.
func (b Bytes) String() string {
	v := float64(b)
	switch {
	case math.Abs(v) >= TB:
		return fmt.Sprintf("%.3f TB", v/TB)
	case math.Abs(v) >= GB:
		return fmt.Sprintf("%.3f GB", v/GB)
	case math.Abs(v) >= MB:
		return fmt.Sprintf("%.2f MB", v/MB)
	case math.Abs(v) >= KB:
		return fmt.Sprintf("%.1f kB", v/KB)
	default:
		return fmt.Sprintf("%d B", int64(b))
	}
}

// BytesOf converts a float64 byte count to Bytes, rounding to nearest.
func BytesOf(v float64) Bytes { return Bytes(math.Round(v)) }

// Duration is a simulated time span in seconds.  The simulator uses
// float64 seconds rather than time.Duration because workloads span tens
// of simulated hours and rates are defined per second.
type Duration float64

// Hours returns the duration in hours.
func (d Duration) Hours() float64 { return float64(d) / SecondsPerHour }

// Seconds returns the duration in seconds.
func (d Duration) Seconds() float64 { return float64(d) }

// String renders the duration in the most natural unit.
func (d Duration) String() string {
	s := float64(d)
	switch {
	case math.Abs(s) >= SecondsPerHour:
		return fmt.Sprintf("%.2f h", s/SecondsPerHour)
	case math.Abs(s) >= 60:
		return fmt.Sprintf("%.1f min", s/60)
	default:
		return fmt.Sprintf("%.1f s", s)
	}
}

// Money is an amount in US dollars.  Costs in the paper are reported in
// dollars and cents; float64 precision is ample for the magnitudes here
// (the largest figure in the paper is ~$35k).
type Money float64

// Dollars returns the amount as a float64 dollar value.
func (m Money) Dollars() float64 { return float64(m) }

// Cents returns the amount in cents.
func (m Money) Cents() float64 { return float64(m) * 100 }

// String renders the amount as dollars with four significant decimals so
// that sub-cent per-request costs stay visible.
func (m Money) String() string {
	if math.Abs(float64(m)) >= 1 {
		return fmt.Sprintf("$%.2f", float64(m))
	}
	return fmt.Sprintf("$%.4f", float64(m))
}

// Bandwidth is a transfer rate in bytes per second.
type Bandwidth float64

// Mbps constructs a Bandwidth from megabits per second, the unit the
// paper uses for the user-to-cloud link (10 Mbps).
func Mbps(v float64) Bandwidth { return Bandwidth(v * 1e6 / 8) }

// BytesPerSecond returns the rate in bytes per second.
func (bw Bandwidth) BytesPerSecond() float64 { return float64(bw) }

// TransferTime returns how long moving n bytes takes at this rate.
func (bw Bandwidth) TransferTime(n Bytes) Duration {
	if bw <= 0 {
		return 0
	}
	return Duration(float64(n) / float64(bw))
}

// String renders the rate in Mbps, matching the paper's notation.
func (bw Bandwidth) String() string {
	return fmt.Sprintf("%.1f Mbps", float64(bw)*8/1e6)
}

// GBHours converts a byte-seconds integral (the area under a storage
// usage curve) into GB-hours, the storage metric reported in Figs. 7-9.
func GBHours(byteSeconds float64) float64 {
	return byteSeconds / GB / SecondsPerHour
}

// GBMonths converts a byte-seconds integral into GB-months, the unit the
// storage rate is quoted in ($0.15 per GB-month).
func GBMonths(byteSeconds float64) float64 {
	return byteSeconds / GB / SecondsPerMonth
}
