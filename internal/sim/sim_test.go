package sim

import (
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func TestRunOrdersEventsByTime(t *testing.T) {
	var e Engine
	var got []int
	e.Schedule(30, func(units.Duration) { got = append(got, 3) })
	e.Schedule(10, func(units.Duration) { got = append(got, 1) })
	e.Schedule(20, func(units.Duration) { got = append(got, 2) })
	end := e.Run()
	if end != 30 {
		t.Errorf("end time = %v, want 30", end)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("order = %v, want [1 2 3]", got)
	}
	if e.Processed() != 3 {
		t.Errorf("Processed = %d, want 3", e.Processed())
	}
}

func TestTieBreakIsFIFO(t *testing.T) {
	var e Engine
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func(units.Duration) { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events fired out of order: %v", got)
		}
	}
}

func TestEventsScheduleMoreEvents(t *testing.T) {
	var e Engine
	count := 0
	var tick Event
	tick = func(now units.Duration) {
		count++
		if count < 5 {
			e.After(10, tick)
		}
	}
	e.Schedule(0, tick)
	end := e.Run()
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
	if end != 40 {
		t.Errorf("end = %v, want 40", end)
	}
}

func TestNowAdvancesDuringRun(t *testing.T) {
	var e Engine
	var seen []units.Duration
	e.Schedule(7, func(now units.Duration) { seen = append(seen, now, e.Now()) })
	e.Run()
	if len(seen) != 2 || seen[0] != 7 || seen[1] != 7 {
		t.Errorf("seen = %v, want [7 7]", seen)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	var e Engine
	e.Schedule(10, func(units.Duration) {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.Schedule(5, func(units.Duration) {})
	})
	e.Run()
}

func TestNilEventPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil event did not panic")
		}
	}()
	var e Engine
	e.Schedule(0, nil)
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	var e Engine
	e.After(-1, func(units.Duration) {})
}

func TestStopAndResume(t *testing.T) {
	var e Engine
	var got []int
	e.Schedule(1, func(units.Duration) { got = append(got, 1); e.Stop() })
	e.Schedule(2, func(units.Duration) { got = append(got, 2) })
	e.Run()
	if len(got) != 1 {
		t.Fatalf("after Stop got %v, want [1]", got)
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
	e.Run()
	if len(got) != 2 || got[1] != 2 {
		t.Fatalf("after resume got %v, want [1 2]", got)
	}
}

// Property: for any set of event times, Run fires them in sorted order
// and ends at the maximum time.
func TestPropRunSortsTimes(t *testing.T) {
	f := func(raw []uint16) bool {
		var e Engine
		var fired []units.Duration
		var max units.Duration
		for _, r := range raw {
			at := units.Duration(r)
			if at > max {
				max = at
			}
			e.Schedule(at, func(now units.Duration) { fired = append(fired, now) })
		}
		end := e.Run()
		if len(raw) == 0 {
			return end == 0
		}
		if end != max {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
