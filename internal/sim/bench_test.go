package sim

import (
	"testing"

	"repro/internal/units"
)

// BenchmarkScheduleRun measures raw kernel throughput: schedule and
// drain 10k events per iteration.
func BenchmarkScheduleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var e Engine
		for j := 0; j < 10000; j++ {
			e.Schedule(units.Duration(j%97), func(units.Duration) {})
		}
		e.Run()
	}
}

// BenchmarkCascade measures self-scheduling chains (each event schedules
// the next), the executor's dominant pattern.
func BenchmarkCascade(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var e Engine
		n := 0
		var tick Event
		tick = func(units.Duration) {
			n++
			if n < 10000 {
				e.After(1, tick)
			}
		}
		e.Schedule(0, tick)
		e.Run()
	}
}
