// Package sim is a minimal deterministic discrete-event simulation
// kernel, the role GridSim played for the paper's experiments.
//
// An Engine owns a virtual clock and a time-ordered event queue.  Events
// scheduled for the same instant fire in scheduling order (a monotonic
// sequence number breaks ties), which makes every simulation in this
// repository bit-reproducible.
package sim

import (
	"container/heap"
	"context"
	"fmt"

	"repro/internal/units"
)

// Event is a callback scheduled to run at a simulated time.
type Event func(now units.Duration)

type queuedEvent struct {
	at  units.Duration
	seq uint64
	fn  Event
}

type eventQueue []*queuedEvent

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(*queuedEvent)) }

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator.  The zero value is ready to use.
type Engine struct {
	now     units.Duration
	seq     uint64
	queue   eventQueue
	stopped bool
	nEvents uint64
}

// Now returns the current simulated time.
func (e *Engine) Now() units.Duration { return e.now }

// Processed returns how many events have fired so far.
func (e *Engine) Processed() uint64 { return e.nEvents }

// Schedule enqueues fn to run at absolute simulated time at.  Scheduling
// in the past panics: it is always a simulation bug.
func (e *Engine) Schedule(at units.Duration, fn Event) {
	if at < e.now {
		panic(fmt.Sprintf("sim: event scheduled at %v before now %v", at, e.now))
	}
	if fn == nil {
		panic("sim: nil event")
	}
	e.seq++
	heap.Push(&e.queue, &queuedEvent{at: at, seq: e.seq, fn: fn})
}

// After enqueues fn to run delay after the current time.
func (e *Engine) After(delay units.Duration, fn Event) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	e.Schedule(e.now+delay, fn)
}

// Run processes events until the queue is empty or Stop is called, and
// returns the final simulated time.
func (e *Engine) Run() units.Duration {
	t, _ := e.RunContext(context.Background())
	return t
}

// cancelCheckInterval is how many events the engine processes between
// context polls: frequent enough that cancellation lands promptly, rare
// enough that the poll never shows up in profiles.
const cancelCheckInterval = 64

// RunContext is Run with cooperative cancellation: the engine polls ctx
// every few events and, once it is canceled, stops and returns ctx's
// error with the virtual clock frozen at the abort point.  Pending
// events stay queued, as after Stop.
//
// This loop fires every simulated event in every run; ROADMAP item 1
// (event-engine throughput) lives or dies here, so the body must not
// allocate.
//
//repro:hot
func (e *Engine) RunContext(ctx context.Context) (units.Duration, error) {
	e.stopped = false
	for n := 0; len(e.queue) > 0 && !e.stopped; n++ {
		if n%cancelCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return e.now, err
			}
		}
		ev := heap.Pop(&e.queue).(*queuedEvent)
		e.now = ev.at
		e.nEvents++
		ev.fn(e.now)
	}
	return e.now, nil
}

// Stop halts Run after the current event returns.  Pending events stay
// queued; a subsequent Run resumes them.
func (e *Engine) Stop() { e.stopped = true }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }
