package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro"
	"repro/internal/policy"
	"repro/wire"
)

// tracedScenarioDoc is scenarioDoc with the trace knob on: a seeded
// spot scenario that preempts, flight-recorded.
const tracedScenarioDoc = `{
	"version": 2,
	"workflow": {"name": "1deg"},
	"fleet": {"processors": 16, "reliable": 4},
	"spot": {"rate_per_hour": 1.5, "seed": 7, "discount": 0.65},
	"recovery": {"checkpoint_seconds": 300, "checkpoint_overhead_seconds": 10},
	"trace": true
}`

// TestScenarioTraceJSON checks -scenario -json on a traced document:
// the result is the traced v2 run document, timeline included.
func TestScenarioTraceJSON(t *testing.T) {
	var out bytes.Buffer
	if err := runScenario(context.Background(), writeDoc(t, "traced.json", tracedScenarioDoc), "json", "", &out); err != nil {
		t.Fatal(err)
	}
	var doc wire.RunDocumentV2
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if !doc.Scenario.Trace || len(doc.Timeline) == 0 || len(doc.CriticalPath) == 0 {
		t.Errorf("traced document trace/timeline/critical_path = %v/%d/%d",
			doc.Scenario.Trace, len(doc.Timeline), len(doc.CriticalPath))
	}
}

// TestTraceFlagWritesChromeTrace checks -run -trace out.json: the file
// is a Chrome trace-event document with a non-empty traceEvents array.
func TestTraceFlagWritesChromeTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	req := repro.RunRequest{
		Workflow: "1deg", Mode: "regular", Processors: 16, Billing: "on-demand",
		Spot: &repro.SpotRequest{RatePerHour: 1.5, Seed: 7, Discount: 0.65, OnDemandProcessors: 4},
	}
	if err := runCustom(context.Background(), req, policy.Bundle{}, "json", path, io.Discard); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace file is not JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("trace file has no events")
	}
}

// TestTraceFlagRejectsGridUses pins the -trace guard rails: sweeps and
// experiments have no single timeline to write.
func TestTraceFlagRejectsGridUses(t *testing.T) {
	if err := realMain(context.Background(), "fig4", "text", "", repro.RunRequest{}, policy.Bundle{}, "out.json"); err == nil {
		t.Error("-exp with -trace accepted")
	}
	if err := runScenario(context.Background(), writeDoc(t, "sweep.json", sweepDoc), "text", "out.json", io.Discard); err == nil {
		t.Error("sweep with -trace accepted")
	}
}
