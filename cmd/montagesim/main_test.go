package main

import (
	"context"
	"strings"
	"testing"

	"repro"
	"repro/internal/policy"
)

func TestRunExperimentList(t *testing.T) {
	var b strings.Builder
	if err := runExperiment(context.Background(), "list", "text", &b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fig4", "fig10", "q2b", "ablation-outage", "spot-frontier"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("list missing %q", want)
		}
	}
}

func TestRunExperimentText(t *testing.T) {
	var b strings.Builder
	if err := runExperiment(context.Background(), "ccr-table", "text", &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "montage-4deg") {
		t.Errorf("missing workflow row:\n%s", b.String())
	}
}

func TestRunExperimentCSV(t *testing.T) {
	var b strings.Builder
	if err := runExperiment(context.Background(), "ccr-table", "csv", &b); err != nil {
		t.Fatal(err)
	}
	first := strings.SplitN(b.String(), "\n", 2)[0]
	if first != "workflow,tasks,ccr,paper" {
		t.Errorf("CSV header = %q", first)
	}
}

func TestRunExperimentErrors(t *testing.T) {
	var b strings.Builder
	if err := runExperiment(context.Background(), "no-such-figure", "text", &b); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := runExperiment(context.Background(), "ccr-table", "yaml", &b); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestRunCustom(t *testing.T) {
	var b strings.Builder
	if err := runCustom(context.Background(), repro.RunRequest{Workflow: "1deg", Mode: "cleanup", Processors: 8, Billing: "provisioned"}, policy.Bundle{}, "text", "", &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"montage-1deg", "cleanup", "provisioned", "total cost"} {
		if !strings.Contains(out, want) {
			t.Errorf("custom run output missing %q:\n%s", want, out)
		}
	}
}

func TestRunCustomJSON(t *testing.T) {
	var b strings.Builder
	if err := runCustom(context.Background(), repro.RunRequest{Workflow: "1deg", Mode: "regular", Processors: 4, Billing: "on-demand"}, policy.Bundle{}, "json", "", &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{`"Mode": "regular"`, `"total"`, `"CPUSeconds"`, `"workflow": "montage-1deg"`, `"billing": "on-demand"`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON output missing %q:\n%s", want, out)
		}
	}
}

func TestRunCustomJSONMatchesWireDocument(t *testing.T) {
	// The -json document must be byte-identical to what the server
	// builds for the same request: both go through RunDocument.Encode.
	var b strings.Builder
	if err := runCustom(context.Background(), repro.RunRequest{Workflow: "1deg", Mode: "regular", Processors: 4, Billing: "on-demand"}, policy.Bundle{}, "json", "", &b); err != nil {
		t.Fatal(err)
	}
	spec, plan, err := repro.RunRequest{Workflow: "1deg", Mode: "regular", Processors: 4}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	wf, err := repro.GenerateCached(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := repro.Run(wf, plan)
	if err != nil {
		t.Fatal(err)
	}
	want, err := repro.NewRunDocument(res).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if b.String() != string(want) {
		t.Errorf("CLI JSON diverges from wire document:\nCLI:\n%s\nwire:\n%s", b.String(), want)
	}
}

// TestRunCustomSpotJSONMatchesWireDocument pins the acceptance
// criterion end to end on the CLI side: a seeded mixed-fleet -json run
// is byte-identical to the document the server builds for the same
// request (internal/server asserts the same bytes against POST /v1/run).
func TestRunCustomSpotJSONMatchesWireDocument(t *testing.T) {
	req := repro.RunRequest{
		Workflow: "1deg", Processors: 16,
		Spot: &repro.SpotRequest{
			RatePerHour: 1.5, Seed: 7, Discount: 0.65, OnDemandProcessors: 4,
			CheckpointSeconds: 300, CheckpointOverheadSeconds: 10,
		},
	}
	var b strings.Builder
	if err := runCustom(context.Background(), req, policy.Bundle{}, "json", "", &b); err != nil {
		t.Fatal(err)
	}
	spec, plan, err := req.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	wf, err := repro.GenerateCached(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := repro.Run(wf, plan)
	if err != nil {
		t.Fatal(err)
	}
	want, err := repro.NewRunDocument(res).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if b.String() != string(want) {
		t.Errorf("CLI spot JSON diverges from wire document:\nCLI:\n%s\nwire:\n%s", b.String(), want)
	}
	if !strings.Contains(b.String(), `"on_demand_processors": 4`) {
		t.Errorf("spot plan missing from the document:\n%s", b.String())
	}
}

func TestRunCustomErrors(t *testing.T) {
	var b strings.Builder
	if err := runCustom(context.Background(), repro.RunRequest{Workflow: "9deg", Mode: "regular", Billing: "on-demand"}, policy.Bundle{}, "text", "", &b); err == nil {
		t.Error("unknown preset accepted")
	}
	if err := runCustom(context.Background(), repro.RunRequest{Workflow: "1deg", Mode: "sideways", Billing: "on-demand"}, policy.Bundle{}, "text", "", &b); err == nil {
		t.Error("unknown mode accepted")
	}
	if err := runCustom(context.Background(), repro.RunRequest{Workflow: "1deg", Mode: "regular", Billing: "prepaid"}, policy.Bundle{}, "text", "", &b); err == nil {
		t.Error("unknown billing accepted")
	}
}

func TestRealMainArgs(t *testing.T) {
	if err := realMain(context.Background(), "fig4", "text", "", repro.RunRequest{Workflow: "1deg"}, policy.Bundle{}, ""); err == nil {
		t.Error("-exp together with -run accepted")
	}
	if err := realMain(context.Background(), "fig4", "text", "file.json", repro.RunRequest{}, policy.Bundle{}, ""); err == nil {
		t.Error("-exp together with -scenario accepted")
	}
	if err := realMain(context.Background(), "", "text", "", repro.RunRequest{}, policy.Bundle{}, ""); err == nil {
		t.Error("no action accepted")
	}
}
