package main

import (
	"context"
	"strings"
	"testing"

	"repro"
)

func TestRunExperimentList(t *testing.T) {
	var b strings.Builder
	if err := runExperiment(context.Background(), "list", "text", &b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fig4", "fig10", "q2b", "ablation-outage", "spot-frontier"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("list missing %q", want)
		}
	}
}

func TestRunExperimentText(t *testing.T) {
	var b strings.Builder
	if err := runExperiment(context.Background(), "ccr-table", "text", &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "montage-4deg") {
		t.Errorf("missing workflow row:\n%s", b.String())
	}
}

func TestRunExperimentCSV(t *testing.T) {
	var b strings.Builder
	if err := runExperiment(context.Background(), "ccr-table", "csv", &b); err != nil {
		t.Fatal(err)
	}
	first := strings.SplitN(b.String(), "\n", 2)[0]
	if first != "workflow,tasks,ccr,paper" {
		t.Errorf("CSV header = %q", first)
	}
}

func TestRunExperimentErrors(t *testing.T) {
	var b strings.Builder
	if err := runExperiment(context.Background(), "no-such-figure", "text", &b); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := runExperiment(context.Background(), "ccr-table", "yaml", &b); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestRunCustom(t *testing.T) {
	var b strings.Builder
	if err := runCustom(context.Background(), "1deg", "cleanup", 8, "provisioned", "text", &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"montage-1deg", "cleanup", "provisioned", "total cost"} {
		if !strings.Contains(out, want) {
			t.Errorf("custom run output missing %q:\n%s", want, out)
		}
	}
}

func TestRunCustomJSON(t *testing.T) {
	var b strings.Builder
	if err := runCustom(context.Background(), "1deg", "regular", 4, "on-demand", "json", &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{`"Mode": "regular"`, `"total"`, `"CPUSeconds"`, `"workflow": "montage-1deg"`, `"billing": "on-demand"`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON output missing %q:\n%s", want, out)
		}
	}
}

func TestRunCustomJSONMatchesWireDocument(t *testing.T) {
	// The -json document must be byte-identical to what the server
	// builds for the same request: both go through RunDocument.Encode.
	var b strings.Builder
	if err := runCustom(context.Background(), "1deg", "regular", 4, "on-demand", "json", &b); err != nil {
		t.Fatal(err)
	}
	spec, plan, err := repro.RunRequest{Workflow: "1deg", Mode: "regular", Processors: 4}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	wf, err := repro.GenerateCached(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := repro.Run(wf, plan)
	if err != nil {
		t.Fatal(err)
	}
	want, err := repro.NewRunDocument(res).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if b.String() != string(want) {
		t.Errorf("CLI JSON diverges from wire document:\nCLI:\n%s\nwire:\n%s", b.String(), want)
	}
}

func TestRunCustomErrors(t *testing.T) {
	var b strings.Builder
	if err := runCustom(context.Background(), "9deg", "regular", 0, "on-demand", "text", &b); err == nil {
		t.Error("unknown preset accepted")
	}
	if err := runCustom(context.Background(), "1deg", "sideways", 0, "on-demand", "text", &b); err == nil {
		t.Error("unknown mode accepted")
	}
	if err := runCustom(context.Background(), "1deg", "regular", 0, "prepaid", "text", &b); err == nil {
		t.Error("unknown billing accepted")
	}
}

func TestRealMainArgs(t *testing.T) {
	if err := realMain(context.Background(), "fig4", "text", "1deg", "regular", 0, "on-demand"); err == nil {
		t.Error("-exp together with -run accepted")
	}
	if err := realMain(context.Background(), "", "text", "", "regular", 0, "on-demand"); err == nil {
		t.Error("no action accepted")
	}
}
