package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/server"
	"repro/wire"
)

func newTestHandler(t *testing.T) http.Handler {
	t.Helper()
	s, err := server.New(server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return s.Handler()
}

func writeDoc(t *testing.T, name, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const scenarioDoc = `{
  "version": 2,
  "workflow": {"name": "1deg"},
  "fleet": {"processors": 16, "reliable": 4},
  "spot": {"rate_per_hour": 1.5, "seed": 7, "discount": 0.65},
  "recovery": {"checkpoint_seconds": 300, "checkpoint_overhead_seconds": 10, "checkpoint_bytes": 500000000}
}`

const sweepDoc = `{
  "scenario": {
    "version": 2,
    "workflow": {"name": "1deg"},
    "fleet": {"processors": 16, "reliable": 4},
    "spot": {"seed": 7, "discount": 0.65}
  },
  "axes": [{"axis": "spot.rate_per_hour", "values": [0, 1.5]}]
}`

// TestScenarioRunMatchesServer: montagesim -scenario -json must emit
// the exact bytes POST /v2/run returns for the same document.
func TestScenarioRunMatchesServer(t *testing.T) {
	var cli bytes.Buffer
	if err := runScenario(context.Background(), writeDoc(t, "s.json", scenarioDoc), "json", "", &cli); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newTestHandler(t))
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v2/run", "application/json", strings.NewReader(scenarioDoc))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	srv, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("server status %d: %s", resp.StatusCode, srv)
	}
	if !bytes.Equal(cli.Bytes(), srv) {
		t.Errorf("CLI and server v2 documents differ:\ncli: %s\nsrv: %s", cli.Bytes(), srv)
	}
}

// TestScenarioSweepMatchesServer: the CLI's sweep stream must be
// byte-identical to a POST /v2/sweep response for the same document.
func TestScenarioSweepMatchesServer(t *testing.T) {
	var cli bytes.Buffer
	if err := runScenario(context.Background(), writeDoc(t, "sweep.json", sweepDoc), "text", "", &cli); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newTestHandler(t))
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v2/sweep", "application/json", strings.NewReader(sweepDoc))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	srv, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cli.Bytes(), srv) {
		t.Errorf("CLI and server sweep streams differ:\ncli: %s\nsrv: %s", cli.Bytes(), srv)
	}
	// Sanity: the shared stream is a well-formed envelope sequence.
	sc := bufio.NewScanner(bytes.NewReader(cli.Bytes()))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	rows, done := 0, false
	for sc.Scan() {
		var env wire.SweepEnvelope
		if err := json.Unmarshal(sc.Bytes(), &env); err != nil {
			t.Fatal(err)
		}
		if env.Row != nil {
			rows++
		}
		if env.Done != nil {
			done = true
		}
	}
	if rows != 2 || !done {
		t.Errorf("stream had %d rows, done=%t; want 2, true", rows, done)
	}
}

func TestScenarioTextTable(t *testing.T) {
	var out bytes.Buffer
	if err := runScenario(context.Background(), writeDoc(t, "s.json", scenarioDoc), "text", "", &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"montage-1deg", "preempted", "total cost"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("table output missing %q:\n%s", want, out.String())
		}
	}
}

func TestScenarioRejectsMalformedDocuments(t *testing.T) {
	for name, body := range map[string]string{
		"unknown field": `{"version": 2, "workflow": {"name": "1deg"}, "wokflow": 1}`,
		"bad version":   `{"version": 3, "workflow": {"name": "1deg"}}`,
		"not json":      `not json`,
		"bad axis":      `{"scenario": {"version": 2, "workflow": {"name": "1deg"}}, "axes": [{"axis": "zap", "values": [1]}]}`,
	} {
		var out bytes.Buffer
		if err := runScenario(context.Background(), writeDoc(t, "bad.json", body), "text", "", &out); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if err := runScenario(context.Background(), filepath.Join(t.TempDir(), "absent.json"), "text", "", io.Discard); err == nil {
		t.Error("absent file accepted")
	}
}
